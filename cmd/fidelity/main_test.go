package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseFlagsErrorPaths extends the PR 4 flag-hardening contract to
// fidelity: malformed lines must error so main exits non-zero.
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"positional junk", []string{"fig9"}, "unexpected arguments"},
		{"unknown flag", []string{"-trajectories", "10"}, "flag provided but not defined"},
		{"zero traj", []string{"-traj", "0"}, "-traj must be >= 1"},
		{"bad traj", []string{"-traj", "lots"}, "invalid value"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
	var stderr bytes.Buffer
	if cfg, err := parseFlags([]string{"-traj", "25", "-calib"}, &stderr); err != nil || cfg.traj != 25 || !cfg.calibStudy {
		t.Errorf("valid line rejected: %v %+v", err, cfg)
	}
}
