// Command fidelity regenerates the paper's Fig 9: the fidelity of seven
// well-known quantum algorithms mapped by CODAR and by SABRE, simulated on
// a noisy quantum virtual machine under dephasing-dominant and
// damping-dominant noise. The paper's claim: CODAR speeds circuits up while
// maintaining (dephasing: often improving) their fidelity.
//
// Usage:
//
//	fidelity [-traj 50] [-gateerr] [-calib]
//
// -calib replaces the Fig 9 regimes with the calibration study: the
// estimated-success-probability comparison of duration-only vs
// calibration-aware CODAR over the Fig 8 Tokyo suite, plus the famous-seven
// algorithms trajectory-simulated under a synthetic snapshot's heterogeneous
// per-qubit noise (DESIGN.md §8, EXPERIMENTS.md "Calibration study").
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/core"
	"codar/internal/experiments"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "fidelity:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fidelity:", err)
		os.Exit(1)
	}
}

// config is the parsed fidelity command line.
type config struct {
	traj       int
	gateErr    bool
	calibStudy bool
	lambda     float64
}

// parseFlags parses and validates the command line; malformed lines error
// to stderr so main exits non-zero.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("fidelity", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.IntVar(&cfg.traj, "traj", 100, "Monte-Carlo trajectories per fidelity estimate")
	fs.BoolVar(&cfg.gateErr, "gateerr", false, "also run the gate-error trade-off study (extension beyond Fig 9)")
	fs.BoolVar(&cfg.calibStudy, "calib", false, "run the calibration study (ESP sweep + simulated fidelity) instead of Fig 9")
	fs.Float64Var(&cfg.lambda, "lambda", 0, "error-term gain of the calibrated metric (0 = default)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.traj < 1 {
		return nil, fmt.Errorf("-traj must be >= 1, got %d", cfg.traj)
	}
	return cfg, nil
}

func run(cfg *config) error {
	if cfg.calibStudy {
		return runCalibration(cfg.traj, cfg.lambda)
	}

	fmt.Println("Fig 9 — fidelity of seven algorithms, CODAR vs SABRE")
	fmt.Printf("device: 3x3 grid; regimes: dephasing-dominant (T2=%.0f cycles), damping-dominant (T1=%.0f cycles); %d trajectories\n\n",
		experiments.DephasingT2, experiments.DampingT1, cfg.traj)

	rows, err := experiments.RunFig9(cfg.traj, core.Options{})
	if err != nil {
		return err
	}
	if err := experiments.WriteFig9(os.Stdout, rows); err != nil {
		return err
	}

	if cfg.gateErr {
		fmt.Printf("\ngate-error trade-off study (§V-B extension): decoherence + depolarising gate errors (1q=%.2g, 2q=%.2g)\n\n",
			experiments.Gate1QError, experiments.Gate2QError)
		gerows, err := experiments.RunGateErrorStudy(cfg.traj, core.Options{})
		if err != nil {
			return err
		}
		return experiments.WriteGateErrorStudy(os.Stdout, gerows)
	}
	return nil
}

// runCalibration reports the calibration study: the analytic ESP comparison
// on the Fig 8 Tokyo suite, then the Fig 9 machinery replayed under the
// synthetic snapshot's per-qubit noise (trajectory simulation on the 3×3
// fidelity device).
func runCalibration(traj int, lambda float64) error {
	dev := arch.IBMQ20Tokyo()
	snap := calib.Synthetic(dev, experiments.Seed)
	fmt.Printf("calibration study — duration-only vs calibration-aware CODAR\n")
	fmt.Printf("device: %s, synthetic snapshot %s\n\n", dev.Name, snap.Hash()[:12])
	res, err := experiments.RunCalibrationStudy(dev, snap, lambda, core.Options{})
	if err != nil {
		return err
	}
	if err := experiments.WriteCalibrationStudy(os.Stdout, res); err != nil {
		return err
	}

	fmt.Printf("simulated validation — famous seven on the 3×3 fidelity device under\n")
	fmt.Printf("the snapshot's per-qubit T1/T2 + mean depolarising gate errors (%d trajectories)\n\n", traj)
	rows, err := experiments.RunCalibrationFidelity(traj, lambda, core.Options{})
	if err != nil {
		return err
	}
	return experiments.WriteCalibrationFidelity(os.Stdout, rows)
}
