// Command fidelity regenerates the paper's Fig 9: the fidelity of seven
// well-known quantum algorithms mapped by CODAR and by SABRE, simulated on
// a noisy quantum virtual machine under dephasing-dominant and
// damping-dominant noise. The paper's claim: CODAR speeds circuits up while
// maintaining (dephasing: often improving) their fidelity.
//
// Usage:
//
//	fidelity [-traj 50]
package main

import (
	"flag"
	"fmt"
	"os"

	"codar/internal/core"
	"codar/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fidelity:", err)
		os.Exit(1)
	}
}

func run() error {
	traj := flag.Int("traj", 100, "Monte-Carlo trajectories per fidelity estimate")
	gateErr := flag.Bool("gateerr", false, "also run the gate-error trade-off study (extension beyond Fig 9)")
	flag.Parse()

	fmt.Println("Fig 9 — fidelity of seven algorithms, CODAR vs SABRE")
	fmt.Printf("device: 3x3 grid; regimes: dephasing-dominant (T2=%.0f cycles), damping-dominant (T1=%.0f cycles); %d trajectories\n\n",
		experiments.DephasingT2, experiments.DampingT1, *traj)

	rows, err := experiments.RunFig9(*traj, core.Options{})
	if err != nil {
		return err
	}
	if err := experiments.WriteFig9(os.Stdout, rows); err != nil {
		return err
	}

	if *gateErr {
		fmt.Printf("\ngate-error trade-off study (§V-B extension): decoherence + depolarising gate errors (1q=%.2g, 2q=%.2g)\n\n",
			experiments.Gate1QError, experiments.Gate2QError)
		gerows, err := experiments.RunGateErrorStudy(*traj, core.Options{})
		if err != nil {
			return err
		}
		return experiments.WriteGateErrorStudy(os.Stdout, gerows)
	}
	return nil
}
