package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseFlagsErrorPaths: benchgen previously ignored positional
// arguments (`benchgen outdir` wrote to ./benchmarks and exited 0); the
// hardened parser must reject them so main exits non-zero.
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"positional junk", []string{"outdir"}, "unexpected arguments"},
		{"unknown flag", []string{"-out", "x"}, "flag provided but not defined"},
		{"empty dir", []string{"-dir", ""}, "-dir must be non-empty"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
}
