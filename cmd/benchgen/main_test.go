package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseFlagsErrorPaths: benchgen previously ignored positional
// arguments (`benchgen outdir` wrote to ./benchmarks and exited 0); the
// hardened parser must reject them so main exits non-zero.
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"positional junk", []string{"outdir"}, "unexpected arguments"},
		{"unknown flag", []string{"-out", "x"}, "flag provided but not defined"},
		{"empty dir", []string{"-dir", ""}, "-dir must be non-empty"},
		{"negative gates", []string{"-gates", "-5"}, "-gates must be >= 0"},
		{"gates with raw", []string{"-gates", "100", "-raw"}, "-raw does not apply"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
}

// TestParseFlagsGates: the large-workload knob parses with its seed and
// defaults to suite mode when absent.
func TestParseFlagsGates(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-gates", "1000000", "-seed", "7", "-dir", "out"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.gates != 1000000 || cfg.seed != 7 || cfg.dir != "out" {
		t.Errorf("unexpected config: %+v", cfg)
	}
	cfg, err = parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.gates != 0 || cfg.seed != 1 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}
