// Command benchgen emits the 71-benchmark evaluation suite as OpenQASM 2.0
// files plus a manifest, so the circuits can be inspected or fed to other
// toolchains.
//
// Usage:
//
//	benchgen -dir benchmarks [-raw]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"codar/internal/qasm"
	"codar/internal/workloads"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

// config is the parsed benchgen command line.
type config struct {
	dir   string
	raw   bool
	gates int
	seed  int64
}

// parseFlags parses and validates the command line; leftover positional
// arguments (previously silently ignored) error to stderr so main exits
// non-zero.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.dir, "dir", "benchmarks", "output directory")
	fs.BoolVar(&cfg.raw, "raw", false, "emit circuits before lowering (keep ccx/cp/rzz/swap)")
	fs.IntVar(&cfg.gates, "gates", 0, "instead of the suite, emit one 16-qubit random workload with this many gates (e.g. 1000000 for the harness's 1M-gate row)")
	fs.Int64Var(&cfg.seed, "seed", 1, "generator seed for -gates workloads")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.dir == "" {
		return nil, fmt.Errorf("-dir must be non-empty")
	}
	if cfg.gates < 0 {
		return nil, fmt.Errorf("-gates must be >= 0, got %d", cfg.gates)
	}
	if cfg.gates > 0 && cfg.raw {
		return nil, fmt.Errorf("-gates workloads are already lowered; -raw does not apply")
	}
	return cfg, nil
}

func run(cfg *config) error {
	if err := os.MkdirAll(cfg.dir, 0o755); err != nil {
		return err
	}
	if cfg.gates > 0 {
		return runLarge(cfg)
	}
	f, err := os.Create(filepath.Join(cfg.dir, "MANIFEST.txt"))
	if err != nil {
		return err
	}
	// The manifest is the command's deliverable: buffering the rows means
	// one checked Flush covers every write, so a full disk fails the run
	// (exit-code audit) instead of truncating the file silently.
	manifest := bufio.NewWriter(f)

	fmt.Fprintf(manifest, "# name qubits gates family\n")
	for _, b := range workloads.Suite() {
		c := b.Circuit()
		if cfg.raw {
			c = b.Raw()
		}
		path := filepath.Join(cfg.dir, b.Name+".qasm")
		if err := os.WriteFile(path, []byte(qasm.Write(c)), 0o644); err != nil {
			f.Close()
			return err
		}
		fmt.Fprintf(manifest, "%s %d %d %s\n", b.Name, b.Qubits, c.Len(), b.Family)
	}
	if err := manifest.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchgen: wrote %d circuits to %s\n", len(workloads.Suite()), cfg.dir)
	return nil
}

// runLarge emits a single large random workload (the -gates mode), mirroring
// the perf harness's generation row (workloads.Random at 45% CX on 16
// qubits) so a 1M-gate circuit can be materialised for external toolchains
// without running the whole suite.
func runLarge(cfg *config) error {
	c := workloads.Random(16, cfg.gates, 45, cfg.seed)
	path := filepath.Join(cfg.dir, c.Name+".qasm")
	if err := os.WriteFile(path, []byte(qasm.Write(c)), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchgen: wrote %s (%d gates) to %s\n", c.Name, c.Len(), cfg.dir)
	return nil
}
