// Command benchgen emits the 71-benchmark evaluation suite as OpenQASM 2.0
// files plus a manifest, so the circuits can be inspected or fed to other
// toolchains.
//
// Usage:
//
//	benchgen -dir benchmarks [-raw]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"codar/internal/qasm"
	"codar/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "benchmarks", "output directory")
	raw := flag.Bool("raw", false, "emit circuits before lowering (keep ccx/cp/rzz/swap)")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	manifest, err := os.Create(filepath.Join(*dir, "MANIFEST.txt"))
	if err != nil {
		return err
	}
	defer manifest.Close()

	fmt.Fprintf(manifest, "# name qubits gates family\n")
	for _, b := range workloads.Suite() {
		c := b.Circuit()
		if *raw {
			c = b.Raw()
		}
		path := filepath.Join(*dir, b.Name+".qasm")
		if err := os.WriteFile(path, []byte(qasm.Write(c)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(manifest, "%s %d %d %s\n", b.Name, b.Qubits, c.Len(), b.Family)
	}
	fmt.Fprintf(os.Stderr, "benchgen: wrote %d circuits to %s\n", len(workloads.Suite()), *dir)
	return nil
}
