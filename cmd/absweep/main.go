// Command absweep is the continuous A/B perf harness driver: it runs the
// standard benchmark suite (internal/../benchmarks) — the four Fig 8
// sweeps, the Tokyo portfolio study, the in-process codarload replay and
// the 1M-gate generation row — and records or compares machine-readable
// perf snapshots.
//
// Usage:
//
//	absweep -record FILE            measure this tree, write a snapshot
//	absweep -baseline FILE          measure this tree, compare against a
//	                                recorded snapshot, exit 1 on regression
//	absweep -diff BASE HEAD         compare two recorded snapshots
//
// Common flags: -reps N (repetitions, default 3), -bench RE (filter),
// -workers N (Fig 8 fan-out), -out FILE (write the comparison JSON, "-" =
// stdout), -tolerance F (regression gate, default 0.10), -normalize
// (rescale by the calibration-loop ratio when the two snapshots ran on
// different machines), -handicap F (scale measured wall times — a synthetic
// regression for testing the gate), -pr/-title/-note (provenance stamped
// into the comparison, so the output doubles as BENCH_N.json).
//
// To A/B two commits, record a snapshot at each (scripts/ab_commits.sh
// automates the worktree dance) and -diff them.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strings"

	"codar/benchmarks"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "absweep:", err)
		os.Exit(2)
	}
	code, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "absweep:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// config is the parsed absweep command line.
type config struct {
	record    string
	baseline  string
	diff      bool
	diffBase  string
	diffHead  string
	out       string
	reps      int
	bench     string
	workers   int
	tolerance float64
	handicap  float64
	normalize bool
	pr        int
	title     string
	note      string
	command   string
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("absweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.record, "record", "", "measure this tree and write the snapshot JSON to `file`")
	fs.StringVar(&cfg.baseline, "baseline", "", "measure this tree and compare against the snapshot in `file`; exit 1 on regression")
	fs.BoolVar(&cfg.diff, "diff", false, "compare two recorded snapshots: absweep -diff base.json head.json")
	fs.StringVar(&cfg.out, "out", "", "write the comparison JSON to `file` (\"-\" = stdout)")
	fs.IntVar(&cfg.reps, "reps", 3, "repetitions per benchmark (min/mean/max bound the noise)")
	fs.StringVar(&cfg.bench, "bench", "", "regexp filtering benchmark names (e.g. 'fig8/', 'service')")
	fs.IntVar(&cfg.workers, "workers", 0, "worker-pool size for the Fig 8 fan-out (0 = GOMAXPROCS, 1 = serial)")
	fs.Float64Var(&cfg.tolerance, "tolerance", benchmarks.DefaultTolerance, "relative wall-clock regression gate")
	fs.Float64Var(&cfg.handicap, "handicap", 0, "scale measured wall times by this factor (> 1 simulates a regression; for testing the gate)")
	fs.BoolVar(&cfg.normalize, "normalize", false, "rescale the baseline by the calibration-loop ratio (cross-machine comparison)")
	fs.IntVar(&cfg.pr, "pr", 0, "PR number stamped into the comparison output")
	fs.StringVar(&cfg.title, "title", "", "title stamped into the comparison output")
	fs.StringVar(&cfg.note, "note", "", "free-form note stamped into the comparison output")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	modes := 0
	for _, on := range []bool{cfg.record != "", cfg.baseline != "", cfg.diff} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fs.Usage()
		return nil, fmt.Errorf("exactly one of -record, -baseline or -diff is required")
	}
	if cfg.diff {
		if fs.NArg() != 2 {
			return nil, fmt.Errorf("-diff takes exactly two snapshot files, got %d", fs.NArg())
		}
		cfg.diffBase, cfg.diffHead = fs.Arg(0), fs.Arg(1)
	} else if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.reps < 1 {
		return nil, fmt.Errorf("-reps must be >= 1, got %d", cfg.reps)
	}
	if cfg.tolerance <= 0 {
		return nil, fmt.Errorf("-tolerance must be > 0, got %g", cfg.tolerance)
	}
	if cfg.handicap < 0 {
		return nil, fmt.Errorf("-handicap must be >= 0, got %g", cfg.handicap)
	}
	cfg.command = "absweep " + strings.Join(args, " ")
	return cfg, nil
}

// run executes the selected mode and returns the process exit code:
// 0 pass, 1 regression. Errors map to exit 2 in main.
func run(cfg *config) (int, error) {
	opts := benchmarks.Options{
		Reps:     cfg.reps,
		Workers:  cfg.workers,
		Handicap: cfg.handicap,
		Log: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if cfg.bench != "" {
		re, err := regexp.Compile(cfg.bench)
		if err != nil {
			return 0, fmt.Errorf("-bench: %w", err)
		}
		opts.Filter = re
	}

	measure := func() (*benchmarks.Snapshot, error) {
		snap, err := benchmarks.Run(benchmarks.Suite(opts), opts)
		if err != nil {
			return nil, err
		}
		snap.Commit = gitCommit()
		return snap, nil
	}

	switch {
	case cfg.record != "":
		snap, err := measure()
		if err != nil {
			return 0, err
		}
		if err := benchmarks.WriteSnapshot(snap, cfg.record); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "recorded %d benchmarks to %s\n", len(snap.Benchmarks), cfg.record)
		return 0, nil

	case cfg.baseline != "":
		base, err := benchmarks.ReadSnapshot(cfg.baseline)
		if err != nil {
			return 0, err
		}
		head, err := measure()
		if err != nil {
			return 0, err
		}
		return compare(cfg, base, head)

	default: // -diff
		base, err := benchmarks.ReadSnapshot(cfg.diffBase)
		if err != nil {
			return 0, err
		}
		head, err := benchmarks.ReadSnapshot(cfg.diffHead)
		if err != nil {
			return 0, err
		}
		return compare(cfg, base, head)
	}
}

func compare(cfg *config, base, head *benchmarks.Snapshot) (int, error) {
	cmp, err := benchmarks.Compare(base, head, benchmarks.CompareOptions{
		Tolerance: cfg.tolerance,
		Normalize: cfg.normalize,
	})
	if err != nil {
		return 0, err
	}
	cmp.PR = cfg.pr
	cmp.Title = cfg.title
	cmp.Note = cfg.note
	cmp.Command = cfg.command
	if err := cmp.WriteText(os.Stdout); err != nil {
		return 0, err
	}
	if cfg.out != "" {
		if err := benchmarks.WriteComparison(cmp, cfg.out); err != nil {
			return 0, err
		}
	}
	if !cmp.Ok() {
		return 1, nil
	}
	return 0, nil
}

// gitCommit best-effort resolves the working tree's short commit hash
// (empty outside a git checkout — snapshots stay usable either way).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
