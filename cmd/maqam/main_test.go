package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseFlagsErrorPaths: maqam previously ignored positional arguments
// entirely (`maqam tokyo` listed everything and exited 0); the hardened
// parser must reject them so main exits non-zero.
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"positional junk", []string{"tokyo"}, "unexpected arguments"},
		{"unknown flag", []string{"-device", "tokyo"}, "flag provided but not defined"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
	var stderr bytes.Buffer
	if cfg, err := parseFlags([]string{"-arch", "tokyo"}, &stderr); err != nil || cfg.archName != "tokyo" {
		t.Errorf("valid line rejected: %v %+v", err, cfg)
	}
}
