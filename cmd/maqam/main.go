// Command maqam inspects the built-in quantum abstract machine models:
// coupling statistics, distance structure, gate-duration presets and the
// Table I technology parameters.
//
// Usage:
//
//	maqam                 # list all built-in devices
//	maqam -arch tokyo     # detail one device
//	maqam -table1         # print the Table I technology survey
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/metrics"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "maqam:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "maqam:", err)
		os.Exit(1)
	}
}

// config is the parsed maqam command line.
type config struct {
	archName string
	table1   bool
}

// parseFlags parses and validates the command line; leftover positional
// arguments (previously silently ignored) error to stderr so main exits
// non-zero.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("maqam", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.archName, "arch", "", "detail a single device")
	fs.BoolVar(&cfg.table1, "table1", false, "print the Table I technology parameters")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return cfg, nil
}

func run(cfg *config) error {
	if cfg.table1 {
		return printTableI()
	}
	if cfg.archName != "" {
		dev, err := arch.ByName(cfg.archName)
		if err != nil {
			return err
		}
		return printDevice(dev)
	}
	t := metrics.NewTable("device", "qubits", "couplers", "diameter", "max degree", "directed")
	devices := []*arch.Device{
		arch.IBMQ5(), arch.IBMQX4(), arch.IBMQ16Melbourne(),
		arch.IBMQ20Tokyo(), arch.Enfield6x6(), arch.SycamoreQ54(),
	}
	for _, d := range devices {
		t.AddRow(d.Name, d.NumQubits, len(d.Edges), d.Diameter(), maxDegree(d), d.Directed())
	}
	return t.Render(os.Stdout)
}

func maxDegree(d *arch.Device) int {
	m := 0
	for q := 0; q < d.NumQubits; q++ {
		if d.Degree(q) > m {
			m = d.Degree(q)
		}
	}
	return m
}

func printDevice(d *arch.Device) error {
	fmt.Println(d)
	fmt.Printf("durations: 1q=%d 2q=%d swap=%d measure=%d cycles\n",
		d.Duration(circuit.OpH), d.Duration(circuit.OpCX), d.Duration(circuit.OpSwap), d.Duration(circuit.OpMeasure))
	fmt.Printf("directed coupling: %v\n", d.Directed())
	// Degree histogram.
	hist := map[int]int{}
	for q := 0; q < d.NumQubits; q++ {
		hist[d.Degree(q)]++
	}
	fmt.Print("degree histogram: ")
	for deg := 0; deg <= 8; deg++ {
		if n := hist[deg]; n > 0 {
			fmt.Printf("%dx deg%d  ", n, deg)
		}
	}
	fmt.Println()
	// Distance histogram (pairs).
	dhist := map[int]int{}
	for a := 0; a < d.NumQubits; a++ {
		for b := a + 1; b < d.NumQubits; b++ {
			dhist[d.Distance(a, b)]++
		}
	}
	fmt.Print("distance histogram: ")
	for dist := 1; dist <= d.Diameter(); dist++ {
		if n := dhist[dist]; n > 0 {
			fmt.Printf("%d:%d  ", dist, n)
		}
	}
	fmt.Println()
	fmt.Println("couplers:", d.Edges)
	return nil
}

func printTableI() error {
	t := metrics.NewTable("technology", "device", "1q fid", "2q fid", "readout", "1q ns", "2q ns", "T1 ns", "T2 ns")
	for _, p := range arch.TableI() {
		t.AddRow(p.Technology.String(), p.Device, p.Fidelity1Q, p.Fidelity2Q, p.FidelityReadout,
			p.Time1Q, p.Time2Q, p.T1, p.T2)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nderived duration presets (cycles):")
	t2 := metrics.NewTable("technology", "1q", "2q", "swap", "measure")
	for _, p := range arch.TableI() {
		t2.AddRow(p.Technology.String(), p.Durations.Single, p.Durations.Two, p.Durations.Swap, p.Durations.Measure)
	}
	return t2.Render(os.Stdout)
}
