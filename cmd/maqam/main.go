// Command maqam inspects the built-in quantum abstract machine models:
// coupling statistics, distance structure, gate-duration presets and the
// Table I technology parameters.
//
// Usage:
//
//	maqam                 # list all built-in devices
//	maqam -arch tokyo     # detail one device
//	maqam -table1         # print the Table I technology survey
package main

import (
	"flag"
	"fmt"
	"os"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "maqam:", err)
		os.Exit(1)
	}
}

func run() error {
	archName := flag.String("arch", "", "detail a single device")
	table1 := flag.Bool("table1", false, "print the Table I technology parameters")
	flag.Parse()

	if *table1 {
		return printTableI()
	}
	if *archName != "" {
		dev, err := arch.ByName(*archName)
		if err != nil {
			return err
		}
		return printDevice(dev)
	}
	t := metrics.NewTable("device", "qubits", "couplers", "diameter", "max degree", "directed")
	devices := []*arch.Device{
		arch.IBMQ5(), arch.IBMQX4(), arch.IBMQ16Melbourne(),
		arch.IBMQ20Tokyo(), arch.Enfield6x6(), arch.SycamoreQ54(),
	}
	for _, d := range devices {
		t.AddRow(d.Name, d.NumQubits, len(d.Edges), d.Diameter(), maxDegree(d), d.Directed())
	}
	return t.Render(os.Stdout)
}

func maxDegree(d *arch.Device) int {
	m := 0
	for q := 0; q < d.NumQubits; q++ {
		if d.Degree(q) > m {
			m = d.Degree(q)
		}
	}
	return m
}

func printDevice(d *arch.Device) error {
	fmt.Println(d)
	fmt.Printf("durations: 1q=%d 2q=%d swap=%d measure=%d cycles\n",
		d.Duration(circuit.OpH), d.Duration(circuit.OpCX), d.Duration(circuit.OpSwap), d.Duration(circuit.OpMeasure))
	fmt.Printf("directed coupling: %v\n", d.Directed())
	// Degree histogram.
	hist := map[int]int{}
	for q := 0; q < d.NumQubits; q++ {
		hist[d.Degree(q)]++
	}
	fmt.Print("degree histogram: ")
	for deg := 0; deg <= 8; deg++ {
		if n := hist[deg]; n > 0 {
			fmt.Printf("%dx deg%d  ", n, deg)
		}
	}
	fmt.Println()
	// Distance histogram (pairs).
	dhist := map[int]int{}
	for a := 0; a < d.NumQubits; a++ {
		for b := a + 1; b < d.NumQubits; b++ {
			dhist[d.Distance(a, b)]++
		}
	}
	fmt.Print("distance histogram: ")
	for dist := 1; dist <= d.Diameter(); dist++ {
		if n := dhist[dist]; n > 0 {
			fmt.Printf("%d:%d  ", dist, n)
		}
	}
	fmt.Println()
	fmt.Println("couplers:", d.Edges)
	return nil
}

func printTableI() error {
	t := metrics.NewTable("technology", "device", "1q fid", "2q fid", "readout", "1q ns", "2q ns", "T1 ns", "T2 ns")
	for _, p := range arch.TableI() {
		t.AddRow(p.Technology.String(), p.Device, p.Fidelity1Q, p.Fidelity2Q, p.FidelityReadout,
			p.Time1Q, p.Time2Q, p.T1, p.T2)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nderived duration presets (cycles):")
	t2 := metrics.NewTable("technology", "1q", "2q", "swap", "measure")
	for _, p := range arch.TableI() {
		t2.AddRow(p.Technology.String(), p.Durations.Single, p.Durations.Two, p.Durations.Swap, p.Durations.Measure)
	}
	return t2.Render(os.Stdout)
}
