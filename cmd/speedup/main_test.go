package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.archName != "all" || cfg.workers != 0 || cfg.portfolio {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}

// TestPortfolioAllowsProfiling: the profiler flags are observability, not a
// study selector — they must compose with -portfolio (the portfolio pipeline
// is exactly what the shared-placement work needs profiles of).
func TestPortfolioAllowsProfiling(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-portfolio", "-cpuprofile", "cpu.prof", "-memprofile", "mem.prof"}, &stderr)
	if err != nil {
		t.Fatalf("-portfolio with profile flags rejected: %v", err)
	}
	if !cfg.portfolio || cfg.cpuprofile != "cpu.prof" || cfg.memprofile != "mem.prof" {
		t.Errorf("unexpected config: %+v", cfg)
	}
}

// TestParseFlagsErrorPaths extends the PR 4 flag-hardening contract to
// speedup: malformed lines must error so main exits non-zero (package
// flag's global FlagSet silently ignored the positional-junk case).
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"positional junk", []string{"tokyo"}, "unexpected arguments"},
		{"junk after flags", []string{"-arch", "tokyo", "go"}, "unexpected arguments"},
		{"unknown flag", []string{"-device", "tokyo"}, "flag provided but not defined"},
		{"bad workers", []string{"-workers", "few"}, "invalid value"},
		{"negative workers", []string{"-workers", "-3"}, "-workers must be >= 0"},
		{"portfolio with csv", []string{"-portfolio", "-csv", "out.csv"}, "cannot be combined"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
}
