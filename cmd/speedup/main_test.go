package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.archName != "all" || cfg.workers != 0 || cfg.portfolio {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}

// TestParseFlagsErrorPaths extends the PR 4 flag-hardening contract to
// speedup: malformed lines must error so main exits non-zero (package
// flag's global FlagSet silently ignored the positional-junk case).
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"positional junk", []string{"tokyo"}, "unexpected arguments"},
		{"junk after flags", []string{"-arch", "tokyo", "go"}, "unexpected arguments"},
		{"unknown flag", []string{"-device", "tokyo"}, "flag provided but not defined"},
		{"bad workers", []string{"-workers", "few"}, "invalid value"},
		{"negative workers", []string{"-workers", "-3"}, "-workers must be >= 0"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
}
