// Command speedup regenerates the paper's Fig 8: the circuit-execution
// speedup of CODAR over SABRE (ratio of weighted depths) for every
// benchmark on the four evaluation architectures, plus the per-architecture
// averages quoted in §V-A (paper: 1.212 / 1.241 / 1.214 / 1.258).
//
// Usage:
//
//	speedup [-arch all|melbourne|enfield|tokyo|sycamore] [-ablate] [-workers N]
//	        [-cpuprofile out.prof] [-memprofile out.prof]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"codar/internal/arch"
	"codar/internal/core"
	"codar/internal/experiments"
	"codar/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
}

func run() error {
	archName := flag.String("arch", "all", "architecture to sweep (all|melbourne|enfield|tokyo|sycamore|...)")
	ablate := flag.Bool("ablate", false, "also run the design ablations (no commutativity, no Hfine, no look-ahead)")
	workers := flag.Int("workers", 0, "worker-pool size for the per-benchmark fan-out (0 = GOMAXPROCS, 1 = serial)")
	durSweep := flag.Bool("dursweep", false, "also sweep the 2q/1q duration ratio (extension study)")
	initial := flag.Bool("initial", false, "also run the initial-mapping sensitivity study")
	csvPath := flag.String("csv", "", "also write per-benchmark rows as CSV to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "speedup: memprofile:", err)
			}
			f.Close()
		}()
	}

	devices := arch.EvaluationDevices()
	if *archName != "all" {
		d, err := arch.ByName(*archName)
		if err != nil {
			return err
		}
		devices = []*arch.Device{d}
	}

	fmt.Println("Fig 8 — circuit execution speedup, CODAR vs SABRE (weighted depth ratio)")
	fmt.Println("paper averages: Q16 1.212, Enfield 6x6 1.241, Q20 1.214, Sycamore 1.258")
	fmt.Println()

	var csv *os.File
	if *csvPath != "" {
		var err error
		csv, err = os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer csv.Close()
	}

	var avgRows [][2]string
	for i, dev := range devices {
		res, err := experiments.RunFig8DeviceWorkers(dev, core.Options{}, *workers)
		if err != nil {
			return err
		}
		if err := experiments.WriteFig8(os.Stdout, res); err != nil {
			return err
		}
		if csv != nil {
			if err := experiments.WriteFig8CSV(csv, res, i == 0); err != nil {
				return err
			}
		}
		avgRows = append(avgRows, [2]string{dev.Name, fmt.Sprintf("%.3f", res.AverageSpeedup())})
	}

	fmt.Println("summary (average speedup per architecture):")
	t := metrics.NewTable("architecture", "avg speedup")
	for _, r := range avgRows {
		t.AddRow(r[0], r[1])
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	if *ablate {
		fmt.Println("\nablations (Q20 Tokyo, average speedup vs SABRE):")
		at := metrics.NewTable("variant", "avg speedup")
		tokyo := arch.IBMQ20Tokyo()
		variants := []struct {
			name string
			opts core.Options
		}{
			{"full codar", core.Options{}},
			{"no commutativity", core.Options{DisableCommutativity: true}},
			{"no Hfine", core.Options{DisableHfine: true}},
			{"no look-ahead (paper-exact)", core.Options{Lookahead: -1}},
			{"window 16", core.Options{Window: 16}},
		}
		for _, v := range variants {
			res, err := experiments.RunFig8DeviceWorkers(tokyo, v.opts, *workers)
			if err != nil {
				return err
			}
			at.AddRow(v.name, res.AverageSpeedup())
		}
		if err := at.Render(os.Stdout); err != nil {
			return err
		}
	}

	if *durSweep {
		fmt.Println()
		tokyo := arch.IBMQ20Tokyo()
		points, err := experiments.RunDurationSweep(tokyo, nil, core.Options{})
		if err != nil {
			return err
		}
		if err := experiments.WriteDurationSweep(os.Stdout, tokyo, points); err != nil {
			return err
		}
	}

	if *initial {
		fmt.Println()
		tokyo := arch.IBMQ20Tokyo()
		rows, err := experiments.RunInitialMappingStudy(tokyo, core.Options{})
		if err != nil {
			return err
		}
		if err := experiments.WriteInitialMappingStudy(os.Stdout, tokyo, rows); err != nil {
			return err
		}
	}
	return nil
}
