// Command speedup regenerates the paper's Fig 8: the circuit-execution
// speedup of CODAR over SABRE (ratio of weighted depths) for every
// benchmark on the four evaluation architectures, plus the per-architecture
// averages quoted in §V-A (paper: 1.212 / 1.241 / 1.214 / 1.258).
//
// Usage:
//
//	speedup [-arch all|melbourne|enfield|tokyo|sycamore] [-ablate] [-workers N]
//	        [-portfolio] [-cpuprofile out.prof] [-memprofile out.prof]
//
// -portfolio runs the portfolio study instead: the multi-start portfolio
// winner (internal/portfolio) against the single-shot pipeline on the
// selected architecture's Fig 8 suite slice, with ESP columns scored under
// a synthetic calibration snapshot.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/core"
	"codar/internal/experiments"
	"codar/internal/metrics"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
}

// config is the parsed speedup command line.
type config struct {
	archName   string
	ablate     bool
	workers    int
	durSweep   bool
	initial    bool
	portfolio  bool
	csvPath    string
	cpuprofile string
	memprofile string
}

// parseFlags parses and validates the command line. Leftover positional
// arguments and out-of-range values are errors printed to stderr with
// usage, so main exits non-zero.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("speedup", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.archName, "arch", "all", "architecture to sweep (all|melbourne|enfield|tokyo|sycamore|...)")
	fs.BoolVar(&cfg.ablate, "ablate", false, "also run the design ablations (no commutativity, no Hfine, no look-ahead)")
	fs.IntVar(&cfg.workers, "workers", 0, "worker-pool size for the per-benchmark fan-out (0 = GOMAXPROCS, 1 = serial)")
	fs.BoolVar(&cfg.durSweep, "dursweep", false, "also sweep the 2q/1q duration ratio (extension study)")
	fs.BoolVar(&cfg.initial, "initial", false, "also run the initial-mapping sensitivity study")
	fs.BoolVar(&cfg.portfolio, "portfolio", false, "run the portfolio-vs-single-shot study instead of the Fig 8 sweep")
	fs.StringVar(&cfg.csvPath, "csv", "", "also write per-benchmark rows as CSV to this file")
	fs.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
	fs.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0, got %d", cfg.workers)
	}
	if cfg.portfolio && (cfg.csvPath != "" || cfg.ablate || cfg.durSweep || cfg.initial) {
		return nil, fmt.Errorf("-portfolio runs the portfolio study only; it cannot be combined with -csv, -ablate, -dursweep or -initial")
	}
	if cfg.portfolio && cfg.archName == "all" {
		// The unspelled default narrows to the study's reference device;
		// an explicit "all" must not be silently reinterpreted.
		explicitArch := false
		fs.Visit(func(f *flag.Flag) { explicitArch = explicitArch || f.Name == "arch" })
		if explicitArch {
			return nil, fmt.Errorf("-portfolio needs a concrete -arch (default: tokyo); it does not sweep all devices")
		}
	}
	return cfg, nil
}

func run(cfg *config) (err error) {
	if cfg.cpuprofile != "" {
		f, ferr := os.Create(cfg.cpuprofile)
		if ferr != nil {
			return ferr
		}
		// Defers run LIFO: StopCPUProfile flushes before the close. Like
		// the memprofile below, a failed close means a truncated profile
		// and must fail the command (exit-code audit).
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.memprofile != "" {
		f, ferr := os.Create(cfg.memprofile)
		if ferr != nil {
			return ferr
		}
		// The heap profile is written on the way out; a write failure must
		// still fail the command (exit-code audit: no log-only error paths),
		// so the deferred close propagates into the named return when the
		// run itself succeeded.
		defer func() {
			runtime.GC() // settle the heap so the profile shows retained allocations
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if err == nil {
				if werr != nil {
					err = fmt.Errorf("memprofile: %w", werr)
				} else if cerr != nil {
					err = fmt.Errorf("memprofile: %w", cerr)
				}
			}
		}()
	}

	devices := arch.EvaluationDevices()
	if cfg.archName != "all" {
		d, err := arch.ByName(cfg.archName)
		if err != nil {
			return err
		}
		devices = []*arch.Device{d}
	}

	if cfg.portfolio {
		return runPortfolioStudy(cfg, devices)
	}

	fmt.Println("Fig 8 — circuit execution speedup, CODAR vs SABRE (weighted depth ratio)")
	fmt.Println("paper averages: Q16 1.212, Enfield 6x6 1.241, Q20 1.214, Sycamore 1.258")
	fmt.Println()

	var csv *os.File
	if cfg.csvPath != "" {
		var err error
		csv, err = os.Create(cfg.csvPath)
		if err != nil {
			return err
		}
		defer csv.Close()
	}

	var avgRows [][2]string
	for i, dev := range devices {
		res, err := experiments.RunFig8DeviceWorkers(dev, core.Options{}, cfg.workers)
		if err != nil {
			return err
		}
		if err := experiments.WriteFig8(os.Stdout, res); err != nil {
			return err
		}
		if csv != nil {
			if err := experiments.WriteFig8CSV(csv, res, i == 0); err != nil {
				return err
			}
		}
		avgRows = append(avgRows, [2]string{dev.Name, fmt.Sprintf("%.3f", res.AverageSpeedup())})
	}

	fmt.Println("summary (average speedup per architecture):")
	t := metrics.NewTable("architecture", "avg speedup")
	for _, r := range avgRows {
		t.AddRow(r[0], r[1])
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	if cfg.ablate {
		fmt.Println("\nablations (Q20 Tokyo, average speedup vs SABRE):")
		at := metrics.NewTable("variant", "avg speedup")
		tokyo := arch.IBMQ20Tokyo()
		variants := []struct {
			name string
			opts core.Options
		}{
			{"full codar", core.Options{}},
			{"no commutativity", core.Options{DisableCommutativity: true}},
			{"no Hfine", core.Options{DisableHfine: true}},
			{"no look-ahead (paper-exact)", core.Options{Lookahead: -1}},
			{"window 16", core.Options{Window: 16}},
		}
		for _, v := range variants {
			res, err := experiments.RunFig8DeviceWorkers(tokyo, v.opts, cfg.workers)
			if err != nil {
				return err
			}
			at.AddRow(v.name, res.AverageSpeedup())
		}
		if err := at.Render(os.Stdout); err != nil {
			return err
		}
	}

	if cfg.durSweep {
		fmt.Println()
		tokyo := arch.IBMQ20Tokyo()
		points, err := experiments.RunDurationSweep(tokyo, nil, core.Options{})
		if err != nil {
			return err
		}
		if err := experiments.WriteDurationSweep(os.Stdout, tokyo, points); err != nil {
			return err
		}
	}

	if cfg.initial {
		fmt.Println()
		tokyo := arch.IBMQ20Tokyo()
		rows, err := experiments.RunInitialMappingStudy(tokyo, core.Options{})
		if err != nil {
			return err
		}
		if err := experiments.WriteInitialMappingStudy(os.Stdout, tokyo, rows); err != nil {
			return err
		}
	}
	return nil
}

// runPortfolioStudy runs the portfolio-vs-single-shot comparison on each
// selected device (default: Tokyo only, the study's reference device —
// "all" would multiply an already K-way sweep by four).
func runPortfolioStudy(cfg *config, devices []*arch.Device) error {
	if cfg.archName == "all" {
		devices = []*arch.Device{arch.IBMQ20Tokyo()}
	}
	fmt.Println("portfolio study — multi-start portfolio winner vs single-shot CODAR")
	fmt.Println("grid: seeds {1,2} × 4 placements × {codar, sabre}, objective min-depth, early abandon on")
	fmt.Println("ESP columns scored under a synthetic calibration snapshot (not steering)")
	fmt.Println()
	for _, dev := range devices {
		snap := calib.Synthetic(dev, experiments.Seed)
		res, err := experiments.RunPortfolioStudy(dev, snap, core.Options{}, cfg.workers)
		if err != nil {
			return err
		}
		if err := experiments.WritePortfolioStudy(os.Stdout, res); err != nil {
			return err
		}
	}
	return nil
}
