package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8723" || cfg.workers != 0 || cfg.cache <= 0 || cfg.maxBatch <= 0 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.queue <= 0 || cfg.queueWait <= 0 || cfg.timeout <= 0 || cfg.maxTimeout <= 0 || cfg.grace <= 0 {
		t.Errorf("robustness defaults not positive: %+v", cfg)
	}
	if cfg.chaosSlow != 0 || cfg.chaosPanicEvery != 0 {
		t.Errorf("chaos injection on by default: %+v", cfg)
	}
	if cfg.persist != "" || cfg.quotaRPS != 0 || cfg.quotaBurst != 0 || cfg.cacheShards != 0 {
		t.Errorf("persistence/quota/sharding on by default: %+v", cfg)
	}
	if stderr.Len() != 0 {
		t.Errorf("defaults wrote to stderr: %q", stderr.String())
	}
}

// TestParseFlagsErrorPaths: every malformed command line must produce an
// error (so main exits non-zero) and say something on stderr — the silent
// failure modes this guards against are leftover positional arguments and
// nonsense values, both of which package flag accepts without complaint.
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error or stderr output
	}{
		{"positional junk", []string{"8080"}, "unexpected arguments"},
		{"junk after flags", []string{"-cache", "10", "serve"}, "unexpected arguments"},
		{"unknown flag", []string{"-port", "8080"}, "flag provided but not defined"},
		{"bad int", []string{"-workers", "many"}, "invalid value"},
		{"negative workers", []string{"-workers", "-2"}, "-workers must be >= 0"},
		{"zero max-batch", []string{"-max-batch", "0"}, "-max-batch must be >= 1"},
		{"empty addr", []string{"-addr", ""}, "-addr must be non-empty"},
		{"zero max-timeout", []string{"-max-timeout", "0s"}, "-max-timeout must be positive"},
		{"zero grace", []string{"-grace", "0s"}, "-grace must be positive"},
		{"negative chaos-slow", []string{"-chaos-slow", "-1ms"}, "-chaos-slow must be >= 0"},
		{"negative chaos-panic-every", []string{"-chaos-panic-every", "-1"}, "-chaos-panic-every must be >= 0"},
		{"negative cache-shards", []string{"-cache-shards", "-1"}, "-cache-shards must be >= 0"},
		{"negative quota-rps", []string{"-quota-rps", "-5"}, "-quota-rps must be >= 0"},
		{"negative quota-burst", []string{"-quota-burst", "-5"}, "-quota-burst must be >= 0"},
		{"burst without rate", []string{"-quota-burst", "10"}, "-quota-burst requires -quota-rps"},
		{"negative jobs-capacity", []string{"-jobs-capacity", "-1"}, "-jobs-capacity must be >= 0"},
		{"negative jobs-ttl", []string{"-jobs-ttl", "-1s"}, "-jobs-ttl must be >= 0"},
		{"stateless without persist", []string{"-stateless"}, "-stateless requires -persist"},
		{"router without backends", []string{"-router"}, "-router requires -backends"},
		{"backends without router", []string{"-backends", "http://a"}, "-backends only applies with -router"},
		{"zero eject-after", []string{"-router", "-backends", "http://a", "-eject-after", "0"}, "-eject-after must be >= 1"},
		{"zero readmit-after", []string{"-router", "-backends", "http://a", "-readmit-after", "0"}, "-readmit-after must be >= 1"},
		{"zero health-interval", []string{"-router", "-backends", "http://a", "-health-interval", "0s"}, "-health-interval must be positive"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
}
