// Command codard is the long-running qubit-mapping service: an HTTP/JSON
// API over the qasm → circuit → core/sabre → schedule → writer pipeline,
// with a device registry, an LRU result cache and a bounded worker pool
// (internal/service; DESIGN.md §7).
//
// Usage:
//
//	codard [-addr :8723] [-workers 0] [-cache 512] [-max-batch 64]
//
// -addr 127.0.0.1:0 binds an ephemeral port; the chosen address is printed
// on stdout as "codard: listening on http://HOST:PORT" (the CI smoke job
// parses this line).
//
// Endpoints: POST /v1/map, POST /v1/map/batch, GET|POST /v1/devices,
// GET /v1/stats, GET /healthz. Example:
//
//	curl -s localhost:8723/v1/map -d '{"qasm":"...","arch":"tokyo"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"codar/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "codard:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8723", "listen address (host:0 selects an ephemeral port)")
		workers  = flag.Int("workers", 0, "max concurrent mapping jobs (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", service.DefaultCacheSize, "result-cache capacity in entries (negative disables)")
		maxBatch = flag.Int("max-batch", service.DefaultMaxBatch, "max circuits per /v1/map/batch request")
	)
	flag.Parse()

	srv := service.New(service.Config{
		Workers:   *workers,
		CacheSize: *cache,
		MaxBatch:  *maxBatch,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("codard: listening on http://%s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "codard: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}
