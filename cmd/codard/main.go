// Command codard is the long-running qubit-mapping service: an HTTP/JSON
// API over the qasm → circuit → core/sabre → schedule → writer pipeline,
// with a device registry, an LRU result cache and a bounded worker pool
// (internal/service; DESIGN.md §7).
//
// Usage:
//
//	codard [-addr :8723] [-workers 0] [-cache 512] [-max-batch 64]
//
// -addr 127.0.0.1:0 binds an ephemeral port; the chosen address is printed
// on stdout as "codard: listening on http://HOST:PORT" (the CI smoke job
// parses this line).
//
// Endpoints: POST /v1/map, POST /v1/map/batch, GET|POST /v1/devices,
// GET|POST /v1/devices/{name}/calibration, GET /v1/stats, GET /healthz.
// Example:
//
//	curl -s localhost:8723/v1/map -d '{"qasm":"...","arch":"tokyo"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"codar/internal/service"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		// The FlagSet already printed flag-syntax errors and usage to
		// stderr; our own validation errors still need surfacing. Either
		// way the exit code is non-zero — a misconfigured daemon must
		// never start silently.
		fmt.Fprintln(os.Stderr, "codard:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "codard:", err)
		os.Exit(1)
	}
}

// config is the parsed codard command line.
type config struct {
	addr     string
	workers  int
	cache    int
	maxBatch int
}

// parseFlags parses and validates the command line. Errors (including
// leftover positional arguments, which package flag silently ignores) are
// reported on stderr with usage, and returned so main exits non-zero.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("codard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", ":8723", "listen address (host:0 selects an ephemeral port)")
	fs.IntVar(&cfg.workers, "workers", 0, "max concurrent mapping jobs (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.cache, "cache", service.DefaultCacheSize, "result-cache capacity in entries (negative disables)")
	fs.IntVar(&cfg.maxBatch, "max-batch", service.DefaultMaxBatch, "max circuits per /v1/map/batch request")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0, got %d", cfg.workers)
	}
	if cfg.maxBatch <= 0 {
		return nil, fmt.Errorf("-max-batch must be >= 1, got %d", cfg.maxBatch)
	}
	if cfg.addr == "" {
		return nil, fmt.Errorf("-addr must be non-empty")
	}
	return cfg, nil
}

func run(cfg *config) error {
	srv := service.New(service.Config{
		Workers:   cfg.workers,
		CacheSize: cfg.cache,
		MaxBatch:  cfg.maxBatch,
	})
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("codard: listening on http://%s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "codard: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}
