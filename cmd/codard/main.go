// Command codard is the long-running qubit-mapping service: an HTTP/JSON
// API over the qasm → circuit → core/sabre → schedule → writer pipeline,
// with a device registry, an LRU result cache and a bounded worker pool
// (internal/service; DESIGN.md §7).
//
// Usage:
//
//	codard [-addr :8723] [-workers 0] [-cache 512] [-cache-shards 0]
//	       [-max-batch 64] [-queue 64] [-queue-wait 30s] [-timeout 2m]
//	       [-max-timeout 10m] [-grace 10s] [-persist ""] [-quota-rps 0]
//	       [-quota-burst 0] [-chaos-slow 0] [-chaos-panic-every 0]
//	       [-jobs-capacity 0] [-jobs-ttl 0] [-stateless]
//	       [-router -backends URL,URL,...] [-health-interval 2s]
//	       [-eject-after 3] [-readmit-after 2]
//
// -addr 127.0.0.1:0 binds an ephemeral port; the chosen address is printed
// on stdout as "codard: listening on http://HOST:PORT" (the CI smoke job
// parses this line).
//
// Robustness knobs (DESIGN.md §11): -queue/-queue-wait bound the admission
// queue in front of the worker pool (beyond them requests get 429 +
// Retry-After), -timeout is the default per-request mapping deadline
// (clients may lower/raise it via the X-Codard-Timeout header, capped at
// -max-timeout), and -grace bounds shutdown: in-flight mappings that
// outlive it are hard-canceled and codard exits non-zero. The -chaos-*
// flags inject faults (slow mappers, periodic panics) for the CI
// chaos-smoke job; never set them in production.
//
// Result-store knobs (DESIGN.md §12): -cache-shards overrides the shard
// count of the sharded LRU store (0 = auto), -persist names an append-only
// log that warm-starts the cache across restarts, and -quota-rps /
// -quota-burst enable per-client admission quotas keyed by the
// X-Codard-Client header (0 = disabled).
//
// Scale-out (DESIGN.md §13): -jobs-capacity/-jobs-ttl bound the async
// /v1/jobs store, -router turns this process into a stateless front tier
// that rendezvous-hashes circuits across the -backends fleet (probing
// /healthz every -health-interval, ejecting after -eject-after consecutive
// failures and readmitting after -readmit-after successes), and -stateless
// makes -persist a shared directory of per-process member logs so N
// backends can warm-start from each other's results.
//
// Endpoints: POST /v1/map, POST /v1/map/batch, POST /v1/jobs, GET|DELETE
// /v1/jobs/{id} (+ /result, /events), GET|POST /v1/devices,
// GET|POST|PUT /v1/devices/{name}/calibration, GET /v1/stats, GET
// /healthz, GET /metrics (Prometheus text). See docs/API.md. Example:
//
//	curl -s localhost:8723/v1/map -d '{"qasm":"...","arch":"tokyo"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"codar/internal/chaos"
	"codar/internal/persist"
	"codar/internal/router"
	"codar/internal/service"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		// The FlagSet already printed flag-syntax errors and usage to
		// stderr; our own validation errors still need surfacing. Either
		// way the exit code is non-zero — a misconfigured daemon must
		// never start silently.
		fmt.Fprintln(os.Stderr, "codard:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "codard:", err)
		os.Exit(1)
	}
}

// config is the parsed codard command line.
type config struct {
	addr        string
	workers     int
	cache       int
	cacheShards int
	maxBatch    int
	queue       int
	// persist names the append-only warm-start log (empty disables).
	persist string
	// quotaRPS/quotaBurst configure per-client token-bucket admission
	// (X-Codard-Client header); quotaRPS 0 disables quotas.
	quotaRPS   float64
	quotaBurst int
	// grace bounds the shutdown drain: in-flight mappings get this long to
	// finish before they are hard-canceled (and codard exits non-zero).
	grace      time.Duration
	queueWait  time.Duration
	timeout    time.Duration
	maxTimeout time.Duration
	// Chaos fault injection (tests and the CI chaos-smoke job only).
	chaosSlow       time.Duration
	chaosPanicEvery int
	// Async job store bounds (/v1/jobs).
	jobsCapacity int
	jobsTTL      time.Duration
	// stateless treats -persist as a shared directory: this process appends
	// to its own member file and warms from every member's at boot.
	stateless bool
	// Router mode: when router is true this process is the stateless front
	// tier over -backends instead of a mapping backend.
	router         bool
	backends       string
	healthInterval time.Duration
	ejectAfter     int
	readmitAfter   int
}

// parseFlags parses and validates the command line. Errors (including
// leftover positional arguments, which package flag silently ignores) are
// reported on stderr with usage, and returned so main exits non-zero.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("codard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", ":8723", "listen address (host:0 selects an ephemeral port)")
	fs.IntVar(&cfg.workers, "workers", 0, "max concurrent mapping jobs (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.cache, "cache", service.DefaultCacheSize, "result-cache capacity in entries (negative disables)")
	fs.IntVar(&cfg.cacheShards, "cache-shards", 0, "result-cache shard count, rounded up to a power of two (0 = auto)")
	fs.StringVar(&cfg.persist, "persist", "", "append-only cache log for warm starts (empty disables)")
	fs.Float64Var(&cfg.quotaRPS, "quota-rps", 0, "per-client request rate limit keyed by X-Codard-Client (0 disables)")
	fs.IntVar(&cfg.quotaBurst, "quota-burst", 0, "per-client burst allowance on top of -quota-rps (0 = rate rounded up)")
	fs.IntVar(&cfg.maxBatch, "max-batch", service.DefaultMaxBatch, "max circuits per /v1/map/batch request")
	fs.IntVar(&cfg.queue, "queue", service.DefaultMaxQueue, "max mapping jobs queued beyond the executing ones; more are rejected with 429 (negative = no queue)")
	fs.DurationVar(&cfg.queueWait, "queue-wait", service.DefaultQueueWait, "max time a job waits for a worker slot before 429 (negative = unbounded)")
	fs.DurationVar(&cfg.timeout, "timeout", service.DefaultRequestTimeout, "default per-request mapping deadline (negative disables)")
	fs.DurationVar(&cfg.maxTimeout, "max-timeout", service.DefaultMaxTimeout, "cap on client-requested X-Codard-Timeout deadlines")
	fs.DurationVar(&cfg.grace, "grace", 10*time.Second, "shutdown grace: in-flight mappings get this long before hard cancel")
	fs.DurationVar(&cfg.chaosSlow, "chaos-slow", 0, "fault injection: delay every mapping job by this much (0 disables)")
	fs.IntVar(&cfg.chaosPanicEvery, "chaos-panic-every", 0, "fault injection: panic every Nth mapping job (0 disables)")
	fs.IntVar(&cfg.jobsCapacity, "jobs-capacity", 0, "max resident async jobs in the /v1/jobs store (0 = default)")
	fs.DurationVar(&cfg.jobsTTL, "jobs-ttl", 0, "async job retention: results expire (410) this long after finishing (0 = default)")
	fs.BoolVar(&cfg.stateless, "stateless", false, "treat -persist as a shared directory of per-process member logs (scale-out backends)")
	fs.BoolVar(&cfg.router, "router", false, "run as the consistent-hash front tier over -backends instead of mapping locally")
	fs.StringVar(&cfg.backends, "backends", "", "comma-separated backend URLs for -router mode")
	fs.DurationVar(&cfg.healthInterval, "health-interval", router.DefaultHealthInterval, "router: backend /healthz probe cadence")
	fs.IntVar(&cfg.ejectAfter, "eject-after", router.DefaultEjectAfter, "router: consecutive failures before a backend is ejected")
	fs.IntVar(&cfg.readmitAfter, "readmit-after", router.DefaultReadmitAfter, "router: consecutive probe successes before an ejected backend returns")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0, got %d", cfg.workers)
	}
	if cfg.maxBatch <= 0 {
		return nil, fmt.Errorf("-max-batch must be >= 1, got %d", cfg.maxBatch)
	}
	if cfg.addr == "" {
		return nil, fmt.Errorf("-addr must be non-empty")
	}
	if cfg.maxTimeout <= 0 {
		return nil, fmt.Errorf("-max-timeout must be positive, got %v", cfg.maxTimeout)
	}
	if cfg.grace <= 0 {
		return nil, fmt.Errorf("-grace must be positive, got %v", cfg.grace)
	}
	if cfg.chaosSlow < 0 {
		return nil, fmt.Errorf("-chaos-slow must be >= 0, got %v", cfg.chaosSlow)
	}
	if cfg.chaosPanicEvery < 0 {
		return nil, fmt.Errorf("-chaos-panic-every must be >= 0, got %d", cfg.chaosPanicEvery)
	}
	if cfg.cacheShards < 0 {
		return nil, fmt.Errorf("-cache-shards must be >= 0, got %d", cfg.cacheShards)
	}
	if cfg.quotaRPS < 0 {
		return nil, fmt.Errorf("-quota-rps must be >= 0, got %v", cfg.quotaRPS)
	}
	if cfg.quotaBurst < 0 {
		return nil, fmt.Errorf("-quota-burst must be >= 0, got %d", cfg.quotaBurst)
	}
	if cfg.quotaBurst > 0 && cfg.quotaRPS == 0 {
		return nil, fmt.Errorf("-quota-burst requires -quota-rps")
	}
	if cfg.jobsCapacity < 0 {
		return nil, fmt.Errorf("-jobs-capacity must be >= 0, got %d", cfg.jobsCapacity)
	}
	if cfg.jobsTTL < 0 {
		return nil, fmt.Errorf("-jobs-ttl must be >= 0, got %v", cfg.jobsTTL)
	}
	if cfg.stateless && cfg.persist == "" {
		return nil, fmt.Errorf("-stateless requires -persist to name the shared log directory")
	}
	if cfg.router && cfg.backends == "" {
		return nil, fmt.Errorf("-router requires -backends")
	}
	if !cfg.router && cfg.backends != "" {
		return nil, fmt.Errorf("-backends only applies with -router")
	}
	if cfg.ejectAfter <= 0 {
		return nil, fmt.Errorf("-eject-after must be >= 1, got %d", cfg.ejectAfter)
	}
	if cfg.readmitAfter <= 0 {
		return nil, fmt.Errorf("-readmit-after must be >= 1, got %d", cfg.readmitAfter)
	}
	if cfg.healthInterval <= 0 {
		return nil, fmt.Errorf("-health-interval must be positive, got %v", cfg.healthInterval)
	}
	return cfg, nil
}

// runRouter serves the front tier: no mapping pipeline, no cache — just
// rendezvous routing over the configured backends until shutdown.
func runRouter(cfg *config) error {
	rt, err := router.New(router.Config{
		Backends:       strings.Split(cfg.backends, ","),
		HealthInterval: cfg.healthInterval,
		EjectAfter:     cfg.ejectAfter,
		ReadmitAfter:   cfg.readmitAfter,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("codard: listening on http://%s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "codard: router mode over %s\n", cfg.backends)

	hs := &http.Server{Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "codard: %v, shutting down router (grace %v)\n", s, cfg.grace)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.grace)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}

func run(cfg *config) error {
	if cfg.router {
		return runRouter(cfg)
	}
	svcCfg := service.Config{
		Workers:        cfg.workers,
		CacheSize:      cfg.cache,
		Shards:         cfg.cacheShards,
		MaxBatch:       cfg.maxBatch,
		MaxQueue:       cfg.queue,
		QueueWait:      cfg.queueWait,
		RequestTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
		QuotaRPS:       cfg.quotaRPS,
		QuotaBurst:     float64(cfg.quotaBurst),
		JobsCapacity:   cfg.jobsCapacity,
		JobsTTL:        cfg.jobsTTL,
	}
	if cfg.persist != "" {
		open := persist.Open
		if cfg.stateless {
			open = persist.OpenShared
		}
		plog, err := open(cfg.persist, persist.Options{})
		if err != nil {
			return fmt.Errorf("open persist log: %w", err)
		}
		// Closed after Drain below so every entry appended by in-flight
		// requests reaches the file before exit.
		defer plog.Close()
		svcCfg.Persist = plog
		fmt.Fprintf(os.Stderr, "codard: warm-start log %s: %d entries replayed\n", cfg.persist, plog.Loaded())
	}
	if cfg.chaosSlow > 0 || cfg.chaosPanicEvery > 0 {
		svcCfg.Chaos = &chaos.Injector{SlowMapper: cfg.chaosSlow, PanicEvery: cfg.chaosPanicEvery}
		fmt.Fprintf(os.Stderr, "codard: CHAOS MODE: slow=%v panic-every=%d\n", cfg.chaosSlow, cfg.chaosPanicEvery)
	}
	srv := service.New(svcCfg)
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("codard: listening on http://%s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "codard: %v, shutting down (grace %v)\n", s, cfg.grace)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.grace)
		defer cancel()
		// Stop the listener and drain concurrently: Shutdown refuses new
		// connections and waits for handlers, Drain watches the mapping
		// jobs themselves and — when the grace window expires — hard-cancels
		// them through the pipeline's cancellation plumbing so the handlers
		// Shutdown is waiting on actually return.
		shutdownErr := make(chan error, 1)
		go func() { shutdownErr <- hs.Shutdown(ctx) }()
		hard := srv.Drain(ctx)
		err := <-shutdownErr
		if hard {
			return fmt.Errorf("shutdown: in-flight mappings hard-canceled after %v grace", cfg.grace)
		}
		return err
	}
}
