// Command codar maps an OpenQASM 2.0 circuit onto a NISQ architecture with
// the CODAR remapper (or the SABRE baseline) and reports weighted depth,
// swap count and the mapped circuit.
//
// Usage:
//
//	codar -arch tokyo -in circuit.qasm [-algo codar|sabre] [-out mapped.qasm]
//	      [-durations superconducting|iontrap|neutralatom|uniform]
//	      [-seed 1] [-verify] [-stats] [-calib calibration.json] [-lambda 8]
//
// With no -in, the circuit is read from stdin. -calib attaches a
// calibration snapshot (see internal/calib): placement and routing then run
// under the fidelity-weighted metric and the stats report the estimated
// success probability.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/optimize"
	"codar/internal/orient"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/schedule"
	"codar/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "codar:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		archName  = flag.String("arch", "tokyo", "target architecture (q5|melbourne|tokyo|enfield|sycamore|gridRxC|linearN|ringN)")
		algo      = flag.String("algo", "codar", "mapping algorithm: codar or sabre")
		inPath    = flag.String("in", "", "input OpenQASM file (default stdin)")
		outPath   = flag.String("out", "", "write the mapped circuit as OpenQASM to this file")
		durations = flag.String("durations", "superconducting", "duration preset: superconducting|iontrap|neutralatom|uniform")
		seed      = flag.Int64("seed", 1, "seed for the SABRE reverse-traversal initial mapping")
		doVerify  = flag.Bool("verify", false, "verify the mapped circuit (compliance + equivalence [+ statevector on small devices])")
		stats     = flag.Bool("stats", true, "print mapping statistics")
		window    = flag.Int("window", 0, "CODAR commutative-front window (0 = default)")
		lookahead = flag.Int("lookahead", 0, "CODAR look-ahead tie-breaker size (0 = default, negative = off)")
		optimise  = flag.Bool("optimize", false, "run peephole optimisation (inverse cancellation, rotation merge) before mapping")
		orientCX  = flag.Bool("orient", false, "orient CXs for directed devices and lower SWAPs after mapping")
		gantt     = flag.Bool("gantt", false, "print a per-qubit ASCII timeline of the mapped circuit")
		calibPath = flag.String("calib", "", "calibration snapshot JSON; enables fidelity-weighted placement and routing")
		lambda    = flag.Float64("lambda", 0, "error-term gain of the calibrated metric (0 = default, negative = hop-only)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v (flags go before positional input; use -in for the circuit file)", flag.Args())
	}

	dev, err := arch.ByName(*archName)
	if err != nil {
		return err
	}
	switch *durations {
	case "superconducting":
		dev.Durations = arch.SuperconductingDurations()
	case "iontrap":
		dev.Durations = arch.IonTrapDurations()
	case "neutralatom":
		dev.Durations = arch.NeutralAtomDurations()
	case "uniform":
		dev.Durations = arch.UniformDurations()
	default:
		return fmt.Errorf("unknown duration preset %q", *durations)
	}

	var (
		snap *calib.Snapshot
		cost *arch.CostModel
	)
	if *calibPath != "" {
		if snap, err = calib.Load(*calibPath); err != nil {
			return err
		}
		if cost, err = snap.CostModel(dev, *lambda); err != nil {
			return err
		}
	}

	src, err := readInput(*inPath)
	if err != nil {
		return err
	}
	parsed, err := qasm.Parse(src)
	if err != nil {
		return err
	}
	c := circuit.Decompose(parsed)
	if *optimise {
		var ores optimize.Result
		c, ores = optimize.Cancel(c)
		fmt.Fprintf(os.Stderr, "optimize: removed %d gates, merged %d rotations\n", ores.Removed, ores.Merged)
	}
	if c.NumQubits > dev.NumQubits {
		return fmt.Errorf("circuit needs %d qubits but %s has %d", c.NumQubits, dev.Name, dev.NumQubits)
	}

	initial, err := sabre.InitialLayout(c, dev, *seed, sabre.Options{Cost: cost})
	if err != nil {
		return err
	}

	var (
		mapped                     *circuit.Circuit
		initialLayout, finalLayout *arch.Layout
		swaps                      int
	)
	switch *algo {
	case "codar":
		res, err := core.Remap(c, dev, initial, core.Options{Window: *window, Lookahead: *lookahead, Cost: cost})
		if err != nil {
			return err
		}
		mapped, initialLayout, finalLayout, swaps = res.Circuit, res.InitialLayout, res.FinalLayout, res.SwapCount
	case "sabre":
		res, err := sabre.Remap(c, dev, initial, sabre.Options{Cost: cost})
		if err != nil {
			return err
		}
		mapped, initialLayout, finalLayout, swaps = res.Circuit, res.InitialLayout, res.FinalLayout, res.SwapCount
	default:
		return fmt.Errorf("unknown algorithm %q (want codar or sabre)", *algo)
	}

	if *doVerify {
		if err := verify.Full(c, mapped, dev, initialLayout, finalLayout); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Fprintln(os.Stderr, "verification: ok")
	}

	if *orientCX || dev.Directed() {
		oriented, ores, err := orient.Pass(mapped, dev, *orientCX)
		if err != nil {
			return err
		}
		mapped = oriented
		if ores.Reversed > 0 || ores.LoweredSwaps > 0 {
			fmt.Fprintf(os.Stderr, "orient: reversed %d CXs, lowered %d SWAPs\n", ores.Reversed, ores.LoweredSwaps)
		}
	}

	if *gantt {
		fmt.Fprint(os.Stderr, schedule.ASAP(mapped, dev.Durations).Gantt(100))
	}

	if *stats {
		// With a snapshot attached the ESP needs the full ASAP schedule,
		// whose makespan is the weighted depth — build it once.
		var wd int
		var sched *schedule.Schedule
		if snap != nil {
			sched = schedule.ASAP(mapped, dev.Durations)
			wd = sched.Makespan
		} else {
			wd = schedule.WeightedDepth(mapped, dev.Durations)
		}
		fmt.Fprintf(os.Stderr, "device:          %s\n", dev)
		fmt.Fprintf(os.Stderr, "algorithm:       %s\n", *algo)
		fmt.Fprintf(os.Stderr, "input gates:     %d (depth %d, %d qubits)\n", c.Len(), c.Depth(), c.NumQubits)
		fmt.Fprintf(os.Stderr, "output gates:    %d (depth %d)\n", mapped.Len(), mapped.Depth())
		fmt.Fprintf(os.Stderr, "swaps inserted:  %d\n", swaps)
		fmt.Fprintf(os.Stderr, "weighted depth:  %d cycles\n", wd)
		if snap != nil {
			esp, err := snap.Success(sched, dev)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "calibration:     %s (est. success probability %.4g)\n", snap.Hash()[:12], esp)
		}
	}

	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(qasm.Write(mapped)), 0o644); err != nil {
			return err
		}
	} else if !*stats {
		fmt.Print(qasm.Write(mapped))
	}
	return nil
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
