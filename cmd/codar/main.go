// Command codar maps an OpenQASM 2.0 circuit onto a NISQ architecture with
// the CODAR remapper (or the SABRE baseline) and reports weighted depth,
// swap count and the mapped circuit.
//
// Usage:
//
//	codar -arch tokyo -in circuit.qasm [-algo codar|sabre] [-out mapped.qasm]
//	      [-durations superconducting|iontrap|neutralatom|uniform]
//	      [-seed 1] [-verify] [-stats] [-calib calibration.json] [-lambda 8]
//	      [-portfolio] [-seeds 1,2] [-objective min-depth|min-swaps|max-esp]
//	      [-workers 0]
//
// With no -in, the circuit is read from stdin. -calib attaches a
// calibration snapshot (see internal/calib): placement and routing then run
// under the fidelity-weighted metric and the stats report the estimated
// success probability.
//
// -portfolio replaces the single-shot pipeline with the multi-start
// portfolio search (internal/portfolio): every -seeds seed × placement
// method × {codar, sabre} candidate races over the worker pool, the
// -objective picks the winner deterministically, and the per-candidate
// report is printed before the usual stats. The single-shot-only flags
// -algo and -seed are rejected in portfolio mode (the portfolio races both
// algorithms over -seeds), just as -seeds/-objective/-workers are rejected
// without -portfolio.
//
// -stream maps the circuit without ever materializing it: the QASM is
// parsed incrementally, gates flow through a bounded window into the
// streaming remapper (core.RemapStream / sabre.RemapStream — provably
// byte-identical to the batch pipeline under the trivial initial layout),
// and the mapped circuit is written out chunk by chunk. Resident memory is
// O(window), so million-gate circuits map in a few dozen megabytes. Flags
// that need the whole circuit in memory (-portfolio, -seed, -verify,
// -gantt, -optimize, -orient) are rejected in stream mode.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/metrics"
	"codar/internal/optimize"
	"codar/internal/orient"
	"codar/internal/portfolio"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/schedule"
	"codar/internal/verify"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "codar:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "codar:", err)
		os.Exit(1)
	}
}

// config is the parsed codar command line.
type config struct {
	archName  string
	algo      string
	inPath    string
	outPath   string
	durations string
	seed      int64
	doVerify  bool
	stats     bool
	window    int
	lookahead int
	optimise  bool
	orientCX  bool
	gantt     bool
	calibPath string
	lambda    float64
	stream    bool

	portfolioMode bool
	seeds         []int64
	objective     portfolio.Objective
	workers       int
}

// parseFlags parses and validates the command line. Leftover positional
// arguments and out-of-range values are errors printed to stderr with
// usage, so main exits non-zero (PR 4 flag-hardening contract).
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("codar", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	var seedsCSV, objective string
	fs.StringVar(&cfg.archName, "arch", "tokyo", "target architecture (q5|melbourne|tokyo|enfield|sycamore|gridRxC|linearN|ringN)")
	fs.StringVar(&cfg.algo, "algo", "codar", "mapping algorithm: codar or sabre")
	fs.StringVar(&cfg.inPath, "in", "", "input OpenQASM file (default stdin)")
	fs.StringVar(&cfg.outPath, "out", "", "write the mapped circuit as OpenQASM to this file")
	fs.StringVar(&cfg.durations, "durations", "superconducting", "duration preset: superconducting|iontrap|neutralatom|uniform")
	fs.Int64Var(&cfg.seed, "seed", 1, "seed for the SABRE reverse-traversal initial mapping")
	fs.BoolVar(&cfg.doVerify, "verify", false, "verify the mapped circuit (compliance + equivalence [+ statevector on small devices])")
	fs.BoolVar(&cfg.stats, "stats", true, "print mapping statistics")
	fs.IntVar(&cfg.window, "window", 0, "CODAR commutative-front window (0 = default)")
	fs.IntVar(&cfg.lookahead, "lookahead", 0, "CODAR look-ahead tie-breaker size (0 = default, negative = off)")
	fs.BoolVar(&cfg.optimise, "optimize", false, "run peephole optimisation (inverse cancellation, rotation merge) before mapping")
	fs.BoolVar(&cfg.orientCX, "orient", false, "orient CXs for directed devices and lower SWAPs after mapping")
	fs.BoolVar(&cfg.gantt, "gantt", false, "print a per-qubit ASCII timeline of the mapped circuit")
	fs.StringVar(&cfg.calibPath, "calib", "", "calibration snapshot JSON; enables fidelity-weighted placement and routing")
	fs.Float64Var(&cfg.lambda, "lambda", 0, "error-term gain of the calibrated metric (0 = default, negative = hop-only)")
	fs.BoolVar(&cfg.stream, "stream", false, "map the circuit as a stream with bounded memory (trivial initial layout; rejects whole-circuit flags)")
	fs.BoolVar(&cfg.portfolioMode, "portfolio", false, "run the multi-start portfolio search instead of a single-shot mapping")
	fs.StringVar(&seedsCSV, "seeds", "1,2", "portfolio seed list, comma-separated (e.g. 1,2,3)")
	fs.StringVar(&objective, "objective", "min-depth", "portfolio objective: min-depth|min-swaps|max-esp")
	fs.IntVar(&cfg.workers, "workers", 0, "portfolio worker-pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v (flags go before positional input; use -in for the circuit file)", fs.Args())
	}
	// Mode-specific flags must not be silently ignored (the flag-hardening
	// contract: misused flags error, exit non-zero). Explicitly spelled
	// defaults count as usage: -seeds/-objective/-workers only drive the
	// portfolio, -algo/-seed only the single-shot pipeline.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !cfg.portfolioMode {
		for _, name := range []string{"seeds", "objective", "workers"} {
			if explicit[name] {
				return nil, fmt.Errorf("-%s requires -portfolio", name)
			}
		}
	} else {
		for _, name := range []string{"algo", "seed"} {
			if explicit[name] {
				return nil, fmt.Errorf("-%s is single-shot only; the portfolio races both algorithms over -seeds", name)
			}
		}
	}
	if cfg.stream {
		if cfg.portfolioMode {
			return nil, fmt.Errorf("-stream cannot be combined with -portfolio; the portfolio needs the whole circuit in memory")
		}
		for _, name := range []string{"seed", "verify", "gantt", "optimize", "orient"} {
			if explicit[name] {
				return nil, fmt.Errorf("-%s needs the whole circuit in memory and cannot be combined with -stream", name)
			}
		}
	}
	if cfg.algo != "codar" && cfg.algo != "sabre" {
		return nil, fmt.Errorf("-algo must be codar or sabre, got %q", cfg.algo)
	}
	switch cfg.durations {
	case "superconducting", "iontrap", "neutralatom", "uniform":
	default:
		return nil, fmt.Errorf("unknown duration preset %q", cfg.durations)
	}
	if cfg.workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0, got %d", cfg.workers)
	}
	var err error
	if cfg.objective, err = portfolio.ParseObjective(objective); err != nil {
		return nil, err
	}
	if cfg.seeds, err = parseSeeds(seedsCSV); err != nil {
		return nil, err
	}
	if cfg.objective == portfolio.ObjectiveMaxESP && cfg.calibPath == "" {
		return nil, fmt.Errorf("-objective max-esp needs -calib")
	}
	return cfg, nil
}

// parseSeeds parses the -seeds comma-separated list.
func parseSeeds(csv string) ([]int64, error) {
	parts := strings.Split(csv, ",")
	seeds := make([]int64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		s, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-seeds: bad seed %q", p)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("-seeds must list at least one seed")
	}
	return seeds, nil
}

func run(cfg *config) error {
	dev, err := arch.ByName(cfg.archName)
	if err != nil {
		return err
	}
	switch cfg.durations {
	case "superconducting":
		dev.Durations = arch.SuperconductingDurations()
	case "iontrap":
		dev.Durations = arch.IonTrapDurations()
	case "neutralatom":
		dev.Durations = arch.NeutralAtomDurations()
	case "uniform":
		dev.Durations = arch.UniformDurations()
	}

	var (
		snap *calib.Snapshot
		cost *arch.CostModel
	)
	if cfg.calibPath != "" {
		if snap, err = calib.Load(cfg.calibPath); err != nil {
			return err
		}
		if cost, err = snap.CostModel(dev, cfg.lambda); err != nil {
			return err
		}
	}

	if cfg.stream {
		return runStream(cfg, dev, snap, cost)
	}

	src, err := readInput(cfg.inPath)
	if err != nil {
		return err
	}
	parsed, err := qasm.Parse(src)
	if err != nil {
		return err
	}
	c := circuit.Decompose(parsed)
	if cfg.optimise {
		var ores optimize.Result
		c, ores = optimize.Cancel(c)
		fmt.Fprintf(os.Stderr, "optimize: removed %d gates, merged %d rotations\n", ores.Removed, ores.Merged)
	}
	if c.NumQubits > dev.NumQubits {
		return fmt.Errorf("circuit needs %d qubits but %s has %d", c.NumQubits, dev.Name, dev.NumQubits)
	}

	var (
		mapped                     *circuit.Circuit
		initialLayout, finalLayout *arch.Layout
		swaps                      int
		algoLabel                  = cfg.algo
	)
	if cfg.portfolioMode {
		res, err := runPortfolio(cfg, c, dev, snap, cost)
		if err != nil {
			return err
		}
		w := res.Winner
		mapped, initialLayout, finalLayout, swaps = w.Circuit, w.InitialLayout, w.FinalLayout, w.SwapCount
		wr := res.WinnerReport()
		algoLabel = fmt.Sprintf("portfolio(%s) → seed %d / %s / %s", res.Objective, wr.Seed, wr.Placement, wr.Algorithm)
	} else {
		initial, err := sabre.InitialLayout(c, dev, cfg.seed, sabre.Options{Cost: cost})
		if err != nil {
			return err
		}
		switch cfg.algo {
		case "codar":
			res, err := core.Remap(c, dev, initial, core.Options{Window: cfg.window, Lookahead: cfg.lookahead, Cost: cost})
			if err != nil {
				return err
			}
			mapped, initialLayout, finalLayout, swaps = res.Circuit, res.InitialLayout, res.FinalLayout, res.SwapCount
		case "sabre":
			res, err := sabre.Remap(c, dev, initial, sabre.Options{Cost: cost})
			if err != nil {
				return err
			}
			mapped, initialLayout, finalLayout, swaps = res.Circuit, res.InitialLayout, res.FinalLayout, res.SwapCount
		}
	}

	if cfg.doVerify {
		if err := verify.Full(c, mapped, dev, initialLayout, finalLayout); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Fprintln(os.Stderr, "verification: ok")
	}

	if cfg.orientCX || dev.Directed() {
		oriented, ores, err := orient.Pass(mapped, dev, cfg.orientCX)
		if err != nil {
			return err
		}
		mapped = oriented
		if ores.Reversed > 0 || ores.LoweredSwaps > 0 {
			fmt.Fprintf(os.Stderr, "orient: reversed %d CXs, lowered %d SWAPs\n", ores.Reversed, ores.LoweredSwaps)
		}
	}

	if cfg.gantt {
		fmt.Fprint(os.Stderr, schedule.ASAP(mapped, dev.Durations).Gantt(100))
	}

	if cfg.stats {
		// With a snapshot attached the ESP needs the full ASAP schedule,
		// whose makespan is the weighted depth — build it once.
		var wd int
		var sched *schedule.Schedule
		if snap != nil {
			sched = schedule.ASAP(mapped, dev.Durations)
			wd = sched.Makespan
		} else {
			wd = schedule.WeightedDepth(mapped, dev.Durations)
		}
		fmt.Fprintf(os.Stderr, "device:          %s\n", dev)
		fmt.Fprintf(os.Stderr, "algorithm:       %s\n", algoLabel)
		fmt.Fprintf(os.Stderr, "input gates:     %d (depth %d, %d qubits)\n", c.Len(), c.Depth(), c.NumQubits)
		fmt.Fprintf(os.Stderr, "output gates:    %d (depth %d)\n", mapped.Len(), mapped.Depth())
		fmt.Fprintf(os.Stderr, "swaps inserted:  %d\n", swaps)
		fmt.Fprintf(os.Stderr, "weighted depth:  %d cycles\n", wd)
		if snap != nil {
			esp, err := snap.Success(sched, dev)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "calibration:     %s (est. success probability %.4g)\n", snap.Hash()[:12], esp)
		}
	}

	if cfg.outPath != "" {
		if err := os.WriteFile(cfg.outPath, []byte(qasm.Write(mapped)), 0o644); err != nil {
			return err
		}
	} else if !cfg.stats {
		fmt.Print(qasm.Write(mapped))
	}
	return nil
}

// runStream runs the bounded-memory pipeline: incremental QASM parse →
// streaming decomposition → RemapStream → incremental QASM write. The
// initial layout is trivial (SABRE reverse traversal is O(gates) and would
// defeat streaming); the mapped circuit goes to -out, or to stdout when
// -stats is off, gate by gate as chunks flush.
func runStream(cfg *config, dev *arch.Device, snap *calib.Snapshot, cost *arch.CostModel) error {
	var rd io.Reader = os.Stdin
	if cfg.inPath != "" {
		f, err := os.Open(cfg.inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	st, err := qasm.NewStream(rd)
	if err != nil {
		return err
	}
	if st.NumQubits() > dev.NumQubits {
		return fmt.Errorf("circuit needs %d qubits but %s has %d", st.NumQubits(), dev.Name, dev.NumQubits)
	}
	src := circuit.NewDecomposeSource(st)

	var out io.Writer = io.Discard
	var finish func() error
	switch {
	case cfg.outPath != "":
		f, err := os.Create(cfg.outPath)
		if err != nil {
			return err
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		out = bw
		finish = func() error {
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	case !cfg.stats:
		bw := bufio.NewWriterSize(os.Stdout, 1<<16)
		out = bw
		finish = bw.Flush
	}
	sw, err := qasm.NewStreamWriter(out, dev.NumQubits, st.NumClbits())
	if err != nil {
		return err
	}
	sink := schedule.FuncSink(func(chunk []schedule.ScheduledGate) error {
		for i := range chunk {
			if err := sw.WriteGate(chunk[i].Gate); err != nil {
				return err
			}
		}
		return nil
	})

	var gates, swaps, makespan, chunks int
	switch cfg.algo {
	case "codar":
		res, err := core.RemapStream(src, dev, nil, core.Options{Window: cfg.window, Lookahead: cfg.lookahead, Cost: cost}, sink)
		if err != nil {
			return err
		}
		gates, swaps, makespan, chunks = res.Gates, res.SwapCount, res.Makespan, res.Chunks
	case "sabre":
		res, err := sabre.RemapStream(src, dev, nil, sabre.Options{Cost: cost}, sink)
		if err != nil {
			return err
		}
		gates, swaps, makespan, chunks = res.Gates, res.SwapCount, res.Makespan, res.Chunks
	}
	if finish != nil {
		if err := finish(); err != nil {
			return err
		}
	}

	if cfg.stats {
		fmt.Fprintf(os.Stderr, "device:          %s\n", dev)
		fmt.Fprintf(os.Stderr, "algorithm:       %s (streaming, trivial layout)\n", cfg.algo)
		fmt.Fprintf(os.Stderr, "input gates:     %d (%d qubits)\n", st.Gates(), st.NumQubits())
		fmt.Fprintf(os.Stderr, "output gates:    %d (%d chunks)\n", gates, chunks)
		fmt.Fprintf(os.Stderr, "swaps inserted:  %d\n", swaps)
		fmt.Fprintf(os.Stderr, "weighted depth:  %d cycles\n", makespan)
		if snap != nil {
			fmt.Fprintf(os.Stderr, "calibration:     %s (metric only; ESP reporting needs batch mode)\n", snap.Hash()[:12])
		}
	}
	return nil
}

// runPortfolio executes the portfolio search and prints the per-candidate
// report to stderr.
func runPortfolio(cfg *config, c *circuit.Circuit, dev *arch.Device, snap *calib.Snapshot, cost *arch.CostModel) (*portfolio.Result, error) {
	spec := portfolio.Spec{
		Seeds:        cfg.seeds,
		Objective:    cfg.objective,
		Workers:      cfg.workers,
		EarlyAbandon: true,
		Snapshot:     snap,
		Codar:        core.Options{Window: cfg.window, Lookahead: cfg.lookahead, Cost: cost},
		Sabre:        sabre.Options{Cost: cost},
	}
	res, err := portfolio.Run(c, dev, spec)
	if err != nil {
		return nil, err
	}
	norm := spec.Normalized()
	fmt.Fprintf(os.Stderr, "portfolio: %d candidates (%d seeds × %d placements × %d algorithms), objective %s\n",
		len(res.Candidates), len(norm.Seeds), len(norm.Placements), len(norm.Algorithms), res.Objective)
	t := metrics.NewTable("cand", "seed", "placement", "algo", "depth", "swaps", "esp", "status")
	for _, r := range res.Candidates {
		status := "ok"
		switch {
		case r.Err != "":
			status = "error: " + r.Err
		case r.Abandoned:
			status = "abandoned"
		case r.Index == res.WinnerIndex:
			status = "winner"
		}
		t.AddRow(r.Index, r.Seed, string(r.Placement), string(r.Algorithm), r.Depth, r.Swaps, r.ESP, status)
	}
	if err := t.Render(os.Stderr); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "portfolio: completed=%d abandoned=%d\n", res.Completed, res.Abandoned)
	return res, nil
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
