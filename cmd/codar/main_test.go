package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.archName != "tokyo" || cfg.algo != "codar" || !cfg.stats || cfg.portfolioMode {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if len(cfg.seeds) != 2 || cfg.seeds[0] != 1 || cfg.seeds[1] != 2 {
		t.Errorf("default seeds %v", cfg.seeds)
	}
	if string(cfg.objective) != "min-depth" {
		t.Errorf("default objective %q", cfg.objective)
	}
	if stderr.Len() != 0 {
		t.Errorf("defaults wrote to stderr: %q", stderr.String())
	}
}

func TestParseFlagsPortfolio(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-portfolio", "-seeds", "3, 5,8", "-objective", "min-swaps", "-workers", "2"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.portfolioMode || cfg.workers != 2 {
		t.Errorf("portfolio flags not parsed: %+v", cfg)
	}
	if len(cfg.seeds) != 3 || cfg.seeds[0] != 3 || cfg.seeds[1] != 5 || cfg.seeds[2] != 8 {
		t.Errorf("seeds %v", cfg.seeds)
	}
	if string(cfg.objective) != "min-swaps" {
		t.Errorf("objective %q", cfg.objective)
	}
}

// TestParseFlagsErrorPaths: every malformed command line must produce an
// error (so main exits non-zero) and say something on stderr (PR 4
// flag-hardening contract, extended to the portfolio flags).
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error or stderr output
	}{
		{"positional junk", []string{"circuit.qasm"}, "unexpected arguments"},
		{"junk after flags", []string{"-arch", "tokyo", "map"}, "unexpected arguments"},
		{"unknown flag", []string{"-architecture", "tokyo"}, "flag provided but not defined"},
		{"bad algo", []string{"-algo", "astar"}, "-algo must be codar or sabre"},
		{"bad durations", []string{"-durations", "photonic"}, "unknown duration preset"},
		{"bad objective", []string{"-portfolio", "-objective", "fastest"}, "unknown objective"},
		{"bad seed list", []string{"-portfolio", "-seeds", "1,two"}, "bad seed"},
		{"empty seed list", []string{"-portfolio", "-seeds", ","}, "at least one seed"},
		{"negative workers", []string{"-portfolio", "-workers", "-1"}, "-workers must be >= 0"},
		{"max-esp without calib", []string{"-portfolio", "-objective", "max-esp"}, "needs -calib"},
		{"seeds without portfolio", []string{"-seeds", "1,2,3"}, "-seeds requires -portfolio"},
		{"objective without portfolio", []string{"-objective", "min-swaps"}, "-objective requires -portfolio"},
		{"workers without portfolio", []string{"-workers", "2"}, "-workers requires -portfolio"},
		{"algo with portfolio", []string{"-portfolio", "-algo", "sabre"}, "-algo is single-shot only"},
		{"seed with portfolio", []string{"-portfolio", "-seed", "7"}, "-seed is single-shot only"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
}
