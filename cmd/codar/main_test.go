package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/workloads"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.archName != "tokyo" || cfg.algo != "codar" || !cfg.stats || cfg.portfolioMode {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if len(cfg.seeds) != 2 || cfg.seeds[0] != 1 || cfg.seeds[1] != 2 {
		t.Errorf("default seeds %v", cfg.seeds)
	}
	if string(cfg.objective) != "min-depth" {
		t.Errorf("default objective %q", cfg.objective)
	}
	if stderr.Len() != 0 {
		t.Errorf("defaults wrote to stderr: %q", stderr.String())
	}
}

func TestParseFlagsPortfolio(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-portfolio", "-seeds", "3, 5,8", "-objective", "min-swaps", "-workers", "2"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.portfolioMode || cfg.workers != 2 {
		t.Errorf("portfolio flags not parsed: %+v", cfg)
	}
	if len(cfg.seeds) != 3 || cfg.seeds[0] != 3 || cfg.seeds[1] != 5 || cfg.seeds[2] != 8 {
		t.Errorf("seeds %v", cfg.seeds)
	}
	if string(cfg.objective) != "min-swaps" {
		t.Errorf("objective %q", cfg.objective)
	}
}

// TestRunStreamMatchesBatch drives the full -stream pipeline (file →
// incremental parse → streaming remap → incremental write) and pins the
// output file against the batch engine under the same trivial layout, for
// both algorithms.
func TestRunStreamMatchesBatch(t *testing.T) {
	dir := t.TempDir()
	src := workloads.Random(16, 3000, 45, 5)
	in := filepath.Join(dir, "in.qasm")
	if err := os.WriteFile(in, []byte(qasm.Write(src)), 0o644); err != nil {
		t.Fatal(err)
	}
	dev, err := arch.ByName("tokyo")
	if err != nil {
		t.Fatal(err)
	}
	dev.Durations = arch.SuperconductingDurations()
	parsed, err := qasm.Parse(qasm.Write(src))
	if err != nil {
		t.Fatal(err)
	}
	lowered := circuit.Decompose(parsed)

	for _, algo := range []string{"codar", "sabre"} {
		var want []circuit.Gate
		switch algo {
		case "codar":
			res, err := core.Remap(lowered, dev, nil, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want = res.Circuit.Gates
		case "sabre":
			res, err := sabre.Remap(lowered, dev, nil, sabre.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want = res.Circuit.Gates
		}

		out := filepath.Join(dir, algo+".qasm")
		cfg, err := parseFlags([]string{"-arch", "tokyo", "-algo", algo, "-stream", "-in", in, "-out", out, "-stats=false"}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(cfg); err != nil {
			t.Fatalf("%s stream run: %v", algo, err)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := qasm.Parse(string(raw))
		if err != nil {
			t.Fatalf("%s: streamed output does not parse back: %v", algo, err)
		}
		if mapped.NumQubits != dev.NumQubits {
			t.Errorf("%s: output qubits %d, want device %d", algo, mapped.NumQubits, dev.NumQubits)
		}
		if len(mapped.Gates) != len(want) {
			t.Fatalf("%s: streamed %d gates, batch %d", algo, len(mapped.Gates), len(want))
		}
		for i := range mapped.Gates {
			if !mapped.Gates[i].Equal(want[i]) {
				t.Fatalf("%s: gate %d: stream %v, batch %v", algo, i, mapped.Gates[i], want[i])
			}
		}
	}
}

// TestParseFlagsErrorPaths: every malformed command line must produce an
// error (so main exits non-zero) and say something on stderr (PR 4
// flag-hardening contract, extended to the portfolio flags).
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error or stderr output
	}{
		{"positional junk", []string{"circuit.qasm"}, "unexpected arguments"},
		{"junk after flags", []string{"-arch", "tokyo", "map"}, "unexpected arguments"},
		{"unknown flag", []string{"-architecture", "tokyo"}, "flag provided but not defined"},
		{"bad algo", []string{"-algo", "astar"}, "-algo must be codar or sabre"},
		{"bad durations", []string{"-durations", "photonic"}, "unknown duration preset"},
		{"bad objective", []string{"-portfolio", "-objective", "fastest"}, "unknown objective"},
		{"bad seed list", []string{"-portfolio", "-seeds", "1,two"}, "bad seed"},
		{"empty seed list", []string{"-portfolio", "-seeds", ","}, "at least one seed"},
		{"negative workers", []string{"-portfolio", "-workers", "-1"}, "-workers must be >= 0"},
		{"max-esp without calib", []string{"-portfolio", "-objective", "max-esp"}, "needs -calib"},
		{"seeds without portfolio", []string{"-seeds", "1,2,3"}, "-seeds requires -portfolio"},
		{"objective without portfolio", []string{"-objective", "min-swaps"}, "-objective requires -portfolio"},
		{"workers without portfolio", []string{"-workers", "2"}, "-workers requires -portfolio"},
		{"algo with portfolio", []string{"-portfolio", "-algo", "sabre"}, "-algo is single-shot only"},
		{"seed with portfolio", []string{"-portfolio", "-seed", "7"}, "-seed is single-shot only"},
		{"stream with portfolio", []string{"-stream", "-portfolio"}, "-stream cannot be combined with -portfolio"},
		{"stream with seed", []string{"-stream", "-seed", "7"}, "cannot be combined with -stream"},
		{"stream with verify", []string{"-stream", "-verify"}, "cannot be combined with -stream"},
		{"stream with gantt", []string{"-stream", "-gantt"}, "cannot be combined with -stream"},
		{"stream with optimize", []string{"-stream", "-optimize"}, "cannot be combined with -stream"},
		{"stream with orient", []string{"-stream", "-orient"}, "cannot be combined with -stream"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
}
