package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.repeat != 1 || cfg.concurrency != 8 || cfg.maxQubits != 16 || cfg.timeout != 2*time.Minute {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.algo != "codar" {
		t.Errorf("default algo %q", cfg.algo)
	}
	if cfg.cancelFraction != 0 {
		t.Errorf("default cancel-fraction %v, want 0", cfg.cancelFraction)
	}
	if cfg.clientID != "codarload" {
		t.Errorf("default client ID %q, want codarload", cfg.clientID)
	}
	if cfg.jobs || cfg.batch != 0 || cfg.portfolio {
		t.Errorf("async/batch/portfolio on by default: %+v", cfg)
	}
}

// TestParseFlagsChaosMode: the fault-injection knobs parse and validate.
func TestParseFlagsChaosMode(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-cancel-fraction", "0.3", "-timeout", "50ms"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.cancelFraction != 0.3 || cfg.timeout != 50*time.Millisecond {
		t.Errorf("chaos flags not applied: %+v", cfg)
	}
	// -timeout 0 disables the deadline entirely (no X-Codard-Timeout header).
	if cfg, err = parseFlags([]string{"-timeout", "0s"}, &stderr); err != nil || cfg.timeout != 0 {
		t.Errorf("-timeout 0s should be accepted, got cfg=%+v err=%v", cfg, err)
	}
}

// TestParseFlagsErrorPaths: misconfigured load runs must fail loudly before
// any request is sent — positional junk, unknown flags and out-of-range
// values all end in a non-zero exit with a message, never a silent
// "0 requests" success.
func TestParseFlagsErrorPaths(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"positional junk", []string{"http://localhost:8723"}, "unexpected arguments"},
		{"unknown flag", []string{"-host", "x"}, "flag provided but not defined"},
		{"bad duration", []string{"-timeout", "fast"}, "invalid value"},
		{"bad algo", []string{"-algo", "astar"}, "-algo must be codar or sabre"},
		{"zero repeat", []string{"-repeat", "0"}, "-repeat must be >= 1"},
		{"negative concurrency", []string{"-concurrency", "-1"}, "-concurrency must be >= 1"},
		{"zero max-qubits", []string{"-max-qubits", "0"}, "-max-qubits must be >= 1"},
		{"negative limit", []string{"-limit", "-5"}, "-limit must be >= 0"},
		{"negative timeout", []string{"-timeout", "-1s"}, "-timeout must be >= 0"},
		{"cancel-fraction above one", []string{"-cancel-fraction", "1.5"}, "-cancel-fraction must be in [0, 1]"},
		{"negative cancel-fraction", []string{"-cancel-fraction", "-0.1"}, "-cancel-fraction must be in [0, 1]"},
		{"negative batch", []string{"-batch", "-1"}, "-batch must be >= 0"},
		{"jobs with batch", []string{"-jobs", "-batch", "4"}, "mutually exclusive"},
		{"batch with cancel", []string{"-batch", "4", "-cancel-fraction", "0.5"}, "no per-item meaning"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if err == nil {
				t.Fatalf("accepted %v: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.want) && !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("error %q / stderr %q missing %q", err, stderr.String(), tc.want)
			}
		})
	}
}
