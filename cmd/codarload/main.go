// Command codarload is a load generator for the codard mapping service: it
// replays internal/workloads benchmark circuits against a running server
// through the official Go client (package client) and reports throughput,
// latency percentiles and cache behaviour, giving CI and perf work a
// serving-path benchmark that complements the in-process ones in
// bench_test.go.
//
// Usage:
//
//	codard -addr 127.0.0.1:8723 &
//	codarload -server http://127.0.0.1:8723 -arch tokyo -repeat 3 -concurrency 8
//
// -repeat > 1 replays the same circuits, so the steady-state hit rate of
// the server's result cache shows up directly in the report; concurrent
// identical requests that the server collapsed into one computation are
// reported as "collapsed". -client names the load run for the server's
// per-client quota accounting (X-Codard-Client).
//
// Chaos mode (DESIGN.md §11): -timeout sets the per-request mapping
// deadline via the X-Codard-Timeout header, and -cancel-fraction abandons
// that fraction of requests client-side shortly after dispatch, exercising
// the server's disconnect-cancellation path. Canceled, rejected (429) and
// deadline-exceeded (504) outcomes are reported separately from failures
// and do not fail the run — only unexpected errors do. The CI chaos-smoke
// job drives this against a codard started with -chaos-* flags:
//
//	codarload -cancel-fraction 0.3 -timeout 50ms
//
// Alternate request shapes: -jobs sends every request through the async
// job API (submit, poll, fetch — the result bytes are contract-identical
// to the sync path), -batch N packs requests into /v1/map/batch calls of N
// items whose outcomes are decoded individually (an item carrying an error
// envelope is counted by its code, never as a success), and -portfolio
// turns every request into a multi-start portfolio search — the heavy
// workload for router scale-out runs (BENCH_5.json).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"codar/api"
	"codar/client"
	"codar/internal/experiments"
	"codar/internal/metrics"
	"codar/internal/qasm"
	"codar/internal/workloads"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		// Flag-syntax errors already printed usage via the FlagSet; our own
		// validation errors still need surfacing. Either way exit non-zero —
		// a load run with a nonsense configuration must not report success.
		fmt.Fprintln(os.Stderr, "codarload:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "codarload:", err)
		os.Exit(1)
	}
}

// loadConfig is the parsed codarload command line.
type loadConfig struct {
	server      string
	archName    string
	algo        string
	durations   string
	seed        int64
	family      string
	maxQubits   int
	limit       int
	repeat      int
	concurrency int
	// clientID names this run in the X-Codard-Client header, so a server
	// running with -quota-rps accounts the load against one bucket.
	clientID string
	// timeout is the per-request mapping deadline: sent to the server as
	// the X-Codard-Timeout header (so expiry shows up as a 504 and the
	// deadline-exceeded counter, not a client-side abort) and enforced
	// client-side with slack on top. 0 disables the header.
	timeout time.Duration
	// cancelFraction abandons this fraction of requests client-side shortly
	// after dispatch — the load-generator half of the fault-injection
	// harness, driving the server's disconnect-cancellation path (499s and
	// the canceled counter) under real HTTP. 0 disables.
	cancelFraction float64
	// jobs routes every request through the async job API: submit, poll to
	// completion, fetch the result. Latency covers the full round trip.
	jobs bool
	// batch groups requests into /v1/map/batch calls of this many items
	// (0 = single-request mode). Items are decoded individually and counted
	// by their envelope code.
	batch int
	// portfolio replaces each single-shot mapping with the server-default
	// multi-start portfolio search.
	portfolio bool
}

// parseFlags parses and validates the command line. Leftover positional
// arguments (silently ignored by package flag) and out-of-range values are
// errors printed to stderr with usage, so main exits non-zero.
func parseFlags(args []string, stderr io.Writer) (*loadConfig, error) {
	fs := flag.NewFlagSet("codarload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &loadConfig{}
	fs.StringVar(&cfg.server, "server", "http://127.0.0.1:8723", "codard base URL")
	fs.StringVar(&cfg.archName, "arch", "tokyo", "target architecture for every request")
	fs.StringVar(&cfg.algo, "algo", "codar", "mapping algorithm: codar or sabre")
	fs.StringVar(&cfg.durations, "durations", "", "duration preset (empty = device default)")
	fs.Int64Var(&cfg.seed, "seed", 1, "initial-mapping seed")
	fs.StringVar(&cfg.family, "family", "", "only replay benchmarks of this workload family (ghz, qft, bv, ...)")
	fs.IntVar(&cfg.maxQubits, "max-qubits", 16, "skip benchmarks wider than this")
	fs.IntVar(&cfg.limit, "limit", 0, "cap the number of distinct circuits (0 = all eligible)")
	fs.IntVar(&cfg.repeat, "repeat", 1, "times to replay the circuit set (>1 exercises the result cache)")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "concurrent in-flight requests")
	fs.StringVar(&cfg.clientID, "client", "codarload", "X-Codard-Client identity for quota accounting (empty = anonymous)")
	fs.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "per-request mapping deadline, sent as X-Codard-Timeout (0 disables)")
	fs.Float64Var(&cfg.cancelFraction, "cancel-fraction", 0, "fraction of requests abandoned client-side mid-flight (0..1)")
	fs.BoolVar(&cfg.jobs, "jobs", false, "use the async job API (POST /v1/jobs + poll) instead of sync /v1/map")
	fs.IntVar(&cfg.batch, "batch", 0, "group requests into /v1/map/batch calls of this many items (0 = single requests)")
	fs.BoolVar(&cfg.portfolio, "portfolio", false, "request the multi-start portfolio search for every circuit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.algo != "codar" && cfg.algo != "sabre" {
		return nil, fmt.Errorf("-algo must be codar or sabre, got %q", cfg.algo)
	}
	if cfg.repeat < 1 {
		return nil, fmt.Errorf("-repeat must be >= 1, got %d", cfg.repeat)
	}
	if cfg.concurrency < 1 {
		return nil, fmt.Errorf("-concurrency must be >= 1, got %d", cfg.concurrency)
	}
	if cfg.maxQubits < 1 {
		return nil, fmt.Errorf("-max-qubits must be >= 1, got %d", cfg.maxQubits)
	}
	if cfg.limit < 0 {
		return nil, fmt.Errorf("-limit must be >= 0, got %d", cfg.limit)
	}
	if cfg.timeout < 0 {
		return nil, fmt.Errorf("-timeout must be >= 0, got %v", cfg.timeout)
	}
	if cfg.cancelFraction < 0 || cfg.cancelFraction > 1 {
		return nil, fmt.Errorf("-cancel-fraction must be in [0, 1], got %v", cfg.cancelFraction)
	}
	if cfg.batch < 0 {
		return nil, fmt.Errorf("-batch must be >= 0, got %d", cfg.batch)
	}
	if cfg.jobs && cfg.batch > 0 {
		return nil, fmt.Errorf("-jobs and -batch are mutually exclusive")
	}
	if cfg.batch > 0 && cfg.cancelFraction > 0 {
		return nil, fmt.Errorf("-cancel-fraction has no per-item meaning with -batch")
	}
	return cfg, nil
}

func run(cfg *loadConfig) error {
	var circuits []api.MapRequest
	for _, b := range workloads.Suite() {
		if b.Qubits > cfg.maxQubits {
			continue
		}
		if cfg.family != "" && b.Family != cfg.family {
			continue
		}
		req := api.MapRequest{
			QASM:      qasm.Write(b.Circuit()),
			Arch:      cfg.archName,
			Algo:      cfg.algo,
			Durations: cfg.durations,
			Seed:      cfg.seed,
		}
		if cfg.portfolio {
			req.Portfolio = &api.PortfolioSpec{}
		}
		circuits = append(circuits, req)
		if cfg.limit > 0 && len(circuits) >= cfg.limit {
			break
		}
	}
	if len(circuits) == 0 {
		return fmt.Errorf("no eligible benchmarks (family=%q, max-qubits=%d)", cfg.family, cfg.maxQubits)
	}
	reqs := make([]api.MapRequest, 0, len(circuits)*cfg.repeat)
	for r := 0; r < cfg.repeat; r++ {
		reqs = append(reqs, circuits...)
	}

	// The client-side timeout is the mapping deadline plus slack: expiry
	// should normally arrive as the server's 504, not a client abort.
	clientTimeout := time.Duration(0)
	if cfg.timeout > 0 {
		clientTimeout = cfg.timeout + 5*time.Second
	}
	opts := []client.Option{
		client.WithHTTPClient(&http.Client{Timeout: clientTimeout}),
		client.WithTimeout(cfg.timeout),
	}
	if cfg.clientID != "" {
		opts = append(opts, client.WithClientID(cfg.clientID))
	}
	c, err := client.New(cfg.server, opts...)
	if err != nil {
		return err
	}
	// Bounded health poll, so the loader can launch right after codard.
	healthCtx, cancelHealth := context.WithTimeout(context.Background(), 10*time.Second)
	err = c.WaitHealthy(healthCtx)
	cancelHealth()
	if err != nil {
		return err
	}

	type outcome struct {
		latency  time.Duration
		cache    string
		abandond bool // deliberately canceled client-side
		err      error
	}
	// Deterministic selection of the requests to abandon mid-flight: the
	// same command line always cancels the same indices, so chaos runs are
	// reproducible.
	cancelEvery := 0
	if cfg.cancelFraction > 0 {
		cancelEvery = int(1 / cfg.cancelFraction)
	}
	outcomes := make([]outcome, len(reqs))
	start := time.Now()
	if cfg.batch > 0 {
		// Batch mode: pack requests into groups and decode every item on
		// its own — an item whose envelope carries an error code is that
		// error's outcome, never a success, even though the batch call
		// itself returned 200.
		groups := (len(reqs) + cfg.batch - 1) / cfg.batch
		_ = experiments.RunBatch(groups, cfg.concurrency, func(g int) error {
			lo := g * cfg.batch
			hi := min(lo+cfg.batch, len(reqs))
			t0 := time.Now()
			resp, err := c.MapBatch(context.Background(), reqs[lo:hi])
			lat := time.Since(t0)
			if err == nil && len(resp.Items) != hi-lo {
				err = fmt.Errorf("batch returned %d items for %d requests", len(resp.Items), hi-lo)
			}
			for i := lo; i < hi; i++ {
				o := outcome{latency: lat, err: err}
				if err == nil {
					item := &resp.Items[i-lo]
					mr, derr := client.DecodeItem(item)
					o.err = derr
					if derr == nil {
						if mr.MappedQASM == "" {
							o.err = fmt.Errorf("empty mapped_qasm")
						}
						o.cache = item.Cache
					}
				}
				outcomes[i] = o
			}
			return nil
		})
	} else {
		_ = experiments.RunBatch(len(reqs), cfg.concurrency, func(i int) error {
			ctx := context.Background()
			abandon := cancelEvery > 0 && i%cancelEvery == 0
			if abandon {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				timer := time.AfterFunc(clientCancelAfter, cancel)
				defer timer.Stop()
				defer cancel()
			}
			t0 := time.Now()
			var res *client.MapResult
			var err error
			if cfg.jobs {
				var st *api.JobStatus
				if st, err = c.SubmitJob(ctx, &reqs[i]); err == nil {
					res, err = c.WaitJob(ctx, st.ID, jobPollInterval)
				}
			} else {
				res, err = c.Map(ctx, &reqs[i])
			}
			o := outcome{latency: time.Since(t0), abandond: abandon, err: err}
			if err == nil {
				if res.MappedQASM == "" {
					o.err = fmt.Errorf("empty mapped_qasm")
				}
				o.cache = res.Cache
			}
			outcomes[i] = o
			return nil
		})
	}
	wall := time.Since(start)

	var (
		lats      []float64
		hits      int
		collapsed int
		failures  int
		canceled  int
		rejected  int
		deadlines int
	)
	for i, o := range outcomes {
		switch {
		case o.abandond && o.err != nil && errors.Is(o.err, context.Canceled):
			canceled++
			continue
		case errors.Is(o.err, client.ErrQueueFull) || errors.Is(o.err, client.ErrQuotaExceeded):
			rejected++
			continue
		case errors.Is(o.err, client.ErrDeadline):
			deadlines++
			continue
		case o.err != nil:
			failures++
			if failures <= 3 {
				fmt.Fprintf(os.Stderr, "codarload: request %d: %v\n", i, o.err)
			}
			continue
		}
		switch o.cache {
		case "hit":
			hits++
		case "collapsed":
			collapsed++
		}
		lats = append(lats, float64(o.latency)/float64(time.Millisecond))
	}
	sort.Float64s(lats)
	ok := len(lats)
	mode := "sync"
	switch {
	case cfg.jobs:
		mode = "jobs"
	case cfg.batch > 0:
		mode = fmt.Sprintf("batch(%d)", cfg.batch)
	}
	fmt.Printf("codarload: %d requests (%d circuits × %d) against %s\n", len(reqs), len(circuits), cfg.repeat, cfg.server)
	fmt.Printf("  mode=%s portfolio=%v arch=%s algo=%s durations=%q seed=%d concurrency=%d client=%q timeout=%v cancel-fraction=%v\n",
		mode, cfg.portfolio, cfg.archName, cfg.algo, cfg.durations, cfg.seed, cfg.concurrency, cfg.clientID, cfg.timeout, cfg.cancelFraction)
	fmt.Printf("  ok=%d failed=%d canceled=%d rejected=%d deadline=%d cache-hits=%d collapsed=%d wall=%.2fs throughput=%.1f req/s\n",
		ok, failures, canceled, rejected, deadlines, hits, collapsed, wall.Seconds(), float64(ok)/wall.Seconds())
	if ok > 0 {
		fmt.Printf("  latency ms: p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
			metrics.Percentile(lats, 0.50), metrics.Percentile(lats, 0.90),
			metrics.Percentile(lats, 0.99), lats[ok-1])
	}
	// A stats failure is a real error (the server is answering /v1/map but
	// not /v1/stats); it is always surfaced exactly once — inline when the
	// request failures take the exit reason, via the returned error (which
	// main prints) otherwise.
	statsErr := printServerStats(c)
	if failures > 0 {
		if statsErr != nil {
			fmt.Fprintf(os.Stderr, "codarload: stats: %v\n", statsErr)
		}
		return fmt.Errorf("%d of %d requests failed", failures, len(reqs))
	}
	if statsErr != nil {
		return fmt.Errorf("stats: %w", statsErr)
	}
	return nil
}

// clientCancelAfter is how long an abandoned request stays in flight before
// its context is canceled. Long enough for the request to reach the server
// and (usually) start mapping, short enough that the disconnect lands
// mid-mapping on anything but trivial circuits.
const clientCancelAfter = 10 * time.Millisecond

// jobPollInterval is the -jobs mode status-poll cadence. Short, because the
// loader measures job round-trip latency and the poll quantum is its floor.
const jobPollInterval = 5 * time.Millisecond

// printServerStats fetches and prints the server-side /v1/stats view.
func printServerStats(c *client.Client) error {
	stats, err := c.Stats(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("  server: requests=%d hit-rate=%.2f in-flight=%d workers=%d latency p50=%.1fms p99=%.1fms\n",
		stats.Requests, stats.CacheHitRate, stats.InFlight, stats.Workers,
		stats.Latency.P50, stats.Latency.P99)
	fmt.Printf("  server: canceled=%d deadline-exceeded=%d rejected=%d quota-rejected=%d panics=%d queue=%d/%d\n",
		stats.Canceled, stats.DeadlineExceeded, stats.Rejected, stats.QuotaRejected, stats.Panics,
		stats.QueueDepth, stats.QueueCapacity)
	fmt.Printf("  server: mappings=%d collapsed=%d handoffs=%d cache=%d/%d shards=%d pinned=%d evictions=%d\n",
		stats.Mappings, stats.Collapsed, stats.Handoffs, stats.CacheSize, stats.CacheCapacity,
		stats.CacheShards, stats.CachePinned, stats.CacheEvictions)
	return nil
}
