package codar

// Benchmark harness: one target per table/figure of the paper plus
// micro-benchmarks of the hot paths and ablations of the design choices
// called out in DESIGN.md. Regenerate everything with:
//
//	go test -bench=. -benchmem .
//
// The per-figure benchmarks report the headline metric of the figure
// (average speedup, mean fidelity) via b.ReportMetric, so the bench output
// doubles as the experiment record; EXPERIMENTS.md captures paper-vs-
// measured for each.

import (
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/experiments"
	"codar/internal/optimize"
	"codar/internal/placement"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/schedule"
	"codar/internal/sim"
	"codar/internal/transpile"
	"codar/internal/verify"
	"codar/internal/workloads"
)

// --- Table I: the maQAM device models and technology presets -------------

// BenchmarkTableI builds every built-in architecture, including the
// all-pairs distance matrices the heuristics consume, under each Table I
// technology preset.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, dev := range arch.EvaluationDevices() {
			for _, params := range arch.TableI() {
				dev.Durations = params.Durations
				if dev.Duration(circuit.OpCX) <= 0 {
					b.Fatal("bad duration")
				}
			}
		}
	}
}

// --- Fig 8: speedup sweep per architecture --------------------------------

func benchFig8(b *testing.B, dev *arch.Device) {
	b.ReportAllocs()
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8Device(dev, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		avg = res.AverageSpeedup()
	}
	b.ReportMetric(avg, "avg-speedup")
}

// BenchmarkFig8IBMQ16Melbourne regenerates the Fig 8 panel on IBM Q16
// Melbourne (paper average speedup: 1.212).
func BenchmarkFig8IBMQ16Melbourne(b *testing.B) { benchFig8(b, arch.IBMQ16Melbourne()) }

// BenchmarkFig8Enfield6x6 regenerates the Fig 8 panel on the Enfield 6×6
// grid (paper average speedup: 1.241).
func BenchmarkFig8Enfield6x6(b *testing.B) { benchFig8(b, arch.Enfield6x6()) }

// BenchmarkFig8IBMQ20Tokyo regenerates the Fig 8 panel on IBM Q20 Tokyo
// (paper average speedup: 1.214).
func BenchmarkFig8IBMQ20Tokyo(b *testing.B) { benchFig8(b, arch.IBMQ20Tokyo()) }

// BenchmarkFig8SycamoreQ54 regenerates the Fig 8 panel on Google Q54
// Sycamore, including the three 36-qubit programs (paper average speedup:
// 1.258).
func BenchmarkFig8SycamoreQ54(b *testing.B) { benchFig8(b, arch.SycamoreQ54()) }

// BenchmarkFig8TokyoSerial runs the Q20 Tokyo sweep on a single worker —
// the baseline quantifying what the experiments.RunBatch fan-out buys on
// multi-core hosts (compare against BenchmarkFig8IBMQ20Tokyo).
func BenchmarkFig8TokyoSerial(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	b.ReportAllocs()
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8DeviceWorkers(dev, core.Options{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		avg = res.AverageSpeedup()
	}
	b.ReportMetric(avg, "avg-speedup")
}

// --- Fig 9: fidelity maintenance ------------------------------------------

// BenchmarkFig9Fidelity regenerates the fidelity comparison of the seven
// famous algorithms under dephasing- and damping-dominant noise.
func BenchmarkFig9Fidelity(b *testing.B) {
	var codarMean, sabreMean float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig9(12, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		codarMean, sabreMean = 0, 0
		for _, r := range rows {
			codarMean += r.CodarFidelity
			sabreMean += r.SabreFidelity
		}
		codarMean /= float64(len(rows))
		sabreMean /= float64(len(rows))
	}
	b.ReportMetric(codarMean, "codar-fidelity")
	b.ReportMetric(sabreMean, "sabre-fidelity")
}

// --- Ablations of the design choices (DESIGN.md §4) ------------------------

// ablationSubset is a representative slice of the suite for the cheaper
// ablation sweeps.
var ablationSubset = []string{
	"qft_10", "qft_16", "rand_10_g300", "rand_16_g1000",
	"qv_12_d12", "revnet_12_s1", "ising_12_6", "adder_6", "grover_5",
}

func benchAblation(b *testing.B, opts core.Options) {
	dev := arch.IBMQ20Tokyo()
	var avg float64
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for _, name := range ablationSubset {
			bench, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			row, err := experiments.CompareOn(bench, dev, opts)
			if err != nil {
				b.Fatal(err)
			}
			sum += row.Speedup
		}
		avg = sum / float64(len(ablationSubset))
	}
	b.ReportMetric(avg, "avg-speedup")
}

// BenchmarkAblationFull is the reference point for the ablations below.
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, core.Options{}) }

// BenchmarkAblationNoCommutativity replaces the commutative front with the
// plain dependency front (§IV-B turned off).
func BenchmarkAblationNoCommutativity(b *testing.B) {
	benchAblation(b, core.Options{DisableCommutativity: true})
}

// BenchmarkAblationNoHfine drops the fine-priority tie-breaker (Eq. 2 off).
func BenchmarkAblationNoHfine(b *testing.B) { benchAblation(b, core.Options{DisableHfine: true}) }

// BenchmarkAblationNoLookahead disables the look-ahead tie-breaker,
// yielding the paper-exact heuristic.
func BenchmarkAblationNoLookahead(b *testing.B) { benchAblation(b, core.Options{Lookahead: -1}) }

// BenchmarkAblationSmallWindow shrinks the commutative-front scan window.
func BenchmarkAblationSmallWindow(b *testing.B) { benchAblation(b, core.Options{Window: 16}) }

// BenchmarkAblationUniformDurations maps against a duration-blind τ
// (every gate 1 cycle) but still *measures* weighted depth under the real
// superconducting τ — quantifying what duration awareness contributes.
func BenchmarkAblationUniformDurations(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	blind := arch.IBMQ20Tokyo()
	blind.Durations = arch.UniformDurations()
	real := arch.SuperconductingDurations()
	var avg float64
	for i := 0; i < b.N; i++ {
		sum := 0.0
		for _, name := range ablationSubset {
			bench, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			c := bench.Circuit()
			initial, err := sabre.InitialLayout(c, dev, experiments.Seed, sabre.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sres, err := sabre.Remap(c, dev, initial, sabre.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cres, err := core.Remap(c, blind, initial, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sum += float64(schedule.WeightedDepth(sres.Circuit, real)) /
				float64(schedule.WeightedDepth(cres.Circuit, real))
		}
		avg = sum / float64(len(ablationSubset))
	}
	b.ReportMetric(avg, "avg-speedup")
}

// --- Micro-benchmarks of the hot paths -------------------------------------

func benchRemapper(b *testing.B, name string, dev *arch.Device, useSabre bool) {
	bench, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	c := bench.Circuit()
	initial, err := sabre.InitialLayout(c, dev, experiments.Seed, sabre.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if useSabre {
			if _, err := sabre.Remap(c, dev, initial, sabre.Options{}); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := core.Remap(c, dev, initial, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCODARQFT16Tokyo times CODAR on the 640-gate QFT-16 / Q20 pair.
func BenchmarkCODARQFT16Tokyo(b *testing.B) { benchRemapper(b, "qft_16", arch.IBMQ20Tokyo(), false) }

// BenchmarkSABREQFT16Tokyo is the matching baseline cost.
func BenchmarkSABREQFT16Tokyo(b *testing.B) { benchRemapper(b, "qft_16", arch.IBMQ20Tokyo(), true) }

// BenchmarkCODARRandom16Sycamore times CODAR on a 1000-gate random circuit
// over the 54-qubit device.
func BenchmarkCODARRandom16Sycamore(b *testing.B) {
	benchRemapper(b, "rand_16_g1000", arch.SycamoreQ54(), false)
}

// BenchmarkSABRERandom16Sycamore is the matching baseline cost.
func BenchmarkSABRERandom16Sycamore(b *testing.B) {
	benchRemapper(b, "rand_16_g1000", arch.SycamoreQ54(), true)
}

// BenchmarkCommutativeFront times CF computation over a 1000-gate window.
func BenchmarkCommutativeFront(b *testing.B) {
	bench, err := workloads.ByName("rand_16_g1000")
	if err != nil {
		b.Fatal(err)
	}
	gates := bench.Circuit().Gates
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := circuit.CommutativeFront(gates, 256); len(f) == 0 {
			b.Fatal("empty front")
		}
	}
}

// BenchmarkDistanceMatrix times maQAM construction for Sycamore (BFS
// all-pairs distances over 54 qubits).
func BenchmarkDistanceMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if d := arch.SycamoreQ54(); d.NumQubits != 54 {
			b.Fatal("bad device")
		}
	}
}

// BenchmarkASAPSchedule times duration-aware scheduling of a mapped
// 1000-gate circuit.
func BenchmarkASAPSchedule(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	bench, err := workloads.ByName("rand_16_g1000")
	if err != nil {
		b.Fatal(err)
	}
	c := bench.Circuit()
	res, err := core.Remap(c, dev, nil, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := schedule.ASAP(res.Circuit, dev.Durations); s.Makespan == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkNoisyTrajectory times one dephasing+damping trajectory of a
// mapped GHZ-6 on the 3×3 fidelity device.
func BenchmarkNoisyTrajectory(b *testing.B) {
	dev := experiments.FidelityDevice()
	c := workloads.GHZ(6)
	res, err := core.Remap(circuit.Decompose(c), dev, nil, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s := schedule.ASAP(res.Circuit, dev.Durations)
	model := sim.NoiseModel{T1: 1500, T2: 1500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.NoisyRun(s, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQASMParse times the OpenQASM frontend on the emitted QFT-16.
func BenchmarkQASMParse(b *testing.B) {
	src := qasm.Write(workloads.QFT(16))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qasm.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSABREInitialLayout times the shared reverse-traversal
// initial-mapping pass.
func BenchmarkSABREInitialLayout(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	bench, err := workloads.ByName("qft_16")
	if err != nil {
		b.Fatal(err)
	}
	c := bench.Circuit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sabre.InitialLayout(c, dev, experiments.Seed, sabre.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension-study benchmarks -------------------------------------------

// BenchmarkDurationSweep regenerates the duration-heterogeneity extension
// study at two representative ratios.
func BenchmarkDurationSweep(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	var pts float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunDurationSweep(dev, []int{1, 12}, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pts = points[len(points)-1].AvgSpeedup
	}
	b.ReportMetric(pts, "avg-speedup-r12")
}

// BenchmarkInitialMappingStudy regenerates the placement sensitivity study.
func BenchmarkInitialMappingStudy(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunInitialMappingStudy(dev, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateErrorStudy regenerates the §V-B gate-error trade-off study.
func BenchmarkGateErrorStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGateErrorStudy(8, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Compiler-pass micro-benchmarks ----------------------------------------

// BenchmarkOptimizePipeline times the peephole pipeline on a 1000-gate
// random circuit.
func BenchmarkOptimizePipeline(b *testing.B) {
	bench, err := workloads.ByName("rand_16_g1000")
	if err != nil {
		b.Fatal(err)
	}
	c := bench.Circuit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, _ := optimize.Pipeline(c); out.Len() == 0 {
			b.Fatal("pipeline emptied the circuit")
		}
	}
}

// BenchmarkTranspileIonTrap times ion-native lowering of a mapped QFT-8.
func BenchmarkTranspileIonTrap(b *testing.B) {
	dev := arch.Linear(8)
	bench, err := workloads.ByName("qft_8")
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Remap(bench.Circuit(), dev, nil, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transpile.To(res.Circuit, transpile.IonTrap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyEquivalence times the permutation-tracked equivalence
// checker on a mapped 1000-gate circuit.
func BenchmarkVerifyEquivalence(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	bench, err := workloads.ByName("rand_16_g1000")
	if err != nil {
		b.Fatal(err)
	}
	c := bench.Circuit()
	res, err := core.Remap(c, dev, nil, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := verify.Equivalence(c, res.Circuit, res.InitialLayout); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatevector16 times full statevector simulation of a 16-qubit
// benchmark.
func BenchmarkStatevector16(b *testing.B) {
	bench, err := workloads.ByName("qft_16")
	if err != nil {
		b.Fatal(err)
	}
	c := bench.Circuit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDensePlacement times the greedy interaction-aware placement.
func BenchmarkDensePlacement(b *testing.B) {
	dev := arch.SycamoreQ54()
	bench, err := workloads.ByName("rand_16_g1000")
	if err != nil {
		b.Fatal(err)
	}
	c := bench.Circuit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.Dense(c, dev); err != nil {
			b.Fatal(err)
		}
	}
}
