module codar

go 1.21
