package benchmarks

import (
	"os"
	"testing"
)

// streamHeapCeilingBytes is the absolute resident ceiling for streaming the
// 1M-gate workload: ~8x the measured ~4MB peak, and well under the ~70MB
// the batch path's input alone occupies. A footprint that scales with gate
// count — any O(gates) buffer sneaking into the streaming pipeline — blows
// through it immediately.
const streamHeapCeilingBytes = 32 << 20

// TestStreamMillionGateMemoryGuard is the CI memory guard (set
// CODAR_MEMGUARD=1; the perf-guard job runs it with -memprofile so a
// failure ships its heap profile). It streams the 1M-gate benchgen
// workload and asserts the memory claim of the streaming mapper: peak live
// heap stays O(window) — under an absolute ceiling and at least 10x below
// the batch path's resident input footprint.
func TestStreamMillionGateMemoryGuard(t *testing.T) {
	if os.Getenv("CODAR_MEMGUARD") == "" {
		t.Skip("million-gate memory guard: set CODAR_MEMGUARD=1 (runs ~10s)")
	}
	r, err := StreamLargeWorkload()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mapped %d gates (%d swaps) in %d chunks; stream peak %.2f MB, batch resident %.2f MB",
		r.Gates, r.Swaps, r.Chunks,
		float64(r.StreamPeakBytes)/(1<<20), float64(r.BatchResidentBytes)/(1<<20))
	if r.Gates < LargeGates || r.Chunks < 2 {
		t.Fatalf("streaming run degenerated: %d gates in %d chunks", r.Gates, r.Chunks)
	}
	if r.StreamPeakBytes > streamHeapCeilingBytes {
		t.Errorf("stream peak heap %.2f MB exceeds the %d MB ceiling — resident footprint is scaling with gate count",
			float64(r.StreamPeakBytes)/(1<<20), streamHeapCeilingBytes>>20)
	}
	if r.BatchResidentBytes < 10*r.StreamPeakBytes {
		t.Errorf("stream peak %.2f MB is not >= 10x below the batch resident footprint %.2f MB",
			float64(r.StreamPeakBytes)/(1<<20), float64(r.BatchResidentBytes)/(1<<20))
	}
}
