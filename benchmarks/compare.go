package benchmarks

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// CompareOptions tunes Compare.
type CompareOptions struct {
	// Tolerance is the relative wall-clock regression bound: head slower
	// than base by more than this fraction fails the gate. <= 0 selects
	// DefaultTolerance.
	Tolerance float64
	// Normalize rescales the base snapshot's wall times by the ratio of
	// the two snapshots' calibration-loop times, compensating for the two
	// runs having executed on machines of different single-core speed
	// (e.g. a baseline recorded on a developer laptop vs a CI runner).
	// It requires both snapshots to carry CalibNs.
	Normalize bool
}

// DefaultTolerance is the CI regression gate: 10% wall clock.
const DefaultTolerance = 0.10

// Delta is one benchmark's base-vs-head comparison.
type Delta struct {
	Name string `json:"name"`
	// Base/Head are the two measurements (base possibly rescaled, see
	// ScaledBaseNs).
	Base Measurement `json:"base"`
	Head Measurement `json:"head"`
	// ScaledBaseNs is the normalization-adjusted baseline wall time the
	// gate compared against (equal to Base.NsPerOp when Normalize is off).
	ScaledBaseNs int64 `json:"scaled_base_ns"`
	// WallRatio is ScaledBaseNs / Head.NsPerOp: > 1 means head is faster.
	WallRatio float64 `json:"wall_ratio"`
	// BytesRatio is Base.BPerOp / Head.BPerOp (> 1 means head allocates
	// less); 0 when the base measured no allocations.
	BytesRatio float64 `json:"bytes_ratio"`
	// Regressed marks head slower than the tolerance allows.
	Regressed bool `json:"regressed,omitempty"`
	// MetricDrift lists deterministic metrics whose values differ between
	// the snapshots — a behaviour change, reported but not gated here
	// (the fig8-guard pins gate behaviour).
	MetricDrift []string `json:"metric_drift,omitempty"`
	// OnlyIn marks a benchmark present in just one snapshot ("base" or
	// "head"); such rows carry no ratios.
	OnlyIn string `json:"only_in,omitempty"`
}

// Comparison is the full A/B result. PR, Title, Note and Command are
// caller-supplied provenance (absweep -pr/-title/-note), making the
// comparison file self-describing enough to check in as BENCH_N.json.
type Comparison struct {
	SchemaVersion int     `json:"schema_version"`
	PR            int     `json:"pr,omitempty"`
	Title         string  `json:"title,omitempty"`
	Note          string  `json:"note,omitempty"`
	Command       string  `json:"command,omitempty"`
	Tolerance     float64 `json:"tolerance"`
	Normalized    bool    `json:"normalized"`
	// CalibRatio is base CalibNs / head CalibNs (1 when not normalizing):
	// the machine-speed factor applied to the base wall times.
	CalibRatio float64  `json:"calib_ratio"`
	Base       SnapInfo `json:"base"`
	Head       SnapInfo `json:"head"`
	Deltas     []Delta  `json:"deltas"`
	Regressed  []string `json:"regressed,omitempty"`
	Drifted    []string `json:"drifted,omitempty"`
}

// SnapInfo is the provenance stub of one side of a comparison.
type SnapInfo struct {
	Commit    string `json:"commit,omitempty"`
	Date      string `json:"date"`
	Host      string `json:"host"`
	GoVersion string `json:"go_version"`
	Reps      int    `json:"reps"`
	CalibNs   int64  `json:"calib_ns,omitempty"`
}

func info(s *Snapshot) SnapInfo {
	return SnapInfo{Commit: s.Commit, Date: s.Date, Host: s.Host,
		GoVersion: s.GoVersion, Reps: s.Reps, CalibNs: s.CalibNs}
}

// Compare evaluates head against base. The returned Comparison carries one
// Delta per benchmark name in either snapshot; Regressed lists benchmarks
// where head's best wall time exceeds base's (scaled) best wall time by
// more than the tolerance.
func Compare(base, head *Snapshot, opts CompareOptions) (*Comparison, error) {
	tol := opts.Tolerance
	if tol <= 0 {
		tol = DefaultTolerance
	}
	ratio := 1.0
	if opts.Normalize {
		if base.CalibNs <= 0 || head.CalibNs <= 0 {
			return nil, fmt.Errorf("benchmarks: -normalize needs calib_ns in both snapshots (base=%d head=%d)", base.CalibNs, head.CalibNs)
		}
		// base ran on a machine head.CalibNs/base.CalibNs times faster (or
		// slower): rescale base's times into head-machine terms.
		ratio = float64(head.CalibNs) / float64(base.CalibNs)
	}
	cmp := &Comparison{
		SchemaVersion: SchemaVersion,
		Tolerance:     tol,
		Normalized:    opts.Normalize,
		CalibRatio:    ratio,
		Base:          info(base),
		Head:          info(head),
	}

	baseBy := map[string]Measurement{}
	for _, m := range base.Benchmarks {
		baseBy[m.Name] = m
	}
	headBy := map[string]Measurement{}
	for _, m := range head.Benchmarks {
		headBy[m.Name] = m
	}
	names := make([]string, 0, len(baseBy))
	for n := range baseBy {
		names = append(names, n)
	}
	for n := range headBy {
		if _, ok := baseBy[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	for _, n := range names {
		bm, inBase := baseBy[n]
		hm, inHead := headBy[n]
		switch {
		case !inHead:
			cmp.Deltas = append(cmp.Deltas, Delta{Name: n, Base: bm, OnlyIn: "base"})
			continue
		case !inBase:
			cmp.Deltas = append(cmp.Deltas, Delta{Name: n, Head: hm, OnlyIn: "head"})
			continue
		}
		d := Delta{Name: n, Base: bm, Head: hm}
		d.ScaledBaseNs = int64(float64(bm.NsPerOp) * ratio)
		if hm.NsPerOp > 0 {
			d.WallRatio = float64(d.ScaledBaseNs) / float64(hm.NsPerOp)
		}
		if bm.BPerOp > 0 && hm.BPerOp > 0 {
			d.BytesRatio = float64(bm.BPerOp) / float64(hm.BPerOp)
		}
		d.Regressed = float64(hm.NsPerOp) > float64(d.ScaledBaseNs)*(1+tol)
		d.MetricDrift = driftKeys(bm.Metrics, hm.Metrics)
		if d.Regressed {
			cmp.Regressed = append(cmp.Regressed, n)
		}
		if len(d.MetricDrift) > 0 {
			cmp.Drifted = append(cmp.Drifted, n)
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	return cmp, nil
}

// driftKeys lists deterministic metric keys whose values differ (or exist
// on only one side).
func driftKeys(a, b map[string]float64) []string {
	var out []string
	for k, v := range a {
		if Observational(k) {
			continue
		}
		if bv, ok := b[k]; !ok || bv != v {
			out = append(out, k)
		}
	}
	for k := range b {
		if Observational(k) {
			continue
		}
		if _, ok := a[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Ok reports whether the comparison passes the regression gate.
func (c *Comparison) Ok() bool { return len(c.Regressed) == 0 }

// WriteText renders the comparison as an aligned human-readable table.
func (c *Comparison) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%-24s %14s %14s %8s %8s  %s\n", "benchmark", "base ns", "head ns", "wall x", "bytes x", "status")
	for _, d := range c.Deltas {
		if d.OnlyIn != "" {
			fmt.Fprintf(w, "%-24s %14s %14s %8s %8s  only in %s\n", d.Name, "-", "-", "-", "-", d.OnlyIn)
			continue
		}
		status := "ok"
		if d.Regressed {
			status = fmt.Sprintf("REGRESSED (>%.0f%%)", c.Tolerance*100)
		}
		if len(d.MetricDrift) > 0 {
			status += fmt.Sprintf(" drift:%v", d.MetricDrift)
		}
		fmt.Fprintf(w, "%-24s %14d %14d %7.3fx %7.3fx  %s\n",
			d.Name, d.ScaledBaseNs, d.Head.NsPerOp, d.WallRatio, d.BytesRatio, status)
	}
	if c.Normalized {
		fmt.Fprintf(w, "normalized: base wall times scaled by %.4f (calibration-loop ratio)\n", c.CalibRatio)
	}
	if !c.Ok() {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed beyond %.0f%%: %v\n", len(c.Regressed), c.Tolerance*100, c.Regressed)
	}
	return nil
}

// WriteSnapshot writes a snapshot as indented JSON to path ("-" = stdout).
func WriteSnapshot(s *Snapshot, path string) error {
	return writeJSON(s, path)
}

// WriteComparison writes a comparison as indented JSON to path ("-" =
// stdout).
func WriteComparison(c *Comparison, path string) error {
	return writeJSON(c, path)
}

func writeJSON(v interface{}, path string) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadSnapshot loads a snapshot JSON from disk and checks its schema.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchmarks: %s: %w", path, err)
	}
	if s.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchmarks: %s: schema_version %d, this binary speaks %d", path, s.SchemaVersion, SchemaVersion)
	}
	return &s, nil
}
