package benchmarks

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"codar/api"
	"codar/internal/arch"
	"codar/internal/chaos"
	"codar/internal/core"
	"codar/internal/experiments"
	"codar/internal/metrics"
	"codar/internal/pool"
	"codar/internal/portfolio"
	"codar/internal/qasm"
	"codar/internal/router"
	"codar/internal/service"
	"codar/internal/workloads"
)

// portfolioSubset mirrors bench_test.go's ablationSubset: a representative
// slice of the suite that keeps the portfolio row (16 candidates per
// benchmark) affordable at several repetitions.
var portfolioSubset = []string{
	"qft_10", "qft_16", "rand_10_g300", "rand_16_g1000",
	"qv_12_d12", "revnet_12_s1", "ising_12_6", "adder_6", "grover_5",
}

// replayCircuits is the number of distinct suite circuits the service
// replay posts (each twice: a miss pass then a hit pass).
const replayCircuits = 20

// replayConcurrency is the client fan-out of the service replay, matching
// cmd/codarload's default -concurrency.
const replayConcurrency = 4

// LargeGates is the size of the forward-looking generation row: the
// 1M-gate workload named in ROADMAP item 3 (generation only; streaming
// mapping is out of scope).
const LargeGates = 1_000_000

// Suite returns the standard harness benchmarks: the four Fig 8 sweeps,
// the portfolio study on the Tokyo subset, the in-process codarload replay
// and the large-circuit generation row.
func Suite(opts Options) []Benchmark {
	benches := []Benchmark{
		fig8Bench("fig8/melbourne", arch.IBMQ16Melbourne, opts.Workers),
		fig8Bench("fig8/enfield6x6", arch.Enfield6x6, opts.Workers),
		fig8Bench("fig8/tokyo", arch.IBMQ20Tokyo, opts.Workers),
		fig8Bench("fig8/sycamore", arch.SycamoreQ54, opts.Workers),
		portfolioBench("portfolio/tokyo-subset"),
		serviceBench("service/replay"),
		cachedSweepBench("service/cached-sweep"),
		routerScalingBench("service/router-scaling"),
		generateBench("workloads/generate-1m"),
	}
	return benches
}

// fig8Bench wraps one device's Fig 8 sweep. The avg_speedup metric is
// rounded to the three decimals the CI pin check asserts on, so a perf
// comparison that passes also re-proves the pins.
func fig8Bench(name string, dev func() *arch.Device, workers int) Benchmark {
	return Benchmark{Name: name, Run: func() (map[string]float64, error) {
		res, err := experiments.RunFig8DeviceWorkers(dev(), core.Options{}, workers)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"avg_speedup": math.Round(res.AverageSpeedup()*1000) / 1000,
			"benchmarks":  float64(len(res.Rows)),
		}, nil
	}}
}

// portfolioBench wraps the multi-start portfolio study over the Tokyo
// subset: for each benchmark the single-shot pipeline plus the full
// 16-candidate grid (2 seeds × 4 placements × 2 algorithms), exactly the
// per-benchmark work RunPortfolioStudy does.
func portfolioBench(name string) Benchmark {
	return Benchmark{Name: name, Run: func() (map[string]float64, error) {
		dev := arch.IBMQ20Tokyo()
		spec := portfolio.Spec{
			Objective:    portfolio.ObjectiveMinDepth,
			EarlyAbandon: true,
			Workers:      1,
		}
		var ratioSum float64
		wins := 0
		for _, bname := range portfolioSubset {
			b, err := workloads.ByName(bname)
			if err != nil {
				return nil, err
			}
			row, _, err := experiments.PortfolioCompareOn(b, dev, nil, spec)
			if err != nil {
				return nil, err
			}
			if row.SingleWD > 0 {
				ratioSum += float64(row.PortWD) / float64(row.SingleWD)
			}
			if row.PortWD < row.SingleWD {
				wins++
			}
		}
		return map[string]float64{
			"mean_depth_ratio": math.Round(ratioSum/float64(len(portfolioSubset))*1e6) / 1e6,
			"depth_wins":       float64(wins),
			"benchmarks":       float64(len(portfolioSubset)),
		}, nil
	}}
}

// serviceBench replays suite circuits against an in-process codard server —
// the harness equivalent of cmd/codarload, minus the network. Each
// repetition starts a fresh server, posts replayCircuits distinct circuits
// (all cache misses), then the same circuits again (all cache hits), with
// replayConcurrency client workers. Deterministic metrics: request count
// and hit rate. Observational (obs_, excluded from drift gating): latency
// percentiles from /v1/stats.
func serviceBench(name string) Benchmark {
	// Pre-render the QASM once: request construction is not the serving
	// path under measurement.
	var sources []string
	for _, b := range workloads.SmallSuite() {
		if len(sources) == replayCircuits {
			break
		}
		sources = append(sources, qasm.Write(b.Circuit()))
	}
	return Benchmark{Name: name, Run: func() (map[string]float64, error) {
		srv := service.New(service.Config{Workers: replayConcurrency})
		ts := httptest.NewServer(srv)
		defer ts.Close()

		post := func(body []byte) error {
			resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				return fmt.Errorf("service replay: /v1/map returned %d: %s", resp.StatusCode, msg)
			}
			_, err = io.Copy(io.Discard, resp.Body)
			return err
		}

		bodies := make([][]byte, len(sources))
		for i, src := range sources {
			b, err := json.Marshal(service.MapRequest{QASM: src, Arch: "tokyo", Seed: 1})
			if err != nil {
				return nil, err
			}
			bodies[i] = b
		}

		// Two passes: every circuit distinct within a pass, so pass 1 is
		// all misses and pass 2 all hits regardless of client interleaving.
		for pass := 0; pass < 2; pass++ {
			errs := make([]error, len(bodies))
			pool.Run(len(bodies), replayConcurrency, func(i int) {
				errs[i] = post(bodies[i])
			})
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}

		statsResp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			return nil, err
		}
		defer statsResp.Body.Close()
		var stats service.StatsResponse
		if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
			return nil, err
		}
		return map[string]float64{
			"requests":   float64(2 * len(bodies)),
			"hit_rate":   stats.CacheHitRate,
			"obs_p50_ms": stats.Latency.P50,
			"obs_p90_ms": stats.Latency.P90,
			"obs_p99_ms": stats.Latency.P99,
			"obs_max_ms": stats.Latency.Max,
		}, nil
	}}
}

// cachedSweepCircuits is the number of distinct circuits the cached sweep
// primes; cachedSweepRequests is how many requests it then fires at the
// warm store. Small key set, large request count: the sweep measures the
// cache-hit serving path (sharded store lookup + response write), not
// mapping.
const (
	cachedSweepCircuits    = 8
	cachedSweepRequests    = 20_000
	cachedSweepConcurrency = 16
)

// cachedSweepBench measures cached serving throughput: prime a handful of
// circuits, then hammer the warm result store over real HTTP. This is the
// capacity claim behind the sharded store — BENCH_4.json publishes the
// sweep's observed throughput and p99, and the perf guard keeps hit_rate
// pinned at 1 (a miss sneaking into the sweep means the cache key or the
// store broke). Throughput and latency are observational (obs_): they move
// with runner hardware, so they inform rather than gate.
func cachedSweepBench(name string) Benchmark {
	var sources []string
	for _, b := range workloads.SmallSuite() {
		if len(sources) == cachedSweepCircuits {
			break
		}
		sources = append(sources, qasm.Write(b.Circuit()))
	}
	return Benchmark{Name: name, Run: func() (map[string]float64, error) {
		srv := service.New(service.Config{Workers: cachedSweepConcurrency})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		httpc := ts.Client()

		post := func(body []byte) error {
			resp, err := httpc.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				return fmt.Errorf("cached sweep: /v1/map returned %d: %s", resp.StatusCode, msg)
			}
			_, err = io.Copy(io.Discard, resp.Body)
			return err
		}

		bodies := make([][]byte, len(sources))
		for i, src := range sources {
			b, err := json.Marshal(service.MapRequest{QASM: src, Arch: "tokyo", Seed: 1})
			if err != nil {
				return nil, err
			}
			bodies[i] = b
		}
		// Prime pass: every key computed once.
		for _, b := range bodies {
			if err := post(b); err != nil {
				return nil, err
			}
		}

		latencies := make([]float64, cachedSweepRequests)
		errs := make([]error, cachedSweepRequests)
		start := time.Now()
		pool.Run(cachedSweepRequests, cachedSweepConcurrency, func(i int) {
			t0 := time.Now()
			errs[i] = post(bodies[i%len(bodies)])
			latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
		})
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		statsResp, err := httpc.Get(ts.URL + "/v1/stats")
		if err != nil {
			return nil, err
		}
		defer statsResp.Body.Close()
		var stats service.StatsResponse
		if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
			return nil, err
		}
		// Hit rate over the sweep alone: every one of the 20k requests must
		// have been served from the store (the primes are the only misses).
		sweepHits := stats.CacheHits
		sort.Float64s(latencies)
		return map[string]float64{
			"requests":           float64(cachedSweepRequests),
			"hit_rate":           math.Round(float64(sweepHits)/float64(cachedSweepRequests)*1000) / 1000,
			"cache_shards":       float64(stats.CacheShards),
			"obs_throughput_rps": float64(cachedSweepRequests) / wall.Seconds(),
			"obs_p50_ms":         metrics.Percentile(latencies, 0.50),
			"obs_p99_ms":         metrics.Percentile(latencies, 0.99),
		}, nil
	}}
}

// Router-scaling row parameters. Each backend runs routerScaleWorkers
// workers and every mapping carries a fixed routerScaleServiceTime
// injected through the chaos harness, so a backend's sustained job
// throughput is workers/serviceTime by construction — a worker-slot
// capacity model rather than a CPU one, which is what lets the 2-backend
// phase genuinely double capacity on a single-core benchmark host (real
// portfolio CPU per job stays a small fraction of the injected floor).
const (
	routerScaleJobsPerBackend = 60
	routerScaleWorkers        = 2
	routerScaleServiceTime    = 100 * time.Millisecond
	routerScaleClients        = 24
	// Half the service time: detection latency doesn't cost throughput
	// (the queue is routerScaleClients deep, so a freed worker always has
	// a next job), but every poll is a proxied request burning the shared
	// benchmark core, so fewer is faster for both phases.
	routerScalePoll = 25 * time.Millisecond
)

// routerScalingBench measures sustained async portfolio-job throughput
// through the consistent-hash router with one backend, then with two, on
// otherwise identical fresh deployments. Every job is a distinct circuit
// (all cache misses, so every job occupies a worker slot), submitted via
// POST /v1/jobs and polled to completion by routerScaleClients concurrent
// clients. Each phase runs routerScaleJobsPerBackend jobs per backend so
// both phases sustain load for the same wall-clock, and the published
// rate is computed over the trimmed steady-state window (first and last
// 10% of completions dropped as warmup/drain). The claim is the
// obs_scaling ratio: two backends must sustain ~2x the jobs/sec of one.
func routerScalingBench(name string) Benchmark {
	sources := make([]string, 2*routerScaleJobsPerBackend)
	for i := range sources {
		sources[i] = qasm.Write(workloads.Random(4, 20, 45, int64(i+1)))
	}
	return Benchmark{Name: name, Run: func() (map[string]float64, error) {
		bodies := make([][]byte, len(sources))
		for i, src := range sources {
			b, err := json.Marshal(service.MapRequest{
				QASM: src, Arch: "tokyo", Seed: 1,
				Portfolio: &service.PortfolioSpec{
					Seeds:      []int64{1},
					Placements: []string{"trivial"},
					Algorithms: []string{"codar"},
				},
			})
			if err != nil {
				return nil, err
			}
			bodies[i] = b
		}

		phase := func(nBackends int) (float64, error) {
			jobs := bodies[:nBackends*routerScaleJobsPerBackend]
			backends := make([]*httptest.Server, nBackends)
			urls := make([]string, nBackends)
			for i := range backends {
				backends[i] = httptest.NewServer(service.New(service.Config{
					Workers: routerScaleWorkers,
					Chaos:   &chaos.Injector{SlowMapper: routerScaleServiceTime},
				}))
				defer backends[i].Close()
				urls[i] = backends[i].URL
			}
			rt, err := router.New(router.Config{Backends: urls})
			if err != nil {
				return 0, err
			}
			defer rt.Close()
			front := httptest.NewServer(rt)
			defer front.Close()
			httpc := front.Client()

			runJob := func(body []byte) error {
				resp, err := httpc.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					return err
				}
				var st api.JobStatus
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					return fmt.Errorf("router scaling: submit returned %d", resp.StatusCode)
				}
				if err != nil {
					return err
				}
				for {
					time.Sleep(routerScalePoll)
					resp, err := httpc.Get(front.URL + "/v1/jobs/" + st.ID)
					if err != nil {
						return err
					}
					err = json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
					if err != nil {
						return err
					}
					switch st.State {
					case api.JobDone:
						return nil
					case api.JobQueued, api.JobRunning:
					default:
						return fmt.Errorf("router scaling: job %s ended %s", st.ID, st.State)
					}
				}
			}

			errs := make([]error, len(jobs))
			done := make([]time.Time, len(jobs))
			pool.Run(len(jobs), routerScaleClients, func(i int) {
				errs[i] = runJob(jobs[i])
				done[i] = time.Now()
			})
			for _, err := range errs {
				if err != nil {
					return 0, err
				}
			}
			// Sustained rate over the steady-state window: completions
			// sorted, first and last 10% trimmed as warmup/drain.
			sort.Slice(done, func(a, b int) bool { return done[a].Before(done[b]) })
			trim := len(done) / 10
			window := done[trim : len(done)-trim]
			span := window[len(window)-1].Sub(window[0])
			if span <= 0 {
				return 0, fmt.Errorf("router scaling: degenerate steady-state window")
			}
			return float64(len(window)-1) / span.Seconds(), nil
		}

		oneRPS, err := phase(1)
		if err != nil {
			return nil, err
		}
		twoRPS, err := phase(2)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"jobs":                float64(3 * routerScaleJobsPerBackend),
			"workers_per_backend": routerScaleWorkers,
			"obs_jobs_1b_rps":     oneRPS,
			"obs_jobs_2b_rps":     twoRPS,
			"obs_scaling":         twoRPS / oneRPS,
		}, nil
	}}
}

// generateBench times generation of the 1M-gate random workload (the
// benchgen -gates path). Mapping it stays out of scope; the row exists so
// generator-side regressions surface before streaming mapping lands.
func generateBench(name string) Benchmark {
	return Benchmark{Name: name, Run: func() (map[string]float64, error) {
		c := workloads.Random(16, LargeGates, 45, 1)
		if c.Len() < LargeGates {
			return nil, fmt.Errorf("generate-1m: got %d gates, want >= %d", c.Len(), LargeGates)
		}
		return map[string]float64{"gates": float64(c.Len())}, nil
	}}
}
