// Package benchmarks is the continuous A/B perf harness: a programmatic
// runner for the repository's headline workloads — the Fig 8 speedup sweep,
// the serving-path replay (the in-process equivalent of cmd/codarload), the
// multi-start portfolio study and the forward-looking large-circuit
// generation row — that measures wall clock and allocation behaviour over N
// repetitions and emits machine-readable snapshots.
//
// Two snapshots (typically "baseline commit" and "HEAD", or a recorded
// baseline JSON and a fresh run) are compared by Compare (compare.go), which
// reports per-benchmark wall-clock/byte ratios, metric drift and noise
// bounds, and gates on a relative regression tolerance. cmd/absweep is the
// command-line front end; the perf-guard CI job runs it HEAD-vs-baseline
// with a 10% wall-clock gate.
//
// Measurements deliberately use wall clock + runtime.MemStats deltas rather
// than testing.B: the harness must run identically inside a plain binary
// (cmd/absweep at two different commits) and a CI job, and it measures
// multi-second composite workloads where the ~µs overhead of ReadMemStats is
// noise. The per-figure metrics (avg-speedup etc.) ride along in each
// measurement so a perf comparison doubles as a behaviour-drift check.
package benchmarks

import (
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"time"
)

// Sample is one repetition's raw measurement.
type Sample struct {
	Ns     int64 `json:"ns"`
	Bytes  int64 `json:"bytes"`
	Allocs int64 `json:"allocs"`
}

// Measurement is the per-benchmark aggregate over Reps repetitions. NsPerOp
// is the minimum across repetitions (the standard best-of estimator: the
// run least disturbed by the machine); NsMax-NsPerOp is the noise bound.
type Measurement struct {
	Name string `json:"name"`
	Reps int    `json:"reps"`
	// NsPerOp/BPerOp/AllocsPerOp describe the fastest repetition.
	NsPerOp     int64 `json:"ns_per_op"`
	BPerOp      int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// NsMean and NsMax bound the noise across repetitions.
	NsMean int64 `json:"ns_mean"`
	NsMax  int64 `json:"ns_max"`
	// Metrics carries the benchmark's own figures of merit (avg_speedup,
	// hit rate ...), which must not drift across perf changes. Keys with an
	// "obs_" prefix are observational (latency percentiles, throughput):
	// they are recorded from the first repetition but excluded from the
	// determinism check and from Compare's drift gate.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Samples are the raw repetitions, for offline noise analysis.
	Samples []Sample `json:"samples,omitempty"`
}

// Snapshot is one full harness run at one commit/tree state.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	Commit        string `json:"commit,omitempty"`
	Date          string `json:"date"`
	Host          string `json:"host"`
	GoVersion     string `json:"go_version"`
	Reps          int    `json:"reps"`
	// CalibNs is the wall time of the fixed calibration loop on this
	// machine, letting Compare rescale snapshots recorded on different
	// hardware (see Normalize).
	CalibNs    int64         `json:"calib_ns,omitempty"`
	Benchmarks []Measurement `json:"benchmarks"`
}

// SchemaVersion identifies the snapshot layout.
const SchemaVersion = 1

// Options tunes a harness run.
type Options struct {
	// Reps is the repetition count per benchmark; <= 0 selects 3.
	Reps int
	// Filter restricts the suite to benchmarks whose name matches; nil runs
	// everything.
	Filter *regexp.Regexp
	// Workers is the fan-out for the Fig 8 sweeps (0 = GOMAXPROCS,
	// 1 = serial).
	Workers int
	// Handicap scales every recorded wall time by the given factor when
	// > 1 — a synthetic slowdown for demonstrating the regression gate
	// (absweep -handicap). It never touches the workload itself.
	Handicap float64
	// Log, when non-nil, receives one progress line per benchmark.
	Log func(format string, args ...interface{})
}

func (o Options) reps() int {
	if o.Reps <= 0 {
		return 3
	}
	return o.Reps
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Benchmark is one named harness workload. Run executes the workload once
// and returns its figures of merit (or an error, which aborts the harness —
// a benchmark that cannot run is a broken tree, not a slow one).
type Benchmark struct {
	Name string
	Run  func() (map[string]float64, error)
}

// Measure runs fn reps times and aggregates wall clock and allocation
// deltas. The garbage collector is forced between repetitions so one rep's
// garbage is not charged to the next; handicap <= 1 means none.
func Measure(name string, reps int, handicap float64, fn func() (map[string]float64, error)) (Measurement, error) {
	m := Measurement{Name: name, Reps: reps, Samples: make([]Sample, 0, reps)}
	var ms0, ms1 runtime.MemStats
	for r := 0; r < reps; r++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		metrics, err := fn()
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return m, fmt.Errorf("benchmarks: %s: %w", name, err)
		}
		if handicap > 1 {
			ns = int64(float64(ns) * handicap)
		}
		s := Sample{
			Ns:     ns,
			Bytes:  int64(ms1.TotalAlloc - ms0.TotalAlloc),
			Allocs: int64(ms1.Mallocs - ms0.Mallocs),
		}
		m.Samples = append(m.Samples, s)
		if r == 0 {
			m.Metrics = metrics
		} else if !sameMetrics(m.Metrics, metrics) {
			return m, fmt.Errorf("benchmarks: %s: metrics drifted between repetitions (%v vs %v) — the workload is not deterministic", name, m.Metrics, metrics)
		}
	}
	m.finalize()
	return m, nil
}

// finalize computes the aggregate fields from the samples.
func (m *Measurement) finalize() {
	if len(m.Samples) == 0 {
		return
	}
	best := m.Samples[0]
	var sum int64
	for _, s := range m.Samples {
		sum += s.Ns
		if s.Ns > m.NsMax {
			m.NsMax = s.Ns
		}
		if s.Ns < best.Ns {
			best = s
		}
	}
	m.NsPerOp = best.Ns
	m.BPerOp = best.Bytes
	m.AllocsPerOp = best.Allocs
	m.NsMean = sum / int64(len(m.Samples))
}

// Observational reports whether a metric key is excluded from determinism
// and drift checks (see Measurement.Metrics).
func Observational(key string) bool { return strings.HasPrefix(key, "obs_") }

func sameMetrics(a, b map[string]float64) bool {
	count := func(m map[string]float64) int {
		n := 0
		for k := range m {
			if !Observational(k) {
				n++
			}
		}
		return n
	}
	if count(a) != count(b) {
		return false
	}
	for k, v := range a {
		if Observational(k) {
			continue
		}
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// Run executes the given benchmarks under opts and packages the snapshot.
func Run(benches []Benchmark, opts Options) (*Snapshot, error) {
	snap := &Snapshot{
		SchemaVersion: SchemaVersion,
		Date:          time.Now().UTC().Format("2006-01-02"),
		Host:          runtime.GOOS + "/" + runtime.GOARCH,
		GoVersion:     runtime.Version(),
		Reps:          opts.reps(),
		CalibNs:       Calibrate(),
	}
	for _, b := range benches {
		if opts.Filter != nil && !opts.Filter.MatchString(b.Name) {
			continue
		}
		opts.logf("measuring %s (%d reps)", b.Name, opts.reps())
		m, err := Measure(b.Name, opts.reps(), opts.Handicap, b.Run)
		if err != nil {
			return nil, err
		}
		opts.logf("  %s: %.3fs min (%.3fs max), %d MB, metrics %v",
			b.Name, float64(m.NsPerOp)/1e9, float64(m.NsMax)/1e9, m.BPerOp>>20, m.Metrics)
		snap.Benchmarks = append(snap.Benchmarks, m)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchmarks: filter matched no benchmarks")
	}
	return snap, nil
}

// Calibrate times a fixed CPU-bound reference loop (min of three runs).
// The loop's work is identical on every machine, so the ratio of two
// snapshots' CalibNs approximates their single-core speed ratio — the
// scaling factor Compare applies under Normalize to make a snapshot
// recorded on different hardware comparable.
func Calibrate() int64 {
	best := int64(0)
	for r := 0; r < 3; r++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		var acc uint64
		for i := 0; i < 1<<24; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			acc += x
		}
		ns := time.Since(start).Nanoseconds()
		if acc == 0 { // defeat dead-code elimination; never true for this seed
			return 0
		}
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}
