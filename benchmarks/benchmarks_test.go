package benchmarks

import (
	"errors"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fakeBench builds a benchmark whose metrics are fixed; the workload burns
// a trivial amount of CPU so wall times are non-zero.
func fakeBench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Run: func() (map[string]float64, error) {
		x := 1
		for i := 0; i < 1000; i++ {
			x = x*31 + i
		}
		if x == 42 {
			return nil, errors.New("unreachable")
		}
		return metrics, nil
	}}
}

func TestMeasureAggregates(t *testing.T) {
	m, err := Measure("m", 4, 0, func() (map[string]float64, error) {
		return map[string]float64{"v": 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Reps != 4 || len(m.Samples) != 4 {
		t.Fatalf("reps=%d samples=%d, want 4/4", m.Reps, len(m.Samples))
	}
	if m.NsPerOp <= 0 || m.NsMean < m.NsPerOp || m.NsMax < m.NsMean {
		t.Fatalf("ordering violated: min=%d mean=%d max=%d", m.NsPerOp, m.NsMean, m.NsMax)
	}
	if m.Metrics["v"] != 1 {
		t.Fatalf("metrics not carried: %v", m.Metrics)
	}
}

func TestMeasureHandicapScalesWallTime(t *testing.T) {
	plain, err := Measure("m", 3, 0, func() (map[string]float64, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	slowed, err := Measure("m", 3, 1000, func() (map[string]float64, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	// A 1000x handicap dwarfs scheduler noise even on a loaded machine.
	if slowed.NsPerOp < plain.NsPerOp*10 {
		t.Fatalf("handicap did not scale: plain=%d slowed=%d", plain.NsPerOp, slowed.NsPerOp)
	}
}

func TestMeasureRejectsMetricDriftAcrossReps(t *testing.T) {
	calls := 0
	_, err := Measure("m", 2, 0, func() (map[string]float64, error) {
		calls++
		return map[string]float64{"v": float64(calls)}, nil
	})
	if err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Fatalf("want drift error, got %v", err)
	}
}

func TestMeasureAllowsObservationalDrift(t *testing.T) {
	calls := 0
	m, err := Measure("m", 3, 0, func() (map[string]float64, error) {
		calls++
		return map[string]float64{"v": 7, "obs_latency": float64(calls)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics["v"] != 7 {
		t.Fatalf("deterministic metric lost: %v", m.Metrics)
	}
}

func TestRunFilters(t *testing.T) {
	benches := []Benchmark{
		fakeBench("fig8/tokyo", map[string]float64{"s": 1}),
		fakeBench("service/replay", map[string]float64{"s": 2}),
	}
	snap, err := Run(benches, Options{Reps: 1, Filter: regexp.MustCompile(`^fig8/`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 || snap.Benchmarks[0].Name != "fig8/tokyo" {
		t.Fatalf("filter failed: %+v", snap.Benchmarks)
	}
	if snap.CalibNs <= 0 {
		t.Fatal("snapshot missing calibration time")
	}
	if _, err := Run(benches, Options{Reps: 1, Filter: regexp.MustCompile(`nothing`)}); err == nil {
		t.Fatal("empty filter result should error")
	}
}

func snapWith(calib int64, ms ...Measurement) *Snapshot {
	return &Snapshot{SchemaVersion: SchemaVersion, Reps: 1, CalibNs: calib, Benchmarks: ms}
}

func meas(name string, ns, bytes int64, metrics map[string]float64) Measurement {
	return Measurement{Name: name, Reps: 1, NsPerOp: ns, NsMean: ns, NsMax: ns,
		BPerOp: bytes, Metrics: metrics}
}

func TestCompareGatesOnTolerance(t *testing.T) {
	base := snapWith(100, meas("a", 1000, 500, nil), meas("b", 1000, 500, nil))
	head := snapWith(100, meas("a", 1050, 500, nil), meas("b", 1200, 500, nil))
	cmp, err := Compare(base, head, CompareOptions{Tolerance: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ok() {
		t.Fatal("b regressed 20% but comparison passed")
	}
	if len(cmp.Regressed) != 1 || cmp.Regressed[0] != "b" {
		t.Fatalf("regressed=%v, want [b]", cmp.Regressed)
	}
	// a is within tolerance.
	for _, d := range cmp.Deltas {
		if d.Name == "a" && d.Regressed {
			t.Fatal("a (5% slower) should pass a 10% gate")
		}
	}
}

func TestCompareWallAndBytesRatios(t *testing.T) {
	base := snapWith(0, meas("a", 2000, 1000, nil))
	head := snapWith(0, meas("a", 1000, 500, nil))
	cmp, err := Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := cmp.Deltas[0]
	if d.WallRatio != 2.0 || d.BytesRatio != 2.0 {
		t.Fatalf("ratios wall=%g bytes=%g, want 2/2", d.WallRatio, d.BytesRatio)
	}
}

func TestCompareNormalizeRescalesBaseline(t *testing.T) {
	// The baseline machine's calibration loop ran 2x faster than head's
	// (calib 100 vs 200), so base wall times double under -normalize: a
	// head time of 1900 vs raw base 1000 regresses unnormalized but passes
	// once rescaled to 2000.
	base := snapWith(100, meas("a", 1000, 0, nil))
	head := snapWith(200, meas("a", 1900, 0, nil))

	raw, err := Compare(base, head, CompareOptions{Tolerance: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Ok() {
		t.Fatal("unnormalized comparison should regress")
	}
	norm, err := Compare(base, head, CompareOptions{Tolerance: 0.10, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !norm.Ok() {
		t.Fatalf("normalized comparison should pass: %v", norm.Regressed)
	}
	if norm.Deltas[0].ScaledBaseNs != 2000 {
		t.Fatalf("scaled base = %d, want 2000", norm.Deltas[0].ScaledBaseNs)
	}
}

func TestCompareNormalizeNeedsCalibration(t *testing.T) {
	base := snapWith(0, meas("a", 1000, 0, nil))
	head := snapWith(100, meas("a", 1000, 0, nil))
	if _, err := Compare(base, head, CompareOptions{Normalize: true}); err == nil {
		t.Fatal("normalize without calib_ns should error")
	}
}

func TestCompareReportsMetricDriftAndMissing(t *testing.T) {
	base := snapWith(0,
		meas("a", 1000, 0, map[string]float64{"avg_speedup": 1.133, "obs_p50": 4}),
		meas("gone", 1000, 0, nil))
	head := snapWith(0,
		meas("a", 1000, 0, map[string]float64{"avg_speedup": 1.130, "obs_p50": 9}),
		meas("new", 1000, 0, nil))
	cmp, err := Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Drifted) != 1 || cmp.Drifted[0] != "a" {
		t.Fatalf("drifted=%v, want [a]", cmp.Drifted)
	}
	var a, gone, new_ *Delta
	for i := range cmp.Deltas {
		switch cmp.Deltas[i].Name {
		case "a":
			a = &cmp.Deltas[i]
		case "gone":
			gone = &cmp.Deltas[i]
		case "new":
			new_ = &cmp.Deltas[i]
		}
	}
	if a == nil || len(a.MetricDrift) != 1 || a.MetricDrift[0] != "avg_speedup" {
		t.Fatalf("metric drift on a: %+v", a)
	}
	if gone == nil || gone.OnlyIn != "base" || new_ == nil || new_.OnlyIn != "head" {
		t.Fatalf("one-sided rows wrong: gone=%+v new=%+v", gone, new_)
	}
	// Drift must not trip the perf gate.
	if !cmp.Ok() {
		t.Fatal("drift alone must not fail the wall-clock gate")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	snap := snapWith(123, meas("a", 1000, 64, map[string]float64{"v": 1}))
	snap.Commit = "abc1234"
	if err := WriteSnapshot(snap, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Commit != "abc1234" || len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 1000 {
		t.Fatalf("round trip mangled: %+v", got)
	}
}

func TestReadSnapshotRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	snap := snapWith(0, meas("a", 1, 0, nil))
	snap.SchemaVersion = SchemaVersion + 1
	if err := WriteSnapshot(snap, path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("wrong schema version should be rejected")
	}
}

// TestSuiteSmoke runs the cheapest slice of the real suite end to end (the
// service replay over in-process HTTP), proving the wiring works without
// paying for a Fig 8 sweep in unit tests. The full suite runs in CI's
// perf-guard job and in absweep.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("service replay is a few seconds")
	}
	var found *Benchmark
	for _, b := range Suite(Options{}) {
		b := b
		if b.Name == "service/replay" {
			found = &b
		}
	}
	if found == nil {
		t.Fatal("suite is missing service/replay")
	}
	m, err := Measure(found.Name, 1, 0, found.Run)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics["requests"] != 2*replayCircuits {
		t.Fatalf("requests=%v, want %d", m.Metrics["requests"], 2*replayCircuits)
	}
	if m.Metrics["hit_rate"] != 0.5 {
		t.Fatalf("hit_rate=%v, want exactly 0.5 (pass 1 misses, pass 2 hits)", m.Metrics["hit_rate"])
	}
}
