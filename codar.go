// Package codar is a from-scratch Go reproduction of "CODAR: A Contextual
// Duration-Aware Qubit Mapping for Various NISQ Devices" (Deng, Zhang & Li,
// DAC 2020). It provides:
//
//   - a quantum circuit IR with OpenQASM 2.0 parsing and writing;
//   - the maQAM device abstraction (coupling graph + gate-duration map)
//     with the paper's four evaluation architectures built in;
//   - the CODAR remapper (qubit locks, commutativity detection, the
//     ⟨Hbasic, Hfine⟩ heuristic) and the SABRE baseline it is evaluated
//     against;
//   - a duration-aware scheduler (weighted depth), a remapping verifier,
//     and a noisy statevector simulator for the fidelity experiment.
//
// This root package is a facade: it re-exports the library surface through
// type aliases and thin wrappers so downstream users need a single import.
//
// Quickstart:
//
//	c := codar.NewCircuit(3)
//	c.H(0).CX(0, 1).CX(0, 2)
//	dev, _ := codar.DeviceByName("tokyo")
//	res, _ := codar.Remap(c, dev, nil, codar.Options{})
//	fmt.Println(res.Makespan, res.SwapCount)
package codar

import (
	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/optimize"
	"codar/internal/orient"
	"codar/internal/placement"
	"codar/internal/portfolio"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/schedule"
	"codar/internal/sim"
	"codar/internal/transpile"
	"codar/internal/verify"
	"codar/internal/workloads"
)

// Re-exported core types. Aliases keep the internal packages hidden while
// exposing their full method sets.
type (
	// Circuit is an ordered gate sequence over logical or physical qubits.
	Circuit = circuit.Circuit
	// Gate is a single operation.
	Gate = circuit.Gate
	// Op identifies a gate kind.
	Op = circuit.Op
	// Device is the maQAM static structure: coupling graph plus durations.
	Device = arch.Device
	// Coord is a 2-D lattice coordinate used by the Hfine heuristic.
	Coord = arch.Coord
	// Layout is the logical-to-physical qubit mapping π.
	Layout = arch.Layout
	// Durations is the gate-duration map τ in clock cycles.
	Durations = arch.Durations
	// Schedule is a timed gate execution with its makespan.
	Schedule = schedule.Schedule
	// ScheduledGate is one timed gate of a Schedule.
	ScheduledGate = schedule.ScheduledGate
	// Options tunes the CODAR remapper.
	Options = core.Options
	// Result is a CODAR remapping outcome.
	Result = core.Result
	// SabreOptions tunes the SABRE baseline.
	SabreOptions = sabre.Options
	// SabreResult is a SABRE mapping outcome.
	SabreResult = sabre.Result
	// NoiseModel parameterises the dephasing/damping trajectory simulator.
	NoiseModel = sim.NoiseModel
	// State is a statevector.
	State = sim.State
	// Benchmark is one entry of the evaluation workload suite.
	Benchmark = workloads.Benchmark
	// Calibration is a device calibration snapshot: per-edge 2Q error,
	// per-qubit 1Q/readout error and T1/T2.
	Calibration = calib.Snapshot
	// CostModel is a calibration-weighted routing metric accepted by both
	// mappers' Options.Cost.
	CostModel = arch.CostModel
)

// ErrCanceled and ErrDeadline are the pipeline-wide cancellation sentinels:
// Remap, RemapSABRE and MapPortfolio return them (wrapped) when the context
// carried in their options fires mid-run. errors.Is also matches
// context.Canceled / context.DeadlineExceeded respectively.
var (
	ErrCanceled = core.ErrCanceled
	ErrDeadline = core.ErrDeadline
)

// Commonly used gate kinds, re-exported for building circuits directly.
const (
	OpX       = circuit.OpX
	OpY       = circuit.OpY
	OpZ       = circuit.OpZ
	OpH       = circuit.OpH
	OpS       = circuit.OpS
	OpT       = circuit.OpT
	OpRX      = circuit.OpRX
	OpRY      = circuit.OpRY
	OpRZ      = circuit.OpRZ
	OpU1      = circuit.OpU1
	OpU3      = circuit.OpU3
	OpCX      = circuit.OpCX
	OpCZ      = circuit.OpCZ
	OpSwap    = circuit.OpSwap
	OpCP      = circuit.OpCP
	OpCCX     = circuit.OpCCX
	OpMeasure = circuit.OpMeasure
	OpBarrier = circuit.OpBarrier
)

// NewCircuit creates an empty circuit over n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// NewNamedCircuit creates an empty named circuit over n qubits.
func NewNamedCircuit(name string, n int) *Circuit { return circuit.NewNamed(name, n) }

// ParseQASM compiles OpenQASM 2.0 source into a circuit.
func ParseQASM(src string) (*Circuit, error) { return qasm.Parse(src) }

// WriteQASM renders a circuit as OpenQASM 2.0.
func WriteQASM(c *Circuit) string { return qasm.Write(c) }

// Decompose lowers compound gates (ccx, cp, rzz, swap) to the base set the
// remappers accept.
func Decompose(c *Circuit) *Circuit { return circuit.Decompose(c) }

// DeviceByName resolves a built-in device: "q5", "melbourne", "tokyo",
// "enfield", "sycamore", "gridRxC", "linearN", "ringN".
func DeviceByName(name string) (*Device, error) { return arch.ByName(name) }

// NewDevice builds a custom device from an undirected coupling list with
// superconducting default durations.
func NewDevice(name string, numQubits int, edges [][2]int) (*Device, error) {
	return arch.NewDevice(name, numQubits, edges)
}

// EvaluationDevices returns the paper's four Fig 8 architectures.
func EvaluationDevices() []*Device { return arch.EvaluationDevices() }

// Duration presets from the paper's Table I.
var (
	// SuperconductingDurations: 1q = 1, 2q = 2, SWAP = 6 cycles.
	SuperconductingDurations = arch.SuperconductingDurations
	// IonTrapDurations: 2q ≈ 12x 1q.
	IonTrapDurations = arch.IonTrapDurations
	// NeutralAtomDurations: 2q not slower than 1q.
	NeutralAtomDurations = arch.NeutralAtomDurations
	// UniformDurations: every gate 1 cycle (ablation).
	UniformDurations = arch.UniformDurations
)

// TrivialLayout maps logical qubit i to physical qubit i.
func TrivialLayout(logical, physical int) *Layout { return arch.NewTrivialLayout(logical, physical) }

// NewLayout builds a layout from an explicit logical→physical assignment.
func NewLayout(assignment []int, physical int) (*Layout, error) {
	return arch.NewLayout(assignment, physical)
}

// Remap runs the CODAR remapper on c targeting dev from the given initial
// layout (nil = trivial). The circuit must be lowered (see Decompose).
func Remap(c *Circuit, dev *Device, initial *Layout, opts Options) (*Result, error) {
	return core.Remap(c, dev, initial, opts)
}

// RemapSABRE runs the SABRE baseline under the same contract as Remap.
func RemapSABRE(c *Circuit, dev *Device, initial *Layout, opts SabreOptions) (*SabreResult, error) {
	return sabre.Remap(c, dev, initial, opts)
}

// SABREInitialLayout computes the reverse-traversal initial mapping the
// paper gives to both mappers for a fair comparison (§V-A).
func SABREInitialLayout(c *Circuit, dev *Device, seed int64) (*Layout, error) {
	return sabre.InitialLayout(c, dev, seed, sabre.Options{})
}

// SABREInitialLayoutOptions is SABREInitialLayout with explicit SABRE
// options — most usefully a calibration cost model, so placement also avoids
// unreliable couplers.
func SABREInitialLayoutOptions(c *Circuit, dev *Device, seed int64, opts SabreOptions) (*Layout, error) {
	return sabre.InitialLayout(c, dev, seed, opts)
}

// PortfolioOptions configures a multi-start portfolio run (see
// internal/portfolio): seeds × placement methods × algorithms, scored by a
// pluggable objective with deterministic selection.
type PortfolioOptions = portfolio.Spec

// PortfolioResult is a portfolio run outcome: the winner plus a
// per-candidate report.
type PortfolioResult = portfolio.Result

// PortfolioObjective names a portfolio scoring rule.
type PortfolioObjective = portfolio.Objective

// Portfolio objectives.
const (
	// ObjectiveMinDepth selects the shallowest schedule (weighted depth).
	ObjectiveMinDepth = portfolio.ObjectiveMinDepth
	// ObjectiveMinSwaps selects the fewest inserted SWAPs.
	ObjectiveMinSwaps = portfolio.ObjectiveMinSwaps
	// ObjectiveMaxESP selects the highest calibration-estimated success
	// probability (requires PortfolioOptions.Snapshot).
	ObjectiveMaxESP = portfolio.ObjectiveMaxESP
)

// MapPortfolio runs the multi-start portfolio search: K candidate pipelines
// (seeds × placement methods × {codar, sabre}) race over a bounded worker
// pool, every completed schedule is scored by the objective, and the winner
// is selected by a total order (objective, depth, swaps, candidate index) —
// deterministic regardless of goroutine timing. The zero options select
// seeds {1, 2}, all placements, both algorithms and min-depth.
func MapPortfolio(c *Circuit, dev *Device, opts PortfolioOptions) (*PortfolioResult, error) {
	return portfolio.Run(c, dev, opts)
}

// PlacementMethod names an initial-layout strategy.
type PlacementMethod = placement.Method

// Initial-layout strategies (see internal/placement).
const (
	PlaceTrivial      = placement.MethodTrivial
	PlaceRandom       = placement.MethodRandom
	PlaceDense        = placement.MethodDense
	PlaceSabreReverse = placement.MethodSabreReverse
)

// Place generates an initial layout with the named strategy.
func Place(m PlacementMethod, c *Circuit, dev *Device, seed int64) (*Layout, error) {
	return placement.Generate(m, c, dev, seed)
}

// ScheduleASAP schedules a hardware-compliant circuit under τ and returns
// the timed execution.
func ScheduleASAP(c *Circuit, d Durations) *Schedule { return schedule.ASAP(c, d) }

// WeightedDepth returns the paper's figure of merit: the makespan of the
// ASAP schedule of c under τ.
func WeightedDepth(c *Circuit, d Durations) int { return schedule.WeightedDepth(c, d) }

// Verify checks that mapped faithfully implements original on dev: coupling
// compliance, permutation-tracked equivalence and (on small devices) exact
// statevector equality.
func Verify(original, mapped *Circuit, dev *Device, initial, final *Layout) error {
	return verify.Full(original, mapped, dev, initial, final)
}

// Simulate runs a circuit on the statevector simulator from |0...0>.
func Simulate(c *Circuit) (*State, error) { return sim.Run(c) }

// DephasingNoise returns a dephasing-dominant noise model (T2 in cycles).
func DephasingNoise(t2 float64) NoiseModel { return sim.DephasingDominant(t2) }

// DampingNoise returns a damping-dominant noise model (T1 in cycles).
func DampingNoise(t1 float64) NoiseModel { return sim.DampingDominant(t1) }

// EstimateFidelity Monte-Carlo-averages the fidelity of a scheduled circuit
// under the noise model across the given number of trajectories.
func EstimateFidelity(m NoiseModel, s *Schedule, trajectories int, seed int64) (float64, error) {
	return m.FidelityEstimate(s, trajectories, seed)
}

// OptimizeResult summarises a peephole-optimisation run.
type OptimizeResult = optimize.Result

// Optimize applies semantics-preserving peephole rewrites (inverse-pair
// cancellation, rotation merging) to a fixpoint.
func Optimize(c *Circuit) (*Circuit, OptimizeResult) { return optimize.Cancel(c) }

// PipelineResult aggregates the full optimisation pipeline statistics.
type PipelineResult = optimize.PipelineResult

// OptimizePipeline runs the full pre-mapping cleanup: cancellation,
// single-qubit fusion to u3, and a final cancellation pass.
func OptimizePipeline(c *Circuit) (*Circuit, PipelineResult) { return optimize.Pipeline(c) }

// TranspileTarget selects a native gate set (Table I technology).
type TranspileTarget = transpile.Target

// Transpilation targets.
const (
	TargetSuperconducting = transpile.Superconducting
	TargetIonTrap         = transpile.IonTrap
	TargetNeutralAtom     = transpile.NeutralAtom
)

// Transpile lowers a (mapped) circuit to the native gate set of a
// technology: ion traps get R-rotations + Mølmer–Sørensen XX ("one-XX and
// four-R" CNOTs, §III-A), neutral atoms rotations + CX/CZ.
func Transpile(c *Circuit, target TranspileTarget) (*Circuit, error) {
	return transpile.To(c, target)
}

// OrientResult summarises a CX-orientation pass.
type OrientResult = orient.Result

// Orient rewrites a mapped circuit for devices with directed coupling
// (reversed CXs become H-conjugated); lowerSwaps additionally expands
// SWAPs into CX triples.
func Orient(c *Circuit, dev *Device, lowerSwaps bool) (*Circuit, OrientResult, error) {
	return orient.Pass(c, dev, lowerSwaps)
}

// LoadCalibration reads a calibration snapshot from a JSON file.
func LoadCalibration(path string) (*Calibration, error) { return calib.Load(path) }

// SyntheticCalibration generates a deterministic synthetic calibration
// snapshot for a device, seeded per device name.
func SyntheticCalibration(dev *Device, seed int64) *Calibration { return calib.Synthetic(dev, seed) }

// NewCostModel blends a calibration snapshot into a fidelity-weighted
// routing metric for dev (edge weight 1 + lambda*(-log(1-err2)); lambda 0
// selects the calibrated-routing default, negative disables the error
// term). Pass it via Options.Cost or SabreOptions.Cost; with no cost model
// attached, mapping output is bit-identical to the duration-only objective.
func NewCostModel(snap *Calibration, dev *Device, lambda float64) (*CostModel, error) {
	return snap.CostModel(dev, lambda)
}

// EstimateSuccess returns the calibration-estimated success probability of a
// mapped, scheduled circuit: per-gate fidelities times per-qubit decoherence
// survival over the schedule.
func EstimateSuccess(snap *Calibration, s *Schedule, dev *Device) (float64, error) {
	return snap.Success(s, dev)
}

// Suite returns the 71-benchmark evaluation suite.
func Suite() []Benchmark { return workloads.Suite() }

// BenchmarkByName returns one suite entry by name.
func BenchmarkByName(name string) (Benchmark, error) { return workloads.ByName(name) }

// FamousSeven returns the seven algorithms of the Fig 9 fidelity
// experiment.
func FamousSeven() []Benchmark { return workloads.FamousSeven() }
