package codar_test

import (
	"fmt"
	"os"
	"path/filepath"

	"codar"
)

// ExampleRemap is the canonical single-shot usage: build a circuit, pick a
// device, compute the paper's reverse-traversal initial mapping, and remap.
// A good initial mapping places this CX star swap-free on Tokyo — drop the
// SABREInitialLayout call (nil = trivial layout) and SWAPs appear.
func ExampleRemap() {
	c := codar.NewCircuit(5)
	c.H(0).CX(0, 1).CX(0, 2).CX(0, 3).CX(0, 4).T(2).CX(3, 1)

	dev, err := codar.DeviceByName("tokyo")
	if err != nil {
		panic(err)
	}
	initial, err := codar.SABREInitialLayout(c, dev, 1)
	if err != nil {
		panic(err)
	}
	res, err := codar.Remap(c, dev, initial, codar.Options{})
	if err != nil {
		panic(err)
	}
	if err := codar.Verify(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
		panic(err)
	}
	fmt.Printf("weighted depth %d cycles, %d swaps, verified\n",
		codar.WeightedDepth(res.Circuit, dev.Durations), res.SwapCount)
	// Output:
	// weighted depth 9 cycles, 0 swaps, verified
}

// ExampleMapPortfolio runs the multi-start portfolio search: every seed ×
// placement × algorithm candidate is mapped, the objective scores them, and
// selection is deterministic (objective, then depth, swaps, candidate
// index) — so this example's output is stable no matter how the candidates
// interleave.
func ExampleMapPortfolio() {
	c := codar.NewCircuit(5)
	c.H(0).CX(0, 1).CX(0, 2).CX(0, 3).CX(0, 4).T(2).CX(3, 1)

	dev, err := codar.DeviceByName("tokyo")
	if err != nil {
		panic(err)
	}
	res, err := codar.MapPortfolio(c, dev, codar.PortfolioOptions{
		Seeds:     []int64{1, 2},
		Objective: codar.ObjectiveMinDepth,
	})
	if err != nil {
		panic(err)
	}
	w := res.WinnerReport()
	fmt.Printf("%d candidates, winner: seed %d / %s / %s\n",
		len(res.Candidates), w.Seed, w.Placement, w.Algorithm)
	fmt.Printf("weighted depth %d cycles, %d swaps\n", res.Winner.Depth, res.Winner.SwapCount)
	// Output:
	// 16 candidates, winner: seed 1 / dense / codar
	// weighted depth 9 cycles, 0 swaps
}

// ExampleLoadCalibration round-trips a calibration snapshot through JSON
// and attaches it to a mapping run: the cost model steers routing around
// unreliable couplers, and the snapshot scores the mapped schedule's
// estimated success probability.
func ExampleLoadCalibration() {
	dev, err := codar.DeviceByName("tokyo")
	if err != nil {
		panic(err)
	}
	// Real deployments load a backend's daily dump; the synthetic generator
	// stands in for one here, seeded per device so the file is stable.
	snap := codar.SyntheticCalibration(dev, 1)
	path := filepath.Join(os.TempDir(), "codar-example-calibration.json")
	if err := snap.Save(path); err != nil {
		panic(err)
	}
	defer os.Remove(path)

	loaded, err := codar.LoadCalibration(path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("round-trip hash match: %v\n", loaded.Hash() == snap.Hash())

	cost, err := codar.NewCostModel(loaded, dev, 0) // 0 = default lambda
	if err != nil {
		panic(err)
	}
	c := codar.NewCircuit(5)
	c.H(0).CX(0, 1).CX(0, 2).CX(0, 3).CX(0, 4)
	res, err := codar.Remap(c, dev, nil, codar.Options{Cost: cost})
	if err != nil {
		panic(err)
	}
	esp, err := codar.EstimateSuccess(loaded, res.Schedule, dev)
	if err != nil {
		panic(err)
	}
	fmt.Printf("calibrated route: %d swaps, est. success %.2f\n", res.SwapCount, esp)
	// Output:
	// round-trip hash match: true
	// calibrated route: 4 swaps, est. success 0.76
}
