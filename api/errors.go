package api

// Error codes carried in the v1 error envelope. Codes are the
// machine-readable half of the contract: clients branch on them (package
// client maps each to an errors.Is-able sentinel), while messages are
// human-readable and unstable.
const (
	// CodeBadRequest covers malformed bodies, invalid enum values and
	// out-of-range parameters not covered by a more specific code (400).
	CodeBadRequest = "bad_request"
	// CodeBadQASM marks a circuit that failed to parse or that does not
	// fit the target device (400).
	CodeBadQASM = "bad_qasm"
	// CodeUnknownDevice marks an Arch name no builtin, parametric or
	// uploaded device answers to (404).
	CodeUnknownDevice = "unknown_device"
	// CodeNotFound covers every other unknown resource: unrecognised
	// paths, a device without a calibration (404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed marks a known route addressed with the wrong
	// HTTP method; the Allow header lists the accepted ones (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeConflict marks a device upload colliding with an existing name
	// or a full calibration store (409).
	CodeConflict = "conflict"
	// CodePayloadTooLarge marks a request body beyond the server's
	// -max-body bound (413).
	CodePayloadTooLarge = "payload_too_large"
	// CodeQueueFull is the backpressure rejection: the admission queue in
	// front of the worker pool is full, or the queue-wait budget expired
	// (429 with Retry-After).
	CodeQueueFull = "queue_full"
	// CodeQuotaExceeded is the per-client rate-limit rejection: the token
	// bucket for this X-Codard-Client is empty (429 with Retry-After).
	CodeQuotaExceeded = "quota_exceeded"
	// CodeCanceled marks a request whose client went away before the
	// mapping finished (499; normally only observable in batch items and
	// server logs).
	CodeCanceled = "canceled"
	// CodeDeadline marks a mapping canceled by its per-request deadline
	// (504).
	CodeDeadline = "deadline"
	// CodeInternal covers recovered panics and encoding failures (500).
	CodeInternal = "internal"
	// CodeJobNotFound marks a /v1/jobs/{id} ID no resident job answers to —
	// never created, or already reaped past its retention window (404).
	CodeJobNotFound = "job_not_found"
	// CodeJobExpired marks a job whose result was reclaimed by the TTL
	// reaper: the job existed and finished, but its bytes are gone and the
	// spec must be resubmitted (410).
	CodeJobExpired = "job_expired"
	// CodeJobNotDone marks a result fetch on a job that has not reached a
	// result-bearing state yet — still queued, running, or canceled before
	// completion (409).
	CodeJobNotDone = "job_not_done"
	// CodeBackendUnavailable is the router's rejection when no healthy
	// backend remains for a request (503 with Retry-After).
	CodeBackendUnavailable = "backend_unavailable"
)

// ErrorBody is the inner object of the v1 error envelope.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail. Its wording is not part of the
	// contract; branch on Code.
	Message string `json:"message"`
	// RequestID echoes the server-assigned X-Codard-Request-Id, so an
	// error can be joined with the server log.
	RequestID string `json:"request_id,omitempty"`
}

// ErrorEnvelope is the body of every non-2xx v1 response:
//
//	{"error": {"code": "queue_full", "message": "...", "request_id": "..."}}
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}
