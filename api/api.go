// Package api is the versioned wire contract of the codard mapping
// service: every v1 request and response body, the machine-readable error
// envelope, and the custom header names. It is the single source of truth
// shared by the server (internal/service), the Go client (package client)
// and any third-party consumer; docs/API.md is the written form of the
// same contract.
//
// The package is intentionally dependency-free (standard library only) so
// importing the contract never drags in the mapping pipeline.
package api

import "encoding/json"

// Version is the API version every route in this package describes. Routes
// are rooted at "/" + Version ("/v1/map", ...); unversioned endpoints
// (/healthz, /metrics) sit outside it.
const Version = "v1"

// Custom header names. See docs/API.md for their semantics.
const (
	// HeaderCache reports the cache disposition of a /v1/map response:
	// "hit" (served from the result cache), "miss" (computed by this
	// request) or "collapsed" (computed once by a concurrent identical
	// request and shared).
	HeaderCache = "X-Codard-Cache"
	// HeaderTimeout carries a client-requested per-request mapping
	// deadline as a Go duration string ("500ms", "30s"); the server clamps
	// it to its -max-timeout.
	HeaderTimeout = "X-Codard-Timeout"
	// HeaderRequestID is assigned by the server to every request and
	// echoed in error envelopes, so a client-side error report can be
	// joined with the server log.
	HeaderRequestID = "X-Codard-Request-Id"
	// HeaderClient names the calling client for per-client quota
	// accounting. Requests without it share one anonymous bucket.
	HeaderClient = "X-Codard-Client"
	// HeaderRetryAfter is the standard Retry-After header, set on every
	// 429 (queue_full / quota_exceeded) response.
	HeaderRetryAfter = "Retry-After"
)

// MapRequest is the POST /v1/map body.
type MapRequest struct {
	// QASM is the OpenQASM 2.0 source of the circuit to map.
	QASM string `json:"qasm"`
	// Arch names the target device: a builtin (tokyo, melbourne, enfield,
	// sycamore, q5, qx4, grid3x4, linear9, ring12, ...) or an uploaded one.
	Arch string `json:"arch"`
	// Algo selects the mapper: "codar" (default) or "sabre".
	Algo string `json:"algo,omitempty"`
	// Durations names a duration preset (superconducting, iontrap,
	// neutralatom, uniform); empty keeps the device's own durations.
	Durations string `json:"durations,omitempty"`
	// Seed drives the SABRE reverse-traversal initial layout; 0 selects
	// the server default (1).
	Seed int64 `json:"seed,omitempty"`
	// Baseline requests a SABRE baseline mapping for the speedup metric.
	// Defaults to true when Algo is codar (nil = default).
	Baseline *bool `json:"baseline,omitempty"`
	// Calibrated requests fidelity-weighted mapping under the device's
	// uploaded calibration snapshot (POST /v1/devices/{name}/calibration).
	// 400 when the device has none. Default false: uncalibrated requests
	// are untouched by calibration uploads, bytes included.
	Calibrated bool `json:"calibrated,omitempty"`
	// Portfolio, when present, replaces the single-shot pipeline with the
	// multi-start portfolio search: seeds × placements × algorithms race,
	// the objective picks the winner, and the response gains per-candidate
	// stats. Algo, Seed and Baseline do not affect a portfolio mapping —
	// they are canonicalized out of the cache key — but invalid enum
	// values (e.g. an unknown algo) are still rejected.
	Portfolio *PortfolioSpec `json:"portfolio,omitempty"`
}

// PortfolioSpec is the portfolio block of a MapRequest.
type PortfolioSpec struct {
	// Seeds drive the seeded placement methods; empty selects the server
	// default ({1, 2}).
	Seeds []int64 `json:"seeds,omitempty"`
	// Placements names the initial-layout strategies (trivial, random,
	// dense, sabre-reverse); empty selects all four.
	Placements []string `json:"placements,omitempty"`
	// Algorithms names the mappers (codar, sabre); empty selects both.
	Algorithms []string `json:"algorithms,omitempty"`
	// Objective is min-depth (default), min-swaps, or max-esp (requires
	// calibrated: true).
	Objective string `json:"objective,omitempty"`
}

// MapResponse is the POST /v1/map body on success.
type MapResponse struct {
	MappedQASM string `json:"mapped_qasm"`
	Device     string `json:"device"`
	Algo       string `json:"algo"`
	Durations  string `json:"durations,omitempty"`
	Seed       int64  `json:"seed"`

	InputQubits   int `json:"input_qubits"`
	InputGates    int `json:"input_gates"`
	OutputGates   int `json:"output_gates"`
	Swaps         int `json:"swaps"`
	Depth         int `json:"depth"`
	WeightedDepth int `json:"weighted_depth"`

	// Baseline block (present when a SABRE baseline was computed):
	// Speedup is baseline weighted depth / this mapper's weighted depth,
	// the paper's Fig 8 y-axis.
	BaselineWeightedDepth int     `json:"baseline_weighted_depth,omitempty"`
	BaselineSwaps         int     `json:"baseline_swaps,omitempty"`
	Speedup               float64 `json:"speedup,omitempty"`

	// Calibration block (present on calibrated requests): the snapshot
	// hash the mapping was computed under, and the estimated success
	// probabilities of this mapper's output (and the baseline's, when one
	// was computed). The ESP fields are pointers so that a legitimate
	// estimate of exactly 0 (deep circuits underflow the survival product)
	// is still serialised rather than dropped by omitempty — presence
	// tracks "was calibrated", not "is non-zero".
	Calibration        string   `json:"calibration,omitempty"`
	EstSuccess         *float64 `json:"est_success,omitempty"`
	BaselineEstSuccess *float64 `json:"baseline_est_success,omitempty"`

	// Portfolio block (present on portfolio requests): the objective, the
	// winning candidate, and one stats row per grid point.
	Portfolio *PortfolioStats `json:"portfolio,omitempty"`
}

// Streaming (NDJSON) mode. POST /v1/map?stream=1 answers with
// StreamContentType: one StreamRecord JSON object per line — a header
// record, then chunk records as the mapper flushes finalized schedule
// chunks, then a result (or in-band error) record. GET
// /v1/jobs/{id}/result?stream=1 replays a done job's result in the same
// framing. See docs/API.md "Streaming".
const (
	// StreamContentType is the media type of NDJSON mapping streams.
	StreamContentType = "application/x-ndjson"
	// CacheBypass is the HeaderCache disposition of streamed /v1/map
	// responses: a stream never reads the result store and never writes it
	// (a partial stream must not plant partial entries).
	CacheBypass = "bypass"
)

// StreamRecord type tags.
const (
	StreamTypeHeader = "header"
	StreamTypeChunk  = "chunk"
	StreamTypeResult = "result"
	StreamTypeError  = "error"
)

// StreamRecord is one line of an NDJSON mapping stream. Type selects which
// payload field is set; unknown types must be skipped by clients (the
// framing is forward-compatible).
type StreamRecord struct {
	Type   string        `json:"type"`
	Header *StreamHeader `json:"header,omitempty"`
	Chunk  *StreamChunk  `json:"chunk,omitempty"`
	// Result carries the final summary; its mapped_qasm field is empty —
	// the circuit already went out in the chunks.
	Result *MapResponse `json:"result,omitempty"`
	// Error terminates a stream that failed after the HTTP status was
	// committed (the mapping was canceled, timed out, or died mid-run).
	Error *ErrorBody `json:"error,omitempty"`
}

// StreamHeader is the first record of a mapping stream.
type StreamHeader struct {
	Device      string `json:"device"`
	Algo        string `json:"algo"`
	Durations   string `json:"durations,omitempty"`
	Seed        int64  `json:"seed"`
	InputQubits int    `json:"input_qubits"`
	InputGates  int    `json:"input_gates"`
	// QASMHeader is the OpenQASM preamble of the mapped circuit.
	// Concatenating it with every chunk's qasm in order reproduces the
	// batch response's mapped_qasm byte for byte.
	QASMHeader string `json:"qasm_header"`
}

// StreamChunk is one flushed chunk of the mapped circuit.
type StreamChunk struct {
	// Seq numbers chunks from 0 in emission order.
	Seq int `json:"seq"`
	// Gates is the number of gate statements in QASM.
	Gates int `json:"gates"`
	// QASM holds the chunk's gate statements (newline-terminated lines,
	// no preamble).
	QASM string `json:"qasm"`
}

// PortfolioStats is the portfolio block of a MapResponse. The winner's own
// stats row is candidates[winner_index] — it is not duplicated.
type PortfolioStats struct {
	Objective   string            `json:"objective"`
	WinnerIndex int               `json:"winner_index"`
	Completed   int               `json:"completed"`
	Candidates  []CandidateReport `json:"candidates"`
}

// WinnerReport returns the winning candidate's stats row.
func (p *PortfolioStats) WinnerReport() CandidateReport { return p.Candidates[p.WinnerIndex] }

// CandidateReport is one portfolio grid point's outcome.
type CandidateReport struct {
	// Index is the position in the fixed enumeration order (seed-major,
	// then placement, then algorithm) — the final tie-break key.
	Index     int    `json:"index"`
	Seed      int64  `json:"seed"`
	Placement string `json:"placement"`
	Algorithm string `json:"algorithm"`
	// Depth is the weighted depth (ASAP makespan) of the candidate's
	// output; Swaps its inserted-SWAP count. Zero when the candidate did
	// not complete.
	Depth int `json:"depth,omitempty"`
	Swaps int `json:"swaps,omitempty"`
	// ESP is the calibration-estimated success probability (present only
	// when the request was calibrated and the candidate completed).
	ESP float64 `json:"esp,omitempty"`
	// Score is the objective value (lower wins; max-esp negates).
	Score float64 `json:"score,omitempty"`
	// Abandoned marks a candidate cut by the early-abandon bound (never
	// set on in-service runs, which disable abandon for determinism).
	Abandoned bool `json:"abandoned,omitempty"`
	// Err records a candidate that failed outright (e.g. a placement
	// method rejecting the circuit).
	Err string `json:"error,omitempty"`
}

// Job states reported by the /v1/jobs routes. A job moves queued → running
// → one of done/failed/canceled; any retained terminal job becomes expired
// once the server's jobs TTL reclaims its result.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
	JobExpired  = "expired"
)

// JobStatus is the body of POST /v1/jobs (202, echoed with the Location
// header), GET /v1/jobs/{id}, DELETE /v1/jobs/{id}, and each SSE event on
// GET /v1/jobs/{id}/events.
type JobStatus struct {
	// ID addresses the job under /v1/jobs/{id}.
	ID string `json:"id"`
	// State is one of the Job* constants.
	State string `json:"state"`
	// QueuePos is the number of jobs ahead of this one in the dispatch
	// queue; meaningful only while State is queued.
	QueuePos int `json:"queue_pos"`
	// Cache is the result's cache disposition (hit/miss/collapsed), present
	// once the job is done — the async twin of the X-Codard-Cache header.
	Cache string `json:"cache,omitempty"`
	// Error carries the failure a failed (or pre-start-canceled) job would
	// replay from GET /v1/jobs/{id}/result.
	Error *ErrorBody `json:"error,omitempty"`
	// ResultURL is the result route, present once the job is done.
	ResultURL string `json:"result_url,omitempty"`
	// Created/Started/Finished are RFC 3339 timestamps; Started and
	// Finished are empty until the job reaches the corresponding state.
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
}

// JobsStats is the jobs block of /v1/stats (present when the job store is
// enabled).
type JobsStats struct {
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Expired   uint64 `json:"expired"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	// Resident counts jobs currently held in any state; Capacity is the
	// store's bound (submits beyond it answer 429 queue_full).
	Resident int `json:"resident"`
	Capacity int `json:"capacity"`
}

// BackendStats is one backend's row in the router's /v1/stats.
type BackendStats struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Requests/Errors count proxied requests and transport-level failures
	// against this backend; Ejections counts health-check removals.
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	Ejections uint64 `json:"ejections"`
}

// RouterStatsResponse is the GET /v1/stats body of a codard -router
// front tier (distinct from the backend StatsResponse shape).
type RouterStatsResponse struct {
	Router        bool           `json:"router"`
	Requests      uint64         `json:"requests"`
	Errors        uint64         `json:"errors"`
	Retries       uint64         `json:"retries"`
	Unrouteable   uint64         `json:"unrouteable"`
	Backends      []BackendStats `json:"backends"`
	UptimeSeconds float64        `json:"uptime_seconds"`
}

// BatchRequest is the POST /v1/map/batch body.
type BatchRequest struct {
	Requests []MapRequest `json:"requests"`
}

// BatchItem is one element of the batch response: either a result or an
// error envelope body, mirroring the single-request status codes. Cache is
// the item's cache disposition (hit/miss/collapsed), same vocabulary as
// the HeaderCache header; Cached is kept as its boolean shorthand
// (Cache == "hit").
type BatchItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  *ErrorBody      `json:"error,omitempty"`
	Status int             `json:"status"`
	Cached bool            `json:"cached"`
	Cache  string          `json:"cache,omitempty"`
}

// BatchResponse is the POST /v1/map/batch body: items in request order.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// DeviceSpec is the POST /v1/devices body: an undirected coupling graph
// with optional explicit durations or a named preset.
type DeviceSpec struct {
	Name   string   `json:"name"`
	Qubits int      `json:"qubits"`
	Edges  [][2]int `json:"edges"`
	// Preset names a duration preset applied to the device; empty selects
	// superconducting (the server default).
	Preset string `json:"preset,omitempty"`
	// Durations, when present, overrides Preset with explicit cycle counts.
	Durations *DurationsSpec `json:"durations,omitempty"`
}

// DurationsSpec carries explicit gate durations (in cycles) for JSON upload.
type DurationsSpec struct {
	Single  int `json:"single"`
	Two     int `json:"two"`
	Swap    int `json:"swap"`
	Measure int `json:"measure"`
}

// DeviceInfo is one row of the GET /v1/devices listing.
type DeviceInfo struct {
	Name     string `json:"name"`
	Qubits   int    `json:"qubits"`
	Couplers int    `json:"couplers"`
	Diameter int    `json:"diameter"`
	Builtin  bool   `json:"builtin"`
}

// DeviceList is the GET /v1/devices body.
type DeviceList struct {
	Devices []DeviceInfo `json:"devices"`
	// ParametricFamilies are the name patterns the server synthesises on
	// demand (e.g. grid3x4, linear9, ring12).
	ParametricFamilies []string `json:"parametric_families"`
}

// CalibrationInfo summarises a stored calibration in responses.
type CalibrationInfo struct {
	Device   string `json:"device"`
	Hash     string `json:"hash"`
	Qubits   int    `json:"qubits"`
	Couplers int    `json:"couplers"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// LatencySummary is the /v1/stats latency block, in milliseconds, computed
// over the server's recent-latency window (max is all-time).
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// ShardStats is one result-cache shard's view in /v1/stats.
type ShardStats struct {
	Entries   int    `json:"entries"`
	Pinned    int    `json:"pinned"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// PersistStats reports the warm-start persistence log in /v1/stats
// (present only when the server runs with -persist).
type PersistStats struct {
	Path string `json:"path"`
	// Loaded is the number of entries replayed into the cache at boot.
	Loaded int `json:"loaded"`
	// Appended/Dropped count entries written to (or dropped from, when the
	// write queue or size cap overflows) the log since boot.
	Appended uint64 `json:"appended"`
	Dropped  uint64 `json:"dropped"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Requests         uint64 `json:"requests"`
	Errors           uint64 `json:"errors"`
	InFlight         int64  `json:"in_flight"`
	QueueDepth       int64  `json:"queue_depth"`
	QueueCapacity    int    `json:"queue_capacity"`
	Workers          int    `json:"workers"`
	Canceled         uint64 `json:"canceled"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	Rejected         uint64 `json:"rejected"`
	QuotaRejected    uint64 `json:"quota_rejected"`
	Panics           uint64 `json:"panics"`
	// Mappings counts completed mapping computations — cache hits and
	// singleflight followers do not move it, so under N concurrent
	// identical requests it stays at 1.
	Mappings uint64 `json:"mappings"`

	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheSize      int     `json:"cache_size"`
	CacheCapacity  int     `json:"cache_capacity"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CachePinned    int     `json:"cache_pinned"`
	CacheShards    int     `json:"cache_shards"`
	// Collapsed counts requests served by a concurrent identical request's
	// computation (singleflight followers); Handoffs counts follower
	// retakes after a canceled leader.
	Collapsed uint64 `json:"collapsed"`
	Handoffs  uint64 `json:"handoffs"`

	Persist *PersistStats `json:"persist,omitempty"`
	Jobs    *JobsStats    `json:"jobs,omitempty"`
	// Shards breaks the cache counters down per shard (same order as the
	// shard index used in /metrics labels).
	Shards []ShardStats `json:"shards,omitempty"`

	CustomDevices     int            `json:"custom_devices"`
	CalibratedDevices int            `json:"calibrated_devices"`
	UptimeSeconds     float64        `json:"uptime_seconds"`
	Latency           LatencySummary `json:"latency"`
}
