package client

import (
	"errors"
	"fmt"
	"time"

	"codar/api"
)

// Sentinel errors, one per api.Code* value. Every non-2xx response from the
// server decodes to an *APIError whose errors.Is relation matches exactly
// one of these, so callers branch without string comparison:
//
//	res, err := c.Map(ctx, req)
//	switch {
//	case errors.Is(err, client.ErrQuotaExceeded):
//	        backoff(client.RetryAfter(err))
//	case errors.Is(err, client.ErrBadQASM):
//	        reject(input)
//	}
var (
	ErrBadRequest       = errors.New("codard: bad request")
	ErrBadQASM          = errors.New("codard: bad qasm")
	ErrUnknownDevice    = errors.New("codard: unknown device")
	ErrNotFound         = errors.New("codard: not found")
	ErrMethodNotAllowed = errors.New("codard: method not allowed")
	ErrConflict         = errors.New("codard: conflict")
	ErrPayloadTooLarge  = errors.New("codard: payload too large")
	ErrQueueFull        = errors.New("codard: queue full")
	ErrQuotaExceeded    = errors.New("codard: quota exceeded")
	ErrCanceled         = errors.New("codard: request canceled")
	ErrDeadline         = errors.New("codard: mapping deadline exceeded")
	ErrInternal         = errors.New("codard: internal server error")

	// Async job API (POST /v1/jobs and friends; docs/API.md §Jobs).
	ErrJobNotFound        = errors.New("codard: job not found")
	ErrJobExpired         = errors.New("codard: job result expired")
	ErrJobNotDone         = errors.New("codard: job not done yet")
	ErrBackendUnavailable = errors.New("codard: no backend available")
)

// sentinelFor maps envelope codes to sentinels. Unknown codes (a newer
// server) fall back to nil: the *APIError still carries the raw code.
var sentinelFor = map[string]error{
	api.CodeBadRequest:       ErrBadRequest,
	api.CodeBadQASM:          ErrBadQASM,
	api.CodeUnknownDevice:    ErrUnknownDevice,
	api.CodeNotFound:         ErrNotFound,
	api.CodeMethodNotAllowed: ErrMethodNotAllowed,
	api.CodeConflict:         ErrConflict,
	api.CodePayloadTooLarge:  ErrPayloadTooLarge,
	api.CodeQueueFull:        ErrQueueFull,
	api.CodeQuotaExceeded:    ErrQuotaExceeded,
	api.CodeCanceled:         ErrCanceled,
	api.CodeDeadline:         ErrDeadline,
	api.CodeInternal:         ErrInternal,

	api.CodeJobNotFound:        ErrJobNotFound,
	api.CodeJobExpired:         ErrJobExpired,
	api.CodeJobNotDone:         ErrJobNotDone,
	api.CodeBackendUnavailable: ErrBackendUnavailable,
}

// APIError is a non-2xx response decoded from the versioned error envelope.
// It satisfies errors.Is for the sentinel matching its Code.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable envelope code (api.Code*).
	Code string
	// Message is the human-readable envelope message.
	Message string
	// RequestID joins this error with the server log.
	RequestID string
	// RetryAfter is the parsed Retry-After header on 429 responses
	// (zero otherwise).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("codard: %s (%d %s, request %s)", e.Message, e.Status, e.Code, e.RequestID)
	}
	return fmt.Sprintf("codard: %s (%d %s)", e.Message, e.Status, e.Code)
}

// Is makes errors.Is(err, ErrQueueFull) etc. work on wrapped APIErrors.
func (e *APIError) Is(target error) bool {
	if s, ok := sentinelFor[e.Code]; ok {
		return target == s
	}
	return false
}

// RetryAfter extracts the server-suggested backoff from an error chain:
// non-zero only for 429 responses (queue_full, quota_exceeded) that carried
// a Retry-After header.
func RetryAfter(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}
