package client

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"codar/api"
	"codar/internal/qasm"
	"codar/internal/service"
	"codar/internal/workloads"
)

// bigQASM is large enough that the streaming mappers flush several chunks
// (the engines batch ~1024 gates per flush).
func bigQASM(t *testing.T) string {
	t.Helper()
	return qasm.Write(workloads.Random(16, 6000, 45, 9))
}

// TestMapStreamRoundTrip is the client half of the streaming contract: the
// chunks MapStream delivers reassemble — byte for byte — into the
// mapped_qasm a plain Map call returns, and the transport metadata (bypass
// disposition, request ID, summary record) comes through.
func TestMapStreamRoundTrip(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	ctx := context.Background()
	off := false
	req := &api.MapRequest{QASM: bigQASM(t), Arch: "tokyo", Algo: "sabre", Baseline: &off}

	var sb strings.Builder
	lastSeq := -1
	res, err := c.MapStream(ctx, req, func(ch *api.StreamChunk) error {
		if ch.Seq != lastSeq+1 {
			t.Fatalf("chunk seq %d after %d", ch.Seq, lastSeq)
		}
		lastSeq = ch.Seq
		sb.WriteString(ch.QASM)
		return nil
	})
	if err != nil {
		t.Fatalf("MapStream: %v", err)
	}
	if res.Header == nil || res.Result == nil {
		t.Fatalf("incomplete stream result: %+v", res)
	}
	if res.Cache != api.CacheBypass {
		t.Fatalf("Cache = %q, want %q", res.Cache, api.CacheBypass)
	}
	if res.RequestID == "" {
		t.Fatal("no request ID on the stream response")
	}
	if res.Chunks < 2 {
		t.Fatalf("Chunks = %d, want several for a 6000-gate circuit", res.Chunks)
	}
	if res.Result.MappedQASM != "" {
		t.Fatal("stream summary carries mapped_qasm")
	}

	batch, err := c.Map(ctx, req)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if batch.Cache != "miss" {
		t.Fatalf("batch after stream Cache = %q, want miss (streams bypass the store)", batch.Cache)
	}
	if got := res.Header.QASMHeader + sb.String(); got != batch.MappedQASM {
		t.Fatalf("reassembled stream (%d bytes) differs from batch mapped_qasm (%d bytes)", len(got), len(batch.MappedQASM))
	}
	if res.Result.OutputGates != batch.OutputGates || res.Result.Swaps != batch.Swaps {
		t.Fatalf("stream summary %d gates/%d swaps, batch %d/%d",
			res.Result.OutputGates, res.Result.Swaps, batch.OutputGates, batch.Swaps)
	}
}

// TestMapStreamErrorsKeepSentinels: rejections before the stream commits
// arrive as ordinary *APIErrors with their HTTP status; a deadline that
// fires once the mapping is underway arrives either as a 504 envelope or as
// an in-band error record — both must satisfy errors.Is(err, ErrDeadline).
func TestMapStreamErrorsKeepSentinels(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2}, WithTimeout(250*time.Millisecond))
	ctx := context.Background()

	_, err := c.MapStream(ctx, &api.MapRequest{QASM: "not qasm", Arch: "tokyo"}, nil)
	if !errors.Is(err, ErrBadQASM) {
		t.Fatalf("bad qasm err = %v, want ErrBadQASM", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("pre-commit rejection not a 400 *APIError: %v", err)
	}

	on := true
	_, err = c.MapStream(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo", Baseline: &on}, nil)
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("baseline err = %v, want ErrBadRequest", err)
	}

	// WithTimeout sets X-Codard-Timeout: the server's deadline fires during
	// a 60k-gate mapping, whichever side of the stream commit it lands on.
	_, err = c.MapStream(ctx, &api.MapRequest{
		QASM: qasm.Write(workloads.Random(16, 60000, 45, 3)), Arch: "tokyo", Algo: "codar",
	}, nil)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("deadline err = %v, want ErrDeadline", err)
	}
}

// TestMapStreamChunkCallbackAborts: an error returned by onChunk stops the
// decode loop and surfaces unchanged.
func TestMapStreamChunkCallbackAborts(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	sentinel := errors.New("stop here")
	_, err := c.MapStream(context.Background(), &api.MapRequest{
		QASM: bigQASM(t), Arch: "tokyo", Algo: "sabre",
	}, func(*api.StreamChunk) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback's own error", err)
	}
}

// TestJobResultStreamRoundTrip: the async replay path shares the decode
// loop, reassembles to the stored mapped_qasm, and keeps the job's real
// cache disposition instead of claiming a bypass.
func TestJobResultStreamRoundTrip(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	ctx := context.Background()
	off := false
	req := &api.MapRequest{QASM: bigQASM(t), Arch: "tokyo", Algo: "sabre", Baseline: &off}

	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	stored, err := c.WaitJob(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}

	var sb strings.Builder
	res, err := c.JobResultStream(ctx, st.ID, func(ch *api.StreamChunk) error {
		sb.WriteString(ch.QASM)
		return nil
	})
	if err != nil {
		t.Fatalf("JobResultStream: %v", err)
	}
	if res.Cache != stored.Cache {
		t.Fatalf("replay Cache = %q, want the job's %q", res.Cache, stored.Cache)
	}
	if got := res.Header.QASMHeader + sb.String(); got != stored.MappedQASM {
		t.Fatalf("reassembled replay (%d bytes) differs from stored mapped_qasm (%d bytes)", len(got), len(stored.MappedQASM))
	}

	if _, err := c.JobResultStream(ctx, "ffffffffffffffff", nil); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("unknown job err = %v, want ErrJobNotFound", err)
	}
}
