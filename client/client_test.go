package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"codar/api"
	"codar/internal/service"
)

const ghzQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
`

// newServerAndClient runs a real service.Server behind httptest and points
// a Client at it — the client tests double as a contract check between
// package client and internal/service.
func newServerAndClient(t *testing.T, cfg service.Config, opts ...Option) *Client {
	t.Helper()
	ts := httptest.NewServer(service.New(cfg))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "127.0.0.1:8723", "ftp://host", "http://"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	if _, err := New("http://127.0.0.1:8723/"); err != nil {
		t.Errorf("trailing slash rejected: %v", err)
	}
}

func TestMapRoundTrip(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	ctx := context.Background()

	res, err := c.Map(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if res.MappedQASM == "" || res.Device != "ibm-q20-tokyo" {
		t.Fatalf("result = %+v", res.MapResponse)
	}
	if res.Cache != "miss" {
		t.Fatalf("cold Cache = %q, want miss", res.Cache)
	}
	if res.RequestID == "" {
		t.Fatal("no request ID on success")
	}
	res, err = c.Map(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if err != nil {
		t.Fatalf("second Map: %v", err)
	}
	if res.Cache != "hit" {
		t.Fatalf("warm Cache = %q, want hit", res.Cache)
	}
}

func TestErrorsAreSentinels(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	ctx := context.Background()

	cases := []struct {
		name string
		req  api.MapRequest
		want error
	}{
		{"bad qasm", api.MapRequest{QASM: "not qasm", Arch: "tokyo"}, ErrBadQASM},
		{"unknown device", api.MapRequest{QASM: ghzQASM, Arch: "nope"}, ErrUnknownDevice},
		{"bad algo", api.MapRequest{QASM: ghzQASM, Arch: "tokyo", Algo: "magic"}, ErrBadRequest},
	}
	for _, tc := range cases {
		_, err := c.Map(ctx, &tc.req)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Errorf("%s: not an *APIError: %v", tc.name, err)
			continue
		}
		if ae.RequestID == "" {
			t.Errorf("%s: envelope missing request_id", tc.name)
		}
		// No cross-matching: a bad_qasm error must not satisfy other codes.
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrInternal) {
			t.Errorf("%s: error matches unrelated sentinels", tc.name)
		}
	}
}

func TestQuotaErrorCarriesRetryAfter(t *testing.T) {
	c := newServerAndClient(t,
		service.Config{Workers: 2, QuotaRPS: 0.001, QuotaBurst: 1},
		WithClientID("limited"))
	ctx := context.Background()
	if _, err := c.Map(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo"}); err != nil {
		t.Fatalf("first Map: %v", err)
	}
	_, err := c.Map(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo", Seed: 7})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if RetryAfter(err) < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", RetryAfter(err))
	}
}

func TestMapBatchAndDecodeItem(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	resp, err := c.MapBatch(context.Background(), []api.MapRequest{
		{QASM: ghzQASM, Arch: "tokyo"},
		{QASM: ghzQASM, Arch: "nope"},
	})
	if err != nil {
		t.Fatalf("MapBatch: %v", err)
	}
	if len(resp.Items) != 2 {
		t.Fatalf("items = %d, want 2", len(resp.Items))
	}
	mr, err := DecodeItem(&resp.Items[0])
	if err != nil || mr.MappedQASM == "" {
		t.Fatalf("item 0: %v, %+v", err, mr)
	}
	if _, err := DecodeItem(&resp.Items[1]); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("item 1 err = %v, want ErrUnknownDevice", err)
	}
}

func TestDevicesStatsHealthMetrics(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	ctx := context.Background()

	devs, err := c.Devices(ctx)
	if err != nil || len(devs.Devices) == 0 {
		t.Fatalf("Devices: %v, %+v", err, devs)
	}
	info, err := c.UploadDevice(ctx, &api.DeviceSpec{
		Name: "pair", Qubits: 2, Edges: [][2]int{{0, 1}},
	})
	if err != nil || info.Name != "pair" {
		t.Fatalf("UploadDevice: %v, %+v", err, info)
	}
	if _, err := c.Map(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo"}); err != nil {
		t.Fatalf("Map: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil || st.Requests == 0 || st.CacheShards == 0 {
		t.Fatalf("Stats: %v, %+v", err, st)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("Health: %v, %+v", err, h)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{"codard_requests_total", "codard_cache_shards", "codard_collapsed_total"} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}

func TestCalibrationNotFound(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	if _, err := c.Calibration(context.Background(), "tokyo"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestWaitHealthy(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitHealthy(ctx); err != nil {
		t.Fatalf("WaitHealthy: %v", err)
	}
	// A dead server times out instead of spinning forever.
	dead, _ := New("http://127.0.0.1:1")
	ctx2, cancel2 := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel2()
	if err := dead.WaitHealthy(ctx2); err == nil {
		t.Fatal("WaitHealthy succeeded against a dead server")
	}
}

func TestClientIDHeaderIsSent(t *testing.T) {
	var got string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(api.HeaderClient)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithClientID("ci-smoke"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != "ci-smoke" {
		t.Fatalf("X-Codard-Client = %q, want ci-smoke", got)
	}
}
