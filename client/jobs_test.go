package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"codar/api"
	"codar/internal/service"
)

// TestJobSubmitWaitResult drives the async path end-to-end and checks its
// core contract: the job result is byte-equal in content to the sync path
// (same cache key, so the sync repeat is a hit).
func TestJobSubmitWaitResult(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if st.ID == "" || st.State == "" {
		t.Fatalf("submit status = %+v", st)
	}
	res, err := c.WaitJob(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if res.MappedQASM == "" || res.Device != "ibm-q20-tokyo" {
		t.Fatalf("result = %+v", res.MapResponse)
	}
	// The job populated the shared result store: the sync path must hit.
	sync, err := c.Map(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if err != nil {
		t.Fatalf("Map after job: %v", err)
	}
	if sync.Cache != "hit" {
		t.Fatalf("sync Cache after job = %q, want hit", sync.Cache)
	}
	if sync.MappedQASM != res.MappedQASM || sync.Swaps != res.Swaps {
		t.Fatal("sync result differs from job result")
	}
	// Status of a done job reports a result URL; canceling it is a no-op.
	got, err := c.JobStatus(ctx, st.ID)
	if err != nil || got.State != api.JobDone || got.ResultURL == "" {
		t.Fatalf("JobStatus: %v, %+v", err, got)
	}
	if fin, err := c.CancelJob(ctx, st.ID); err != nil || fin.State != api.JobDone {
		t.Fatalf("CancelJob on done job: %v, %+v", err, fin)
	}
}

// TestJobErrorsAreSentinels pins the errors.Is relations of the job routes.
func TestJobErrorsAreSentinels(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2, JobsTTL: 40 * time.Millisecond})
	ctx := context.Background()

	if _, err := c.JobStatus(ctx, "nope"); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("unknown job err = %v, want ErrJobNotFound", err)
	}
	if _, err := c.JobResult(ctx, "nope"); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("unknown result err = %v, want ErrJobNotFound", err)
	}
	// Eager validation: submit rejects what the sync path rejects.
	if _, err := c.SubmitJob(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "nope"}); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("submit err = %v, want ErrUnknownDevice", err)
	}
	// A finished job's result expires after the TTL.
	st, err := c.SubmitJob(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if _, err := c.WaitJob(ctx, st.ID, 5*time.Millisecond); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = c.JobResult(ctx, st.ID)
		if err != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !errors.Is(err, ErrJobExpired) && !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("expired result err = %v, want ErrJobExpired (or ErrJobNotFound after reap)", err)
	}
}

// TestJobNotDoneCarriesRetryAfter: fetching the result of a queued job is a
// 409 with a Retry-After hint, mapped to ErrJobNotDone.
func TestJobNotDoneCarriesRetryAfter(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 1})
	ctx := context.Background()

	// One worker, and a portfolio job in front: the second job stays queued
	// long enough to fetch its result too early.
	blocker, err := c.SubmitJob(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "sycamore", Portfolio: &api.PortfolioSpec{}})
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	st, err := c.SubmitJob(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	_, err = c.JobResult(ctx, st.ID)
	if err != nil && !errors.Is(err, ErrJobNotDone) {
		t.Fatalf("early result err = %v, want ErrJobNotDone", err)
	}
	if err != nil && RetryAfter(err) < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", RetryAfter(err))
	}
	// Cancel the queued job; its result replays the canceled error.
	if _, err := c.CancelJob(ctx, st.ID); err != nil {
		t.Fatalf("CancelJob: %v", err)
	}
	got, err := c.JobStatus(ctx, st.ID)
	if err != nil {
		t.Fatalf("JobStatus: %v", err)
	}
	if got.State != api.JobCanceled && got.State != api.JobDone {
		t.Fatalf("state after cancel = %q", got.State)
	}
	if _, err := c.WaitJob(ctx, blocker.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("blocker WaitJob: %v", err)
	}
}

// TestJobEventsStreams consumes the SSE stream through the client helper.
func TestJobEventsStreams(t *testing.T) {
	c := newServerAndClient(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	st, err := c.SubmitJob(ctx, &api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	var states []string
	err = c.JobEvents(ctx, st.ID, func(s api.JobStatus) bool {
		if s.ID != st.ID {
			t.Errorf("event for job %q, want %q", s.ID, st.ID)
		}
		states = append(states, s.State)
		return true
	})
	if err != nil {
		t.Fatalf("JobEvents: %v", err)
	}
	if len(states) == 0 || states[len(states)-1] != api.JobDone {
		t.Fatalf("states = %v, want trailing done", states)
	}
	// Unknown job: the sentinel relation holds on the stream route too.
	if err := c.JobEvents(ctx, "nope", func(api.JobStatus) bool { return true }); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("events err = %v, want ErrJobNotFound", err)
	}
}
