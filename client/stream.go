package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"codar/api"
)

// StreamResult is the outcome of a completed mapping stream.
type StreamResult struct {
	// Header is the stream's opening record (device, seed, qasm_header).
	Header *api.StreamHeader
	// Result is the final summary; its mapped_qasm field is empty — the
	// circuit arrived through the chunk callback.
	Result *api.MapResponse
	// Chunks counts the chunk records delivered.
	Chunks int
	// Cache is the response's cache disposition ("bypass" on live streams,
	// the job's stored disposition on replays).
	Cache string
	// RequestID is the server-assigned request ID.
	RequestID string
}

// MapStream maps one circuit through POST /v1/map?stream=1, invoking
// onChunk for every flushed chunk as it arrives (onChunk may be nil to
// drain the stream for its summary). Concatenating Header.QASMHeader with
// every chunk's QASM reproduces the mapped_qasm a plain Map call returns.
//
// A rejection before the stream starts surfaces as a normal *APIError with
// its HTTP status; a failure mid-stream (cancel, deadline) arrives as an
// in-band error record and surfaces as an *APIError with Status 0 and the
// record's code, so the errors.Is sentinels (ErrCanceled, ErrDeadline)
// still apply. An error returned by onChunk aborts the stream and is
// returned as-is.
func (c *Client) MapStream(ctx context.Context, req *api.MapRequest, onChunk func(*api.StreamChunk) error) (*StreamResult, error) {
	enc, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("codard: marshal request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/map?stream=1", bytes.NewReader(enc))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	c.setHeaders(httpReq)
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		return nil, decodeError(resp, raw)
	}
	return decodeStream(resp, onChunk)
}

// JobResultStream replays a done job's result through GET
// /v1/jobs/{id}/result?stream=1 — the same record framing as MapStream,
// re-chunked from the stored result. Pending, failed and expired jobs
// answer the same *APIErrors as JobResult.
func (c *Client) JobResultStream(ctx context.Context, id string, onChunk func(*api.StreamChunk) error) (*StreamResult, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+c.jobPath(id)+"/result?stream=1", nil)
	if err != nil {
		return nil, err
	}
	c.setHeaders(httpReq)
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		return nil, decodeError(resp, raw)
	}
	return decodeStream(resp, onChunk)
}

// decodeStream consumes NDJSON records until the terminal result or error
// record. Unknown record types are skipped (forward compatibility).
func decodeStream(resp *http.Response, onChunk func(*api.StreamChunk) error) (*StreamResult, error) {
	out := &StreamResult{
		Cache:     resp.Header.Get(api.HeaderCache),
		RequestID: resp.Header.Get(api.HeaderRequestID),
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var rec api.StreamRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("codard: stream ended without a result record")
			}
			return nil, fmt.Errorf("codard: bad stream record: %w", err)
		}
		switch rec.Type {
		case api.StreamTypeHeader:
			out.Header = rec.Header
		case api.StreamTypeChunk:
			if rec.Chunk == nil {
				return nil, fmt.Errorf("codard: chunk record without payload")
			}
			out.Chunks++
			if onChunk != nil {
				if err := onChunk(rec.Chunk); err != nil {
					return nil, err
				}
			}
		case api.StreamTypeResult:
			out.Result = rec.Result
			return out, nil
		case api.StreamTypeError:
			ae := &APIError{RequestID: out.RequestID}
			if rec.Error != nil {
				ae.Code = rec.Error.Code
				ae.Message = rec.Error.Message
				if rec.Error.RequestID != "" {
					ae.RequestID = rec.Error.RequestID
				}
			}
			return nil, ae
		}
	}
}
