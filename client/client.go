// Package client is the official Go client for the codard mapping service.
// It speaks the versioned contract in package api (docs/API.md is the
// written form), decodes the error envelope into errors.Is-able values (see
// errors.go), and carries the service's custom headers — per-request
// mapping deadlines, client identity for quota accounting, and the cache
// disposition of each response.
//
//	c, err := client.New("http://127.0.0.1:8723", client.WithClientID("ci"))
//	res, err := c.Map(ctx, &api.MapRequest{QASM: src, Arch: "tokyo"})
//	if errors.Is(err, client.ErrQueueFull) { ... }
//	fmt.Println(res.Cache, res.MappedQASM)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"codar/api"
)

// Client is a codard API client. It is safe for concurrent use.
type Client struct {
	base     string
	http     *http.Client
	clientID string
	timeout  time.Duration
}

// Option configures a Client at construction.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (transport tuning,
// client-side timeouts, test doubles). The default has no client timeout —
// mapping deadlines belong to WithTimeout / context deadlines.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithClientID sets the X-Codard-Client header on every request, naming
// this caller for the server's per-client quota accounting.
func WithClientID(id string) Option { return func(c *Client) { c.clientID = id } }

// WithTimeout sets a default per-request mapping deadline, sent as the
// X-Codard-Timeout header on Map and MapBatch. The server clamps it to its
// -max-timeout; expiry surfaces as ErrDeadline (504), not a client abort.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// New builds a client for the server at baseURL (scheme and host, no
// trailing path: "http://127.0.0.1:8723").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("codard: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("codard: base URL %q must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("codard: base URL %q has no host", baseURL)
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// MapResult is a successful Map response plus its transport metadata.
type MapResult struct {
	api.MapResponse
	// Cache is the response's cache disposition: "hit", "miss" or
	// "collapsed" (api.HeaderCache).
	Cache string
	// RequestID is the server-assigned request ID.
	RequestID string
}

// Map maps one circuit. A non-2xx response returns an *APIError.
func (c *Client) Map(ctx context.Context, req *api.MapRequest) (*MapResult, error) {
	res := &MapResult{}
	hdr, err := c.do(ctx, http.MethodPost, "/v1/map", req, &res.MapResponse)
	if err != nil {
		return nil, err
	}
	res.Cache = hdr.Get(api.HeaderCache)
	res.RequestID = hdr.Get(api.HeaderRequestID)
	return res, nil
}

// MapBatch maps up to the server's batch limit of circuits in one request.
// The call errors only when the batch itself is rejected (bad body, quota,
// queue full); per-item failures land in the returned items' Error fields
// — use DecodeItem to unpack each.
func (c *Client) MapBatch(ctx context.Context, reqs []api.MapRequest) (*api.BatchResponse, error) {
	var out api.BatchResponse
	if _, err := c.do(ctx, http.MethodPost, "/v1/map/batch", api.BatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DecodeItem unpacks one batch item into a MapResponse, converting a failed
// item into the same *APIError (and sentinel relation) its single-request
// form would have produced.
func DecodeItem(item *api.BatchItem) (*api.MapResponse, error) {
	if item.Error != nil {
		return nil, &APIError{
			Status:    item.Status,
			Code:      item.Error.Code,
			Message:   item.Error.Message,
			RequestID: item.Error.RequestID,
		}
	}
	var mr api.MapResponse
	if err := json.Unmarshal(item.Result, &mr); err != nil {
		return nil, fmt.Errorf("codard: bad batch item: %w", err)
	}
	return &mr, nil
}

// Devices lists the server's device catalogue.
func (c *Client) Devices(ctx context.Context) (*api.DeviceList, error) {
	var out api.DeviceList
	if _, err := c.do(ctx, http.MethodGet, "/v1/devices", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// UploadDevice registers a custom device (POST /v1/devices).
func (c *Client) UploadDevice(ctx context.Context, spec *api.DeviceSpec) (*api.DeviceInfo, error) {
	var out api.DeviceInfo
	if _, err := c.do(ctx, http.MethodPost, "/v1/devices", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Calibration fetches the stored calibration summary for a device;
// ErrNotFound when none was uploaded.
func (c *Client) Calibration(ctx context.Context, device string) (*api.CalibrationInfo, error) {
	var out api.CalibrationInfo
	if _, err := c.do(ctx, http.MethodGet, c.calibrationPath(device), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// UploadCalibration uploads a calibration snapshot for a device. The
// snapshot is any JSON-marshalable value matching the calibration schema in
// docs/API.md (typically json.RawMessage read from a snapshot file).
func (c *Client) UploadCalibration(ctx context.Context, device string, snapshot interface{}) (*api.CalibrationInfo, error) {
	var out api.CalibrationInfo
	if _, err := c.do(ctx, http.MethodPut, c.calibrationPath(device), snapshot, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) calibrationPath(device string) string {
	return "/v1/devices/" + url.PathEscape(device) + "/calibration"
}

// Stats fetches the server's operational counters.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if _, err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if _, err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitHealthy polls /healthz until the server answers 200 or ctx expires —
// for launching a client right after the server process.
func (c *Client) WaitHealthy(ctx context.Context) error {
	var lastErr error
	for {
		if _, err := c.Health(ctx); err == nil {
			return nil
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("codard: server never became healthy: %w (last: %v)", ctx.Err(), lastErr)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Metrics fetches the raw Prometheus text exposition from /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	c.setHeaders(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp, body)
	}
	return string(body), nil
}

// do runs one JSON round-trip: marshal in (nil = no body), decode the
// envelope on non-2xx, decode into out on success. Returns the response
// headers for disposition/request-ID extraction.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) (http.Header, error) {
	var body io.Reader
	if in != nil {
		enc, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("codard: marshal request: %w", err)
		}
		body = bytes.NewReader(enc)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.setHeaders(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp.Header, decodeError(resp, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.Header, fmt.Errorf("codard: bad response body: %w", err)
		}
	}
	return resp.Header, nil
}

func (c *Client) setHeaders(req *http.Request) {
	if c.clientID != "" {
		req.Header.Set(api.HeaderClient, c.clientID)
	}
	if c.timeout > 0 && req.Method == http.MethodPost &&
		(strings.HasPrefix(req.URL.Path, "/v1/map") || req.URL.Path == "/v1/jobs") {
		req.Header.Set(api.HeaderTimeout, c.timeout.String())
	}
}

// decodeError turns a non-2xx response into an *APIError. Responses that do
// not carry the versioned envelope (a proxy in the path, an old server)
// still produce an APIError with an empty Code.
func decodeError(resp *http.Response, body []byte) error {
	ae := &APIError{
		Status:    resp.StatusCode,
		RequestID: resp.Header.Get(api.HeaderRequestID),
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		if env.Error.RequestID != "" {
			ae.RequestID = env.Error.RequestID
		}
	} else {
		ae.Message = strings.TrimSpace(string(body))
		if ae.Message == "" {
			ae.Message = http.StatusText(resp.StatusCode)
		}
	}
	if secs, err := strconv.Atoi(resp.Header.Get(api.HeaderRetryAfter)); err == nil && secs > 0 {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	return ae
}
