package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"codar/api"
)

// SubmitJob enqueues a mapping asynchronously (POST /v1/jobs). The returned
// status carries the job ID for polling; the request body is validated
// eagerly, so bad QASM, unknown devices and full stores fail here, not at
// result time. Closing ctx after SubmitJob returns does NOT cancel the job —
// use CancelJob.
func (c *Client) SubmitJob(ctx context.Context, req *api.MapRequest) (*api.JobStatus, error) {
	var out api.JobStatus
	if _, err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobStatus fetches a job's current state and queue position
// (GET /v1/jobs/{id}). ErrJobNotFound after the store forgot it.
func (c *Client) JobStatus(ctx context.Context, id string) (*api.JobStatus, error) {
	var out api.JobStatus
	if _, err := c.do(ctx, http.MethodGet, c.jobPath(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobResult fetches a finished job's result (GET /v1/jobs/{id}/result) —
// byte-identical to what the sync /v1/map call would have returned,
// transport metadata included. Sentinel relations: ErrJobNotDone (still
// queued/running; RetryAfter applies), ErrJobExpired (TTL passed), and for
// failed jobs the replayed original error (ErrBadQASM, ErrDeadline, ...).
func (c *Client) JobResult(ctx context.Context, id string) (*MapResult, error) {
	res := &MapResult{}
	hdr, err := c.do(ctx, http.MethodGet, c.jobPath(id)+"/result", nil, &res.MapResponse)
	if err != nil {
		return nil, err
	}
	res.Cache = hdr.Get(api.HeaderCache)
	res.RequestID = hdr.Get(api.HeaderRequestID)
	return res, nil
}

// CancelJob cancels a queued or running job (DELETE /v1/jobs/{id}).
// Canceling a terminal job is a no-op returning its final status.
func (c *Client) CancelJob(ctx context.Context, id string) (*api.JobStatus, error) {
	var out api.JobStatus
	if _, err := c.do(ctx, http.MethodDelete, c.jobPath(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls JobStatus every poll interval (0 = 100ms) until the job is
// terminal, then returns JobResult — the async equivalent of Map. A failed
// job surfaces as the replayed original error; ctx expiry stops the polling
// but leaves the job running server-side.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*MapResult, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.JobStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case api.JobDone, api.JobFailed, api.JobCanceled, api.JobExpired:
			return c.JobResult(ctx, id)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("codard: waiting for job %s: %w", id, ctx.Err())
		case <-time.After(poll):
		}
	}
}

// JobEvents subscribes to a job's status stream (GET /v1/jobs/{id}/events,
// server-sent events) and calls fn for every update, the current state
// first. Return false from fn to stop early. JobEvents returns nil when the
// server closes the stream (the job reached a terminal state), ctx.Err()
// when ctx ends first.
func (c *Client) JobEvents(ctx context.Context, id string, fn func(api.JobStatus) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+c.jobPath(id)+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	c.setHeaders(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return decodeError(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var st api.JobStatus
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
			return fmt.Errorf("codard: bad event payload: %w", err)
		}
		if !fn(st) {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

func (c *Client) jobPath(id string) string {
	return "/v1/jobs/" + url.PathEscape(id)
}
