#!/usr/bin/env bash
# check-links.sh — verify that every relative markdown link (and #anchor)
# in the documentation resolves to an existing file (and heading). External
# http(s) links are skipped: CI should not depend on the network. Run from
# the repository root.
set -u

errors=0

# slug mimics GitHub's heading slugger closely enough for these docs:
# lowercase, drop everything but [a-z0-9 -] (multi-byte punctuation like
# § and — disappears byte-wise under LC_ALL=C), then spaces to hyphens.
slug() {
  printf '%s\n' "$1" \
    | tr '[:upper:]' '[:lower:]' \
    | LC_ALL=C sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

has_anchor() { # $1 = markdown file, $2 = anchor slug
  local line heading
  while IFS= read -r line; do
    case $line in
    '#'*)
      heading=$(printf '%s\n' "$line" | sed -e 's/^#*[[:space:]]*//')
      if [ "$(slug "$heading")" = "$2" ]; then
        return 0
      fi
      ;;
    esac
  done <"$1"
  return 1
}

docs="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md"
for f in docs/*.md; do
  [ -e "$f" ] && docs="$docs $f"
done

for f in $docs; do
  [ -e "$f" ] || continue
  dir=$(dirname "$f")
  # Our docs never break a [text](target) link across lines, and targets
  # never contain spaces, so line-wise extraction is exact.
  targets=$(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/.*](\([^)]*\))/\1/') || true
  for t in $targets; do
    case $t in
    http://* | https://* | mailto:*) continue ;;
    esac
    path=${t%%#*}
    anchor=${t#*#}
    if [ "$anchor" = "$t" ]; then
      anchor=""
    fi
    resolved=$f
    if [ -n "$path" ]; then
      resolved=$dir/$path
      if [ ! -e "$resolved" ]; then
        echo "$f: broken link: $t ($resolved does not exist)"
        errors=$((errors + 1))
        continue
      fi
    fi
    if [ -n "$anchor" ]; then
      case $resolved in
      *.md)
        if ! has_anchor "$resolved" "$anchor"; then
          echo "$f: broken anchor: $t"
          errors=$((errors + 1))
        fi
        ;;
      esac
    fi
  done
done

if [ "$errors" -gt 0 ]; then
  echo "check-links: $errors broken link(s)"
  exit 1
fi
echo "check-links: all relative links resolve"
