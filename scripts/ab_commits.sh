#!/usr/bin/env bash
# ab_commits.sh — A/B two commits with the absweep harness: check each one
# out into a temporary git worktree, record a snapshot there, then diff the
# snapshots with the regression gate.
#
# Usage:
#   scripts/ab_commits.sh [-r REPS] [-b BENCH_REGEX] [-t TOLERANCE] BASE [HEAD]
#
# HEAD defaults to the current checkout (measured in place, uncommitted
# changes included — that is the point: "did my edit regress anything?").
# Both commits must contain cmd/absweep; for older history, record the
# baseline by hand and use `absweep -baseline` instead.
#
# Exit codes follow absweep: 0 pass, 1 regression, 2 error.
set -euo pipefail

cd "$(dirname "$0")/.."

reps=3 bench='' tol=0.10
while getopts "r:b:t:h" opt; do
  case "$opt" in
    r) reps=$OPTARG ;;
    b) bench=$OPTARG ;;
    t) tol=$OPTARG ;;
    h|*) sed -n '2,15p' "$0"; exit 0 ;;
  esac
done
shift $((OPTIND - 1))
[ $# -ge 1 ] || { echo "usage: scripts/ab_commits.sh [-r REPS] [-b RE] [-t TOL] BASE [HEAD]" >&2; exit 2; }
base_ref=$1
head_ref=${2:-}

filter_args=()
[ -n "$bench" ] && filter_args=(-bench "$bench")

tmp=$(mktemp -d)
cleanup() {
  git worktree remove --force "$tmp/base" 2>/dev/null || true
  [ -n "$head_ref" ] && git worktree remove --force "$tmp/head" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

record_at() { # record_at DIR OUT
  (cd "$1" && go run ./cmd/absweep -record "$2" -reps "$reps" "${filter_args[@]}")
}

echo "recording baseline at $base_ref ..." >&2
git worktree add --detach "$tmp/base" "$base_ref" >/dev/null
record_at "$tmp/base" "$tmp/base.json"

if [ -n "$head_ref" ]; then
  echo "recording head at $head_ref ..." >&2
  git worktree add --detach "$tmp/head" "$head_ref" >/dev/null
  record_at "$tmp/head" "$tmp/head.json"
else
  echo "recording head in the current tree ..." >&2
  record_at . "$tmp/head.json"
fi

go run ./cmd/absweep -diff "$tmp/base.json" "$tmp/head.json" -tolerance "$tol" -out ab_comparison.json
echo "wrote ab_comparison.json" >&2
