#!/usr/bin/env bash
# check-godoc.sh — gate that every package is documented: each
# internal/* package must carry a `// Package <name>` doc comment (so
# `go doc codar/internal/<pkg>` says something useful), each command a
# `// Command <name>` comment, and each example must open with a
# walkthrough comment. Run from the repository root; CI runs it in the
# docs job next to the link checker.
set -u

errors=0

if ! grep -q '^// Package codar' codar.go; then
  echo "codar.go: missing '// Package codar' doc comment"
  errors=$((errors + 1))
fi

for dir in internal/*/; do
  if ! grep -q '^// Package ' "$dir"*.go 2>/dev/null; then
    echo "$dir: no file carries a '// Package ...' doc comment"
    errors=$((errors + 1))
  fi
done

for dir in cmd/*/; do
  if ! grep -q '^// Command ' "$dir"*.go 2>/dev/null; then
    echo "$dir: no file carries a '// Command ...' doc comment"
    errors=$((errors + 1))
  fi
done

for main in examples/*/main.go; do
  first=$(head -n 1 "$main")
  case $first in
  //\ *) ;;
  *)
    echo "$main: must open with a walkthrough doc comment"
    errors=$((errors + 1))
    ;;
  esac
done

if [ "$errors" -gt 0 ]; then
  echo "check-godoc: $errors undocumented package(s)"
  exit 1
fi
echo "check-godoc: every package carries a doc comment"
