#!/usr/bin/env bash
# capture_pprof.sh — grab CPU + heap profiles for any go test benchmark and
# render the top-N reports, so "what got slower" always has a profile next
# to it (EXPERIMENTS.md "Benchmarking & regression guard").
#
# Usage:
#   scripts/capture_pprof.sh [-o OUTDIR] [BENCH_REGEX]
#
# BENCH_REGEX defaults to BenchmarkFig8IBMQ20Tokyo (the profile that drove
# the PR 6 SoA work). Artifacts land in OUTDIR (default ./pprof):
#   cpu.prof, mem.prof        raw profiles (go tool pprof)
#   cpu.top.txt, mem.top.txt  -top40 text reports
#   bench.out                 the benchmark's own output
set -euo pipefail

cd "$(dirname "$0")/.."

outdir=pprof
while getopts "o:h" opt; do
  case "$opt" in
    o) outdir=$OPTARG ;;
    h|*) sed -n '2,14p' "$0"; exit 0 ;;
  esac
done
shift $((OPTIND - 1))
bench=${1:-'^BenchmarkFig8IBMQ20Tokyo$'}

mkdir -p "$outdir"

echo "profiling $bench -> $outdir/" >&2
go test -run '^$' -bench "$bench" -benchtime 1x \
  -cpuprofile "$outdir/cpu.prof" -memprofile "$outdir/mem.prof" \
  . | tee "$outdir/bench.out"

go tool pprof -top -nodecount=40 "$outdir/cpu.prof" > "$outdir/cpu.top.txt"
go tool pprof -top -nodecount=40 -sample_index=alloc_space "$outdir/mem.prof" > "$outdir/mem.top.txt"

echo "wrote $outdir/{cpu.prof,mem.prof,cpu.top.txt,mem.top.txt,bench.out}" >&2
