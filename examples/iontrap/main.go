// Ion trap: the maQAM is technology-adaptive. Map a circuit onto a linear
// trap topology under ion-trap durations (two-qubit gates ~12x slower than
// rotations, Table I), then transpile to the native ion gate set — R
// rotations plus the Mølmer–Sørensen XX gate, with every CNOT realised as
// "one-XX and four-R" (paper §III-A).
package main

import (
	"fmt"
	"log"

	"codar"
)

func main() {
	// A 6-qubit QFT, lowered to the mapping base set.
	bench, err := codar.BenchmarkByName("qft_5")
	if err != nil {
		log.Fatal(err)
	}
	c := bench.Circuit()

	// Linear trap: ions in a chain with nearest-neighbour interactions,
	// ion-trap gate durations.
	dev, err := codar.DeviceByName("linear5")
	if err != nil {
		log.Fatal(err)
	}
	dev.Durations = codar.IonTrapDurations()

	res, err := codar.Remap(c, dev, nil, codar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped:      %d gates, %d swaps, weighted depth %d cycles (1 cycle = 20 µs)\n",
		res.Circuit.Len(), res.SwapCount, res.Makespan)

	ion, err := codar.Transpile(res.Circuit, codar.TargetIonTrap)
	if err != nil {
		log.Fatal(err)
	}
	ops := ion.CountOps()
	nXX := 0
	for op, n := range ops {
		if op.Name() == "rxx" {
			nXX = n
		}
	}
	fmt.Printf("transpiled:  %d gates — %d rx, %d ry, %d rz, %d xx\n",
		ion.Len(), ops[codar.OpRX], ops[codar.OpRY], ops[codar.OpRZ], nXX)
	fmt.Printf("Mølmer–Sørensen XX gates: %d (one per two-qubit interaction)\n", nXX)

	ionSched := codar.ScheduleASAP(ion, dev.Durations)
	fmt.Printf("ion-native weighted depth: %d cycles = %.1f ms\n",
		ionSched.Makespan, float64(ionSched.Makespan)*20e-3)

	fmt.Println("\nfirst gates of the native program:")
	for i, sg := range ionSched.Gates {
		if i >= 8 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  [%5d,%5d) %s\n", sg.Start, sg.End(), sg.Gate)
	}
}
