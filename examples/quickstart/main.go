// Quickstart: build a small circuit with the public API, map it onto the
// IBM Q20 Tokyo model with CODAR, and inspect the timed result.
package main

import (
	"fmt"
	"log"

	"codar"
)

func main() {
	// A 5-qubit GHZ-plus-phase circuit: the CX ladder forces routing on
	// any sparsely coupled device.
	c := codar.NewNamedCircuit("quickstart", 5)
	c.H(0)
	c.CX(0, 1)
	c.CX(0, 2)
	c.CX(0, 3)
	c.CX(0, 4)
	c.T(2)
	c.CX(3, 1)

	dev, err := codar.DeviceByName("tokyo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device:", dev)

	// The paper's protocol: both mappers start from the SABRE
	// reverse-traversal initial layout.
	initial, err := codar.SABREInitialLayout(c, dev, 1)
	if err != nil {
		log.Fatal(err)
	}

	res, err := codar.Remap(c, dev, initial, codar.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mapped %d gates with %d swaps, weighted depth %d cycles\n",
		res.Circuit.Len(), res.SwapCount, res.Makespan)
	fmt.Println("\ntimed schedule:")
	fmt.Print(res.Schedule)
	fmt.Println("\nper-qubit timeline:")
	fmt.Print(res.Schedule.Gantt(72))

	// Every mapping is independently checkable.
	if err := codar.Verify(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verification: mapped circuit is equivalent to the input")

	// The mapped circuit round-trips through OpenQASM.
	fmt.Println("\nmapped OpenQASM:")
	fmt.Print(codar.WriteQASM(res.Circuit))
}
