// The examples/quickstart circuit as OpenQASM 2.0: a 5-qubit GHZ-plus-
// phase program whose CX star from qubit 0 forces routing on any sparsely
// coupled device. Used by the CI service-smoke job to exercise codard's
// POST /v1/map end-to-end.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cx q[0],q[1];
cx q[0],q[2];
cx q[0],q[3];
cx q[0],q[4];
t q[2];
cx q[3],q[1];
