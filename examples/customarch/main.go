// Custom architecture: the maQAM is multi-architecture adaptive — define
// your own coupling graph and gate-duration map (here an ion-trap-style
// device where two-qubit gates are ~12x slower than single-qubit gates)
// and map the same circuit under different technologies.
package main

import (
	"fmt"
	"log"

	"codar"
)

func main() {
	// A 7-qubit "H tree" coupling graph.
	dev, err := codar.NewDevice("h-tree-7", 7, [][2]int{
		{0, 1}, {1, 2}, {1, 3}, {3, 4}, {4, 5}, {4, 6},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A circuit with traffic between the tree's extremes.
	c := codar.NewNamedCircuit("tree-traffic", 7)
	c.H(0)
	c.CX(0, 6)
	c.CX(2, 5)
	c.T(3)
	c.CX(0, 2)
	c.CX(5, 6)

	for _, preset := range []struct {
		name string
		d    codar.Durations
	}{
		{"superconducting (2q = 2x 1q)", codar.SuperconductingDurations()},
		{"ion trap        (2q = 12x 1q)", codar.IonTrapDurations()},
		{"neutral atom    (2q <= 1q)", codar.NeutralAtomDurations()},
	} {
		dev.Durations = preset.d
		res, err := codar.Remap(c, dev, nil, codar.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := codar.Verify(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s weighted depth %4d cycles, %d swaps (verified)\n",
			preset.name, res.Makespan, res.SwapCount)
	}

	fmt.Println("\nthe same coupling graph scheduled under three Table I technologies —")
	fmt.Println("duration awareness changes both the swap choices and the timeline.")
}
