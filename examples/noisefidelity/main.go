// Noise fidelity: map a Grover instance with CODAR and SABRE, then compare
// their end-to-end fidelity under the two Fig 9 noise regimes (dephasing-
// dominant and damping-dominant) on the trajectory simulator that stands in
// for the OriginQ noisy QVM.
package main

import (
	"fmt"
	"log"

	"codar"
)

func main() {
	bench, err := codar.BenchmarkByName("grover_4")
	if err != nil {
		log.Fatal(err)
	}
	c := bench.Circuit()

	dev, err := codar.DeviceByName("grid3x3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %s (%d qubits) on %s\n\n", bench.Name, bench.Qubits, dev.Name)

	initial, err := codar.SABREInitialLayout(c, dev, 1)
	if err != nil {
		log.Fatal(err)
	}
	cres, err := codar.Remap(c, dev, initial, codar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sres, err := codar.RemapSABRE(c, dev, initial, codar.SabreOptions{})
	if err != nil {
		log.Fatal(err)
	}

	cSched := codar.ScheduleASAP(cres.Circuit, dev.Durations)
	sSched := codar.ScheduleASAP(sres.Circuit, dev.Durations)
	fmt.Printf("weighted depth: CODAR %d cycles, SABRE %d cycles\n\n", cSched.Makespan, sSched.Makespan)

	const trajectories = 60
	regimes := []struct {
		name  string
		model codar.NoiseModel
	}{
		{"dephasing-dominant (T2 = 1500 cycles)", codar.DephasingNoise(1500)},
		{"damping-dominant   (T1 = 1500 cycles)", codar.DampingNoise(1500)},
	}
	for _, reg := range regimes {
		cf, err := codar.EstimateFidelity(reg.model, cSched, trajectories, 1)
		if err != nil {
			log.Fatal(err)
		}
		sf, err := codar.EstimateFidelity(reg.model, sSched, trajectories, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  CODAR fidelity: %.4f\n  SABRE fidelity: %.4f\n\n", reg.name, cf, sf)
	}
	fmt.Println("shorter weighted depth means less decoherence exposure — the mechanism")
	fmt.Println("behind the paper's claim that CODAR maintains fidelity while speeding up.")
}
