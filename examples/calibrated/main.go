// Calibrated mapping: generate a synthetic calibration snapshot for IBM Q20
// Tokyo (per-edge CX error, per-qubit 1Q/readout error and T1/T2), round-trip
// it through JSON, blend it into a fidelity-weighted cost model, and compare
// duration-only CODAR against calibration-aware CODAR — SWAP count versus
// estimated success probability (ESP) — on a slice of the benchmark suite.
//
// The full-suite version of this comparison (and the trajectory-simulated
// one) is `go run ./cmd/fidelity -calib`; the reproduction commands and
// measured numbers live in EXPERIMENTS.md ("Calibration study").
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"codar"
)

func main() {
	dev, err := codar.DeviceByName("tokyo")
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic snapshot stands in for a backend's daily calibration dump.
	// The generator is seeded per device, so this landscape is reproducible.
	snap := codar.SyntheticCalibration(dev, 1)
	fmt.Printf("synthetic calibration for %s: %d qubit records, %d coupler records\n",
		dev.Name, len(snap.Qubits), len(snap.Edges))
	fmt.Printf("snapshot hash: %s\n\n", snap.Hash()[:12])

	// Round-trip through JSON — the same format `codar -calib file.json` and
	// the codard calibration endpoint accept.
	path := filepath.Join(os.TempDir(), "tokyo-calibration.json")
	if err := snap.Save(path); err != nil {
		log.Fatal(err)
	}
	loaded, err := codar.LoadCalibration(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved to %s and reloaded (hash match: %v)\n\n", path, loaded.Hash() == snap.Hash())

	// Blend the error rates into the routing metric: each coupler costs
	// 1 + λ·(−log(1−err2)) hops. lambda 0 selects the tuned default.
	cm, err := codar.NewCostModel(loaded, dev, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("benchmark        swaps  calSwaps        ESP     calESP   gain")
	var meanU, meanC float64
	n := 0
	for _, name := range []string{"qft_10", "grover_4", "bv_13", "adder_6", "qaoa_12_p2", "ghz_16"} {
		b, err := codar.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		c := b.Circuit()

		// Duration-only pipeline: shared SABRE placement, plain CODAR.
		plainInit, err := codar.SABREInitialLayout(c, dev, 1)
		if err != nil {
			log.Fatal(err)
		}
		plain, err := codar.Remap(c, dev, plainInit, codar.Options{})
		if err != nil {
			log.Fatal(err)
		}

		// Calibrated pipeline: both placement and routing see the weighted
		// metric via the cost model.
		calInit, err := codar.SABREInitialLayoutOptions(c, dev, 1, codar.SabreOptions{Cost: cm})
		if err != nil {
			log.Fatal(err)
		}
		calibrated, err := codar.Remap(c, dev, calInit, codar.Options{Cost: cm})
		if err != nil {
			log.Fatal(err)
		}

		pESP, err := codar.EstimateSuccess(loaded, codar.ScheduleASAP(plain.Circuit, dev.Durations), dev)
		if err != nil {
			log.Fatal(err)
		}
		cESP, err := codar.EstimateSuccess(loaded, codar.ScheduleASAP(calibrated.Circuit, dev.Durations), dev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %6d %9d %10.4f %10.4f %6.3f\n",
			b.Name, plain.SwapCount, calibrated.SwapCount, pESP, cESP, cESP/pESP)
		meanU += pESP
		meanC += cESP
		n++
	}
	meanU /= float64(n)
	meanC /= float64(n)
	fmt.Printf("\nmean ESP: uncalibrated %.4f, calibrated %.4f (x%.3f)\n", meanU, meanC, meanC/meanU)
	fmt.Println("\nrouting around the worst couplers trades a few extra SWAPs for a")
	fmt.Println("higher end-to-end success estimate; without a snapshot attached the")
	fmt.Println("mapper output is bit-identical to the duration-only objective.")
}
