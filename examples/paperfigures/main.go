// Paper figures: replay the CODAR paper's motivating examples (Fig 1,
// Fig 2 and the §IV-E worked example of Fig 7) through the public API and
// print the resulting timelines, so the mechanics are visible end to end.
package main

import (
	"fmt"
	"log"

	"codar"
)

func main() {
	fig1()
	fig2()
	fig7()
}

// fig1 — context-sensitivity: "T q2; CX q0,q3" on a 4-qubit map where Q1
// and Q2 both neighbour Q0 and Q3. The SWAP must avoid the busy Q2.
func fig1() {
	fmt.Println("=== Fig 1 — impact of program context ===")
	dev, err := codar.NewDevice("fig1", 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	c := codar.NewCircuit(4)
	c.T(2)
	c.CX(0, 3)
	res, err := codar.Remap(c, dev, nil, codar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Schedule)
	fmt.Printf("-> SWAP avoids the busy Q2 and starts at cycle 0; makespan %d (the\n", res.Makespan)
	fmt.Println("   context-blind alternative would serialise after T and finish at 9)")
	fmt.Println(res.Schedule.Gantt(60))
}

// fig2 — duration-awareness: with τ(T)=1 and τ(CX)=2, the SWAP on (Q1,Q3)
// can start at cycle 1, while any SWAP touching Q0/Q2 must wait until 2.
func fig2() {
	fmt.Println("=== Fig 2 — impact of gate duration difference ===")
	dev, err := codar.NewDevice("fig2", 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	c := codar.NewCircuit(4)
	c.T(1)
	c.CX(0, 2)
	c.CX(0, 3)
	res, err := codar.Remap(c, dev, nil, codar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Schedule)
	fmt.Println("-> T frees Q1 at cycle 1 while CX still holds Q0/Q2 until 2: the")
	fmt.Println("   duration-aware SWAP launches a cycle early (Fig 2(d) timeline)")
	fmt.Println(res.Schedule.Gantt(60))
}

// fig7 — the §IV-E worked example: CX q0,q2; T q1; CX q0,q3 on a 6-qubit
// device. Cycle 0 inserts nothing (the only free SWAP has negative
// Hbasic); cycle 1 launches SWAP Q1,Q3 with locks set to 7.
func fig7() {
	fmt.Println("=== Fig 7 — worked remapping example (§IV-E) ===")
	dev, err := codar.NewDevice("fig7", 6, [][2]int{
		{0, 2}, {2, 4}, {1, 3}, {3, 5}, {0, 1}, {2, 3}, {4, 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	c := codar.NewCircuit(6)
	c.CX(0, 2)
	c.T(1)
	c.CX(0, 3)
	res, err := codar.Remap(c, dev, nil, codar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Schedule)
	fmt.Printf("-> SWAP Q1,Q3 at cycle 1 (locks -> 7), blocked CX runs at 7; makespan %d\n", res.Makespan)
	fmt.Println(res.Schedule.Gantt(60))

	if err := codar.Verify(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verification: all three replays are exact to the paper's timelines")
}
