// QFT on Sycamore: map a 16-qubit quantum Fourier transform onto the
// Google Q54 Sycamore model with both CODAR and SABRE and compare weighted
// depth — one point of the paper's Fig 8 sweep, reproduced standalone.
package main

import (
	"fmt"
	"log"

	"codar"
)

func main() {
	bench, err := codar.BenchmarkByName("qft_16")
	if err != nil {
		log.Fatal(err)
	}
	c := bench.Circuit()
	fmt.Printf("benchmark: %s (%d qubits, %d gates after lowering)\n", bench.Name, bench.Qubits, c.Len())

	dev, err := codar.DeviceByName("sycamore")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device:", dev)

	initial, err := codar.SABREInitialLayout(c, dev, 1)
	if err != nil {
		log.Fatal(err)
	}

	sres, err := codar.RemapSABRE(c, dev, initial, codar.SabreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sWD := codar.WeightedDepth(sres.Circuit, dev.Durations)

	cres, err := codar.Remap(c, dev, initial, codar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cWD := codar.WeightedDepth(cres.Circuit, dev.Durations)

	fmt.Printf("\n%-8s weighted depth %5d cycles, %4d swaps, depth %4d\n", "SABRE:", sWD, sres.SwapCount, sres.Circuit.Depth())
	fmt.Printf("%-8s weighted depth %5d cycles, %4d swaps, depth %4d\n", "CODAR:", cWD, cres.SwapCount, cres.Circuit.Depth())
	fmt.Printf("\nspeedup (SABRE/CODAR): %.3f\n", float64(sWD)/float64(cWD))
	fmt.Println("(the paper reports an average speedup of 1.258 on Sycamore across all 71 benchmarks)")
}
