package codar

// Integration tests of the public facade: everything a downstream user
// does goes through this surface, so these tests double as API contracts.

import (
	"math"
	"strings"
	"testing"

	"codar/internal/arch"
)

func TestFacadePipeline(t *testing.T) {
	// Parse OpenQASM, lower, map, verify, schedule, emit — the full
	// user-facing pipeline.
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
ccx q[0],q[1],q[2];
cu1(pi/4) q[2],q[3];
measure q -> c;
`
	parsed, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	c := Decompose(parsed)
	dev, err := DeviceByName("melbourne")
	if err != nil {
		t.Fatal(err)
	}
	initial, err := SABREInitialLayout(c, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Remap(c, dev, initial, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
		t.Fatal(err)
	}
	s := ScheduleASAP(res.Circuit, dev.Durations)
	if s.Makespan <= 0 || s.Makespan > res.Makespan {
		t.Errorf("re-schedule makespan %d vs reported %d", s.Makespan, res.Makespan)
	}
	out := WriteQASM(res.Circuit)
	if !strings.Contains(out, "qreg q[16];") {
		t.Errorf("emitted QASM lacks the device register: %s", out[:80])
	}
	// The emitted QASM parses back.
	if _, err := ParseQASM(out); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCircuitBuilders(t *testing.T) {
	c := NewNamedCircuit("api", 3)
	c.H(0).CX(0, 1).CP(math.Pi/2, 1, 2).T(2)
	if c.Len() != 4 || c.Name != "api" {
		t.Errorf("builder surface broken: %d gates", c.Len())
	}
	low := Decompose(c)
	for _, g := range low.Gates {
		if g.Op == OpCP {
			t.Error("Decompose left a cp gate")
		}
	}
}

func TestFacadeDeviceConstruction(t *testing.T) {
	dev, err := NewDevice("pair", 2, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !dev.Adjacent(0, 1) {
		t.Error("NewDevice lost its edge")
	}
	if dev.Duration(OpCX) != 2 {
		t.Error("default durations should be superconducting")
	}
	dev.Durations = IonTrapDurations()
	if dev.Duration(OpCX) != 12 {
		t.Error("duration preset not applied")
	}
	devs := EvaluationDevices()
	if len(devs) != 4 {
		t.Errorf("EvaluationDevices = %d", len(devs))
	}
}

func TestFacadeLayouts(t *testing.T) {
	l := TrivialLayout(2, 4)
	if l.Phys(1) != 1 || l.Log(3) != -1 {
		t.Error("TrivialLayout broken")
	}
	l2, err := NewLayout([]int{3, 0}, 4)
	if err != nil || l2.Phys(0) != 3 {
		t.Errorf("NewLayout: %v", err)
	}
	if _, err := NewLayout([]int{0, 0}, 4); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestFacadeRemapBothAlgorithms(t *testing.T) {
	c := NewCircuit(4).H(0).CX(0, 3).CX(1, 2)
	dev, _ := DeviceByName("linear4")
	cres, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := RemapSABRE(c, dev, nil, SabreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Circuit.Len() == 0 || sres.Circuit.Len() == 0 {
		t.Error("empty outputs")
	}
	if WeightedDepth(cres.Circuit, dev.Durations) <= 0 {
		t.Error("weighted depth not computable")
	}
}

func TestFacadeSimulationAndFidelity(t *testing.T) {
	c := NewCircuit(2).H(0).CX(0, 1)
	st, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	if p := st.Probability(3); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P(|11>) = %g", p)
	}
	dev, _ := DeviceByName("linear2")
	s := ScheduleASAP(c, dev.Durations)
	f, err := EstimateFidelity(DephasingNoise(50), s, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 || f > 1+1e-9 {
		t.Errorf("fidelity = %g", f)
	}
	fd, err := EstimateFidelity(DampingNoise(50), s, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fd <= 0 || fd > 1+1e-9 {
		t.Errorf("damping fidelity = %g", fd)
	}
}

func TestFacadeSuiteAccess(t *testing.T) {
	if len(Suite()) != 71 {
		t.Errorf("Suite() = %d entries", len(Suite()))
	}
	if len(FamousSeven()) != 7 {
		t.Errorf("FamousSeven() = %d entries", len(FamousSeven()))
	}
	b, err := BenchmarkByName("qft_8")
	if err != nil {
		t.Fatal(err)
	}
	if b.Circuit().NumQubits != 8 {
		t.Error("benchmark circuit width mismatch")
	}
}

// TestFacadeEndToEndOnEveryEvaluationDevice is the cross-device
// integration test: one structured benchmark mapped and verified on each
// of the paper's four architectures.
func TestFacadeEndToEndOnEveryEvaluationDevice(t *testing.T) {
	b, err := BenchmarkByName("qft_8")
	if err != nil {
		t.Fatal(err)
	}
	c := b.Circuit()
	for _, dev := range EvaluationDevices() {
		dev := dev
		t.Run(dev.Name, func(t *testing.T) {
			initial, err := SABREInitialLayout(c, dev, 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Remap(c, dev, initial, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
				t.Fatal(err)
			}
			sres, err := RemapSABRE(c, dev, initial, SabreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(c, sres.Circuit, dev, sres.InitialLayout, sres.FinalLayout); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFacadeSampledSuiteVerifies maps a sample of the benchmark suite on
// two devices and verifies every output — the broad-coverage integration
// sweep (statevector verification engages automatically on Q16/Q20).
func TestFacadeSampledSuiteVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration sweep")
	}
	names := []string{
		"ghz_5", "qft_5", "bv_8", "wstate_8", "adder_2", "grover_4",
		"dj_balanced_8", "simon_6", "qaoa_8_p1", "ising_8_4", "hshift_8",
		"revnet_8_s1", "rand_8_g200", "qv_8_d8", "mult_2",
	}
	devices := []*arch.Device{arch.IBMQ16Melbourne(), arch.IBMQ20Tokyo()}
	for _, name := range names {
		b, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := b.Circuit()
		for _, dev := range devices {
			initial, err := SABREInitialLayout(c, dev, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, dev.Name, err)
			}
			res, err := Remap(c, dev, initial, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, dev.Name, err)
			}
			if err := Verify(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
				t.Errorf("%s/%s: %v", name, dev.Name, err)
			}
		}
	}
}

func TestFacadeOptimize(t *testing.T) {
	c := NewCircuit(2)
	c.H(0).H(0).T(1).Tdg(1).CX(0, 1)
	out, res := Optimize(c)
	if out.Len() != 1 {
		t.Errorf("Optimize left %d gates", out.Len())
	}
	if res.Removed != 4 {
		t.Errorf("Removed = %d", res.Removed)
	}
	// Full pipeline also fuses rotation runs.
	c2 := NewCircuit(1)
	c2.H(0).T(0).H(0)
	out2, _ := OptimizePipeline(c2)
	if out2.Len() != 1 || out2.Gates[0].Op != OpU3 {
		t.Errorf("pipeline output: %v", out2.Gates)
	}
}

func TestFacadeTranspile(t *testing.T) {
	c := NewCircuit(2).H(0).CX(0, 1)
	ion, err := Transpile(c, TargetIonTrap)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range ion.Gates {
		switch g.Op.Name() {
		case "rx", "ry", "rz", "rxx":
		default:
			t.Errorf("non-native ion gate %v", g)
		}
	}
	atom, err := Transpile(c, TargetNeutralAtom)
	if err != nil {
		t.Fatal(err)
	}
	if atom.Len() == 0 {
		t.Error("empty neutral-atom transpilation")
	}
}

func TestFacadeOrient(t *testing.T) {
	dev, err := DeviceByName("qx4")
	if err != nil {
		t.Fatal(err)
	}
	if !dev.Directed() {
		t.Fatal("qx4 should be directed")
	}
	c := NewCircuit(5).CX(0, 1) // only 1->0 is native on QX4
	res, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oriented, ores, err := Orient(res.Circuit, dev, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range oriented.Gates {
		if g.Op == OpCX && !dev.CXAllowed(g.Qubits[0], g.Qubits[1]) {
			t.Errorf("illegal CX orientation %v", g)
		}
		if g.Op == OpSwap {
			t.Error("swap survived lowering")
		}
	}
	_ = ores
}

func TestFacadeFullToolchain(t *testing.T) {
	// The complete downstream flow: parse → optimize → map → verify →
	// orient → transpile → schedule.
	src := `
OPENQASM 2.0;
qreg q[4];
h q[0];
h q[0];
h q[0];
cx q[0],q[2];
ccx q[0],q[1],q[3];
rz(0.25) q[2];
rz(0.25) q[2];
`
	parsed, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := OptimizePipeline(Decompose(parsed))
	dev, err := DeviceByName("qx4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
		t.Fatal(err)
	}
	oriented, _, err := Orient(res.Circuit, dev, true)
	if err != nil {
		t.Fatal(err)
	}
	ion, err := Transpile(oriented, TargetIonTrap)
	if err != nil {
		t.Fatal(err)
	}
	s := ScheduleASAP(ion, IonTrapDurations())
	if s.Makespan <= 0 {
		t.Error("unschedulable toolchain output")
	}
}

// TestFullSuiteMapsAndVerifiesOnSycamore is the heaviest end-to-end
// guarantee: every one of the 71 benchmarks (including the 30k-gate
// 36-qubit program) maps with CODAR onto the Sycamore model and passes
// compliance + permutation-tracked equivalence.
func TestFullSuiteMapsAndVerifiesOnSycamore(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	dev, err := DeviceByName("sycamore")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c := b.Circuit()
			res, err := Remap(c, dev, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Compliance + equivalence; the statevector check does not
			// engage (54 qubits exceeds its limit), so Verify is cheap
			// enough for every entry.
			if err := Verify(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
				t.Fatal(err)
			}
		})
	}
}
