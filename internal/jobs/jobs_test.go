package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codar/internal/testutil"
)

// okRunner returns a runner that succeeds immediately with body.
func okRunner(body string) Runner {
	return func(ctx context.Context) ([]byte, string, *Failure) {
		return []byte(body), "miss", nil
	}
}

// gateRunner blocks until release is closed (or ctx fires), then succeeds.
func gateRunner(release <-chan struct{}, body string) Runner {
	return func(ctx context.Context) ([]byte, string, *Failure) {
		select {
		case <-release:
			return []byte(body), "miss", nil
		case <-ctx.Done():
			return nil, "", &Failure{Status: 499, Code: "canceled", Message: "canceled"}
		}
	}
}

func waitState(t *testing.T, s *Store, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if snap.State == want {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	snap, _ := s.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, snap.State, want)
	return Snapshot{}
}

func TestSubmitRunsToDone(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := NewStore(Config{Workers: 2})
	defer s.Close()

	snap, err := s.Submit(okRunner("hello"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap.ID == "" || len(snap.ID) != 16 {
		t.Fatalf("job ID %q, want 16 hex chars", snap.ID)
	}
	done := waitState(t, s, snap.ID, StateDone)
	if done.Cache != "miss" {
		t.Fatalf("cache disposition %q, want miss", done.Cache)
	}
	body, _, err := s.Result(snap.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if string(body) != "hello" {
		t.Fatalf("body %q, want hello", body)
	}
}

func TestFIFOOrderAndQueuePosition(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	release := make(chan struct{})
	s := NewStore(Config{Workers: 1})
	defer s.Close()

	var order []string
	var mu sync.Mutex
	mk := func(name string) Runner {
		return func(ctx context.Context) ([]byte, string, *Failure) {
			<-release
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return []byte(name), "miss", nil
		}
	}
	first, _ := s.Submit(mk("a"))
	second, err := s.Submit(mk("b"))
	if err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	third, err := s.Submit(mk("c"))
	if err != nil {
		t.Fatalf("Submit c: %v", err)
	}
	waitState(t, s, first.ID, StateRunning)

	snap2, _ := s.Get(second.ID)
	snap3, _ := s.Get(third.ID)
	if snap2.State != StateQueued || snap2.Pos != 0 {
		t.Fatalf("second: state=%s pos=%d, want queued pos 0", snap2.State, snap2.Pos)
	}
	if snap3.State != StateQueued || snap3.Pos != 1 {
		t.Fatalf("third: state=%s pos=%d, want queued pos 1", snap3.State, snap3.Pos)
	}
	close(release)
	waitState(t, s, third.ID, StateDone)
	mu.Lock()
	got := fmt.Sprint(order)
	mu.Unlock()
	if got != "[a b c]" {
		t.Fatalf("execution order %s, want [a b c]", got)
	}
}

func TestCapacityBound(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	release := make(chan struct{})
	defer close(release)
	s := NewStore(Config{Workers: 1, Capacity: 2})
	defer s.Close()

	if _, err := s.Submit(gateRunner(release, "x")); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	if _, err := s.Submit(gateRunner(release, "y")); err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	if _, err := s.Submit(gateRunner(release, "z")); !errors.Is(err, ErrFull) {
		t.Fatalf("Submit 3: err=%v, want ErrFull", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	release := make(chan struct{})
	defer close(release)
	s := NewStore(Config{Workers: 1})
	defer s.Close()

	running, _ := s.Submit(gateRunner(release, "r"))
	queued, _ := s.Submit(gateRunner(release, "q"))
	waitState(t, s, running.ID, StateRunning)

	// Cancel the queued job: settles synchronously, never runs.
	snap, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	if snap.State != StateCanceled {
		t.Fatalf("queued cancel state %s, want canceled", snap.State)
	}
	if _, _, err := s.Result(queued.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("Result of canceled job: err=%v, want ErrNotDone", err)
	}

	// Cancel the running job: its context fires, runner observes it.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatalf("Cancel running: %v", err)
	}
	got := waitState(t, s, running.ID, StateCanceled)
	if got.Failure == nil || got.Failure.Code != "canceled" {
		t.Fatalf("running cancel failure %+v, want code canceled", got.Failure)
	}
	// Cancel of a terminal job is a no-op.
	again, err := s.Cancel(running.ID)
	if err != nil || again.State != StateCanceled {
		t.Fatalf("re-cancel: snap=%+v err=%v", again, err)
	}
}

func TestFailedJobReplaysFailure(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := NewStore(Config{Workers: 1})
	defer s.Close()
	snap, _ := s.Submit(func(ctx context.Context) ([]byte, string, *Failure) {
		return nil, "", &Failure{Status: 422, Code: "bad_qasm", Message: "boom"}
	})
	waitState(t, s, snap.ID, StateFailed)
	_, _, err := s.Result(snap.ID)
	var fail *Failure
	if !errors.As(err, &fail) {
		t.Fatalf("Result err %T %v, want *Failure", err, err)
	}
	if fail.Status != 422 || fail.Code != "bad_qasm" {
		t.Fatalf("failure %+v, want 422 bad_qasm", fail)
	}
}

func TestTTLExpiryAndTombstoneDeletion(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	var clock atomic.Int64 // nanos offset
	base := time.Unix(1700000000, 0)
	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }
	s := NewStore(Config{Workers: 1, TTL: time.Minute, Clock: now})
	defer s.Close()

	snap, _ := s.Submit(okRunner("v"))
	waitState(t, s, snap.ID, StateDone)

	// Within TTL: result still served.
	if _, _, err := s.Result(snap.ID); err != nil {
		t.Fatalf("Result within TTL: %v", err)
	}
	// Past TTL: expired, result gone, 410-shaped error.
	clock.Store(int64(2 * time.Minute))
	if _, _, err := s.Result(snap.ID); !errors.Is(err, ErrExpired) {
		t.Fatalf("Result past TTL: err=%v, want ErrExpired", err)
	}
	st := s.Stats()
	if st.Expired != 1 {
		t.Fatalf("expired counter %d, want 1", st.Expired)
	}
	// Past 2×TTL: tombstone deleted entirely.
	clock.Store(int64(4 * time.Minute))
	if _, err := s.Get(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get past tombstone TTL: err=%v, want ErrNotFound", err)
	}
	// Expired slots free capacity again.
	if _, err := s.Submit(okRunner("w")); err != nil {
		t.Fatalf("Submit after reap: %v", err)
	}
}

func TestQueuedJobExpires(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	var clock atomic.Int64
	base := time.Unix(1700000000, 0)
	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }
	release := make(chan struct{})
	defer close(release)
	s := NewStore(Config{Workers: 1, TTL: time.Minute, Clock: now})
	defer s.Close()

	running, _ := s.Submit(gateRunner(release, "r"))
	queued, _ := s.Submit(gateRunner(release, "q"))
	waitState(t, s, running.ID, StateRunning)
	clock.Store(int64(2 * time.Minute))
	snap, err := s.Get(queued.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if snap.State != StateExpired {
		t.Fatalf("queued job state %s after TTL, want expired", snap.State)
	}
}

func TestSubscribeStreamsTransitions(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	release := make(chan struct{})
	s := NewStore(Config{Workers: 1})
	defer s.Close()

	snap, _ := s.Submit(gateRunner(release, "v"))
	ch, unsub, err := s.Subscribe(snap.ID)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer unsub()
	close(release)

	var states []State
	for got := range ch {
		states = append(states, got.State)
	}
	// Depending on dispatch timing we see [running done] or just [done];
	// the terminal state must always arrive last and the channel close.
	if len(states) == 0 || states[len(states)-1] != StateDone {
		t.Fatalf("streamed states %v, want trailing done", states)
	}

	// Subscribing to an already-terminal job yields one snapshot then close.
	ch2, unsub2, err := s.Subscribe(snap.ID)
	if err != nil {
		t.Fatalf("Subscribe terminal: %v", err)
	}
	defer unsub2()
	got, ok := <-ch2
	if !ok || got.State != StateDone {
		t.Fatalf("terminal subscribe got %+v ok=%v, want done snapshot", got, ok)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("terminal subscribe channel not closed after snapshot")
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	release := make(chan struct{})
	defer close(release)
	s := NewStore(Config{Workers: 1})

	running, _ := s.Submit(gateRunner(release, "r"))
	queued, _ := s.Submit(gateRunner(release, "q"))
	waitState(t, s, running.ID, StateRunning)
	s.Close()

	if snap, _ := s.Get(queued.ID); snap.State != StateCanceled {
		t.Fatalf("queued job after Close: %s, want canceled", snap.State)
	}
	if _, err := s.Submit(okRunner("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err=%v, want ErrClosed", err)
	}
}

func TestBaseCtxDrainFailsJobs(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	release := make(chan struct{})
	defer close(release)
	s := NewStore(Config{Workers: 1, BaseCtx: baseCtx})
	defer s.Close()

	snap, _ := s.Submit(gateRunner(release, "r"))
	waitState(t, s, snap.ID, StateRunning)
	baseCancel()
	// Drain is a failure, not a user cancel: the runner's classification
	// (code canceled here) is preserved but the state is failed.
	got := waitState(t, s, snap.ID, StateFailed)
	if got.Failure == nil {
		t.Fatal("drained job carries no failure")
	}
}

func TestConcurrentSubmitStress(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := NewStore(Config{Workers: 4, Capacity: 4096})
	defer s.Close()

	const n = 200
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, err := s.Submit(okRunner(fmt.Sprintf("r%d", i)))
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			ids[i] = snap.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			continue
		}
		waitState(t, s, id, StateDone)
		body, _, err := s.Result(id)
		if err != nil {
			t.Fatalf("Result %d: %v", i, err)
		}
		if string(body) != fmt.Sprintf("r%d", i) {
			t.Fatalf("job %d body %q", i, body)
		}
	}
	st := s.Stats()
	if st.Done != n {
		t.Fatalf("done counter %d, want %d", st.Done, n)
	}
}
