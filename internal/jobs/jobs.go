// Package jobs is the bounded asynchronous job store behind the codard
// /v1/jobs API: long-running mapping work (portfolio grids, Sycamore-scale
// circuits) is enqueued, executed through the service's shared worker pool,
// and polled or streamed instead of holding an HTTP connection open for the
// whole mapping.
//
// The store is deliberately small and strict:
//
//   - Bounded residency: at most Capacity jobs exist at once, in any state.
//     Submit beyond that is an explicit rejection (ErrFull) the service maps
//     to 429 — an async queue must not become an unbounded buffer.
//   - One-way lifecycle: queued → running → done | failed | canceled, and
//     any retained terminal job (or a never-started queued one) → expired
//     once it outlives the TTL. Transitions are monotonic; there is no
//     retry state, resubmission is a new job.
//   - Lazy TTL reaping: expiry is enforced on every store operation (and
//     when jobs finish) instead of by a background goroutine, so an idle
//     store owns no goroutines and embedders (tests, short-lived servers)
//     never leak a reaper. The clock is injectable for deterministic tests.
//   - FIFO dispatch under a concurrency bound: Submit appends to a queue;
//     at most Workers job goroutines run at once, each executing the
//     caller-supplied Runner. The Runner is expected to do its own
//     worker-slot accounting (the service routes jobs through the same
//     semaphore as synchronous requests), so the bound here only caps
//     job-goroutine fan-out, not mapping concurrency.
//
// Results are opaque bytes: the service stores the same marshalled response
// body the synchronous path would have written, so a job's result is
// byte-identical to its synchronous twin by construction.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State string

// Job states. Terminal states are Done, Failed, Canceled and Expired.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	StateExpired  State = "expired"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateExpired:
		return true
	}
	return false
}

// Store-level sentinel errors, mapped by the service to envelope codes.
var (
	// ErrFull rejects a Submit beyond the store's capacity (429 queue_full).
	ErrFull = errors.New("jobs: store full")
	// ErrNotFound marks an unknown (or already deleted) job ID (404
	// job_not_found).
	ErrNotFound = errors.New("jobs: job not found")
	// ErrExpired marks a job whose result was reaped by the TTL (410
	// job_expired).
	ErrExpired = errors.New("jobs: job expired")
	// ErrNotDone marks a result fetch on a job that has not finished (409
	// job_not_done).
	ErrNotDone = errors.New("jobs: job not done")
	// ErrClosed rejects Submit on a closed store.
	ErrClosed = errors.New("jobs: store closed")
)

// Failure is the stored outcome of a failed job: the HTTP status and
// envelope code its synchronous twin would have answered with, replayed by
// GET /v1/jobs/{id}/result.
type Failure struct {
	Status  int
	Code    string
	Message string
}

func (f *Failure) Error() string { return f.Message }

// Runner executes one job under ctx. It returns the rendered result bytes
// and the cache disposition on success, or a Failure. A ctx fired by
// Cancel (or the server draining) should surface as a Failure carrying the
// cancellation code.
type Runner func(ctx context.Context) (body []byte, cache string, failure *Failure)

// Config sizes a Store. Zero values select the defaults.
type Config struct {
	// Capacity bounds resident jobs in any state; Submit beyond it returns
	// ErrFull. 0 selects DefaultCapacity.
	Capacity int
	// TTL bounds retention: terminal jobs older than it lose their result
	// bytes and become StateExpired; expired tombstones (and queued jobs
	// that never started) older than another TTL are deleted. 0 selects
	// DefaultTTL.
	TTL time.Duration
	// Workers bounds concurrently executing job goroutines. 0 selects 1.
	Workers int
	// BaseCtx parents every job's context; canceling it (server drain)
	// aborts running jobs. nil selects context.Background().
	BaseCtx context.Context
	// Clock is the store's time source; nil selects time.Now. Injectable
	// so TTL tests are deterministic.
	Clock func() time.Time
}

// Defaults for Config.
const (
	DefaultCapacity = 1024
	DefaultTTL      = 15 * time.Minute
)

// Snapshot is a point-in-time copy of one job's public state.
type Snapshot struct {
	ID       string
	State    State
	Pos      int // 0-based queue position; meaningful only when queued
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Cache    string // disposition of a done job (hit/miss/collapsed)
	Failure  *Failure
}

// job is the store-internal record.
type job struct {
	id       string
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	expires  time.Time // tombstone deadline once terminal/expired

	run    Runner
	cancel context.CancelFunc // non-nil while running

	body  []byte
	cache string
	fail  *Failure

	subs []chan Snapshot
}

// Stats is the store's counter view for /v1/stats and /metrics.
type Stats struct {
	Submitted uint64
	Done      uint64
	Failed    uint64
	Canceled  uint64
	Expired   uint64
	Queued    int
	Running   int
	Resident  int
	Capacity  int
}

// Store is the bounded job store. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	jobs    map[string]*job
	queue   []*job // FIFO of queued jobs
	running int
	closed  bool

	capacity int
	ttl      time.Duration
	workers  int
	baseCtx  context.Context
	now      func() time.Time

	submitted uint64
	done      uint64
	failed    uint64
	canceled  uint64
	expired   uint64

	// idle is closed whenever no job goroutine is running; Close waits on
	// it so embedders can assert zero goroutine leakage.
	wg sync.WaitGroup
}

// NewStore builds a Store from cfg.
func NewStore(cfg Config) *Store {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	base := cfg.BaseCtx
	if base == nil {
		base = context.Background()
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &Store{
		jobs:     make(map[string]*job),
		capacity: capacity,
		ttl:      ttl,
		workers:  workers,
		baseCtx:  base,
		now:      now,
	}
}

// newJobID returns a 16-hex-char random job ID (same shape as request IDs).
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// Submit enqueues one job and returns its initial snapshot. ErrFull when
// the store is at capacity (after reaping), ErrClosed after Close.
func (s *Store) Submit(run Runner) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, ErrClosed
	}
	s.reapLocked()
	if len(s.jobs) >= s.capacity {
		return Snapshot{}, ErrFull
	}
	j := &job{
		id:      newJobID(),
		state:   StateQueued,
		created: s.now(),
		run:     run,
	}
	for s.jobs[j.id] != nil { // collision paranoia on 64-bit IDs
		j.id = newJobID()
	}
	s.jobs[j.id] = j
	s.queue = append(s.queue, j)
	s.submitted++
	s.dispatchLocked()
	return s.snapshotLocked(j), nil
}

// Get returns the job's snapshot; ErrNotFound for unknown IDs.
func (s *Store) Get(id string) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	j, ok := s.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return s.snapshotLocked(j), nil
}

// Result returns a done job's stored bytes and snapshot. A failed job
// returns its Failure; ErrNotDone while queued/running/canceled without a
// result, ErrExpired once the TTL reaped the result, ErrNotFound for
// unknown IDs.
func (s *Store) Result(id string) ([]byte, Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	j, ok := s.jobs[id]
	if !ok {
		return nil, Snapshot{}, ErrNotFound
	}
	snap := s.snapshotLocked(j)
	switch j.state {
	case StateDone:
		return j.body, snap, nil
	case StateExpired:
		return nil, snap, ErrExpired
	case StateFailed:
		return nil, snap, j.fail
	default:
		return nil, snap, ErrNotDone
	}
}

// Cancel moves a queued or running job to canceled: a queued job is
// removed from the dispatch queue without ever starting, a running one has
// its context fired (its Runner settles the final state). Cancel of a job
// already terminal is a no-op reporting the current state.
func (s *Store) Cancel(id string) (Snapshot, error) {
	s.mu.Lock()
	s.reapLocked()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.finishLocked(j, StateCanceled, nil, "", &Failure{Code: "canceled", Message: "job canceled before it started"})
		snap := s.snapshotLocked(j)
		s.mu.Unlock()
		return snap, nil
	case StateRunning:
		cancel := j.cancel
		snap := s.snapshotLocked(j)
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return snap, nil
	default:
		snap := s.snapshotLocked(j)
		s.mu.Unlock()
		return snap, nil
	}
}

// Subscribe registers for the job's state changes. The channel delivers
// the job's current snapshot immediately, then one snapshot per transition
// (buffered deep enough for the full lifecycle), and is closed after the
// terminal state is delivered. The returned cancel func unregisters;
// always call it.
func (s *Store) Subscribe(id string) (<-chan Snapshot, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	// A job has at most queued→running→terminal→expired transitions; 8
	// slots (plus the immediate snapshot) can never overflow, so publishes
	// never block or drop.
	ch := make(chan Snapshot, 8)
	ch <- s.snapshotLocked(j)
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	j.subs = append(j.subs, ch)
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				return
			}
		}
	}
	return ch, cancel, nil
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	queued := len(s.queue)
	return Stats{
		Submitted: s.submitted,
		Done:      s.done,
		Failed:    s.failed,
		Canceled:  s.canceled,
		Expired:   s.expired,
		Queued:    queued,
		Running:   s.running,
		Resident:  len(s.jobs),
		Capacity:  s.capacity,
	}
}

// Close stops accepting submissions, cancels every queued and running job,
// and waits for job goroutines to return. Safe to call twice.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	var cancels []context.CancelFunc
	for _, j := range s.queue {
		s.finishLocked(j, StateCanceled, nil, "", &Failure{Code: "canceled", Message: "job store shutting down"})
	}
	s.queue = nil
	for _, j := range s.jobs {
		if j.state == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	s.wg.Wait()
}

// dispatchLocked starts queued jobs while worker slots are free. Callers
// hold s.mu.
func (s *Store) dispatchLocked() {
	for s.running < s.workers && len(s.queue) > 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		ctx, cancel := context.WithCancel(s.baseCtx)
		j.state = StateRunning
		j.started = s.now()
		j.cancel = cancel
		s.running++
		s.publishLocked(j)
		s.wg.Add(1)
		go s.execute(j, ctx, cancel)
	}
}

// execute runs one dispatched job to its terminal state.
func (s *Store) execute(j *job, ctx context.Context, cancel context.CancelFunc) {
	defer s.wg.Done()
	defer cancel()
	body, cache, fail := j.run(ctx)
	s.mu.Lock()
	s.running--
	switch {
	case fail == nil:
		s.finishLocked(j, StateDone, body, cache, nil)
	case ctx.Err() != nil && s.baseCtx.Err() == nil && !s.closed:
		// The job's own context fired but the server isn't draining: this
		// was a Cancel call, not a drain — record it as canceled whatever
		// code the runner classified.
		s.finishLocked(j, StateCanceled, nil, "", fail)
	default:
		s.finishLocked(j, StateFailed, nil, "", fail)
	}
	s.dispatchLocked()
	s.mu.Unlock()
}

// finishLocked settles a job in a terminal state, stamps its tombstone
// deadline, publishes the transition and closes subscriber channels.
// Callers hold s.mu.
func (s *Store) finishLocked(j *job, st State, body []byte, cache string, fail *Failure) {
	if j.state.Terminal() {
		return
	}
	j.state = st
	j.finished = s.now()
	j.expires = j.finished.Add(s.ttl)
	j.body, j.cache, j.fail = body, cache, fail
	j.cancel = nil
	switch st {
	case StateDone:
		s.done++
	case StateFailed:
		s.failed++
	case StateCanceled:
		s.canceled++
	}
	s.publishLocked(j)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// publishLocked sends the job's current snapshot to every subscriber.
// Channels are sized for the full lifecycle, so sends never block.
func (s *Store) publishLocked(j *job) {
	if len(j.subs) == 0 {
		return
	}
	snap := s.snapshotLocked(j)
	for _, ch := range j.subs {
		select {
		case ch <- snap:
		default: // unreachable by construction; never block the store
		}
	}
}

// reapLocked enforces the TTL: terminal jobs past their tombstone deadline
// become expired (result bytes dropped, counted once), expired tombstones
// past another TTL are deleted, and queued jobs older than the TTL are
// expired without ever starting. Callers hold s.mu.
func (s *Store) reapLocked() {
	now := s.now()
	anyExpired := false
	for _, j := range s.queue {
		if now.Sub(j.created) >= s.ttl {
			s.finishLocked(j, StateExpired, nil, "", &Failure{Code: "job_expired", Message: "job expired before it started"})
			s.expired++
			anyExpired = true
		}
	}
	if anyExpired {
		live := s.queue[:0]
		for _, j := range s.queue {
			if j.state == StateQueued {
				live = append(live, j)
			}
		}
		s.queue = live
	}
	for id, j := range s.jobs {
		switch {
		case j.state == StateExpired:
			if now.After(j.expires) {
				delete(s.jobs, id)
			}
		case j.state.Terminal() && now.After(j.expires):
			j.state = StateExpired
			j.body = nil
			j.expires = now.Add(s.ttl)
			s.expired++
		}
	}
}

// snapshotLocked copies a job's public state; queue position is its index
// in the FIFO. Callers hold s.mu.
func (s *Store) snapshotLocked(j *job) Snapshot {
	snap := Snapshot{
		ID:       j.id,
		State:    j.state,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Cache:    j.cache,
		Failure:  j.fail,
	}
	if j.state == StateQueued {
		for i, q := range s.queue {
			if q == j {
				snap.Pos = i
				break
			}
		}
	}
	return snap
}
