package portfolio

import (
	"context"
	"errors"
	"testing"
	"time"

	"codar/internal/arch"
	"codar/internal/testutil"
)

// TestCtxPreCanceled: a dead context aborts the run before any candidate is
// dispatched, with the typed sentinel matching the stdlib cause.
func TestCtxPreCanceled(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := benchCircuit(t, "qft_10")
	_, err := Run(b.Circuit(), arch.IBMQ20Tokyo(), Spec{Ctx: ctx, Workers: 2})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must also match context.Canceled", err)
	}
}

// TestCtxCancelMidRun: canceling a running portfolio aborts every in-flight
// candidate, stops dispatching queued ones, returns the typed error promptly
// and — the leak check — strands no pool worker.
func TestCtxCancelMidRun(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	b := benchCircuit(t, "qft_16")
	dev := arch.SycamoreQ54()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(b.Circuit(), dev, Spec{Ctx: ctx, Workers: 4, Seeds: []int64{1, 2, 3, 4}})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	canceledAt := time.Now()
	cancel()
	err := <-done
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if lag := time.Since(canceledAt); lag > 2*time.Second {
		t.Fatalf("abort lagged cancel by %v", lag)
	}
}

// TestCtxDeadline: an expired deadline classifies as ErrDeadline.
func TestCtxDeadline(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	b := benchCircuit(t, "qft_10")
	_, err := Run(b.Circuit(), arch.IBMQ20Tokyo(), Spec{Ctx: ctx, Workers: 2})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// TestCtxBackgroundIsByteIdentical: an inert context threads through the
// whole grid — placement passes included — without touching the winner or
// any report row.
func TestCtxBackgroundIsByteIdentical(t *testing.T) {
	b := benchCircuit(t, "qft_10")
	dev := arch.IBMQ20Tokyo()
	spec := Spec{Workers: 2, EarlyAbandon: true}
	plain, err := Run(b.Circuit(), dev, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Ctx = context.Background()
	withCtx, err := Run(b.Circuit(), dev, spec)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, plain) != fingerprint(t, withCtx) {
		t.Fatal("background ctx changed the portfolio winner")
	}
	// Completed is deliberately not compared: with EarlyAbandon under
	// multiple workers, which losing candidates get cut before finishing
	// depends on dispatch timing. Only the winner is invariant.
	if plain.WinnerIndex != withCtx.WinnerIndex {
		t.Fatalf("winner diverged: %d vs %d", plain.WinnerIndex, withCtx.WinnerIndex)
	}
}

// TestCtxNormalizedPropagates: Spec.Ctx is copied into the per-mapper
// options exactly when they have none of their own.
func TestCtxNormalizedPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := Spec{Ctx: ctx}.Normalized()
	if n.Codar.Ctx != ctx || n.Sabre.Ctx != ctx {
		t.Fatal("Spec.Ctx not propagated into mapper options")
	}
	own, ownCancel := context.WithCancel(context.Background())
	defer ownCancel()
	s := Spec{Ctx: ctx}
	s.Sabre.Ctx = own
	got := s.Normalized()
	if got.Sabre.Ctx != own {
		t.Fatal("explicit Sabre.Ctx was overwritten")
	}
	if got.Codar.Ctx != ctx {
		t.Fatal("Codar.Ctx not defaulted from Spec.Ctx")
	}
}
