// Package portfolio implements objective-driven multi-start mapping: run K
// candidate pipelines — seeds × placement methods × mapping algorithms —
// concurrently over a bounded worker pool, score every completed schedule
// with a pluggable objective, and return the winner plus a per-candidate
// report.
//
// The paper adopts a single initial-mapping heuristic (SABRE's reverse
// traversal, §V-A) because "initial mapping has been proved to be
// significant for the qubit mapping problem"; Niu et al.'s hardware-aware
// heuristic shows that searching over multiple starts and selecting by an
// objective beats any single run. This package is that search:
//
//   - Candidates are enumerated in a fixed order (seed-major, then
//     placement method, then algorithm), and selection is a total order —
//     objective score, then weighted depth, then swap count, then candidate
//     index — so the same inputs always pick the same winner regardless of
//     goroutine completion order.
//   - Early abandon (Spec.EarlyAbandon) threads a shared arch.DepthBound
//     through the mappers: each completed candidate publishes its weighted
//     depth, and an in-flight candidate whose in-progress makespan lower
//     bound already exceeds the incumbent stops routing instead of
//     finishing a losing run. Abandon only triggers on a *strictly* worse
//     lower bound under the min-depth objective, so it can never change the
//     winner — only which losers finish (DESIGN.md §9).
//
// Objectives: ObjectiveMinDepth (weighted depth, the paper's figure of
// merit), ObjectiveMinSwaps, and ObjectiveMaxESP (calibration-estimated
// success probability; requires Spec.Snapshot).
package portfolio

import (
	"context"
	"fmt"
	"sync"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/interrupt"
	"codar/internal/placement"
	"codar/internal/pool"
	"codar/internal/sabre"
	"codar/internal/schedule"
)

// ErrCanceled and ErrDeadline are returned by Run when Spec.Ctx fires: the
// whole portfolio request was abandoned — queued candidates are never
// dispatched and in-flight candidates abort at their mappers' amortized
// cancellation cadence. They are the shared pipeline sentinels — errors.Is
// also matches context.Canceled / context.DeadlineExceeded.
var (
	ErrCanceled = interrupt.ErrCanceled
	ErrDeadline = interrupt.ErrDeadline
)

// Objective names a candidate-scoring rule. Scores are minimised; see
// Objectives for the known set.
type Objective string

// The available objectives.
const (
	// ObjectiveMinDepth minimises the weighted depth (ASAP makespan under
	// the device durations) of the mapped circuit — the paper's figure of
	// merit, and the only objective eligible for early abandon.
	ObjectiveMinDepth Objective = "min-depth"
	// ObjectiveMinSwaps minimises the number of inserted SWAPs.
	ObjectiveMinSwaps Objective = "min-swaps"
	// ObjectiveMaxESP maximises the calibration-estimated success
	// probability of the mapped schedule. Requires Spec.Snapshot.
	ObjectiveMaxESP Objective = "max-esp"
)

// Objectives lists the known objectives in report order.
func Objectives() []Objective {
	return []Objective{ObjectiveMinDepth, ObjectiveMinSwaps, ObjectiveMaxESP}
}

// ParseObjective validates an objective name.
func ParseObjective(s string) (Objective, error) {
	for _, o := range Objectives() {
		if string(o) == s {
			return o, nil
		}
	}
	return "", fmt.Errorf("portfolio: unknown objective %q (want min-depth, min-swaps or max-esp)", s)
}

// Algorithm names a mapper.
type Algorithm string

// The available mapping algorithms.
const (
	AlgoCodar Algorithm = "codar"
	AlgoSabre Algorithm = "sabre"
)

// Algorithms lists the mappers in report order.
func Algorithms() []Algorithm { return []Algorithm{AlgoCodar, AlgoSabre} }

// ParseAlgorithm validates an algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch Algorithm(s) {
	case AlgoCodar, AlgoSabre:
		return Algorithm(s), nil
	}
	return "", fmt.Errorf("portfolio: unknown algorithm %q (want codar or sabre)", s)
}

// Spec configures a portfolio run. The zero value selects the defaults:
// seeds {1, 2}, every placement method, both algorithms, min-depth, no
// early abandon.
type Spec struct {
	// Ctx, when non-nil, makes the whole portfolio run cancelable:
	// abandoning the request cancels every in-flight candidate (the
	// mappers poll it at their amortized cadence), stops dispatching
	// queued ones, and Run returns ErrCanceled / ErrDeadline instead of a
	// result. It is copied into Codar.Ctx / Sabre.Ctx unless those are
	// already set. nil leaves the run — and its output bytes — untouched.
	Ctx context.Context
	// Seeds drive the seeded placement methods (random, sabre-reverse).
	// Seed-insensitive methods still enumerate once per seed so the
	// candidate grid stays rectangular and the report exhaustive, but
	// their duplicate grid points are computed once and copied.
	// Empty selects DefaultSeeds.
	Seeds []int64
	// Placements are the initial-layout strategies to try. Empty selects
	// placement.Methods() (all four).
	Placements []placement.Method
	// Algorithms are the mappers to try. Empty selects both.
	Algorithms []Algorithm
	// Objective scores completed candidates. Empty selects min-depth.
	Objective Objective
	// Workers bounds the candidate fan-out; <= 0 selects GOMAXPROCS.
	Workers int
	// EarlyAbandon enables the shared depth bound. Only effective under
	// ObjectiveMinDepth: other objectives can prefer deeper schedules, so a
	// depth cut could change their winner and is ignored.
	EarlyAbandon bool
	// Snapshot, when non-nil, attaches a calibration snapshot: every
	// candidate's report gains an ESP estimate, and ObjectiveMaxESP becomes
	// available. It must validate against the target device.
	Snapshot *calib.Snapshot
	// Codar and Sabre carry per-mapper options applied to every candidate
	// of that algorithm (any DepthBound in them is overwritten by the
	// portfolio's own bound handling).
	Codar core.Options
	Sabre sabre.Options
}

// DefaultSeeds is the seed set a zero Spec enumerates.
var DefaultSeeds = []int64{1, 2}

// Normalized returns a copy of the spec with defaults applied — the exact
// grid axes Run will enumerate (useful for reports).
func (s Spec) Normalized() Spec { return s.normalized() }

// normalized returns a copy of s with defaults applied.
func (s Spec) normalized() Spec {
	if len(s.Seeds) == 0 {
		s.Seeds = DefaultSeeds
	}
	if len(s.Placements) == 0 {
		s.Placements = placement.Methods()
	}
	if len(s.Algorithms) == 0 {
		s.Algorithms = Algorithms()
	}
	if s.Objective == "" {
		s.Objective = ObjectiveMinDepth
	}
	if s.Ctx != nil {
		if s.Codar.Ctx == nil {
			s.Codar.Ctx = s.Ctx
		}
		if s.Sabre.Ctx == nil {
			s.Sabre.Ctx = s.Ctx
		}
	}
	return s
}

// Candidate identifies one point of the portfolio grid.
type Candidate struct {
	// Index is the position in the fixed enumeration order (seed-major,
	// then placement, then algorithm) — the final tie-break key.
	Index     int              `json:"index"`
	Seed      int64            `json:"seed"`
	Placement placement.Method `json:"placement"`
	Algorithm Algorithm        `json:"algorithm"`
}

// Report is the outcome of one candidate.
type Report struct {
	Candidate
	// Depth is the weighted depth (ASAP makespan) of the candidate's
	// output; Swaps its inserted-SWAP count. Zero when the candidate did
	// not complete.
	Depth int `json:"depth,omitempty"`
	Swaps int `json:"swaps,omitempty"`
	// ESP is the calibration-estimated success probability (present only
	// when the Spec carried a snapshot and the candidate completed).
	ESP float64 `json:"esp,omitempty"`
	// Score is the objective value (lower wins; max-esp negates).
	Score float64 `json:"score,omitempty"`
	// Abandoned marks a candidate cut by the early-abandon bound. Which
	// losers are abandoned depends on goroutine timing; the winner does
	// not (see the package comment).
	Abandoned bool `json:"abandoned,omitempty"`
	// Err records a candidate that failed outright (e.g. a placement
	// method rejecting the circuit).
	Err string `json:"error,omitempty"`
}

// Mapped is a completed candidate's full output, algorithm-independent.
type Mapped struct {
	// Circuit is the hardware-compliant physical gate sequence.
	Circuit *circuit.Circuit
	// Schedule is the ASAP schedule of Circuit under the device durations
	// (its makespan is the reported depth).
	Schedule *schedule.Schedule
	// InitialLayout and FinalLayout bracket the run.
	InitialLayout *arch.Layout
	FinalLayout   *arch.Layout
	// SwapCount is the number of SWAPs inserted.
	SwapCount int
	// Depth is Schedule.Makespan.
	Depth int
	// ESP is the calibration-estimated success probability (0 without a
	// snapshot).
	ESP float64
}

// Result is a portfolio run outcome.
type Result struct {
	// Objective the candidates were scored with.
	Objective Objective
	// Winner is the selected candidate's full output.
	Winner *Mapped
	// WinnerIndex is the winner's Candidate.Index.
	WinnerIndex int
	// Candidates reports every grid point in enumeration order.
	Candidates []Report
	// Completed and Abandoned count candidate outcomes.
	Completed int
	Abandoned int
}

// WinnerReport returns the winner's report row.
func (r *Result) WinnerReport() Report { return r.Candidates[r.WinnerIndex] }

// Enumerate lists the candidate grid of a spec in the fixed order the
// selection tie-breaks on: seed-major, then placement method, then
// algorithm.
func Enumerate(spec Spec) []Candidate {
	spec = spec.normalized()
	out := make([]Candidate, 0, len(spec.Seeds)*len(spec.Placements)*len(spec.Algorithms))
	for _, seed := range spec.Seeds {
		for _, m := range spec.Placements {
			for _, a := range spec.Algorithms {
				out = append(out, Candidate{Index: len(out), Seed: seed, Placement: m, Algorithm: a})
			}
		}
	}
	return out
}

// outcome is the internal per-candidate result: the report row plus (for
// completed candidates) the full output, retained only while it is the
// running best.
type outcome struct {
	rep    Report
	mapped *Mapped
}

// better reports whether a beats b under the total selection order:
// objective score, then depth, then swaps, then candidate index. Both must
// be completed candidates.
func better(a, b *outcome) bool {
	if a.rep.Score != b.rep.Score {
		return a.rep.Score < b.rep.Score
	}
	if a.rep.Depth != b.rep.Depth {
		return a.rep.Depth < b.rep.Depth
	}
	if a.rep.Swaps != b.rep.Swaps {
		return a.rep.Swaps < b.rep.Swaps
	}
	return a.rep.Index < b.rep.Index
}

// Run executes the portfolio search for circuit c on dev. The circuit must
// be lowered (circuit.Decompose) and fit the device; requirements mirror
// core.Remap. At least one candidate must complete, or the first failure is
// returned.
func Run(c *circuit.Circuit, dev *arch.Device, spec Spec) (*Result, error) {
	return RunAssembled(circuit.Assemble(c), dev, spec)
}

// RunAssembled is Run over a pre-built assembly. All candidates share the
// assembly's derived structures (SoA gate layout, DAG, reversed circuit,
// validity verdict), and the initial layouts are computed once per
// distinct (placement, seed) pair and shared across algorithms — a
// sabre-reverse placement is two full SABRE passes, so scoring both
// mappers from it for the price of one halves the grid's dominant cost.
// Output is byte-identical to Run: layouts are read-only to the mappers
// (each clones before mutating) and the selection order is unchanged.
func RunAssembled(a *circuit.Assembly, dev *arch.Device, spec Spec) (*Result, error) {
	spec = spec.normalized()
	if _, err := ParseObjective(string(spec.Objective)); err != nil {
		return nil, err
	}
	for _, a := range spec.Algorithms {
		if _, err := ParseAlgorithm(string(a)); err != nil {
			return nil, err
		}
	}
	if spec.Objective == ObjectiveMaxESP && spec.Snapshot == nil {
		return nil, fmt.Errorf("portfolio: objective max-esp needs a calibration snapshot")
	}
	if spec.Snapshot != nil {
		if err := spec.Snapshot.Validate(dev); err != nil {
			return nil, err
		}
	}
	cands := Enumerate(spec)
	if len(cands) == 0 {
		return nil, fmt.Errorf("portfolio: empty candidate grid")
	}
	if err := interrupt.Classify(spec.Ctx); err != nil {
		return nil, fmt.Errorf("portfolio: %w", err)
	}

	// The shared bound is sound only under min-depth: other objectives can
	// select a deeper schedule, so a depth cut could kill their winner.
	var bound *arch.DepthBound
	if spec.EarlyAbandon && spec.Objective == ObjectiveMinDepth {
		bound = &arch.DepthBound{}
	}

	// Seed-insensitive placements (trivial, dense) yield identical layouts
	// for every seed, so only their first grid point computes; the other
	// seeds' rows are copies. primary[i] is the candidate whose outcome row
	// i shares (itself for real work). Duplicates can never become the
	// winner over their primary — identical stats lose the index tie-break
	// — so they are excluded from best-tracking and determinism holds.
	primary := make([]int, len(cands))
	firstOf := make(map[[2]string]int)
	work := make([]int, 0, len(cands))
	for i, cand := range cands {
		primary[i] = i
		if !cand.Placement.Seeded() {
			key := [2]string{string(cand.Placement), string(cand.Algorithm)}
			if j, ok := firstOf[key]; ok {
				primary[i] = j
				continue
			}
			firstOf[key] = i
		}
		work = append(work, i)
	}

	// Stage 1: compute each distinct (placement, seed) initial layout once.
	// The grid pairs every layout with both algorithms; without sharing,
	// the expensive sabre-reverse placement would run once per algorithm.
	// Seed-insensitive methods collapse further (their work entries above
	// already dedupe per algorithm, but both algorithms' entries still
	// name the same layout). Layouts are read-only downstream — every
	// mapper clones before mutating — so sharing is race-free.
	//
	// Placement runs under the same calibration metric as routing (the
	// sabre-reverse strategy consumes it, the structural ones ignore it),
	// so the grid point (seed 1, sabre-reverse, codar) reproduces the
	// calibrated single-shot pipeline exactly. Placement is SABRE-based,
	// so Sabre.Cost is the natural source, but a caller who only set
	// Codar.Cost still gets consistent calibrated placement.
	pcost := spec.Sabre.Cost
	if pcost == nil {
		pcost = spec.Codar.Cost
	}
	type placed struct {
		layout *arch.Layout
		err    error
	}
	layIdx := make([]int, len(work))
	layKeys := make(map[[2]string]int)
	var layJobs []Candidate
	for k, i := range work {
		cand := cands[i]
		key := [2]string{string(cand.Placement), ""}
		if cand.Placement.Seeded() {
			key[1] = fmt.Sprint(cand.Seed)
		}
		j, ok := layKeys[key]
		if !ok {
			j = len(layJobs)
			layKeys[key] = j
			layJobs = append(layJobs, cand)
		}
		layIdx[k] = j
	}
	popts := sabre.Options{Cost: pcost, Ctx: spec.Ctx}
	layouts := make([]placed, len(layJobs))
	playErr := pool.RunCtx(spec.Ctx, len(layJobs), spec.Workers, func(j int) {
		defer func() {
			if r := recover(); r != nil {
				layouts[j] = placed{err: fmt.Errorf("candidate panicked: %v", r)}
			}
		}()
		l, err := placement.GenerateOptsAssembled(layJobs[j].Placement, a, dev, layJobs[j].Seed, popts)
		layouts[j] = placed{layout: l, err: err}
	})
	if playErr != nil {
		return nil, fmt.Errorf("portfolio: %w", playErr)
	}

	res := &Result{Objective: spec.Objective, Candidates: make([]Report, len(cands)), WinnerIndex: -1}
	var (
		mu   sync.Mutex
		best *outcome
	)
	runErr := pool.RunCtx(spec.Ctx, len(work), spec.Workers, func(k int) {
		i := work[k]
		o := runCandidate(a, dev, spec, cands[i], bound, layouts[layIdx[k]].layout, layouts[layIdx[k]].err)
		mu.Lock()
		defer mu.Unlock()
		res.Candidates[i] = o.rep
		switch {
		case o.rep.Err != "":
		case o.rep.Abandoned:
		default:
			if bound != nil {
				bound.Tighten(o.rep.Depth)
			}
			// Keep only the running best's full output: the selection
			// order is total (index last), so min over any arrival order
			// is the same winner a sequential scan would pick.
			if best == nil || better(o, best) {
				best = o
			} else {
				o.mapped = nil
			}
		}
	})
	// A fired context outranks every per-candidate outcome: some candidates
	// were never dispatched, so any "winner" would depend on timing. All
	// in-flight mappers have aborted and all pool workers exited by now.
	if runErr != nil {
		return nil, fmt.Errorf("portfolio: %w", runErr)
	}
	// Fill the duplicate rows from their primaries and tally outcomes over
	// the full grid, so the report stays rectangular and exhaustive.
	for i := range cands {
		if primary[i] != i {
			rep := res.Candidates[primary[i]]
			rep.Candidate = cands[i]
			res.Candidates[i] = rep
		}
		switch rep := res.Candidates[i]; {
		case rep.Err != "":
		case rep.Abandoned:
			res.Abandoned++
		default:
			res.Completed++
		}
	}
	if best == nil {
		for _, rep := range res.Candidates {
			if rep.Err != "" {
				return nil, fmt.Errorf("portfolio: no candidate completed; first failure (%s/%s seed %d): %s",
					rep.Placement, rep.Algorithm, rep.Seed, rep.Err)
			}
		}
		return nil, fmt.Errorf("portfolio: no candidate completed")
	}
	res.Winner = best.mapped
	res.WinnerIndex = best.rep.Index
	return res, nil
}

// runCandidate executes one grid point: map the shared initial layout with
// the candidate's algorithm under the shared bound, schedule and score.
// Placement happened in the caller's stage-1 pool (initial/layErr); its
// errors surface here so the report rows match the pre-staged pipeline. A
// panic in any stage becomes the candidate's error instead of killing the
// host process with pool workers mid-flight (the experiments.RunBatch
// contract).
func runCandidate(a *circuit.Assembly, dev *arch.Device, spec Spec, cand Candidate, bound *arch.DepthBound, initial *arch.Layout, layErr error) (o *outcome) {
	o = &outcome{rep: Report{Candidate: cand}}
	defer func() {
		if r := recover(); r != nil {
			o.mapped = nil
			o.rep.Abandoned = false
			o.rep.Err = fmt.Sprintf("candidate panicked: %v", r)
		}
	}()
	fail := func(err error) *outcome {
		o.rep.Err = err.Error()
		return o
	}
	if layErr != nil {
		return fail(layErr)
	}
	m := &Mapped{}
	switch cand.Algorithm {
	case AlgoCodar:
		opts := spec.Codar
		opts.DepthBound = bound
		res, err := core.RemapAssembled(a, dev, initial, opts)
		if err == core.ErrDepthBound {
			o.rep.Abandoned = true
			return o
		}
		if err != nil {
			return fail(err)
		}
		m.Circuit = res.Circuit
		m.InitialLayout, m.FinalLayout = res.InitialLayout, res.FinalLayout
		m.SwapCount = res.SwapCount
	case AlgoSabre:
		opts := spec.Sabre
		opts.DepthBound = bound
		res, err := sabre.RemapAssembled(a, dev, initial, opts)
		if err == sabre.ErrDepthBound {
			o.rep.Abandoned = true
			return o
		}
		if err != nil {
			return fail(err)
		}
		m.Circuit = res.Circuit
		m.InitialLayout, m.FinalLayout = res.InitialLayout, res.FinalLayout
		m.SwapCount = res.SwapCount
	default:
		return fail(fmt.Errorf("portfolio: unknown algorithm %q", cand.Algorithm))
	}
	// Both algorithms are scored on the same footing: the ASAP schedule of
	// their output under the device durations (the paper's weighted depth).
	m.Schedule = schedule.ASAP(m.Circuit, dev.Durations)
	m.Depth = m.Schedule.Makespan
	if spec.Snapshot != nil {
		esp, err := spec.Snapshot.Success(m.Schedule, dev)
		if err != nil {
			return fail(err)
		}
		m.ESP = esp
	}
	o.mapped = m
	o.rep.Depth = m.Depth
	o.rep.Swaps = m.SwapCount
	o.rep.ESP = m.ESP
	switch spec.Objective {
	case ObjectiveMinDepth:
		o.rep.Score = float64(m.Depth)
	case ObjectiveMinSwaps:
		o.rep.Score = float64(m.SwapCount)
	case ObjectiveMaxESP:
		o.rep.Score = -m.ESP
	}
	return o
}
