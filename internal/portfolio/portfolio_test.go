package portfolio

import (
	"strings"
	"testing"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/placement"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/verify"
	"codar/internal/workloads"
)

func benchCircuit(t *testing.T, name string) *workloads.Benchmark {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatalf("benchmark %s: %v", name, err)
	}
	return &b
}

// fingerprint captures everything winner-shaped: the selected index and the
// exact output bytes.
func fingerprint(t *testing.T, res *Result) string {
	t.Helper()
	if res.Winner == nil || res.WinnerIndex < 0 {
		t.Fatal("result has no winner")
	}
	var sb strings.Builder
	wr := res.WinnerReport()
	sb.WriteString(string(res.Objective))
	sb.WriteByte('|')
	sb.WriteString(qasm.Write(res.Winner.Circuit))
	sb.WriteByte('|')
	sb.WriteString(strings.Join([]string{
		string(wr.Placement), string(wr.Algorithm),
	}, "/"))
	return sb.String()
}

// TestDeterministicWinnerAcrossWorkers pins the portfolio's determinism
// contract: the same inputs pick the same winner — byte-identical mapped
// output included — across repeated runs with shuffled worker counts, with
// early abandon racing the candidates. Run under -race by the CI race job.
func TestDeterministicWinnerAcrossWorkers(t *testing.T) {
	b := benchCircuit(t, "qft_10")
	dev := arch.IBMQ20Tokyo()
	workerSchedule := []int{4, 1, 8, 2, 16, 3, 5, 2, 7, 4} // 10 runs, shuffled pool sizes
	var want string
	var wantIdx int
	for i, workers := range workerSchedule {
		res, err := Run(b.Circuit(), dev, Spec{Workers: workers, EarlyAbandon: true})
		if err != nil {
			t.Fatalf("run %d (workers=%d): %v", i, workers, err)
		}
		fp := fingerprint(t, res)
		if i == 0 {
			want, wantIdx = fp, res.WinnerIndex
			continue
		}
		if res.WinnerIndex != wantIdx {
			t.Fatalf("run %d (workers=%d): winner index %d, want %d", i, workers, res.WinnerIndex, wantIdx)
		}
		if fp != want {
			t.Fatalf("run %d (workers=%d): winner fingerprint diverged", i, workers)
		}
	}
}

// TestEarlyAbandonNeverChangesWinner is the DepthBound equivalence
// property: cutting losers via the shared bound must select exactly the
// winner a full (no-abandon) run selects, across several benchmarks and
// devices.
func TestEarlyAbandonNeverChangesWinner(t *testing.T) {
	cases := []struct {
		bench string
		dev   *arch.Device
	}{
		{"qft_10", arch.IBMQ20Tokyo()},
		{"rand_10_g300", arch.IBMQ20Tokyo()},
		{"ghz_16", arch.IBMQ16Melbourne()},
		{"adder_6", arch.Enfield6x6()},
		{"qaoa_12_p2", arch.IBMQ20Tokyo()},
	}
	for _, tc := range cases {
		t.Run(tc.bench+"/"+tc.dev.Name, func(t *testing.T) {
			c := benchCircuit(t, tc.bench).Circuit()
			full, err := Run(c, tc.dev, Spec{Workers: 1, EarlyAbandon: false})
			if err != nil {
				t.Fatal(err)
			}
			cut, err := Run(c, tc.dev, Spec{Workers: 4, EarlyAbandon: true})
			if err != nil {
				t.Fatal(err)
			}
			if cut.WinnerIndex != full.WinnerIndex {
				t.Fatalf("early abandon changed the winner: %d (abandoned %d) vs %d",
					cut.WinnerIndex, cut.Abandoned, full.WinnerIndex)
			}
			if got, want := fingerprint(t, cut), fingerprint(t, full); got != want {
				t.Fatal("early abandon changed the winner's output bytes")
			}
			if cut.Winner.Depth != full.Winner.Depth || cut.Winner.SwapCount != full.Winner.SwapCount {
				t.Fatalf("winner stats diverged: depth %d/%d swaps %d/%d",
					cut.Winner.Depth, full.Winner.Depth, cut.Winner.SwapCount, full.Winner.SwapCount)
			}
		})
	}
}

// TestSelectionTotalOrder checks the winner against a sequential scan of
// the full report under the documented order (score, depth, swaps, index).
func TestSelectionTotalOrder(t *testing.T) {
	c := benchCircuit(t, "rand_10_g300").Circuit()
	dev := arch.IBMQ20Tokyo()
	for _, obj := range []Objective{ObjectiveMinDepth, ObjectiveMinSwaps} {
		res, err := Run(c, dev, Spec{Workers: 1, Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		bestIdx := -1
		for i, r := range res.Candidates {
			if r.Err != "" || r.Abandoned {
				continue
			}
			if bestIdx < 0 {
				bestIdx = i
				continue
			}
			b := res.Candidates[bestIdx]
			if r.Score < b.Score ||
				(r.Score == b.Score && (r.Depth < b.Depth ||
					(r.Depth == b.Depth && (r.Swaps < b.Swaps ||
						(r.Swaps == b.Swaps && r.Index < b.Index))))) {
				bestIdx = i
			}
		}
		if res.WinnerIndex != bestIdx {
			t.Errorf("%s: winner %d, sequential scan says %d", obj, res.WinnerIndex, bestIdx)
		}
	}
}

// TestWinnerVerifies runs the full verifier over the selected output.
func TestWinnerVerifies(t *testing.T) {
	c := benchCircuit(t, "qft_10").Circuit()
	dev := arch.IBMQ20Tokyo()
	res, err := Run(c, dev, Spec{EarlyAbandon: true})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Winner
	if err := verify.Full(c, w.Circuit, dev, w.InitialLayout, w.FinalLayout); err != nil {
		t.Fatalf("winner failed verification: %v", err)
	}
	if w.Depth != w.Schedule.Makespan {
		t.Fatalf("winner depth %d != schedule makespan %d", w.Depth, w.Schedule.Makespan)
	}
}

// TestReportShape pins the grid enumeration: rectangular, in seed-major
// order, one report per candidate with matching indices.
func TestReportShape(t *testing.T) {
	spec := Spec{Seeds: []int64{7, 9, 11}}
	cands := Enumerate(spec)
	if want := 3 * 4 * 2; len(cands) != want {
		t.Fatalf("grid size %d, want %d", len(cands), want)
	}
	for i, cand := range cands {
		if cand.Index != i {
			t.Fatalf("candidate %d carries index %d", i, cand.Index)
		}
	}
	if cands[0].Seed != 7 || cands[8].Seed != 9 || cands[16].Seed != 11 {
		t.Fatal("enumeration is not seed-major")
	}
	if cands[0].Algorithm != AlgoCodar || cands[1].Algorithm != AlgoSabre {
		t.Fatal("algorithm is not the innermost axis")
	}

	c := benchCircuit(t, "adder_6").Circuit()
	res, err := Run(c, arch.IBMQ20Tokyo(), Spec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 16 {
		t.Fatalf("report has %d rows, want 16", len(res.Candidates))
	}
	for i, r := range res.Candidates {
		if r.Index != i || r.Placement == "" || r.Algorithm == "" {
			t.Fatalf("report row %d incomplete: %+v", i, r)
		}
	}
	if res.Completed+res.Abandoned != 16 {
		t.Fatalf("completed %d + abandoned %d != 16", res.Completed, res.Abandoned)
	}
}

// TestSeedInsensitiveDuplicatesShareOutcome pins the dedup of
// seed-insensitive placements: the seed-2 trivial/dense rows must mirror
// their seed-1 primaries' stats (they are copies, not recomputations) while
// keeping their own grid identity.
func TestSeedInsensitiveDuplicatesShareOutcome(t *testing.T) {
	c := benchCircuit(t, "adder_6").Circuit()
	res, err := Run(c, arch.IBMQ20Tokyo(), Spec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	byKey := func(seed int64, m placement.Method, a Algorithm) Report {
		for _, r := range res.Candidates {
			if r.Seed == seed && r.Placement == m && r.Algorithm == a {
				return r
			}
		}
		t.Fatalf("grid point s%d/%s/%s missing", seed, m, a)
		return Report{}
	}
	for _, m := range []placement.Method{placement.MethodTrivial, placement.MethodDense} {
		for _, a := range Algorithms() {
			p, d := byKey(1, m, a), byKey(2, m, a)
			if d.Depth != p.Depth || d.Swaps != p.Swaps || d.Abandoned != p.Abandoned || d.Err != p.Err {
				t.Errorf("%s/%s: seed-2 row %+v diverged from seed-1 primary %+v", m, a, d, p)
			}
			if d.Seed != 2 || d.Index == p.Index {
				t.Errorf("%s/%s: duplicate row lost its grid identity: %+v", m, a, d)
			}
		}
	}
}

// TestMaxESP exercises the calibration-scored objective: the winner must
// carry the highest ESP among completed candidates, and the objective must
// refuse to run without a snapshot.
func TestMaxESP(t *testing.T) {
	c := benchCircuit(t, "qft_10").Circuit()
	dev := arch.IBMQ20Tokyo()
	if _, err := Run(c, dev, Spec{Objective: ObjectiveMaxESP}); err == nil {
		t.Fatal("max-esp without a snapshot must fail")
	}
	snap := calib.Synthetic(dev, 1)
	res, err := Run(c, dev, Spec{Objective: ObjectiveMaxESP, Snapshot: snap, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Candidates {
		if r.Err != "" || r.Abandoned {
			continue
		}
		if r.ESP > res.Winner.ESP {
			t.Fatalf("candidate %d has ESP %v > winner's %v", r.Index, r.ESP, res.Winner.ESP)
		}
	}
	if res.Winner.ESP <= 0 {
		t.Fatalf("winner ESP %v, want > 0", res.Winner.ESP)
	}
}

// TestCalibratedPlacementMatchesSingleShot pins that a calibrated
// portfolio's sabre-reverse candidates place under the same weighted metric
// as the calibrated single-shot pipeline: grid point (seed 1,
// sabre-reverse, codar) must reproduce its output byte-for-byte, so the
// max-esp portfolio can never do worse than plain calibrated mapping.
func TestCalibratedPlacementMatchesSingleShot(t *testing.T) {
	c := benchCircuit(t, "qft_10").Circuit()
	dev := arch.IBMQ20Tokyo()
	snap := calib.Synthetic(dev, 1)
	cost, err := snap.CostModel(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := sabre.InitialLayout(c, dev, 1, sabre.Options{Cost: cost})
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.Remap(c, dev, initial, core.Options{Cost: cost})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, dev, Spec{
		Seeds:      []int64{1},
		Placements: []placement.Method{placement.MethodSabreReverse},
		Algorithms: []Algorithm{AlgoCodar},
		Objective:  ObjectiveMaxESP,
		Snapshot:   snap,
		Codar:      core.Options{Cost: cost},
		Sabre:      sabre.Options{Cost: cost},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := qasm.Write(res.Winner.Circuit), qasm.Write(single.Circuit); got != want {
		t.Fatal("calibrated portfolio grid point diverged from the calibrated single-shot pipeline")
	}
}

// TestCandidatePanicBecomesError pins the pool-safety contract: a panic
// inside one candidate (here provoked with a nil device) is recovered into
// that candidate's error report instead of crashing the host process.
func TestCandidatePanicBecomesError(t *testing.T) {
	c := benchCircuit(t, "adder_6").Circuit()
	cand := Candidate{Index: 0, Seed: 1, Placement: placement.MethodTrivial, Algorithm: AlgoCodar}
	initial := arch.NewTrivialLayout(c.NumQubits, c.NumQubits)
	o := runCandidate(circuit.Assemble(c), nil, Spec{}.normalized(), cand, nil, initial, nil)
	if o.rep.Err == "" || !strings.Contains(o.rep.Err, "panicked") {
		t.Fatalf("panicking candidate reported %+v, want a panicked error", o.rep)
	}
	if o.mapped != nil {
		t.Fatal("panicking candidate retained a mapped output")
	}
}

// TestSpecErrors covers the validation paths.
func TestSpecErrors(t *testing.T) {
	c := benchCircuit(t, "adder_6").Circuit()
	dev := arch.IBMQ20Tokyo()
	if _, err := Run(c, dev, Spec{Objective: "fastest"}); err == nil {
		t.Error("unknown objective accepted")
	}
	if _, err := Run(c, dev, Spec{Algorithms: []Algorithm{"astar"}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := ParseObjective("min-depth"); err != nil {
		t.Error(err)
	}
	if _, err := ParseAlgorithm("tabu"); err == nil {
		t.Error("unknown algorithm parsed")
	}
	// A placement that rejects the circuit on every candidate surfaces the
	// first failure: a 6-qubit device cannot host the 10-qubit circuit.
	small, err := arch.ByName("linear6")
	if err != nil {
		t.Fatal(err)
	}
	wide := benchCircuit(t, "qft_10").Circuit()
	if _, err := Run(wide, small, Spec{}); err == nil {
		t.Error("oversized circuit accepted")
	}
}

// TestMinSwapsIgnoresEarlyAbandon pins that the depth bound is inert under
// objectives it could corrupt: min-swaps may legitimately select a deeper
// schedule, so EarlyAbandon must not cut anything.
func TestMinSwapsIgnoresEarlyAbandon(t *testing.T) {
	c := benchCircuit(t, "rand_10_g300").Circuit()
	dev := arch.IBMQ20Tokyo()
	res, err := Run(c, dev, Spec{Objective: ObjectiveMinSwaps, EarlyAbandon: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned != 0 {
		t.Fatalf("min-swaps abandoned %d candidates; the bound must be inert", res.Abandoned)
	}
}
