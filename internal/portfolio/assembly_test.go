package portfolio

import (
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
)

// TestRunAssembledMatchesRun pins the shared-placement batch contract: Run
// (which assembles internally) and RunAssembled over an externally shared
// Assembly — with its stage-one layout precompute feeding every candidate —
// select the same winner with byte-identical output and identical
// per-candidate reports.
func TestRunAssembledMatchesRun(t *testing.T) {
	cases := []struct {
		bench string
		dev   *arch.Device
	}{
		{"qft_10", arch.IBMQ20Tokyo()},
		{"ghz_16", arch.IBMQ16Melbourne()},
		{"adder_6", arch.Enfield6x6()},
	}
	for _, tc := range cases {
		t.Run(tc.bench+"/"+tc.dev.Name, func(t *testing.T) {
			c := benchCircuit(t, tc.bench).Circuit()
			// No early abandon: which losers get cut is the one
			// timing-dependent report field (DESIGN.md §9), and this test
			// wants the full per-candidate report byte-comparable.
			spec := Spec{Workers: 4}
			plain, err := Run(c, tc.dev, spec)
			if err != nil {
				t.Fatal(err)
			}
			asm := circuit.Assemble(c)
			for i := 0; i < 2; i++ { // reuse the same assembly twice
				shared, err := RunAssembled(asm, tc.dev, spec)
				if err != nil {
					t.Fatal(err)
				}
				if shared.WinnerIndex != plain.WinnerIndex {
					t.Fatalf("reuse %d: winner index %d, want %d", i, shared.WinnerIndex, plain.WinnerIndex)
				}
				if got, want := fingerprint(t, shared), fingerprint(t, plain); got != want {
					t.Fatalf("reuse %d: winner output bytes diverged", i)
				}
				pr, sr := plain.Candidates, shared.Candidates
				if len(pr) != len(sr) {
					t.Fatalf("reuse %d: report count %d != %d", i, len(sr), len(pr))
				}
				for k := range pr {
					if pr[k].Depth != sr[k].Depth || pr[k].Swaps != sr[k].Swaps ||
						pr[k].Abandoned != sr[k].Abandoned || pr[k].Err != sr[k].Err {
						t.Fatalf("reuse %d: report %d diverged: %+v vs %+v", i, k, sr[k], pr[k])
					}
				}
			}
			// With early abandon racing, the winner (index and bytes) must
			// still match the no-abandon shared run.
			cut, err := RunAssembled(asm, tc.dev, Spec{Workers: 4, EarlyAbandon: true})
			if err != nil {
				t.Fatal(err)
			}
			if cut.WinnerIndex != plain.WinnerIndex {
				t.Fatalf("early abandon: winner index %d, want %d", cut.WinnerIndex, plain.WinnerIndex)
			}
			if got, want := fingerprint(t, cut), fingerprint(t, plain); got != want {
				t.Fatal("early abandon: winner output bytes diverged")
			}
		})
	}
}
