// Package router is codard's stateless front tier: an http.Handler that
// consistent-hash-routes mapping traffic across N backend codards so the
// sharded result store scales horizontally — every spelling of one circuit
// lands on the same backend, whose cache and singleflight then do their
// work exactly as in the single-node deployment.
//
// Routing is rendezvous (highest-random-weight) hashing on the circuit
// hash: each backend scores sha256(backendURL ‖ key) and the highest
// healthy scorer wins. Unlike mod-N, removing a backend only remaps the
// keys it owned (its keys fall to their second-choice backend), and
// readmitting it restores the original assignment — no ring state, no
// rebalancing step, nothing persisted.
//
// Backends are health-checked (GET /healthz every HealthInterval);
// EjectAfter consecutive failures — probe or proxy — eject a backend from
// the candidate set, ReadmitAfter consecutive probe successes restore it.
// A request whose first-choice backend fails at the transport level is
// retried on the next-ranked healthy backend (bodies are buffered for
// exactly this reason); only when no healthy backend remains does the
// router answer 503 backend_unavailable.
//
// Async jobs stay sticky without router state: job IDs returned by a
// backend are rewritten to <tag>-<id>, where tag is derived from the
// backend's URL, and every later /v1/jobs/{id} call routes by the tag —
// the job's home is encoded in the handle the client already holds.
package router

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"codar/api"
	"codar/internal/metrics"
)

// Config tunes a Router. Backends is required; zero values elsewhere
// select the defaults.
type Config struct {
	// Backends are the base URLs of the backend codards
	// ("http://127.0.0.1:8081", ...). At least one is required.
	Backends []string
	// HealthInterval is the /healthz probe cadence. 0 selects 2s.
	HealthInterval time.Duration
	// EjectAfter is the consecutive-failure count (probes and proxied
	// requests combined) that ejects a backend. 0 selects 3.
	EjectAfter int
	// ReadmitAfter is the consecutive probe-success count that readmits an
	// ejected backend. 0 selects 2.
	ReadmitAfter int
	// MaxBodyBytes caps buffered request bodies. 0 selects 16 MiB.
	MaxBodyBytes int64
	// Client issues backend requests. nil selects a client with a 15-minute
	// timeout (portfolio mappings are long; per-request contexts still
	// cancel earlier).
	Client *http.Client
	// ErrorLog receives eject/readmit transitions. nil selects the default.
	ErrorLog *log.Logger
}

// Defaults for Config.
const (
	DefaultHealthInterval = 2 * time.Second
	DefaultEjectAfter     = 3
	DefaultReadmitAfter   = 2
	DefaultMaxBodyBytes   = 16 << 20
)

// backend is one routed-to codard.
type backend struct {
	url string
	// tag is the job-ID prefix binding async jobs to this backend: the
	// first 8 hex chars of sha256(url).
	tag string

	healthy   atomic.Bool
	fails     atomic.Int64 // consecutive failures
	oks       atomic.Int64 // consecutive probe successes while ejected
	requests  atomic.Uint64
	errors    atomic.Uint64
	ejections atomic.Uint64
}

// Router is the front-tier handler. Construct with New; Close stops the
// health prober.
type Router struct {
	cfg      Config
	backends []*backend
	byTag    map[string]*backend
	client   *http.Client
	logger   *log.Logger
	start    time.Time

	requests    atomic.Uint64
	errors      atomic.Uint64
	retries     atomic.Uint64
	unrouteable atomic.Uint64

	mux      *http.ServeMux
	stop     chan struct{}
	stopOnce sync.Once
	probes   sync.WaitGroup
}

// New builds a Router over cfg.Backends and starts the health prober.
// Backends start healthy (optimistic): the fleet usually boots together,
// and the first probe round corrects any that aren't.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultEjectAfter
	}
	if cfg.ReadmitAfter <= 0 {
		cfg.ReadmitAfter = DefaultReadmitAfter
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Minute}
	}
	logger := cfg.ErrorLog
	if logger == nil {
		logger = log.Default()
	}
	rt := &Router{
		cfg:    cfg,
		byTag:  make(map[string]*backend),
		client: client,
		logger: logger,
		start:  time.Now(),
		mux:    http.NewServeMux(),
		stop:   make(chan struct{}),
	}
	for _, raw := range cfg.Backends {
		u := strings.TrimSuffix(raw, "/")
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("router: backend %q: want an http(s) URL", raw)
		}
		sum := sha256.Sum256([]byte(u))
		b := &backend{url: u, tag: hex.EncodeToString(sum[:4])}
		b.healthy.Store(true)
		if dup, ok := rt.byTag[b.tag]; ok {
			return nil, fmt.Errorf("router: backends %q and %q collide", dup.url, u)
		}
		rt.byTag[b.tag] = b
		rt.backends = append(rt.backends, b)
	}
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/v1/stats", rt.handleStats)
	rt.mux.HandleFunc("/v1/map", rt.handleMap)
	rt.mux.HandleFunc("/v1/map/batch", rt.handleBatch)
	rt.mux.HandleFunc("/v1/jobs", rt.handleJobs)
	rt.mux.HandleFunc("/v1/jobs/", rt.handleJobByID)
	rt.mux.HandleFunc("/v1/devices", rt.handleDevices)
	rt.mux.HandleFunc("/v1/devices/", rt.handleDevices)
	rt.probes.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the health prober. Safe to call twice.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.probes.Wait()
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	rt.mux.ServeHTTP(w, r)
}

// probeLoop drives the health checks until Close.
func (rt *Router) probeLoop() {
	defer rt.probes.Done()
	tick := time.NewTicker(rt.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			rt.probeOnce()
		}
	}
}

// probeOnce probes every backend's /healthz once.
func (rt *Router) probeOnce() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthInterval)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
			if err != nil {
				rt.vote(b, false)
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.vote(b, false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rt.vote(b, resp.StatusCode == http.StatusOK)
		}(b)
	}
	wg.Wait()
}

// vote records one health observation — a probe result or a proxied
// request's transport outcome — and flips the backend's state at the
// configured thresholds.
func (rt *Router) vote(b *backend, ok bool) {
	if ok {
		b.fails.Store(0)
		if !b.healthy.Load() {
			if b.oks.Add(1) >= int64(rt.cfg.ReadmitAfter) {
				b.oks.Store(0)
				b.healthy.Store(true)
				rt.logger.Printf("router: backend %s readmitted", b.url)
			}
		}
		return
	}
	b.oks.Store(0)
	if b.fails.Add(1) >= int64(rt.cfg.EjectAfter) && b.healthy.Load() {
		b.healthy.Store(false)
		b.ejections.Add(1)
		rt.logger.Printf("router: backend %s ejected after %d consecutive failures", b.url, rt.cfg.EjectAfter)
	}
}

// score is the rendezvous weight of backend b for key.
func score(b *backend, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(b.url))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// rank returns every backend ordered by descending rendezvous score for
// key — element 0 is the owner, the rest are the failover order.
func (rt *Router) rank(key string) []*backend {
	ranked := make([]*backend, len(rt.backends))
	copy(ranked, rt.backends)
	sort.SliceStable(ranked, func(i, j int) bool {
		return score(ranked[i], key) > score(ranked[j], key)
	})
	return ranked
}

// healthyCount reports how many backends are currently in the candidate set.
func (rt *Router) healthyCount() int {
	n := 0
	for _, b := range rt.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// writeError emits the router's own error envelope.
func (rt *Router) writeError(w http.ResponseWriter, status int, code, msg string) {
	rt.errors.Add(1)
	if status == http.StatusServiceUnavailable {
		w.Header().Set(api.HeaderRetryAfter, "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(api.ErrorEnvelope{Error: api.ErrorBody{Code: code, Message: msg}})
	w.Write(append(body, '\n'))
}

// forward sends one buffered request to backend b and returns the
// response with its body read. Transport failures (no HTTP response)
// return an error and count a health vote against b; any HTTP response —
// including 5xx — is the backend's answer and is returned as-is.
func (rt *Router) forward(ctx context.Context, b *backend, method, path string, hdr http.Header, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, rd)
	if err != nil {
		return nil, nil, err
	}
	for _, h := range []string{"Content-Type", api.HeaderTimeout, api.HeaderClient, "Accept"} {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	b.requests.Add(1)
	resp, err := rt.client.Do(req)
	if err != nil {
		b.errors.Add(1)
		rt.vote(b, false)
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		b.errors.Add(1)
		rt.vote(b, false)
		return nil, nil, err
	}
	rt.vote(b, true)
	return resp, out, nil
}

// proxyRanked forwards the request along key's rendezvous order, retrying
// transport failures on the next healthy backend. It returns the first
// HTTP response obtained plus the backend that produced it.
func (rt *Router) proxyRanked(ctx context.Context, key, method, path string, hdr http.Header, body []byte) (*http.Response, []byte, *backend, error) {
	tried := 0
	for _, b := range rt.rank(key) {
		if !b.healthy.Load() {
			continue
		}
		if tried > 0 {
			rt.retries.Add(1)
		}
		tried++
		resp, out, err := rt.forward(ctx, b, method, path, hdr, body)
		if err == nil {
			return resp, out, b, nil
		}
		if ctx.Err() != nil {
			return nil, nil, nil, ctx.Err()
		}
	}
	rt.unrouteable.Add(1)
	return nil, nil, nil, fmt.Errorf("no healthy backend (%d configured)", len(rt.backends))
}

// relay copies a backend response (status, salient headers, body) to the
// client.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	for _, h := range []string{"Content-Type", api.HeaderCache, api.HeaderRequestID, api.HeaderRetryAfter, "Allow", "Location"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// readBody buffers the request body up to the configured cap.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "reading request body: "+err.Error())
		return nil, false
	}
	if int64(len(body)) > rt.cfg.MaxBodyBytes {
		rt.writeError(w, http.StatusRequestEntityTooLarge, api.CodePayloadTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", rt.cfg.MaxBodyBytes))
		return nil, false
	}
	return body, true
}

// circuitKey extracts the routing key of a map-shaped request body: the
// QASM text. Requests that don't parse still route (deterministically, by
// raw body) so the owning backend produces the error envelope.
func circuitKey(body []byte) string {
	var req struct {
		QASM string `json:"qasm"`
	}
	if err := json.Unmarshal(body, &req); err == nil && req.QASM != "" {
		return req.QASM
	}
	return string(body)
}

// handleMap proxies POST /v1/map by circuit hash.
func (rt *Router) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "/v1/map only accepts POST")
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	resp, out, _, err := rt.proxyRanked(r.Context(), circuitKey(body), r.Method, "/v1/map", r.Header, body)
	if err != nil {
		rt.writeError(w, http.StatusServiceUnavailable, api.CodeBackendUnavailable, err.Error())
		return
	}
	relay(w, resp, out)
}

// handleJobs proxies POST /v1/jobs by circuit hash and rewrites the
// returned job handle to carry the owning backend's tag.
func (rt *Router) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "/v1/jobs only accepts POST")
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	resp, out, b, err := rt.proxyRanked(r.Context(), circuitKey(body), r.Method, "/v1/jobs", r.Header, body)
	if err != nil {
		rt.writeError(w, http.StatusServiceUnavailable, api.CodeBackendUnavailable, err.Error())
		return
	}
	if resp.StatusCode == http.StatusAccepted {
		if rewritten, loc, ok := tagJobStatus(out, b.tag); ok {
			out = rewritten
			if loc != "" {
				resp.Header.Set("Location", loc)
			}
		}
	}
	relay(w, resp, out)
}

// tagJobStatus rewrites a JobStatus body's job ID (and derived URLs) to
// the tagged form. Reports ok=false when the body isn't a JobStatus.
func tagJobStatus(body []byte, tag string) (out []byte, location string, ok bool) {
	var st api.JobStatus
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		return body, "", false
	}
	st.ID = tag + "-" + st.ID
	if st.ResultURL != "" {
		st.ResultURL = "/v1/jobs/" + st.ID + "/result"
	}
	enc, err := json.Marshal(st)
	if err != nil {
		return body, "", false
	}
	return append(enc, '\n'), "/v1/jobs/" + st.ID, true
}

// handleJobByID proxies /v1/jobs/{tag-id}[/result|/events] to the backend
// the tag names. The tag is the router's only routing input — no job table,
// so a router restart (or a second router) resolves the same handles.
func (rt *Router) handleJobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	parts := strings.SplitN(rest, "/", 2)
	tag, id, found := strings.Cut(parts[0], "-")
	b := rt.byTag[tag]
	if !found || b == nil || id == "" {
		rt.writeError(w, http.StatusNotFound, api.CodeJobNotFound, "no such job (unroutable job id)")
		return
	}
	sub := ""
	if len(parts) == 2 {
		sub = "/" + parts[1]
	}
	path := "/v1/jobs/" + id + sub
	if sub == "/events" {
		rt.streamJobEvents(w, r, b, path, tag)
		return
	}
	// Job affinity is absolute: a dead owner means the job is unreachable
	// (and gone — its store died with it), so this path never fails over.
	resp, out, err := rt.forward(r.Context(), b, r.Method, path, r.Header, nil)
	if err != nil {
		rt.writeError(w, http.StatusServiceUnavailable, api.CodeBackendUnavailable,
			fmt.Sprintf("job's backend %s unreachable: %v", b.url, err))
		return
	}
	if strings.Contains(resp.Header.Get("Content-Type"), "application/json") && sub == "" {
		if rewritten, loc, ok := tagJobStatus(out, tag); ok {
			out = rewritten
			if resp.Header.Get("Location") != "" && loc != "" {
				resp.Header.Set("Location", loc)
			}
		}
	}
	relay(w, resp, out)
}

// streamJobEvents proxies the SSE status stream, rewriting each event's
// job handle to the tagged form as it passes through.
func (rt *Router) streamJobEvents(w http.ResponseWriter, r *http.Request, b *backend, path, tag string) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.url+path, nil)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	b.requests.Add(1)
	resp, err := rt.client.Do(req)
	if err != nil {
		b.errors.Add(1)
		rt.vote(b, false)
		rt.writeError(w, http.StatusServiceUnavailable, api.CodeBackendUnavailable,
			fmt.Sprintf("job's backend %s unreachable: %v", b.url, err))
		return
	}
	defer resp.Body.Close()
	rt.vote(b, true)
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes))
		relay(w, resp, out)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			if rewritten, _, ok := tagJobStatus([]byte(strings.TrimPrefix(line, "data: ")), tag); ok {
				line = "data: " + strings.TrimSuffix(string(rewritten), "\n")
			}
		}
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return
		}
		if line == "" && canFlush {
			flusher.Flush()
		}
	}
}

// handleBatch splits POST /v1/map/batch per owning backend, forwards the
// sub-batches concurrently and reassembles the items in request order.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "/v1/map/batch only accepts POST")
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req api.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Requests) == 0 {
		rt.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "empty batch")
		return
	}
	// Group item indices by owning backend. Unrouteable only when no
	// healthy backend exists at grouping time.
	groups := make(map[*backend][]int)
	for i := range req.Requests {
		ranked := rt.rank(req.Requests[i].QASM)
		var owner *backend
		for _, b := range ranked {
			if b.healthy.Load() {
				owner = b
				break
			}
		}
		if owner == nil {
			rt.unrouteable.Add(1)
			rt.writeError(w, http.StatusServiceUnavailable, api.CodeBackendUnavailable, "no healthy backend")
			return
		}
		groups[owner] = append(groups[owner], i)
	}
	items := make([]api.BatchItem, len(req.Requests))
	var wg sync.WaitGroup
	for b, idx := range groups {
		wg.Add(1)
		go func(b *backend, idx []int) {
			defer wg.Done()
			sub := api.BatchRequest{Requests: make([]api.MapRequest, len(idx))}
			for k, i := range idx {
				sub.Requests[k] = req.Requests[i]
			}
			enc, err := json.Marshal(sub)
			if err != nil {
				fillBatchError(items, idx, http.StatusInternalServerError, api.CodeInternal, err.Error())
				return
			}
			resp, out, err := rt.forward(r.Context(), b, http.MethodPost, "/v1/map/batch", r.Header, enc)
			if err != nil {
				fillBatchError(items, idx, http.StatusServiceUnavailable, api.CodeBackendUnavailable,
					fmt.Sprintf("backend %s unreachable: %v", b.url, err))
				return
			}
			var subResp api.BatchResponse
			if resp.StatusCode != http.StatusOK || json.Unmarshal(out, &subResp) != nil || len(subResp.Items) != len(idx) {
				fillBatchError(items, idx, http.StatusBadGateway, api.CodeInternal,
					fmt.Sprintf("backend %s answered %d to sub-batch", b.url, resp.StatusCode))
				return
			}
			for k, i := range idx {
				items[i] = subResp.Items[k]
			}
		}(b, idx)
	}
	wg.Wait()
	out, err := json.Marshal(api.BatchResponse{Items: items})
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, api.CodeInternal, "encoding failure")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(out, '\n'))
}

// fillBatchError marks a sub-batch's items failed with one shared envelope.
func fillBatchError(items []api.BatchItem, idx []int, status int, code, msg string) {
	for _, i := range idx {
		items[i] = api.BatchItem{
			Error:  &api.ErrorBody{Code: code, Message: msg},
			Status: status,
		}
	}
}

// handleDevices proxies the device routes: reads go to the first healthy
// backend; writes (device uploads, calibration uploads) fan out to every
// healthy backend so the fleet stays consistent — backends are stateless
// replicas of the registry, and a routed request must find its device
// wherever it lands.
func (rt *Router) handleDevices(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if r.Method == http.MethodGet {
		resp, out, _, err := rt.proxyRanked(r.Context(), path, r.Method, path, r.Header, nil)
		if err != nil {
			rt.writeError(w, http.StatusServiceUnavailable, api.CodeBackendUnavailable, err.Error())
			return
		}
		relay(w, resp, out)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var (
		firstResp *http.Response
		firstBody []byte
	)
	anyHealthy := false
	for _, b := range rt.backends {
		if !b.healthy.Load() {
			continue
		}
		anyHealthy = true
		resp, out, err := rt.forward(r.Context(), b, r.Method, path, r.Header, body)
		if err != nil {
			continue
		}
		if firstResp == nil {
			firstResp, firstBody = resp, out
		}
	}
	if !anyHealthy || firstResp == nil {
		rt.unrouteable.Add(1)
		rt.writeError(w, http.StatusServiceUnavailable, api.CodeBackendUnavailable, "no healthy backend")
		return
	}
	relay(w, firstResp, firstBody)
}

// handleHealthz reports ok while at least one backend is in the candidate
// set — a router with zero healthy backends is down, whatever its process
// state.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.healthyCount() == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, api.CodeBackendUnavailable, "no healthy backend")
		return
	}
	body, _ := json.Marshal(api.HealthResponse{Status: "ok", UptimeSeconds: time.Since(rt.start).Seconds()})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(body, '\n'))
}

// Stats snapshots the router's counters.
func (rt *Router) Stats() api.RouterStatsResponse {
	resp := api.RouterStatsResponse{
		Router:        true,
		Requests:      rt.requests.Load(),
		Errors:        rt.errors.Load(),
		Retries:       rt.retries.Load(),
		Unrouteable:   rt.unrouteable.Load(),
		UptimeSeconds: time.Since(rt.start).Seconds(),
	}
	for _, b := range rt.backends {
		resp.Backends = append(resp.Backends, api.BackendStats{
			URL:       b.url,
			Healthy:   b.healthy.Load(),
			Requests:  b.requests.Load(),
			Errors:    b.errors.Load(),
			Ejections: b.ejections.Load(),
		})
	}
	return resp
}

// handleStats implements GET /v1/stats with the router's own counter
// shape (per-backend rows instead of cache internals).
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "/v1/stats only accepts GET")
		return
	}
	body, err := json.Marshal(rt.Stats())
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, api.CodeInternal, "encoding failure")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(body, '\n'))
}

// handleMetrics implements GET /metrics for the front tier: router-level
// counters plus one labelled row per backend.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "/metrics only accepts GET")
		return
	}
	st := rt.Stats()
	p := metrics.NewPromWriter()
	p.Counter("codard_router_requests_total", "Requests received by the front tier.", st.Requests)
	p.Counter("codard_router_errors_total", "Requests the router answered with its own error envelope.", st.Errors)
	p.Counter("codard_router_retries_total", "Transport-failure retries onto the next-ranked backend.", st.Retries)
	p.Counter("codard_router_unrouteable_total", "Requests dropped with no healthy backend.", st.Unrouteable)
	p.Gauge("codard_router_backends", "Configured backends.", float64(len(st.Backends)))
	p.Gauge("codard_router_backends_healthy", "Backends currently in the candidate set.", float64(rt.healthyCount()))
	p.Declare("codard_router_backend_requests_total", "counter", "Proxied requests per backend.")
	p.Declare("codard_router_backend_errors_total", "counter", "Transport failures per backend.")
	p.Declare("codard_router_backend_ejections_total", "counter", "Health ejections per backend.")
	p.Declare("codard_router_backend_healthy", "gauge", "1 while the backend is in the candidate set.")
	for _, b := range st.Backends {
		labels := map[string]string{"backend": b.URL}
		p.Labeled("codard_router_backend_requests_total", labels, float64(b.Requests))
		p.Labeled("codard_router_backend_errors_total", labels, float64(b.Errors))
		p.Labeled("codard_router_backend_ejections_total", labels, float64(b.Ejections))
		healthy := 0.0
		if b.Healthy {
			healthy = 1
		}
		p.Labeled("codard_router_backend_healthy", labels, healthy)
	}
	p.Gauge("codard_router_uptime_seconds", "Seconds since the router started.", st.UptimeSeconds)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.WriteTo(w)
}
