package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"codar/api"
	"codar/internal/service"
	"codar/internal/testutil"
)

const ghzQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cx q[0],q[1];
cx q[0],q[2];
cx q[0],q[3];
cx q[0],q[4];
t q[2];
cx q[3],q[1];
`

// newFleet boots n live backend codards plus a router over them. The
// returned cleanup is registered automatically.
func newFleet(t *testing.T, n int, cfg Config) (*Router, []*httptest.Server) {
	t.Helper()
	backends := make([]*httptest.Server, n)
	for i := range backends {
		backends[i] = httptest.NewServer(service.New(service.Config{Workers: 2}))
		t.Cleanup(backends[i].Close)
		cfg.Backends = append(cfg.Backends, backends[i].URL)
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 20 * time.Millisecond
	}
	if cfg.ErrorLog == nil {
		cfg.ErrorLog = log.New(io.Discard, "", 0)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt, backends
}

func postJSON(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(enc))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestRendezvousStableAndSpread(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt, _ := newFleet(t, 3, Config{})
	owners := make(map[string]string)
	spread := make(map[string]int)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("circuit-%d", i)
		ranked := rt.rank(key)
		owners[key] = ranked[0].url
		spread[ranked[0].url]++
		// Ranking must be deterministic.
		if again := rt.rank(key); again[0].url != ranked[0].url {
			t.Fatalf("key %q owner flapped: %s then %s", key, ranked[0].url, again[0].url)
		}
	}
	if len(spread) != 3 {
		t.Fatalf("64 keys landed on %d of 3 backends: %v", len(spread), spread)
	}
	// Ejecting one backend must not move keys it didn't own.
	ejected := rt.backends[0]
	ejected.healthy.Store(false)
	for key, owner := range owners {
		ranked := rt.rank(key)
		var newOwner *backend
		for _, b := range ranked {
			if b.healthy.Load() {
				newOwner = b
				break
			}
		}
		if owner != ejected.url && newOwner.url != owner {
			t.Fatalf("key %q moved from surviving backend %s to %s", key, owner, newOwner.url)
		}
	}
}

func TestRouterProxiesMapAndCaches(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt, _ := newFleet(t, 2, Config{})
	req := api.MapRequest{QASM: ghzQASM, Arch: "tokyo"}

	w1 := postJSON(t, rt, "/v1/map", req)
	if w1.Code != http.StatusOK {
		t.Fatalf("first map: %d %s", w1.Code, w1.Body.String())
	}
	if disp := w1.Header().Get(api.HeaderCache); disp != "miss" {
		t.Fatalf("first map disposition %q, want miss", disp)
	}
	// Same circuit → same backend → cache hit with byte-identical body.
	w2 := postJSON(t, rt, "/v1/map", req)
	if w2.Code != http.StatusOK {
		t.Fatalf("second map: %d", w2.Code)
	}
	if disp := w2.Header().Get(api.HeaderCache); disp != "hit" {
		t.Fatalf("second map disposition %q, want hit (consistent routing)", disp)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cached body differs from computed body through the router")
	}
	// Error envelopes pass through untouched.
	we := postJSON(t, rt, "/v1/map", api.MapRequest{QASM: ghzQASM, Arch: "no-such-device"})
	if we.Code != http.StatusNotFound {
		t.Fatalf("unknown device through router: %d", we.Code)
	}
	var env api.ErrorEnvelope
	json.Unmarshal(we.Body.Bytes(), &env)
	if env.Error.Code != api.CodeUnknownDevice {
		t.Fatalf("proxied error code %q", env.Error.Code)
	}
}

func TestRouterJobAffinity(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt, _ := newFleet(t, 3, Config{})
	w := postJSON(t, rt, "/v1/jobs", api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	var st api.JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	tag, _, found := strings.Cut(st.ID, "-")
	if !found || rt.byTag[tag] == nil {
		t.Fatalf("job ID %q carries no backend tag", st.ID)
	}
	if loc := w.Header().Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location %q, want tagged /v1/jobs/%s", loc, st.ID)
	}

	// Poll through the router until done; the tagged handle must resolve.
	deadline := time.Now().Add(10 * time.Second)
	for {
		wst := get(t, rt, "/v1/jobs/"+st.ID)
		if wst.Code != http.StatusOK {
			t.Fatalf("status: %d %s", wst.Code, wst.Body.String())
		}
		json.Unmarshal(wst.Body.Bytes(), &st)
		if st.State == api.JobDone {
			break
		}
		if st.State == api.JobFailed || time.Now().After(deadline) {
			t.Fatalf("job state %s (error %+v)", st.State, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.ResultURL != "/v1/jobs/"+st.ID+"/result" {
		t.Fatalf("result_url %q not re-tagged", st.ResultURL)
	}
	wr := get(t, rt, st.ResultURL)
	if wr.Code != http.StatusOK {
		t.Fatalf("result: %d %s", wr.Code, wr.Body.String())
	}
	var resp api.MapResponse
	if err := json.Unmarshal(wr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if resp.MappedQASM == "" {
		t.Fatal("empty mapped qasm through router")
	}
	// Untagged and unknown-tag IDs answer 404 job_not_found.
	for _, id := range []string{"deadbeefdeadbeef", "00000000-deadbeefdeadbeef"} {
		wna := get(t, rt, "/v1/jobs/"+id)
		if wna.Code != http.StatusNotFound {
			t.Fatalf("job %q: %d, want 404", id, wna.Code)
		}
	}
}

func TestRouterJobEventsStream(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt, _ := newFleet(t, 2, Config{})
	front := httptest.NewServer(rt)
	defer front.Close()

	w := postJSON(t, rt, "/v1/jobs", api.MapRequest{QASM: ghzQASM, Arch: "melbourne"})
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	var st api.JobStatus
	json.Unmarshal(w.Body.Bytes(), &st)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, front.URL+"/v1/jobs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	var last api.JobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("decode event %q: %v", line, err)
		}
		if last.ID != st.ID {
			t.Fatalf("event job ID %q not re-tagged (want %q)", last.ID, st.ID)
		}
	}
	if last.State != api.JobDone {
		t.Fatalf("final streamed state %s, want done", last.State)
	}
}

func TestRouterBatchSplitsAndReassembles(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt, _ := newFleet(t, 3, Config{})
	var reqs []api.MapRequest
	archs := []string{"tokyo", "melbourne", "q5"}
	for i := 0; i < 9; i++ {
		// Vary the circuit so items spread across backends.
		qasm := strings.Replace(ghzQASM, "t q[2];", fmt.Sprintf("t q[%d];", i%5), 1)
		reqs = append(reqs, api.MapRequest{QASM: qasm, Arch: archs[i%3]})
	}
	w := postJSON(t, rt, "/v1/map/batch", api.BatchRequest{Requests: reqs})
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	var resp api.BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Items) != len(reqs) {
		t.Fatalf("batch returned %d items for %d requests", len(resp.Items), len(reqs))
	}
	for i, item := range resp.Items {
		if item.Error != nil {
			t.Fatalf("item %d failed: %+v", i, item.Error)
		}
		var mr api.MapResponse
		if err := json.Unmarshal(item.Result, &mr); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if mr.Device == "" {
			t.Fatalf("item %d empty device", i)
		}
	}
	// Items must return in request order: device of item i matches arch i
	// (modulo alias resolution, tokyo resolves to ibm-q20-tokyo).
	var first api.MapResponse
	json.Unmarshal(resp.Items[1].Result, &first)
	if !strings.Contains(first.Device, "melbourne") {
		t.Fatalf("item 1 mapped on %q, want melbourne (order broken)", first.Device)
	}
}

func TestRouterEjectsAndReadmits(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt, backends := newFleet(t, 2, Config{HealthInterval: 10 * time.Millisecond, EjectAfter: 2, ReadmitAfter: 2})

	waitHealthy := func(want int) {
		deadline := time.Now().Add(5 * time.Second)
		for rt.healthyCount() != want && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := rt.healthyCount(); got != want {
			t.Fatalf("healthy backends %d, want %d", got, want)
		}
	}
	waitHealthy(2)

	// Kill backend 0 mid-fleet: the prober must eject it.
	dead := backends[0]
	deadURL := dead.URL
	dead.CloseClientConnections()
	dead.Close()
	waitHealthy(1)

	// All traffic — including keys the dead backend owned — now lands on
	// the survivor.
	for i := 0; i < 6; i++ {
		qasm := strings.Replace(ghzQASM, "t q[2];", fmt.Sprintf("t q[%d];", i%5), 1)
		w := postJSON(t, rt, "/v1/map", api.MapRequest{QASM: qasm, Arch: "tokyo"})
		if w.Code != http.StatusOK {
			t.Fatalf("map after ejection: %d %s", w.Code, w.Body.String())
		}
	}
	st := rt.Stats()
	var ejected *api.BackendStats
	for i := range st.Backends {
		if st.Backends[i].URL == deadURL {
			ejected = &st.Backends[i]
		}
	}
	if ejected == nil || ejected.Healthy || ejected.Ejections == 0 {
		t.Fatalf("dead backend stats %+v, want unhealthy with ejections", ejected)
	}
	// /healthz stays ok while one backend survives.
	if w := get(t, rt, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("router healthz with 1 survivor: %d", w.Code)
	}
}

func TestRouterNoBackendsIs503(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt, backends := newFleet(t, 1, Config{HealthInterval: 10 * time.Millisecond, EjectAfter: 1})
	backends[0].CloseClientConnections()
	backends[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for rt.healthyCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	w := postJSON(t, rt, "/v1/map", api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("map with no backends: %d", w.Code)
	}
	var env api.ErrorEnvelope
	json.Unmarshal(w.Body.Bytes(), &env)
	if env.Error.Code != api.CodeBackendUnavailable {
		t.Fatalf("code %q, want backend_unavailable", env.Error.Code)
	}
	if w.Header().Get(api.HeaderRetryAfter) == "" {
		t.Fatal("503 without Retry-After")
	}
	if wh := get(t, rt, "/healthz"); wh.Code != http.StatusServiceUnavailable {
		t.Fatalf("router healthz with no backends: %d", wh.Code)
	}
}

func TestRouterDeviceWritesFanOut(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt, backends := newFleet(t, 2, Config{})
	spec := api.DeviceSpec{Name: "fleetdev", Qubits: 3, Edges: [][2]int{{0, 1}, {1, 2}}}
	w := postJSON(t, rt, "/v1/devices", spec)
	if w.Code != http.StatusCreated {
		t.Fatalf("device upload through router: %d %s", w.Code, w.Body.String())
	}
	// Every backend must know the device — routed requests can land anywhere.
	for i, b := range backends {
		resp, err := http.Get(b.URL + "/v1/devices")
		if err != nil {
			t.Fatalf("backend %d devices: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "fleetdev") {
			t.Fatalf("backend %d missing fanned-out device: %s", i, body)
		}
	}
}

func TestRouterStatsAndMetrics(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rt, _ := newFleet(t, 2, Config{})
	postJSON(t, rt, "/v1/map", api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})

	w := get(t, rt, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	var st api.RouterStatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if !st.Router || len(st.Backends) != 2 {
		t.Fatalf("stats %+v, want router=true with 2 backends", st)
	}
	wm := get(t, rt, "/metrics")
	for _, want := range []string{"codard_router_requests_total", "codard_router_backend_healthy", "codard_router_backends_healthy 2"} {
		if !strings.Contains(wm.Body.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, wm.Body.String())
		}
	}
}
