package schedule

// Sink receives finalized schedule chunks from a streaming mapper. Flush
// hands ownership of the chunk to the sink: the caller never touches the
// slice again, so the sink may retain it, and the sink must copy anything
// it needs beyond the call if it reuses buffers. A non-nil error aborts
// the stream; the mapper returns it unchanged.
//
// Chunks arrive in finalization order. For core.RemapStream the
// concatenation of all chunks is exactly the Gates slice of the batch
// Remap schedule (ascending Start, same tie order); for sabre.RemapStream
// it is the batch result circuit's gate sequence annotated with ASAP
// start times.
type Sink interface {
	Flush(chunk []ScheduledGate) error
}

// Collector is a Sink that concatenates chunks in memory — the bridge for
// whole-result consumers and the differential tests, which compare the
// concatenation against the batch path byte for byte.
type Collector struct {
	Gates  []ScheduledGate
	Chunks int
}

// Flush implements Sink.
func (c *Collector) Flush(chunk []ScheduledGate) error {
	c.Gates = append(c.Gates, chunk...)
	c.Chunks++
	return nil
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(chunk []ScheduledGate) error

// Flush implements Sink.
func (f FuncSink) Flush(chunk []ScheduledGate) error { return f(chunk) }
