// Package schedule implements the duration-aware ASAP (as-soon-as-possible)
// scheduler that turns a hardware-compliant gate sequence into a timed
// execution and computes its weighted depth (makespan) — the paper's figure
// of merit. "The real execution time of the circuit is associated with the
// weighted depth, in which different gates have different duration
// weights" (§I).
package schedule

import (
	"fmt"
	"sort"
	"strings"

	"codar/internal/arch"
	"codar/internal/circuit"
)

// ScheduledGate is a gate with its assigned start time and duration in
// quantum clock cycles.
type ScheduledGate struct {
	Gate     circuit.Gate
	Start    int
	Duration int
}

// End returns the first cycle after the gate finishes.
func (s ScheduledGate) End() int { return s.Start + s.Duration }

// Schedule is a timed execution of a circuit.
type Schedule struct {
	// NumQubits is the number of (physical) qubits addressed.
	NumQubits int
	// Gates in non-decreasing start order.
	Gates []ScheduledGate
	// Makespan is the weighted depth: the end time of the last gate.
	Makespan int
}

// ASAP schedules the gates of c greedily in program order: each gate starts
// as soon as all of its qubits are free, and occupies them for its duration
// under τ. This is exactly the qubit-lock execution model of the paper
// (§IV-A): launching gate g at time t sets each operand's lock to t + τ(g).
//
// Program order must already respect dependencies (true for any circuit and
// for remapper outputs). Barriers synchronise their qubits at zero cost.
func ASAP(c *circuit.Circuit, durations arch.Durations) *Schedule {
	free := make([]int, c.NumQubits) // per-qubit lock tend
	s := &Schedule{NumQubits: c.NumQubits, Gates: make([]ScheduledGate, 0, len(c.Gates))}
	for _, g := range c.Gates {
		start := 0
		for _, q := range g.Qubits {
			if free[q] > start {
				start = free[q]
			}
		}
		dur := durations.Of(g.Op)
		end := start + dur
		for _, q := range g.Qubits {
			free[q] = end
		}
		s.Gates = append(s.Gates, ScheduledGate{Gate: g.Clone(), Start: start, Duration: dur})
		if end > s.Makespan {
			s.Makespan = end
		}
	}
	// ASAP in program order yields non-decreasing per-qubit times but not
	// necessarily globally sorted starts; sort stably for consumers.
	sort.SliceStable(s.Gates, func(i, j int) bool { return s.Gates[i].Start < s.Gates[j].Start })
	return s
}

// WeightedDepth returns the makespan of the ASAP schedule of c under τ:
// the paper's weighted circuit depth.
func WeightedDepth(c *circuit.Circuit, durations arch.Durations) int {
	free := make([]int, c.NumQubits)
	makespan := 0
	for _, g := range c.Gates {
		start := 0
		for _, q := range g.Qubits {
			if free[q] > start {
				start = free[q]
			}
		}
		end := start + durations.Of(g.Op)
		for _, q := range g.Qubits {
			free[q] = end
		}
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}

// Validate checks that no two gates overlap on a qubit and that durations
// are consistent with τ.
func (s *Schedule) Validate(durations arch.Durations) error {
	type interval struct{ start, end, idx int }
	perQubit := make([][]interval, s.NumQubits)
	for i, sg := range s.Gates {
		if sg.Duration != durations.Of(sg.Gate.Op) {
			return fmt.Errorf("schedule: gate %d (%s) duration %d != τ %d", i, sg.Gate, sg.Duration, durations.Of(sg.Gate.Op))
		}
		if sg.Start < 0 {
			return fmt.Errorf("schedule: gate %d (%s) starts at %d", i, sg.Gate, sg.Start)
		}
		for _, q := range sg.Gate.Qubits {
			if q < 0 || q >= s.NumQubits {
				return fmt.Errorf("schedule: gate %d (%s) addresses qubit %d of %d", i, sg.Gate, q, s.NumQubits)
			}
			perQubit[q] = append(perQubit[q], interval{sg.Start, sg.End(), i})
		}
	}
	for q, ivs := range perQubit {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				return fmt.Errorf("schedule: qubit %d double-booked: gate %d [%d,%d) overlaps gate %d [%d,%d)",
					q, ivs[i-1].idx, ivs[i-1].start, ivs[i-1].end, ivs[i].idx, ivs[i].start, ivs[i].end)
			}
		}
	}
	return nil
}

// Circuit reconstructs the plain gate sequence in start order.
func (s *Schedule) Circuit(name string) *circuit.Circuit {
	// The copy is independent of the schedule's (often arena-shared) gate
	// storage, but batches the per-gate qubit and parameter slices through
	// arenas: one allocation per few thousand gates instead of two per gate.
	c := &circuit.Circuit{
		Name:      name,
		NumQubits: s.NumQubits,
		Gates:     make([]circuit.Gate, 0, len(s.Gates)),
	}
	var qubits circuit.IntArena
	var params circuit.FloatArena
	for _, sg := range s.Gates {
		g := sg.Gate
		qs := qubits.Take(len(g.Qubits))
		copy(qs, g.Qubits)
		g.Qubits = qs
		if g.Params != nil {
			ps := params.Take(len(g.Params))
			copy(ps, g.Params)
			g.Params = ps
		}
		if g.Op == circuit.OpMeasure && g.Cbit >= c.NumClbits {
			c.NumClbits = g.Cbit + 1
		}
		c.Gates = append(c.Gates, g)
	}
	return c
}

// BusyCycles returns, per qubit, the total number of cycles the qubit is
// occupied by gates. Used by fidelity analysis (idle time = makespan - busy).
func (s *Schedule) BusyCycles() []int {
	busy := make([]int, s.NumQubits)
	for _, sg := range s.Gates {
		for _, q := range sg.Gate.Qubits {
			busy[q] += sg.Duration
		}
	}
	return busy
}

// String renders a compact timeline listing.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule: %d qubits, %d gates, makespan %d\n", s.NumQubits, len(s.Gates), s.Makespan)
	for _, sg := range s.Gates {
		fmt.Fprintf(&b, "  [%4d,%4d) %s\n", sg.Start, sg.End(), sg.Gate)
	}
	return b.String()
}
