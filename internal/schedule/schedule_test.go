package schedule

import (
	"strings"
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
)

func sc() arch.Durations { return arch.SuperconductingDurations() }

func TestASAPSerialChain(t *testing.T) {
	// h q0 (1 cycle); t q0 (1); cx q0,q1 (2) -> makespan 4.
	c := circuit.New(2).H(0).T(0).CX(0, 1)
	s := ASAP(c, sc())
	if s.Makespan != 4 {
		t.Errorf("makespan = %d, want 4", s.Makespan)
	}
	if err := s.Validate(sc()); err != nil {
		t.Error(err)
	}
}

func TestASAPParallelism(t *testing.T) {
	// Independent gates run in parallel: h q0 || cx q1,q2.
	c := circuit.New(3).H(0).CX(1, 2)
	s := ASAP(c, sc())
	if s.Makespan != 2 {
		t.Errorf("makespan = %d, want 2", s.Makespan)
	}
	if s.Gates[0].Start != 0 || s.Gates[1].Start != 0 {
		t.Error("both gates should start at 0")
	}
}

// TestASAPPaperFig2 pins the paper's Fig 2 timing claim: with τ(T)=1 and
// τ(CX)=2, "T q2" finishes at cycle 1 while "CX q0,q2"... — wait, in
// Fig 2 "T q1" (1 cycle) runs in parallel with "CX q0,q2" (2 cycles), so a
// SWAP q1,q3 can start at cycle 1 while SWAPs touching q0/q2 start at 2.
func TestASAPPaperFig2(t *testing.T) {
	c := circuit.New(4)
	c.T(1)
	c.CX(0, 2)
	c.Swap(1, 3) // the CODAR choice: starts right after T finishes
	s := ASAP(c, sc())
	byOp := map[circuit.Op]ScheduledGate{}
	for _, sg := range s.Gates {
		byOp[sg.Gate.Op] = sg
	}
	if byOp[circuit.OpT].End() != 1 {
		t.Errorf("T ends at %d, want 1", byOp[circuit.OpT].End())
	}
	if byOp[circuit.OpCX].End() != 2 {
		t.Errorf("CX ends at %d, want 2", byOp[circuit.OpCX].End())
	}
	if byOp[circuit.OpSwap].Start != 1 {
		t.Errorf("SWAP q1,q3 starts at %d, want 1", byOp[circuit.OpSwap].Start)
	}
	// The alternative SWAP q3,q2 would have to wait until cycle 2.
	alt := circuit.New(4)
	alt.T(1)
	alt.CX(0, 2)
	alt.Swap(3, 2)
	s2 := ASAP(alt, sc())
	for _, sg := range s2.Gates {
		if sg.Gate.Op == circuit.OpSwap && sg.Start != 2 {
			t.Errorf("SWAP q3,q2 starts at %d, want 2", sg.Start)
		}
	}
}

func TestWeightedDepthMatchesASAP(t *testing.T) {
	f := func(seed int64) bool {
		c := randomPhysCircuit(seed, 6, 50)
		return WeightedDepth(c, sc()) == ASAP(c, sc()).Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWeightedDepthVsPlainDepth(t *testing.T) {
	// Under uniform durations the weighted depth equals the plain depth.
	f := func(seed int64) bool {
		c := randomPhysCircuit(seed, 5, 40)
		return WeightedDepth(c, arch.UniformDurations()) == c.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	// h q0; barrier q0,q1; h q1 -> q1's H cannot start before the barrier,
	// which waits for q0's H.
	c := circuit.New(2).H(0).Barrier(0, 1).H(1)
	s := ASAP(c, sc())
	if s.Makespan != 2 {
		t.Errorf("makespan = %d, want 2", s.Makespan)
	}
	last := s.Gates[len(s.Gates)-1]
	if last.Gate.Op != circuit.OpH || last.Start != 1 {
		t.Errorf("post-barrier H starts at %d, want 1", last.Start)
	}
}

func TestScheduleValidateCatchesOverlap(t *testing.T) {
	s := &Schedule{
		NumQubits: 2,
		Gates: []ScheduledGate{
			{Gate: circuit.New2Q(circuit.OpCX, 0, 1), Start: 0, Duration: 2},
			{Gate: circuit.New1Q(circuit.OpH, 1), Start: 1, Duration: 1},
		},
		Makespan: 2,
	}
	if err := s.Validate(sc()); err == nil {
		t.Error("overlapping schedule accepted")
	}
}

func TestScheduleValidateCatchesWrongDuration(t *testing.T) {
	s := &Schedule{
		NumQubits: 1,
		Gates:     []ScheduledGate{{Gate: circuit.New1Q(circuit.OpH, 0), Start: 0, Duration: 7}},
		Makespan:  7,
	}
	if err := s.Validate(sc()); err == nil {
		t.Error("wrong duration accepted")
	}
}

func TestScheduleCircuitRoundTrip(t *testing.T) {
	c := circuit.New(3).H(0).CX(0, 1).CX(1, 2).Measure(2, 0)
	s := ASAP(c, sc())
	back := s.Circuit("rt")
	if back.Len() != c.Len() {
		t.Fatalf("round trip lost gates: %d vs %d", back.Len(), c.Len())
	}
	if back.NumClbits != 1 {
		t.Errorf("NumClbits = %d, want 1", back.NumClbits)
	}
	// Re-scheduling the reconstructed circuit preserves the makespan.
	if got := ASAP(back, sc()).Makespan; got != s.Makespan {
		t.Errorf("re-scheduled makespan %d != %d", got, s.Makespan)
	}
}

func TestBusyCycles(t *testing.T) {
	c := circuit.New(2).H(0).CX(0, 1)
	s := ASAP(c, sc())
	busy := s.BusyCycles()
	if busy[0] != 3 || busy[1] != 2 {
		t.Errorf("BusyCycles = %v, want [3 2]", busy)
	}
}

func TestScheduleStartsSorted(t *testing.T) {
	c := randomPhysCircuit(7, 6, 80)
	s := ASAP(c, sc())
	for i := 1; i < len(s.Gates); i++ {
		if s.Gates[i].Start < s.Gates[i-1].Start {
			t.Fatal("schedule gates not sorted by start")
		}
	}
}

func TestScheduleString(t *testing.T) {
	c := circuit.New(2).CX(0, 1)
	s := ASAP(c, sc())
	if got := s.String(); !strings.Contains(got, "makespan 2") || !strings.Contains(got, "cx") {
		t.Errorf("String() = %q", got)
	}
}

// Property: makespan is bounded below by the busiest qubit and above by the
// serial sum of all durations.
func TestMakespanBounds(t *testing.T) {
	f := func(seed int64) bool {
		c := randomPhysCircuit(seed, 5, 60)
		s := ASAP(c, sc())
		busy := s.BusyCycles()
		maxBusy, total := 0, 0
		for _, b := range busy {
			if b > maxBusy {
				maxBusy = b
			}
		}
		for _, sg := range s.Gates {
			total += sg.Duration
		}
		return s.Makespan >= maxBusy && s.Makespan <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomPhysCircuit builds a deterministic random circuit for property tests.
func randomPhysCircuit(seed int64, qubits, n int) *circuit.Circuit {
	s := uint64(seed)*2685821657736338717 + 0xB5297A4D
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	c := circuit.New(qubits)
	for i := 0; i < n; i++ {
		switch next(4) {
		case 0:
			c.H(next(qubits))
		case 1:
			c.T(next(qubits))
		case 2:
			a := next(qubits)
			b := next(qubits)
			if a == b {
				b = (b + 1) % qubits
			}
			c.CX(a, b)
		default:
			a := next(qubits)
			b := next(qubits)
			if a == b {
				b = (b + 1) % qubits
			}
			c.Swap(a, b)
		}
	}
	return c
}

func TestGanttRendering(t *testing.T) {
	c := circuit.New(3).H(0).CX(0, 1).Swap(1, 2).Measure(0, 0)
	s := ASAP(c, sc())
	g := s.Gantt(40)
	for _, want := range []string{"q0", "q1", "q2", "#", "C", "h", "M", "cycles"} {
		if !strings.Contains(g, want) {
			t.Errorf("Gantt missing %q in:\n%s", want, g)
		}
	}
	// Unused qubits are omitted.
	c2 := circuit.New(5).H(0)
	g2 := ASAP(c2, sc()).Gantt(10)
	if strings.Contains(g2, "q4") {
		t.Error("idle qubit row rendered")
	}
	// Degenerate cases do not panic.
	if got := (&Schedule{NumQubits: 1}).Gantt(10); !strings.Contains(got, "empty") {
		t.Errorf("empty schedule rendering: %q", got)
	}
	if got := s.Gantt(0); !strings.Contains(got, "empty") {
		t.Errorf("zero width rendering: %q", got)
	}
}

func TestGanttWidthCap(t *testing.T) {
	c := circuit.New(1).H(0) // makespan 1
	g := ASAP(c, sc()).Gantt(100)
	// A single 1-cycle gate cannot paint more than one column.
	if strings.Count(g, "h") != 1 {
		t.Errorf("width not capped to makespan:\n%s", g)
	}
}
