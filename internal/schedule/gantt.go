package schedule

import (
	"fmt"
	"strings"

	"codar/internal/circuit"
)

// Gantt renders the schedule as a per-qubit ASCII timeline, one row per
// qubit that carries at least one gate, compressed to at most width
// columns. Each gate paints its duration with the first letter of its op
// (SWAP = '#', two-qubit gates upper-case, single-qubit lower-case); idle
// time shows as '.'. Useful for eyeballing the parallelism CODAR extracts
// — the quickstart example prints one.
func (s *Schedule) Gantt(width int) string {
	if s.Makespan == 0 || width <= 0 {
		return "(empty schedule)\n"
	}
	if width > s.Makespan {
		width = s.Makespan
	}
	scale := float64(width) / float64(s.Makespan)
	rows := make(map[int][]byte)
	used := make([]bool, s.NumQubits)
	for _, sg := range s.Gates {
		for _, q := range sg.Gate.Qubits {
			used[q] = true
			if rows[q] == nil {
				row := make([]byte, width)
				for i := range row {
					row[i] = '.'
				}
				rows[q] = row
			}
		}
	}
	for _, sg := range s.Gates {
		from := int(float64(sg.Start) * scale)
		to := int(float64(sg.End()) * scale)
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		ch := ganttSymbol(sg.Gate)
		for _, q := range sg.Gate.Qubits {
			row := rows[q]
			for i := from; i < to; i++ {
				row[i] = ch
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0..%d cycles (1 col ≈ %.1f cycles)\n", s.Makespan, 1/scale)
	for q := 0; q < s.NumQubits; q++ {
		if !used[q] {
			continue
		}
		fmt.Fprintf(&b, "q%-3d |%s|\n", q, rows[q])
	}
	return b.String()
}

// ganttSymbol picks the timeline glyph for a gate.
func ganttSymbol(g circuit.Gate) byte {
	switch {
	case g.Op == circuit.OpSwap:
		return '#'
	case g.Op == circuit.OpBarrier:
		return '|'
	case g.Op == circuit.OpMeasure:
		return 'M'
	case g.Op.TwoQubit():
		name := g.Op.Name()
		return name[0] &^ 0x20 // upper-case
	default:
		return g.Op.Name()[0] | 0x20 // lower-case
	}
}
