package arch

import "sync/atomic"

// DepthBound is a shared, monotonically tightening makespan bound used by
// the portfolio search (internal/portfolio) for early abandon: concurrent
// mapping runs publish each completed schedule's weighted depth via Tighten,
// and every in-flight run polls Get against its own in-progress lower bound,
// stopping as soon as it can no longer beat the incumbent. The zero value is
// an unset bound (everything may run to completion); a DepthBound must not
// be copied after first use.
//
// Abandoning on a *lower bound* of the final weighted depth is what keeps
// the portfolio winner deterministic under any goroutine schedule: a run is
// only cut when its eventual depth provably exceeds some completed depth,
// so it could never have won a min-depth selection, and ties (which fall
// through to swap-count and candidate-index tie-breaks) are never abandoned
// because the comparison is strict. See DESIGN.md §9.
type DepthBound struct {
	// v holds the current bound; 0 means unset. Depths are makespans in
	// clock cycles, far below 2^63.
	v atomic.Int64
}

// Tighten publishes a completed depth, lowering the bound if d beats it.
// Non-positive depths are ignored.
func (b *DepthBound) Tighten(d int) {
	if b == nil || d <= 0 {
		return
	}
	nd := int64(d)
	for {
		cur := b.v.Load()
		if cur != 0 && cur <= nd {
			return
		}
		if b.v.CompareAndSwap(cur, nd) {
			return
		}
	}
}

// Get returns the current bound and whether one has been published.
func (b *DepthBound) Get() (int, bool) {
	if b == nil {
		return 0, false
	}
	if d := b.v.Load(); d > 0 {
		return int(d), true
	}
	return 0, false
}

// Exceeded reports whether depth strictly exceeds the current bound (false
// while the bound is unset). The strict comparison is load-bearing: a run
// that would exactly tie the incumbent must finish, because min-depth ties
// are resolved by later tie-break keys.
func (b *DepthBound) Exceeded(depth int) bool {
	d, ok := b.Get()
	return ok && depth > d
}

// ASAPTracker incrementally computes the ASAP makespan of a gate sequence
// as it is emitted: each Note is one gate on the given physical qubits.
// Fed gates in an order that preserves each qubit's time order, its span
// equals schedule.WeightedDepth of the final sequence, and the running
// value is a monotone lower bound of it — the soundness invariant the
// early-abandon protocol rests on (DESIGN.md §9). Both mappers share this
// one implementation so the recurrence cannot drift between them.
type ASAPTracker struct {
	free []int
	span int
}

// NewASAPTracker sizes the tracker for a device's physical qubits.
func NewASAPTracker(numQubits int) *ASAPTracker {
	return &ASAPTracker{free: make([]int, numQubits)}
}

// Note advances the recurrence by one gate of the given duration on qs and
// returns the updated running makespan.
func (t *ASAPTracker) Note(qs []int, dur int) int {
	start := 0
	for _, q := range qs {
		if t.free[q] > start {
			start = t.free[q]
		}
	}
	end := start + dur
	for _, q := range qs {
		t.free[q] = end
	}
	if end > t.span {
		t.span = end
	}
	return t.span
}

// Span returns the running makespan.
func (t *ASAPTracker) Span() int { return t.span }
