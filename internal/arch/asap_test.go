package arch

import "testing"

// refASAP is an independent reference for the tracker's recurrence: replay
// the sequence against per-qubit free times and return the final makespan.
func refASAP(numQubits int, seq [][]int, durs []int) int {
	free := make([]int, numQubits)
	span := 0
	for i, qs := range seq {
		start := 0
		for _, q := range qs {
			if free[q] > start {
				start = free[q]
			}
		}
		end := start + durs[i]
		for _, q := range qs {
			free[q] = end
		}
		if end > span {
			span = end
		}
	}
	return span
}

func TestASAPTrackerSerialChain(t *testing.T) {
	tr := NewASAPTracker(2)
	for i := 1; i <= 4; i++ {
		if got := tr.Note([]int{0}, 3); got != 3*i {
			t.Fatalf("after %d gates span = %d, want %d", i, got, 3*i)
		}
	}
	if tr.Span() != 12 {
		t.Fatalf("Span() = %d, want 12", tr.Span())
	}
}

func TestASAPTrackerDisjointQubitsOverlap(t *testing.T) {
	tr := NewASAPTracker(3)
	tr.Note([]int{0}, 5)
	if got := tr.Note([]int{1}, 2); got != 5 {
		t.Fatalf("disjoint gate extended the span to %d, want 5", got)
	}
	if got := tr.Note([]int{2}, 9); got != 9 {
		t.Fatalf("span = %d, want 9", got)
	}
}

func TestASAPTrackerTwoQubitJoinsAtLatestOperand(t *testing.T) {
	tr := NewASAPTracker(2)
	tr.Note([]int{0}, 7) // qubit 0 free at 7
	tr.Note([]int{1}, 2) // qubit 1 free at 2
	// The 2q gate must wait for the later operand: starts at 7, ends at 10.
	if got := tr.Note([]int{0, 1}, 3); got != 10 {
		t.Fatalf("join span = %d, want 10", got)
	}
	// Both operands are now free at 10.
	if got := tr.Note([]int{1}, 1); got != 11 {
		t.Fatalf("post-join span = %d, want 11", got)
	}
}

// TestASAPTrackerMatchesReference replays pseudo-random mixed 1q/2q
// sequences and checks the incremental span against an independent replay,
// plus the monotonicity the early-abandon soundness argument rests on.
func TestASAPTrackerMatchesReference(t *testing.T) {
	const nq = 6
	s := uint64(42)
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	var seq [][]int
	var durs []int
	tr := NewASAPTracker(nq)
	prev := 0
	for i := 0; i < 500; i++ {
		var qs []int
		if next(3) == 0 {
			a := next(nq)
			b := (a + 1 + next(nq-1)) % nq
			qs = []int{a, b}
		} else {
			qs = []int{next(nq)}
		}
		d := 1 + next(4)
		seq = append(seq, qs)
		durs = append(durs, d)
		got := tr.Note(qs, d)
		if got < prev {
			t.Fatalf("gate %d: span decreased %d -> %d", i, prev, got)
		}
		prev = got
		if want := refASAP(nq, seq, durs); got != want {
			t.Fatalf("gate %d: span = %d, want %d", i, got, want)
		}
	}
}
