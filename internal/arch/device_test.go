package arch

import (
	"testing"
	"testing/quick"

	"codar/internal/circuit"
)

func TestNewDeviceBasics(t *testing.T) {
	d, err := NewDevice("t", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Edges) != 3 {
		t.Errorf("duplicate edge not merged: %v", d.Edges)
	}
	if !d.Adjacent(0, 1) || !d.Adjacent(1, 0) {
		t.Error("Adjacent should be symmetric")
	}
	if d.Adjacent(0, 2) {
		t.Error("0 and 2 are not coupled")
	}
	if got := d.Neighbors(1); !equalInts(got, []int{0, 2}) {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if d.Degree(1) != 2 || d.Degree(0) != 1 {
		t.Error("Degree mismatch")
	}
}

func TestNewDeviceErrors(t *testing.T) {
	if _, err := NewDevice("t", 0, nil); err == nil {
		t.Error("zero qubits accepted")
	}
	if _, err := NewDevice("t", 3, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewDevice("t", 3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewDevice("t", 3, [][2]int{{-1, 0}}); err == nil {
		t.Error("negative endpoint accepted")
	}
}

func TestDistances(t *testing.T) {
	d := Linear(5)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {4, 0, 4}, {1, 3, 2},
	}
	for _, tc := range cases {
		if got := d.Distance(tc.a, tc.b); got != tc.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDisconnectedDistanceIsInfinity(t *testing.T) {
	d, err := NewDevice("split", 4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Distance(0, 2) != Infinity {
		t.Errorf("Distance across components = %d, want Infinity", d.Distance(0, 2))
	}
	if d.Connected() {
		t.Error("split device reported connected")
	}
	if err := d.Validate(); err == nil {
		t.Error("Validate should reject disconnected device")
	}
}

// Property: distance is a metric on every built-in device (symmetric,
// zero-diagonal, triangle inequality) and adjacent pairs have distance 1.
func TestDistanceMetricProperties(t *testing.T) {
	for _, d := range EvaluationDevices() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			n := d.NumQubits
			for a := 0; a < n; a++ {
				if d.Distance(a, a) != 0 {
					t.Fatalf("Distance(%d,%d) != 0", a, a)
				}
				for b := 0; b < n; b++ {
					if d.Distance(a, b) != d.Distance(b, a) {
						t.Fatalf("asymmetric distance (%d,%d)", a, b)
					}
					if d.Adjacent(a, b) && d.Distance(a, b) != 1 {
						t.Fatalf("adjacent pair (%d,%d) has distance %d", a, b, d.Distance(a, b))
					}
				}
			}
			// Spot-check the triangle inequality on a deterministic sample.
			for a := 0; a < n; a++ {
				for b := 0; b < n; b += 3 {
					for c := 0; c < n; c += 5 {
						if d.Distance(a, b) > d.Distance(a, c)+d.Distance(c, b) {
							t.Fatalf("triangle violation %d,%d via %d", a, b, c)
						}
					}
				}
			}
		})
	}
}

func TestShortestPath(t *testing.T) {
	d := Grid("g", 3, 3)
	p := d.ShortestPath(0, 8)
	if len(p) != 5 {
		t.Fatalf("path length %d, want 5 (distance 4 + 1)", len(p))
	}
	if p[0] != 0 || p[len(p)-1] != 8 {
		t.Errorf("path endpoints %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !d.Adjacent(p[i], p[i+1]) {
			t.Errorf("path step %d-%d not an edge", p[i], p[i+1])
		}
	}
	// Same-node path.
	if p := d.ShortestPath(4, 4); len(p) != 1 || p[0] != 4 {
		t.Errorf("trivial path = %v", p)
	}
	// Disconnected path is nil.
	split, _ := NewDevice("split", 4, [][2]int{{0, 1}, {2, 3}})
	if split.ShortestPath(0, 3) != nil {
		t.Error("path across components should be nil")
	}
}

func TestEdgeIndexDeterminism(t *testing.T) {
	d := Grid("g", 2, 2)
	id1, ok1 := d.EdgeIndex(0, 1)
	id2, ok2 := d.EdgeIndex(1, 0)
	if !ok1 || !ok2 || id1 != id2 {
		t.Error("EdgeIndex must be orientation-independent")
	}
	if _, ok := d.EdgeIndex(0, 3); ok {
		t.Error("non-edge reported as edge")
	}
}

func TestCoordsAndHDVD(t *testing.T) {
	d := Grid("g", 3, 4)
	if !d.HasCoords() {
		t.Fatal("grid should carry coords")
	}
	if c := d.CoordOf(7); c.Row != 1 || c.Col != 3 {
		t.Errorf("CoordOf(7) = %+v", c)
	}
	if d.HD(0, 7) != 3 || d.VD(0, 7) != 1 {
		t.Errorf("HD/VD(0,7) = %d/%d, want 3/1", d.HD(0, 7), d.VD(0, 7))
	}
	// On grids, distance == HD + VD (Manhattan).
	f := func(seed int64) bool {
		a := int(uint64(seed) % 12)
		b := int((uint64(seed) / 12) % 12)
		return d.Distance(a, b) == d.HD(a, b)+d.VD(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	// Devices without coords report 0 and are still valid.
	r := Ring(5)
	if r.HasCoords() || r.HD(0, 2) != 0 || r.VD(0, 2) != 0 {
		t.Error("coordinate-free device should report 0 HD/VD")
	}
}

func TestSetCoordsWrongLength(t *testing.T) {
	d := Linear(3)
	if err := d.SetCoords([]Coord{{0, 0}}); err == nil {
		t.Error("SetCoords with wrong length accepted")
	}
}

func TestDurationDelegation(t *testing.T) {
	d := Linear(2)
	if d.Duration(circuit.OpT) != 1 || d.Duration(circuit.OpCX) != 2 || d.Duration(circuit.OpSwap) != 6 {
		t.Error("default superconducting durations expected")
	}
}

func TestDiameter(t *testing.T) {
	if got := Linear(5).Diameter(); got != 4 {
		t.Errorf("Linear(5) diameter = %d, want 4", got)
	}
	if got := Ring(6).Diameter(); got != 3 {
		t.Errorf("Ring(6) diameter = %d, want 3", got)
	}
	if got := Grid("g", 3, 3).Diameter(); got != 4 {
		t.Errorf("Grid(3,3) diameter = %d, want 4", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
