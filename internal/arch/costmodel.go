package arch

import (
	"fmt"
	"math"
)

// CostScale is the integer fixed-point scale of the calibration-weighted
// metric: an unweighted hop costs exactly CostScale, and an edge with blended
// weight w costs round(CostScale·(1+w)). CostScale is a power of two so that
// SABRE's float heuristic — which divides distance sums by set sizes and
// compares the quotients — sees an exact power-of-two multiple of its
// unweighted value when every w is zero, keeping every comparison (including
// ties) bit-identical to the hop metric. See DESIGN.md §8.
const CostScale = 1024

// CostModel is a fidelity-weighted routing metric over a device: the
// all-pairs shortest-path matrix of the coupling graph under per-edge weights
// 1 + w(e), fixed-point scaled by CostScale. With all weights zero it is the
// hop metric times CostScale; with w(e) = λ·(−log(1−err2(e))) (see
// internal/calib) paths through unreliable couplers grow more expensive and
// the mappers' Hbasic/H heuristics steer SWAP traffic toward reliable edges.
// A CostModel is immutable after construction and safe for concurrent use.
type CostModel struct {
	deviceName string
	numQubits  int
	// edgeCost[id] is the scaled traversal cost of edge id.
	edgeCost []int32
	// dist is the weighted all-pairs matrix, row-major like Device.dist.
	dist []int32
	// adj aliases the device adjacency lists (read-only).
	adj [][]int
	// edgeIdx aliases the device edge-index table (read-only).
	edgeIdx []int32
}

// NewCostModel builds the weighted metric for dev from one blended weight per
// coupler, indexed like dev.Edges (see Device.EdgeIndex). Weights must be
// finite and non-negative; zero everywhere reproduces the hop metric scaled
// by CostScale.
func NewCostModel(dev *Device, edgeWeights []float64) (*CostModel, error) {
	if len(edgeWeights) != len(dev.Edges) {
		return nil, fmt.Errorf("arch: cost model for %q: %d weights for %d couplers", dev.Name, len(edgeWeights), len(dev.Edges))
	}
	cm := &CostModel{
		deviceName: dev.Name,
		numQubits:  dev.NumQubits,
		edgeCost:   make([]int32, len(edgeWeights)),
		adj:        dev.adj,
		edgeIdx:    dev.edgeIdx,
	}
	// A shortest path visits at most NumQubits-1 edges, so capping each
	// edge below Infinity/NumQubits guarantees every true path sum stays
	// under the Infinity sentinel — no saturation, no int32 wrap, and
	// connected qubits can never read as disconnected no matter how large
	// the caller's λ is.
	maxCost := int64(Infinity-1) / int64(dev.NumQubits)
	for i, w := range edgeWeights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("arch: cost model for %q: edge %v has invalid weight %v", dev.Name, dev.Edges[i], w)
		}
		c := int64(math.Round(CostScale * (1 + w)))
		if c > maxCost {
			return nil, fmt.Errorf("arch: cost model for %q: edge %v weight %v overflows the metric (lower the error-term gain)", dev.Name, dev.Edges[i], w)
		}
		cm.edgeCost[i] = int32(c)
	}
	cm.computeDistances()
	return cm, nil
}

// computeDistances fills the weighted all-pairs matrix by Dijkstra from every
// qubit. Devices are small (≤ a few hundred qubits), so the O(n²) scan per
// source beats heap bookkeeping and is trivially deterministic.
func (cm *CostModel) computeDistances() {
	n := cm.numQubits
	cm.dist = make([]int32, n*n)
	done := make([]bool, n)
	for s := 0; s < n; s++ {
		row := cm.dist[s*n : (s+1)*n]
		for i := range row {
			row[i] = Infinity
			done[i] = false
		}
		row[s] = 0
		for {
			u, best := -1, int32(Infinity)
			for q := 0; q < n; q++ {
				if !done[q] && row[q] < best {
					u, best = q, row[q]
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			for _, v := range cm.adj[u] {
				id := cm.edgeIdx[u*n+v]
				if d := row[u] + cm.edgeCost[id]; d < row[v] {
					row[v] = d
				}
			}
		}
	}
}

// DeviceName returns the name of the device the model was built for.
func (cm *CostModel) DeviceName() string { return cm.deviceName }

// NumQubits returns the qubit count the metric spans.
func (cm *CostModel) NumQubits() int { return cm.numQubits }

// EdgeCost returns the scaled traversal cost of edge id.
func (cm *CostModel) EdgeCost(id int) int { return int(cm.edgeCost[id]) }

// Distance returns the weighted shortest-path cost between physical qubits a
// and b, or at least Infinity when disconnected.
func (cm *CostModel) Distance(a, b int) int { return int(cm.dist[a*cm.numQubits+b]) }

// Table returns the flat row-major weighted distance matrix
// (table[a*NumQubits+b]), in the same layout as Device.DistTable so the
// mappers' hot loops can index either interchangeably. The slice is shared
// and must not be modified.
func (cm *CostModel) Table() []int32 { return cm.dist }

// CompatibleWith reports whether the model was built for (a copy of) dev.
// Shallow duration-override copies share the topology, so name and qubit
// count identify the coupling graph the distances were computed on.
func (cm *CostModel) CompatibleWith(dev *Device) error {
	if cm.deviceName != dev.Name || cm.numQubits != dev.NumQubits {
		return fmt.Errorf("arch: cost model built for %q (%d qubits) used with device %q (%d qubits)",
			cm.deviceName, cm.numQubits, dev.Name, dev.NumQubits)
	}
	return nil
}

// ShortestPath returns one minimum-weight path from a to b inclusive, or nil
// when disconnected. Ties break toward the lowest-numbered neighbour — with
// all weights equal this reproduces Device.ShortestPath exactly, which the
// zero-calibration equivalence properties rely on.
func (cm *CostModel) ShortestPath(a, b int) []int {
	n := cm.numQubits
	toB := cm.dist[b*n : (b+1)*n] // symmetric: toB[q] is the weighted D(q, b)
	if toB[a] >= Infinity {
		return nil
	}
	path := []int{a}
	cur := a
	for cur != b {
		next := -1
		for _, v := range cm.adj[cur] {
			id := cm.edgeIdx[cur*n+v]
			if toB[v]+cm.edgeCost[id] == toB[cur] {
				next = v
				break
			}
		}
		if next < 0 {
			return nil // unreachable given dist invariants
		}
		path = append(path, next)
		cur = next
	}
	return path
}
