package arch

import (
	"fmt"
	"sort"
	"strings"
)

// Grid builds a rows×cols 2-D lattice with nearest-neighbour couplings.
// Qubit (r, c) has index r*cols + c; coordinates are attached for Hfine.
func Grid(name string, rows, cols int) *Device {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("arch: Grid(%d,%d): non-positive dimensions", rows, cols))
	}
	var edges [][2]int
	coords := make([]Coord, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := r*cols + c
			coords[q] = Coord{Row: r, Col: c}
			if c+1 < cols {
				edges = append(edges, [2]int{q, q + 1})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{q, q + cols})
			}
		}
	}
	d := MustNewDevice(name, rows*cols, edges)
	if err := d.SetCoords(coords); err != nil {
		panic(err)
	}
	return d
}

// Linear builds an n-qubit line (1-D nearest neighbour).
func Linear(n int) *Device {
	var edges [][2]int
	coords := make([]Coord, n)
	for q := 0; q < n; q++ {
		coords[q] = Coord{Row: 0, Col: q}
		if q+1 < n {
			edges = append(edges, [2]int{q, q + 1})
		}
	}
	d := MustNewDevice(fmt.Sprintf("linear-%d", n), n, edges)
	if err := d.SetCoords(coords); err != nil {
		panic(err)
	}
	return d
}

// Ring builds an n-qubit cycle.
func Ring(n int) *Device {
	if n < 3 {
		panic("arch: Ring needs at least 3 qubits")
	}
	var edges [][2]int
	for q := 0; q < n; q++ {
		edges = append(edges, [2]int{q, (q + 1) % n})
	}
	return MustNewDevice(fmt.Sprintf("ring-%d", n), n, edges)
}

// IBMQ5 is the 5-qubit IBM QX "bowtie" used by early mapping work
// (Siraichi et al.). Coupling treated as undirected, per the maQAM.
func IBMQ5() *Device {
	d := MustNewDevice("ibm-q5", 5, [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4},
	})
	// Approximate bowtie layout for Hfine.
	if err := d.SetCoords([]Coord{{0, 0}, {2, 0}, {1, 1}, {0, 2}, {2, 2}}); err != nil {
		panic(err)
	}
	return d
}

// IBMQX4 is the directed 5-qubit IBM QX4 model targeted by the early
// mapping work the paper surveys (§II-A): the bowtie coupling graph with
// fixed CX orientations. Reversed CXs cost four H gates (internal/orient).
func IBMQX4() *Device {
	d := MustNewDevice("ibm-qx4", 5, [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4},
	})
	if err := d.SetDirections([][2]int{
		{1, 0}, {2, 0}, {2, 1}, {3, 2}, {3, 4}, {2, 4},
	}); err != nil {
		panic(err)
	}
	if err := d.SetCoords([]Coord{{0, 0}, {2, 0}, {1, 1}, {0, 2}, {2, 2}}); err != nil {
		panic(err)
	}
	return d
}

// IBMQ16Melbourne is the paper's 16-qubit IBM Q16 Melbourne model: a 2×8
// ladder with the bottom row indexed right-to-left, as published in the
// Qiskit device information the paper cites.
//
//	0 --- 1 --- 2 --- 3 --- 4 --- 5 --- 6 --- 7
//	|     |     |     |     |     |     |     |
//	15 -- 14 -- 13 -- 12 -- 11 -- 10 -- 9 --- 8
func IBMQ16Melbourne() *Device {
	var edges [][2]int
	for c := 0; c < 7; c++ {
		edges = append(edges, [2]int{c, c + 1})     // top row
		edges = append(edges, [2]int{8 + c, 9 + c}) // bottom row
	}
	for c := 0; c < 8; c++ {
		edges = append(edges, [2]int{c, 15 - c}) // rungs
	}
	d := MustNewDevice("ibm-q16-melbourne", 16, edges)
	coords := make([]Coord, 16)
	for q := 0; q < 8; q++ {
		coords[q] = Coord{Row: 0, Col: q}
	}
	for q := 8; q < 16; q++ {
		coords[q] = Coord{Row: 1, Col: 15 - q}
	}
	if err := d.SetCoords(coords); err != nil {
		panic(err)
	}
	return d
}

// IBMQ20Tokyo is the 20-qubit IBM Q20 Tokyo model used by SABRE
// (Li et al., ASPLOS'19): a 4×5 grid with twelve extra diagonal couplers.
func IBMQ20Tokyo() *Device {
	var edges [][2]int
	// 4×5 grid part.
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			q := r*5 + c
			if c+1 < 5 {
				edges = append(edges, [2]int{q, q + 1})
			}
			if r+1 < 4 {
				edges = append(edges, [2]int{q, q + 5})
			}
		}
	}
	// Diagonal couplers per the published coupling map.
	diagonals := [][2]int{
		{1, 7}, {2, 6}, {3, 9}, {4, 8},
		{5, 11}, {6, 10}, {7, 13}, {8, 12},
		{11, 17}, {12, 16}, {13, 19}, {14, 18},
	}
	edges = append(edges, diagonals...)
	d := MustNewDevice("ibm-q20-tokyo", 20, edges)
	coords := make([]Coord, 20)
	for q := 0; q < 20; q++ {
		coords[q] = Coord{Row: q / 5, Col: q % 5}
	}
	if err := d.SetCoords(coords); err != nil {
		panic(err)
	}
	return d
}

// Enfield6x6 is the 6×6 grid model proposed by the Enfield project and
// used as the paper's third evaluation architecture.
func Enfield6x6() *Device { return Grid("enfield-6x6", 6, 6) }

// SycamoreQ54 models Google's 54-qubit Sycamore processor (Arute et al.,
// Nature 2019): a diagonal square lattice where every interior qubit has
// four couplers. We lay the 54 qubits on a 6×9 integer grid (index
// q = r*9 + c) with vertical couplers (r,c)-(r+1,c) plus alternating
// diagonal couplers, reproducing Sycamore's degree-4 diagonal-lattice
// connectivity. The substitution is documented in DESIGN.md.
func SycamoreQ54() *Device {
	const rows, cols = 6, 9
	var edges [][2]int
	for r := 0; r < rows-1; r++ {
		for c := 0; c < cols; c++ {
			q := r*cols + c
			edges = append(edges, [2]int{q, q + cols})
			if r%2 == 0 {
				if c > 0 {
					edges = append(edges, [2]int{q, q + cols - 1})
				}
			} else {
				if c+1 < cols {
					edges = append(edges, [2]int{q, q + cols + 1})
				}
			}
		}
	}
	d := MustNewDevice("google-q54-sycamore", rows*cols, edges)
	coords := make([]Coord, rows*cols)
	for q := range coords {
		coords[q] = Coord{Row: q / cols, Col: q % cols}
	}
	if err := d.SetCoords(coords); err != nil {
		panic(err)
	}
	return d
}

// EvaluationDevices returns the paper's four Fig-8 architectures in the
// order they appear in the evaluation.
func EvaluationDevices() []*Device {
	return []*Device{IBMQ16Melbourne(), Enfield6x6(), IBMQ20Tokyo(), SycamoreQ54()}
}

// ByName resolves a device by a user-facing name. Recognised names (case
// insensitive): q5, melbourne|q16, tokyo|q20, enfield|grid6x6, sycamore|q54,
// gridRxC (e.g. grid3x3), linearN, ringN.
func ByName(name string) (*Device, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	switch n {
	case "q5", "ibm-q5", "ibmq5":
		return IBMQ5(), nil
	case "qx4", "ibm-qx4", "ibmqx4":
		return IBMQX4(), nil
	case "melbourne", "q16", "ibm-q16-melbourne", "ibmq16":
		return IBMQ16Melbourne(), nil
	case "tokyo", "q20", "ibm-q20-tokyo", "ibmq20":
		return IBMQ20Tokyo(), nil
	case "enfield", "grid6x6", "6x6", "enfield-6x6":
		return Enfield6x6(), nil
	case "sycamore", "q54", "google-q54-sycamore":
		return SycamoreQ54(), nil
	}
	var rows, cols, k int
	if _, err := fmt.Sscanf(n, "grid%dx%d", &rows, &cols); err == nil && rows > 0 && cols > 0 {
		return Grid(n, rows, cols), nil
	}
	if _, err := fmt.Sscanf(n, "linear%d", &k); err == nil && k > 0 {
		return Linear(k), nil
	}
	if _, err := fmt.Sscanf(n, "ring%d", &k); err == nil && k >= 3 {
		return Ring(k), nil
	}
	return nil, fmt.Errorf("arch: unknown device %q (known: %s)", name, strings.Join(KnownNames(), ", "))
}

// KnownNames lists the canonical names accepted by ByName.
func KnownNames() []string {
	names := []string{"q5", "melbourne", "tokyo", "enfield", "sycamore", "gridRxC", "linearN", "ringN"}
	sort.Strings(names)
	return names
}
