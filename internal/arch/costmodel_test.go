package arch

import (
	"reflect"
	"testing"
)

// TestZeroWeightCostModelIsScaledHopMetric: with every weight zero the
// weighted matrix must be exactly CostScale times the BFS hop matrix, and
// weighted shortest paths must reproduce the BFS paths tie-break for
// tie-break.
func TestZeroWeightCostModelIsScaledHopMetric(t *testing.T) {
	for _, dev := range []*Device{IBMQ20Tokyo(), Grid("g34", 3, 4), Ring(9), Linear(7)} {
		cm, err := NewCostModel(dev, make([]float64, len(dev.Edges)))
		if err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		n := dev.NumQubits
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if got, want := cm.Distance(a, b), CostScale*dev.Distance(a, b); got != want {
					t.Fatalf("%s: weighted D(%d,%d) = %d, want %d", dev.Name, a, b, got, want)
				}
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !reflect.DeepEqual(cm.ShortestPath(a, b), dev.ShortestPath(a, b)) {
					t.Fatalf("%s: path(%d,%d) diverges: %v vs %v",
						dev.Name, a, b, cm.ShortestPath(a, b), dev.ShortestPath(a, b))
				}
			}
		}
	}
}

// TestCostModelAvoidsExpensiveEdge: on a ring, pricing up one edge of the
// otherwise-shorter arc must push the metric (and the shortest path) onto
// the longer error-free arc.
func TestCostModelAvoidsExpensiveEdge(t *testing.T) {
	dev := Ring(6) // two arcs between 0 and 3: 0-1-2-3 and 0-5-4-3
	weights := make([]float64, len(dev.Edges))
	id, ok := dev.EdgeIndex(1, 2)
	if !ok {
		t.Fatal("ring(6) missing edge (1,2)")
	}
	weights[id] = 5 // edge (1,2) now costs 6 hops
	cm, err := NewCostModel(dev, weights)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cm.Distance(0, 3), 3*CostScale; got != want {
		t.Errorf("D(0,3) = %d, want %d (detour arc)", got, want)
	}
	path := cm.ShortestPath(0, 3)
	if !reflect.DeepEqual(path, []int{0, 5, 4, 3}) {
		t.Errorf("path(0,3) = %v, want detour over the cheap arc", path)
	}
	// The hop metric is untouched.
	if dev.Distance(0, 3) != 3 {
		t.Errorf("hop D(0,3) = %d, want 3", dev.Distance(0, 3))
	}
}

func TestCostModelValidation(t *testing.T) {
	dev := Linear(4)
	if _, err := NewCostModel(dev, make([]float64, 1)); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := NewCostModel(dev, []float64{0, -1, 0}); err == nil {
		t.Error("negative weight accepted")
	}
	// Weights whose per-edge cost could push a path sum past the Infinity
	// sentinel are rejected up front, not silently saturated.
	if _, err := NewCostModel(dev, []float64{0, 1e6, 0}); err == nil {
		t.Error("overflowing weight accepted")
	}
	cm, err := NewCostModel(dev, make([]float64, len(dev.Edges)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.CompatibleWith(dev); err != nil {
		t.Errorf("self compatibility: %v", err)
	}
	if err := cm.CompatibleWith(Linear(5)); err == nil {
		t.Error("cost model accepted a different device")
	}
	// A shallow duration-override copy shares the topology and must pass.
	cp := *dev
	cp.Durations = UniformDurations()
	if err := cm.CompatibleWith(&cp); err != nil {
		t.Errorf("duration-copy compatibility: %v", err)
	}
}
