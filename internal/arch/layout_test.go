package arch

import (
	"testing"
	"testing/quick"
)

func TestTrivialLayout(t *testing.T) {
	l := NewTrivialLayout(3, 5)
	if l.NumLogical() != 3 || l.NumPhysical() != 5 {
		t.Fatalf("sizes %d/%d", l.NumLogical(), l.NumPhysical())
	}
	for q := 0; q < 3; q++ {
		if l.Phys(q) != q || l.Log(q) != q {
			t.Errorf("trivial layout broken at %d", q)
		}
	}
	if l.Log(3) != -1 || l.Log(4) != -1 {
		t.Error("spare physical qubits should map to -1")
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTrivialLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("logical > physical should panic")
		}
	}()
	NewTrivialLayout(5, 3)
}

func TestNewLayout(t *testing.T) {
	l, err := NewLayout([]int{2, 0, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Phys(0) != 2 || l.Phys(1) != 0 || l.Phys(2) != 3 {
		t.Error("assignment not honoured")
	}
	if l.Log(2) != 0 || l.Log(1) != -1 {
		t.Error("inverse broken")
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout([]int{0, 0}, 3); err == nil {
		t.Error("non-injective assignment accepted")
	}
	if _, err := NewLayout([]int{0, 5}, 3); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	if _, err := NewLayout([]int{0, 1, 2, 3}, 3); err == nil {
		t.Error("too many logical qubits accepted")
	}
}

func TestSwapPhysical(t *testing.T) {
	l := NewTrivialLayout(2, 4)
	// Swap two occupied qubits.
	l.SwapPhysical(0, 1)
	if l.Phys(0) != 1 || l.Phys(1) != 0 {
		t.Error("occupied swap broken")
	}
	// Swap occupied with free.
	l.SwapPhysical(1, 3) // logical 0 moves to physical 3
	if l.Phys(0) != 3 || l.Log(1) != -1 || l.Log(3) != 0 {
		t.Error("occupied/free swap broken")
	}
	// Swap two free qubits: no-op on logical side.
	l.SwapPhysical(1, 2)
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

// Property: any sequence of SwapPhysical calls keeps the layout a valid
// partial bijection, and applying the same swap twice restores it.
func TestSwapPhysicalProperties(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)*0x9E3779B97F4A7C15 + 1
		next := func(mod int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(mod))
		}
		l := NewTrivialLayout(4, 7)
		for i := 0; i < 30; i++ {
			a := next(7)
			b := next(7)
			if a == b {
				continue
			}
			l.SwapPhysical(a, b)
			if l.Validate() != nil {
				return false
			}
		}
		before := l.Clone()
		l.SwapPhysical(2, 5)
		l.SwapPhysical(2, 5)
		return l.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLayoutCloneIndependence(t *testing.T) {
	l := NewTrivialLayout(2, 3)
	c := l.Clone()
	c.SwapPhysical(0, 1)
	if l.Phys(0) != 0 {
		t.Error("Clone shares storage")
	}
	if l.Equal(c) {
		t.Error("Equal should detect divergence")
	}
}

func TestLayoutAssignmentCopy(t *testing.T) {
	l := NewTrivialLayout(2, 3)
	a := l.Assignment()
	a[0] = 99
	if l.Phys(0) != 0 {
		t.Error("Assignment must return a copy")
	}
}
