package arch

import "fmt"

// Technology enumerates the NISQ implementation technologies surveyed in
// Table I of the paper.
type Technology int

// Technologies from Table I.
const (
	IonTrap Technology = iota
	Superconducting
	NeutralAtom
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case IonTrap:
		return "ion-trap"
	case Superconducting:
		return "superconducting"
	case NeutralAtom:
		return "neutral-atom"
	default:
		return fmt.Sprintf("technology(%d)", int(t))
	}
}

// TechnologyParams captures one column of Table I: representative gate
// fidelities, gate times and coherence times for a quantum technology.
// Times are in nanoseconds; fidelities are fractions in [0, 1].
type TechnologyParams struct {
	Technology Technology
	// Representative device of the column.
	Device string
	// Fidelity1Q, Fidelity2Q, FidelityReadout are typical operation
	// fidelities.
	Fidelity1Q      float64
	Fidelity2Q      float64
	FidelityReadout float64
	// Time1Q and Time2Q are typical gate durations in nanoseconds.
	Time1Q float64
	Time2Q float64
	// T1 (depolarisation) and T2 (spin dephasing) in nanoseconds.
	T1 float64
	T2 float64
	// Durations is the cycle-quantised duration preset derived from the
	// column, used by the maQAM.
	Durations Durations
}

// TableI returns the per-technology parameter rows encoded from the paper's
// Table I (one representative column per technology).
func TableI() []TechnologyParams {
	return []TechnologyParams{
		{
			Technology:      IonTrap,
			Device:          "Ion Q5 (Linke et al.)",
			Fidelity1Q:      0.991,
			Fidelity2Q:      0.97,
			FidelityReadout: 0.957,
			Time1Q:          20_000,  // 20 µs
			Time2Q:          250_000, // 250 µs
			T1:              1e12,    // ~infinite on circuit timescales
			T2:              5e8,     // ~0.5 s
			Durations:       IonTrapDurations(),
		},
		{
			Technology:      Superconducting,
			Device:          "IBM Q16/Q20 (symmetric superconducting)",
			Fidelity1Q:      0.997,
			Fidelity2Q:      0.965,
			FidelityReadout: 0.93,
			Time1Q:          130,
			Time2Q:          300, // 250–450 ns band midpoint
			T1:              70_000,
			T2:              60_000,
			Durations:       SuperconductingDurations(),
		},
		{
			Technology:      NeutralAtom,
			Device:          "2-D optical dipole trap array (Sheng et al.)",
			Fidelity1Q:      0.99995,
			Fidelity2Q:      0.82,
			FidelityReadout: 0.986,
			Time1Q:          5_000,  // 1–20 µs band
			Time2Q:          10_000, // ~10 µs
			T1:              1e10,   // > 10 s
			T2:              1e9,    // ~1 s
			Durations:       NeutralAtomDurations(),
		},
	}
}

// ParamsFor returns the Table I row for a technology.
func ParamsFor(t Technology) (TechnologyParams, error) {
	for _, p := range TableI() {
		if p.Technology == t {
			return p, nil
		}
	}
	return TechnologyParams{}, fmt.Errorf("arch: no Table I row for %v", t)
}
