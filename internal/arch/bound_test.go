package arch

import (
	"sync"
	"testing"
)

func TestDepthBoundZeroValueUnset(t *testing.T) {
	var b DepthBound
	if _, ok := b.Get(); ok {
		t.Fatal("zero-value bound reads as set")
	}
	if b.Exceeded(1 << 40) {
		t.Fatal("unset bound exceeded")
	}
	var nilB *DepthBound
	if _, ok := nilB.Get(); ok {
		t.Fatal("nil bound reads as set")
	}
	if nilB.Exceeded(5) {
		t.Fatal("nil bound exceeded")
	}
	nilB.Tighten(3) // must not panic
}

func TestDepthBoundTightenIsMin(t *testing.T) {
	var b DepthBound
	b.Tighten(100)
	if d, ok := b.Get(); !ok || d != 100 {
		t.Fatalf("Get() = %d,%v after Tighten(100)", d, ok)
	}
	b.Tighten(250) // looser: ignored
	if d, _ := b.Get(); d != 100 {
		t.Fatalf("loosened to %d", d)
	}
	b.Tighten(40)
	if d, _ := b.Get(); d != 40 {
		t.Fatalf("Tighten(40) left %d", d)
	}
	b.Tighten(0)  // ignored
	b.Tighten(-7) // ignored
	if d, _ := b.Get(); d != 40 {
		t.Fatalf("non-positive depth changed the bound to %d", d)
	}
}

func TestDepthBoundExceededIsStrict(t *testing.T) {
	var b DepthBound
	b.Tighten(10)
	if b.Exceeded(10) {
		t.Fatal("Exceeded(10) with bound 10: ties must finish (later tie-break keys decide)")
	}
	if !b.Exceeded(11) {
		t.Fatal("Exceeded(11) with bound 10 should hold")
	}
}

// TestDepthBoundConcurrentTighten races many publishers; the surviving
// bound must be the global minimum (run under -race in CI).
func TestDepthBoundConcurrentTighten(t *testing.T) {
	var b DepthBound
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for d := 1000 + w; d > 8+w; d -= 7 {
				b.Tighten(d)
			}
		}(w)
	}
	wg.Wait()
	// Each publisher's chain 1000+w, 993+w, ... bottoms out at 13+w
	// (the last value still > 8+w); the surviving bound is the global
	// minimum, 13.
	d, ok := b.Get()
	if !ok || d != 13 {
		t.Fatalf("concurrent min = %d (%v), want 13", d, ok)
	}
}
