package arch

import (
	"fmt"

	"codar/internal/circuit"
)

// Durations is the maQAM gate-duration map τ: G -> N (paper Table II),
// expressed in integer quantum clock cycles τu. Per-op overrides take
// precedence over the class defaults.
type Durations struct {
	// Single is the default duration of single-qubit unitaries.
	Single int
	// Two is the default duration of two-qubit unitaries (CX, CZ, ...).
	Two int
	// Swap is the duration of the SWAP the remapper inserts. On hardware
	// without a native SWAP it is 3× the two-qubit gate duration.
	Swap int
	// Measure is the duration of a measurement (readout).
	Measure int
	// PerOp holds per-op overrides; a present entry wins over the class
	// default.
	PerOp map[circuit.Op]int
}

// Of returns τ(op). Barriers take zero time.
func (d Durations) Of(op circuit.Op) int {
	if t, ok := d.PerOp[op]; ok {
		return t
	}
	switch {
	case op == circuit.OpBarrier:
		return 0
	case op == circuit.OpSwap:
		return d.Swap
	case op == circuit.OpMeasure || op == circuit.OpReset:
		return d.Measure
	case op.SingleQubit():
		return d.Single
	case op.TwoQubit():
		return d.Two
	case op == circuit.OpCCX:
		// Pre-decomposition Toffoli: modelled as its 6-CX expansion depth.
		return 6*d.Two + 2*d.Single
	default:
		return d.Single
	}
}

// WithOverride returns a copy of d with τ(op) = cycles.
func (d Durations) WithOverride(op circuit.Op, cycles int) Durations {
	out := d
	out.PerOp = make(map[circuit.Op]int, len(d.PerOp)+1)
	for k, v := range d.PerOp {
		out.PerOp[k] = v
	}
	out.PerOp[op] = cycles
	return out
}

// Validate rejects non-positive class durations.
func (d Durations) Validate() error {
	if d.Single <= 0 || d.Two <= 0 || d.Swap <= 0 {
		return fmt.Errorf("durations must be positive: single=%d two=%d swap=%d", d.Single, d.Two, d.Swap)
	}
	if d.Measure < 0 {
		return fmt.Errorf("measure duration must be non-negative: %d", d.Measure)
	}
	for op, t := range d.PerOp {
		if t < 0 {
			return fmt.Errorf("negative override for %v: %d", op, t)
		}
	}
	return nil
}

// SuperconductingDurations is the paper's evaluation configuration (§V.b):
// symmetric superconducting technology where the two-qubit gate takes twice
// a single-qubit gate and SWAP is three CNOTs. Matches the motivating
// examples (T = 1 cycle, CX = 2 cycles, SWAP = 6 cycles) and the Table I
// superconducting column (1q ≈ 130 ns, 2q ≈ 250–450 ns).
func SuperconductingDurations() Durations {
	return Durations{Single: 1, Two: 2, Swap: 6, Measure: 5}
}

// IonTrapDurations models the Table I ion-trap column: single-qubit
// rotations ≈ 20 µs, two-qubit XX ≈ 250 µs, i.e. roughly 12× slower, with
// SWAP as three two-qubit gates. One cycle τu = 20 µs.
func IonTrapDurations() Durations {
	return Durations{Single: 1, Two: 12, Swap: 36, Measure: 15}
}

// NeutralAtomDurations models the Table I neutral-atom column: the
// two-qubit gate is *not* slower than a single-qubit gate (1q ≈ 1–20 µs,
// 2q ≈ 10 µs). One cycle τu = 5 µs.
func NeutralAtomDurations() Durations {
	return Durations{Single: 2, Two: 1, Swap: 3, Measure: 10}
}

// UniformDurations assigns every gate the same duration; this reduces
// weighted depth to plain depth and is used in ablations to show what
// duration-awareness alone contributes.
func UniformDurations() Durations {
	return Durations{Single: 1, Two: 1, Swap: 1, Measure: 1}
}
