package arch

import (
	"fmt"
)

// Layout is the dynamic mapping π: QP -> QH from logical to physical qubits
// (paper Table II). The number of physical qubits N may exceed the number
// of logical qubits n; physical qubits without a logical occupant map back
// to -1. SWAPs operate on physical qubits and permute whatever logical
// qubits (if any) occupy them.
type Layout struct {
	log2phys []int // logical -> physical, length n
	phys2log []int // physical -> logical or -1, length N
}

// NewTrivialLayout maps logical qubit i to physical qubit i.
func NewTrivialLayout(logical, physical int) *Layout {
	if logical > physical {
		panic(fmt.Sprintf("arch: %d logical qubits exceed %d physical", logical, physical))
	}
	l := &Layout{
		log2phys: make([]int, logical),
		phys2log: make([]int, physical),
	}
	for i := range l.phys2log {
		l.phys2log[i] = -1
	}
	for i := range l.log2phys {
		l.log2phys[i] = i
		l.phys2log[i] = i
	}
	return l
}

// NewLayout builds a layout from an explicit logical->physical assignment.
// The assignment must be injective and within [0, physical).
func NewLayout(log2phys []int, physical int) (*Layout, error) {
	if len(log2phys) > physical {
		return nil, fmt.Errorf("arch: %d logical qubits exceed %d physical", len(log2phys), physical)
	}
	l := &Layout{
		log2phys: append([]int(nil), log2phys...),
		phys2log: make([]int, physical),
	}
	for i := range l.phys2log {
		l.phys2log[i] = -1
	}
	for q, p := range l.log2phys {
		if p < 0 || p >= physical {
			return nil, fmt.Errorf("arch: logical %d mapped to out-of-range physical %d", q, p)
		}
		if l.phys2log[p] != -1 {
			return nil, fmt.Errorf("arch: physical %d assigned to both logical %d and %d", p, l.phys2log[p], q)
		}
		l.phys2log[p] = q
	}
	return l, nil
}

// NumLogical returns n, the number of logical qubits.
func (l *Layout) NumLogical() int { return len(l.log2phys) }

// NumPhysical returns N, the number of physical qubits.
func (l *Layout) NumPhysical() int { return len(l.phys2log) }

// Phys returns π(q), the physical qubit hosting logical qubit q.
func (l *Layout) Phys(q int) int { return l.log2phys[q] }

// Log returns the logical qubit hosted by physical qubit p, or -1.
func (l *Layout) Log(p int) int { return l.phys2log[p] }

// SwapPhysical exchanges the logical occupants of physical qubits a and b
// (either or both may be unoccupied). This is the layout effect of a SWAP
// gate inserted by a remapper.
func (l *Layout) SwapPhysical(a, b int) {
	la, lb := l.phys2log[a], l.phys2log[b]
	l.phys2log[a], l.phys2log[b] = lb, la
	if la >= 0 {
		l.log2phys[la] = b
	}
	if lb >= 0 {
		l.log2phys[lb] = a
	}
}

// Clone returns an independent copy.
func (l *Layout) Clone() *Layout {
	return &Layout{
		log2phys: append([]int(nil), l.log2phys...),
		phys2log: append([]int(nil), l.phys2log...),
	}
}

// Assignment returns a copy of the logical->physical table.
func (l *Layout) Assignment() []int { return append([]int(nil), l.log2phys...) }

// Equal reports whether two layouts encode the same assignment.
func (l *Layout) Equal(o *Layout) bool {
	if len(l.log2phys) != len(o.log2phys) || len(l.phys2log) != len(o.phys2log) {
		return false
	}
	for i := range l.log2phys {
		if l.log2phys[i] != o.log2phys[i] {
			return false
		}
	}
	return true
}

// Validate checks internal consistency (bijectivity over occupied qubits).
func (l *Layout) Validate() error {
	for q, p := range l.log2phys {
		if p < 0 || p >= len(l.phys2log) {
			return fmt.Errorf("arch: layout maps logical %d to invalid physical %d", q, p)
		}
		if l.phys2log[p] != q {
			return fmt.Errorf("arch: layout inverse broken at logical %d / physical %d", q, p)
		}
	}
	occupied := 0
	for p, q := range l.phys2log {
		if q == -1 {
			continue
		}
		occupied++
		if q < 0 || q >= len(l.log2phys) || l.log2phys[q] != p {
			return fmt.Errorf("arch: layout forward broken at physical %d / logical %d", p, q)
		}
	}
	if occupied != len(l.log2phys) {
		return fmt.Errorf("arch: layout occupies %d physical qubits for %d logical", occupied, len(l.log2phys))
	}
	return nil
}

// String renders the assignment compactly.
func (l *Layout) String() string {
	return fmt.Sprintf("layout%v", l.log2phys)
}
