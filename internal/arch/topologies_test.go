package arch

import (
	"strings"
	"testing"
)

func TestBuiltinDevicesAreValid(t *testing.T) {
	devices := []*Device{
		IBMQ5(), IBMQ16Melbourne(), IBMQ20Tokyo(), Enfield6x6(), SycamoreQ54(),
		Grid("g", 3, 3), Linear(7), Ring(8),
	}
	for _, d := range devices {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestIBMQ5Shape(t *testing.T) {
	d := IBMQ5()
	if d.NumQubits != 5 || len(d.Edges) != 6 {
		t.Fatalf("Q5 has %d qubits, %d edges", d.NumQubits, len(d.Edges))
	}
	if d.Degree(2) != 4 {
		t.Errorf("bowtie centre degree = %d, want 4", d.Degree(2))
	}
}

func TestIBMQ16MelbourneShape(t *testing.T) {
	d := IBMQ16Melbourne()
	if d.NumQubits != 16 {
		t.Fatalf("Q16 has %d qubits", d.NumQubits)
	}
	// 7 top + 7 bottom + 8 rungs = 22 couplers.
	if len(d.Edges) != 22 {
		t.Errorf("Q16 has %d couplers, want 22", len(d.Edges))
	}
	// Ladder rungs: qubit c couples to 15-c.
	for c := 0; c < 8; c++ {
		if !d.Adjacent(c, 15-c) {
			t.Errorf("missing rung %d-%d", c, 15-c)
		}
	}
	if !d.Adjacent(0, 1) || !d.Adjacent(8, 9) {
		t.Error("missing row edges")
	}
	if d.Adjacent(7, 15) {
		t.Error("corner qubits 7 and 15 must not couple")
	}
	// Ladder diameter: 8 (corner to corner).
	if d.Diameter() != 8 {
		t.Errorf("Q16 diameter = %d, want 8", d.Diameter())
	}
}

func TestIBMQ20TokyoShape(t *testing.T) {
	d := IBMQ20Tokyo()
	if d.NumQubits != 20 {
		t.Fatalf("Q20 has %d qubits", d.NumQubits)
	}
	// 16 row + 15 column + 12 diagonal = 43 couplers.
	if len(d.Edges) != 43 {
		t.Errorf("Q20 has %d couplers, want 43", len(d.Edges))
	}
	for _, e := range [][2]int{{1, 7}, {2, 6}, {5, 11}, {6, 10}, {14, 18}} {
		if !d.Adjacent(e[0], e[1]) {
			t.Errorf("missing diagonal %v", e)
		}
	}
	// Dense diagonals keep the diameter small.
	if d.Diameter() > 4 {
		t.Errorf("Q20 diameter = %d, want <= 4", d.Diameter())
	}
}

func TestEnfield6x6Shape(t *testing.T) {
	d := Enfield6x6()
	if d.NumQubits != 36 {
		t.Fatalf("6x6 has %d qubits", d.NumQubits)
	}
	// Grid couplers: 2*6*5 = 60.
	if len(d.Edges) != 60 {
		t.Errorf("6x6 has %d couplers, want 60", len(d.Edges))
	}
	if d.Diameter() != 10 {
		t.Errorf("6x6 diameter = %d, want 10", d.Diameter())
	}
}

func TestSycamoreQ54Shape(t *testing.T) {
	d := SycamoreQ54()
	if d.NumQubits != 54 {
		t.Fatalf("Sycamore has %d qubits", d.NumQubits)
	}
	if !d.Connected() {
		t.Fatal("Sycamore model must be connected")
	}
	// Degree-4 interior, like the real diagonal lattice.
	maxDeg := 0
	for q := 0; q < d.NumQubits; q++ {
		if d.Degree(q) > maxDeg {
			maxDeg = d.Degree(q)
		}
	}
	if maxDeg != 4 {
		t.Errorf("max degree = %d, want 4", maxDeg)
	}
	if !d.HasCoords() {
		t.Error("Sycamore model should carry coords for Hfine")
	}
}

func TestEvaluationDevicesOrder(t *testing.T) {
	devs := EvaluationDevices()
	want := []string{"ibm-q16-melbourne", "enfield-6x6", "ibm-q20-tokyo", "google-q54-sycamore"}
	if len(devs) != len(want) {
		t.Fatalf("EvaluationDevices returned %d devices", len(devs))
	}
	for i, d := range devs {
		if d.Name != want[i] {
			t.Errorf("device %d = %s, want %s", i, d.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	cases := []struct {
		in     string
		want   string
		qubits int
	}{
		{"tokyo", "ibm-q20-tokyo", 20},
		{"Q20", "ibm-q20-tokyo", 20},
		{"melbourne", "ibm-q16-melbourne", 16},
		{"enfield", "enfield-6x6", 36},
		{"sycamore", "google-q54-sycamore", 54},
		{"q5", "ibm-q5", 5},
		{"grid3x4", "grid3x4", 12},
		{"linear9", "linear-9", 9},
		{"ring5", "ring-5", 5},
	}
	for _, tc := range cases {
		d, err := ByName(tc.in)
		if err != nil {
			t.Errorf("ByName(%q): %v", tc.in, err)
			continue
		}
		if d.Name != tc.want || d.NumQubits != tc.qubits {
			t.Errorf("ByName(%q) = %s/%d, want %s/%d", tc.in, d.Name, d.NumQubits, tc.want, tc.qubits)
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("unknown name accepted")
	} else if !strings.Contains(err.Error(), "known:") {
		t.Errorf("error should list known names: %v", err)
	}
}

func TestGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Grid(0,3) should panic")
		}
	}()
	Grid("bad", 0, 3)
}

func TestRingPanicsOnTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ring(2) should panic")
		}
	}()
	Ring(2)
}

func TestIBMQX4ByName(t *testing.T) {
	d, err := ByName("qx4")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "ibm-qx4" || !d.Directed() {
		t.Errorf("ByName(qx4) = %s directed=%v", d.Name, d.Directed())
	}
}
