package arch

import (
	"testing"

	"codar/internal/circuit"
)

// TestTableI pins the paper's Table I structure: the superconducting
// two-qubit gate is at least 2x the single-qubit gate, the ion-trap system
// is ~1000x slower than superconducting in absolute time but relatively
// slower on two-qubit gates, and the neutral-atom two-qubit gate is NOT
// slower than its single-qubit gate.
func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 3 {
		t.Fatalf("TableI has %d rows, want 3", len(rows))
	}
	byTech := make(map[Technology]TechnologyParams)
	for _, r := range rows {
		byTech[r.Technology] = r
	}
	sc := byTech[Superconducting]
	ion := byTech[IonTrap]
	atom := byTech[NeutralAtom]

	if sc.Time2Q < 2*sc.Time1Q {
		t.Errorf("superconducting 2q (%g) should be >= 2x 1q (%g)", sc.Time2Q, sc.Time1Q)
	}
	if ion.Time1Q < 100*sc.Time1Q {
		t.Errorf("ion trap (%g ns) should be orders of magnitude slower than superconducting (%g ns)", ion.Time1Q, sc.Time1Q)
	}
	if atom.Time2Q > 2*atom.Time1Q*4 {
		t.Errorf("neutral atom 2q should not be much slower than 1q")
	}
	// Coherence: ion trap executes more gates before decoherence.
	if ion.T2/ion.Time2Q < sc.T2/sc.Time2Q {
		t.Error("ion trap should fit more 2q gates within T2 than superconducting")
	}
	// Fidelity sanity: all in (0, 1].
	for _, r := range rows {
		for _, f := range []float64{r.Fidelity1Q, r.Fidelity2Q, r.FidelityReadout} {
			if f <= 0 || f > 1 {
				t.Errorf("%v: fidelity %g out of range", r.Technology, f)
			}
		}
		if err := r.Durations.Validate(); err != nil {
			t.Errorf("%v: %v", r.Technology, err)
		}
	}
}

func TestParamsFor(t *testing.T) {
	p, err := ParamsFor(Superconducting)
	if err != nil {
		t.Fatal(err)
	}
	if p.Technology != Superconducting {
		t.Errorf("got %v", p.Technology)
	}
	if _, err := ParamsFor(Technology(99)); err == nil {
		t.Error("unknown technology accepted")
	}
}

func TestSuperconductingDurationsMatchPaperExamples(t *testing.T) {
	// The paper's motivating examples use T = 1 cycle, CX = 2 cycles,
	// SWAP = 6 cycles (Fig 1 and Fig 2).
	d := SuperconductingDurations()
	if d.Of(circuit.OpT) != 1 {
		t.Errorf("T duration = %d, want 1", d.Of(circuit.OpT))
	}
	if d.Of(circuit.OpCX) != 2 {
		t.Errorf("CX duration = %d, want 2", d.Of(circuit.OpCX))
	}
	if d.Of(circuit.OpSwap) != 6 {
		t.Errorf("SWAP duration = %d, want 6", d.Of(circuit.OpSwap))
	}
}

func TestDurationsOf(t *testing.T) {
	d := SuperconductingDurations()
	cases := []struct {
		op   circuit.Op
		want int
	}{
		{circuit.OpH, 1},
		{circuit.OpU3, 1},
		{circuit.OpCX, 2},
		{circuit.OpCZ, 2},
		{circuit.OpCP, 2},
		{circuit.OpSwap, 6},
		{circuit.OpMeasure, 5},
		{circuit.OpReset, 5},
		{circuit.OpBarrier, 0},
		{circuit.OpCCX, 14}, // 6*2 + 2*1
	}
	for _, tc := range cases {
		if got := d.Of(tc.op); got != tc.want {
			t.Errorf("Of(%v) = %d, want %d", tc.op, got, tc.want)
		}
	}
}

func TestDurationsOverride(t *testing.T) {
	d := SuperconductingDurations().WithOverride(circuit.OpCZ, 3)
	if d.Of(circuit.OpCZ) != 3 {
		t.Errorf("override ignored: %d", d.Of(circuit.OpCZ))
	}
	if d.Of(circuit.OpCX) != 2 {
		t.Errorf("override leaked to CX: %d", d.Of(circuit.OpCX))
	}
	// The original is unchanged.
	if SuperconductingDurations().Of(circuit.OpCZ) != 2 {
		t.Error("WithOverride mutated a shared value")
	}
	// Chained overrides accumulate.
	d2 := d.WithOverride(circuit.OpH, 4)
	if d2.Of(circuit.OpCZ) != 3 || d2.Of(circuit.OpH) != 4 {
		t.Error("chained overrides lost")
	}
}

func TestDurationsValidate(t *testing.T) {
	good := SuperconductingDurations()
	if err := good.Validate(); err != nil {
		t.Errorf("valid durations rejected: %v", err)
	}
	bad := Durations{Single: 0, Two: 2, Swap: 6}
	if err := bad.Validate(); err == nil {
		t.Error("zero single duration accepted")
	}
	neg := good.WithOverride(circuit.OpH, -1)
	if err := neg.Validate(); err == nil {
		t.Error("negative override accepted")
	}
}

func TestPresetShapes(t *testing.T) {
	// Ion trap: 2q much slower than 1q; swap = 3x 2q.
	ion := IonTrapDurations()
	if ion.Two < 10*ion.Single || ion.Swap != 3*ion.Two {
		t.Errorf("ion preset shape wrong: %+v", ion)
	}
	// Neutral atom: 2q not slower than 1q.
	atom := NeutralAtomDurations()
	if atom.Two > atom.Single {
		t.Errorf("neutral atom 2q should not exceed 1q: %+v", atom)
	}
	// Uniform: weighted depth == depth.
	u := UniformDurations()
	if u.Of(circuit.OpH) != u.Of(circuit.OpCX) || u.Of(circuit.OpSwap) != 1 {
		t.Errorf("uniform preset not uniform: %+v", u)
	}
}
