// Package arch implements the paper's Multi-architecture Adaptive Quantum
// Abstract Machine (maQAM, §III): a device is a coupling graph M = (QH, EH)
// over physical qubits together with a configurable gate-duration map τ and
// the all-pairs shortest-distance matrix D used by the CODAR heuristics.
// Built-in models cover the paper's four evaluation architectures (IBM Q16
// Melbourne, Enfield 6×6, IBM Q20 Tokyo, Google Q54 Sycamore) plus generic
// grids, lines and rings, and the technology parameter data of Table I.
package arch

import (
	"fmt"
	"math"
	"sort"

	"codar/internal/circuit"
)

// Infinity is the distance reported between disconnected qubits
// (the paper's INT_MAX). It is small enough that sums of distances
// never overflow int.
const Infinity = math.MaxInt32 / 4

// Coord is a 2-D lattice coordinate used by the Hfine heuristic
// (horizontal/vertical distance, paper Eq. 2).
type Coord struct {
	Row, Col int
}

// Device is the static structure As = (QH, G, M, τ, D) of the maQAM.
type Device struct {
	// Name identifies the device in reports.
	Name string
	// NumQubits is |QH|.
	NumQubits int
	// Edges are the undirected coupling pairs (a < b, sorted).
	Edges [][2]int
	// Durations is the gate-duration map τ in quantum clock cycles.
	Durations Durations

	adj [][]int
	// edgeIdx is the dense coupler-index table: edgeIdx[a*NumQubits+b] is
	// the stable index of edge (a, b) in both orientations, or -1 when the
	// pair is uncoupled. A flat array instead of a map keeps Adjacent and
	// EdgeIndex — both on the SWAP-search hot path — a single indexed load.
	edgeIdx []int32
	// dist is the all-pairs distance matrix D, stored row-major in one
	// contiguous allocation (dist[a*NumQubits+b]) so the heuristics' inner
	// loops index one backing array instead of chasing per-row pointers.
	dist   []int32
	coords []Coord
	// cxDir, when non-nil, restricts native CX orientation: cxDir[[2]int{a,b}]
	// is true iff CX with control a and target b is directly implementable.
	// Routing treats couplers as undirected (a reversed CX costs four extra
	// H gates, not a SWAP); see internal/orient.
	cxDir map[[2]int]bool
}

// NewDevice builds a device from an undirected edge list. Durations default
// to the superconducting preset; coordinates are optional (see SetCoords).
// Self-loops and out-of-range endpoints are rejected; duplicate edges are
// merged.
func NewDevice(name string, numQubits int, edges [][2]int) (*Device, error) {
	if numQubits <= 0 {
		return nil, fmt.Errorf("arch: device %q: non-positive qubit count %d", name, numQubits)
	}
	d := &Device{
		Name:      name,
		NumQubits: numQubits,
		Durations: SuperconductingDurations(),
		adj:       make([][]int, numQubits),
		edgeIdx:   make([]int32, numQubits*numQubits),
	}
	for i := range d.edgeIdx {
		d.edgeIdx[i] = -1
	}
	seen := make(map[[2]int]bool)
	for _, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		if a == b {
			return nil, fmt.Errorf("arch: device %q: self-loop on qubit %d", name, a)
		}
		if a < 0 || b >= numQubits {
			return nil, fmt.Errorf("arch: device %q: edge (%d,%d) out of range [0,%d)", name, a, b, numQubits)
		}
		key := [2]int{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		d.Edges = append(d.Edges, key)
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i][0] != d.Edges[j][0] {
			return d.Edges[i][0] < d.Edges[j][0]
		}
		return d.Edges[i][1] < d.Edges[j][1]
	})
	for id, e := range d.Edges {
		d.adj[e[0]] = append(d.adj[e[0]], e[1])
		d.adj[e[1]] = append(d.adj[e[1]], e[0])
		d.edgeIdx[e[0]*numQubits+e[1]] = int32(id)
		d.edgeIdx[e[1]*numQubits+e[0]] = int32(id)
	}
	for q := range d.adj {
		sort.Ints(d.adj[q])
	}
	d.computeDistances()
	return d, nil
}

// MustNewDevice is NewDevice that panics on error; for package-internal
// construction of the vetted built-in topologies.
func MustNewDevice(name string, numQubits int, edges [][2]int) *Device {
	d, err := NewDevice(name, numQubits, edges)
	if err != nil {
		panic(err)
	}
	return d
}

// computeDistances fills the all-pairs shortest-path matrix D by BFS from
// every qubit (unit edge weights).
func (d *Device) computeDistances() {
	n := d.NumQubits
	d.dist = make([]int32, n*n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		row := d.dist[s*n : (s+1)*n]
		for i := range row {
			row[i] = Infinity
		}
		row[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range d.adj[u] {
				if row[v] == Infinity {
					row[v] = row[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
}

// SetCoords attaches 2-D lattice coordinates (one per qubit) enabling the
// Hfine heuristic. Passing a slice of the wrong length is an error.
func (d *Device) SetCoords(coords []Coord) error {
	if len(coords) != d.NumQubits {
		return fmt.Errorf("arch: device %q: %d coords for %d qubits", d.Name, len(coords), d.NumQubits)
	}
	d.coords = append([]Coord(nil), coords...)
	return nil
}

// HasCoords reports whether the device carries 2-D coordinates.
func (d *Device) HasCoords() bool { return d.coords != nil }

// CoordOf returns the lattice coordinate of qubit q. It panics when the
// device has no coordinates; guard with HasCoords.
func (d *Device) CoordOf(q int) Coord { return d.coords[q] }

// HD returns the horizontal (column) distance between two physical qubits
// on the lattice; 0 when the device has no coordinates.
func (d *Device) HD(a, b int) int {
	if d.coords == nil {
		return 0
	}
	h := d.coords[a].Col - d.coords[b].Col
	if h < 0 {
		h = -h
	}
	return h
}

// VD returns the vertical (row) distance between two physical qubits on the
// lattice; 0 when the device has no coordinates.
func (d *Device) VD(a, b int) int {
	if d.coords == nil {
		return 0
	}
	v := d.coords[a].Row - d.coords[b].Row
	if v < 0 {
		v = -v
	}
	return v
}

// Adjacent reports whether a two-qubit gate may be applied directly between
// physical qubits a and b; false for out-of-range indices.
func (d *Device) Adjacent(a, b int) bool {
	if uint(a) >= uint(d.NumQubits) || uint(b) >= uint(d.NumQubits) {
		return false
	}
	return d.edgeIdx[a*d.NumQubits+b] >= 0
}

// Neighbors returns the sorted adjacency list of qubit q. The returned
// slice is shared; callers must not modify it.
func (d *Device) Neighbors(q int) []int { return d.adj[q] }

// Degree returns the number of couplers attached to qubit q.
func (d *Device) Degree(q int) int { return len(d.adj[q]) }

// Distance returns the shortest-path length D(a, b) in the coupling graph,
// or Infinity when a and b are disconnected.
func (d *Device) Distance(a, b int) int { return int(d.dist[a*d.NumQubits+b]) }

// DistTable returns the flat row-major hop-distance matrix
// (table[a*NumQubits+b]) — the same layout as CostModel.Table, so the
// mappers select one []int32 at construction and index it in their hot
// loops with no per-lookup dispatch. The slice is shared and must not be
// modified.
func (d *Device) DistTable() []int32 { return d.dist }

// EdgeIndex returns the stable index of the undirected edge (a, b), used
// for deterministic tie-breaking; ok is false when the pair is not coupled
// or out of range.
func (d *Device) EdgeIndex(a, b int) (int, bool) {
	if uint(a) >= uint(d.NumQubits) || uint(b) >= uint(d.NumQubits) {
		return -1, false
	}
	id := d.edgeIdx[a*d.NumQubits+b]
	return int(id), id >= 0
}

// Connected reports whether the coupling graph is a single component.
func (d *Device) Connected() bool {
	for q := 1; q < d.NumQubits; q++ {
		if d.dist[q] >= Infinity {
			return false
		}
	}
	return true
}

// Diameter returns the maximum finite pairwise distance.
func (d *Device) Diameter() int {
	max := 0
	n := d.NumQubits
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if dd := int(d.dist[a*n+b]); dd < Infinity && dd > max {
				max = dd
			}
		}
	}
	return max
}

// ShortestPath returns one BFS shortest path from a to b, inclusive of both
// endpoints, or nil when disconnected. Ties are broken toward the
// lowest-numbered neighbour, so the result is deterministic. The
// backtracking walk reads the target's contiguous distance row directly.
func (d *Device) ShortestPath(a, b int) []int {
	n := d.NumQubits
	toB := d.dist[b*n : (b+1)*n] // symmetric: toB[q] == D(q, b)
	if toB[a] >= Infinity {
		return nil
	}
	path := []int{a}
	cur := a
	for cur != b {
		next := -1
		for _, v := range d.adj[cur] {
			if toB[v] == toB[cur]-1 {
				next = v
				break
			}
		}
		if next < 0 {
			return nil // unreachable given dist invariants
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// Duration returns τ(op) in clock cycles for this device.
func (d *Device) Duration(op circuit.Op) int { return d.Durations.Of(op) }

// SetDirections declares the natively implementable CX orientations
// (control → target), one per coupler, for devices with directed coupling
// such as the early 5-qubit IBM QX chips (paper §II-A). Every directed
// pair must be an existing coupler and each coupler must appear in at
// least one direction. Calling SetDirections(nil) restores symmetric CX.
func (d *Device) SetDirections(pairs [][2]int) error {
	if pairs == nil {
		d.cxDir = nil
		return nil
	}
	dir := make(map[[2]int]bool, len(pairs))
	covered := make(map[int]bool)
	for _, p := range pairs {
		id, ok := d.EdgeIndex(p[0], p[1])
		if !ok {
			return fmt.Errorf("arch: %q: direction %v is not a coupler", d.Name, p)
		}
		dir[p] = true
		covered[id] = true
	}
	if len(covered) != len(d.Edges) {
		return fmt.Errorf("arch: %q: %d of %d couplers have no CX direction", d.Name, len(d.Edges)-len(covered), len(d.Edges))
	}
	d.cxDir = dir
	return nil
}

// Directed reports whether the device restricts CX orientation.
func (d *Device) Directed() bool { return d.cxDir != nil }

// CXAllowed reports whether a CX with control a and target b is natively
// implementable. On undirected devices it equals Adjacent.
func (d *Device) CXAllowed(a, b int) bool {
	if !d.Adjacent(a, b) {
		return false
	}
	if d.cxDir == nil {
		return true
	}
	return d.cxDir[[2]int{a, b}]
}

// String summarises the device.
func (d *Device) String() string {
	return fmt.Sprintf("%s: %d qubits, %d couplers, diameter %d", d.Name, d.NumQubits, len(d.Edges), d.Diameter())
}

// Validate performs internal consistency checks (used by tests and when
// loading user-defined devices).
func (d *Device) Validate() error {
	if d.NumQubits <= 0 {
		return fmt.Errorf("arch: %q: no qubits", d.Name)
	}
	if !d.Connected() {
		return fmt.Errorf("arch: %q: coupling graph is disconnected", d.Name)
	}
	if err := d.Durations.Validate(); err != nil {
		return fmt.Errorf("arch: %q: %w", d.Name, err)
	}
	return nil
}
