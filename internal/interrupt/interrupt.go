// Package interrupt is the cancellation vocabulary shared by the mapping
// pipeline: the typed errors a canceled or deadline-exceeded run returns,
// and an amortized context checker cheap enough to sit inside the mappers'
// hot loops.
//
// The mappers (internal/core, internal/sabre) simulate tens of thousands of
// cycles or swap rounds per mapping; polling a context's done channel on
// every iteration would put a select on the hottest path in the tree. The
// Checker instead counts calls and polls only every power-of-two-th call,
// so the common case is one increment and one mask test, and an inactive
// checker (nil context, or a context that can never be canceled) is a
// single branch. The cadence bounds cancellation latency to the cost of
// `every` loop iterations — microseconds for realistic circuits — which is
// what lets a dead client's mapping abort within milliseconds without
// perturbing the bit-identical output of uncanceled runs (DESIGN.md §11).
package interrupt

import (
	"context"
	"fmt"
)

// ErrCanceled is returned by a mapping run abandoned because its context
// was canceled (client disconnect, portfolio abandon, service shutdown).
// It wraps context.Canceled, so errors.Is works against either sentinel.
var ErrCanceled = fmt.Errorf("mapping canceled: %w", context.Canceled)

// ErrDeadline is returned by a mapping run abandoned because its context's
// deadline passed. It wraps context.DeadlineExceeded, so errors.Is works
// against either sentinel.
var ErrDeadline = fmt.Errorf("mapping deadline exceeded: %w", context.DeadlineExceeded)

// Classify maps a context's error to the pipeline's typed sentinels:
// ErrCanceled, ErrDeadline, or nil when ctx is nil or still live. Any other
// (custom) context error is returned as-is.
func Classify(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	switch err := ctx.Err(); err {
	case nil:
		return nil
	case context.Canceled:
		return ErrCanceled
	case context.DeadlineExceeded:
		return ErrDeadline
	default:
		return err
	}
}

// Checker polls a context at an amortized cadence. The zero value (and any
// checker built from a nil or never-done context) is inactive: Check always
// returns nil at the cost of one branch. Once the context fires, Check
// returns the classified error on every subsequent call (sticky), so a loop
// can treat it as its abort condition.
//
// A Checker is not safe for concurrent use; each mapping run owns its own.
type Checker struct {
	done <-chan struct{}
	ctx  context.Context
	mask uint32
	n    uint32
	err  error
}

// NewChecker builds a checker that polls ctx every `every` Check calls
// (rounded up to a power of two; every <= 1 polls on every call). A nil
// ctx, or one whose Done returns nil, yields an inactive checker.
func NewChecker(ctx context.Context, every uint32) Checker {
	if ctx == nil {
		return Checker{}
	}
	done := ctx.Done()
	if done == nil {
		return Checker{}
	}
	mask := uint32(1)
	for mask < every {
		mask <<= 1
	}
	return Checker{done: done, ctx: ctx, mask: mask - 1}
}

// Check returns the context's classified error once it has fired, nil
// before then. The done channel is polled only every `every`-th call; all
// other calls cost an increment and a mask test.
func (c *Checker) Check() error {
	if c.done == nil {
		return c.err
	}
	c.n++
	if c.n&c.mask != 0 {
		return nil
	}
	select {
	case <-c.done:
		c.err = Classify(c.ctx)
		c.done = nil
		return c.err
	default:
		return nil
	}
}

// Err returns the sticky error observed by Check, without polling.
func (c *Checker) Err() error { return c.err }
