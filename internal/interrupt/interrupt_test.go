package interrupt

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	if err := Classify(nil); err != nil {
		t.Fatalf("Classify(nil) = %v, want nil", err)
	}
	if err := Classify(context.Background()); err != nil {
		t.Fatalf("Classify(background) = %v, want nil", err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Classify(canceled); err != ErrCanceled {
		t.Fatalf("Classify(canceled) = %v, want ErrCanceled", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if err := Classify(expired); err != ErrDeadline {
		t.Fatalf("Classify(expired) = %v, want ErrDeadline", err)
	}
}

func TestTypedErrorsWrapContextSentinels(t *testing.T) {
	if !errors.Is(ErrCanceled, context.Canceled) {
		t.Error("ErrCanceled must wrap context.Canceled")
	}
	if !errors.Is(ErrDeadline, context.DeadlineExceeded) {
		t.Error("ErrDeadline must wrap context.DeadlineExceeded")
	}
	if errors.Is(ErrCanceled, context.DeadlineExceeded) || errors.Is(ErrDeadline, context.Canceled) {
		t.Error("sentinels must stay distinct")
	}
}

func TestInactiveChecker(t *testing.T) {
	var zero Checker
	for i := 0; i < 1000; i++ {
		if err := zero.Check(); err != nil {
			t.Fatalf("zero checker fired: %v", err)
		}
	}
	bg := NewChecker(context.Background(), 64)
	for i := 0; i < 1000; i++ {
		if err := bg.Check(); err != nil {
			t.Fatalf("background checker fired: %v", err)
		}
	}
}

func TestCheckerFiresWithinCadence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, 64)
	cancel()
	// The poll happens at most every 64 calls (rounded to a power of two),
	// so the error must surface within 2*64 calls of the cancellation.
	for i := 0; i < 128; i++ {
		if err := c.Check(); err != nil {
			if err != ErrCanceled {
				t.Fatalf("Check = %v, want ErrCanceled", err)
			}
			// Sticky: every later call returns the same error cheaply.
			for j := 0; j < 10; j++ {
				if err := c.Check(); err != ErrCanceled {
					t.Fatalf("sticky Check = %v, want ErrCanceled", err)
				}
			}
			if c.Err() != ErrCanceled {
				t.Fatalf("Err() = %v, want ErrCanceled", c.Err())
			}
			return
		}
	}
	t.Fatal("checker never observed the canceled context within 2x cadence")
}

func TestCheckerEveryOne(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, 1)
	if err := c.Check(); err != nil {
		t.Fatalf("live context: Check = %v", err)
	}
	cancel()
	// every=1 rounds to mask 0: the very next call must observe it.
	if err := c.Check(); err != ErrCanceled {
		t.Fatalf("Check after cancel = %v, want ErrCanceled", err)
	}
}

func TestCheckerCustomCause(t *testing.T) {
	cause := errors.New("upstream gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	c := NewChecker(ctx, 1)
	var err error
	for i := 0; i < 4 && err == nil; i++ {
		err = c.Check()
	}
	// WithCancelCause still reports context.Canceled from Err(); the typed
	// sentinel is what the pipeline keys on.
	if err != ErrCanceled {
		t.Fatalf("Check = %v, want ErrCanceled", err)
	}
}
