package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Sample draws shots measurement outcomes (full-register, computational
// basis) from the state and returns a basis-index → count histogram. The
// state is not collapsed. Deterministic for a fixed seed.
func (s *State) Sample(shots int, seed int64) (map[int]int, error) {
	if shots <= 0 {
		return nil, fmt.Errorf("sim: need at least one shot")
	}
	// Cumulative distribution over basis states.
	cdf := make([]float64, s.Len())
	acc := 0.0
	for i := range s.amp {
		acc += s.Probability(i)
		cdf[i] = acc
	}
	if acc <= 0 {
		return nil, fmt.Errorf("sim: zero-norm state")
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[int]int)
	for k := 0; k < shots; k++ {
		r := rng.Float64() * acc
		idx := sort.SearchFloat64s(cdf, r)
		if idx >= len(cdf) {
			idx = len(cdf) - 1
		}
		counts[idx]++
	}
	return counts, nil
}

// TopOutcomes returns the most probable basis states in descending
// probability order, at most k entries, each as (index, probability).
func (s *State) TopOutcomes(k int) [][2]float64 {
	type entry struct {
		idx int
		p   float64
	}
	entries := make([]entry, 0, s.Len())
	for i := 0; i < s.Len(); i++ {
		if p := s.Probability(i); p > 1e-12 {
			entries = append(entries, entry{i, p})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].p != entries[b].p {
			return entries[a].p > entries[b].p
		}
		return entries[a].idx < entries[b].idx
	})
	if k > len(entries) {
		k = len(entries)
	}
	out := make([][2]float64, k)
	for i := 0; i < k; i++ {
		out[i] = [2]float64{float64(entries[i].idx), entries[i].p}
	}
	return out
}
