package sim

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"codar/internal/circuit"
)

const eps = 1e-12

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < 1e-9 }

func TestNewStateBounds(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("0 qubits accepted")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Error("oversized state accepted")
	}
	s := MustNewState(3)
	if s.Len() != 8 || s.Amplitude(0) != 1 {
		t.Error("initial state is not |000>")
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Error("initial norm != 1")
	}
}

func TestHGate(t *testing.T) {
	s := MustNewState(1)
	if err := s.Apply(circuit.New1Q(circuit.OpH, 0)); err != nil {
		t.Fatal(err)
	}
	inv := complex(1/math.Sqrt2, 0)
	if !approx(s.Amplitude(0), inv) || !approx(s.Amplitude(1), inv) {
		t.Errorf("H|0> = (%v, %v)", s.Amplitude(0), s.Amplitude(1))
	}
	// H is self-inverse.
	if err := s.Apply(circuit.New1Q(circuit.OpH, 0)); err != nil {
		t.Fatal(err)
	}
	if !approx(s.Amplitude(0), 1) {
		t.Error("HH != I")
	}
}

func TestBellState(t *testing.T) {
	c := circuit.New(2).H(0).CX(0, 1)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	inv := complex(1/math.Sqrt2, 0)
	// Qubit 0 = LSB: |00> -> index 0, |11> -> index 3.
	if !approx(s.Amplitude(0), inv) || !approx(s.Amplitude(3), inv) {
		t.Errorf("Bell amplitudes: %v %v %v %v", s.Amplitude(0), s.Amplitude(1), s.Amplitude(2), s.Amplitude(3))
	}
	if !approx(s.Amplitude(1), 0) || !approx(s.Amplitude(2), 0) {
		t.Error("Bell cross terms non-zero")
	}
}

func TestGHZ(t *testing.T) {
	n := 5
	c := circuit.New(n).H(0)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	inv := complex(1/math.Sqrt2, 0)
	if !approx(s.Amplitude(0), inv) || !approx(s.Amplitude((1<<n)-1), inv) {
		t.Error("GHZ state malformed")
	}
}

func TestPauliActions(t *testing.T) {
	// X|0> = |1>
	s := MustNewState(1)
	s.Apply(circuit.New1Q(circuit.OpX, 0))
	if !approx(s.Amplitude(1), 1) {
		t.Error("X|0> != |1>")
	}
	// Z|1> = -|1>
	s.Apply(circuit.New1Q(circuit.OpZ, 0))
	if !approx(s.Amplitude(1), -1) {
		t.Error("Z|1> != -|1>")
	}
	// Y|0> = i|1>
	s2 := MustNewState(1)
	s2.Apply(circuit.New1Q(circuit.OpY, 0))
	if !approx(s2.Amplitude(1), 1i) {
		t.Error("Y|0> != i|1>")
	}
	// S|1> = i|1>, T^2 = S.
	s3 := MustNewState(1)
	s3.Apply(circuit.New1Q(circuit.OpX, 0))
	s3.Apply(circuit.New1Q(circuit.OpT, 0))
	s3.Apply(circuit.New1Q(circuit.OpT, 0))
	if !approx(s3.Amplitude(1), 1i) {
		t.Error("TT|1> != i|1>")
	}
}

func TestCXControlTargetOrientation(t *testing.T) {
	// CX(control=0, target=1) on |q1 q0> = |01> (index 1: qubit0=1) flips
	// qubit 1 -> index 3.
	s := MustNewState(2)
	s.Apply(circuit.New1Q(circuit.OpX, 0))
	s.Apply(circuit.New2Q(circuit.OpCX, 0, 1))
	if !approx(s.Amplitude(3), 1) {
		t.Errorf("CX(0,1)X(0)|00> amplitudes: %v %v %v %v", s.Amplitude(0), s.Amplitude(1), s.Amplitude(2), s.Amplitude(3))
	}
	// Control clear: no flip.
	s2 := MustNewState(2)
	s2.Apply(circuit.New2Q(circuit.OpCX, 0, 1))
	if !approx(s2.Amplitude(0), 1) {
		t.Error("CX fired with clear control")
	}
}

func TestSwapGate(t *testing.T) {
	s := MustNewState(2)
	s.Apply(circuit.New1Q(circuit.OpX, 0)) // |01> (index 1)
	s.Apply(circuit.New2Q(circuit.OpSwap, 0, 1))
	if !approx(s.Amplitude(2), 1) { // |10> (index 2)
		t.Error("SWAP failed")
	}
}

func TestSwapEqualsThreeCX(t *testing.T) {
	f := func(seed int64) bool {
		a := randomState(2, seed)
		b := a.Clone()
		a.Apply(circuit.New2Q(circuit.OpSwap, 0, 1))
		b.Apply(circuit.New2Q(circuit.OpCX, 0, 1))
		b.Apply(circuit.New2Q(circuit.OpCX, 1, 0))
		b.Apply(circuit.New2Q(circuit.OpCX, 0, 1))
		return a.EqualUpToPhase(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCZAndCPPhases(t *testing.T) {
	// CZ|11> = -|11>.
	s := MustNewState(2)
	s.Apply(circuit.New1Q(circuit.OpX, 0))
	s.Apply(circuit.New1Q(circuit.OpX, 1))
	s.Apply(circuit.New2Q(circuit.OpCZ, 0, 1))
	if !approx(s.Amplitude(3), -1) {
		t.Error("CZ|11> != -|11>")
	}
	// CP(pi) == CZ.
	s2 := MustNewState(2)
	s2.Apply(circuit.New1Q(circuit.OpX, 0))
	s2.Apply(circuit.New1Q(circuit.OpX, 1))
	s2.Apply(circuit.New2QP(circuit.OpCP, 0, 1, math.Pi))
	if !approx(s2.Amplitude(3), -1) {
		t.Error("CP(pi)|11> != -|11>")
	}
}

func TestCCX(t *testing.T) {
	// CCX fires only when both controls are set.
	for mask := 0; mask < 4; mask++ {
		s := MustNewState(3)
		if mask&1 != 0 {
			s.Apply(circuit.New1Q(circuit.OpX, 0))
		}
		if mask&2 != 0 {
			s.Apply(circuit.New1Q(circuit.OpX, 1))
		}
		s.Apply(circuit.Gate{Op: circuit.OpCCX, Qubits: []int{0, 1, 2}})
		want := mask
		if mask == 3 {
			want = mask | 4
		}
		if !approx(s.Amplitude(want), 1) {
			t.Errorf("CCX with controls %02b: expected basis %d", mask, want)
		}
	}
}

func TestUnitaryPreservesNorm(t *testing.T) {
	ops := []circuit.Gate{
		circuit.New1Q(circuit.OpH, 0),
		circuit.New1Q(circuit.OpSX, 1),
		circuit.New1QP(circuit.OpRX, 0, 0.7),
		circuit.New1QP(circuit.OpRY, 1, 1.1),
		circuit.New1QP(circuit.OpRZ, 2, 2.2),
		circuit.New1QP(circuit.OpU2, 0, 0.4, 1.3),
		circuit.New1QP(circuit.OpU3, 2, 0.3, 0.9, 2.1),
		circuit.New2Q(circuit.OpCX, 0, 2),
		circuit.New2Q(circuit.OpCZ, 1, 2),
		circuit.New2QP(circuit.OpCP, 0, 1, 0.8),
		circuit.New2QP(circuit.OpRZZ, 1, 2, 1.7),
		circuit.Gate{Op: circuit.OpCCX, Qubits: []int{0, 1, 2}},
	}
	f := func(seed int64) bool {
		s := randomState(3, seed)
		for _, g := range ops {
			if err := s.Apply(g); err != nil {
				return false
			}
			if math.Abs(s.Norm()-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestU3Specialisations(t *testing.T) {
	// u3(0,0,l) acts like u1(l) up to global phase.
	f := func(seed int64) bool {
		l := float64(int(uint64(seed)%16)) * 0.39
		a := randomState(1, seed)
		b := a.Clone()
		a.Apply(circuit.New1QP(circuit.OpU3, 0, 0, 0, l))
		b.Apply(circuit.New1QP(circuit.OpU1, 0, l))
		return a.EqualUpToPhase(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
	// rz(l) equals u1(l) up to global phase.
	g := func(seed int64) bool {
		l := float64(int(uint64(seed)%16)) * 0.17
		a := randomState(1, seed)
		b := a.Clone()
		a.Apply(circuit.New1QP(circuit.OpRZ, 0, l))
		b.Apply(circuit.New1QP(circuit.OpU1, 0, l))
		return a.EqualUpToPhase(b, 1e-9)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestApplyRejectsNonUnitary(t *testing.T) {
	s := MustNewState(1)
	if err := s.Apply(circuit.Gate{Op: circuit.OpMeasure, Qubits: []int{0}}); err == nil {
		t.Error("measure accepted by Apply")
	}
	if err := s.Apply(circuit.Gate{Op: circuit.OpBarrier, Qubits: []int{0}}); err != nil {
		t.Error("barrier should be a no-op")
	}
}

func TestDecomposeEquivalence(t *testing.T) {
	// Lowered circuits must be statevector-equivalent to their originals.
	f := func(seed int64) bool {
		s := uint64(seed)*0x9E3779B97F4A7C15 + 3
		next := func(mod int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(mod))
		}
		c := circuit.New(4)
		for i := 0; i < 12; i++ {
			switch next(5) {
			case 0:
				a, b, tt := next(4), 0, 0
				b = (a + 1 + next(3)) % 4
				tt = (b + 1 + next(2)) % 4
				if tt == a {
					tt = (tt + 1) % 4
				}
				if a != b && b != tt && a != tt {
					c.CCX(a, b, tt)
				}
			case 1:
				a := next(4)
				b := (a + 1 + next(3)) % 4
				c.CP(float64(next(8))*0.3, a, b)
			case 2:
				a := next(4)
				b := (a + 1 + next(3)) % 4
				c.RZZ(float64(next(8))*0.3, a, b)
			case 3:
				a := next(4)
				b := (a + 1 + next(3)) % 4
				c.Swap(a, b)
			default:
				c.H(next(4))
			}
		}
		orig, err := Run(c)
		if err != nil {
			return false
		}
		low, err := Run(circuit.Decompose(c))
		if err != nil {
			return false
		}
		return orig.EqualUpToPhase(low, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPermuteQubits(t *testing.T) {
	// Prepare |q2 q1 q0> = |001> and relabel qubit 0 <-> qubit 2.
	s := MustNewState(3)
	s.Apply(circuit.New1Q(circuit.OpX, 0))
	p, err := s.PermuteQubits([]int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.Amplitude(4), 1) {
		t.Errorf("permuted state wrong: want |100>")
	}
	// Identity permutation is a no-op.
	id, err := s.PermuteQubits([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(id.Amplitude(1), 1) {
		t.Error("identity permutation changed the state")
	}
	// Invalid permutations rejected.
	if _, err := s.PermuteQubits([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := s.PermuteQubits([]int{0, 0, 1}); err == nil {
		t.Error("non-bijective permutation accepted")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		st := randomState(4, seed)
		perm := []int{2, 0, 3, 1}
		inv := []int{1, 3, 0, 2} // inverse of perm
		p1, err := st.PermuteQubits(perm)
		if err != nil {
			return false
		}
		p2, err := p1.PermuteQubits(inv)
		if err != nil {
			return false
		}
		return st.EqualUpToPhase(p2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCommutationRulesSound cross-validates circuit.Commute against the
// simulator: whenever Commute(a, b) is true, applying a;b and b;a to every
// basis state must agree.
func TestCommutationRulesSound(t *testing.T) {
	gates := []circuit.Gate{
		circuit.New1Q(circuit.OpH, 0), circuit.New1Q(circuit.OpT, 0),
		circuit.New1Q(circuit.OpZ, 1), circuit.New1Q(circuit.OpX, 1),
		circuit.New1QP(circuit.OpRZ, 2, 0.7), circuit.New1QP(circuit.OpRX, 2, 0.9),
		circuit.New1Q(circuit.OpS, 2),
		circuit.New2Q(circuit.OpCX, 0, 1), circuit.New2Q(circuit.OpCX, 1, 2),
		circuit.New2Q(circuit.OpCX, 0, 2), circuit.New2Q(circuit.OpCX, 2, 0),
		circuit.New2Q(circuit.OpCZ, 0, 1), circuit.New2Q(circuit.OpCZ, 1, 2),
		circuit.New2QP(circuit.OpCP, 0, 2, 0.5), circuit.New2QP(circuit.OpRZZ, 1, 2, 1.3),
		circuit.New2Q(circuit.OpSwap, 0, 1),
	}
	for _, a := range gates {
		for _, b := range gates {
			if !a.SharesQubit(b) || !circuit.Commute(a, b) {
				continue
			}
			for basis := 0; basis < 8; basis++ {
				s1 := MustNewState(3)
				s1.SetAmplitude(0, 0)
				s1.SetAmplitude(basis, 1)
				s2 := s1.Clone()
				s1.Apply(a)
				s1.Apply(b)
				s2.Apply(b)
				s2.Apply(a)
				for i := 0; i < 8; i++ {
					if !approx(s1.Amplitude(i), s2.Amplitude(i)) {
						t.Fatalf("Commute(%v, %v) = true but AB != BA on basis %d", a, b, basis)
					}
				}
			}
		}
	}
}

// randomState builds a deterministic normalised random state.
func randomState(n int, seed int64) *State {
	s := MustNewState(n)
	r := uint64(seed)*0x2545F4914F6CDD1D + 1
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%1000)/500 - 1
	}
	for i := 0; i < s.Len(); i++ {
		s.SetAmplitude(i, complex(next(), next()))
	}
	s.Normalize()
	return s
}

func TestRXXUnitaryMatchesDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		theta := float64(int(uint64(seed)%63)) * 0.1
		g := circuit.New2QP(circuit.OpRXX, 0, 1, theta)
		a := randomState(2, seed)
		b := a.Clone()
		if err := a.Apply(g); err != nil {
			return false
		}
		// H-conjugated ZZ form.
		b.Apply(circuit.New1Q(circuit.OpH, 0))
		b.Apply(circuit.New1Q(circuit.OpH, 1))
		b.Apply(circuit.New2Q(circuit.OpCX, 0, 1))
		b.Apply(circuit.New1QP(circuit.OpRZ, 1, theta))
		b.Apply(circuit.New2Q(circuit.OpCX, 0, 1))
		b.Apply(circuit.New1Q(circuit.OpH, 0))
		b.Apply(circuit.New1Q(circuit.OpH, 1))
		return a.EqualUpToPhase(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRXXSpecialAngles(t *testing.T) {
	// rxx(0) == identity.
	s := randomState(2, 5)
	want := s.Clone()
	s.Apply(circuit.New2QP(circuit.OpRXX, 0, 1, 0))
	if !s.EqualUpToPhase(want, 1e-9) {
		t.Error("rxx(0) != I")
	}
	// rxx(2π) == identity up to global phase.
	s2 := randomState(2, 9)
	want2 := s2.Clone()
	s2.Apply(circuit.New2QP(circuit.OpRXX, 0, 1, 2*math.Pi))
	if !s2.EqualUpToPhase(want2, 1e-9) {
		t.Error("rxx(2pi) != I up to phase")
	}
}
