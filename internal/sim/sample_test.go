package sim

import (
	"math"
	"testing"

	"codar/internal/circuit"
)

func TestSampleBasisState(t *testing.T) {
	s := MustNewState(2)
	s.Apply(circuit.New1Q(circuit.OpX, 0))
	counts, err := s.Sample(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if counts[1] != 100 {
		t.Errorf("basis state sampling: %v", counts)
	}
}

func TestSampleGHZSplitsEvenly(t *testing.T) {
	c := circuit.New(3).H(0).CX(0, 1).CX(1, 2)
	st, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 4000
	counts, err := st.Sample(shots, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 {
		t.Fatalf("GHZ should sample two outcomes, got %v", counts)
	}
	p0 := float64(counts[0]) / shots
	if math.Abs(p0-0.5) > 0.05 {
		t.Errorf("P(|000>) = %g, want ~0.5", p0)
	}
	if counts[0]+counts[7] != shots {
		t.Errorf("leaked outcomes: %v", counts)
	}
}

func TestSampleDeterministicForSeed(t *testing.T) {
	c := circuit.New(2).H(0).H(1)
	st, _ := Run(c)
	c1, err := st.Sample(50, 42)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := st.Sample(50, 42)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("non-deterministic sampling: %v vs %v", c1, c2)
		}
	}
}

func TestSampleErrors(t *testing.T) {
	s := MustNewState(1)
	if _, err := s.Sample(0, 1); err == nil {
		t.Error("zero shots accepted")
	}
	z := MustNewState(1)
	z.SetAmplitude(0, 0)
	if _, err := z.Sample(10, 1); err == nil {
		t.Error("zero state accepted")
	}
}

func TestTopOutcomes(t *testing.T) {
	c := circuit.New(2).H(0) // |00> and |01> at 0.5 each
	st, _ := Run(c)
	top := st.TopOutcomes(5)
	if len(top) != 2 {
		t.Fatalf("TopOutcomes = %v", top)
	}
	if math.Abs(top[0][1]-0.5) > 1e-9 || math.Abs(top[1][1]-0.5) > 1e-9 {
		t.Errorf("probabilities: %v", top)
	}
	// Tie broken by index: |00> (0) before |01> (1).
	if int(top[0][0]) != 0 || int(top[1][0]) != 1 {
		t.Errorf("tie-break order: %v", top)
	}
	// k larger than support truncates; k=1 takes the best.
	if got := st.TopOutcomes(1); len(got) != 1 {
		t.Errorf("k=1: %v", got)
	}
}
