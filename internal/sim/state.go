// Package sim provides a statevector simulator for the gate set of the
// circuit package, plus a Monte-Carlo trajectory noise model (qubit
// dephasing T2 and amplitude damping T1) that substitutes for the OriginQ
// distributed noisy quantum virtual machine used in the paper's fidelity
// experiment (Fig 9). The simulator serves three roles:
//
//   - semantic equivalence checking of remapped circuits (internal/verify);
//   - cross-validation of the commutation rules in internal/circuit;
//   - the Fig 9 fidelity-maintenance experiment.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"codar/internal/circuit"
)

// State is a pure quantum state over n qubits as 2^n complex amplitudes.
// Qubit 0 is the least-significant bit of the basis index.
type State struct {
	n   int
	amp []complex128
}

// MaxQubits bounds statevector size (2^24 amplitudes = 256 MiB) to fail
// fast on accidental large allocations.
const MaxQubits = 24

// NewState returns |0...0> over n qubits.
func NewState(n int) (*State, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d out of range [1,%d]", n, MaxQubits)
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s, nil
}

// MustNewState is NewState panicking on error (tests, examples).
func MustNewState(n int) *State {
	s, err := NewState(n)
	if err != nil {
		panic(err)
	}
	return s
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Len returns the number of amplitudes (2^n).
func (s *State) Len() int { return len(s.amp) }

// Amplitude returns the amplitude of basis state i.
func (s *State) Amplitude(i int) complex128 { return s.amp[i] }

// SetAmplitude overwrites the amplitude of basis state i (tests).
func (s *State) SetAmplitude(i int, a complex128) { s.amp[i] = a }

// Clone returns an independent copy.
func (s *State) Clone() *State {
	return &State{n: s.n, amp: append([]complex128(nil), s.amp...)}
}

// Norm returns the 2-norm of the state (1 for physical states).
func (s *State) Norm() float64 {
	sum := 0.0
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Normalize rescales the state to unit norm (no-op on the zero vector).
func (s *State) Normalize() {
	n := s.Norm()
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range s.amp {
		s.amp[i] *= inv
	}
}

// Probability returns the probability of measuring basis state i.
func (s *State) Probability(i int) float64 {
	a := s.amp[i]
	return real(a)*real(a) + imag(a)*imag(a)
}

// ProbabilityOfOne returns the probability that qubit q reads 1.
func (s *State) ProbabilityOfOne(q int) float64 {
	bit := 1 << uint(q)
	p := 0.0
	for i, a := range s.amp {
		if i&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// InnerProduct returns <s|o>.
func (s *State) InnerProduct(o *State) complex128 {
	if s.n != o.n {
		panic("sim: inner product of mismatched states")
	}
	var sum complex128
	for i := range s.amp {
		sum += cmplx.Conj(s.amp[i]) * o.amp[i]
	}
	return sum
}

// Fidelity returns |<s|o>|^2.
func (s *State) Fidelity(o *State) float64 {
	ip := s.InnerProduct(o)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// EqualUpToPhase reports whether two states are equal modulo a global
// phase, within tolerance eps on fidelity.
func (s *State) EqualUpToPhase(o *State, eps float64) bool {
	return math.Abs(1-s.Fidelity(o)) < eps
}

// Apply applies a unitary gate (or barrier, a no-op) to the state.
// Measurements and resets are rejected: equivalence checking and fidelity
// simulation operate on the unitary part of circuits.
func (s *State) Apply(g circuit.Gate) error {
	switch {
	case g.Op == circuit.OpBarrier:
		return nil
	case g.Op == circuit.OpCCX:
		s.applyCCX(g.Qubits[0], g.Qubits[1], g.Qubits[2])
		return nil
	case g.Op.SingleQubit():
		u, err := Unitary1Q(g.Op, g.Params)
		if err != nil {
			return err
		}
		s.apply1Q(u, g.Qubits[0])
		return nil
	case g.Op.TwoQubit():
		u, err := Unitary2Q(g.Op, g.Params)
		if err != nil {
			return err
		}
		s.apply2Q(u, g.Qubits[0], g.Qubits[1])
		return nil
	default:
		return fmt.Errorf("sim: cannot apply non-unitary op %v", g.Op)
	}
}

// ApplyCircuit applies every gate of c in order.
func (s *State) ApplyCircuit(c *circuit.Circuit) error {
	if c.NumQubits > s.n {
		return fmt.Errorf("sim: circuit needs %d qubits, state has %d", c.NumQubits, s.n)
	}
	for i, g := range c.Gates {
		if err := s.Apply(g); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return nil
}

// apply1Q applies a 2x2 unitary to qubit q.
func (s *State) apply1Q(u [2][2]complex128, q int) {
	bit := 1 << uint(q)
	for i := 0; i < len(s.amp); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = u[0][0]*a0 + u[0][1]*a1
		s.amp[j] = u[1][0]*a0 + u[1][1]*a1
	}
}

// apply2Q applies a 4x4 unitary to qubits (q0, q1), with q0 indexing the
// more-significant bit of the 2-bit local basis |q0 q1>.
func (s *State) apply2Q(u [4][4]complex128, q0, q1 int) {
	b0 := 1 << uint(q0)
	b1 := 1 << uint(q1)
	for i := 0; i < len(s.amp); i++ {
		if i&b0 != 0 || i&b1 != 0 {
			continue
		}
		i00 := i
		i01 := i | b1
		i10 := i | b0
		i11 := i | b0 | b1
		a00, a01, a10, a11 := s.amp[i00], s.amp[i01], s.amp[i10], s.amp[i11]
		s.amp[i00] = u[0][0]*a00 + u[0][1]*a01 + u[0][2]*a10 + u[0][3]*a11
		s.amp[i01] = u[1][0]*a00 + u[1][1]*a01 + u[1][2]*a10 + u[1][3]*a11
		s.amp[i10] = u[2][0]*a00 + u[2][1]*a01 + u[2][2]*a10 + u[2][3]*a11
		s.amp[i11] = u[3][0]*a00 + u[3][1]*a01 + u[3][2]*a10 + u[3][3]*a11
	}
}

// applyCCX flips the target bit on basis states where both controls are set.
func (s *State) applyCCX(c0, c1, t int) {
	bc0 := 1 << uint(c0)
	bc1 := 1 << uint(c1)
	bt := 1 << uint(t)
	for i := 0; i < len(s.amp); i++ {
		if i&bc0 != 0 && i&bc1 != 0 && i&bt == 0 {
			j := i | bt
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// PermuteQubits returns a new state where logical qubit q of the result
// reads the amplitude of qubit perm[q] of the input — i.e. it relabels
// qubit perm[q] as qubit q. perm must be a permutation of [0, n).
func (s *State) PermuteQubits(perm []int) (*State, error) {
	if len(perm) != s.n {
		return nil, fmt.Errorf("sim: permutation length %d != %d qubits", len(perm), s.n)
	}
	seen := make([]bool, s.n)
	for _, p := range perm {
		if p < 0 || p >= s.n || seen[p] {
			return nil, fmt.Errorf("sim: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	out := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	for i := range s.amp {
		j := 0
		for q := 0; q < s.n; q++ {
			if i&(1<<uint(perm[q])) != 0 {
				j |= 1 << uint(q)
			}
		}
		out.amp[j] = s.amp[i]
	}
	return out, nil
}
