package sim

import (
	"math"
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
)

func durations() arch.Durations { return arch.SuperconductingDurations() }

func TestNoiseModelProbabilities(t *testing.T) {
	m := NoiseModel{T1: 100, T2: 50}
	if p := m.dephaseProb(0, 0); p != 0 {
		t.Errorf("dephaseProb(0) = %g", p)
	}
	// p -> 1/2 as dt -> inf.
	if p := m.dephaseProb(0, 1e9); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("dephaseProb(inf) = %g, want 0.5", p)
	}
	if g := m.dampGamma(0, 1e9); math.Abs(g-1) > 1e-9 {
		t.Errorf("dampGamma(inf) = %g, want 1", g)
	}
	// Monotone in dt.
	if m.dephaseProb(0, 10) >= m.dephaseProb(0, 100) {
		t.Error("dephaseProb not increasing")
	}
	// Disabled channels.
	off := NoiseModel{}
	if off.dephaseProb(0, 50) != 0 || off.dampGamma(0, 50) != 0 {
		t.Error("zero-valued model should be noiseless")
	}
	deph := DephasingDominant(40)
	if deph.dampGamma(0, 100) != 0 || deph.dephaseProb(0, 100) == 0 {
		t.Error("DephasingDominant misconfigured")
	}
	damp := DampingDominant(40)
	if damp.dephaseProb(0, 100) != 0 || damp.dampGamma(0, 100) == 0 {
		t.Error("DampingDominant misconfigured")
	}
}

func TestDampingDrivesToGround(t *testing.T) {
	// |1> under strong damping collapses to |0>.
	c := circuit.New(1).X(0)
	s := schedule.ASAP(c, durations())
	// Stretch exposure by lying about the makespan: add idle time.
	s.Makespan = 10_000
	m := DampingDominant(10)
	st, err := m.NoisyRun(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Probability(0) < 0.999 {
		t.Errorf("P(|0>) = %g after strong damping, want ~1", st.Probability(0))
	}
}

func TestDephasingPreservesComputationalBasis(t *testing.T) {
	// Dephasing leaves basis states invariant (only phases flip), so a
	// circuit ending in a basis state keeps fidelity 1 under pure
	// dephasing.
	c := circuit.New(2).X(0).X(1)
	s := schedule.ASAP(c, durations())
	s.Makespan = 1000
	m := DephasingDominant(5)
	f, err := m.FidelityEstimate(s, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.9999 {
		t.Errorf("basis-state fidelity under dephasing = %g, want ~1", f)
	}
}

func TestDephasingDegradesSuperposition(t *testing.T) {
	c := circuit.New(1).H(0)
	s := schedule.ASAP(c, durations())
	s.Makespan = 200
	m := DephasingDominant(20)
	f, err := m.FidelityEstimate(s, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if f > 0.95 {
		t.Errorf("superposition fidelity = %g, want visible degradation", f)
	}
	// In the long-time limit a dephased |+> has fidelity ~1/2.
	if f < 0.35 {
		t.Errorf("fidelity = %g collapsed below the 1/2 dephasing floor", f)
	}
}

func TestLongerScheduleLowerFidelity(t *testing.T) {
	// The same circuit stretched over a longer makespan must lose
	// fidelity: this is the mechanism behind Fig 9.
	c := circuit.New(2).H(0).CX(0, 1)
	fast := schedule.ASAP(c, durations())
	slow := schedule.ASAP(c, durations())
	slow.Makespan = fast.Makespan * 20
	m := NoiseModel{T1: 300, T2: 150}
	ff, err := m.FidelityEstimate(fast, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := m.FidelityEstimate(slow, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fs >= ff {
		t.Errorf("longer schedule should lose fidelity: fast %g, slow %g", ff, fs)
	}
}

func TestNoiselessFidelityIsOne(t *testing.T) {
	c := circuit.New(3).H(0).CX(0, 1).CX(1, 2).T(2)
	s := schedule.ASAP(c, durations())
	f, err := NoiseModel{}.FidelityEstimate(s, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-9 {
		t.Errorf("noiseless fidelity = %g", f)
	}
}

func TestFidelityDeterministicForSeed(t *testing.T) {
	c := circuit.New(2).H(0).CX(0, 1).T(1).H(0)
	s := schedule.ASAP(c, durations())
	m := NoiseModel{T1: 80, T2: 40}
	f1, err := m.FidelityEstimate(s, 50, 123)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.FidelityEstimate(s, 50, 123)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Errorf("fidelity not deterministic: %g vs %g", f1, f2)
	}
	if f1 <= 0 || f1 > 1 {
		t.Errorf("fidelity out of range: %g", f1)
	}
}

func TestFidelityEstimateErrors(t *testing.T) {
	c := circuit.New(1).H(0)
	s := schedule.ASAP(c, durations())
	if _, err := (NoiseModel{}).FidelityEstimate(s, 0, 1); err == nil {
		t.Error("zero trajectories accepted")
	}
}

func TestNoisyRunSkipsMeasurements(t *testing.T) {
	c := circuit.New(1).H(0).Measure(0, 0)
	s := schedule.ASAP(c, durations())
	if _, err := (NoiseModel{T2: 100}).NoisyRun(s, 1); err != nil {
		t.Errorf("measurement should be skipped, got %v", err)
	}
}

func TestTrajectoriesStayNormalised(t *testing.T) {
	c := circuit.New(3).H(0).CX(0, 1).CX(1, 2).H(2).T(0)
	s := schedule.ASAP(c, durations())
	m := NoiseModel{T1: 30, T2: 15}
	for seed := int64(0); seed < 10; seed++ {
		st, err := m.NoisyRun(s, seed)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.Norm()-1) > 1e-9 {
			t.Fatalf("trajectory %d norm = %g", seed, st.Norm())
		}
	}
}

func TestGateErrorDegradesFidelity(t *testing.T) {
	c := circuit.New(3).H(0).CX(0, 1).CX(1, 2).H(2).CX(0, 2)
	s := schedule.ASAP(c, durations())
	clean := NoiseModel{}
	noisy := NoiseModel{Gate1QError: 0.05, Gate2QError: 0.1}
	fc, err := clean.FidelityEstimate(s, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := noisy.FidelityEstimate(s, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fc-1) > 1e-9 {
		t.Errorf("clean fidelity = %g", fc)
	}
	if fn >= 0.95 {
		t.Errorf("gate-error fidelity = %g, want visible degradation", fn)
	}
}

func TestGateErrorScalesWithGateCount(t *testing.T) {
	small := circuit.New(2).H(0).CX(0, 1)
	big := circuit.New(2)
	for i := 0; i < 10; i++ {
		big.H(0).CX(0, 1).CX(0, 1).H(0) // identity blocks accumulate error
	}
	m := NoiseModel{Gate2QError: 0.03, Gate1QError: 0.01}
	fs, err := m.FidelityEstimate(schedule.ASAP(small, durations()), 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := m.FidelityEstimate(schedule.ASAP(big, durations()), 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fb >= fs {
		t.Errorf("more gates should mean lower fidelity: small %g, big %g", fs, fb)
	}
}

func TestGateErrorKeepsNormalisation(t *testing.T) {
	c := circuit.New(2).H(0).CX(0, 1).H(1)
	s := schedule.ASAP(c, durations())
	m := NoiseModel{Gate1QError: 0.5, Gate2QError: 0.5}
	for seed := int64(0); seed < 8; seed++ {
		st, err := m.NoisyRun(s, seed)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.Norm()-1) > 1e-9 {
			t.Fatalf("norm = %g", st.Norm())
		}
	}
}

func TestPauliInjectionHelpers(t *testing.T) {
	// X on |0> -> |1>; Y on |0> -> i|1>.
	s := MustNewState(1)
	xGate(s, 0)
	if real(s.Amplitude(1)) != 1 {
		t.Error("xGate broken")
	}
	s2 := MustNewState(1)
	yGate(s2, 0)
	if s2.Amplitude(1) != 1i {
		t.Errorf("yGate broken: %v", s2.Amplitude(1))
	}
	// Pauli operators square to identity.
	s3 := randomState(3, 7)
	want := s3.Clone()
	xGate(s3, 1)
	xGate(s3, 1)
	yGate(s3, 2)
	yGate(s3, 2)
	if !s3.EqualUpToPhase(want, 1e-9) {
		t.Error("Pauli helpers do not square to identity")
	}
}

func TestPerQubitOverrides(t *testing.T) {
	m := NoiseModel{T1: 100, T2: 50, T1Q: []float64{10, 0}, T2Q: []float64{20, 0}}
	// Qubit 0 uses its own constants.
	if got, want := m.dampGamma(0, 10), 1-math.Exp(-1.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("per-qubit dampGamma = %g, want %g", got, want)
	}
	if got, want := m.dephaseProb(0, 20), (1-math.Exp(-1.0))/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("per-qubit dephaseProb = %g, want %g", got, want)
	}
	// Qubit 1's zero overrides disable both channels for it.
	if m.dampGamma(1, 1e6) != 0 || m.dephaseProb(1, 1e6) != 0 {
		t.Error("zero per-qubit constants should disable noise on that qubit")
	}
	// A qubit beyond the override slices falls back to the scalars.
	if got, want := m.dampGamma(2, 100), 1-math.Exp(-1.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("fallback dampGamma = %g, want %g", got, want)
	}
}
