package sim

import (
	"fmt"
	"math"
	"math/rand"

	"codar/internal/circuit"
	"codar/internal/schedule"
)

// NoiseModel parameterises the per-qubit decoherence channels of the
// OriginQ-style "Qubit Dephasing and Damping" model the paper's Fig 9 uses,
// plus an optional depolarising gate-error extension (Table I lists
// per-gate fidelities; the dephasing/damping model alone is what Fig 9
// used). Times are in quantum clock cycles, matching schedule durations.
type NoiseModel struct {
	// T1 is the amplitude-damping (energy relaxation) time constant;
	// 0 or +Inf disables damping.
	T1 float64
	// T2 is the pure-dephasing time constant; 0 or +Inf disables dephasing.
	T2 float64
	// T1Q and T2Q, when non-nil, override T1/T2 per physical qubit —
	// the heterogeneous regime a calibration snapshot describes
	// (calib.Snapshot.NoiseModel). A qubit index beyond the slice falls
	// back to the scalar constant.
	T1Q []float64
	T2Q []float64
	// Gate1QError and Gate2QError are depolarising error probabilities:
	// after a gate, each operand suffers a uniformly random Pauli with the
	// class probability. 0 disables. This extension quantifies the §V-B
	// trade-off (CODAR may insert more SWAPs, adding gate noise, while its
	// shorter schedule removes decoherence exposure).
	Gate1QError float64
	Gate2QError float64
}

// DephasingDominant returns a regime where noise is mainly dephasing
// (small T2, effectively infinite T1), the left half of Fig 9.
func DephasingDominant(t2 float64) NoiseModel { return NoiseModel{T1: math.Inf(1), T2: t2} }

// DampingDominant returns a regime where noise is mainly amplitude damping
// (small T1, effectively infinite T2), the right half of Fig 9.
func DampingDominant(t1 float64) NoiseModel { return NoiseModel{T1: t1, T2: math.Inf(1)} }

// enabled reports whether a time constant contributes noise.
func enabled(t float64) bool { return t > 0 && !math.IsInf(t, 1) }

// t1For and t2For resolve the time constant for qubit q: the per-qubit
// override when present, the scalar otherwise.
func (m NoiseModel) t1For(q int) float64 {
	if q < len(m.T1Q) {
		return m.T1Q[q]
	}
	return m.T1
}

func (m NoiseModel) t2For(q int) float64 {
	if q < len(m.T2Q) {
		return m.T2Q[q]
	}
	return m.T2
}

// dephaseProb returns the phase-flip probability on qubit q after dt cycles:
// p = (1 - exp(-dt/T2)) / 2, the standard phase-flip-channel mapping.
func (m NoiseModel) dephaseProb(q int, dt float64) float64 {
	t2 := m.t2For(q)
	if !enabled(t2) || dt <= 0 {
		return 0
	}
	return (1 - math.Exp(-dt/t2)) / 2
}

// dampGamma returns the amplitude-damping parameter on qubit q after dt
// cycles: γ = 1 - exp(-dt/T1).
func (m NoiseModel) dampGamma(q int, dt float64) float64 {
	t1 := m.t1For(q)
	if !enabled(t1) || dt <= 0 {
		return 0
	}
	return 1 - math.Exp(-dt/t1)
}

// applyNoise evolves one trajectory of the dephasing+damping channels on
// qubit q for dt cycles.
func (m NoiseModel) applyNoise(s *State, q int, dt float64, rng *rand.Rand) {
	if p := m.dephaseProb(q, dt); p > 0 && rng.Float64() < p {
		zGate(s, q)
	}
	if gamma := m.dampGamma(q, dt); gamma > 0 {
		dampTrajectory(s, q, gamma, rng)
	}
}

// zGate applies Pauli-Z to qubit q in place (phase-flip trajectory branch).
func zGate(s *State, q int) {
	bit := 1 << uint(q)
	for i := range s.amp {
		if i&bit != 0 {
			s.amp[i] = -s.amp[i]
		}
	}
}

// dampTrajectory applies one Monte-Carlo step of the amplitude-damping
// channel with parameter gamma: with probability γ·P(|1>_q) the qubit jumps
// to |0> (Kraus K1 = √γ|0><1|, renormalised); otherwise the no-jump
// operator K0 = diag(1, √(1-γ)) is applied and renormalised.
func dampTrajectory(s *State, q int, gamma float64, rng *rand.Rand) {
	bit := 1 << uint(q)
	p1 := s.ProbabilityOfOne(q)
	pJump := gamma * p1
	if pJump > 0 && rng.Float64() < pJump {
		// Jump: move every |1>_q amplitude to the matching |0>_q state.
		for i := range s.amp {
			if i&bit == 0 {
				s.amp[i] = s.amp[i|bit]
			}
		}
		for i := range s.amp {
			if i&bit != 0 {
				s.amp[i] = 0
			}
		}
		s.Normalize()
		return
	}
	// No jump: damp the |1>_q amplitudes.
	k := complex(math.Sqrt(1-gamma), 0)
	for i := range s.amp {
		if i&bit != 0 {
			s.amp[i] *= k
		}
	}
	s.Normalize()
}

// NoisyRun simulates one noise trajectory of a scheduled circuit: each
// qubit accumulates dephasing/damping exposure over both idle gaps and
// gate execution windows, so a longer weighted depth means more
// decoherence — the mechanism behind the paper's fidelity argument.
// Measurements are skipped (fidelity is computed on the unitary part).
func (m NoiseModel) NoisyRun(s *schedule.Schedule, seed int64) (*State, error) {
	st, err := NewState(s.NumQubits)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	last := make([]float64, s.NumQubits)
	for _, sg := range s.Gates {
		g := sg.Gate
		// Decoherence over the idle gap and the gate window itself.
		for _, q := range g.Qubits {
			dt := float64(sg.End()) - last[q]
			m.applyNoise(st, q, dt, rng)
			last[q] = float64(sg.End())
		}
		if g.Op.Unitary() {
			if err := st.Apply(g); err != nil {
				return nil, err
			}
			m.applyGateError(st, g, rng)
		}
	}
	// Trailing idle exposure up to the makespan.
	for q := 0; q < s.NumQubits; q++ {
		m.applyNoise(st, q, float64(s.Makespan)-last[q], rng)
	}
	return st, nil
}

// applyGateError applies the depolarising gate-error channel: each operand
// of a just-executed gate suffers a uniformly random Pauli with the class
// probability.
func (m NoiseModel) applyGateError(s *State, g circuit.Gate, rng *rand.Rand) {
	p := m.Gate1QError
	if len(g.Qubits) >= 2 {
		p = m.Gate2QError
	}
	if p <= 0 {
		return
	}
	for _, q := range g.Qubits {
		if rng.Float64() >= p {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			xGate(s, q)
		case 1:
			yGate(s, q)
		default:
			zGate(s, q)
		}
	}
}

// xGate applies Pauli-X to qubit q in place.
func xGate(s *State, q int) {
	bit := 1 << uint(q)
	for i := range s.amp {
		if i&bit == 0 {
			s.amp[i], s.amp[i|bit] = s.amp[i|bit], s.amp[i]
		}
	}
}

// yGate applies Pauli-Y to qubit q in place.
func yGate(s *State, q int) {
	bit := 1 << uint(q)
	for i := range s.amp {
		if i&bit == 0 {
			j := i | bit
			a0, a1 := s.amp[i], s.amp[j]
			s.amp[i] = -1i * a1
			s.amp[j] = 1i * a0
		}
	}
}

// IdealRun simulates the schedule without noise.
func IdealRun(s *schedule.Schedule) (*State, error) {
	st, err := NewState(s.NumQubits)
	if err != nil {
		return nil, err
	}
	for _, sg := range s.Gates {
		if sg.Gate.Op.Unitary() {
			if err := st.Apply(sg.Gate); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// FidelityEstimate Monte-Carlo-averages |<ideal|trajectory>|^2 over the
// given number of trajectories. It is deterministic for a fixed seed.
func (m NoiseModel) FidelityEstimate(s *schedule.Schedule, trajectories int, seed int64) (float64, error) {
	if trajectories <= 0 {
		return 0, fmt.Errorf("sim: need at least one trajectory")
	}
	ideal, err := IdealRun(s)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for k := 0; k < trajectories; k++ {
		traj, err := m.NoisyRun(s, seed+int64(k)*7919)
		if err != nil {
			return 0, err
		}
		sum += ideal.Fidelity(traj)
	}
	return sum / float64(trajectories), nil
}
