package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"codar/internal/circuit"
)

// Unitary1Q returns the 2x2 matrix of a single-qubit op with the given
// parameters.
func Unitary1Q(op circuit.Op, params []float64) ([2][2]complex128, error) {
	p := func(k int) float64 {
		if k < len(params) {
			return params[k]
		}
		return 0
	}
	inv := complex(1/math.Sqrt2, 0)
	switch op {
	case circuit.OpID:
		return [2][2]complex128{{1, 0}, {0, 1}}, nil
	case circuit.OpX:
		return [2][2]complex128{{0, 1}, {1, 0}}, nil
	case circuit.OpY:
		return [2][2]complex128{{0, -1i}, {1i, 0}}, nil
	case circuit.OpZ:
		return [2][2]complex128{{1, 0}, {0, -1}}, nil
	case circuit.OpH:
		return [2][2]complex128{{inv, inv}, {inv, -inv}}, nil
	case circuit.OpS:
		return [2][2]complex128{{1, 0}, {0, 1i}}, nil
	case circuit.OpSdg:
		return [2][2]complex128{{1, 0}, {0, -1i}}, nil
	case circuit.OpT:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}, nil
	case circuit.OpTdg:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}}, nil
	case circuit.OpSX:
		return [2][2]complex128{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)},
		}, nil
	case circuit.OpRX:
		c := complex(math.Cos(p(0)/2), 0)
		s := complex(0, -math.Sin(p(0)/2))
		return [2][2]complex128{{c, s}, {s, c}}, nil
	case circuit.OpRY:
		c := complex(math.Cos(p(0)/2), 0)
		s := complex(math.Sin(p(0)/2), 0)
		return [2][2]complex128{{c, -s}, {s, c}}, nil
	case circuit.OpRZ:
		return [2][2]complex128{
			{cmplx.Exp(complex(0, -p(0)/2)), 0},
			{0, cmplx.Exp(complex(0, p(0)/2))},
		}, nil
	case circuit.OpU1:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, p(0)))}}, nil
	case circuit.OpU2:
		phi, lam := p(0), p(1)
		return [2][2]complex128{
			{inv, -inv * cmplx.Exp(complex(0, lam))},
			{inv * cmplx.Exp(complex(0, phi)), inv * cmplx.Exp(complex(0, phi+lam))},
		}, nil
	case circuit.OpU3:
		th, phi, lam := p(0), p(1), p(2)
		c := complex(math.Cos(th/2), 0)
		s := complex(math.Sin(th/2), 0)
		return [2][2]complex128{
			{c, -s * cmplx.Exp(complex(0, lam))},
			{s * cmplx.Exp(complex(0, phi)), c * cmplx.Exp(complex(0, phi+lam))},
		}, nil
	default:
		return [2][2]complex128{}, fmt.Errorf("sim: %v is not a single-qubit unitary", op)
	}
}

// Unitary2Q returns the 4x4 matrix of a two-qubit op in the |q0 q1> local
// basis (q0 the more-significant bit; for CX, q0 is the control).
func Unitary2Q(op circuit.Op, params []float64) ([4][4]complex128, error) {
	p := func(k int) float64 {
		if k < len(params) {
			return params[k]
		}
		return 0
	}
	switch op {
	case circuit.OpCX:
		return [4][4]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
			{0, 0, 1, 0},
		}, nil
	case circuit.OpCZ:
		return [4][4]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 1, 0},
			{0, 0, 0, -1},
		}, nil
	case circuit.OpSwap:
		return [4][4]complex128{
			{1, 0, 0, 0},
			{0, 0, 1, 0},
			{0, 1, 0, 0},
			{0, 0, 0, 1},
		}, nil
	case circuit.OpCP:
		return [4][4]complex128{
			{1, 0, 0, 0},
			{0, 1, 0, 0},
			{0, 0, 1, 0},
			{0, 0, 0, cmplx.Exp(complex(0, p(0)))},
		}, nil
	case circuit.OpRZZ:
		e := cmplx.Exp(complex(0, -p(0)/2))
		f := cmplx.Exp(complex(0, p(0)/2))
		return [4][4]complex128{
			{e, 0, 0, 0},
			{0, f, 0, 0},
			{0, 0, f, 0},
			{0, 0, 0, e},
		}, nil
	case circuit.OpRXX:
		// exp(-i theta/2 X⊗X): cos on the diagonal, -i sin on the
		// anti-diagonal.
		c := complex(math.Cos(p(0)/2), 0)
		s := complex(0, -math.Sin(p(0)/2))
		return [4][4]complex128{
			{c, 0, 0, s},
			{0, c, s, 0},
			{0, s, c, 0},
			{s, 0, 0, c},
		}, nil
	default:
		return [4][4]complex128{}, fmt.Errorf("sim: %v is not a two-qubit unitary", op)
	}
}

// Run simulates circuit c from |0...0> and returns the final state.
func Run(c *circuit.Circuit) (*State, error) {
	s, err := NewState(c.NumQubits)
	if err != nil {
		return nil, err
	}
	if err := s.ApplyCircuit(c); err != nil {
		return nil, err
	}
	return s, nil
}
