package circuit

import (
	"fmt"
	"strings"
)

// Circuit is an ordered sequence of gates over NumQubits qubits. The order
// is program order; actual execution order is constrained only by the
// dependency DAG (see dag.go) and gate commutation (see commute.go).
type Circuit struct {
	// Name identifies the circuit in reports and benchmark tables.
	Name string
	// NumQubits is the number of (logical or physical) qubits addressed.
	NumQubits int
	// NumClbits is the number of classical bits (for measurements).
	NumClbits int
	// Gates is the program-order gate sequence.
	Gates []Gate
}

// New creates an empty circuit over n qubits.
func New(n int) *Circuit { return &Circuit{NumQubits: n} }

// NewNamed creates an empty named circuit over n qubits.
func NewNamed(name string, n int) *Circuit { return &Circuit{Name: name, NumQubits: n} }

// Add appends a gate after validating it against the circuit size.
// It returns the circuit to allow chaining.
func (c *Circuit) Add(g Gate) *Circuit {
	if err := c.check(g); err != nil {
		panic(err)
	}
	c.Gates = append(c.Gates, g)
	return c
}

// check validates the gate and its indices against the circuit.
func (c *Circuit) check(g Gate) error {
	if err := g.Validate(); err != nil {
		return err
	}
	for _, q := range g.Qubits {
		if q >= c.NumQubits {
			return fmt.Errorf("circuit %q: qubit %d out of range [0,%d)", c.Name, q, c.NumQubits)
		}
	}
	if g.Op == OpMeasure && g.Cbit >= c.NumClbits {
		c.NumClbits = g.Cbit + 1
	}
	return nil
}

// AppendAll appends every gate of other (validated against c's size).
func (c *Circuit) AppendAll(other *Circuit) *Circuit {
	for _, g := range other.Gates {
		c.Add(g.Clone())
	}
	return c
}

// Convenience builders. Each appends the corresponding gate and returns the
// circuit for chaining.

// I appends an identity gate on q.
func (c *Circuit) I(q int) *Circuit { return c.Add(New1Q(OpID, q)) }

// X appends a Pauli-X on q.
func (c *Circuit) X(q int) *Circuit { return c.Add(New1Q(OpX, q)) }

// Y appends a Pauli-Y on q.
func (c *Circuit) Y(q int) *Circuit { return c.Add(New1Q(OpY, q)) }

// Z appends a Pauli-Z on q.
func (c *Circuit) Z(q int) *Circuit { return c.Add(New1Q(OpZ, q)) }

// H appends a Hadamard on q.
func (c *Circuit) H(q int) *Circuit { return c.Add(New1Q(OpH, q)) }

// S appends an S gate on q.
func (c *Circuit) S(q int) *Circuit { return c.Add(New1Q(OpS, q)) }

// Sdg appends an S-dagger on q.
func (c *Circuit) Sdg(q int) *Circuit { return c.Add(New1Q(OpSdg, q)) }

// T appends a T gate on q.
func (c *Circuit) T(q int) *Circuit { return c.Add(New1Q(OpT, q)) }

// Tdg appends a T-dagger on q.
func (c *Circuit) Tdg(q int) *Circuit { return c.Add(New1Q(OpTdg, q)) }

// RX appends rx(theta) on q.
func (c *Circuit) RX(theta float64, q int) *Circuit { return c.Add(New1QP(OpRX, q, theta)) }

// RY appends ry(theta) on q.
func (c *Circuit) RY(theta float64, q int) *Circuit { return c.Add(New1QP(OpRY, q, theta)) }

// RZ appends rz(theta) on q.
func (c *Circuit) RZ(theta float64, q int) *Circuit { return c.Add(New1QP(OpRZ, q, theta)) }

// U1 appends u1(lambda) on q.
func (c *Circuit) U1(lambda float64, q int) *Circuit { return c.Add(New1QP(OpU1, q, lambda)) }

// U2 appends u2(phi, lambda) on q.
func (c *Circuit) U2(phi, lambda float64, q int) *Circuit { return c.Add(New1QP(OpU2, q, phi, lambda)) }

// U3 appends u3(theta, phi, lambda) on q.
func (c *Circuit) U3(theta, phi, lambda float64, q int) *Circuit {
	return c.Add(New1QP(OpU3, q, theta, phi, lambda))
}

// CX appends a CNOT with control a and target b.
func (c *Circuit) CX(a, b int) *Circuit { return c.Add(New2Q(OpCX, a, b)) }

// CZ appends a controlled-Z on a, b.
func (c *Circuit) CZ(a, b int) *Circuit { return c.Add(New2Q(OpCZ, a, b)) }

// Swap appends a SWAP on a, b.
func (c *Circuit) Swap(a, b int) *Circuit { return c.Add(New2Q(OpSwap, a, b)) }

// CP appends a controlled-phase cp(lambda) on a, b.
func (c *Circuit) CP(lambda float64, a, b int) *Circuit { return c.Add(New2QP(OpCP, a, b, lambda)) }

// RZZ appends rzz(theta) on a, b.
func (c *Circuit) RZZ(theta float64, a, b int) *Circuit { return c.Add(New2QP(OpRZZ, a, b, theta)) }

// CCX appends a Toffoli with controls a, b and target t.
func (c *Circuit) CCX(a, b, t int) *Circuit { return c.Add(Gate{Op: OpCCX, Qubits: []int{a, b, t}}) }

// Measure appends a measurement of q into classical bit cbit.
func (c *Circuit) Measure(q, cbit int) *Circuit {
	return c.Add(Gate{Op: OpMeasure, Qubits: []int{q}, Cbit: cbit})
}

// Barrier appends a barrier across the given qubits (all qubits if none given).
func (c *Circuit) Barrier(qs ...int) *Circuit {
	if len(qs) == 0 {
		qs = make([]int, c.NumQubits)
		for i := range qs {
			qs[i] = i
		}
	}
	return c.Add(Gate{Op: OpBarrier, Qubits: qs})
}

// Len returns the number of gates.
func (c *Circuit) Len() int { return len(c.Gates) }

// CountOps returns a histogram of op -> occurrence count.
func (c *Circuit) CountOps() map[Op]int {
	m := make(map[Op]int)
	for _, g := range c.Gates {
		m[g.Op]++
	}
	return m
}

// TwoQubitCount returns the number of two-qubit unitary gates.
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Op.TwoQubit() {
			n++
		}
	}
	return n
}

// UsedQubits returns the number of distinct qubits referenced by gates.
func (c *Circuit) UsedQubits() int {
	seen := make([]bool, c.NumQubits)
	n := 0
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			if !seen[q] {
				seen[q] = true
				n++
			}
		}
	}
	return n
}

// Depth returns the standard (unweighted) circuit depth: the length of the
// longest chain of gates that share qubits, counting barriers as
// synchronisation points of zero depth.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	maxDepth := 0
	for _, g := range c.Gates {
		start := 0
		for _, q := range g.Qubits {
			if level[q] > start {
				start = level[q]
			}
		}
		d := start
		if g.Op != OpBarrier {
			d++
		}
		for _, q := range g.Qubits {
			level[q] = d
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		out.Gates[i] = g.Clone()
	}
	return out
}

// Reversed returns a new circuit with the gate order reversed. It is used by
// the SABRE reverse-traversal initial-mapping pass; gate inverses are not
// taken because only the dependency structure matters there. The gate
// values are shared with the receiver (qubit and parameter slices are not
// copied — gates are immutable throughout the codebase); use Clone first if
// the copy must be independent.
func (c *Circuit) Reversed() *Circuit {
	out := &Circuit{Name: c.Name + "_rev", NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	out.Gates = make([]Gate, len(c.Gates))
	for i := range c.Gates {
		out.Gates[i] = c.Gates[len(c.Gates)-1-i]
	}
	return out
}

// Validate checks every gate against the circuit bounds.
func (c *Circuit) Validate() error {
	if c.NumQubits <= 0 {
		return fmt.Errorf("circuit %q: non-positive qubit count %d", c.Name, c.NumQubits)
	}
	for i, g := range c.Gates {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
		for _, q := range g.Qubits {
			if q >= c.NumQubits {
				return fmt.Errorf("gate %d (%s): qubit %d out of range [0,%d)", i, g, q, c.NumQubits)
			}
		}
	}
	return nil
}

// Equal reports whether two circuits have identical size and gate sequences.
func (c *Circuit) Equal(o *Circuit) bool {
	if c.NumQubits != o.NumQubits || len(c.Gates) != len(o.Gates) {
		return false
	}
	for i := range c.Gates {
		if !c.Gates[i].Equal(o.Gates[i]) {
			return false
		}
	}
	return true
}

// String renders a short human-readable summary plus the gate listing.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %q: %d qubits, %d gates, depth %d\n", c.Name, c.NumQubits, len(c.Gates), c.Depth())
	for _, g := range c.Gates {
		b.WriteString("  ")
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	return b.String()
}
