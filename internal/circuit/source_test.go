package circuit

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// errSource yields its gates then a terminal error (never EOF).
type errSource struct {
	nq    int
	gates []Gate
	err   error
	pos   int
}

func (s *errSource) NumQubits() int { return s.nq }
func (s *errSource) NumClbits() int { return 0 }
func (s *errSource) Next() (Gate, error) {
	if s.pos < len(s.gates) {
		g := s.gates[s.pos]
		s.pos++
		return g, nil
	}
	return Gate{}, s.err
}

func TestSliceSourceYieldsInOrder(t *testing.T) {
	c := New(3)
	c.H(0).CX(0, 1).CX(1, 2)
	src := NewSliceSource(c)
	for i := range c.Gates {
		g, err := src.Next()
		if err != nil {
			t.Fatalf("gate %d: %v", i, err)
		}
		if !g.Equal(c.Gates[i]) {
			t.Fatalf("gate %d: got %v, want %v", i, g, c.Gates[i])
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("past the end: %v, want io.EOF", err)
	}
}

func TestWindowFillBatches(t *testing.T) {
	c := New(4)
	for i := 0; i < 10; i++ {
		c.RZ(float64(i), i%4)
	}
	w := NewWindow(NewSliceSource(c), 4)
	for _, want := range []int{4, 8, 10} {
		if err := w.Fill(); err != nil {
			t.Fatal(err)
		}
		if len(w.Gates()) != want {
			t.Fatalf("buffered %d gates, want %d", len(w.Gates()), want)
		}
	}
	if w.Open() {
		t.Fatal("window still open after the source drained")
	}
	if err := w.Fill(); err != nil || len(w.Gates()) != 10 {
		t.Fatalf("fill after EOF: err %v, %d gates", err, len(w.Gates()))
	}
}

// TestWindowErrorSticky pins the corrupt-stream contract: the first source
// or validation error closes the window and every later Fill re-returns
// it — a driver that polls Fill again must not mistake a corrupt stream
// for a cleanly drained one.
func TestWindowErrorSticky(t *testing.T) {
	broken := errors.New("stream corrupt")
	src := &errSource{nq: 4, gates: []Gate{New1Q(OpH, 0), New2Q(OpCX, 0, 1)}, err: broken}
	w := NewWindow(src, 8)
	if err := w.Fill(); err != broken {
		t.Fatalf("Fill = %v, want the source error", err)
	}
	if w.Open() {
		t.Fatal("window open after a terminal error")
	}
	if err := w.Fill(); err != broken {
		t.Fatalf("second Fill = %v, error not sticky", err)
	}
	if len(w.Gates()) != 2 {
		t.Fatalf("buffered %d gates before the error, want 2", len(w.Gates()))
	}
}

func TestWindowValidatesAgainstHeader(t *testing.T) {
	src := &errSource{nq: 3, gates: []Gate{New1Q(OpH, 5)}, err: io.EOF}
	w := NewWindow(src, 8)
	err := w.Fill()
	if err == nil {
		t.Fatal("want validation error for qubit 5 on a 3-qubit stream")
	}
	if err2 := w.Fill(); err2 != err {
		t.Fatalf("validation error not sticky: %v then %v", err, err2)
	}
}

func TestWindowRejectsCompoundGates(t *testing.T) {
	c := New(3)
	c.H(0).CCX(0, 1, 2)
	w := NewWindow(NewSliceSource(c), 8)
	err := w.Fill()
	if err == nil {
		t.Fatal("want rejection of an unlowered ccx")
	}
	if want := "NewDecomposeSource"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not point at %s", err, want)
	}
	if err2 := w.Fill(); err2 != err {
		t.Fatalf("compound-gate error not sticky: %v then %v", err, err2)
	}
}

// TestWindowCompactKeepsAndZeroes: Compact retains exactly the keep
// indices in order, and the evicted tail of the backing array is zeroed so
// dropped gates stop pinning their qubit/parameter slices.
func TestWindowCompactKeepsAndZeroes(t *testing.T) {
	c := New(4)
	for i := 0; i < 8; i++ {
		c.RZ(float64(i), i%4)
	}
	w := NewWindow(NewSliceSource(c), 8)
	if err := w.Fill(); err != nil {
		t.Fatal(err)
	}
	want := []Gate{c.Gates[2], c.Gates[5], c.Gates[7]}
	w.Compact([]int{2, 5, 7})
	got := w.Gates()
	if len(got) != len(want) {
		t.Fatalf("kept %d gates, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("kept gate %d: got %v, want %v", i, got[i], want[i])
		}
	}
	tail := w.gates[len(got):cap(w.gates[:8])]
	for i, g := range tail[:8-len(got)] {
		if g.Op != 0 || g.Qubits != nil || g.Params != nil {
			t.Fatalf("evicted slot %d not zeroed: %v", i, g)
		}
	}
}

// TestDecomposeSourceMatchesBatch: draining a DecomposeSource yields the
// same lowered sequence as the batch Decompose pass.
func TestDecomposeSourceMatchesBatch(t *testing.T) {
	c := New(4)
	c.H(0).CCX(0, 1, 2).CX(2, 3).RZ(0.5, 3).CCX(3, 2, 1).Measure(0, 0)
	want := Decompose(c)

	ds := NewDecomposeSource(NewSliceSource(c))
	if ds.NumQubits() != c.NumQubits {
		t.Fatalf("NumQubits = %d, want %d", ds.NumQubits(), c.NumQubits)
	}
	var got []Gate
	for {
		g, err := ds.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, g)
	}
	if len(got) != len(want.Gates) {
		t.Fatalf("streamed %d lowered gates, batch %d", len(got), len(want.Gates))
	}
	for i := range got {
		if !got[i].Equal(want.Gates[i]) {
			t.Fatalf("lowered gate %d: stream %v, batch %v", i, got[i], want.Gates[i])
		}
	}
	if ds.NumClbits() != want.NumClbits {
		t.Fatalf("NumClbits = %d, want %d", ds.NumClbits(), want.NumClbits)
	}
}
