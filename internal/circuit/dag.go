package circuit

// DAG is the gate dependency graph of a circuit: gate j depends on gate i
// (i < j in program order) when they share a qubit and i is the most recent
// earlier gate on that qubit. This is the standard structure used by SABRE
// (Li et al., ASPLOS'19); it deliberately ignores commutation so that the
// baseline matches its published form. CODAR uses the commutative front
// instead (see commute.go).
type DAG struct {
	circ *Circuit
	// Preds[k] and Succs[k] list the immediate dependency neighbours of
	// gate k, deduplicated, in ascending index order.
	Preds [][]int
	Succs [][]int
}

// NewDAG builds the dependency DAG of c. The per-gate neighbour lists are
// sub-slices of two shared flat arrays, so construction costs a handful of
// allocations instead of two per gate — NewDAG runs three times per
// benchmark pair in the SABRE reverse-traversal pipeline and showed up
// accordingly in the Fig 8 allocation profile.
func NewDAG(c *Circuit) *DAG {
	n := len(c.Gates)
	d := &DAG{
		circ:  c,
		Preds: make([][]int, n),
		Succs: make([][]int, n),
	}
	last := make([]int, c.NumQubits) // qubit -> index of last gate seen on it
	for q := range last {
		last[q] = -1
	}
	// Pass 1: collect each gate's deduplicated predecessors (in qubit
	// order, matching the historical append order) into one flat array.
	predsFlat := make([]int, 0, n)
	predOff := make([]int32, n+1)
	succCnt := make([]int32, n)
	for k, g := range c.Gates {
		predOff[k] = int32(len(predsFlat))
		for _, q := range g.Qubits {
			j := last[q]
			last[q] = k
			if j < 0 {
				continue
			}
			dup := false
			for _, p := range predsFlat[predOff[k]:] {
				if p == j {
					dup = true
					break
				}
			}
			if !dup {
				predsFlat = append(predsFlat, j)
				succCnt[j]++
			}
		}
	}
	predOff[n] = int32(len(predsFlat))
	// Pass 2: invert into successor lists, ascending in k by construction.
	succsFlat := make([]int, len(predsFlat))
	succOff := make([]int32, n+1)
	off := int32(0)
	for k := 0; k < n; k++ {
		succOff[k] = off
		off += succCnt[k]
		succCnt[k] = 0 // reuse as fill cursor
	}
	succOff[n] = off
	for k := 0; k < n; k++ {
		for _, j := range predsFlat[predOff[k]:predOff[k+1]] {
			succsFlat[succOff[j]+succCnt[j]] = k
			succCnt[j]++
		}
	}
	for k := 0; k < n; k++ {
		// Full three-index slices: an append by a caller reallocates
		// instead of overwriting the next gate's list in the shared array.
		if a, b := predOff[k], predOff[k+1]; b > a {
			d.Preds[k] = predsFlat[a:b:b]
		}
		if a, b := succOff[k], succOff[k+1]; b > a {
			d.Succs[k] = succsFlat[a:b:b]
		}
	}
	return d
}

// Circuit returns the circuit the DAG was built from.
func (d *DAG) Circuit() *Circuit { return d.circ }

// Len returns the number of gates (nodes).
func (d *DAG) Len() int { return len(d.Preds) }

// Gate returns the gate at node k.
func (d *DAG) Gate(k int) Gate { return d.circ.Gates[k] }

// InDegrees returns a fresh in-degree array, suitable for topological
// front-layer traversal.
func (d *DAG) InDegrees() []int {
	deg := make([]int, d.Len())
	for k := range d.Preds {
		deg[k] = len(d.Preds[k])
	}
	return deg
}

// FrontLayer returns the indices of all gates with no predecessors.
func (d *DAG) FrontLayer() []int {
	var front []int
	for k := range d.Preds {
		if len(d.Preds[k]) == 0 {
			front = append(front, k)
		}
	}
	return front
}

// TopologicalOrder returns one valid topological ordering of the gates.
// Program order is itself topological, so the identity permutation is
// returned; the method exists to make intent explicit at call sites.
func (d *DAG) TopologicalOrder() []int {
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	return order
}

// LongestPath returns the number of gates on the longest dependency chain,
// which equals the circuit depth when all gates count 1.
func (d *DAG) LongestPath() int {
	n := d.Len()
	dist := make([]int, n)
	best := 0
	for k := 0; k < n; k++ { // program order is topological
		dk := 1
		for _, p := range d.Preds[k] {
			if dist[p]+1 > dk {
				dk = dist[p] + 1
			}
		}
		dist[k] = dk
		if dk > best {
			best = dk
		}
	}
	return best
}
