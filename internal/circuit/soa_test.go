package circuit

import (
	"errors"
	"testing"
)

func soaFixture() *Circuit {
	c := &Circuit{Name: "soa", NumQubits: 4, NumClbits: 4}
	c.H(0)
	c.CX(0, 1)
	c.RZ(0.25, 2)
	c.CX(2, 3)
	c.CX(1, 2)
	c.Measure(3, 3)
	return c
}

func TestSoAMirrorsGates(t *testing.T) {
	c := soaFixture()
	s := NewSoA(c)
	if s.Len() != len(c.Gates) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(c.Gates))
	}
	for i, g := range c.Gates {
		if s.Ops[i] != g.Op {
			t.Fatalf("gate %d: op %v, want %v", i, s.Ops[i], g.Op)
		}
		if s.Is2Q[i] != g.Op.TwoQubit() {
			t.Fatalf("gate %d: Is2Q %v, want %v", i, s.Is2Q[i], g.Op.TwoQubit())
		}
		if s.NumQubits(i) != len(g.Qubits) {
			t.Fatalf("gate %d: NumQubits %d, want %d", i, s.NumQubits(i), len(g.Qubits))
		}
		for k, q := range g.Qubits {
			if s.Qubit(i, k) != q {
				t.Fatalf("gate %d operand %d: %d, want %d", i, k, s.Qubit(i, k), q)
			}
		}
		if g.Op.TwoQubit() {
			a, b := s.Pair(i)
			if a != g.Qubits[0] || b != g.Qubits[1] {
				t.Fatalf("gate %d: Pair = (%d,%d), want (%d,%d)", i, a, b, g.Qubits[0], g.Qubits[1])
			}
		}
		ops := s.Operands(i)
		if len(ops) != len(g.Qubits) {
			t.Fatalf("gate %d: Operands len %d, want %d", i, len(ops), len(g.Qubits))
		}
	}
}

func TestSoASlotInverse(t *testing.T) {
	s := NewSoA(soaFixture())
	if len(s.SlotGate) != len(s.Qubits) {
		t.Fatalf("SlotGate len %d != Qubits len %d", len(s.SlotGate), len(s.Qubits))
	}
	for i := 0; i < s.Len(); i++ {
		for k := 0; k < s.NumQubits(i); k++ {
			slot := int(s.QOff[i]) + k
			if int(s.SlotGate[slot]) != i {
				t.Fatalf("slot %d: SlotGate says gate %d, want %d", slot, s.SlotGate[slot], i)
			}
		}
	}
	if int(s.QOff[s.Len()]) != len(s.Qubits) {
		t.Fatalf("QOff sentinel %d != pool size %d", s.QOff[s.Len()], len(s.Qubits))
	}
}

func TestSoAEmptyCircuit(t *testing.T) {
	s := NewSoA(&Circuit{NumQubits: 1})
	if s.Len() != 0 || len(s.QOff) != 1 || s.QOff[0] != 0 {
		t.Fatalf("empty SoA malformed: %+v", s)
	}
}

func TestAssemblyLazyAndCached(t *testing.T) {
	c := soaFixture()
	a := Assemble(c)
	if a.SoA == nil || a.SoA.Len() != len(c.Gates) {
		t.Fatal("SoA not built eagerly")
	}
	if d1, d2 := a.DAG(), a.DAG(); d1 != d2 {
		t.Fatal("DAG not cached")
	}
	if a.DAG().Len() != len(c.Gates) {
		t.Fatalf("DAG len %d, want %d", a.DAG().Len(), len(c.Gates))
	}
	r1, r2 := a.Reversed(), a.Reversed()
	if r1 != r2 {
		t.Fatal("Reversed assembly not cached")
	}
	if r1.Circ.Name != c.Name+"_rev" || len(r1.Circ.Gates) != len(c.Gates) {
		t.Fatalf("reversed circuit wrong: %q / %d gates", r1.Circ.Name, len(r1.Circ.Gates))
	}
	if err := a.Checked(); err != nil {
		t.Fatalf("lowered fixture failed Checked: %v", err)
	}
}

func TestAssemblyCheckedRejectsCompound(t *testing.T) {
	c := &Circuit{Name: "compound", NumQubits: 3}
	c.CCX(0, 1, 2)
	err := Assemble(c).Checked()
	if err == nil {
		t.Fatal("compound circuit passed Checked")
	}
	if got := err.Error(); got != `circuit "compound" contains compound gates; apply circuit.Decompose first` {
		t.Fatalf("unexpected error text: %s", got)
	}
}

func TestAssemblyCheckedPropagatesValidate(t *testing.T) {
	c := &Circuit{Name: "bad", NumQubits: 2}
	c.Gates = append(c.Gates, Gate{Op: OpCX, Qubits: []int{0, 0}})
	a := Assemble(c)
	err := a.Checked()
	if err == nil {
		t.Fatal("invalid circuit passed Checked")
	}
	if err2 := a.Checked(); !errors.Is(err2, err) && err2.Error() != err.Error() {
		t.Fatal("Checked verdict not cached")
	}
}
