package circuit

import (
	"testing"
	"testing/quick"
)

func TestDecomposeCCX(t *testing.T) {
	c := New(3).CCX(0, 1, 2)
	d := Decompose(c)
	if !IsLowered(d) {
		t.Fatal("decomposed circuit still has compound ops")
	}
	ops := d.CountOps()
	if ops[OpCX] != 6 {
		t.Errorf("ccx should lower to 6 CX, got %d", ops[OpCX])
	}
	if ops[OpH] != 2 {
		t.Errorf("ccx should lower with 2 H, got %d", ops[OpH])
	}
	if ops[OpT]+ops[OpTdg] != 7 {
		t.Errorf("ccx should lower with 7 T/Tdg, got %d", ops[OpT]+ops[OpTdg])
	}
}

func TestDecomposeCP(t *testing.T) {
	c := New(2).CP(0.8, 0, 1)
	d := Decompose(c)
	ops := d.CountOps()
	if ops[OpCX] != 2 || ops[OpU1] != 3 {
		t.Errorf("cp should lower to 2 CX + 3 u1, got %v", ops)
	}
	// Angle halving.
	if d.Gates[0].Params[0] != 0.4 {
		t.Errorf("first u1 angle = %v, want 0.4", d.Gates[0].Params[0])
	}
}

func TestDecomposeRZZ(t *testing.T) {
	c := New(2).RZZ(1.2, 0, 1)
	d := Decompose(c)
	ops := d.CountOps()
	if ops[OpCX] != 2 || ops[OpRZ] != 1 {
		t.Errorf("rzz should lower to 2 CX + rz, got %v", ops)
	}
}

func TestDecomposeInputSwap(t *testing.T) {
	c := New(2).Swap(0, 1)
	d := Decompose(c)
	ops := d.CountOps()
	if ops[OpCX] != 3 || len(d.Gates) != 3 {
		t.Errorf("swap should lower to 3 CX, got %v", ops)
	}
}

func TestDecomposePassthrough(t *testing.T) {
	c := New(2).H(0).CX(0, 1).Measure(1, 0).Barrier()
	d := Decompose(c)
	if !c.Equal(d) {
		t.Error("base gates must pass through unchanged")
	}
	// Must be a deep copy.
	d.Gates[0].Qubits[0] = 1
	if c.Gates[0].Qubits[0] != 0 {
		t.Error("Decompose must not alias the input")
	}
}

func TestIsBase(t *testing.T) {
	for _, op := range []Op{OpH, OpX, OpRZ, OpU3, OpCX, OpCZ, OpMeasure, OpBarrier} {
		if !IsBase(op) {
			t.Errorf("%v should be base", op)
		}
	}
	for _, op := range []Op{OpCCX, OpCP, OpRZZ, OpSwap} {
		if IsBase(op) {
			t.Errorf("%v should not be base", op)
		}
	}
}

// Property: decomposition always yields a lowered circuit with the same
// qubit count, and is idempotent.
func TestDecomposeProperties(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)*6364136223846793005 + 1442695040888963407
		next := func(mod int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(mod))
		}
		c := New(5)
		for i := 0; i < 30; i++ {
			switch next(5) {
			case 0:
				c.CCX(pick3(next, 5))
			case 1:
				a, b := pick2(next, 5)
				c.CP(float64(next(8))*0.2, a, b)
			case 2:
				a, b := pick2(next, 5)
				c.RZZ(float64(next(8))*0.2, a, b)
			case 3:
				a, b := pick2(next, 5)
				c.Swap(a, b)
			default:
				c.H(next(5))
			}
		}
		d := Decompose(c)
		if !IsLowered(d) || d.NumQubits != c.NumQubits {
			return false
		}
		return Decompose(d).Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func pick2(next func(int) int, n int) (int, int) {
	a := next(n)
	b := next(n)
	if b == a {
		b = (a + 1) % n
	}
	return a, b
}

func pick3(next func(int) int, n int) (int, int, int) {
	a := next(n)
	b := (a + 1 + next(n-1)) % n
	c := next(n)
	for c == a || c == b {
		c = (c + 1) % n
	}
	return a, b, c
}

func TestDecomposeRXX(t *testing.T) {
	c := New(2).Add(New2QP(OpRXX, 0, 1, 0.9))
	d := Decompose(c)
	if !IsLowered(d) {
		t.Fatal("rxx not lowered")
	}
	ops := d.CountOps()
	if ops[OpCX] != 2 || ops[OpH] != 4 || ops[OpRZ] != 1 {
		t.Errorf("rxx lowering shape: %v", ops)
	}
}
