package circuit

// Basis classifies how a gate acts on one of its operand qubits for the
// purpose of commutation analysis (paper §IV-B, "Commutativity Detection").
//
// A gate is Z-diagonal on a qubit when its action on that qubit commutes
// with Z (phase-type action: Z, S, T, Rz, u1, CZ on either operand, the
// control of a CX). It is X-diagonal when its action commutes with X
// (X, Rx, the target of a CX). Two gates sharing qubits commute whenever,
// on every shared qubit, both act diagonally in the same basis. This is the
// standard sufficient condition used by production compilers: it never
// declares a non-commuting pair commuting.
type Basis uint8

const (
	// NoBasis means the gate's action on the qubit is not diagonal in
	// either the Z or X basis (e.g. H, Y, U3, SWAP, measure).
	NoBasis Basis = iota
	// ZBasis means the gate acts Z-diagonally on the qubit.
	ZBasis
	// XBasis means the gate acts X-diagonally on the qubit.
	XBasis
)

// String implements fmt.Stringer.
func (b Basis) String() string {
	switch b {
	case ZBasis:
		return "Z"
	case XBasis:
		return "X"
	default:
		return "-"
	}
}

// basisOf is the rule behind BasisOn, keyed by op and operand position.
func basisOf(o Op, pos int) Basis {
	switch o {
	case OpID, OpZ, OpS, OpSdg, OpT, OpTdg, OpRZ, OpU1:
		return ZBasis
	case OpX, OpRX, OpSX:
		return XBasis
	case OpCZ, OpCP, OpRZZ:
		// Diagonal two-qubit gates act Z-diagonally on both operands.
		return ZBasis
	case OpRXX:
		// The Mølmer–Sørensen gate is diagonal in the X basis on both
		// operands.
		return XBasis
	case OpCX:
		if pos == 0 {
			return ZBasis // control
		}
		return XBasis // target
	case OpCCX:
		if pos < 2 {
			return ZBasis // controls
		}
		return XBasis // target
	default:
		return NoBasis
	}
}

// basisTab memoises basisOf for every op and operand position; only
// OpBarrier is variadic and it is NoBasis at every position.
var basisTab [numOps][3]Basis

// pairClass classifies an op pair for shared-qubit commutation: whether the
// verdict is fixed regardless of which operand positions are shared.
type pairClass uint8

const (
	// pairCheck: the verdict depends on operand positions or gate equality
	// (e.g. CX/CX, or identical NoBasis gates such as H/H).
	pairCheck pairClass = iota
	// pairAlways: any qubit sharing commutes (e.g. RZ/CZ, both Z-diagonal
	// on every operand).
	pairAlways
	// pairNever: any qubit sharing fails (barriers, non-unitaries, or every
	// operand-position pairing is basis-incompatible between distinct ops).
	pairNever
)

// pairClassTab memoises the op-pair classification consulted by
// CommuteSharing before the per-qubit scan.
var pairClassTab [numOps][numOps]pairClass

func classifyPair(a, b Op) pairClass {
	if a == OpBarrier || b == OpBarrier || !a.Unitary() || !b.Unitary() {
		return pairNever
	}
	na, nb := a.NumQubits(), b.NumQubits()
	uniform := func(o Op, n int) Basis {
		bs := basisTab[o][0]
		for p := 1; p < n; p++ {
			if basisTab[o][p] != bs {
				return NoBasis
			}
		}
		return bs
	}
	if ua := uniform(a, na); ua != NoBasis && ua == uniform(b, nb) {
		return pairAlways
	}
	// Any single operand-position pairing is realisable as the sole shared
	// qubit, so the pair is a guaranteed non-commuter only when every
	// pairing is basis-incompatible — and only across distinct ops, where
	// the identical-gate shortcut cannot apply.
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			if ba := basisTab[a][i]; ba != NoBasis && ba == basisTab[b][j] {
				return pairCheck
			}
		}
	}
	if a != b {
		return pairNever
	}
	return pairCheck
}

func init() {
	for o := Op(0); o < numOps; o++ {
		for p := 0; p < 3; p++ {
			basisTab[o][p] = basisOf(o, p)
		}
	}
	for a := Op(0); a < numOps; a++ {
		for b := Op(0); b < numOps; b++ {
			pairClassTab[a][b] = classifyPair(a, b)
		}
	}
}

// CommuteClass reports the position-independent shared-qubit commutation
// verdict for an op pair: ok is true when every qubit-sharing configuration
// of the two ops has the same verdict (then commute holds it), and false
// when the full per-gate check is required. Callers maintaining their own
// pair caches use it to skip memoisation of the trivial cases.
func CommuteClass(a, b Op) (commute, ok bool) {
	if a >= numOps || b >= numOps {
		return false, false
	}
	switch pairClassTab[a][b] {
	case pairAlways:
		return true, true
	case pairNever:
		return false, true
	}
	return false, false
}

// BasisOn returns the commutation basis of gate g on qubit q. If g does not
// act on q the result is NoBasis.
func (g Gate) BasisOn(q int) Basis {
	for i, gq := range g.Qubits {
		if gq == q {
			if g.Op >= numOps || i >= 3 {
				return NoBasis
			}
			return basisTab[g.Op][i]
		}
	}
	return NoBasis
}

// Commute reports whether g and h commute as operators. Gates on disjoint
// qubits always commute. For shared qubits, the per-qubit diagonal-basis
// rule is applied (see Basis). Barriers never commute with gates sharing
// their qubit span, making them strict scheduling fences. Identical unitary
// gates trivially commute.
//
// The test is sound (never claims commutation falsely) but not complete:
// exotic commuting pairs outside the diagonal-basis families are reported
// as non-commuting, which only costs optimisation opportunity, never
// correctness. internal/sim cross-validates the rule against explicit
// unitaries.
func Commute(g, h Gate) bool {
	if !g.SharesQubit(h) {
		return true
	}
	return CommuteSharing(g, h)
}

// CommuteSharing is Commute for gates already known to share at least one
// qubit, skipping the SharesQubit scan. Hot paths that walk per-qubit gate
// chains (where sharing is structural) call it directly. The op-pair
// classification table answers the common cases — barriers and
// non-unitaries never commute, uniformly Z- or X-diagonal pairs always do —
// in one load; only position-dependent pairs (e.g. CX/CX) take the
// per-shared-qubit scan.
func CommuteSharing(g, h Gate) bool {
	if g.Op >= numOps || h.Op >= numOps {
		return false
	}
	switch pairClassTab[g.Op][h.Op] {
	case pairAlways:
		return true
	case pairNever:
		// Covers barriers and measurement/reset sharing a qubit with
		// anything: order matters.
		return false
	}
	if g.Equal(h) {
		return true
	}
	for _, q := range g.Qubits {
		if !h.On(q) {
			continue
		}
		bg, bh := g.BasisOn(q), h.BasisOn(q)
		if bg == NoBasis || bh == NoBasis || bg != bh {
			return false
		}
	}
	return true
}

// CommutativeFront returns the indices (into gates, in ascending order) of
// the commutative forward (CF) gates of the sequence, per Definition 1 of
// the paper: gate k is CF iff it commutes pairwise with every earlier gate
// in the sequence. Because disjoint-qubit pairs always commute, only
// earlier gates sharing a qubit need checking.
//
// window bounds the scan: only the first window gates of the sequence are
// considered as CF candidates (window <= 0 means the whole sequence). The
// scan aborts early per qubit once a blocking gate is found, so the cost is
// O(window * avg-stack-height).
func CommutativeFront(gates []Gate, window int) []int {
	if window <= 0 || window > len(gates) {
		window = len(gates)
	}
	// blocked[q] == true means some earlier scanned gate on q does not
	// commute with *any* later gate in the Z/X classification... we cannot
	// shortcut like that, because commutation is pairwise per candidate.
	// Instead keep, per qubit, the list of earlier gate indices acting on
	// that qubit; candidates check against those lists.
	perQubit := make(map[int][]int)
	var front []int
	for k := 0; k < window; k++ {
		g := gates[k]
		ok := true
	scan:
		for _, q := range g.Qubits {
			for _, j := range perQubit[q] {
				if !Commute(gates[j], g) {
					ok = false
					break scan
				}
			}
		}
		if ok {
			front = append(front, k)
		}
		for _, q := range g.Qubits {
			perQubit[q] = append(perQubit[q], k)
		}
	}
	return front
}
