package circuit

// Basis classifies how a gate acts on one of its operand qubits for the
// purpose of commutation analysis (paper §IV-B, "Commutativity Detection").
//
// A gate is Z-diagonal on a qubit when its action on that qubit commutes
// with Z (phase-type action: Z, S, T, Rz, u1, CZ on either operand, the
// control of a CX). It is X-diagonal when its action commutes with X
// (X, Rx, the target of a CX). Two gates sharing qubits commute whenever,
// on every shared qubit, both act diagonally in the same basis. This is the
// standard sufficient condition used by production compilers: it never
// declares a non-commuting pair commuting.
type Basis uint8

const (
	// NoBasis means the gate's action on the qubit is not diagonal in
	// either the Z or X basis (e.g. H, Y, U3, SWAP, measure).
	NoBasis Basis = iota
	// ZBasis means the gate acts Z-diagonally on the qubit.
	ZBasis
	// XBasis means the gate acts X-diagonally on the qubit.
	XBasis
)

// String implements fmt.Stringer.
func (b Basis) String() string {
	switch b {
	case ZBasis:
		return "Z"
	case XBasis:
		return "X"
	default:
		return "-"
	}
}

// BasisOn returns the commutation basis of gate g on qubit q. If g does not
// act on q the result is NoBasis.
func (g Gate) BasisOn(q int) Basis {
	pos := -1
	for i, gq := range g.Qubits {
		if gq == q {
			pos = i
			break
		}
	}
	if pos < 0 {
		return NoBasis
	}
	switch g.Op {
	case OpID, OpZ, OpS, OpSdg, OpT, OpTdg, OpRZ, OpU1:
		return ZBasis
	case OpX, OpRX, OpSX:
		return XBasis
	case OpCZ, OpCP, OpRZZ:
		// Diagonal two-qubit gates act Z-diagonally on both operands.
		return ZBasis
	case OpRXX:
		// The Mølmer–Sørensen gate is diagonal in the X basis on both
		// operands.
		return XBasis
	case OpCX:
		if pos == 0 {
			return ZBasis // control
		}
		return XBasis // target
	case OpCCX:
		if pos < 2 {
			return ZBasis // controls
		}
		return XBasis // target
	default:
		return NoBasis
	}
}

// Commute reports whether g and h commute as operators. Gates on disjoint
// qubits always commute. For shared qubits, the per-qubit diagonal-basis
// rule is applied (see Basis). Barriers never commute with gates sharing
// their qubit span, making them strict scheduling fences. Identical unitary
// gates trivially commute.
//
// The test is sound (never claims commutation falsely) but not complete:
// exotic commuting pairs outside the diagonal-basis families are reported
// as non-commuting, which only costs optimisation opportunity, never
// correctness. internal/sim cross-validates the rule against explicit
// unitaries.
func Commute(g, h Gate) bool {
	if !g.SharesQubit(h) {
		return true
	}
	if g.Op == OpBarrier || h.Op == OpBarrier {
		return false
	}
	if !g.Op.Unitary() || !h.Op.Unitary() {
		// Measurement/reset sharing a qubit with anything: order matters.
		return false
	}
	if g.Equal(h) {
		return true
	}
	for _, q := range g.Qubits {
		if !h.On(q) {
			continue
		}
		bg, bh := g.BasisOn(q), h.BasisOn(q)
		if bg == NoBasis || bh == NoBasis || bg != bh {
			return false
		}
	}
	return true
}

// CommutativeFront returns the indices (into gates, in ascending order) of
// the commutative forward (CF) gates of the sequence, per Definition 1 of
// the paper: gate k is CF iff it commutes pairwise with every earlier gate
// in the sequence. Because disjoint-qubit pairs always commute, only
// earlier gates sharing a qubit need checking.
//
// window bounds the scan: only the first window gates of the sequence are
// considered as CF candidates (window <= 0 means the whole sequence). The
// scan aborts early per qubit once a blocking gate is found, so the cost is
// O(window * avg-stack-height).
func CommutativeFront(gates []Gate, window int) []int {
	if window <= 0 || window > len(gates) {
		window = len(gates)
	}
	// blocked[q] == true means some earlier scanned gate on q does not
	// commute with *any* later gate in the Z/X classification... we cannot
	// shortcut like that, because commutation is pairwise per candidate.
	// Instead keep, per qubit, the list of earlier gate indices acting on
	// that qubit; candidates check against those lists.
	perQubit := make(map[int][]int)
	var front []int
	for k := 0; k < window; k++ {
		g := gates[k]
		ok := true
	scan:
		for _, q := range g.Qubits {
			for _, j := range perQubit[q] {
				if !Commute(gates[j], g) {
					ok = false
					break scan
				}
			}
		}
		if ok {
			front = append(front, k)
		}
		for _, q := range g.Qubits {
			perQubit[q] = append(perQubit[q], k)
		}
	}
	return front
}
