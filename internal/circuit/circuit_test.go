package circuit

import (
	"strings"
	"testing"
)

func TestBuilderChaining(t *testing.T) {
	c := New(3)
	c.H(0).CX(0, 1).CX(1, 2).T(2).Measure(2, 0)
	if c.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", c.Len())
	}
	if c.Gates[0].Op != OpH || c.Gates[4].Op != OpMeasure {
		t.Error("gate sequence mismatch")
	}
	if c.NumClbits != 1 {
		t.Errorf("NumClbits = %d, want 1 (auto-grown by Measure)", c.NumClbits)
	}
}

func TestAddPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add should panic on out-of-range qubit")
		}
	}()
	New(2).CX(0, 2)
}

func TestAddPanicsOnInvalidGate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add should panic on duplicate operands")
		}
	}()
	New(2).CX(1, 1)
}

func TestDepth(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Circuit
		want  int
	}{
		{"empty", func() *Circuit { return New(3) }, 0},
		{"parallel singles", func() *Circuit { return New(3).H(0).H(1).H(2) }, 1},
		{"serial chain", func() *Circuit { return New(1).H(0).T(0).H(0) }, 3},
		{"cx ladder", func() *Circuit { return New(3).CX(0, 1).CX(1, 2) }, 2},
		{"independent cx", func() *Circuit { return New(4).CX(0, 1).CX(2, 3) }, 1},
		{"barrier forces level", func() *Circuit {
			return New(2).H(0).Barrier(0, 1).H(1)
		}, 2},
		{"ghz-3", func() *Circuit { return New(3).H(0).CX(0, 1).CX(1, 2) }, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.build().Depth(); got != tc.want {
				t.Errorf("Depth() = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestCountOpsAndTwoQubitCount(t *testing.T) {
	c := New(4).H(0).H(1).CX(0, 1).CX(2, 3).CZ(1, 2).T(3)
	ops := c.CountOps()
	if ops[OpH] != 2 || ops[OpCX] != 2 || ops[OpCZ] != 1 || ops[OpT] != 1 {
		t.Errorf("CountOps() = %v", ops)
	}
	if got := c.TwoQubitCount(); got != 3 {
		t.Errorf("TwoQubitCount() = %d, want 3", got)
	}
}

func TestUsedQubits(t *testing.T) {
	c := New(10).H(0).CX(0, 5)
	if got := c.UsedQubits(); got != 2 {
		t.Errorf("UsedQubits() = %d, want 2", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(2).CX(0, 1)
	d := c.Clone()
	d.Gates[0].Qubits[0] = 1
	d.Gates[0].Qubits[1] = 0
	if c.Gates[0].Qubits[0] != 0 {
		t.Error("Clone shares gate storage")
	}
	d.H(0)
	if c.Len() != 1 {
		t.Error("Clone shares the gate slice")
	}
}

func TestReversed(t *testing.T) {
	c := New(3).H(0).CX(0, 1).CX(1, 2)
	r := c.Reversed()
	if r.Len() != 3 {
		t.Fatalf("Reversed length = %d", r.Len())
	}
	if r.Gates[0].Op != OpCX || r.Gates[0].Qubits[0] != 1 {
		t.Errorf("Reversed()[0] = %v", r.Gates[0])
	}
	if r.Gates[2].Op != OpH {
		t.Errorf("Reversed()[2] = %v", r.Gates[2])
	}
	// Reversing twice restores the original order.
	if !r.Reversed().Equal(c) {
		t.Error("double reverse should equal original")
	}
}

func TestValidate(t *testing.T) {
	good := New(2).H(0).CX(0, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid circuit rejected: %v", err)
	}
	bad := &Circuit{NumQubits: 2, Gates: []Gate{New2Q(OpCX, 0, 5)}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range gate accepted")
	}
	zero := &Circuit{NumQubits: 0}
	if err := zero.Validate(); err == nil {
		t.Error("zero-qubit circuit accepted")
	}
}

func TestEqual(t *testing.T) {
	a := New(2).H(0).CX(0, 1)
	b := New(2).H(0).CX(0, 1)
	if !a.Equal(b) {
		t.Error("identical circuits unequal")
	}
	if a.Equal(New(2).H(0)) {
		t.Error("different lengths equal")
	}
	if a.Equal(New(3).H(0).CX(0, 1)) {
		t.Error("different widths equal")
	}
}

func TestBarrierDefaultsToAllQubits(t *testing.T) {
	c := New(3).Barrier()
	if len(c.Gates[0].Qubits) != 3 {
		t.Errorf("Barrier() spans %d qubits, want 3", len(c.Gates[0].Qubits))
	}
}

func TestAppendAll(t *testing.T) {
	a := New(3).H(0)
	b := New(3).CX(0, 1).CX(1, 2)
	a.AppendAll(b)
	if a.Len() != 3 {
		t.Fatalf("AppendAll length = %d, want 3", a.Len())
	}
	// Deep copy: mutating b must not affect a.
	b.Gates[0].Qubits[0] = 2
	if a.Gates[1].Qubits[0] != 0 {
		t.Error("AppendAll must deep-copy gates")
	}
}

func TestStringContainsSummary(t *testing.T) {
	c := NewNamed("demo", 2).H(0).CX(0, 1)
	s := c.String()
	for _, want := range []string{"demo", "2 qubits", "2 gates", "h q[0]", "cx q[0],q[1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
}
