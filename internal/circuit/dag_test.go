package circuit

import (
	"testing"
	"testing/quick"
)

func TestDAGStructure(t *testing.T) {
	// h q0; cx q0,q1; cx q1,q2; t q0
	c := New(3).H(0).CX(0, 1).CX(1, 2).T(0)
	d := NewDAG(c)
	if d.Len() != 4 {
		t.Fatalf("Len() = %d", d.Len())
	}
	cases := []struct {
		node  int
		preds []int
		succs []int
	}{
		{0, nil, []int{1}},
		{1, []int{0}, []int{2, 3}},
		{2, []int{1}, nil},
		{3, []int{1}, nil},
	}
	for _, tc := range cases {
		if !equalInts(d.Preds[tc.node], tc.preds) {
			t.Errorf("Preds[%d] = %v, want %v", tc.node, d.Preds[tc.node], tc.preds)
		}
		if !equalInts(d.Succs[tc.node], tc.succs) {
			t.Errorf("Succs[%d] = %v, want %v", tc.node, d.Succs[tc.node], tc.succs)
		}
	}
}

func TestDAGNoDuplicateEdges(t *testing.T) {
	// Two gates sharing BOTH qubits must produce a single dependency edge.
	c := New(2).CX(0, 1).CX(0, 1)
	d := NewDAG(c)
	if len(d.Preds[1]) != 1 || len(d.Succs[0]) != 1 {
		t.Errorf("duplicate edges: preds=%v succs=%v", d.Preds[1], d.Succs[0])
	}
}

func TestDAGFrontLayer(t *testing.T) {
	c := New(4).H(0).H(1).CX(0, 1).CX(2, 3)
	d := NewDAG(c)
	front := d.FrontLayer()
	if !equalInts(front, []int{0, 1, 3}) {
		t.Errorf("FrontLayer() = %v, want [0 1 3]", front)
	}
}

func TestDAGInDegrees(t *testing.T) {
	c := New(3).H(0).CX(0, 1).CX(1, 2)
	d := NewDAG(c)
	deg := d.InDegrees()
	if !equalInts(deg, []int{0, 1, 1}) {
		t.Errorf("InDegrees() = %v", deg)
	}
	// The returned slice must be a fresh copy each call.
	deg[0] = 99
	if d.InDegrees()[0] != 0 {
		t.Error("InDegrees must return a fresh slice")
	}
}

func TestDAGLongestPathMatchesDepth(t *testing.T) {
	f := func(seed int64) bool {
		gates := randomGateSeq(seed, 60, 5)
		c := &Circuit{NumQubits: 5, Gates: gates}
		return NewDAG(c).LongestPath() == c.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDAGGateAccessors(t *testing.T) {
	c := New(2).H(0).CX(0, 1)
	d := NewDAG(c)
	if d.Circuit() != c {
		t.Error("Circuit() should return the source circuit")
	}
	if d.Gate(1).Op != OpCX {
		t.Errorf("Gate(1) = %v", d.Gate(1))
	}
	if got := d.TopologicalOrder(); !equalInts(got, []int{0, 1}) {
		t.Errorf("TopologicalOrder() = %v", got)
	}
}

// Property: every DAG edge goes forward in program order, and every pair of
// consecutive gates on a qubit is connected.
func TestDAGEdgeProperties(t *testing.T) {
	f := func(seed int64) bool {
		gates := randomGateSeq(seed, 50, 6)
		c := &Circuit{NumQubits: 6, Gates: gates}
		d := NewDAG(c)
		for k, preds := range d.Preds {
			for _, p := range preds {
				if p >= k {
					return false
				}
				if !gates[p].SharesQubit(gates[k]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
