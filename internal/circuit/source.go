package circuit

import (
	"fmt"
	"io"
)

// Source is a pull-based gate stream: the streaming mapping pipeline's
// alternative to materialising a whole Circuit before mapping starts.
// NumQubits (and NumClbits) must be known up front — the OpenQASM grammar
// freezes register declarations at the first operation, so any front end
// can satisfy this before emitting its first gate.
//
// Next returns the gates in program order and io.EOF after the last one.
// Any other error is terminal: the stream is corrupt past that point and
// callers must not retry. Returned gates are immutable and their slices
// remain valid after subsequent Next calls.
type Source interface {
	NumQubits() int
	NumClbits() int
	Next() (Gate, error)
}

// SliceSource adapts an in-memory circuit to the Source interface, mainly
// so whole-circuit callers (the service, the differential tests) can run
// the streaming pipeline without a second front end.
type SliceSource struct {
	c   *Circuit
	pos int
}

// NewSliceSource returns a Source yielding c's gates in order. The circuit
// must not be mutated while the source is in use.
func NewSliceSource(c *Circuit) *SliceSource { return &SliceSource{c: c} }

// NumQubits implements Source.
func (s *SliceSource) NumQubits() int { return s.c.NumQubits }

// NumClbits implements Source.
func (s *SliceSource) NumClbits() int { return s.c.NumClbits }

// Next implements Source.
func (s *SliceSource) Next() (Gate, error) {
	if s.pos >= len(s.c.Gates) {
		return Gate{}, io.EOF
	}
	g := s.c.Gates[s.pos]
	s.pos++
	return g, nil
}

// DecomposeSource lowers an inner gate stream to the base gate set on the
// fly — the streaming counterpart of Decompose. Compound gates expand into
// a small bounded buffer (the largest expansion is the 15-gate Toffoli),
// so resident memory stays O(1) regardless of stream length.
type DecomposeSource struct {
	src Source
	d   decomposer
	pos int
}

// NewDecomposeSource wraps src in a streaming lowering pass.
func NewDecomposeSource(src Source) *DecomposeSource {
	ds := &DecomposeSource{src: src}
	ds.d.out = &Circuit{NumQubits: src.NumQubits(), NumClbits: src.NumClbits()}
	return ds
}

// NumQubits implements Source.
func (s *DecomposeSource) NumQubits() int { return s.d.out.NumQubits }

// NumClbits implements Source.
func (s *DecomposeSource) NumClbits() int { return s.d.out.NumClbits }

// Next implements Source.
func (s *DecomposeSource) Next() (g Gate, err error) {
	defer func() {
		if r := recover(); r != nil {
			// Circuit.Add panics on malformed gates; a Source reports them.
			g, err = Gate{}, fmt.Errorf("circuit: %v", r)
		}
	}()
	for s.pos >= len(s.d.out.Gates) {
		in, err := s.src.Next()
		if err != nil {
			return Gate{}, err
		}
		// The expansion buffer is drained before each refill; gate values
		// already handed out keep their own qubit/parameter slices (the
		// arenas and per-gate builders never recycle), so truncating is safe.
		s.d.out.Gates = s.d.out.Gates[:0]
		s.pos = 0
		decomposeInto(&s.d, in)
	}
	out := s.d.out.Gates[s.pos]
	s.pos++
	return out, nil
}

// Window is the bounded gate buffer between a Source and a streaming
// mapper: the resident slice of the circuit the mapper's commutative-front
// (or DAG-front) engine currently needs. The streaming drivers refill it in
// batches, and Compact evicts settled prefix state — gates the mapper has
// already scheduled — reusing one backing array so resident memory is
// O(batch + live), independent of total stream length.
type Window struct {
	src   Source
	batch int
	gates []Gate
	open  bool
	err   error // sticky terminal source/validation error
	// chk replays Circuit.Add's per-gate validation (including classical-bit
	// growth) so the mappers can trust buffered gates without a whole-circuit
	// Validate pass.
	chk Circuit
}

// NewWindow returns a window over src refilled batch gates at a time.
func NewWindow(src Source, batch int) *Window {
	if batch < 1 {
		batch = 1
	}
	return &Window{
		src:   src,
		batch: batch,
		open:  true,
		chk:   Circuit{NumQubits: src.NumQubits(), NumClbits: src.NumClbits()},
	}
}

// Fill pulls up to one batch of further gates from the source, validating
// each against the stream header and the mapper base set. The first source
// or validation error closes the window and is returned (and re-returned:
// a corrupt stream must not be resumed).
func (w *Window) Fill() error {
	if !w.open {
		return w.err
	}
	for n := 0; n < w.batch; n++ {
		g, err := w.src.Next()
		if err == io.EOF {
			w.open = false
			return nil
		}
		if err != nil {
			w.open = false
			w.err = err
			return err
		}
		if err := w.chk.check(g); err != nil {
			w.open = false
			w.err = err
			return err
		}
		if !IsBase(g.Op) {
			w.open = false
			w.err = fmt.Errorf("circuit: stream contains compound gate %s; lower it first (circuit.NewDecomposeSource)", g.Op)
			return w.err
		}
		w.gates = append(w.gates, g)
	}
	return nil
}

// Gates returns the buffered gates in stream order. The slice is owned by
// the window: valid until the next Fill or Compact.
func (w *Window) Gates() []Gate { return w.gates }

// Open reports whether the source may still yield more gates.
func (w *Window) Open() bool { return w.open }

// NumQubits returns the stream's qubit count.
func (w *Window) NumQubits() int { return w.chk.NumQubits }

// NumClbits returns the stream's classical-bit count seen so far.
func (w *Window) NumClbits() int { return w.chk.NumClbits }

// Compact retains only the gates at the given buffer indices (ascending)
// and evicts everything else — the settled prefix whose schedule chunks
// have been flushed. The backing array is reused and the evicted tail
// zeroed so dropped gates stop pinning their qubit/parameter slices.
func (w *Window) Compact(keep []int) {
	dst := 0
	for _, i := range keep {
		w.gates[dst] = w.gates[i]
		dst++
	}
	tail := w.gates[dst:]
	for i := range tail {
		tail[i] = Gate{}
	}
	w.gates = w.gates[:dst]
}
