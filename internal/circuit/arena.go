package circuit

// IntArena hands out small []int blocks carved from larger backing arrays,
// so hot loops that materialise one qubit slice per emitted gate (the
// remappers' launch paths) cost one allocation per few thousand gates
// instead of one per gate. Returned slices have capacity == length, so an
// append by the holder can never alias a neighbouring block. The arena
// itself never frees: blocks live as long as any slice taken from them,
// which matches the remapper lifecycle (everything is reachable from the
// Result).
type IntArena struct {
	buf []int
}

// arenaBlock is the backing-array growth unit (ints).
const arenaBlock = 4096

// Take returns a zeroed slice of length n from the arena.
func (a *IntArena) Take(n int) []int {
	if len(a.buf)+n > cap(a.buf) {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.buf = make([]int, 0, size)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	return a.buf[off : off+n : off+n]
}

// Reset drops the arena's claim on its current block. Slices already taken
// remain valid; subsequent Takes may reuse nothing — Reset only matters for
// callers recycling an arena across runs whose outputs are dead.
func (a *IntArena) Reset() {
	a.buf = nil
}

// FloatArena is IntArena over float64 blocks: batch storage for per-gate
// parameter slices when a whole circuit is copied at once (Schedule.Circuit),
// where one allocation per gate would dominate the copy.
type FloatArena struct {
	buf []float64
}

// Take returns a zeroed slice of length n from the arena.
func (a *FloatArena) Take(n int) []float64 {
	if len(a.buf)+n > cap(a.buf) {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.buf = make([]float64, 0, size)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	return a.buf[off : off+n : off+n]
}
