// Package circuit provides the quantum circuit intermediate representation
// shared by every component of the CODAR reproduction: gates, circuits,
// dependency DAGs, gate-commutation rules and decomposition into the
// {1-qubit, CX} base set that the mapping algorithms operate on.
package circuit

import (
	"fmt"
	"strings"
)

// Op identifies a quantum operation kind. The set covers the gates used by
// the paper's benchmarks (OpenQASM 2.0 / qelib1 subset) plus the SWAP gate
// inserted by the remappers.
type Op uint8

// Supported operations. Ops up to OpU3 are single-qubit, OpCX..OpRZZ are
// two-qubit, OpCCX is three-qubit. OpMeasure, OpReset and OpBarrier are
// non-unitary circuit directives.
const (
	OpID      Op = iota // identity (no-op placeholder)
	OpX                 // Pauli-X
	OpY                 // Pauli-Y
	OpZ                 // Pauli-Z
	OpH                 // Hadamard
	OpS                 // phase gate S = diag(1, i)
	OpSdg               // S-dagger
	OpT                 // T = diag(1, e^{i pi/4})
	OpTdg               // T-dagger
	OpSX                // sqrt(X)
	OpRX                // rotation about X by Params[0]
	OpRY                // rotation about Y by Params[0]
	OpRZ                // rotation about Z by Params[0]
	OpU1                // diagonal phase gate diag(1, e^{i lambda})
	OpU2                // u2(phi, lambda) one-pulse gate
	OpU3                // u3(theta, phi, lambda) generic single-qubit gate
	OpCX                // controlled-X; Qubits[0] is control, Qubits[1] target
	OpCZ                // controlled-Z (symmetric)
	OpSwap              // SWAP (inserted by remappers; 3 CX equivalent)
	OpCP                // controlled-phase cp(lambda) (symmetric, diagonal)
	OpRZZ               // ZZ interaction rzz(theta) (symmetric, diagonal)
	OpRXX               // XX interaction rxx(theta): the ion-trap Mølmer–Sørensen gate (Table I)
	OpCCX               // Toffoli; Qubits[0,1] controls, Qubits[2] target
	OpMeasure           // measurement into classical bit Cbit
	OpReset             // reset qubit to |0>
	OpBarrier           // scheduling barrier across Qubits
	numOps
)

// opInfo carries static per-op metadata.
type opInfo struct {
	name    string // OpenQASM-style lowercase mnemonic
	qubits  int    // operand count (0 = variadic, only OpBarrier)
	params  int    // parameter count
	unitary bool
}

var opTable = [numOps]opInfo{
	OpID:      {"id", 1, 0, true},
	OpX:       {"x", 1, 0, true},
	OpY:       {"y", 1, 0, true},
	OpZ:       {"z", 1, 0, true},
	OpH:       {"h", 1, 0, true},
	OpS:       {"s", 1, 0, true},
	OpSdg:     {"sdg", 1, 0, true},
	OpT:       {"t", 1, 0, true},
	OpTdg:     {"tdg", 1, 0, true},
	OpSX:      {"sx", 1, 0, true},
	OpRX:      {"rx", 1, 1, true},
	OpRY:      {"ry", 1, 1, true},
	OpRZ:      {"rz", 1, 1, true},
	OpU1:      {"u1", 1, 1, true},
	OpU2:      {"u2", 1, 2, true},
	OpU3:      {"u3", 1, 3, true},
	OpCX:      {"cx", 2, 0, true},
	OpCZ:      {"cz", 2, 0, true},
	OpSwap:    {"swap", 2, 0, true},
	OpCP:      {"cp", 2, 1, true},
	OpRZZ:     {"rzz", 2, 1, true},
	OpRXX:     {"rxx", 2, 1, true},
	OpCCX:     {"ccx", 3, 0, true},
	OpMeasure: {"measure", 1, 0, false},
	OpReset:   {"reset", 1, 0, false},
	OpBarrier: {"barrier", 0, 0, false},
}

// Name returns the OpenQASM-style lowercase mnemonic for the op.
func (o Op) Name() string {
	if o >= numOps {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opTable[o].name
}

// String implements fmt.Stringer.
func (o Op) String() string { return o.Name() }

// NumQubits returns the operand count for the op; 0 means variadic
// (only OpBarrier).
func (o Op) NumQubits() int {
	if o >= numOps {
		return 0
	}
	return opTable[o].qubits
}

// NumParams returns the number of real parameters the op takes.
func (o Op) NumParams() int {
	if o >= numOps {
		return 0
	}
	return opTable[o].params
}

// Unitary reports whether the op is a unitary gate (as opposed to a
// measurement, reset or barrier directive).
func (o Op) Unitary() bool {
	if o >= numOps {
		return false
	}
	return opTable[o].unitary
}

// SingleQubit reports whether the op is a unitary acting on exactly one qubit.
func (o Op) SingleQubit() bool { return o.Unitary() && o.NumQubits() == 1 }

// TwoQubit reports whether the op is a unitary acting on exactly two qubits.
func (o Op) TwoQubit() bool { return o.Unitary() && o.NumQubits() == 2 }

// OpByName resolves an OpenQASM mnemonic (e.g. "cx", "u3") to its Op.
// It also accepts the common aliases "cnot" (cx), "p"/"phase" (u1),
// "u" (u3), "tof"/"toffoli" (ccx) and "cphase"/"cu1" (cp).
func OpByName(name string) (Op, bool) {
	name = strings.ToLower(name)
	switch name {
	case "cnot":
		return OpCX, true
	case "p", "phase":
		return OpU1, true
	case "u":
		return OpU3, true
	case "tof", "toffoli":
		return OpCCX, true
	case "cphase", "cu1":
		return OpCP, true
	case "xx", "ms":
		return OpRXX, true
	}
	for o := Op(0); o < numOps; o++ {
		if opTable[o].name == name {
			return o, true
		}
	}
	return OpID, false
}

// Gate is a single operation applied to specific qubits. Qubit indices are
// logical before mapping and physical after mapping; the IR does not
// distinguish, the surrounding context does.
type Gate struct {
	Op     Op
	Qubits []int
	Params []float64
	// Cbit is the classical destination bit for OpMeasure; unused otherwise.
	Cbit int
}

// New1Q constructs a single-qubit gate without parameters.
func New1Q(op Op, q int) Gate { return Gate{Op: op, Qubits: []int{q}} }

// New1QP constructs a parameterised single-qubit gate.
func New1QP(op Op, q int, params ...float64) Gate {
	return Gate{Op: op, Qubits: []int{q}, Params: params}
}

// New2Q constructs a two-qubit gate without parameters.
func New2Q(op Op, a, b int) Gate { return Gate{Op: op, Qubits: []int{a, b}} }

// New2QP constructs a parameterised two-qubit gate.
func New2QP(op Op, a, b int, params ...float64) Gate {
	return Gate{Op: op, Qubits: []int{a, b}, Params: params}
}

// Validate checks operand/parameter arity and operand distinctness.
func (g Gate) Validate() error {
	if g.Op >= numOps {
		return fmt.Errorf("circuit: unknown op %d", uint8(g.Op))
	}
	want := g.Op.NumQubits()
	if want > 0 && len(g.Qubits) != want {
		return fmt.Errorf("circuit: %s expects %d qubits, got %d", g.Op, want, len(g.Qubits))
	}
	if g.Op == OpBarrier && len(g.Qubits) == 0 {
		return fmt.Errorf("circuit: barrier needs at least one qubit")
	}
	if len(g.Params) != g.Op.NumParams() {
		return fmt.Errorf("circuit: %s expects %d params, got %d", g.Op, g.Op.NumParams(), len(g.Params))
	}
	for i := 0; i < len(g.Qubits); i++ {
		if g.Qubits[i] < 0 {
			return fmt.Errorf("circuit: %s has negative qubit %d", g.Op, g.Qubits[i])
		}
		for j := i + 1; j < len(g.Qubits); j++ {
			if g.Qubits[i] == g.Qubits[j] {
				return fmt.Errorf("circuit: %s uses qubit %d twice", g.Op, g.Qubits[i])
			}
		}
	}
	return nil
}

// On reports whether the gate acts on qubit q.
func (g Gate) On(q int) bool {
	for _, gq := range g.Qubits {
		if gq == q {
			return true
		}
	}
	return false
}

// SharesQubit reports whether g and h act on at least one common qubit.
func (g Gate) SharesQubit(h Gate) bool {
	for _, q := range g.Qubits {
		if h.On(q) {
			return true
		}
	}
	return false
}

// Remap returns a copy of the gate with every qubit index i replaced by
// f(i). Parameters and classical bits are preserved.
func (g Gate) Remap(f func(int) int) Gate {
	qs := make([]int, len(g.Qubits))
	for i, q := range g.Qubits {
		qs[i] = f(q)
	}
	out := g
	out.Qubits = qs
	return out
}

// Clone returns a deep copy of the gate.
func (g Gate) Clone() Gate {
	out := g
	out.Qubits = append([]int(nil), g.Qubits...)
	if g.Params != nil {
		out.Params = append([]float64(nil), g.Params...)
	}
	return out
}

// Equal reports structural equality (op, qubits, params, cbit).
func (g Gate) Equal(h Gate) bool {
	if g.Op != h.Op || len(g.Qubits) != len(h.Qubits) || len(g.Params) != len(h.Params) || g.Cbit != h.Cbit {
		return false
	}
	for i := range g.Qubits {
		if g.Qubits[i] != h.Qubits[i] {
			return false
		}
	}
	for i := range g.Params {
		if g.Params[i] != h.Params[i] {
			return false
		}
	}
	return true
}

// String renders the gate in OpenQASM-like syntax, e.g. "cx q[0],q[3]".
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Op.Name())
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	if g.Op == OpMeasure {
		fmt.Fprintf(&b, " -> c[%d]", g.Cbit)
	}
	return b.String()
}
