package circuit

import (
	"strings"
	"testing"
)

func TestOpMetadata(t *testing.T) {
	cases := []struct {
		op      Op
		name    string
		qubits  int
		params  int
		unitary bool
	}{
		{OpID, "id", 1, 0, true},
		{OpX, "x", 1, 0, true},
		{OpH, "h", 1, 0, true},
		{OpT, "t", 1, 0, true},
		{OpTdg, "tdg", 1, 0, true},
		{OpRX, "rx", 1, 1, true},
		{OpRZ, "rz", 1, 1, true},
		{OpU1, "u1", 1, 1, true},
		{OpU2, "u2", 1, 2, true},
		{OpU3, "u3", 1, 3, true},
		{OpCX, "cx", 2, 0, true},
		{OpCZ, "cz", 2, 0, true},
		{OpSwap, "swap", 2, 0, true},
		{OpCP, "cp", 2, 1, true},
		{OpRZZ, "rzz", 2, 1, true},
		{OpCCX, "ccx", 3, 0, true},
		{OpMeasure, "measure", 1, 0, false},
		{OpReset, "reset", 1, 0, false},
		{OpBarrier, "barrier", 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.op.Name(); got != tc.name {
				t.Errorf("Name() = %q, want %q", got, tc.name)
			}
			if got := tc.op.NumQubits(); got != tc.qubits {
				t.Errorf("NumQubits() = %d, want %d", got, tc.qubits)
			}
			if got := tc.op.NumParams(); got != tc.params {
				t.Errorf("NumParams() = %d, want %d", got, tc.params)
			}
			if got := tc.op.Unitary(); got != tc.unitary {
				t.Errorf("Unitary() = %v, want %v", got, tc.unitary)
			}
		})
	}
}

func TestOpByName(t *testing.T) {
	cases := []struct {
		in   string
		want Op
		ok   bool
	}{
		{"cx", OpCX, true},
		{"CX", OpCX, true},
		{"cnot", OpCX, true},
		{"h", OpH, true},
		{"u", OpU3, true},
		{"p", OpU1, true},
		{"phase", OpU1, true},
		{"cu1", OpCP, true},
		{"toffoli", OpCCX, true},
		{"tof", OpCCX, true},
		{"frobnicate", OpID, false},
		{"", OpID, false},
	}
	for _, tc := range cases {
		got, ok := OpByName(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("OpByName(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestSingleTwoQubitClassification(t *testing.T) {
	if !OpH.SingleQubit() || OpH.TwoQubit() {
		t.Error("H should be single-qubit only")
	}
	if !OpCX.TwoQubit() || OpCX.SingleQubit() {
		t.Error("CX should be two-qubit only")
	}
	if OpMeasure.SingleQubit() {
		t.Error("measure is not a unitary single-qubit gate")
	}
	if OpCCX.TwoQubit() || OpCCX.SingleQubit() {
		t.Error("CCX is neither single- nor two-qubit")
	}
}

func TestGateValidate(t *testing.T) {
	cases := []struct {
		name    string
		g       Gate
		wantErr bool
	}{
		{"valid h", New1Q(OpH, 0), false},
		{"valid cx", New2Q(OpCX, 0, 1), false},
		{"valid rz", New1QP(OpRZ, 2, 0.5), false},
		{"valid u3", New1QP(OpU3, 0, 1, 2, 3), false},
		{"cx same qubit", New2Q(OpCX, 1, 1), true},
		{"cx one operand", Gate{Op: OpCX, Qubits: []int{0}}, true},
		{"h two operands", Gate{Op: OpH, Qubits: []int{0, 1}}, true},
		{"rz missing param", Gate{Op: OpRZ, Qubits: []int{0}}, true},
		{"h stray param", Gate{Op: OpH, Qubits: []int{0}, Params: []float64{1}}, true},
		{"negative qubit", New1Q(OpH, -1), true},
		{"empty barrier", Gate{Op: OpBarrier}, true},
		{"barrier over 3", Gate{Op: OpBarrier, Qubits: []int{0, 1, 2}}, false},
		{"ccx dup qubit", Gate{Op: OpCCX, Qubits: []int{0, 1, 0}}, true},
		{"unknown op", Gate{Op: numOps + 3, Qubits: []int{0}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.g.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestGateOnAndShares(t *testing.T) {
	cx := New2Q(OpCX, 2, 5)
	if !cx.On(2) || !cx.On(5) || cx.On(3) {
		t.Error("On() misreports operands")
	}
	h := New1Q(OpH, 5)
	if !cx.SharesQubit(h) || !h.SharesQubit(cx) {
		t.Error("SharesQubit should be true for overlapping gates")
	}
	x := New1Q(OpX, 7)
	if cx.SharesQubit(x) {
		t.Error("SharesQubit should be false for disjoint gates")
	}
}

func TestGateRemap(t *testing.T) {
	g := New2QP(OpCP, 1, 3, 0.25)
	mapped := g.Remap(func(q int) int { return q * 10 })
	if mapped.Qubits[0] != 10 || mapped.Qubits[1] != 30 {
		t.Errorf("Remap produced %v", mapped.Qubits)
	}
	if g.Qubits[0] != 1 || g.Qubits[1] != 3 {
		t.Error("Remap must not mutate the original")
	}
	if mapped.Params[0] != 0.25 {
		t.Error("Remap must preserve params")
	}
}

func TestGateCloneIndependence(t *testing.T) {
	g := New2QP(OpRZZ, 0, 1, 1.5)
	c := g.Clone()
	c.Qubits[0] = 9
	c.Params[0] = 9
	if g.Qubits[0] != 0 || g.Params[0] != 1.5 {
		t.Error("Clone shares backing arrays with original")
	}
}

func TestGateEqual(t *testing.T) {
	a := New2QP(OpCP, 0, 1, 0.5)
	b := New2QP(OpCP, 0, 1, 0.5)
	if !a.Equal(b) {
		t.Error("identical gates should be Equal")
	}
	if a.Equal(New2QP(OpCP, 1, 0, 0.5)) {
		t.Error("operand order matters")
	}
	if a.Equal(New2QP(OpCP, 0, 1, 0.75)) {
		t.Error("params matter")
	}
	if a.Equal(New2Q(OpCZ, 0, 1)) {
		t.Error("op matters")
	}
}

func TestGateString(t *testing.T) {
	if got := New2Q(OpCX, 0, 3).String(); got != "cx q[0],q[3]" {
		t.Errorf("String() = %q", got)
	}
	if got := New1QP(OpRZ, 1, 0.5).String(); got != "rz(0.5) q[1]" {
		t.Errorf("String() = %q", got)
	}
	m := Gate{Op: OpMeasure, Qubits: []int{2}, Cbit: 2}
	if got := m.String(); !strings.Contains(got, "-> c[2]") {
		t.Errorf("measure String() = %q", got)
	}
}
