package circuit

import (
	"fmt"
	"sync"
)

// Assembly bundles a circuit with the derived structures the mapping
// pipeline keeps rebuilding when each stage receives only the raw
// *Circuit: the struct-of-arrays gate layout (eager — every consumer
// wants it), the dependency DAG and the reversed circuit's assembly
// (both lazy — only SABRE needs them, and only some passes need the
// reverse), plus the validity check (Validate + IsLowered, two O(gates)
// walks) memoised so a portfolio run over sixteen candidates pays for it
// once instead of sixteen times.
//
// An Assembly treats its circuit as immutable from construction on;
// callers that mutate c.Gates afterwards get stale derived views. The
// lazy fields are synchronised, so one Assembly may be shared across the
// portfolio worker pool.
type Assembly struct {
	Circ *Circuit
	SoA  *SoA

	dagOnce sync.Once
	dag     *DAG

	revOnce sync.Once
	rev     *Assembly

	chkOnce sync.Once
	chkErr  error
}

// Assemble builds the assembly for c, eagerly constructing the SoA layout.
func Assemble(c *Circuit) *Assembly {
	return &Assembly{Circ: c, SoA: NewSoA(c)}
}

// DAG returns the dependency DAG, built on first use.
func (a *Assembly) DAG() *DAG {
	a.dagOnce.Do(func() { a.dag = NewDAG(a.Circ) })
	return a.dag
}

// Reversed returns the assembly of the reversed circuit (the SABRE
// initial-layout backward pass), built on first use.
func (a *Assembly) Reversed() *Assembly {
	a.revOnce.Do(func() { a.rev = Assemble(a.Circ.Reversed()) })
	return a.rev
}

// Checked reports whether the circuit is valid and lowered to the base
// gate set, running the two O(gates) walks once and caching the verdict.
// Callers wrap the error with their own prefix ("codar:", "sabre:"), which
// reproduces the pre-assembly error text exactly.
func (a *Assembly) Checked() error {
	a.chkOnce.Do(func() {
		if err := a.Circ.Validate(); err != nil {
			a.chkErr = err
			return
		}
		if !IsLowered(a.Circ) {
			a.chkErr = fmt.Errorf("circuit %q contains compound gates; apply circuit.Decompose first", a.Circ.Name)
		}
	})
	return a.chkErr
}
