package circuit

// SoA is the struct-of-arrays mirror of a circuit's gate sequence, built
// once per circuit and shared by every traversal that only needs ops and
// operands (the CODAR commutative-front walk, the SWAP-candidate search,
// SABRE's front/extended-set scans). The gate slice ([]Gate, ~64 bytes per
// element with two pointer-backed slices) is cache-hostile for these loops:
// each step loads a full Gate value and chases Qubits through a separate
// allocation. Here the same information is four dense parallel arrays —
// an op byte, a two-qubit flag, and a flat operand pool addressed by
// offsets — so a window scan touches contiguous memory and the common
// "is gate i a blocked two-qubit gate, and on which pair?" question costs
// three indexed loads with no pointer chase.
//
// The offset scheme is the one the frontier engine already used privately:
// operand k of gate i lives at flat slot QOff[i]+k, and SlotGate inverts
// the mapping (slot → gate) for per-qubit chain bookkeeping. Lifting it
// here lets the frontier drop its private copies and every other consumer
// share one build.
type SoA struct {
	// Ops[i] is gate i's operation.
	Ops []Op
	// Is2Q[i] caches Ops[i].TwoQubit() — the hottest per-gate predicate.
	Is2Q []bool
	// QOff has len(Ops)+1 entries; gate i's operands occupy
	// Qubits[QOff[i]:QOff[i+1]].
	QOff []int32
	// Qubits is the flat operand pool.
	Qubits []int32
	// SlotGate[s] is the gate owning flat slot s (the inverse of QOff).
	SlotGate []int32
	// Basis[s] is the gate's commutation basis on the operand at slot s
	// (Gate.BasisOn of that qubit), so position-dependent commutation
	// checks compare two table bytes instead of walking Gate values.
	Basis []Basis
}

// NewSoA builds the struct-of-arrays layout for c's gates.
func NewSoA(c *Circuit) *SoA {
	n := len(c.Gates)
	total := 0
	for i := range c.Gates {
		total += len(c.Gates[i].Qubits)
	}
	s := &SoA{
		Ops:      make([]Op, n),
		Is2Q:     make([]bool, n),
		QOff:     make([]int32, n+1),
		Qubits:   make([]int32, 0, total),
		SlotGate: make([]int32, total),
		Basis:    make([]Basis, total),
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		s.Ops[i] = g.Op
		s.Is2Q[i] = g.Op.TwoQubit()
		s.QOff[i] = int32(len(s.Qubits))
		for k, q := range g.Qubits {
			if g.Op < numOps && k < 3 {
				s.Basis[len(s.Qubits)] = basisTab[g.Op][k]
			}
			s.SlotGate[len(s.Qubits)] = int32(i)
			s.Qubits = append(s.Qubits, int32(q))
		}
	}
	s.QOff[n] = int32(len(s.Qubits))
	return s
}

// Len returns the number of gates.
func (s *SoA) Len() int { return len(s.Ops) }

// NumQubits returns gate i's operand count.
func (s *SoA) NumQubits(i int) int { return int(s.QOff[i+1] - s.QOff[i]) }

// Qubit returns operand k of gate i.
func (s *SoA) Qubit(i, k int) int { return int(s.Qubits[int(s.QOff[i])+k]) }

// Pair returns the two operands of two-qubit gate i.
func (s *SoA) Pair(i int) (int, int) {
	off := s.QOff[i]
	return int(s.Qubits[off]), int(s.Qubits[off+1])
}

// Operands returns gate i's operand slice (a view into the flat pool; the
// caller must not mutate it).
func (s *SoA) Operands(i int) []int32 {
	return s.Qubits[s.QOff[i]:s.QOff[i+1]]
}
