package circuit

// Decompose lowers a circuit to the base gate set the remappers operate on:
// arbitrary single-qubit gates plus CX (and CZ, which every built-in device
// supports natively). Compound ops are expanded:
//
//	ccx        -> 6-CX standard Toffoli decomposition
//	cp(l)      -> u1(l/2) a; cx a,b; u1(-l/2) b; cx a,b; u1(l/2) b
//	rzz(t)     -> cx a,b; rz(t) b; cx a,b
//	rxx(t)     -> h a; h b; cx a,b; rz(t) b; cx a,b; h a; h b
//	swap       -> cx a,b; cx b,a; cx a,b   (SWAPs appearing in *input* programs)
//
// Barriers, measurements and resets pass through unchanged. The original
// circuit is not modified.
func Decompose(c *Circuit) *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	for _, g := range c.Gates {
		decomposeInto(out, g)
	}
	return out
}

// decomposeInto appends the base-set expansion of g to out.
func decomposeInto(out *Circuit, g Gate) {
	switch g.Op {
	case OpCCX:
		a, b, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		out.H(t)
		out.CX(b, t)
		out.Tdg(t)
		out.CX(a, t)
		out.T(t)
		out.CX(b, t)
		out.Tdg(t)
		out.CX(a, t)
		out.T(b)
		out.T(t)
		out.H(t)
		out.CX(a, b)
		out.T(a)
		out.Tdg(b)
		out.CX(a, b)
	case OpCP:
		a, b := g.Qubits[0], g.Qubits[1]
		l := g.Params[0]
		out.U1(l/2, a)
		out.CX(a, b)
		out.U1(-l/2, b)
		out.CX(a, b)
		out.U1(l/2, b)
	case OpRZZ:
		a, b := g.Qubits[0], g.Qubits[1]
		out.CX(a, b)
		out.RZ(g.Params[0], b)
		out.CX(a, b)
	case OpRXX:
		a, b := g.Qubits[0], g.Qubits[1]
		out.H(a)
		out.H(b)
		out.CX(a, b)
		out.RZ(g.Params[0], b)
		out.CX(a, b)
		out.H(a)
		out.H(b)
	case OpSwap:
		a, b := g.Qubits[0], g.Qubits[1]
		out.CX(a, b)
		out.CX(b, a)
		out.CX(a, b)
	default:
		out.Add(g.Clone())
	}
}

// IsBase reports whether the op belongs to the base set accepted by the
// remappers (single-qubit unitaries, CX, CZ, plus pass-through directives).
func IsBase(op Op) bool {
	switch op {
	case OpCCX, OpCP, OpRZZ, OpRXX, OpSwap:
		return false
	default:
		return true
	}
}

// IsLowered reports whether every gate of c is in the base set.
func IsLowered(c *Circuit) bool {
	for _, g := range c.Gates {
		if !IsBase(g.Op) {
			return false
		}
	}
	return true
}
