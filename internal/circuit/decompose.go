package circuit

// Decompose lowers a circuit to the base gate set the remappers operate on:
// arbitrary single-qubit gates plus CX (and CZ, which every built-in device
// supports natively). Compound ops are expanded:
//
//	ccx        -> 6-CX standard Toffoli decomposition
//	cp(l)      -> u1(l/2) a; cx a,b; u1(-l/2) b; cx a,b; u1(l/2) b
//	rzz(t)     -> cx a,b; rz(t) b; cx a,b
//	rxx(t)     -> h a; h b; cx a,b; rz(t) b; cx a,b; h a; h b
//	swap       -> cx a,b; cx b,a; cx a,b   (SWAPs appearing in *input* programs)
//
// Barriers, measurements and resets pass through unchanged. The original
// circuit is not modified.
func Decompose(c *Circuit) *Circuit {
	out := &Circuit{
		Name:      c.Name,
		NumQubits: c.NumQubits,
		NumClbits: c.NumClbits,
		// Lower bound: every input gate yields at least one output gate.
		Gates: make([]Gate, 0, len(c.Gates)),
	}
	d := decomposer{out: out}
	for _, g := range c.Gates {
		d.gate(g)
	}
	return out
}

// decomposer batches the pass-through copies of already-lowered gates
// through arenas; compound expansions go through the circuit builders.
type decomposer struct {
	out    *Circuit
	qubits IntArena
	params FloatArena
}

func (d *decomposer) gate(g Gate) {
	decomposeInto(d, g)
}

// passThrough appends a deep copy of an already-base gate, with its qubit
// and parameter slices carved from the decomposer's arenas.
func (d *decomposer) passThrough(g Gate) {
	qs := d.qubits.Take(len(g.Qubits))
	copy(qs, g.Qubits)
	g.Qubits = qs
	if g.Params != nil {
		ps := d.params.Take(len(g.Params))
		copy(ps, g.Params)
		g.Params = ps
	}
	d.out.Add(g)
}

// decomposeInto appends the base-set expansion of g to out.
func decomposeInto(d *decomposer, g Gate) {
	switch g.Op {
	case OpCCX:
		a, b, t := g.Qubits[0], g.Qubits[1], g.Qubits[2]
		d.out.H(t)
		d.out.CX(b, t)
		d.out.Tdg(t)
		d.out.CX(a, t)
		d.out.T(t)
		d.out.CX(b, t)
		d.out.Tdg(t)
		d.out.CX(a, t)
		d.out.T(b)
		d.out.T(t)
		d.out.H(t)
		d.out.CX(a, b)
		d.out.T(a)
		d.out.Tdg(b)
		d.out.CX(a, b)
	case OpCP:
		a, b := g.Qubits[0], g.Qubits[1]
		l := g.Params[0]
		d.out.U1(l/2, a)
		d.out.CX(a, b)
		d.out.U1(-l/2, b)
		d.out.CX(a, b)
		d.out.U1(l/2, b)
	case OpRZZ:
		a, b := g.Qubits[0], g.Qubits[1]
		d.out.CX(a, b)
		d.out.RZ(g.Params[0], b)
		d.out.CX(a, b)
	case OpRXX:
		a, b := g.Qubits[0], g.Qubits[1]
		d.out.H(a)
		d.out.H(b)
		d.out.CX(a, b)
		d.out.RZ(g.Params[0], b)
		d.out.CX(a, b)
		d.out.H(a)
		d.out.H(b)
	case OpSwap:
		a, b := g.Qubits[0], g.Qubits[1]
		d.out.CX(a, b)
		d.out.CX(b, a)
		d.out.CX(a, b)
	default:
		d.passThrough(g)
	}
}

// IsBase reports whether the op belongs to the base set accepted by the
// remappers (single-qubit unitaries, CX, CZ, plus pass-through directives).
func IsBase(op Op) bool {
	switch op {
	case OpCCX, OpCP, OpRZZ, OpRXX, OpSwap:
		return false
	default:
		return true
	}
}

// IsLowered reports whether every gate of c is in the base set.
func IsLowered(c *Circuit) bool {
	for _, g := range c.Gates {
		if !IsBase(g.Op) {
			return false
		}
	}
	return true
}
