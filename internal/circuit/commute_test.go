package circuit

import (
	"testing"
	"testing/quick"
)

func TestBasisOn(t *testing.T) {
	cases := []struct {
		name string
		g    Gate
		q    int
		want Basis
	}{
		{"z on operand", New1Q(OpZ, 3), 3, ZBasis},
		{"t on operand", New1Q(OpT, 0), 0, ZBasis},
		{"rz on operand", New1QP(OpRZ, 1, 0.3), 1, ZBasis},
		{"u1 on operand", New1QP(OpU1, 1, 0.3), 1, ZBasis},
		{"x on operand", New1Q(OpX, 2), 2, XBasis},
		{"rx on operand", New1QP(OpRX, 2, 0.7), 2, XBasis},
		{"h no basis", New1Q(OpH, 0), 0, NoBasis},
		{"y no basis", New1Q(OpY, 0), 0, NoBasis},
		{"u3 no basis", New1QP(OpU3, 0, 1, 2, 3), 0, NoBasis},
		{"cx control", New2Q(OpCX, 4, 5), 4, ZBasis},
		{"cx target", New2Q(OpCX, 4, 5), 5, XBasis},
		{"cz either a", New2Q(OpCZ, 4, 5), 4, ZBasis},
		{"cz either b", New2Q(OpCZ, 4, 5), 5, ZBasis},
		{"cp either", New2QP(OpCP, 4, 5, 0.2), 5, ZBasis},
		{"rzz either", New2QP(OpRZZ, 4, 5, 0.2), 4, ZBasis},
		{"ccx control", Gate{Op: OpCCX, Qubits: []int{1, 2, 3}}, 2, ZBasis},
		{"ccx target", Gate{Op: OpCCX, Qubits: []int{1, 2, 3}}, 3, XBasis},
		{"swap no basis", New2Q(OpSwap, 0, 1), 0, NoBasis},
		{"not an operand", New1Q(OpZ, 3), 4, NoBasis},
		{"measure no basis", Gate{Op: OpMeasure, Qubits: []int{0}}, 0, NoBasis},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.BasisOn(tc.q); got != tc.want {
				t.Errorf("BasisOn(%d) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestCommute(t *testing.T) {
	cases := []struct {
		name string
		a, b Gate
		want bool
	}{
		// Disjoint qubits always commute.
		{"disjoint h/h", New1Q(OpH, 0), New1Q(OpH, 1), true},
		{"disjoint cx/cx", New2Q(OpCX, 0, 1), New2Q(OpCX, 2, 3), true},
		// Same-qubit diagonal pairs.
		{"t/z same qubit", New1Q(OpT, 0), New1Q(OpZ, 0), true},
		{"rz/rz same qubit", New1QP(OpRZ, 0, 0.1), New1QP(OpRZ, 0, 0.2), true},
		{"x/rx same qubit", New1Q(OpX, 0), New1QP(OpRX, 0, 0.5), true},
		// Mixed-basis pairs do not commute.
		{"x/z same qubit", New1Q(OpX, 0), New1Q(OpZ, 0), false},
		{"h/t same qubit", New1Q(OpH, 0), New1Q(OpT, 0), false},
		{"h/h same qubit identical", New1Q(OpH, 0), New1Q(OpH, 0), true},
		// The paper's §IV-B example: CX q1,q3 and CX q2,q3 share the
		// target, hence commute.
		{"cx shared target", New2Q(OpCX, 1, 3), New2Q(OpCX, 2, 3), true},
		{"cx shared control", New2Q(OpCX, 1, 3), New2Q(OpCX, 1, 2), true},
		{"cx control-target clash", New2Q(OpCX, 0, 1), New2Q(OpCX, 1, 2), false},
		{"cx reversed pair", New2Q(OpCX, 0, 1), New2Q(OpCX, 1, 0), false},
		{"identical cx", New2Q(OpCX, 0, 1), New2Q(OpCX, 0, 1), true},
		// Z-type single-qubit gates commute with a CX control, not target.
		{"t on cx control", New1Q(OpT, 0), New2Q(OpCX, 0, 1), true},
		{"t on cx target", New1Q(OpT, 1), New2Q(OpCX, 0, 1), false},
		{"x on cx target", New1Q(OpX, 1), New2Q(OpCX, 0, 1), true},
		{"x on cx control", New1Q(OpX, 0), New2Q(OpCX, 0, 1), false},
		// CZ is symmetric and diagonal: commutes with everything Z-ish.
		{"cz/cz overlap", New2Q(OpCZ, 0, 1), New2Q(OpCZ, 1, 2), true},
		{"cz with cx control side", New2Q(OpCZ, 0, 1), New2Q(OpCX, 1, 2), true},
		{"cz with cx target side", New2Q(OpCZ, 0, 1), New2Q(OpCX, 2, 1), false},
		// Two-qubit diagonal family.
		{"cp/rzz overlap", New2QP(OpCP, 0, 1, 0.1), New2QP(OpRZZ, 1, 2, 0.2), true},
		// Barriers fence everything they touch.
		{"barrier blocks", Gate{Op: OpBarrier, Qubits: []int{0, 1}}, New1Q(OpZ, 0), false},
		{"barrier disjoint", Gate{Op: OpBarrier, Qubits: []int{0, 1}}, New1Q(OpZ, 2), true},
		// Measurement fences its qubit.
		{"measure blocks z", Gate{Op: OpMeasure, Qubits: []int{0}}, New1Q(OpZ, 0), false},
		// SWAP has no diagonal structure.
		{"swap vs cx", New2Q(OpSwap, 0, 1), New2Q(OpCX, 1, 2), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Commute(tc.a, tc.b); got != tc.want {
				t.Errorf("Commute(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestCommuteIsSymmetric(t *testing.T) {
	gates := []Gate{
		New1Q(OpH, 0), New1Q(OpT, 0), New1Q(OpX, 1), New1Q(OpZ, 2),
		New2Q(OpCX, 0, 1), New2Q(OpCX, 1, 2), New2Q(OpCZ, 0, 2),
		New2QP(OpCP, 1, 2, 0.4), Gate{Op: OpBarrier, Qubits: []int{0, 1, 2}},
		Gate{Op: OpMeasure, Qubits: []int{1}},
	}
	for _, a := range gates {
		for _, b := range gates {
			if Commute(a, b) != Commute(b, a) {
				t.Errorf("Commute not symmetric for %v / %v", a, b)
			}
		}
	}
}

// TestCommutativeFrontPaperExample pins the example from §IV-B: in
// I = [CX q1,q3; CX q2,q3] both gates are CF because CXs sharing a target
// commute.
func TestCommutativeFrontPaperExample(t *testing.T) {
	gates := []Gate{New2Q(OpCX, 1, 3), New2Q(OpCX, 2, 3)}
	front := CommutativeFront(gates, 0)
	if len(front) != 2 || front[0] != 0 || front[1] != 1 {
		t.Errorf("CommutativeFront = %v, want [0 1]", front)
	}
}

func TestCommutativeFront(t *testing.T) {
	cases := []struct {
		name  string
		gates []Gate
		want  []int
	}{
		{"empty", nil, nil},
		{"single", []Gate{New1Q(OpH, 0)}, []int{0}},
		{
			"blocked by h",
			[]Gate{New1Q(OpH, 0), New1Q(OpT, 0)},
			[]int{0},
		},
		{
			"t chain all front",
			[]Gate{New1Q(OpT, 0), New1Q(OpZ, 0), New1QP(OpRZ, 0, 0.3)},
			[]int{0, 1, 2},
		},
		{
			"disjoint all front",
			[]Gate{New1Q(OpH, 0), New1Q(OpH, 1), New2Q(OpCX, 2, 3)},
			[]int{0, 1, 2},
		},
		{
			// Third gate shares control with first but the middle H on an
			// unrelated qubit does not interfere.
			"shared control chain",
			[]Gate{New2Q(OpCX, 0, 1), New1Q(OpH, 3), New2Q(OpCX, 0, 2)},
			[]int{0, 1, 2},
		},
		{
			// cx 0,1 ; cx 1,2 : second depends (control on 1 = target of
			// first); third (cx 0,3) shares control 0 with first -> commutes.
			"mixed dependency",
			[]Gate{New2Q(OpCX, 0, 1), New2Q(OpCX, 1, 2), New2Q(OpCX, 0, 3)},
			[]int{0, 2},
		},
		{
			// A gate must commute with ALL earlier gates on its qubits,
			// even non-CF ones: t q1 after h q1 after z q1 is blocked by h
			// even though z commutes with t.
			"transitive blocking",
			[]Gate{New1Q(OpZ, 1), New1Q(OpH, 1), New1Q(OpT, 1)},
			[]int{0},
		},
		{
			"barrier fences",
			[]Gate{New1Q(OpT, 0), Gate{Op: OpBarrier, Qubits: []int{0, 1}}, New1Q(OpT, 0), New1Q(OpH, 2)},
			[]int{0, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CommutativeFront(tc.gates, 0)
			if !equalInts(got, tc.want) {
				t.Errorf("CommutativeFront = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCommutativeFrontWindow(t *testing.T) {
	gates := []Gate{
		New1Q(OpH, 0), New1Q(OpH, 1), New1Q(OpH, 2), New1Q(OpH, 3),
	}
	got := CommutativeFront(gates, 2)
	if !equalInts(got, []int{0, 1}) {
		t.Errorf("windowed CommutativeFront = %v, want [0 1]", got)
	}
	// window <= 0 or larger than sequence scans everything.
	if got := CommutativeFront(gates, -1); len(got) != 4 {
		t.Errorf("unbounded CommutativeFront = %v", got)
	}
	if got := CommutativeFront(gates, 99); len(got) != 4 {
		t.Errorf("oversized window CommutativeFront = %v", got)
	}
}

// Property: the first gate of any sequence is always CF, and the CF set is
// a subset of indices whose gates pairwise commute with every predecessor.
func TestCommutativeFrontProperties(t *testing.T) {
	f := func(seed int64) bool {
		gates := randomGateSeq(seed, 40, 6)
		front := CommutativeFront(gates, 0)
		if len(gates) > 0 && (len(front) == 0 || front[0] != 0) {
			return false
		}
		for _, k := range front {
			for j := 0; j < k; j++ {
				if !Commute(gates[j], gates[k]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomGateSeq builds a deterministic pseudo-random gate sequence for
// property tests (xorshift; no external deps).
func randomGateSeq(seed int64, n, qubits int) []Gate {
	s := uint64(seed)*2685821657736338717 + 1
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	ops1 := []Op{OpH, OpX, OpZ, OpT, OpS, OpRZ, OpRX}
	var gates []Gate
	for i := 0; i < n; i++ {
		if next(3) == 0 {
			a := next(qubits)
			b := next(qubits)
			if a == b {
				b = (b + 1) % qubits
			}
			gates = append(gates, New2Q(OpCX, a, b))
		} else {
			op := ops1[next(len(ops1))]
			g := New1Q(op, next(qubits))
			if op.NumParams() == 1 {
				g.Params = []float64{float64(next(7)) * 0.25}
			}
			gates = append(gates, g)
		}
	}
	return gates
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRXXBasis(t *testing.T) {
	g := New2QP(OpRXX, 0, 1, 0.7)
	if g.BasisOn(0) != XBasis || g.BasisOn(1) != XBasis {
		t.Error("rxx should be X-diagonal on both operands")
	}
	// rxx commutes with X on a shared qubit and with a CX target.
	if !Commute(g, New1Q(OpX, 0)) {
		t.Error("rxx should commute with X")
	}
	if !Commute(g, New2Q(OpCX, 2, 1)) {
		t.Error("rxx should commute with a CX target on the shared qubit")
	}
	if Commute(g, New1Q(OpZ, 0)) {
		t.Error("rxx must not commute with Z")
	}
	if Commute(g, New2Q(OpCX, 0, 2)) {
		t.Error("rxx must not commute with a CX control on the shared qubit")
	}
	// Two rxx gates sharing qubits commute (both X-diagonal).
	if !Commute(g, New2QP(OpRXX, 1, 2, 0.3)) {
		t.Error("rxx pair should commute")
	}
}
