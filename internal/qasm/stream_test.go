package qasm

import (
	"io"
	"strings"
	"testing"

	"codar/internal/circuit"
)

// drainStream collects every gate a Stream yields, or the terminal error.
func drainStream(src string) (*circuit.Circuit, error) {
	s, err := NewStream(strings.NewReader(src))
	if err != nil {
		return nil, err
	}
	c := &circuit.Circuit{NumQubits: s.NumQubits(), NumClbits: s.NumClbits()}
	for {
		g, err := s.Next()
		if err == io.EOF {
			// Clbits may have grown via measure statements.
			c.NumClbits = s.NumClbits()
			return c, nil
		}
		if err != nil {
			return nil, err
		}
		c.Gates = append(c.Gates, g)
	}
}

// checkStreamMatchesParse pins the streaming front end's contract: same
// accept/reject verdict as Parse and, on accept, the identical gate
// sequence and register totals.
func checkStreamMatchesParse(t *testing.T, src string) {
	t.Helper()
	want, werr := Parse(src)
	got, gerr := drainStream(src)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("verdict mismatch: Parse err=%v, Stream err=%v\nsource:\n%s", werr, gerr, src)
	}
	if werr != nil {
		return
	}
	if got.NumQubits != want.NumQubits || got.NumClbits != want.NumClbits {
		t.Fatalf("register mismatch: stream %d/%d, batch %d/%d",
			got.NumQubits, got.NumClbits, want.NumQubits, want.NumClbits)
	}
	if len(got.Gates) != len(want.Gates) {
		t.Fatalf("gate count mismatch: stream %d, batch %d", len(got.Gates), len(want.Gates))
	}
	for i := range got.Gates {
		if !got.Gates[i].Equal(want.Gates[i]) {
			t.Fatalf("gate %d mismatch: stream %v, batch %v", i, got.Gates[i], want.Gates[i])
		}
	}
}

func TestStreamMatchesParse(t *testing.T) {
	cases := []string{
		"OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n",
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q;\nmeasure q -> c;\n",
		"qreg q[4];\nu3(0.1,0.2,0.3) q[2];\nccx q[0],q[1],q[2];\nbarrier q;\nreset q[3];\n",
		"OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncx a[0],b[1];\nswap a[1],b[0];\n",
		"qreg q[2];\ngate foo(t) a, b { rz(t) a; cx a, b; rz(-t) b; }\nfoo(0.5) q[0], q[1];\n",
		"qreg q[1];\n// comment line\nrx(pi/2) q[0];\nrz(2*pi) q[0];\n",
		"qreg q[2];\ncreg c[1];\nmeasure q[0] -> c[0];\nif (c == 1) x q[1];\n",
		// Windows line endings and no trailing newline.
		"OPENQASM 2.0;\r\nqreg q[2];\r\nh q[0];\r\ncx q[0],q[1];",
		// Statement split across lines.
		"qreg q[3];\ncx\n  q[0],\n  q[2];\n",
		// Empty program bodies and header-only forms.
		"OPENQASM 2.0;\nqreg q[2];\n",
		// Rejections: lex error, parse error, missing register, bad index.
		"qreg q[2];\nh q[0];\n\"unterminated\nh q[1];\n",
		"qreg q[2];\nh q[0]\ncx q[0],q[1];\n",
		"OPENQASM 2.0;\nh q[0];\n",
		"qreg q[2];\nh q[5];\n",
		"qreg q[99999999];\nh q[0];\n",
		"",
		"OPENQASM 2.0;\n",
		"gate foo a { h a; }\n",
	}
	for i, src := range cases {
		src := src
		t.Run(strings.ReplaceAll(src[:min(len(src), 24)], "\n", "¶")+"#"+string(rune('a'+i)), func(t *testing.T) {
			checkStreamMatchesParse(t, src)
		})
	}
}

func TestStreamHeaderKnownUpFront(t *testing.T) {
	src := "OPENQASM 2.0;\nqreg q[5];\ncreg c[3];\nh q[0];\ncx q[0],q[4];\n"
	s, err := NewStream(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumQubits() != 5 || s.NumClbits() != 3 {
		t.Fatalf("header = %d/%d, want 5/3", s.NumQubits(), s.NumClbits())
	}
	n := 0
	for {
		if _, err := s.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 || s.Gates() != 2 {
		t.Fatalf("gates = %d (counter %d), want 2", n, s.Gates())
	}
}

func TestStreamErrorSticky(t *testing.T) {
	src := "qreg q[2];\nh q[0];\ncx q[0];\n" // arity error mid-stream
	s, err := NewStream(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatalf("first gate: %v", err)
	}
	_, err1 := s.Next()
	if err1 == nil || err1 == io.EOF {
		t.Fatalf("want terminal parse error, got %v", err1)
	}
	if _, err2 := s.Next(); err2 != err1 {
		t.Fatalf("error not sticky: %v then %v", err1, err2)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
