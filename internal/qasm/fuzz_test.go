package qasm

import (
	"math"
	"testing"

	"codar/internal/circuit"
)

// FuzzParseQASM feeds arbitrary byte strings to the parser. Two invariants:
// the parser must never panic (malformed input is an error, full stop), and
// any program it accepts must survive the same pipeline the service runs —
// Validate, Decompose, DAG construction, Depth — and round-trip through
// Write/Parse into an equal circuit.
//
// CI runs this with -fuzztime 30s (see .github/workflows); locally:
//
//	go test -run FuzzParseQASM -fuzz FuzzParseQASM -fuzztime 30s ./internal/qasm/
func FuzzParseQASM(f *testing.F) {
	f.Add("OPENQASM 2.0;\nqreg q[4];\ncreg c[4];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n")
	f.Add("qreg q[2];\nu3(pi/2,0,pi) q[0];\nrz(-1.5e-3) q[1];\ncx q[0],q[1];\n")
	f.Add("qreg q[3];\ngate foo(a) x, y { rz(a) x; cx x, y; }\nfoo(pi/4) q[0], q[2];\n")
	f.Add("qreg q[2];\nbarrier q;\nreset q[0];\nswap q[0],q[1];\n")
	f.Add("include \"qelib1.inc\";\nqreg r[1];\nopaque noise q;\nt r[0];\n")
	f.Add("qreg q[99999999999];\nh q[0];\n")
	f.Add("gate rec a { rec a; }\nqreg q[1];\nrec q[0];\n")
	f.Add("OPENQASM 2.0 qreg q[")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src) // must not panic; errors are fine
		if err != nil {
			return
		}
		// Accepted programs obey the parser's own bounds.
		if c.NumQubits <= 0 || c.NumQubits > maxQubits {
			t.Fatalf("accepted circuit with %d qubits (cap %d)", c.NumQubits, maxQubits)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted circuit fails Validate: %v", err)
		}
		// Bound the deep checks: huge register declarations with few gates
		// are legal, but running the full pipeline over them per fuzz
		// iteration is wasted time.
		if c.NumQubits > 4096 || len(c.Gates) > 4096 {
			return
		}
		low := circuit.Decompose(c)
		if !circuit.IsLowered(low) {
			t.Fatalf("Decompose left compound gates: %v", low.CountOps())
		}
		if d := c.Depth(); d < 0 || d > len(c.Gates) {
			t.Fatalf("depth %d out of range for %d gates", d, len(c.Gates))
		}
		_ = circuit.NewDAG(c)
		// Round-trip, except for non-finite parameters: expression
		// evaluation can overflow to ±Inf, which the text form has no
		// literal for.
		for _, g := range c.Gates {
			for _, p := range g.Params {
				if math.IsNaN(p) || math.IsInf(p, 0) {
					return
				}
			}
		}
		out := Write(c)
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("Write output rejected: %v\n%s", err, out)
		}
		back.Name = c.Name
		if !c.Equal(back) {
			t.Fatalf("round trip diverged:\n%s", out)
		}
	})
}

// FuzzStreamQASM differentially fuzzes the streaming front end against the
// batch parser: for every input, Stream and Parse must reach the same
// accept/reject verdict, and on accept the stream must yield the identical
// gate sequence and register totals (checkStreamMatchesParse). Neither side
// may panic. Seeds cover the shapes where the two lexers could plausibly
// diverge — statements split across lines, CRLF endings, missing trailing
// newline, errors surfacing after gates have already been emitted — plus
// past parser crashers.
//
// CI runs this with -fuzztime 30s (see .github/workflows); locally:
//
//	go test -run FuzzStreamQASM -fuzz FuzzStreamQASM -fuzztime 30s ./internal/qasm/
func FuzzStreamQASM(f *testing.F) {
	f.Add("OPENQASM 2.0;\nqreg q[4];\ncreg c[4];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n")
	f.Add("qreg q[3];\ncx\n  q[0],\n  q[2];\n")
	f.Add("OPENQASM 2.0;\r\nqreg q[2];\r\nh q[0];\r\ncx q[0],q[1];")
	f.Add("qreg q[2];\ngate foo(t) a, b { rz(t) a; cx a, b; }\nfoo(pi/4) q[0], q[1];\n")
	f.Add("qreg q[2];\nh q[0];\ncx q[0];\n")                // arity error after a gate
	f.Add("qreg q[2];\nh q[0];\n\"unterminated\nh q[1];\n") // lex error after a gate
	f.Add("qreg q[2];\ncreg c[1];\nmeasure q[0] -> c[0];\nif (c == 1) x q[1];\n")
	f.Add("include \"qelib1.inc\";\nqreg r[1];\nopaque noise q;\nt r[0];\n")
	f.Add("gate rec A{}qreg q[1];rec q;") // past FuzzParseQASM crasher
	f.Add("OPENQASM 2.0 qreg q[")
	f.Fuzz(func(t *testing.T, src string) {
		checkStreamMatchesParse(t, src)
	})
}
