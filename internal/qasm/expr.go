package qasm

import (
	"fmt"
	"math"
	"strconv"
)

// expr is a parameter expression AST node. Expressions appear as gate
// parameters (e.g. "pi/4", "-3*theta/2") and are evaluated against the
// enclosing gate definition's parameter bindings.
type expr interface {
	eval(env map[string]float64) (float64, error)
}

type numExpr float64

func (n numExpr) eval(map[string]float64) (float64, error) { return float64(n), nil }

type varExpr string

func (v varExpr) eval(env map[string]float64) (float64, error) {
	if val, ok := env[string(v)]; ok {
		return val, nil
	}
	return 0, fmt.Errorf("qasm: unbound parameter %q", string(v))
}

type unaryExpr struct {
	op string
	x  expr
}

func (u unaryExpr) eval(env map[string]float64) (float64, error) {
	x, err := u.x.eval(env)
	if err != nil {
		return 0, err
	}
	switch u.op {
	case "-":
		return -x, nil
	case "+":
		return x, nil
	}
	return 0, fmt.Errorf("qasm: unknown unary operator %q", u.op)
}

type binExpr struct {
	op   string
	l, r expr
}

func (b binExpr) eval(env map[string]float64) (float64, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("qasm: division by zero")
		}
		return l / r, nil
	case "^":
		return math.Pow(l, r), nil
	}
	return 0, fmt.Errorf("qasm: unknown operator %q", b.op)
}

type callExpr struct {
	fn string
	x  expr
}

func (c callExpr) eval(env map[string]float64) (float64, error) {
	x, err := c.x.eval(env)
	if err != nil {
		return 0, err
	}
	switch c.fn {
	case "sin":
		return math.Sin(x), nil
	case "cos":
		return math.Cos(x), nil
	case "tan":
		return math.Tan(x), nil
	case "exp":
		return math.Exp(x), nil
	case "ln":
		if x <= 0 {
			return 0, fmt.Errorf("qasm: ln of non-positive value")
		}
		return math.Log(x), nil
	case "sqrt":
		if x < 0 {
			return 0, fmt.Errorf("qasm: sqrt of negative value")
		}
		return math.Sqrt(x), nil
	}
	return 0, fmt.Errorf("qasm: unknown function %q", c.fn)
}

// parseExpr parses an expression with standard precedence:
// unary +/- < ^ (right assoc) < * / < + -.
func (p *parser) parseExpr() (expr, error) {
	return p.parseAdditive()
}

func (p *parser) parseAdditive() (expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peekSymbol("+") || p.peekSymbol("-") {
		op := p.take().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekSymbol("*") || p.peekSymbol("/") {
		op := p.take().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: op, l: l, r: r}
	}
	return l, nil
}

// parseUnary binds looser than ^ so that -2^2 == -(2^2), matching the
// usual mathematical convention.
func (p *parser) parseUnary() (expr, error) {
	if p.peekSymbol("-") || p.peekSymbol("+") {
		op := p.take().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: op, x: x}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.peekSymbol("^") {
		p.take()
		// Right associative; the exponent may carry its own unary sign.
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return binExpr{op: "^", l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.take()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("qasm: line %d: bad number %q", t.line, t.text)
		}
		return numExpr(v), nil
	case t.kind == tokIdent && t.text == "pi":
		return numExpr(math.Pi), nil
	case t.kind == tokIdent && isFunction(t.text):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return callExpr{fn: t.text, x: x}, nil
	case t.kind == tokIdent:
		return varExpr(t.text), nil
	case t.kind == tokSymbol && t.text == "(":
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, fmt.Errorf("qasm: line %d: unexpected token %s in expression", t.line, t)
}

func isFunction(name string) bool {
	switch name {
	case "sin", "cos", "tan", "exp", "ln", "sqrt":
		return true
	}
	return false
}
