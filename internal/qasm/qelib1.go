package qasm

import "codar/internal/circuit"

// Qelib1 is the standard OpenQASM 2.0 gate library (qelib1.inc) defining
// every common gate in terms of the primitives U and CX. Benchmark files
// frequently inline these definitions instead of relying on the include
// statement; embedding the library lets such files parse unchanged, and
// extends the accepted gate set with the qelib1 gates the IR has no
// built-in op for (cy, ch, crz, cu3), which expand through the inliner.
const Qelib1 = `
gate u3g(theta,phi,lambda) q { U(theta,phi,lambda) q; }
gate cy a,b { sdg b; cx a,b; s b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate crz(lambda) a,b {
  u1(lambda/2) b;
  cx a,b;
  u1(-lambda/2) b;
  cx a,b;
}
gate cu3(theta,phi,lambda) c,t {
  u1((lambda-phi)/2) t;
  cx c,t;
  u3(-theta/2,0,-(phi+lambda)/2) t;
  cx c,t;
  u3(theta/2,phi,0) t;
}
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate rzzg(theta) a,b { cx a,b; u1(theta) b; cx a,b; }
`

// ParseWithQelib1 parses src with the supplementary qelib1 definitions
// prepended: programs may then use cy, ch, crz, cu3 and cswap in addition
// to the parser's native gate set (whose names always resolve to built-in
// ops first, exactly as when qelib1.inc is include'd).
func ParseWithQelib1(src string) (*circuit.Circuit, error) {
	return Parse(Qelib1 + "\n" + src)
}
