package qasm

import (
	"bufio"
	"io"

	"codar/internal/circuit"
)

// streamLexer lexes OpenQASM incrementally from a reader. No token in the
// grammar spans a newline (strings and // comments are line-bounded and
// every multi-character token is scanned within the current line), so the
// reader is consumed line by line — each line, including its terminating
// '\n', runs through the same string lexer the batch path uses, making the
// token stream identical to tokenize of the whole source by construction.
// Resident memory is O(longest line).
type streamLexer struct {
	r    *bufio.Reader
	lx   lexer
	done bool  // reader exhausted
	err  error // sticky lexer/reader error
}

func newStreamLexer(r io.Reader) *streamLexer {
	return &streamLexer{r: bufio.NewReader(r), lx: lexer{line: 1}}
}

func (s *streamLexer) next() (token, error) {
	if s.err != nil {
		return token{}, s.err
	}
	for {
		t, err := s.lx.next()
		if err != nil {
			s.err = err
			return token{}, err
		}
		if t.kind != tokEOF || s.done {
			return t, nil
		}
		line, err := s.r.ReadString('\n')
		if err == io.EOF {
			s.done = true
		} else if err != nil {
			s.err = err
			return token{}, err
		}
		// Start a fresh string lexer over the next line, carrying the line
		// counter (the previous line's '\n' was consumed by its own lexer,
		// advancing the count exactly as the batch lexer would).
		s.lx = lexer{src: line, line: s.lx.line}
	}
}

// Stream is the pull-based streaming front end: it parses OpenQASM 2.0
// incrementally and emits gates one at a time without materialising the
// whole program. It accepts exactly the language Parse accepts (the same
// parser runs underneath, including user-defined gate inlining and the
// 65536-qubit cap) and, for accepted programs, yields the identical gate
// sequence — the FuzzStreamQASM differential fuzzer pins this.
//
// Register declarations are frozen at the first operation (an OpenQASM
// rule), so NumQubits and NumClbits are known as soon as NewStream
// returns. Errors after the first emitted gate surface from Next: a
// consumer may have acted on a prefix of a program that later turns out to
// be malformed, which is inherent to streaming.
type Stream struct {
	p     *parser
	queue []circuit.Gate
	qpos  int
	done  bool
	err   error // sticky terminal parse error

	headerDone bool
	gates      int
}

// NewStream starts parsing r. It consumes statements until the first gate,
// end of input, or an error; programs that fail before their first gate
// are rejected here rather than from Next.
func NewStream(r io.Reader) (*Stream, error) {
	p := &parser{src: newStreamLexer(r), defs: make(map[string]*gateDef)}
	s := &Stream{p: p}
	s.pump()
	if s.err != nil {
		return nil, s.err
	}
	return s, nil
}

// NumQubits returns the total declared qubit count (all quantum registers
// concatenated in declaration order, as in Parse).
func (s *Stream) NumQubits() int { return s.p.circ.NumQubits }

// NumClbits returns the total declared classical-bit count.
func (s *Stream) NumClbits() int { return s.p.circ.NumClbits }

// Gates returns the number of gates emitted so far.
func (s *Stream) Gates() int { return s.gates }

// Next returns the next gate of the program, io.EOF after the last one, or
// the parse error that terminated the stream.
func (s *Stream) Next() (circuit.Gate, error) {
	for s.qpos >= len(s.queue) {
		if s.err != nil {
			return circuit.Gate{}, s.err
		}
		if s.done {
			return circuit.Gate{}, io.EOF
		}
		s.pump()
	}
	g := s.queue[s.qpos]
	s.qpos++
	s.gates++
	return g, nil
}

// fail records the stream's terminal error, preferring the underlying
// lexer error over the truncated-program symptom a masked EOF produces.
func (s *Stream) fail(err error) {
	if s.p.lexErr != nil {
		err = s.p.lexErr
	}
	s.err = err
}

// pump parses statements until at least one gate is queued, end of input,
// or an error. One statement can emit many gates (register broadcasts,
// measures over registers, user-defined gate inlining), so the parsed
// gates land in a drained queue; the parser's accumulation circuit is
// truncated after each statement, keeping resident memory O(statement).
func (s *Stream) pump() {
	p := s.p
	if !s.headerDone {
		if err := p.parseHeader(); err != nil {
			s.fail(err)
			return
		}
		s.headerDone = true
	}
	s.queue = s.queue[:0]
	s.qpos = 0
	for {
		if p.atEOF() {
			if p.lexErr != nil {
				s.fail(p.lexErr)
				return
			}
			if err := p.finishProgram(); err != nil {
				s.fail(err)
				return
			}
			s.done = true
			return
		}
		if err := p.parseStatement(); err != nil {
			s.fail(err)
			return
		}
		if p.circ != nil && len(p.circ.Gates) > 0 {
			// Gate values own their qubit/parameter slices (the parser
			// allocates them per application), so copying the values out
			// and truncating the accumulator is safe.
			s.queue = append(s.queue, p.circ.Gates...)
			p.circ.Gates = p.circ.Gates[:0]
			return
		}
	}
}
