package qasm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"codar/internal/circuit"
	"codar/internal/workloads"
)

func parse(t *testing.T, src string) *circuit.Circuit {
	t.Helper()
	c, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return c
}

func TestTokenizer(t *testing.T) {
	toks, err := tokenize(`OPENQASM 2.0; // comment
cx q[0],q[1]; rz(-pi/4) q[2]; measure q[0] -> c[0];`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"OPENQASM", "2.0", ";", "cx", "q", "[", "0", "]", ",", "q", "[", "1", "]", ";",
		"rz", "(", "-", "pi", "/", "4", ")", "q", "[", "2", "]", ";",
		"measure", "q", "[", "0", "]", "->", "c", "[", "0", "]", ";"}
	if len(texts) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestTokenizerErrors(t *testing.T) {
	if _, err := tokenize("h q[0]; @"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := tokenize(`include "unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestTokenizerScientificNotation(t *testing.T) {
	toks, err := tokenize("rz(1.5e-3) q[0];")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tk := range toks {
		if tk.kind == tokNumber && tk.text == "1.5e-3" {
			found = true
		}
	}
	if !found {
		t.Error("scientific literal not scanned as one number")
	}
}

func TestParseBasicProgram(t *testing.T) {
	c := parse(t, `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
measure q[0] -> c[0];
`)
	if c.NumQubits != 3 || c.NumClbits != 3 {
		t.Fatalf("sizes %d/%d", c.NumQubits, c.NumClbits)
	}
	if c.Len() != 4 {
		t.Fatalf("gate count %d", c.Len())
	}
	if c.Gates[0].Op != circuit.OpH || c.Gates[1].Op != circuit.OpCX || c.Gates[3].Op != circuit.OpMeasure {
		t.Error("gate sequence mismatch")
	}
}

func TestParseParameterExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"rz(pi) q[0];", math.Pi},
		{"rz(-pi/2) q[0];", -math.Pi / 2},
		{"rz(3*pi/4) q[0];", 3 * math.Pi / 4},
		{"rz(2^3) q[0];", 8},
		{"rz(2^(1+1)) q[0];", 4},
		{"rz(sin(pi/2)) q[0];", 1},
		{"rz(cos(0)) q[0];", 1},
		{"rz(sqrt(4)) q[0];", 2},
		{"rz(1+2*3) q[0];", 7},
		{"rz((1+2)*3) q[0];", 9},
		{"rz(-2^2) q[0];", -4}, // unary minus binds looser than ^
		{"rz(0.5e1) q[0];", 5},
	}
	for _, tc := range cases {
		c := parse(t, "qreg q[1];\n"+tc.src)
		got := c.Gates[0].Params[0]
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s => %g, want %g", tc.src, got, tc.want)
		}
	}
}

func TestParseUserDefinedGate(t *testing.T) {
	c := parse(t, `
OPENQASM 2.0;
qreg q[2];
gate mygate(theta) a, b {
  h a;
  cx a, b;
  rz(theta/2) b;
  cx a, b;
}
mygate(pi) q[0], q[1];
`)
	if c.Len() != 4 {
		t.Fatalf("inlined gate count %d, want 4", c.Len())
	}
	if c.Gates[2].Op != circuit.OpRZ || math.Abs(c.Gates[2].Params[0]-math.Pi/2) > 1e-12 {
		t.Errorf("parameter substitution broken: %v", c.Gates[2])
	}
	if c.Gates[1].Qubits[0] != 0 || c.Gates[1].Qubits[1] != 1 {
		t.Errorf("argument binding broken: %v", c.Gates[1])
	}
}

func TestParseNestedGateDefs(t *testing.T) {
	c := parse(t, `
qreg q[3];
gate inner a, b { cx a, b; }
gate outer a, b, c { inner a, b; inner b, c; }
outer q[0], q[1], q[2];
`)
	if c.Len() != 2 || c.Gates[0].Op != circuit.OpCX || c.Gates[1].Qubits[0] != 1 {
		t.Errorf("nested expansion broken: %v", c.Gates)
	}
}

func TestParseRecursiveGateRejected(t *testing.T) {
	_, err := Parse(`
qreg q[2];
gate loop a, b { loop a, b; }
loop q[0], q[1];
`)
	if err == nil || !strings.Contains(err.Error(), "deep") {
		t.Errorf("recursive definition not caught: %v", err)
	}
}

func TestParseBroadcast(t *testing.T) {
	c := parse(t, `
qreg q[4];
h q;
`)
	if c.Len() != 4 {
		t.Fatalf("broadcast expanded to %d gates, want 4", c.Len())
	}
	for i, g := range c.Gates {
		if g.Op != circuit.OpH || g.Qubits[0] != i {
			t.Errorf("broadcast gate %d = %v", i, g)
		}
	}
}

func TestParseBroadcastTwoRegisters(t *testing.T) {
	c := parse(t, `
qreg a[2];
qreg b[2];
cx a, b;
`)
	if c.Len() != 2 {
		t.Fatalf("cx broadcast count %d", c.Len())
	}
	if c.Gates[0].Qubits[0] != 0 || c.Gates[0].Qubits[1] != 2 {
		t.Errorf("flat offsets wrong: %v", c.Gates[0])
	}
	if c.Gates[1].Qubits[0] != 1 || c.Gates[1].Qubits[1] != 3 {
		t.Errorf("flat offsets wrong: %v", c.Gates[1])
	}
}

func TestParseBroadcastMeasure(t *testing.T) {
	c := parse(t, `
qreg q[3];
creg c[3];
measure q -> c;
`)
	if c.Len() != 3 {
		t.Fatalf("measure broadcast count %d", c.Len())
	}
	for i, g := range c.Gates {
		if g.Op != circuit.OpMeasure || g.Qubits[0] != i || g.Cbit != i {
			t.Errorf("measure %d = %v", i, g)
		}
	}
}

func TestParseBarrier(t *testing.T) {
	c := parse(t, `
qreg q[3];
barrier q[0], q[2];
barrier q;
`)
	if len(c.Gates[0].Qubits) != 2 || len(c.Gates[1].Qubits) != 3 {
		t.Errorf("barrier spans: %v / %v", c.Gates[0].Qubits, c.Gates[1].Qubits)
	}
}

func TestParseMultipleQregsFlattened(t *testing.T) {
	c := parse(t, `
qreg a[2];
qreg b[3];
x a[1];
x b[0];
`)
	if c.NumQubits != 5 {
		t.Fatalf("NumQubits = %d", c.NumQubits)
	}
	if c.Gates[0].Qubits[0] != 1 || c.Gates[1].Qubits[0] != 2 {
		t.Errorf("offsets wrong: %v", c.Gates)
	}
}

func TestParseAliases(t *testing.T) {
	c := parse(t, `
qreg q[3];
U(0.1,0.2,0.3) q[0];
CX q[0], q[1];
cu1(pi/8) q[0], q[2];
ccx q[0], q[1], q[2];
`)
	wantOps := []circuit.Op{circuit.OpU3, circuit.OpCX, circuit.OpCP, circuit.OpCCX}
	for i, op := range wantOps {
		if c.Gates[i].Op != op {
			t.Errorf("gate %d = %v, want %v", i, c.Gates[i].Op, op)
		}
	}
}

func TestParseOpaqueSkipped(t *testing.T) {
	c := parse(t, `
qreg q[1];
opaque mystery(a, b) x, y;
h q[0];
`)
	if c.Len() != 1 {
		t.Errorf("opaque declaration leaked gates: %d", c.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no qreg", "h q[0];"},
		{"unknown reg", "qreg q[2]; h r[0];"},
		{"index out of range", "qreg q[2]; h q[5];"},
		{"unknown gate", "qreg q[2]; warp q[0];"},
		{"arity", "qreg q[2]; cx q[0];"},
		{"duplicate operand", "qreg q[2]; cx q[0],q[0];"},
		{"param count", "qreg q[1]; rz() q[0];"},
		{"measure mismatch", "qreg q[2]; creg c[1]; measure q -> c;"},
		{"if unsupported", "qreg q[1]; creg c[1]; if (c==1) x q[0];"},
		{"redeclared", "qreg q[2]; qreg q[2]; h q[0];"},
		{"late qreg", "qreg q[2]; h q[0]; qreg r[2];"},
		{"zero size", "qreg q[0]; h q[0];"},
		{"missing semicolon", "qreg q[2]\nh q[0];"},
		{"unterminated gate", "qreg q[1]; gate foo a { h a;"},
		{"unbound param", "qreg q[1]; gate foo a { rz(theta) a; } foo q[0];"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("accepted: %s", tc.src)
			}
		})
	}
}

func TestWriteBasic(t *testing.T) {
	c := circuit.NewNamed("demo", 2)
	c.H(0).CX(0, 1).RZ(math.Pi/4, 1).Measure(1, 0).Barrier(0, 1)
	out := Write(c)
	for _, want := range []string{
		"OPENQASM 2.0;", "qreg q[2];", "creg c[1];",
		"h q[0];", "cx q[0],q[1];", "measure q[1] -> c[0];", "barrier q[0],q[1];",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Write missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed)
		back, err := Parse(Write(c))
		if err != nil {
			t.Logf("round-trip parse: %v", err)
			return false
		}
		back.Name = c.Name
		return c.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParseNamed(t *testing.T) {
	c, err := ParseNamed("my-circ", "qreg q[1]; h q[0];")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "my-circ" {
		t.Errorf("Name = %q", c.Name)
	}
}

// TestParseQFTFragment parses a ScaffCC-style 4-qubit QFT fragment like
// the paper's Fig 2(b).
func TestParseQFTFragment(t *testing.T) {
	c := parse(t, `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cu1(pi/2) q[1],q[0];
h q[1];
t q[1];
cx q[0],q[2];
cu1(pi/4) q[2],q[0];
cx q[0],q[3];
`)
	if c.Len() != 7 {
		t.Fatalf("gate count %d", c.Len())
	}
	ops := c.CountOps()
	if ops[circuit.OpCP] != 2 || ops[circuit.OpCX] != 2 || ops[circuit.OpH] != 2 || ops[circuit.OpT] != 1 {
		t.Errorf("op histogram: %v", ops)
	}
	// The fragment lowers cleanly for mapping.
	low := circuit.Decompose(c)
	if !circuit.IsLowered(low) {
		t.Error("decomposed fragment still compound")
	}
}

// randomCircuit builds a deterministic random circuit exercising the
// writer's full surface.
func randomCircuit(seed int64) *circuit.Circuit {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 17
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	c := circuit.New(5)
	for i := 0; i < 25; i++ {
		switch next(8) {
		case 0:
			c.H(next(5))
		case 1:
			c.T(next(5))
		case 2:
			c.RZ(float64(next(16))*0.131, next(5))
		case 3:
			c.U3(float64(next(7))*0.3, float64(next(7))*0.2, float64(next(7))*0.1, next(5))
		case 4:
			a := next(5)
			b := (a + 1 + next(4)) % 5
			c.CX(a, b)
		case 5:
			a := next(5)
			b := (a + 1 + next(4)) % 5
			c.CP(float64(next(8))*0.39, a, b)
		case 6:
			a := next(5)
			b := (a + 1 + next(4)) % 5
			c.Swap(a, b)
		default:
			c.Measure(next(5), next(5))
		}
	}
	return c
}

func TestParseWithQelib1ExtendedGates(t *testing.T) {
	c, err := ParseWithQelib1(`
qreg q[3];
cy q[0],q[1];
ch q[1],q[2];
crz(pi/2) q[0],q[2];
cu3(0.1,0.2,0.3) q[0],q[1];
cswap q[0],q[1],q[2];
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("no gates produced")
	}
	// Everything must have expanded to IR-supported ops.
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates {
		if g.Op.NumQubits() == 0 && g.Op != circuit.OpBarrier {
			t.Errorf("unexpected op %v", g.Op)
		}
	}
}

func TestParseWithQelib1StillResolvesBuiltins(t *testing.T) {
	c, err := ParseWithQelib1(`
qreg q[2];
h q[0];
cx q[0],q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Op != circuit.OpH || c.Gates[1].Op != circuit.OpCX {
		t.Errorf("built-ins should shadow definitions: %v", c.Gates)
	}
}

// TestParserNeverPanics drives the parser with mutated inputs: malformed
// programs must produce errors, not panics.
func TestParserNeverPanics(t *testing.T) {
	base := `OPENQASM 2.0;
qreg q[4];
creg c[4];
gate foo(a) x, y { rz(a) x; cx x, y; }
h q[0];
foo(pi/2) q[0], q[1];
measure q -> c;
`
	mutate := func(s string, seed int64) string {
		b := []byte(s)
		r := uint64(seed)*0x9E3779B97F4A7C15 + 1
		next := func(mod int) int {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			return int(r % uint64(mod))
		}
		for k := 0; k < 1+next(4); k++ {
			switch next(3) {
			case 0: // delete a byte
				if len(b) > 1 {
					i := next(len(b))
					b = append(b[:i], b[i+1:]...)
				}
			case 1: // duplicate a byte
				i := next(len(b))
				b = append(b[:i], append([]byte{b[i]}, b[i:]...)...)
			default: // replace with a random printable
				i := next(len(b))
				b[i] = byte(32 + next(95))
			}
		}
		return string(b)
	}
	f := func(seed int64) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked on mutated input: %v", r)
			}
		}()
		_, _ = Parse(mutate(base, seed))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSuiteQASMRoundTrip writes a sample of the benchmark suite as QASM
// and parses it back, checking gate-level equality.
func TestSuiteQASMRoundTrip(t *testing.T) {
	for _, name := range []string{"qft_8", "adder_2", "grover_4", "bv_8", "rand_8_g200"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := b.Circuit()
		back, err := Parse(Write(c))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back.Name = c.Name
		if !c.Equal(back) {
			t.Errorf("%s: QASM round trip diverged", name)
		}
	}
}
