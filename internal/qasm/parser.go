package qasm

import (
	"fmt"
	"strconv"

	"codar/internal/circuit"
)

// maxInlineDepth bounds user-defined gate expansion to catch recursive
// definitions.
const maxInlineDepth = 100

// maxQubits caps the total declared quantum (and classical) bits. The
// parser runs on untrusted service input, and whole-register operations
// allocate per element — without a cap, "qreg q[2000000000];" followed by
// "barrier q;" would try to materialise billions of indices. 65536 is far
// beyond any device in the registry.
const maxQubits = 1 << 16

// reg is a declared quantum or classical register with its flat offset.
type reg struct {
	name   string
	offset int
	size   int
}

// gateDef is a user-defined gate awaiting inline expansion.
type gateDef struct {
	name   string
	params []string
	args   []string
	body   []bodyStmt
}

// bodyStmt is one statement inside a gate body: an application of a named
// gate to formal arguments, or a barrier over formal arguments.
type bodyStmt struct {
	name    string
	params  []expr
	args    []string
	barrier bool
}

// tokenSource yields tokens one at a time. The batch path pre-lexes the
// whole source (sliceTokens); the streaming path lexes line by line
// (streamLexer, stream.go). Errors are sticky: once next fails it keeps
// failing with the same error.
type tokenSource interface {
	next() (token, error)
}

// sliceTokens replays a pre-lexed token slice. tokenize always terminates
// the slice with tokEOF, which is re-returned forever.
type sliceTokens struct {
	toks []token
	pos  int
}

func (s *sliceTokens) next() (token, error) {
	t := s.toks[s.pos]
	if t.kind != tokEOF {
		s.pos++
	}
	return t, nil
}

// parser consumes a token stream and builds a circuit.
type parser struct {
	src    tokenSource
	tok    token // one-token lookahead
	primed bool
	// lexErr records a token-source failure. The failing position is masked
	// as EOF so the recursive-descent code needs no per-take error plumbing;
	// every entry point checks lexErr before trusting an accept.
	lexErr error

	qregs []reg
	cregs []reg
	defs  map[string]*gateDef
	circ  *circuit.Circuit
}

// Parse compiles OpenQASM 2.0 source into a flat circuit over all declared
// quantum registers (concatenated in declaration order); classical bits are
// flattened the same way. include directives are ignored — the standard
// qelib1 gates are built in, and user-defined gates are inlined.
func Parse(src string) (*circuit.Circuit, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: &sliceTokens{toks: toks}, defs: make(map[string]*gateDef)}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	return p.circ, nil
}

// ParseNamed is Parse with a circuit name attached.
func ParseNamed(name, src string) (*circuit.Circuit, error) {
	c, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c.Name = name
	return c, nil
}

func (p *parser) peek() token {
	if !p.primed {
		t, err := p.src.next()
		if err != nil {
			if p.lexErr == nil {
				p.lexErr = err
			}
			t = token{kind: tokEOF}
		}
		p.tok = t
		p.primed = true
	}
	return p.tok
}

func (p *parser) take() token { t := p.peek(); p.primed = false; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) peekSymbol(s string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == s
}

func (p *parser) peekIdent(s string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == s
}

func (p *parser) expectSymbol(s string) error {
	t := p.take()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("qasm: line %d: expected %q, found %s", t.line, s, t)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.take()
	if t.kind != tokIdent {
		return t, fmt.Errorf("qasm: line %d: expected identifier, found %s", t.line, t)
	}
	return t, nil
}

func (p *parser) expectInt() (int, error) {
	t := p.take()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("qasm: line %d: expected integer, found %s", t.line, t)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("qasm: line %d: expected integer, found %q", t.line, t.text)
	}
	return n, nil
}

// parseProgram parses the full translation unit.
func (p *parser) parseProgram() error {
	if err := p.parseHeader(); err != nil {
		return err
	}
	for !p.atEOF() {
		if err := p.parseStatement(); err != nil {
			return err
		}
	}
	if p.lexErr != nil {
		// A token-source failure surfaces as a masked EOF; report the
		// original lexer error, not the truncated-program symptom.
		return p.lexErr
	}
	return p.finishProgram()
}

// parseHeader consumes the optional "OPENQASM 2.0;" prologue.
func (p *parser) parseHeader() error {
	if p.peekIdent("OPENQASM") {
		p.take()
		t := p.take()
		if t.kind != tokNumber {
			return fmt.Errorf("qasm: line %d: expected version number", t.line)
		}
		if err := p.expectSymbol(";"); err != nil {
			return err
		}
	}
	return nil
}

// finishProgram applies the end-of-input rules once all statements parsed.
func (p *parser) finishProgram() error {
	if p.circ == nil {
		if len(p.qregs) == 0 {
			return fmt.Errorf("qasm: no quantum register declared")
		}
		// Registers but no operations: a legal (empty) program. Materialise
		// the circuit so it round-trips through Write.
		return p.ensureCircuit()
	}
	return nil
}

// ensureCircuit materialises the output circuit once registers are known.
func (p *parser) ensureCircuit() error {
	if p.circ != nil {
		return nil
	}
	total := 0
	for _, r := range p.qregs {
		total += r.size
	}
	if total == 0 {
		return fmt.Errorf("qasm: statement before any qreg declaration")
	}
	p.circ = circuit.New(total)
	for _, r := range p.cregs {
		p.circ.NumClbits += r.size
	}
	return nil
}

func (p *parser) parseStatement() error {
	t := p.peek()
	if t.kind != tokIdent {
		return fmt.Errorf("qasm: line %d: expected statement, found %s", t.line, t)
	}
	switch t.text {
	case "include":
		p.take()
		s := p.take()
		if s.kind != tokString {
			return fmt.Errorf("qasm: line %d: expected file name after include", s.line)
		}
		return p.expectSymbol(";")
	case "qreg":
		return p.parseRegDecl(true)
	case "creg":
		return p.parseRegDecl(false)
	case "gate":
		return p.parseGateDef()
	case "opaque":
		// Declaration only; skip to the terminating semicolon.
		for !p.atEOF() && !p.peekSymbol(";") {
			p.take()
		}
		return p.expectSymbol(";")
	case "barrier":
		p.take()
		return p.parseBarrier()
	case "measure":
		p.take()
		return p.parseMeasure()
	case "reset":
		p.take()
		return p.parseReset()
	case "if":
		return fmt.Errorf("qasm: line %d: classical control (if) is not supported", t.line)
	default:
		return p.parseApplication()
	}
}

func (p *parser) parseRegDecl(quantum bool) error {
	p.take() // qreg/creg
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("["); err != nil {
		return err
	}
	size, err := p.expectInt()
	if err != nil {
		return err
	}
	if size <= 0 {
		return fmt.Errorf("qasm: line %d: register %q has size %d", name.line, name.text, size)
	}
	if err := p.expectSymbol("]"); err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	if p.circ != nil {
		return fmt.Errorf("qasm: line %d: register %q declared after first operation", name.line, name.text)
	}
	if _, _, ok := p.findReg(name.text, true); ok {
		return fmt.Errorf("qasm: line %d: register %q redeclared", name.line, name.text)
	}
	if _, _, ok := p.findReg(name.text, false); ok {
		return fmt.Errorf("qasm: line %d: register %q redeclared", name.line, name.text)
	}
	if quantum {
		offset := 0
		for _, r := range p.qregs {
			offset += r.size
		}
		if size > maxQubits-offset {
			return fmt.Errorf("qasm: line %d: register %q pushes the program past %d qubits", name.line, name.text, maxQubits)
		}
		p.qregs = append(p.qregs, reg{name: name.text, offset: offset, size: size})
	} else {
		offset := 0
		for _, r := range p.cregs {
			offset += r.size
		}
		if size > maxQubits-offset {
			return fmt.Errorf("qasm: line %d: register %q pushes the program past %d classical bits", name.line, name.text, maxQubits)
		}
		p.cregs = append(p.cregs, reg{name: name.text, offset: offset, size: size})
	}
	return nil
}

func (p *parser) findReg(name string, quantum bool) (offset, size int, ok bool) {
	regs := p.qregs
	if !quantum {
		regs = p.cregs
	}
	for _, r := range regs {
		if r.name == name {
			return r.offset, r.size, true
		}
	}
	return 0, 0, false
}

// operand is a parsed register reference: whole register (index < 0) or a
// single element.
type operand struct {
	offset int // flat offset of the register
	size   int
	index  int // -1 for whole-register
	line   int
}

// qubits returns the flat indices the operand denotes.
func (o operand) qubits() []int {
	if o.index >= 0 {
		return []int{o.offset + o.index}
	}
	out := make([]int, o.size)
	for i := range out {
		out[i] = o.offset + i
	}
	return out
}

func (p *parser) parseOperand(quantum bool) (operand, error) {
	name, err := p.expectIdent()
	if err != nil {
		return operand{}, err
	}
	offset, size, ok := p.findReg(name.text, quantum)
	if !ok {
		kind := "quantum"
		if !quantum {
			kind = "classical"
		}
		return operand{}, fmt.Errorf("qasm: line %d: unknown %s register %q", name.line, kind, name.text)
	}
	o := operand{offset: offset, size: size, index: -1, line: name.line}
	if p.peekSymbol("[") {
		p.take()
		idx, err := p.expectInt()
		if err != nil {
			return operand{}, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return operand{}, err
		}
		if idx < 0 || idx >= size {
			return operand{}, fmt.Errorf("qasm: line %d: index %d out of range for %q[%d]", name.line, idx, name.text, size)
		}
		o.index = idx
	}
	return o, nil
}

func (p *parser) parseBarrier() error {
	if err := p.ensureCircuit(); err != nil {
		return err
	}
	var qs []int
	for {
		o, err := p.parseOperand(true)
		if err != nil {
			return err
		}
		qs = append(qs, o.qubits()...)
		if p.peekSymbol(",") {
			p.take()
			continue
		}
		break
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	return p.addGate(circuit.Gate{Op: circuit.OpBarrier, Qubits: qs})
}

func (p *parser) parseMeasure() error {
	if err := p.ensureCircuit(); err != nil {
		return err
	}
	q, err := p.parseOperand(true)
	if err != nil {
		return err
	}
	if err := p.expectSymbol("->"); err != nil {
		return err
	}
	c, err := p.parseOperand(false)
	if err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	qs := q.qubits()
	var cs []int
	if c.index >= 0 {
		cs = []int{c.offset + c.index}
	} else {
		cs = make([]int, c.size)
		for i := range cs {
			cs[i] = c.offset + i
		}
	}
	if len(qs) != len(cs) {
		return fmt.Errorf("qasm: line %d: measure size mismatch (%d qubits -> %d bits)", q.line, len(qs), len(cs))
	}
	for i := range qs {
		if err := p.addGate(circuit.Gate{Op: circuit.OpMeasure, Qubits: []int{qs[i]}, Cbit: cs[i]}); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseReset() error {
	if err := p.ensureCircuit(); err != nil {
		return err
	}
	o, err := p.parseOperand(true)
	if err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	for _, q := range o.qubits() {
		if err := p.addGate(circuit.Gate{Op: circuit.OpReset, Qubits: []int{q}}); err != nil {
			return err
		}
	}
	return nil
}

// parseApplication handles "name(params)? operands ;" statements.
func (p *parser) parseApplication() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.ensureCircuit(); err != nil {
		return err
	}
	var params []float64
	if p.peekSymbol("(") {
		p.take()
		if !p.peekSymbol(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				v, err := e.eval(nil)
				if err != nil {
					return fmt.Errorf("qasm: line %d: %w", name.line, err)
				}
				params = append(params, v)
				if p.peekSymbol(",") {
					p.take()
					continue
				}
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
	}
	var ops []operand
	for {
		o, err := p.parseOperand(true)
		if err != nil {
			return err
		}
		ops = append(ops, o)
		if p.peekSymbol(",") {
			p.take()
			continue
		}
		break
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	return p.applyBroadcast(name.text, name.line, params, ops, 0)
}

// applyBroadcast expands whole-register operands: every full-register
// operand must have the same size, and the gate is applied element-wise;
// indexed operands stay fixed.
func (p *parser) applyBroadcast(name string, line int, params []float64, ops []operand, depth int) error {
	bsize := -1
	for _, o := range ops {
		if o.index < 0 {
			if bsize >= 0 && o.size != bsize {
				return fmt.Errorf("qasm: line %d: broadcast register sizes differ (%d vs %d)", line, bsize, o.size)
			}
			bsize = o.size
		}
	}
	if bsize < 0 {
		qs := make([]int, len(ops))
		for i, o := range ops {
			qs[i] = o.offset + o.index
		}
		return p.applyGate(name, line, params, qs, depth)
	}
	for k := 0; k < bsize; k++ {
		qs := make([]int, len(ops))
		for i, o := range ops {
			if o.index < 0 {
				qs[i] = o.offset + k
			} else {
				qs[i] = o.offset + o.index
			}
		}
		if err := p.applyGate(name, line, params, qs, depth); err != nil {
			return err
		}
	}
	return nil
}

// applyGate resolves a gate name to a builtin op or a user definition and
// emits / inlines it.
func (p *parser) applyGate(name string, line int, params []float64, qubits []int, depth int) error {
	if depth > maxInlineDepth {
		return fmt.Errorf("qasm: line %d: gate %q expands too deep (recursive definition?)", line, name)
	}
	if op, ok := circuit.OpByName(name); ok {
		g := circuit.Gate{Op: op, Qubits: qubits, Params: params}
		return p.addGateAt(g, line)
	}
	def, ok := p.defs[name]
	if !ok {
		return fmt.Errorf("qasm: line %d: unknown gate %q", line, name)
	}
	if len(params) != len(def.params) {
		return fmt.Errorf("qasm: line %d: gate %q expects %d params, got %d", line, name, len(def.params), len(params))
	}
	if len(qubits) != len(def.args) {
		return fmt.Errorf("qasm: line %d: gate %q expects %d qubits, got %d", line, name, len(def.args), len(qubits))
	}
	env := make(map[string]float64, len(def.params))
	for i, pn := range def.params {
		env[pn] = params[i]
	}
	bind := make(map[string]int, len(def.args))
	for i, an := range def.args {
		bind[an] = qubits[i]
	}
	for _, st := range def.body {
		qs := make([]int, len(st.args))
		for i, an := range st.args {
			q, ok := bind[an]
			if !ok {
				return fmt.Errorf("qasm: gate %q: unbound argument %q", name, an)
			}
			qs[i] = q
		}
		if st.barrier {
			if err := p.addGateAt(circuit.Gate{Op: circuit.OpBarrier, Qubits: qs}, line); err != nil {
				return err
			}
			continue
		}
		sub := make([]float64, len(st.params))
		for i, e := range st.params {
			v, err := e.eval(env)
			if err != nil {
				return fmt.Errorf("qasm: gate %q: %w", name, err)
			}
			sub[i] = v
		}
		if err := p.applyGate(st.name, line, sub, qs, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) addGate(g circuit.Gate) error { return p.addGateAt(g, 0) }

func (p *parser) addGateAt(g circuit.Gate, line int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("qasm: line %d: %v", line, r)
		}
	}()
	p.circ.Add(g)
	return nil
}

// parseGateDef parses "gate name(params)? args { body }".
func (p *parser) parseGateDef() error {
	p.take() // gate
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	def := &gateDef{name: name.text}
	if p.peekSymbol("(") {
		p.take()
		if !p.peekSymbol(")") {
			for {
				id, err := p.expectIdent()
				if err != nil {
					return err
				}
				def.params = append(def.params, id.text)
				if p.peekSymbol(",") {
					p.take()
					continue
				}
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
	}
	for {
		id, err := p.expectIdent()
		if err != nil {
			return err
		}
		def.args = append(def.args, id.text)
		if p.peekSymbol(",") {
			p.take()
			continue
		}
		break
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}
	for !p.peekSymbol("}") {
		if p.atEOF() {
			return fmt.Errorf("qasm: unterminated body of gate %q", name.text)
		}
		st, err := p.parseBodyStmt()
		if err != nil {
			return err
		}
		def.body = append(def.body, st)
	}
	p.take() // }
	p.defs[name.text] = def
	return nil
}

// parseBodyStmt parses one statement inside a gate body.
func (p *parser) parseBodyStmt() (bodyStmt, error) {
	id, err := p.expectIdent()
	if err != nil {
		return bodyStmt{}, err
	}
	st := bodyStmt{name: id.text}
	if id.text == "barrier" {
		st.barrier = true
	} else if p.peekSymbol("(") {
		p.take()
		if !p.peekSymbol(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return bodyStmt{}, err
				}
				st.params = append(st.params, e)
				if p.peekSymbol(",") {
					p.take()
					continue
				}
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return bodyStmt{}, err
		}
	}
	for {
		arg, err := p.expectIdent()
		if err != nil {
			return bodyStmt{}, err
		}
		st.args = append(st.args, arg.text)
		if p.peekSymbol(",") {
			p.take()
			continue
		}
		break
	}
	if err := p.expectSymbol(";"); err != nil {
		return bodyStmt{}, err
	}
	return st, nil
}
