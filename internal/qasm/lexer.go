// Package qasm implements an OpenQASM 2.0 frontend (lexer, recursive-
// descent parser with user-defined gate inlining, expression evaluator)
// and a writer, covering the language subset used by the paper's benchmark
// suites (IBM Qiskit, RevLib translations, ScaffCC and Quipper output).
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // integer or real literal
	tokString // "..."
	tokSymbol // punctuation and operators
)

// token is one lexical unit with its source line for diagnostics.
type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer scans OpenQASM source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// next returns the next token, skipping whitespace and // comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
		l.scanNumber()
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return token{}, fmt.Errorf("qasm: line %d: unterminated string", l.line)
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("qasm: line %d: unterminated string", l.line)
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, line: l.line}, nil
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{kind: tokSymbol, text: "->", line: l.line}, nil
	case c == '=' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '=':
		l.pos += 2
		return token{kind: tokSymbol, text: "==", line: l.line}, nil
	case strings.ContainsRune("(){}[];,+-*/^=", rune(c)):
		l.pos++
		return token{kind: tokSymbol, text: string(c), line: l.line}, nil
	default:
		return token{}, fmt.Errorf("qasm: line %d: unexpected character %q", l.line, c)
	}
}

// scanNumber consumes an integer or real literal (with optional exponent).
func (l *lexer) scanNumber() {
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
		} else {
			l.pos = mark // not an exponent after all
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// tokenize scans the whole source (used by tests).
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
