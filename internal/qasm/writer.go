package qasm

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"codar/internal/circuit"
)

// Write renders a circuit as OpenQASM 2.0 over a single quantum register
// q[n] (and classical register c[m] when measurements are present). The
// output parses back via Parse into an equal circuit, enabling round-trip
// pipelines (benchgen -> file -> codar CLI).
func Write(c *circuit.Circuit) string {
	var b strings.Builder
	writeHeader(&b, c.Name, c.NumQubits, c.NumClbits)
	for _, g := range c.Gates {
		writeGate(&b, g)
	}
	return b.String()
}

func writeHeader(b *strings.Builder, name string, numQubits, numClbits int) {
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	if name != "" {
		fmt.Fprintf(b, "// circuit: %s\n", name)
	}
	fmt.Fprintf(b, "qreg q[%d];\n", numQubits)
	if numClbits > 0 {
		fmt.Fprintf(b, "creg c[%d];\n", numClbits)
	}
}

// Header renders the OpenQASM preamble Write would emit for a circuit with
// the given name and register sizes — the fixed prefix of a streamed
// rendering (appending every mapped gate line reproduces Write's output
// byte for byte).
func Header(name string, numQubits, numClbits int) string {
	var b strings.Builder
	writeHeader(&b, name, numQubits, numClbits)
	return b.String()
}

// AppendGate renders one gate statement onto b, exactly as Write does.
func AppendGate(b *strings.Builder, g circuit.Gate) {
	writeGate(b, g)
}

func writeGate(b *strings.Builder, g circuit.Gate) {
	switch g.Op {
	case circuit.OpMeasure:
		fmt.Fprintf(b, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.Cbit)
		return
	case circuit.OpBarrier:
		b.WriteString("barrier ")
		writeQubits(b, g.Qubits)
		b.WriteString(";\n")
		return
	case circuit.OpReset:
		fmt.Fprintf(b, "reset q[%d];\n", g.Qubits[0])
		return
	}
	b.WriteString(g.Op.Name())
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(formatParam(p))
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	writeQubits(b, g.Qubits)
	b.WriteString(";\n")
}

func writeQubits(b *strings.Builder, qs []int) {
	for i, q := range qs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "q[%d]", q)
	}
}

// formatParam renders a float with the shortest representation that
// round-trips exactly.
func formatParam(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}

// StreamWriter renders OpenQASM 2.0 incrementally: the header at
// construction, then one gate per WriteGate call — the output side of the
// streaming pipeline, where the mapped circuit is never materialized.
// WriteGate(g) for every gate of a circuit produces exactly the bytes of
// Write over that circuit (for unnamed circuits), so batch and streamed
// renderings are interchangeable.
type StreamWriter struct {
	w io.Writer
	b strings.Builder
}

// NewStreamWriter writes the OpenQASM header for numQubits qubits (and
// numClbits classical bits when positive) and returns the gate writer.
func NewStreamWriter(w io.Writer, numQubits, numClbits int) (*StreamWriter, error) {
	sw := &StreamWriter{w: w}
	writeHeader(&sw.b, "", numQubits, numClbits)
	if err := sw.flush(); err != nil {
		return nil, err
	}
	return sw, nil
}

// WriteGate renders one gate statement.
func (sw *StreamWriter) WriteGate(g circuit.Gate) error {
	writeGate(&sw.b, g)
	return sw.flush()
}

func (sw *StreamWriter) flush() error {
	_, err := io.WriteString(sw.w, sw.b.String())
	sw.b.Reset()
	return err
}
