package qasm

import (
	"fmt"
	"strconv"
	"strings"

	"codar/internal/circuit"
)

// Write renders a circuit as OpenQASM 2.0 over a single quantum register
// q[n] (and classical register c[m] when measurements are present). The
// output parses back via Parse into an equal circuit, enabling round-trip
// pipelines (benchgen -> file -> codar CLI).
func Write(c *circuit.Circuit) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	if c.Name != "" {
		fmt.Fprintf(&b, "// circuit: %s\n", c.Name)
	}
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	if c.NumClbits > 0 {
		fmt.Fprintf(&b, "creg c[%d];\n", c.NumClbits)
	}
	for _, g := range c.Gates {
		writeGate(&b, g)
	}
	return b.String()
}

func writeGate(b *strings.Builder, g circuit.Gate) {
	switch g.Op {
	case circuit.OpMeasure:
		fmt.Fprintf(b, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.Cbit)
		return
	case circuit.OpBarrier:
		b.WriteString("barrier ")
		writeQubits(b, g.Qubits)
		b.WriteString(";\n")
		return
	case circuit.OpReset:
		fmt.Fprintf(b, "reset q[%d];\n", g.Qubits[0])
		return
	}
	b.WriteString(g.Op.Name())
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(formatParam(p))
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	writeQubits(b, g.Qubits)
	b.WriteString(";\n")
}

func writeQubits(b *strings.Builder, qs []int) {
	for i, q := range qs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "q[%d]", q)
	}
}

// formatParam renders a float with the shortest representation that
// round-trips exactly.
func formatParam(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}
