package experiments

import (
	"fmt"
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/metrics"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/schedule"
	"codar/internal/workloads"
)

// streamCompareOn is CompareOn with both mappers run through their
// streaming entry points. It returns the benchmark's speedup computed
// entirely from streaming results, and errors if either mapper's streamed
// output diverges from its batch output in any observable way: the QASM
// rendering of the streamed gate sequence must be byte-identical to the
// batch result circuit's, and swaps/weighted depth must agree.
func streamCompareOn(b workloads.Benchmark, dev *arch.Device) (float64, error) {
	c := b.Circuit()
	initial, err := sabre.InitialLayout(c, dev, Seed, sabre.Options{})
	if err != nil {
		return 0, fmt.Errorf("%s on %s: %w", b.Name, dev.Name, err)
	}

	sres, err := sabre.Remap(c, dev, initial, sabre.Options{})
	if err != nil {
		return 0, fmt.Errorf("%s on %s: sabre batch: %w", b.Name, dev.Name, err)
	}
	var scol schedule.Collector
	sstream, err := sabre.RemapStream(circuit.NewSliceSource(c), dev, initial, sabre.Options{}, &scol)
	if err != nil {
		return 0, fmt.Errorf("%s on %s: sabre stream: %w", b.Name, dev.Name, err)
	}
	sgot, err := diffStream(sstream.NumQubits, sstream.NumClbits, scol.Gates, sres.Circuit)
	if err != nil {
		return 0, fmt.Errorf("%s on %s: sabre: %w", b.Name, dev.Name, err)
	}
	sWD := schedule.WeightedDepth(sgot, dev.Durations)
	if sstream.SwapCount != sres.SwapCount || sstream.Makespan != sWD {
		return 0, fmt.Errorf("%s on %s: sabre stats: stream %d swaps/%d makespan, batch %d swaps, streamed WD %d",
			b.Name, dev.Name, sstream.SwapCount, sstream.Makespan, sres.SwapCount, sWD)
	}

	cres, err := core.Remap(c, dev, initial, core.Options{})
	if err != nil {
		return 0, fmt.Errorf("%s on %s: codar batch: %w", b.Name, dev.Name, err)
	}
	var ccol schedule.Collector
	cstream, err := core.RemapStream(circuit.NewSliceSource(c), dev, initial, core.Options{}, &ccol)
	if err != nil {
		return 0, fmt.Errorf("%s on %s: codar stream: %w", b.Name, dev.Name, err)
	}
	cgot, err := diffStream(cstream.NumQubits, cstream.NumClbits, ccol.Gates, cres.Circuit)
	if err != nil {
		return 0, fmt.Errorf("%s on %s: codar: %w", b.Name, dev.Name, err)
	}
	if cstream.SwapCount != cres.SwapCount || cstream.Makespan != cres.Makespan {
		return 0, fmt.Errorf("%s on %s: codar stats: stream %d swaps/%d makespan, batch %d/%d",
			b.Name, dev.Name, cstream.SwapCount, cstream.Makespan, cres.SwapCount, cres.Makespan)
	}

	// Fig 8 measures the ASAP weighted depth of each mapper's output
	// circuit (for CODAR that can differ from its simulated makespan), so
	// the streaming-path speedup is computed from the streamed sequences.
	return float64(sWD) / float64(schedule.WeightedDepth(cgot, dev.Durations)), nil
}

// diffStream renders the streamed gate sequence and the batch result
// circuit as QASM, requires byte identity, and returns the reconstructed
// streamed circuit.
func diffStream(nq, nc int, streamed []schedule.ScheduledGate, batch *circuit.Circuit) (*circuit.Circuit, error) {
	// A stream has no circuit name; copy the batch one so the Write
	// comparison is over the program, not the metadata comment.
	got := &circuit.Circuit{Name: batch.Name, NumQubits: nq, NumClbits: nc}
	got.Gates = make([]circuit.Gate, len(streamed))
	for i, sg := range streamed {
		got.Gates[i] = sg.Gate
	}
	if a, b := qasm.Write(got), qasm.Write(batch); a != b {
		return nil, fmt.Errorf("streamed QASM (%d bytes, %d gates) differs from batch (%d bytes, %d gates)",
			len(a), len(got.Gates), len(b), len(batch.Gates))
	}
	return got, nil
}

// TestStreamFig8GridMatchesBatch is the differential grid over the full
// Fig 8 matrix: every eligible benchmark on every Fig 8 architecture, both
// mappers, streamed and batch-mapped from the shared reverse-traversal
// initial layout. Beyond per-row byte identity, the four average-speedup
// pins the fig8-guard CI job enforces on the batch path must reproduce
// exactly from streaming-path numbers — the streaming mapper earns the
// same Fig 8 panel, not just the same outputs on easy inputs.
func TestStreamFig8GridMatchesBatch(t *testing.T) {
	grid := []struct {
		dev *arch.Device
		pin string
	}{
		{arch.IBMQ16Melbourne(), "1.133"},
		{arch.Enfield6x6(), "1.184"},
		{arch.IBMQ20Tokyo(), "1.114"},
		{arch.SycamoreQ54(), "1.185"},
	}
	for _, g := range grid {
		g := g
		t.Run(g.dev.Name, func(t *testing.T) {
			t.Parallel()
			eligible := EligibleSuite(g.dev)
			speedups := make([]float64, len(eligible))
			err := RunBatch(len(eligible), 0, func(i int) error {
				s, err := streamCompareOn(eligible[i], g.dev)
				speedups[i] = s
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprintf("%.3f", metrics.Mean(speedups)); got != g.pin {
				t.Fatalf("streaming-path avg speedup %s over %d benchmarks, pinned %s",
					got, len(eligible), g.pin)
			}
		})
	}
}
