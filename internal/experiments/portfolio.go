package experiments

import (
	"fmt"
	"io"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/metrics"
	"codar/internal/portfolio"
	"codar/internal/sabre"
	"codar/internal/schedule"
	"codar/internal/workloads"
)

// PortfolioStudyRow is one benchmark of the portfolio study: the single-shot
// pipeline the paper evaluates (SABRE reverse-traversal placement at the
// fixed seed, then CODAR) against the multi-start portfolio winner.
type PortfolioStudyRow struct {
	Benchmark string
	Qubits    int
	Gates     int
	// SingleWD/PortWD are the weighted depths of the single-shot output and
	// the portfolio winner; SingleESP/PortESP the calibration-estimated
	// success probabilities when a snapshot is attached.
	SingleWD  int
	PortWD    int
	SingleESP float64
	PortESP   float64
	// Winner identifies the selected candidate.
	Winner portfolio.Candidate
	// Candidates/Completed/Abandoned summarise the grid outcome.
	Candidates int
	Completed  int
	Abandoned  int
}

// PortfolioStudyResult is the study over one device.
type PortfolioStudyResult struct {
	Device *arch.Device
	Snap   *calib.Snapshot
	Spec   portfolio.Spec
	Rows   []PortfolioStudyRow
}

// DepthWins counts benchmarks where the portfolio winner is strictly
// shallower than single-shot. The single-shot pipeline is itself a grid
// point (seed 1, sabre-reverse, codar), so the portfolio can tie but never
// lose on depth under the min-depth objective.
func (r PortfolioStudyResult) DepthWins() int {
	n := 0
	for _, row := range r.Rows {
		if row.PortWD < row.SingleWD {
			n++
		}
	}
	return n
}

// ESPWins counts benchmarks where the portfolio winner estimates strictly
// higher success probability.
func (r PortfolioStudyResult) ESPWins() int {
	n := 0
	for _, row := range r.Rows {
		if row.PortESP > row.SingleESP {
			n++
		}
	}
	return n
}

// MeanDepthRatio is the mean of PortWD/SingleWD (< 1 means the portfolio
// shortens schedules on average).
func (r PortfolioStudyResult) MeanDepthRatio() float64 {
	ratios := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		if row.SingleWD > 0 {
			ratios = append(ratios, float64(row.PortWD)/float64(row.SingleWD))
		}
	}
	return metrics.Mean(ratios)
}

// PortfolioCompareOn runs one benchmark of the portfolio study: the
// single-shot pipeline (SABRE reverse-traversal placement at the fixed
// seed, then CODAR under spec.Codar) against the full candidate grid of
// spec. snap may be nil (ESP columns read 0). The circuit is assembled
// once and shared between the single-shot run and every grid candidate.
func PortfolioCompareOn(b workloads.Benchmark, dev *arch.Device, snap *calib.Snapshot, spec portfolio.Spec) (PortfolioStudyRow, *portfolio.Result, error) {
	c := b.Circuit()
	row := PortfolioStudyRow{Benchmark: b.Name, Qubits: b.Qubits, Gates: c.Len()}
	spec.Snapshot = snap

	asm := circuit.Assemble(c)
	initial, err := sabre.InitialLayoutAssembled(asm, dev, Seed, sabre.Options{})
	if err != nil {
		return row, nil, fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
	}
	single, err := core.RemapAssembled(asm, dev, initial, spec.Codar)
	if err != nil {
		return row, nil, fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
	}
	sSched := schedule.ASAP(single.Circuit, dev.Durations)
	row.SingleWD = sSched.Makespan

	pres, err := portfolio.RunAssembled(asm, dev, spec)
	if err != nil {
		return row, nil, fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
	}
	row.PortWD = pres.Winner.Depth
	row.Winner = pres.WinnerReport().Candidate
	row.Candidates = len(pres.Candidates)
	row.Completed = pres.Completed
	row.Abandoned = pres.Abandoned
	if snap != nil {
		if row.SingleESP, err = snap.Success(sSched, dev); err != nil {
			return row, nil, fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
		}
		row.PortESP = pres.Winner.ESP
	}
	return row, pres, nil
}

// RunPortfolioStudy measures the portfolio against the single-shot pipeline
// over the device's Fig 8 suite slice. snap may be nil (ESP columns read 0);
// when non-nil it scores both outputs but does not steer routing, isolating
// the multi-start effect. The benchmark fan-out uses the RunBatch pool;
// each inner portfolio runs serially so the outer parallelism is the only
// fan-out, and every selection is deterministic, so worker count never
// changes the numbers.
func RunPortfolioStudy(dev *arch.Device, snap *calib.Snapshot, opts core.Options, workers int) (PortfolioStudyResult, error) {
	spec := portfolio.Spec{
		Objective:    portfolio.ObjectiveMinDepth,
		EarlyAbandon: true,
		Snapshot:     snap,
		Codar:        opts,
		Workers:      1,
	}
	res := PortfolioStudyResult{Device: dev, Snap: snap, Spec: spec}
	eligible := EligibleSuite(dev)
	rows := make([]PortfolioStudyRow, len(eligible))
	err := RunBatch(len(eligible), workers, func(i int) error {
		row, _, jerr := PortfolioCompareOn(eligible[i], dev, snap, spec)
		if jerr != nil {
			return jerr
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// WritePortfolioStudy renders the study as a table plus win-rate summary.
func WritePortfolioStudy(w io.Writer, r PortfolioStudyResult) error {
	t := metrics.NewTable("benchmark", "qubits", "singleWD", "portWD", "ratio", "winner", "singleESP", "portESP", "abandoned")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.SingleWD > 0 {
			ratio = float64(row.PortWD) / float64(row.SingleWD)
		}
		winner := fmt.Sprintf("s%d/%s/%s", row.Winner.Seed, row.Winner.Placement, row.Winner.Algorithm)
		t.AddRow(row.Benchmark, row.Qubits, row.SingleWD, row.PortWD, ratio, winner,
			row.SingleESP, row.PortESP, fmt.Sprintf("%d/%d", row.Abandoned, row.Candidates))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	n := len(r.Rows)
	_, err := fmt.Fprintf(w,
		"\n%s: benchmarks=%d  portfolio depth win-rate=%d/%d  mean depth ratio=%.3f  ESP win-rate=%d/%d\n\n",
		r.Device.Name, n, r.DepthWins(), n, r.MeanDepthRatio(), r.ESPWins(), n)
	return err
}
