package experiments

// Batch driver. The Fig 8 sweep maps each benchmark circuit independently,
// so its fan-out runs through RunBatch, a bounded worker pool; results land
// in pre-indexed slots, so parallelism never perturbs ordering, and every
// comparison is deterministic, so it never perturbs the numbers either.
// The remaining studies (Fig 9, gate-error, duration sweep, initial-mapping)
// stay serial: they share mutable device state or a single simulator and do
// not honor a worker budget.

import (
	"fmt"

	"codar/internal/pool"
)

// DefaultWorkers resolves a worker-count knob: values <= 0 select
// GOMAXPROCS, and the result is clamped to n so tiny batches do not spawn
// idle goroutines.
func DefaultWorkers(workers, n int) int { return pool.Workers(workers, n) }

// RunBatch executes jobs 0..n-1 across a bounded pool of workers
// (internal/pool) and returns the first error by job index (all jobs run
// regardless, keeping the work deterministic for benchmarking). workers
// <= 0 selects GOMAXPROCS; workers == 1 degenerates to a plain serial
// loop with no goroutine or channel traffic, making serial-vs-parallel
// comparisons honest.
func RunBatch(n, workers int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	pool.Run(n, workers, func(i int) { errs[i] = runJob(job, i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runJob shields the pool from a panicking job: the panic is converted to
// an error on the job's slot instead of killing the process with workers
// mid-flight.
func runJob(job func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: job %d panicked: %v", i, r)
		}
	}()
	return job(i)
}
