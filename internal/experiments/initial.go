package experiments

import (
	"fmt"
	"io"

	"codar/internal/arch"
	"codar/internal/core"
	"codar/internal/metrics"
	"codar/internal/placement"
	"codar/internal/schedule"
	"codar/internal/workloads"
)

// InitialMappingRow is one benchmark of the initial-mapping sensitivity
// study: CODAR's weighted depth from each placement strategy. The paper
// adopts SABRE's reverse-traversal mapping because "initial mapping has
// been proved to be significant" (§V-A); this study quantifies that on
// our suite.
type InitialMappingRow struct {
	Benchmark string
	// WD maps placement method -> CODAR weighted depth.
	WD map[placement.Method]int
}

// initialStudyBenchmarks is the representative subset used by the study.
var initialStudyBenchmarks = []string{
	"qft_10", "qft_16", "rand_10_g300", "rand_16_g1000",
	"revnet_12_s1", "adder_6", "qv_12_d12", "wstate_12",
}

// RunInitialMappingStudy maps each benchmark with CODAR starting from
// every placement strategy and records the weighted depths.
func RunInitialMappingStudy(dev *arch.Device, opts core.Options) ([]InitialMappingRow, error) {
	var rows []InitialMappingRow
	for _, name := range initialStudyBenchmarks {
		b, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		c := b.Circuit()
		row := InitialMappingRow{Benchmark: name, WD: make(map[placement.Method]int)}
		for _, m := range placement.Methods() {
			l, err := placement.Generate(m, c, dev, Seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", name, m, err)
			}
			res, err := core.Remap(c, dev, l, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", name, m, err)
			}
			row.WD[m] = schedule.WeightedDepth(res.Circuit, dev.Durations)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteInitialMappingStudy renders the study with per-method means
// normalised to the sabre-reverse baseline.
func WriteInitialMappingStudy(w io.Writer, dev *arch.Device, rows []InitialMappingRow) error {
	fmt.Fprintf(w, "initial-mapping sensitivity (CODAR weighted depth) on %s\n", dev.Name)
	methods := placement.Methods()
	headers := []string{"benchmark"}
	for _, m := range methods {
		headers = append(headers, string(m))
	}
	t := metrics.NewTable(headers...)
	ratios := make(map[placement.Method][]float64)
	for _, r := range rows {
		cells := []interface{}{r.Benchmark}
		base := float64(r.WD[placement.MethodSabreReverse])
		for _, m := range methods {
			cells = append(cells, r.WD[m])
			ratios[m] = append(ratios[m], float64(r.WD[m])/base)
		}
		t.AddRow(cells...)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmean weighted depth vs sabre-reverse baseline:\n")
	for _, m := range methods {
		fmt.Fprintf(w, "  %-14s %.3fx\n", m, metrics.Mean(ratios[m]))
	}
	return nil
}
