package experiments

import (
	"bytes"
	"strings"
	"testing"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/core"
)

// TestPortfolioStudyDominates pins the study's structural guarantee: the
// single-shot pipeline (seed-1 sabre-reverse + CODAR) is itself a grid
// point, so under the min-depth objective the portfolio winner can tie but
// never lose on weighted depth.
func TestPortfolioStudyDominates(t *testing.T) {
	dev := arch.IBMQ5() // 5 qubits keeps the eligible slice small and fast
	snap := calib.Synthetic(dev, Seed)
	res, err := RunPortfolioStudy(dev, snap, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("study ran no benchmarks")
	}
	for _, row := range res.Rows {
		if row.PortWD > row.SingleWD {
			t.Errorf("%s: portfolio depth %d worse than single-shot %d", row.Benchmark, row.PortWD, row.SingleWD)
		}
		if row.Candidates != 16 {
			t.Errorf("%s: grid of %d candidates, want 16", row.Benchmark, row.Candidates)
		}
		if row.Completed+row.Abandoned != row.Candidates {
			t.Errorf("%s: completed %d + abandoned %d != %d", row.Benchmark, row.Completed, row.Abandoned, row.Candidates)
		}
		if row.SingleESP <= 0 || row.PortESP <= 0 {
			t.Errorf("%s: ESP columns missing (%v/%v)", row.Benchmark, row.SingleESP, row.PortESP)
		}
	}
	if wins := res.DepthWins(); wins < 0 || wins > len(res.Rows) {
		t.Errorf("depth win-rate %d out of range", wins)
	}
	if r := res.MeanDepthRatio(); r <= 0 || r > 1.0000001 {
		t.Errorf("mean depth ratio %v, want in (0, 1]", r)
	}

	var buf bytes.Buffer
	if err := WritePortfolioStudy(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"portfolio depth win-rate", "mean depth ratio", "ESP win-rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestPortfolioStudyDeterministicAcrossWorkers: the outer fan-out must not
// change any number (every inner selection is deterministic).
func TestPortfolioStudyDeterministicAcrossWorkers(t *testing.T) {
	dev := arch.IBMQ5()
	serial, err := RunPortfolioStudy(dev, nil, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunPortfolioStudy(dev, nil, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range serial.Rows {
		s, p := serial.Rows[i], parallel.Rows[i]
		if s.PortWD != p.PortWD || s.SingleWD != p.SingleWD || s.Winner != p.Winner {
			t.Errorf("%s: serial %+v vs parallel %+v", s.Benchmark, s.Winner, p.Winner)
		}
	}
}
