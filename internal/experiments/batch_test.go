package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"codar/internal/arch"
	"codar/internal/core"
)

func TestRunBatchRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 37
		var counts [n]int32
		err := RunBatch(n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunBatchReturnsFirstErrorByIndex(t *testing.T) {
	boom := errors.New("boom")
	err := RunBatch(10, 4, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("job %d: %w", i, boom)
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := err.Error(); got != "job 3: boom" {
		t.Fatalf("err = %q, want the lowest-index failure", got)
	}
}

func TestRunBatchRecoversPanics(t *testing.T) {
	err := RunBatch(4, 2, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic was swallowed")
	}
}

func TestRunBatchZeroJobs(t *testing.T) {
	if err := RunBatch(0, 4, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersClamps(t *testing.T) {
	if got := DefaultWorkers(8, 3); got != 3 {
		t.Fatalf("DefaultWorkers(8,3) = %d", got)
	}
	if got := DefaultWorkers(-1, 100); got < 1 {
		t.Fatalf("DefaultWorkers(-1,100) = %d", got)
	}
	if got := DefaultWorkers(2, 100); got != 2 {
		t.Fatalf("DefaultWorkers(2,100) = %d", got)
	}
}

// TestFig8WorkersInvariance: the sweep numbers must be bit-identical no
// matter how the batch is scheduled.
func TestFig8WorkersInvariance(t *testing.T) {
	dev := arch.IBMQ5()
	serial, err := RunFig8DeviceWorkers(dev, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFig8DeviceWorkers(dev, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i] != parallel.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, serial.Rows[i], parallel.Rows[i])
		}
	}
}
