package experiments

import (
	"bytes"
	"strings"
	"testing"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/core"
)

func TestCalibrationStudySmallDevice(t *testing.T) {
	dev := arch.Grid("calib-3x3", 3, 3)
	snap := calib.Synthetic(dev, Seed)
	res, err := RunCalibrationStudy(dev, snap, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if res.Lambda != calib.DefaultLambda {
		t.Errorf("lambda defaulted to %v, want %v", res.Lambda, calib.DefaultLambda)
	}
	for _, row := range res.Rows {
		if row.UncalESP <= 0 || row.UncalESP > 1 || row.CalESP <= 0 || row.CalESP > 1 {
			t.Fatalf("%s: ESP outside (0,1]: %v / %v", row.Benchmark, row.UncalESP, row.CalESP)
		}
	}
	var buf bytes.Buffer
	if err := WriteCalibrationStudy(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean ESP") {
		t.Error("summary line missing")
	}
}

// TestCalibrationStudyImprovesESPOnTokyo pins the acceptance claim: on the
// Fig 8 Tokyo suite with the synthetic snapshot and the default λ, the
// calibrated pipeline (weighted placement + routing) must estimate a higher
// mean success probability than duration-only mapping. The measured margin
// (≈ +4%) is recorded in EXPERIMENTS.md; the test only requires it to stay
// positive.
func TestCalibrationStudyImprovesESPOnTokyo(t *testing.T) {
	if testing.Short() {
		t.Skip("full Tokyo suite in -short mode")
	}
	dev := arch.IBMQ20Tokyo()
	snap := calib.Synthetic(dev, Seed)
	res, err := RunCalibrationStudy(dev, snap, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	uncal, cal := res.MeanESP()
	if cal <= uncal {
		t.Errorf("calibrated mean ESP %.4f not above uncalibrated %.4f", cal, uncal)
	}
	t.Logf("tokyo: mean ESP %.4f -> %.4f (x%.3f), improved %d/%d",
		uncal, cal, cal/uncal, res.Improved(), len(res.Rows))
}

func TestCalibrationFidelityRuns(t *testing.T) {
	rows, err := RunCalibrationFidelity(3, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	for _, r := range rows {
		// With few trajectories and percent-level gate errors an estimate of
		// exactly 0 is legitimate (every trajectory suffered a Pauli error).
		if r.UncalFidelity < 0 || r.UncalFidelity > 1+1e-9 || r.CalFidelity < 0 || r.CalFidelity > 1+1e-9 {
			t.Fatalf("%s: fidelity outside [0,1]: %v / %v", r.Benchmark, r.UncalFidelity, r.CalFidelity)
		}
	}
	var buf bytes.Buffer
	if err := WriteCalibrationFidelity(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean simulated fidelity") {
		t.Error("summary line missing")
	}
}
