package experiments

import (
	"fmt"
	"io"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/core"
	"codar/internal/metrics"
	"codar/internal/sabre"
	"codar/internal/schedule"
	"codar/internal/workloads"
)

// CalibrationRow is one benchmark measurement of the calibration study: the
// same circuit mapped by CODAR twice — once duration-only ("uncal"), once
// with the fidelity-weighted cost model ("cal") — and scored by the
// snapshot's estimated success probability (ESP).
type CalibrationRow struct {
	Benchmark string
	Qubits    int
	Gates     int
	// Swap counts and weighted depths of the two runs.
	UncalSwaps int
	CalSwaps   int
	UncalWD    int
	CalWD      int
	// Estimated success probabilities under the calibration snapshot.
	UncalESP float64
	CalESP   float64
}

// Gain is the per-benchmark ESP ratio cal/uncal (> 1 means the calibrated
// route is more reliable).
func (r CalibrationRow) Gain() float64 {
	if r.UncalESP <= 0 {
		return 0
	}
	return r.CalESP / r.UncalESP
}

// CalibrationResult is the study over one device and snapshot.
type CalibrationResult struct {
	Device *arch.Device
	Snap   *calib.Snapshot
	Lambda float64
	Rows   []CalibrationRow
}

// MeanESP returns the mean estimated success probabilities (uncal, cal).
func (r CalibrationResult) MeanESP() (uncal, cal float64) {
	for _, row := range r.Rows {
		uncal += row.UncalESP
		cal += row.CalESP
	}
	n := float64(len(r.Rows))
	if n == 0 {
		return 0, 0
	}
	return uncal / n, cal / n
}

// Improved counts the benchmarks where the calibrated route estimates
// strictly higher success probability.
func (r CalibrationResult) Improved() int {
	n := 0
	for _, row := range r.Rows {
		if row.CalESP > row.UncalESP {
			n++
		}
	}
	return n
}

// RunCalibrationStudy maps every eligible suite benchmark on dev twice —
// duration-only CODAR versus CODAR with the snapshot's fidelity-weighted
// cost model (placement included: the calibrated run also draws its SABRE
// reverse-traversal initial layout under the weighted metric) — and scores
// both outputs with the snapshot's ESP. lambda 0 selects
// calib.DefaultLambda. The benchmark fan-out reuses the RunBatch worker
// pool; every comparison is deterministic, so parallelism never changes the
// numbers.
func RunCalibrationStudy(dev *arch.Device, snap *calib.Snapshot, lambda float64, opts core.Options) (CalibrationResult, error) {
	return RunCalibrationStudyWorkers(dev, snap, lambda, opts, 0)
}

// RunCalibrationStudyWorkers is RunCalibrationStudy with an explicit worker
// budget (workers <= 0 means GOMAXPROCS).
func RunCalibrationStudyWorkers(dev *arch.Device, snap *calib.Snapshot, lambda float64, opts core.Options, workers int) (CalibrationResult, error) {
	res := CalibrationResult{Device: dev, Snap: snap, Lambda: lambda}
	if lambda == 0 {
		res.Lambda = calib.DefaultLambda
	}
	cm, err := snap.CostModel(dev, lambda)
	if err != nil {
		return res, fmt.Errorf("experiments: calibration study: %w", err)
	}
	eligible := EligibleSuite(dev)
	rows := make([]CalibrationRow, len(eligible))
	err = RunBatch(len(eligible), workers, func(i int) error {
		b := eligible[i]
		c := b.Circuit()
		row := CalibrationRow{Benchmark: b.Name, Qubits: b.Qubits, Gates: c.Len()}

		plainInit, err := sabre.InitialLayout(c, dev, Seed, sabre.Options{})
		if err != nil {
			return fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
		}
		plain, err := core.Remap(c, dev, plainInit, opts)
		if err != nil {
			return fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
		}
		calOpts := opts
		calOpts.Cost = cm
		calInit, err := sabre.InitialLayout(c, dev, Seed, sabre.Options{Cost: cm})
		if err != nil {
			return fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
		}
		calibrated, err := core.Remap(c, dev, calInit, calOpts)
		if err != nil {
			return fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
		}

		row.UncalSwaps, row.CalSwaps = plain.SwapCount, calibrated.SwapCount
		pSched := schedule.ASAP(plain.Circuit, dev.Durations)
		cSched := schedule.ASAP(calibrated.Circuit, dev.Durations)
		row.UncalWD, row.CalWD = pSched.Makespan, cSched.Makespan
		if row.UncalESP, err = snap.Success(pSched, dev); err != nil {
			return fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
		}
		if row.CalESP, err = snap.Success(cSched, dev); err != nil {
			return fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// WriteCalibrationStudy renders the study as a table plus summary means.
func WriteCalibrationStudy(w io.Writer, r CalibrationResult) error {
	t := metrics.NewTable("benchmark", "qubits", "swaps", "calSwaps", "WD", "calWD", "ESP", "calESP", "gain")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Qubits, row.UncalSwaps, row.CalSwaps,
			row.UncalWD, row.CalWD, row.UncalESP, row.CalESP, row.Gain())
	}
	if err := t.Render(w); err != nil {
		return err
	}
	uncal, cal := r.MeanESP()
	ratio := 0.0
	if uncal > 0 {
		ratio = cal / uncal
	}
	_, err := fmt.Fprintf(w,
		"\n%s: benchmarks=%d  lambda=%.1f  mean ESP uncalibrated=%.4f calibrated=%.4f (x%.3f)  improved=%d/%d\n\n",
		r.Device.Name, len(r.Rows), r.Lambda, uncal, cal, ratio, r.Improved(), len(r.Rows))
	return err
}

// CalibFidelityRow is one algorithm measurement of the calibrated Fig 9
// extension: trajectory-simulated fidelity of both routing modes under the
// snapshot's heterogeneous per-qubit noise.
type CalibFidelityRow struct {
	Benchmark  string
	UncalSwaps int
	CalSwaps   int
	UncalWD    int
	CalWD      int
	// Monte-Carlo fidelities under the snapshot-derived noise model.
	UncalFidelity float64
	CalFidelity   float64
}

// RunCalibrationFidelity replays the Fig 9 machinery on the calibration
// study: the famous-seven algorithms are mapped with and without the
// fidelity-weighted cost model (lambda 0 selects calib.DefaultLambda, the
// same convention as RunCalibrationStudy) on the 3×3 fidelity device
// carrying a synthetic calibration snapshot, then trajectory-simulated
// under the snapshot's per-qubit T1/T2 and mean depolarising gate errors
// (calib.Snapshot.NoiseModel). It validates the analytic ESP ordering with
// a full noisy simulation.
func RunCalibrationFidelity(trajectories int, lambda float64, opts core.Options) ([]CalibFidelityRow, error) {
	dev := FidelityDevice()
	snap := calib.Synthetic(dev, Seed)
	cm, err := snap.CostModel(dev, lambda)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	model := snap.NoiseModel()
	var rows []CalibFidelityRow
	for _, b := range workloads.FamousSeven() {
		c := b.Circuit()
		plainInit, err := sabre.InitialLayout(c, dev, Seed, sabre.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		plain, err := core.Remap(c, dev, plainInit, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		calOpts := opts
		calOpts.Cost = cm
		calInit, err := sabre.InitialLayout(c, dev, Seed, sabre.Options{Cost: cm})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		calibrated, err := core.Remap(c, dev, calInit, calOpts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		pSched := schedule.ASAP(plain.Circuit, dev.Durations)
		cSched := schedule.ASAP(calibrated.Circuit, dev.Durations)
		pf, err := model.FidelityEstimate(pSched, trajectories, Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		cf, err := model.FidelityEstimate(cSched, trajectories, Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		rows = append(rows, CalibFidelityRow{
			Benchmark:  b.Name,
			UncalSwaps: plain.SwapCount, CalSwaps: calibrated.SwapCount,
			UncalWD: pSched.Makespan, CalWD: cSched.Makespan,
			UncalFidelity: pf, CalFidelity: cf,
		})
	}
	return rows, nil
}

// WriteCalibrationFidelity renders the simulated study.
func WriteCalibrationFidelity(w io.Writer, rows []CalibFidelityRow) error {
	t := metrics.NewTable("algorithm", "swaps", "calSwaps", "WD", "calWD", "fidelity", "calFidelity", "delta")
	var uncal, cal float64
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.UncalSwaps, r.CalSwaps, r.UncalWD, r.CalWD,
			r.UncalFidelity, r.CalFidelity, r.CalFidelity-r.UncalFidelity)
		uncal += r.UncalFidelity
		cal += r.CalFidelity
	}
	if err := t.Render(w); err != nil {
		return err
	}
	n := float64(len(rows))
	if n == 0 {
		n = 1
	}
	_, err := fmt.Fprintf(w, "\nmean simulated fidelity: uncalibrated=%.4f calibrated=%.4f\n", uncal/n, cal/n)
	return err
}
