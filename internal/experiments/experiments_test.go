package experiments

import (
	"strings"
	"testing"

	"codar/internal/arch"
	"codar/internal/core"
	"codar/internal/verify"
	"codar/internal/workloads"
)

func TestCompareOnProducesVerifiedOutputs(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	b, err := workloads.ByName("qft_8")
	if err != nil {
		t.Fatal(err)
	}
	row, err := CompareOn(b, dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.CodarWD <= 0 || row.SabreWD <= 0 {
		t.Errorf("weighted depths %d/%d", row.CodarWD, row.SabreWD)
	}
	if row.Speedup <= 0 {
		t.Errorf("speedup %g", row.Speedup)
	}
	if row.Gates == 0 || row.Qubits != 8 {
		t.Errorf("row metadata: %+v", row)
	}
}

func TestCompareOnDeterministic(t *testing.T) {
	dev := arch.IBMQ16Melbourne()
	b, _ := workloads.ByName("rand_8_g200")
	r1, err := CompareOn(b, dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CompareOn(b, dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("non-deterministic comparison: %+v vs %+v", r1, r2)
	}
}

// TestFig8SubsetShape runs a small subset of the Fig 8 sweep and checks the
// headline shape: CODAR achieves an average speedup >= 1 over SABRE on
// weighted depth.
func TestFig8SubsetShape(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	names := []string{"qft_10", "qft_13", "rand_10_g300", "rand_12_g500", "qv_8_d8", "revnet_10_s1", "ising_8_4", "dj_balanced_12"}
	var sum float64
	for _, name := range names {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		row, err := CompareOn(b, dev, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sum += row.Speedup
	}
	avg := sum / float64(len(names))
	if avg < 1.0 {
		t.Errorf("average speedup on subset = %.3f, want >= 1.0 (paper: 1.214 on Q20)", avg)
	}
}

func TestRunFig8DeviceFiltersOversized(t *testing.T) {
	// On the 16-qubit Melbourne, only the 68 small benchmarks run.
	dev := arch.IBMQ16Melbourne()
	// Use a cheap subset by filtering the suite through the real function
	// is too slow for -short runs; here we only check the filter logic via
	// benchmark counting on a fast fake: filter is inside RunFig8Device,
	// so run it with a tiny option set but... the full device run is
	// long. Approximate: count eligible benchmarks directly.
	n := 0
	for _, b := range workloads.Suite() {
		if b.Qubits > 16 && dev.NumQubits < 54 {
			continue
		}
		if b.Qubits > dev.NumQubits {
			continue
		}
		n++
	}
	if n != 68 {
		t.Errorf("eligible benchmarks on Q16 = %d, want 68", n)
	}
	// Sycamore takes all 71.
	syc := arch.SycamoreQ54()
	n = 0
	for _, b := range workloads.Suite() {
		if b.Qubits > syc.NumQubits {
			continue
		}
		n++
	}
	if n != 71 {
		t.Errorf("eligible benchmarks on Sycamore = %d, want 71", n)
	}
}

// TestFig9SmallRun exercises the fidelity harness end to end with few
// trajectories and checks the paper's qualitative claims: fidelities are
// valid probabilities and CODAR does not collapse relative to SABRE.
func TestFig9SmallRun(t *testing.T) {
	rows, err := RunFig9(6, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 { // 7 algorithms x 2 regimes
		t.Fatalf("rows = %d, want 14", len(rows))
	}
	var cSum, sSum float64
	for _, r := range rows {
		if r.CodarFidelity < 0 || r.CodarFidelity > 1+1e-9 || r.SabreFidelity < 0 || r.SabreFidelity > 1+1e-9 {
			t.Errorf("%s/%s: fidelities out of range: %+v", r.Benchmark, r.Regime, r)
		}
		cSum += r.CodarFidelity
		sSum += r.SabreFidelity
	}
	// Fidelity maintenance: CODAR's mean fidelity within 5% of SABRE's.
	if cSum < sSum*0.95 {
		t.Errorf("CODAR mean fidelity %.4f collapsed vs SABRE %.4f", cSum/14, sSum/14)
	}
}

func TestWriteFig8Renders(t *testing.T) {
	dev := arch.Linear(6)
	b, _ := workloads.ByName("ghz_5")
	row, err := CompareOn(b, dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig8(&sb, Fig8Result{Device: dev, Rows: []SpeedupRow{row}}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benchmark", "speedup", "avg speedup", "ghz_5"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("WriteFig8 output missing %q", want)
		}
	}
}

func TestWriteFig9Renders(t *testing.T) {
	rows := []FidelityRow{{Benchmark: "qft_5", Regime: "dephasing", CodarWD: 10, SabreWD: 12, CodarFidelity: 0.9, SabreFidelity: 0.85}}
	var sb strings.Builder
	if err := WriteFig9(&sb, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"algorithm", "regime", "qft_5", "mean fidelity"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("WriteFig9 output missing %q", want)
		}
	}
}

// TestMappedOutputsStayVerified spot-checks that the harness's mapped
// circuits remain semantically faithful (the harness itself skips
// verification for speed; this pins it for a sample).
func TestMappedOutputsStayVerified(t *testing.T) {
	dev := FidelityDevice()
	for _, name := range []string{"qft_5", "ghz_6", "simon_6"} {
		var b workloads.Benchmark
		found := false
		for _, cand := range workloads.FamousSeven() {
			if cand.Name == name {
				b, found = cand, true
			}
		}
		if !found {
			t.Fatalf("%s not in FamousSeven", name)
		}
		c := b.Circuit()
		res, err := core.Remap(c, dev, nil, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Full(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGateErrorStudy(t *testing.T) {
	rows, err := RunGateErrorStudy(5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		if r.CodarFidelity < 0 || r.CodarFidelity > 1+1e-9 {
			t.Errorf("%s: codar fidelity %g", r.Benchmark, r.CodarFidelity)
		}
		if r.CodarWD <= 0 || r.SabreWD <= 0 {
			t.Errorf("%s: missing weighted depths", r.Benchmark)
		}
	}
	var sb strings.Builder
	if err := WriteGateErrorStudy(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mean fidelity with gate errors") {
		t.Error("study output missing summary")
	}
}

func TestDurationSweep(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	before := dev.Durations
	points, err := RunDurationSweep(dev, []int{1, 2}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Ratio != 1 || points[1].Ratio != 2 {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.AvgSpeedup <= 0 || p.GeoMean <= 0 {
			t.Errorf("ratio %d: non-positive speedups %+v", p.Ratio, p)
		}
	}
	// The device's durations must be restored after the sweep.
	if dev.Durations.Two != before.Two || dev.Durations.Swap != before.Swap {
		t.Error("sweep leaked duration mutation")
	}
	if _, err := RunDurationSweep(dev, []int{0}, core.Options{}); err == nil {
		t.Error("non-positive ratio accepted")
	}
	var sb strings.Builder
	if err := WriteDurationSweep(&sb, dev, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2q/1q ratio") {
		t.Error("sweep output missing header")
	}
}

func TestWriteFig8CSV(t *testing.T) {
	dev := arch.Linear(6)
	b, _ := workloads.ByName("ghz_5")
	row, err := CompareOn(b, dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Fig8Result{Device: dev, Rows: []SpeedupRow{row}}
	var sb strings.Builder
	if err := WriteFig8CSV(&sb, res, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "device,benchmark") {
		t.Errorf("CSV shape wrong: %q", sb.String())
	}
	if !strings.Contains(lines[1], "ghz_5") {
		t.Errorf("CSV row missing data: %q", lines[1])
	}
	// Without header.
	var sb2 strings.Builder
	if err := WriteFig8CSV(&sb2, res, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "device,benchmark") {
		t.Error("header written when suppressed")
	}
}

func TestRunFig8DeviceParallelDeterminism(t *testing.T) {
	// The parallel fan-out must not perturb results or ordering.
	dev := arch.IBMQ5()
	r1, err := RunFig8Device(dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFig8Device(dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		if r1.Rows[i] != r2.Rows[i] {
			t.Fatalf("row %d differs across runs: %+v vs %+v", i, r1.Rows[i], r2.Rows[i])
		}
	}
}

func TestInitialMappingStudy(t *testing.T) {
	// Use the small Q5 device implicitly via a trimmed run on Tokyo with
	// the standard subset; just validate structure and sanity.
	dev := arch.IBMQ20Tokyo()
	rows, err := RunInitialMappingStudy(dev, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if len(r.WD) != 4 {
			t.Errorf("%s: %d methods, want 4", r.Benchmark, len(r.WD))
		}
		for m, wd := range r.WD {
			if wd <= 0 {
				t.Errorf("%s/%s: weighted depth %d", r.Benchmark, m, wd)
			}
		}
	}
	var sb strings.Builder
	if err := WriteInitialMappingStudy(&sb, dev, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trivial", "random", "dense", "sabre-reverse", "baseline"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("study output missing %q", want)
		}
	}
}
