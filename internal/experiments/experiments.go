// Package experiments implements the paper's evaluation harnesses: the
// Fig 8 circuit-execution speedup sweep (CODAR vs SABRE weighted depth over
// the benchmark suite on four architectures) and the Fig 9 fidelity-
// maintenance experiment (seven well-known algorithms under dephasing- and
// damping-dominant noise). The same code backs cmd/speedup, cmd/fidelity
// and the root bench_test.go targets, so every reported number is
// regenerable from one place.
package experiments

import (
	"fmt"
	"io"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/metrics"
	"codar/internal/sabre"
	"codar/internal/schedule"
	"codar/internal/sim"
	"codar/internal/workloads"
)

// Seed is the fixed experiment seed: the suite, initial mappings and noise
// trajectories are all deterministic functions of it.
const Seed = 1

// SpeedupRow is one benchmark × architecture measurement of Fig 8.
type SpeedupRow struct {
	Benchmark string
	Qubits    int
	Gates     int
	// CodarWD and SabreWD are the weighted depths (ASAP makespans under
	// the device duration map) of each mapper's output circuit.
	CodarWD int
	SabreWD int
	// Speedup is SabreWD / CodarWD — the paper's Fig 8 y-axis.
	Speedup float64
	// Swap counts of each mapper.
	CodarSwaps int
	SabreSwaps int
	// Unweighted output depths, for the duration-awareness ablation story.
	CodarDepth int
	SabreDepth int
}

// CompareOn maps one benchmark circuit with both mappers from the shared
// SABRE reverse-traversal initial layout (paper §V-A) and measures weighted
// depth of both outputs under the device duration map.
func CompareOn(b workloads.Benchmark, dev *arch.Device, opts core.Options) (SpeedupRow, error) {
	c := b.Circuit()
	// One shared assembly: the initial-layout passes, the SABRE run and the
	// CODAR run reuse the same SoA gate layout, DAG, reversed circuit and
	// validity verdict instead of rebuilding them per call.
	asm := circuit.Assemble(c)
	initial, err := sabre.InitialLayoutAssembled(asm, dev, Seed, sabre.Options{})
	if err != nil {
		return SpeedupRow{}, fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
	}
	sres, err := sabre.RemapAssembled(asm, dev, initial, sabre.Options{})
	if err != nil {
		return SpeedupRow{}, fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
	}
	cres, err := core.RemapAssembled(asm, dev, initial, opts)
	if err != nil {
		return SpeedupRow{}, fmt.Errorf("experiments: %s on %s: %w", b.Name, dev.Name, err)
	}
	sWD := schedule.WeightedDepth(sres.Circuit, dev.Durations)
	cWD := schedule.WeightedDepth(cres.Circuit, dev.Durations)
	row := SpeedupRow{
		Benchmark:  b.Name,
		Qubits:     b.Qubits,
		Gates:      c.Len(),
		CodarWD:    cWD,
		SabreWD:    sWD,
		Speedup:    float64(sWD) / float64(cWD),
		CodarSwaps: cres.SwapCount,
		SabreSwaps: sres.SwapCount,
		CodarDepth: cres.Circuit.Depth(),
		SabreDepth: sres.Circuit.Depth(),
	}
	return row, nil
}

// Fig8Result is the speedup sweep on one architecture.
type Fig8Result struct {
	Device *arch.Device
	Rows   []SpeedupRow
}

// Speedups extracts the per-benchmark speedup series.
func (r Fig8Result) Speedups() []float64 {
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Speedup
	}
	return out
}

// AverageSpeedup is the arithmetic-mean speedup the paper quotes per
// architecture (1.212 / 1.241 / 1.214 / 1.258).
func (r Fig8Result) AverageSpeedup() float64 { return metrics.Mean(r.Speedups()) }

// RunFig8Device runs the Fig 8 sweep for one architecture, fanning the
// benchmarks across GOMAXPROCS workers via RunBatch (results stay in suite
// order, and every comparison is deterministic, so parallelism never
// changes the numbers). The paper tests 68 benchmarks on the three small
// devices and all 71 on the 54-qubit Sycamore; the suite is filtered
// accordingly.
func RunFig8Device(dev *arch.Device, opts core.Options) (Fig8Result, error) {
	return RunFig8DeviceWorkers(dev, opts, 0)
}

// EligibleSuite returns the device's slice of the benchmark suite under
// the Fig 8 eligibility rule: the paper tests 68 benchmarks on the three
// small devices and all 71 (including the 36-qubit programs) on the
// 54-qubit Sycamore. Every study that claims to mirror the Fig 8 sweep
// (speedup, calibration, portfolio) filters through this one helper.
func EligibleSuite(dev *arch.Device) []workloads.Benchmark {
	var eligible []workloads.Benchmark
	for _, b := range workloads.Suite() {
		if b.Qubits > 16 && dev.NumQubits < 54 {
			continue // the three 36-qubit programs run only on Sycamore
		}
		if b.Qubits > dev.NumQubits {
			continue
		}
		eligible = append(eligible, b)
	}
	return eligible
}

// RunFig8DeviceWorkers is RunFig8Device with an explicit worker budget:
// workers <= 0 means GOMAXPROCS, 1 runs strictly serially (the honest
// baseline for driver-scaling measurements).
func RunFig8DeviceWorkers(dev *arch.Device, opts core.Options, workers int) (Fig8Result, error) {
	res := Fig8Result{Device: dev}
	eligible := EligibleSuite(dev)
	rows := make([]SpeedupRow, len(eligible))
	err := RunBatch(len(eligible), workers, func(i int) error {
		var jerr error
		rows[i], jerr = CompareOn(eligible[i], dev, opts)
		return jerr
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// WriteFig8CSV emits the sweep as CSV for external plotting; withHeader
// controls the header row so multiple devices can share one file.
func WriteFig8CSV(w io.Writer, r Fig8Result, withHeader bool) error {
	if withHeader {
		if _, err := fmt.Fprintln(w, "device,benchmark,qubits,gates,sabre_wd,codar_wd,speedup,sabre_swaps,codar_swaps,sabre_depth,codar_depth"); err != nil {
			return err
		}
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%.6f,%d,%d,%d,%d\n",
			r.Device.Name, row.Benchmark, row.Qubits, row.Gates,
			row.SabreWD, row.CodarWD, row.Speedup,
			row.SabreSwaps, row.CodarSwaps, row.SabreDepth, row.CodarDepth); err != nil {
			return err
		}
	}
	return nil
}

// RunFig8 runs the full Fig 8 experiment over the paper's four
// architectures.
func RunFig8(opts core.Options) ([]Fig8Result, error) {
	return RunFig8Workers(opts, 0)
}

// RunFig8Workers runs the full Fig 8 experiment with an explicit per-device
// worker budget (see RunFig8DeviceWorkers). Devices run sequentially — the
// benchmark fan-out inside each already saturates the pool.
func RunFig8Workers(opts core.Options, workers int) ([]Fig8Result, error) {
	var out []Fig8Result
	for _, dev := range arch.EvaluationDevices() {
		r, err := RunFig8DeviceWorkers(dev, opts, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteFig8 renders one architecture's sweep as a table plus summary.
func WriteFig8(w io.Writer, r Fig8Result) error {
	t := metrics.NewTable("benchmark", "qubits", "gates", "sabreWD", "codarWD", "speedup", "sabreSwaps", "codarSwaps")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Qubits, row.Gates, row.SabreWD, row.CodarWD, row.Speedup, row.SabreSwaps, row.CodarSwaps)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	sp := r.Speedups()
	_, err := fmt.Fprintf(w, "\n%s: benchmarks=%d  avg speedup=%.3f  geomean=%.3f  median=%.3f  min=%.3f  max=%.3f  codar wins=%d/%d\n\n",
		r.Device.Name, len(sp), metrics.Mean(sp), metrics.GeoMean(sp), metrics.Median(sp), metrics.Min(sp), metrics.Max(sp),
		metrics.CountAtLeast(sp, 1), len(sp))
	return err
}

// FidelityDevice returns the device used for the Fig 9 experiment: a 3×3
// grid keeps the trajectory statevector (2^9 amplitudes) cheap while still
// forcing non-trivial routing for the seven algorithms.
func FidelityDevice() *arch.Device { return arch.Grid("fidelity-3x3", 3, 3) }

// Fig 9 noise regimes: dephasing-dominant (left panel) and damping-
// dominant (right panel), time constants in clock cycles. The constants
// are chosen so that the longest of the seven schedules (~200 cycles) sees
// appreciable decoherence, making mapper differences visible, while the
// short ones stay near fidelity 1 — the spread Fig 9 shows.
const (
	DephasingT2 = 400.0
	DampingT1   = 400.0
)

// FidelityRow is one algorithm × regime measurement of Fig 9.
type FidelityRow struct {
	Benchmark string
	Regime    string // "dephasing" or "damping"
	// Weighted depths of the two mapped circuits.
	CodarWD int
	SabreWD int
	// Monte-Carlo fidelity estimates of the two mapped circuits.
	CodarFidelity float64
	SabreFidelity float64
}

// RunFig9 runs the fidelity-maintenance experiment: each of the seven
// famous algorithms is mapped by both mappers onto the fidelity device and
// simulated under both noise regimes with the given number of trajectories.
func RunFig9(trajectories int, opts core.Options) ([]FidelityRow, error) {
	dev := FidelityDevice()
	regimes := []struct {
		name  string
		model sim.NoiseModel
	}{
		{"dephasing", sim.DephasingDominant(DephasingT2)},
		{"damping", sim.DampingDominant(DampingT1)},
	}
	var rows []FidelityRow
	for _, b := range workloads.FamousSeven() {
		c := b.Circuit()
		initial, err := sabre.InitialLayout(c, dev, Seed, sabre.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		sres, err := sabre.Remap(c, dev, initial, sabre.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		cres, err := core.Remap(c, dev, initial, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		sSched := schedule.ASAP(sres.Circuit, dev.Durations)
		cSched := schedule.ASAP(cres.Circuit, dev.Durations)
		for _, reg := range regimes {
			cf, err := reg.model.FidelityEstimate(cSched, trajectories, Seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", b.Name, reg.name, err)
			}
			sf, err := reg.model.FidelityEstimate(sSched, trajectories, Seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", b.Name, reg.name, err)
			}
			rows = append(rows, FidelityRow{
				Benchmark:     b.Name,
				Regime:        reg.name,
				CodarWD:       cSched.Makespan,
				SabreWD:       sSched.Makespan,
				CodarFidelity: cf,
				SabreFidelity: sf,
			})
		}
	}
	return rows, nil
}

// GateErrorRow is one algorithm measurement of the §V-B trade-off study
// (an extension beyond Fig 9): CODAR inserts more SWAPs than SABRE, which
// adds gate noise, while its shorter schedule removes decoherence
// exposure. This study runs both effects together.
type GateErrorRow struct {
	Benchmark  string
	CodarSwaps int
	SabreSwaps int
	CodarWD    int
	SabreWD    int
	// Fidelities under combined decoherence + depolarising gate error.
	CodarFidelity float64
	SabreFidelity float64
}

// Gate-error study parameters: Table I superconducting fidelities
// (1q ≈ 99.7%, 2q ≈ 96.5%) scaled down to keep seven-algorithm circuits
// in a measurable fidelity band.
const (
	Gate1QError = 0.0005
	Gate2QError = 0.005
)

// RunGateErrorStudy measures both mappers under decoherence plus
// depolarising gate errors.
func RunGateErrorStudy(trajectories int, opts core.Options) ([]GateErrorRow, error) {
	dev := FidelityDevice()
	model := sim.NoiseModel{
		T1: DampingT1 * 4, T2: DephasingT2 * 4,
		Gate1QError: Gate1QError, Gate2QError: Gate2QError,
	}
	var rows []GateErrorRow
	for _, b := range workloads.FamousSeven() {
		c := b.Circuit()
		initial, err := sabre.InitialLayout(c, dev, Seed, sabre.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		sres, err := sabre.Remap(c, dev, initial, sabre.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		cres, err := core.Remap(c, dev, initial, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		sSched := schedule.ASAP(sres.Circuit, dev.Durations)
		cSched := schedule.ASAP(cres.Circuit, dev.Durations)
		cf, err := model.FidelityEstimate(cSched, trajectories, Seed)
		if err != nil {
			return nil, err
		}
		sf, err := model.FidelityEstimate(sSched, trajectories, Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GateErrorRow{
			Benchmark:  b.Name,
			CodarSwaps: cres.SwapCount, SabreSwaps: sres.SwapCount,
			CodarWD: cSched.Makespan, SabreWD: sSched.Makespan,
			CodarFidelity: cf, SabreFidelity: sf,
		})
	}
	return rows, nil
}

// WriteGateErrorStudy renders the trade-off table.
func WriteGateErrorStudy(w io.Writer, rows []GateErrorRow) error {
	t := metrics.NewTable("algorithm", "sabreSwaps", "codarSwaps", "sabreWD", "codarWD", "sabreF", "codarF")
	var cTot, sTot float64
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.SabreSwaps, r.CodarSwaps, r.SabreWD, r.CodarWD, r.SabreFidelity, r.CodarFidelity)
		cTot += r.CodarFidelity
		sTot += r.SabreFidelity
	}
	if err := t.Render(w); err != nil {
		return err
	}
	n := float64(len(rows))
	_, err := fmt.Fprintf(w, "\nmean fidelity with gate errors: codar=%.4f sabre=%.4f\n", cTot/n, sTot/n)
	return err
}

// WriteFig9 renders the fidelity comparison with per-regime means (the
// paper's claim: better than SABRE under dephasing, about the same under
// damping).
func WriteFig9(w io.Writer, rows []FidelityRow) error {
	t := metrics.NewTable("algorithm", "regime", "sabreWD", "codarWD", "sabreF", "codarF", "delta")
	sums := map[string][2]float64{} // regime -> (codar, sabre)
	counts := map[string]int{}
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Regime, r.SabreWD, r.CodarWD, r.SabreFidelity, r.CodarFidelity, r.CodarFidelity-r.SabreFidelity)
		s := sums[r.Regime]
		s[0] += r.CodarFidelity
		s[1] += r.SabreFidelity
		sums[r.Regime] = s
		counts[r.Regime]++
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	for _, regime := range []string{"dephasing", "damping"} {
		if n := counts[regime]; n > 0 {
			fmt.Fprintf(w, "mean fidelity under %-9s codar=%.4f sabre=%.4f\n",
				regime+":", sums[regime][0]/float64(n), sums[regime][1]/float64(n))
		}
	}
	return nil
}
