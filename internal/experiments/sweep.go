package experiments

import (
	"fmt"
	"io"

	"codar/internal/arch"
	"codar/internal/core"
	"codar/internal/metrics"
	"codar/internal/sabre"
	"codar/internal/schedule"
	"codar/internal/workloads"
)

// DurationPoint is one point of the duration-heterogeneity sweep: the
// average CODAR-vs-SABRE speedup when the two-qubit gate takes Ratio times
// a single-qubit gate (SWAP = 3 two-qubit gates). Ratio 1 is the
// duration-blind regime every prior mapper assumes; ratio 2 is the paper's
// superconducting configuration; ratio 12 approximates the ion-trap column
// of Table I.
type DurationPoint struct {
	Ratio      int
	AvgSpeedup float64
	GeoMean    float64
}

// sweepBenchmarks is the representative subset the sweep maps at every
// ratio (the full suite would dominate runtime without changing the trend).
var sweepBenchmarks = []string{
	"qft_10", "qft_16", "rand_10_g300", "rand_16_g1000",
	"qv_12_d12", "revnet_12_s1", "ising_12_6", "adder_6",
	"grover_5", "wstate_12", "dj_balanced_12", "qaoa_12_p2",
}

// RunDurationSweep measures how CODAR's advantage scales with gate-duration
// heterogeneity on the given device — the "various NISQ devices" claim made
// quantitative. It is an extension beyond the paper's figures, built from
// the same machinery.
func RunDurationSweep(dev *arch.Device, ratios []int, opts core.Options) ([]DurationPoint, error) {
	if len(ratios) == 0 {
		ratios = []int{1, 2, 4, 8, 12}
	}
	base := dev.Durations
	defer func() { dev.Durations = base }()

	var out []DurationPoint
	for _, r := range ratios {
		if r <= 0 {
			return nil, fmt.Errorf("experiments: non-positive duration ratio %d", r)
		}
		dev.Durations = arch.Durations{Single: 1, Two: r, Swap: 3 * r, Measure: 5}
		var sp []float64
		for _, name := range sweepBenchmarks {
			b, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			c := b.Circuit()
			initial, err := sabre.InitialLayout(c, dev, Seed, sabre.Options{})
			if err != nil {
				return nil, err
			}
			sres, err := sabre.Remap(c, dev, initial, sabre.Options{})
			if err != nil {
				return nil, err
			}
			cres, err := core.Remap(c, dev, initial, opts)
			if err != nil {
				return nil, err
			}
			sWD := schedule.WeightedDepth(sres.Circuit, dev.Durations)
			cWD := schedule.WeightedDepth(cres.Circuit, dev.Durations)
			sp = append(sp, float64(sWD)/float64(cWD))
		}
		out = append(out, DurationPoint{
			Ratio:      r,
			AvgSpeedup: metrics.Mean(sp),
			GeoMean:    metrics.GeoMean(sp),
		})
	}
	return out, nil
}

// WriteDurationSweep renders the sweep.
func WriteDurationSweep(w io.Writer, dev *arch.Device, points []DurationPoint) error {
	fmt.Fprintf(w, "duration-heterogeneity sweep on %s (%d benchmarks per point)\n", dev.Name, len(sweepBenchmarks))
	t := metrics.NewTable("2q/1q ratio", "avg speedup", "geomean")
	for _, p := range points {
		t.AddRow(p.Ratio, p.AvgSpeedup, p.GeoMean)
	}
	return t.Render(w)
}
