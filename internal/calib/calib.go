// Package calib models device calibration snapshots: the per-edge two-qubit
// error rates, per-qubit single-qubit/readout error rates and T1/T2 time
// constants that real NISQ backends publish daily. The paper's maQAM models
// hardware heterogeneity through gate durations only; calibration data is the
// second axis (Niu et al.'s hardware-aware heuristic, TRAM's T2-aware
// mapping), and this package folds it into the routing objective:
//
//   - Snapshot is the JSON-serialisable calibration model, loadable from a
//     backend dump or generated synthetically (Synthetic) with a
//     deterministic per-device seed.
//   - CostModel blends the error rates into an arch.CostModel: each coupler
//     costs 1 + λ·(−log(1−err2)) hops, so both mappers' distance-driven
//     heuristics route SWAP traffic around unreliable edges while still
//     minimising the duration-weighted objective (DESIGN.md §8). With no
//     snapshot attached the mappers are untouched and their output stays
//     bit-identical.
//   - Success estimates the success probability of a mapped, scheduled
//     circuit: the product of per-gate fidelities times the per-qubit
//     decoherence survival over the schedule makespan — the metric the
//     calibration study (internal/experiments, examples/calibrated) compares
//     across routing modes.
package calib

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
)

// QubitCalib is the calibration record of one physical qubit. Times are in
// quantum clock cycles (the schedule's unit); error rates are probabilities.
type QubitCalib struct {
	// Error1Q is the single-qubit gate error probability.
	Error1Q float64 `json:"error_1q"`
	// ReadoutError is the measurement misassignment probability.
	ReadoutError float64 `json:"readout_error"`
	// T1 is the amplitude-damping time constant; 0 disables the term.
	T1 float64 `json:"t1"`
	// T2 is the dephasing time constant; 0 disables the term.
	T2 float64 `json:"t2"`
}

// EdgeCalib is the calibration record of one coupler.
type EdgeCalib struct {
	// A, B are the physical endpoints (stored with A < B).
	A int `json:"a"`
	B int `json:"b"`
	// Error2Q is the two-qubit gate error probability on this coupler.
	Error2Q float64 `json:"error_2q"`
}

// Snapshot is one calibration snapshot of a device: per-qubit records indexed
// by physical qubit and one record per coupler. Snapshots are plain data —
// validation against a concrete device happens in Validate, and all derived
// structures (cost models, noise models) are built on demand.
type Snapshot struct {
	// Device names the device the snapshot describes (informational; Validate
	// checks it against the target device when non-empty).
	Device string `json:"device"`
	// Taken is an optional free-form timestamp of the calibration run.
	Taken string `json:"taken,omitempty"`
	// Qubits holds one record per physical qubit, indexed by qubit number.
	Qubits []QubitCalib `json:"qubits"`
	// Edges holds one record per coupler.
	Edges []EdgeCalib `json:"edges"`
}

// maxError caps error probabilities so −log(1−err) stays finite.
const maxError = 0.999

// Parse decodes a snapshot from JSON and normalises it (edge endpoints
// ordered, edges sorted) so that semantically equal snapshots hash equally.
func Parse(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	s.normalize()
	return &s, nil
}

// Load reads and parses a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	return Parse(data)
}

// Encode renders the snapshot as indented JSON (normalised first, so
// Encode∘Parse is a fixed point).
func (s *Snapshot) Encode() ([]byte, error) {
	s.normalize()
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes the snapshot as JSON to path.
func (s *Snapshot) Save(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// normalize orders edge endpoints and sorts the edge list, making the
// serialised form — and therefore Hash — canonical.
func (s *Snapshot) normalize() {
	for i := range s.Edges {
		if s.Edges[i].A > s.Edges[i].B {
			s.Edges[i].A, s.Edges[i].B = s.Edges[i].B, s.Edges[i].A
		}
	}
	sort.Slice(s.Edges, func(i, j int) bool {
		if s.Edges[i].A != s.Edges[j].A {
			return s.Edges[i].A < s.Edges[j].A
		}
		return s.Edges[i].B < s.Edges[j].B
	})
}

// Hash returns the hex SHA-256 of the canonical serialisation. Two snapshots
// hash equally iff they carry the same calibration data, which is what the
// service folds into its result-cache key (DESIGN.md §8).
func (s *Snapshot) Hash() string {
	s.normalize()
	data, err := json.Marshal(s)
	if err != nil {
		// Snapshot contains only plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("calib: hash: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Validate checks the snapshot against a concrete device: one qubit record
// per physical qubit, exactly one edge record per coupler (no extras, no
// gaps), probabilities in [0, maxError], non-negative time constants, and a
// matching device name when one is recorded.
func (s *Snapshot) Validate(dev *arch.Device) error {
	if s.Device != "" && !strings.EqualFold(s.Device, dev.Name) {
		return fmt.Errorf("calib: snapshot is for device %q, not %q", s.Device, dev.Name)
	}
	if len(s.Qubits) != dev.NumQubits {
		return fmt.Errorf("calib: %d qubit records for %d qubits on %s", len(s.Qubits), dev.NumQubits, dev.Name)
	}
	for q, qc := range s.Qubits {
		if err := checkProb("error_1q", qc.Error1Q); err != nil {
			return fmt.Errorf("calib: qubit %d: %w", q, err)
		}
		if err := checkProb("readout_error", qc.ReadoutError); err != nil {
			return fmt.Errorf("calib: qubit %d: %w", q, err)
		}
		if qc.T1 < 0 || math.IsNaN(qc.T1) || qc.T2 < 0 || math.IsNaN(qc.T2) {
			return fmt.Errorf("calib: qubit %d: negative or NaN time constant (t1=%v, t2=%v)", q, qc.T1, qc.T2)
		}
	}
	if len(s.Edges) != len(dev.Edges) {
		return fmt.Errorf("calib: %d edge records for %d couplers on %s", len(s.Edges), len(dev.Edges), dev.Name)
	}
	seen := make([]bool, len(dev.Edges))
	for _, ec := range s.Edges {
		id, ok := dev.EdgeIndex(ec.A, ec.B)
		if !ok {
			return fmt.Errorf("calib: edge (%d,%d) is not a coupler of %s", ec.A, ec.B, dev.Name)
		}
		if seen[id] {
			return fmt.Errorf("calib: duplicate record for coupler (%d,%d)", ec.A, ec.B)
		}
		seen[id] = true
		if err := checkProb("error_2q", ec.Error2Q); err != nil {
			return fmt.Errorf("calib: edge (%d,%d): %w", ec.A, ec.B, err)
		}
	}
	return nil
}

func checkProb(name string, p float64) error {
	if math.IsNaN(p) || p < 0 || p > maxError {
		return fmt.Errorf("%s %v outside [0, %v]", name, p, maxError)
	}
	return nil
}

// edgeErrors returns the two-qubit error rates indexed by device edge id.
// The snapshot must have been validated against dev.
func (s *Snapshot) edgeErrors(dev *arch.Device) ([]float64, error) {
	errs := make([]float64, len(dev.Edges))
	for _, ec := range s.Edges {
		id, ok := dev.EdgeIndex(ec.A, ec.B)
		if !ok {
			return nil, fmt.Errorf("calib: edge (%d,%d) is not a coupler of %s", ec.A, ec.B, dev.Name)
		}
		errs[id] = ec.Error2Q
	}
	return errs, nil
}

// DefaultLambda is the default gain λ of the error term in the blended edge
// weight 1 + λ·(−log(1−err2)). Synthetic two-qubit errors span roughly
// 0.005–0.08 (−log(1−err) ≈ 0.005–0.083), so λ = 8 prices the worst couplers
// near ~1.7 hops — expensive enough to steer placement and routing away from
// them, cheap enough that the hop term still dominates and schedules stay
// short (larger λ trades too much decoherence exposure for gate fidelity;
// the λ sweep behind this default is recorded in EXPERIMENTS.md).
const DefaultLambda = 8.0

// CostModel blends the snapshot's two-qubit error rates into a
// fidelity-weighted routing metric for dev: edge weight λ·(−log(1−err2)) on
// top of the unit hop cost. lambda 0 selects DefaultLambda; negative lambda
// zeroes the error term (the metric degenerates to scaled hop distance,
// which the equivalence properties pin against uncalibrated routing).
func (s *Snapshot) CostModel(dev *arch.Device, lambda float64) (*arch.CostModel, error) {
	if err := s.Validate(dev); err != nil {
		return nil, err
	}
	if lambda == 0 {
		lambda = DefaultLambda
	}
	errs, err := s.edgeErrors(dev)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(errs))
	if lambda > 0 {
		for i, e := range errs {
			if e > maxError {
				e = maxError
			}
			weights[i] = lambda * -math.Log(1-e)
		}
	}
	return arch.NewCostModel(dev, weights)
}

// SuccessBreakdown separates the Success estimate into its two factors.
type SuccessBreakdown struct {
	// Gates is the product of per-gate success probabilities.
	Gates float64
	// Decoherence is the product of per-qubit survival factors
	// exp(−life/T1)·exp(−life/T2) over each active qubit's lifetime (first
	// gate start to schedule makespan).
	Decoherence float64
	// Total = Gates · Decoherence.
	Total float64
}

// Success estimates the success probability of a scheduled physical circuit
// under this calibration: Π over gates of (1−err) — SWAPs count as three
// two-qubit gates, measurements use the readout error — times the per-qubit
// decoherence survival over the schedule. Shorter makespans and routes over
// reliable couplers both raise the estimate, which is exactly the trade the
// fidelity-weighted cost model navigates.
func (s *Snapshot) Success(sched *schedule.Schedule, dev *arch.Device) (float64, error) {
	b, err := s.SuccessBreakdown(sched, dev)
	if err != nil {
		return 0, err
	}
	return b.Total, nil
}

// SuccessBreakdown is Success with the gate and decoherence factors reported
// separately (the calibration study tables both).
func (s *Snapshot) SuccessBreakdown(sched *schedule.Schedule, dev *arch.Device) (SuccessBreakdown, error) {
	if err := s.Validate(dev); err != nil {
		return SuccessBreakdown{}, err
	}
	errs, err := s.edgeErrors(dev)
	if err != nil {
		return SuccessBreakdown{}, err
	}
	gates := 1.0
	firstStart := make([]int, dev.NumQubits)
	active := make([]bool, dev.NumQubits)
	for _, sg := range sched.Gates {
		g := sg.Gate
		for _, q := range g.Qubits {
			if q < 0 || q >= dev.NumQubits {
				return SuccessBreakdown{}, fmt.Errorf("calib: gate %s qubit %d outside device %s", g.Op, q, dev.Name)
			}
			if !active[q] || sg.Start < firstStart[q] {
				firstStart[q] = sg.Start
			}
			active[q] = true
		}
		switch {
		case g.Op == circuit.OpSwap:
			id, ok := dev.EdgeIndex(g.Qubits[0], g.Qubits[1])
			if !ok {
				return SuccessBreakdown{}, fmt.Errorf("calib: SWAP on uncoupled pair (%d,%d)", g.Qubits[0], g.Qubits[1])
			}
			f := 1 - errs[id]
			gates *= f * f * f // a SWAP lowers to three CXs
		case g.Op.TwoQubit():
			id, ok := dev.EdgeIndex(g.Qubits[0], g.Qubits[1])
			if !ok {
				return SuccessBreakdown{}, fmt.Errorf("calib: %s on uncoupled pair (%d,%d)", g.Op, g.Qubits[0], g.Qubits[1])
			}
			gates *= 1 - errs[id]
		case g.Op.SingleQubit():
			gates *= 1 - s.Qubits[g.Qubits[0]].Error1Q
		case g.Op == circuit.OpMeasure:
			gates *= 1 - s.Qubits[g.Qubits[0]].ReadoutError
		}
	}
	deco := 1.0
	for q := 0; q < dev.NumQubits; q++ {
		if !active[q] {
			continue
		}
		life := float64(sched.Makespan - firstStart[q])
		if life <= 0 {
			continue
		}
		qc := s.Qubits[q]
		if qc.T1 > 0 && !math.IsInf(qc.T1, 1) {
			deco *= math.Exp(-life / qc.T1)
		}
		if qc.T2 > 0 && !math.IsInf(qc.T2, 1) {
			deco *= math.Exp(-life / qc.T2)
		}
	}
	return SuccessBreakdown{Gates: gates, Decoherence: deco, Total: gates * deco}, nil
}
