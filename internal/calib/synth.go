package calib

import (
	"hash/fnv"
	"math"
	"math/rand"

	"codar/internal/arch"
	"codar/internal/sim"
)

// Synthetic parameter ranges, loosely matched to published superconducting
// backend calibrations (errors log-uniform — real calibration histograms are
// heavy-tailed — and time constants uniform, in clock cycles).
const (
	synthErr2Lo    = 0.005
	synthErr2Hi    = 0.08
	synthErr1Lo    = 0.0002
	synthErr1Hi    = 0.004
	synthReadoutLo = 0.01
	synthReadoutHi = 0.08
	synthT1Lo      = 3000.0
	synthT1Hi      = 12000.0
)

// Synthetic generates a deterministic synthetic calibration snapshot for a
// device. The generator is seeded by (seed, device name), so the same device
// always gets the same noise landscape while different devices diverge —
// "synthetic noise seeded per device". The result always passes
// Validate(dev).
func Synthetic(dev *arch.Device, seed int64) *Snapshot {
	h := fnv.New64a()
	h.Write([]byte(dev.Name))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	s := &Snapshot{Device: dev.Name}
	for q := 0; q < dev.NumQubits; q++ {
		t1 := synthT1Lo + rng.Float64()*(synthT1Hi-synthT1Lo)
		s.Qubits = append(s.Qubits, QubitCalib{
			Error1Q:      logUniform(rng, synthErr1Lo, synthErr1Hi),
			ReadoutError: logUniform(rng, synthReadoutLo, synthReadoutHi),
			T1:           t1,
			// T2 ≤ 2·T1 physically; sample well inside the bound.
			T2: t1 * (0.3 + 0.7*rng.Float64()),
		})
	}
	for _, e := range dev.Edges {
		s.Edges = append(s.Edges, EdgeCalib{
			A: e[0], B: e[1], Error2Q: logUniform(rng, synthErr2Lo, synthErr2Hi),
		})
	}
	s.normalize()
	return s
}

// logUniform samples log-uniformly from [lo, hi].
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// NoiseModel lifts the snapshot into a trajectory-simulation noise model
// (internal/sim) with per-qubit T1/T2 constants and the snapshot's mean gate
// errors as depolarising probabilities — the bridge that lets the Fig 9
// machinery replay the calibration study as a full noisy simulation
// (experiments.RunCalibrationFidelity) instead of an analytic estimate.
func (s *Snapshot) NoiseModel() sim.NoiseModel {
	m := sim.NoiseModel{
		T1Q: make([]float64, len(s.Qubits)),
		T2Q: make([]float64, len(s.Qubits)),
	}
	var e1 float64
	for q, qc := range s.Qubits {
		m.T1Q[q] = qc.T1
		m.T2Q[q] = qc.T2
		e1 += qc.Error1Q
	}
	if len(s.Qubits) > 0 {
		m.Gate1QError = e1 / float64(len(s.Qubits))
	}
	var e2 float64
	for _, ec := range s.Edges {
		e2 += ec.Error2Q
	}
	if len(s.Edges) > 0 {
		m.Gate2QError = e2 / float64(len(s.Edges))
	}
	return m
}
