package calib

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
)

func TestSyntheticValidatesAndIsDeterministic(t *testing.T) {
	for _, dev := range []*arch.Device{arch.IBMQ20Tokyo(), arch.Grid("g33", 3, 3), arch.Ring(5)} {
		a := Synthetic(dev, 1)
		if err := a.Validate(dev); err != nil {
			t.Fatalf("%s: synthetic snapshot invalid: %v", dev.Name, err)
		}
		b := Synthetic(dev, 1)
		if a.Hash() != b.Hash() {
			t.Errorf("%s: synthetic snapshot not deterministic", dev.Name)
		}
		if c := Synthetic(dev, 2); c.Hash() == a.Hash() {
			t.Errorf("%s: different seeds produced identical snapshots", dev.Name)
		}
	}
	// Seeded per device: same seed, different devices, different data.
	if Synthetic(arch.Ring(5), 1).Edges[0].Error2Q == Synthetic(arch.Linear(6), 1).Edges[0].Error2Q {
		t.Error("per-device seeding produced identical edge errors across devices")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	snap := Synthetic(dev, 7)
	path := filepath.Join(t.TempDir(), "tokyo.json")
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, loaded) {
		t.Error("round-tripped snapshot differs")
	}
	if snap.Hash() != loaded.Hash() {
		t.Error("round-tripped hash differs")
	}
	if err := loaded.Validate(dev); err != nil {
		t.Errorf("round-tripped snapshot invalid: %v", err)
	}
}

func TestHashIsCanonical(t *testing.T) {
	dev := arch.Linear(3)
	a := &Snapshot{
		Device: "lin3",
		Qubits: make([]QubitCalib, 3),
		Edges:  []EdgeCalib{{A: 0, B: 1, Error2Q: 0.01}, {A: 1, B: 2, Error2Q: 0.02}},
	}
	// Same data, reversed endpoint order and shuffled edge list.
	b := &Snapshot{
		Device: "lin3",
		Qubits: make([]QubitCalib, 3),
		Edges:  []EdgeCalib{{A: 2, B: 1, Error2Q: 0.02}, {A: 1, B: 0, Error2Q: 0.01}},
	}
	if a.Hash() != b.Hash() {
		t.Error("hash not canonical under edge ordering")
	}
	c := &Snapshot{
		Device: "lin3",
		Qubits: make([]QubitCalib, 3),
		Edges:  []EdgeCalib{{A: 0, B: 1, Error2Q: 0.011}, {A: 1, B: 2, Error2Q: 0.02}},
	}
	if a.Hash() == c.Hash() {
		t.Error("hash ignores error-rate change")
	}
	_ = dev
}

func TestValidateRejections(t *testing.T) {
	dev := arch.Linear(3)
	ok := Synthetic(dev, 1)
	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"wrong device name", func(s *Snapshot) { s.Device = "other" }},
		{"missing qubit", func(s *Snapshot) { s.Qubits = s.Qubits[:2] }},
		{"missing edge", func(s *Snapshot) { s.Edges = s.Edges[:1] }},
		{"non-coupler edge", func(s *Snapshot) { s.Edges[0] = EdgeCalib{A: 0, B: 2, Error2Q: 0.01} }},
		{"duplicate edge", func(s *Snapshot) { s.Edges[1] = s.Edges[0] }},
		{"error out of range", func(s *Snapshot) { s.Edges[0].Error2Q = 1.5 }},
		{"negative 1q error", func(s *Snapshot) { s.Qubits[0].Error1Q = -0.1 }},
		{"NaN T1", func(s *Snapshot) { s.Qubits[0].T1 = math.NaN() }},
	}
	for _, tc := range cases {
		data, err := ok.Encode()
		if err != nil {
			t.Fatal(err)
		}
		s, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		tc.mutate(s)
		if err := s.Validate(dev); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestCostModelWeighting: the blended metric must price the snapshot's worst
// coupler above its best one, and the zero-lambda metric must degenerate to
// scaled hop distance.
func TestCostModelWeighting(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	snap := Synthetic(dev, 1)
	cm, err := snap.CostModel(dev, 0) // DefaultLambda
	if err != nil {
		t.Fatal(err)
	}
	worst, best := 0, 0
	for i, e := range snap.Edges {
		if e.Error2Q > snap.Edges[worst].Error2Q {
			worst = i
		}
		if e.Error2Q < snap.Edges[best].Error2Q {
			best = i
		}
	}
	wid, _ := dev.EdgeIndex(snap.Edges[worst].A, snap.Edges[worst].B)
	bid, _ := dev.EdgeIndex(snap.Edges[best].A, snap.Edges[best].B)
	if cm.EdgeCost(wid) <= cm.EdgeCost(bid) {
		t.Errorf("worst coupler costs %d, best %d — weighting inverted", cm.EdgeCost(wid), cm.EdgeCost(bid))
	}
	flat, err := snap.CostModel(dev, -1) // error term disabled
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < dev.NumQubits; a++ {
		for b := 0; b < dev.NumQubits; b++ {
			if flat.Distance(a, b) != arch.CostScale*dev.Distance(a, b) {
				t.Fatalf("lambda<0 metric is not scaled hop distance at (%d,%d)", a, b)
			}
		}
	}
}

// TestSuccessEstimate checks the ESP factors on a hand-computable schedule.
func TestSuccessEstimate(t *testing.T) {
	dev := arch.Linear(2)
	snap := &Snapshot{
		Qubits: []QubitCalib{
			{Error1Q: 0.01, ReadoutError: 0.1, T1: 1000, T2: 2000},
			{Error1Q: 0.02, ReadoutError: 0.2}, // T1/T2 zero: decoherence off
		},
		Edges: []EdgeCalib{{A: 0, B: 1, Error2Q: 0.05}},
	}
	c := circuit.New(2).H(0).CX(0, 1)
	sched := schedule.ASAP(c, arch.UniformDurations())
	b, err := snap.SuccessBreakdown(sched, dev)
	if err != nil {
		t.Fatal(err)
	}
	wantGates := (1 - 0.01) * (1 - 0.05)
	if math.Abs(b.Gates-wantGates) > 1e-12 {
		t.Errorf("gate factor %v, want %v", b.Gates, wantGates)
	}
	// Qubit 0 is active from t=0 to the makespan; qubit 1 has no T1/T2.
	life := float64(sched.Makespan)
	wantDeco := math.Exp(-life/1000) * math.Exp(-life/2000)
	if math.Abs(b.Decoherence-wantDeco) > 1e-12 {
		t.Errorf("decoherence factor %v, want %v", b.Decoherence, wantDeco)
	}
	if math.Abs(b.Total-wantGates*wantDeco) > 1e-12 {
		t.Errorf("total %v, want %v", b.Total, wantGates*wantDeco)
	}
	// A SWAP counts as three two-qubit gates.
	cs := circuit.New(2)
	cs.Swap(0, 1)
	sb, err := snap.SuccessBreakdown(schedule.ASAP(cs, arch.UniformDurations()), dev)
	if err != nil {
		t.Fatal(err)
	}
	f := 1 - 0.05
	if math.Abs(sb.Gates-f*f*f) > 1e-12 {
		t.Errorf("SWAP gate factor %v, want %v", sb.Gates, f*f*f)
	}
}

// TestNoiseModelBridge: the sim bridge carries per-qubit constants and mean
// gate errors.
func TestNoiseModelBridge(t *testing.T) {
	dev := arch.Linear(3)
	snap := Synthetic(dev, 3)
	m := snap.NoiseModel()
	if len(m.T1Q) != 3 || len(m.T2Q) != 3 {
		t.Fatalf("per-qubit constants missing: %d/%d", len(m.T1Q), len(m.T2Q))
	}
	for q := range m.T1Q {
		if m.T1Q[q] != snap.Qubits[q].T1 || m.T2Q[q] != snap.Qubits[q].T2 {
			t.Errorf("qubit %d constants diverge", q)
		}
	}
	if m.Gate2QError <= 0 || m.Gate1QError <= 0 {
		t.Error("mean gate errors not populated")
	}
}
