package optimize

import (
	"math"
	"math/cmplx"

	"codar/internal/circuit"
	"codar/internal/sim"
)

// FuseResult summarises a single-qubit fusion run.
type FuseResult struct {
	// Fused is the number of gates absorbed into u3 replacements.
	Fused int
	// Dropped is the number of runs that composed to the identity and
	// were removed entirely.
	Dropped int
}

// Fuse merges every maximal run of consecutive single-qubit unitaries on a
// qubit into one u3 gate (or nothing, when the run composes to the
// identity up to global phase). A run is broken by any multi-qubit gate,
// measurement, reset or barrier touching the qubit. Runs of length one are
// left untouched. Deferring a fused gate to the position of the run's last
// element only commutes it past gates on other qubits, so semantics are
// preserved (statevector-validated in the tests).
func Fuse(c *circuit.Circuit) (*circuit.Circuit, FuseResult) {
	out := &circuit.Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	var res FuseResult

	// Per-qubit run buffer: the composed matrix plus the original gates
	// (a length-1 run re-emits its original gate unchanged).
	type buf struct {
		u     [2][2]complex128
		gates []circuit.Gate
	}
	bufs := make([]*buf, c.NumQubits)

	emit := func(q int) {
		b := bufs[q]
		if b == nil {
			return
		}
		bufs[q] = nil
		if len(b.gates) == 1 {
			out.Add(b.gates[0].Clone())
			return
		}
		res.Fused += len(b.gates)
		if isIdentityUpToPhase(b.u) {
			res.Dropped++
			return
		}
		theta, phi, lam := zyzAngles(b.u)
		out.U3(theta, phi, lam, q)
	}

	for _, g := range c.Gates {
		if g.Op.SingleQubit() {
			u, err := sim.Unitary1Q(g.Op, g.Params)
			if err != nil {
				// Unknown unitary: flush and pass through defensively.
				emit(g.Qubits[0])
				out.Add(g.Clone())
				continue
			}
			q := g.Qubits[0]
			if bufs[q] == nil {
				bufs[q] = &buf{u: [2][2]complex128{{1, 0}, {0, 1}}}
			}
			bufs[q].u = matMul(u, bufs[q].u) // later gate multiplies on the left
			bufs[q].gates = append(bufs[q].gates, g)
			continue
		}
		// Any other gate flushes the runs on its qubits, then passes
		// through.
		for _, q := range g.Qubits {
			emit(q)
		}
		out.Add(g.Clone())
	}
	for q := 0; q < c.NumQubits; q++ {
		emit(q)
	}
	return out, res
}

// matMul returns a·b for 2x2 complex matrices.
func matMul(a, b [2][2]complex128) [2][2]complex128 {
	var r [2][2]complex128
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return r
}

// isIdentityUpToPhase reports whether u is a scalar multiple of I.
func isIdentityUpToPhase(u [2][2]complex128) bool {
	const eps = 1e-10
	if cmplx.Abs(u[0][1]) > eps || cmplx.Abs(u[1][0]) > eps {
		return false
	}
	return cmplx.Abs(u[0][0]-u[1][1]) < eps
}

// zyzAngles mirrors transpile.ZYZ locally (kept separate to avoid an
// import cycle between the optimisation and transpilation layers).
func zyzAngles(u [2][2]complex128) (theta, phi, lam float64) {
	det := u[0][0]*u[1][1] - u[0][1]*u[1][0]
	scale := cmplx.Sqrt(det)
	if cmplx.Abs(scale) < 1e-15 {
		return 0, 0, 0
	}
	a := u[0][0] / scale
	b := u[1][0] / scale
	theta = 2 * math.Atan2(cmplx.Abs(b), cmplx.Abs(a))
	const eps = 1e-12
	switch {
	case cmplx.Abs(b) < eps:
		phi = 0
		lam = -2 * cmplx.Phase(a)
	case cmplx.Abs(a) < eps:
		lam = 0
		phi = 2 * cmplx.Phase(b)
	default:
		sum := -2 * cmplx.Phase(a)
		diff := 2 * cmplx.Phase(b)
		phi = (sum + diff) / 2
		lam = (sum - diff) / 2
	}
	return theta, phi, lam
}

// PipelineResult aggregates a full optimisation pipeline run.
type PipelineResult struct {
	Cancel Result
	Fuse   FuseResult
}

// Pipeline runs Cancel → Fuse → Cancel, the standard pre-mapping cleanup.
func Pipeline(c *circuit.Circuit) (*circuit.Circuit, PipelineResult) {
	var pr PipelineResult
	out, r1 := Cancel(c)
	out, pr.Fuse = Fuse(out)
	out, r2 := Cancel(out)
	pr.Cancel.Removed = r1.Removed + r2.Removed
	pr.Cancel.Merged = r1.Merged + r2.Merged
	pr.Cancel.Passes = r1.Passes + r2.Passes
	return out, pr
}
