package optimize

import (
	"testing"
	"testing/quick"

	"codar/internal/circuit"
	"codar/internal/sim"
)

func TestFuseMergesRuns(t *testing.T) {
	// h; t; h on one qubit collapses to a single u3.
	c := circuit.New(1).H(0).T(0).H(0)
	out, res := Fuse(c)
	if out.Len() != 1 || out.Gates[0].Op != circuit.OpU3 {
		t.Fatalf("fused to %s", out)
	}
	if res.Fused != 3 {
		t.Errorf("Fused = %d", res.Fused)
	}
	a, _ := sim.Run(c)
	b, _ := sim.Run(out)
	if !a.EqualUpToPhase(b, 1e-9) {
		t.Error("fusion changed semantics")
	}
}

func TestFuseDropsIdentityRuns(t *testing.T) {
	c := circuit.New(1).H(0).H(0)
	out, res := Fuse(c)
	if out.Len() != 0 {
		t.Errorf("identity run survived: %s", out)
	}
	if res.Dropped != 1 {
		t.Errorf("Dropped = %d", res.Dropped)
	}
}

func TestFuseLeavesSingletonsAlone(t *testing.T) {
	c := circuit.New(2).H(0).CX(0, 1).T(1)
	out, res := Fuse(c)
	if !out.Equal(c) {
		t.Errorf("singleton runs rewritten: %s", out)
	}
	if res.Fused != 0 || res.Dropped != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestFuseBreaksAtTwoQubitGates(t *testing.T) {
	// h q0; cx; h q0 — the two H's are separated by the CX on q0: no fusion.
	c := circuit.New(2).H(0).CX(0, 1).H(0)
	out, _ := Fuse(c)
	if out.Len() != 3 {
		t.Errorf("fusion crossed a CX: %s", out)
	}
}

func TestFuseBreaksAtBarrierAndMeasure(t *testing.T) {
	c := circuit.New(1).H(0).Barrier(0).T(0).S(0)
	out, _ := Fuse(c)
	// h | barrier | fused(t,s)
	if out.Len() != 3 {
		t.Errorf("got %s", out)
	}
	c2 := circuit.New(1).T(0).S(0).Measure(0, 0).H(0)
	out2, _ := Fuse(c2)
	if out2.Len() != 3 { // fused(t,s) | measure | h
		t.Errorf("got %s", out2)
	}
}

func TestFuseInterleavedQubits(t *testing.T) {
	// Runs interleave across qubits; each fuses independently.
	c := circuit.New(2).H(0).H(1).T(0).T(1).S(0).S(1)
	out, _ := Fuse(c)
	if out.Len() != 2 {
		t.Fatalf("want two fused u3, got %s", out)
	}
	a, _ := sim.Run(c)
	b, _ := sim.Run(out)
	if !a.EqualUpToPhase(b, 1e-9) {
		t.Error("interleaved fusion changed semantics")
	}
}

func TestFuseSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 4, 50)
		out, _ := Fuse(c)
		a, err := sim.Run(c)
		if err != nil {
			return false
		}
		b, err := sim.Run(out)
		if err != nil {
			return false
		}
		return a.EqualUpToPhase(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFuseNeverIncreasesGateCount(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 3, 40)
		out, _ := Fuse(c)
		return out.Len() <= c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPipeline(t *testing.T) {
	// A redundant prologue followed by a fusible run.
	c := circuit.New(2)
	c.H(0).H(0)         // cancels
	c.T(1).S(1).Tdg(1)  // fuses to u3 (equals S)
	c.CX(0, 1).CX(0, 1) // cancels
	out, res := Pipeline(c)
	a, _ := sim.Run(c)
	b, _ := sim.Run(out)
	if !a.EqualUpToPhase(b, 1e-9) {
		t.Error("pipeline changed semantics")
	}
	if out.Len() >= c.Len() {
		t.Errorf("pipeline did not shrink: %d -> %d", c.Len(), out.Len())
	}
	if res.Cancel.Removed == 0 {
		t.Error("pipeline cancel stats empty")
	}
}

func TestPipelineOnWorkloadShape(t *testing.T) {
	// QFT-ish pattern with deliberate redundancy survives the pipeline
	// semantically.
	c := circuit.New(3)
	c.H(0)
	c.CP(0.5, 0, 1)
	c.H(1)
	c.CP(0.25, 1, 2)
	c.H(2)
	lowered := circuit.Decompose(c)
	out, _ := Pipeline(lowered)
	a, _ := sim.Run(lowered)
	b, _ := sim.Run(out)
	if !a.EqualUpToPhase(b, 1e-9) {
		t.Error("pipeline broke a lowered QFT fragment")
	}
}

func TestIsIdentityUpToPhase(t *testing.T) {
	id := [2][2]complex128{{1, 0}, {0, 1}}
	if !isIdentityUpToPhase(id) {
		t.Error("I not recognised")
	}
	phase := [2][2]complex128{{1i, 0}, {0, 1i}}
	if !isIdentityUpToPhase(phase) {
		t.Error("iI not recognised")
	}
	z := [2][2]complex128{{1, 0}, {0, -1}}
	if isIdentityUpToPhase(z) {
		t.Error("Z misclassified as identity")
	}
	x := [2][2]complex128{{0, 1}, {1, 0}}
	if isIdentityUpToPhase(x) {
		t.Error("X misclassified as identity")
	}
}
