package optimize

import (
	"math"
	"testing"
	"testing/quick"

	"codar/internal/circuit"
	"codar/internal/sim"
)

func TestCancelSelfInversePairs(t *testing.T) {
	cases := []struct {
		name  string
		build func() *circuit.Circuit
		want  int // surviving gates
	}{
		{"hh", func() *circuit.Circuit { return circuit.New(1).H(0).H(0) }, 0},
		{"xx", func() *circuit.Circuit { return circuit.New(1).X(0).X(0) }, 0},
		{"cxcx", func() *circuit.Circuit { return circuit.New(2).CX(0, 1).CX(0, 1) }, 0},
		{"s sdg", func() *circuit.Circuit { return circuit.New(1).S(0).Sdg(0) }, 0},
		{"tdg t", func() *circuit.Circuit { return circuit.New(1).Tdg(0).T(0) }, 0},
		{"swap swap", func() *circuit.Circuit { return circuit.New(2).Swap(0, 1).Swap(0, 1) }, 0},
		{"cx reversed not inverse", func() *circuit.Circuit { return circuit.New(2).CX(0, 1).CX(1, 0) }, 2},
		{"hh different qubits", func() *circuit.Circuit { return circuit.New(2).H(0).H(1) }, 2},
		{"cascade", func() *circuit.Circuit { return circuit.New(1).H(0).X(0).X(0).H(0) }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, _ := Cancel(tc.build())
			if out.Len() != tc.want {
				t.Errorf("survivors = %d, want %d\n%s", out.Len(), tc.want, out)
			}
		})
	}
}

func TestCancelAcrossDisjointGates(t *testing.T) {
	// The H pair on q0 cancels across the CX on q1,q2.
	c := circuit.New(3).H(0).CX(1, 2).H(0)
	out, res := Cancel(c)
	if out.Len() != 1 || out.Gates[0].Op != circuit.OpCX {
		t.Errorf("got %d gates", out.Len())
	}
	if res.Removed != 2 {
		t.Errorf("Removed = %d", res.Removed)
	}
}

func TestCancelAcrossCommutingGates(t *testing.T) {
	// T on q0 commutes with CX control on q0: the T/Tdg pair cancels.
	c := circuit.New(2).T(0).CX(0, 1).Tdg(0)
	out, _ := Cancel(c)
	if out.Len() != 1 || out.Gates[0].Op != circuit.OpCX {
		t.Errorf("commuting-skip cancellation failed: %s", out)
	}
	// H on q0 does NOT commute with CX control: pair must survive.
	c2 := circuit.New(2).H(0).CX(0, 1).H(0)
	out2, _ := Cancel(c2)
	if out2.Len() != 3 {
		t.Errorf("illegal cancellation across non-commuting gate: %s", out2)
	}
}

func TestRotationMerge(t *testing.T) {
	c := circuit.New(1).RZ(0.3, 0).RZ(0.4, 0)
	out, res := Cancel(c)
	if out.Len() != 1 || math.Abs(out.Gates[0].Params[0]-0.7) > 1e-12 {
		t.Errorf("merge failed: %s", out)
	}
	if res.Merged != 1 {
		t.Errorf("Merged = %d", res.Merged)
	}
	// Opposite angles vanish entirely.
	c2 := circuit.New(1).RX(0.9, 0).RX(-0.9, 0)
	out2, _ := Cancel(c2)
	if out2.Len() != 0 {
		t.Errorf("zero-angle rotation survived: %s", out2)
	}
	// u1 merges mod 2π.
	c3 := circuit.New(1).U1(math.Pi, 0).U1(math.Pi, 0)
	out3, _ := Cancel(c3)
	if out3.Len() != 0 {
		t.Errorf("u1(2pi) should vanish: %s", out3)
	}
	// rz(2π) is NOT identity (global phase -1 matters under control);
	// it must survive.
	c4 := circuit.New(1).RZ(math.Pi, 0).RZ(math.Pi, 0)
	out4, _ := Cancel(c4)
	if out4.Len() != 1 {
		t.Errorf("rz(2pi) must survive: %s", out4)
	}
}

func TestRotationChainMerges(t *testing.T) {
	c := circuit.New(1).RZ(0.25, 0).RZ(0.25, 0).RZ(0.5, 0)
	out, _ := Cancel(c)
	if out.Len() != 1 || math.Abs(out.Gates[0].Params[0]-1.0) > 1e-12 {
		t.Errorf("chain merge failed: %s", out)
	}
}

func TestBarriersBlockCancellation(t *testing.T) {
	c := circuit.New(1).H(0).Barrier(0).H(0)
	out, _ := Cancel(c)
	if out.Len() != 3 {
		t.Errorf("cancellation crossed a barrier: %s", out)
	}
}

func TestMeasureBlocksCancellation(t *testing.T) {
	c := circuit.New(1).H(0).Measure(0, 0).H(0)
	out, _ := Cancel(c)
	if out.Len() != 3 {
		t.Errorf("cancellation crossed a measurement: %s", out)
	}
}

func TestCancelIdempotent(t *testing.T) {
	c := circuit.New(3).H(0).H(0).CX(0, 1).T(2).Tdg(2).CX(0, 1)
	once, _ := Cancel(c)
	twice, res := Cancel(once)
	if !once.Equal(twice) {
		t.Error("Cancel is not idempotent")
	}
	if res.Removed != 0 || res.Merged != 0 {
		t.Errorf("second run changed something: %+v", res)
	}
}

func TestCancelPreservesInput(t *testing.T) {
	c := circuit.New(1).H(0).H(0)
	snapshot := c.Clone()
	Cancel(c)
	if !c.Equal(snapshot) {
		t.Error("Cancel mutated its input")
	}
}

// TestCancelSemanticsPreserved is the keystone property: the optimised
// circuit is statevector-equivalent to the original for random circuits.
func TestCancelSemanticsPreserved(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 4, 40)
		out, _ := Cancel(c)
		a, err := sim.Run(c)
		if err != nil {
			return false
		}
		b, err := sim.Run(out)
		if err != nil {
			return false
		}
		return a.EqualUpToPhase(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCancelShrinksRedundantCircuits: circuits built as G·G⁻¹ sandwiches
// collapse substantially.
func TestCancelShrinksRedundantCircuits(t *testing.T) {
	c := circuit.New(3)
	for i := 0; i < 10; i++ {
		c.H(0).CX(0, 1).T(2).Tdg(2).CX(0, 1).H(0)
	}
	out, _ := Cancel(c)
	if out.Len() != 0 {
		t.Errorf("redundant sandwich left %d gates", out.Len())
	}
}

// randomCircuit builds a deterministic random circuit with deliberately
// high duplicate density to exercise the rewrites.
func randomCircuit(seed int64, qubits, n int) *circuit.Circuit {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	c := circuit.New(qubits)
	for i := 0; i < n; i++ {
		q := next(qubits)
		switch next(8) {
		case 0:
			c.H(q)
		case 1:
			c.X(q)
		case 2:
			c.T(q)
		case 3:
			c.Tdg(q)
		case 4:
			c.RZ(float64(next(5))*0.2-0.4, q)
		case 5:
			c.S(q)
		case 6:
			c.Sdg(q)
		default:
			b := (q + 1 + next(qubits-1)) % qubits
			c.CX(q, b)
		}
	}
	return c
}
