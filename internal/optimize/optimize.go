// Package optimize provides the peephole circuit optimisations that sit
// upstream of qubit mapping in a real toolchain (the paper's §I pipeline:
// "QC compilers typically translate high-level QC code into (optimized)
// circuit-level assembly code in multiple stages"). Benchmarks emitted by
// compilers such as ScaffCC carry easy redundancies — adjacent inverse
// pairs and mergeable rotations — whose removal shrinks weighted depth for
// both mappers without favouring either.
//
// All rewrites are semantics-preserving and are cross-validated against
// the statevector simulator in the tests.
package optimize

import (
	"math"

	"codar/internal/circuit"
)

// inverseOf lists the self-inverse ops and inverse pairs the canceller
// recognises.
func inverses(a, b circuit.Gate) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			return false
		}
	}
	switch {
	case a.Op == b.Op:
		switch a.Op {
		case circuit.OpX, circuit.OpY, circuit.OpZ, circuit.OpH,
			circuit.OpCX, circuit.OpCZ, circuit.OpSwap, circuit.OpCCX, circuit.OpID:
			return true
		}
		return false
	case a.Op == circuit.OpS && b.Op == circuit.OpSdg,
		a.Op == circuit.OpSdg && b.Op == circuit.OpS,
		a.Op == circuit.OpT && b.Op == circuit.OpTdg,
		a.Op == circuit.OpTdg && b.Op == circuit.OpT:
		return true
	}
	return false
}

// mergeable reports whether a and b are same-axis rotations on the same
// qubit whose angles add.
func mergeable(a, b circuit.Gate) bool {
	if a.Op != b.Op || len(a.Qubits) != 1 || len(b.Qubits) != 1 || a.Qubits[0] != b.Qubits[0] {
		return false
	}
	switch a.Op {
	case circuit.OpRX, circuit.OpRY, circuit.OpRZ, circuit.OpU1:
		return true
	}
	return false
}

// angleZero reports whether a merged rotation is the identity (angle ≡ 0
// mod 4π for R-rotations — global phase matters at 2π — and mod 2π for u1).
func angleZero(op circuit.Op, angle float64) bool {
	mod := 4 * math.Pi
	if op == circuit.OpU1 {
		mod = 2 * math.Pi
	}
	a := math.Mod(angle, mod)
	if a < 0 {
		a += mod
	}
	const eps = 1e-12
	return a < eps || mod-a < eps
}

// Result summarises one optimisation run.
type Result struct {
	// Removed is the number of gates eliminated.
	Removed int
	// Merged is the number of rotation pairs fused.
	Merged int
	// Passes is the number of fixpoint iterations performed.
	Passes int
}

// Cancel applies inverse-pair cancellation and rotation merging to a
// fixpoint and returns the optimised circuit with statistics. Pairs may be
// separated by gates acting on disjoint qubits (those always commute);
// gates sharing a qubit block the match unless they commute under the
// diagonal-basis rules, in which case the scan continues past them.
// Barriers, measurements and resets are never crossed or removed.
func Cancel(c *circuit.Circuit) (*circuit.Circuit, Result) {
	cur := c.Clone()
	var res Result
	for {
		res.Passes++
		next, changed, removed, merged := cancelOnce(cur)
		res.Removed += removed
		res.Merged += merged
		cur = next
		if !changed || res.Passes > 64 {
			return cur, res
		}
	}
}

// cancelOnce performs one left-to-right pass.
func cancelOnce(c *circuit.Circuit) (out *circuit.Circuit, changed bool, removed, merged int) {
	gates := make([]circuit.Gate, len(c.Gates))
	copy(gates, c.Gates)
	alive := make([]bool, len(gates))
	for i := range alive {
		alive[i] = true
	}
	for i := 0; i < len(gates); i++ {
		if !alive[i] {
			continue
		}
		g := gates[i]
		if !g.Op.Unitary() {
			continue
		}
		// Scan forward for a partner.
		for j := i + 1; j < len(gates); j++ {
			if !alive[j] {
				continue
			}
			h := gates[j]
			if inverses(g, h) {
				alive[i], alive[j] = false, false
				removed += 2
				changed = true
				break
			}
			if mergeable(g, h) {
				sum := g.Params[0] + h.Params[0]
				alive[j] = false
				merged++
				changed = true
				if angleZero(g.Op, sum) {
					alive[i] = false
					removed++
				} else {
					gates[i] = circuit.New1QP(g.Op, g.Qubits[0], sum)
					g = gates[i]
					continue // keep scanning with the fused rotation
				}
				break
			}
			if g.SharesQubit(h) && !circuit.Commute(g, h) {
				break // blocked; no partner reachable
			}
		}
	}
	out = &circuit.Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	for i, g := range gates {
		if alive[i] {
			out.Gates = append(out.Gates, g)
		}
	}
	return out, changed, removed, merged
}
