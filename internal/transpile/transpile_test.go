package transpile

import (
	"math"
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/schedule"
	"codar/internal/sim"
)

// equalUpToGlobalPhase compares two circuits as operators on every basis
// state of an n-qubit register, requiring one consistent global phase.
func equalUpToGlobalPhase(t *testing.T, a, b *circuit.Circuit, n int) bool {
	t.Helper()
	var phase complex128
	havePhase := false
	for basis := 0; basis < 1<<uint(n); basis++ {
		sa := sim.MustNewState(n)
		sa.SetAmplitude(0, 0)
		sa.SetAmplitude(basis, 1)
		sb := sa.Clone()
		if err := sa.ApplyCircuit(a); err != nil {
			t.Fatal(err)
		}
		if err := sb.ApplyCircuit(b); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sa.Len(); i++ {
			va, vb := sa.Amplitude(i), sb.Amplitude(i)
			absA, absB := real(va)*real(va)+imag(va)*imag(va), real(vb)*real(vb)+imag(vb)*imag(vb)
			if absA < 1e-18 && absB < 1e-18 {
				continue
			}
			if math.Abs(absA-absB) > 1e-9 {
				return false
			}
			if !havePhase {
				phase = va / vb
				havePhase = true
				continue
			}
			diff := va - phase*vb
			if real(diff)*real(diff)+imag(diff)*imag(diff) > 1e-14 {
				return false
			}
		}
	}
	return true
}

func TestCXViaXXIdentity(t *testing.T) {
	cx := circuit.New(2).CX(0, 1)
	ion := circuit.New(2)
	if err := lowerCX(ion, 0, 1, IonTrap); err != nil {
		t.Fatal(err)
	}
	if !equalUpToGlobalPhase(t, cx, ion, 2) {
		t.Fatal("one-XX-four-R CX identity broken")
	}
	// Exactly one XX and four rotations, as the paper states.
	ops := ion.CountOps()
	if ops[circuit.OpRXX] != 1 || ops[circuit.OpRX]+ops[circuit.OpRY] != 4 {
		t.Errorf("CX lowering shape: %v", ops)
	}
}

func TestZYZRoundTrip(t *testing.T) {
	gates := []circuit.Gate{
		circuit.New1Q(circuit.OpH, 0),
		circuit.New1Q(circuit.OpX, 0),
		circuit.New1Q(circuit.OpY, 0),
		circuit.New1Q(circuit.OpZ, 0),
		circuit.New1Q(circuit.OpS, 0),
		circuit.New1Q(circuit.OpSdg, 0),
		circuit.New1Q(circuit.OpT, 0),
		circuit.New1Q(circuit.OpSX, 0),
		circuit.New1QP(circuit.OpU2, 0, 0.3, 1.2),
		circuit.New1QP(circuit.OpU3, 0, 0.7, -0.4, 2.2),
		circuit.New1QP(circuit.OpU1, 0, 1.9),
	}
	for _, g := range gates {
		orig := circuit.New(1).Add(g)
		low := circuit.New(1)
		if err := lower1Q(low, g, IonTrap); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		for _, lg := range low.Gates {
			if !Native(IonTrap, lg.Op) {
				t.Fatalf("%v lowered to non-native %v", g, lg)
			}
		}
		if !equalUpToGlobalPhase(t, orig, low, 1) {
			t.Errorf("ZYZ lowering of %v is not equivalent", g)
		}
	}
}

func TestZYZRandomUnitaries(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)*0x9E3779B97F4A7C15 + 5
		next := func() float64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return float64(s%6283)/1000 - math.Pi
		}
		th, ph, la := next(), next(), next()
		u, err := sim.Unitary1Q(circuit.OpU3, []float64{th, ph, la})
		if err != nil {
			return false
		}
		theta, phi, lam := ZYZ(u)
		orig := circuit.New(1).U3(th, ph, la, 0)
		rebuilt := circuit.New(1).RZ(lam, 0).RY(theta, 0).RZ(phi, 0)
		return equalUpToGlobalPhase(t, orig, rebuilt, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNativeSets(t *testing.T) {
	cases := []struct {
		target Target
		op     circuit.Op
		want   bool
	}{
		{Superconducting, circuit.OpCX, true},
		{Superconducting, circuit.OpH, true},
		{Superconducting, circuit.OpRXX, false},
		{IonTrap, circuit.OpRXX, true},
		{IonTrap, circuit.OpRX, true},
		{IonTrap, circuit.OpCX, false},
		{IonTrap, circuit.OpH, false},
		{NeutralAtom, circuit.OpCX, true},
		{NeutralAtom, circuit.OpCZ, true},
		{NeutralAtom, circuit.OpRXX, false},
		{NeutralAtom, circuit.OpH, false},
		{IonTrap, circuit.OpBarrier, true},
		{IonTrap, circuit.OpMeasure, true},
	}
	for _, tc := range cases {
		if got := Native(tc.target, tc.op); got != tc.want {
			t.Errorf("Native(%v, %v) = %v, want %v", tc.target, tc.op, got, tc.want)
		}
	}
}

func TestToProducesOnlyNativeOps(t *testing.T) {
	targets := []Target{Superconducting, IonTrap, NeutralAtom}
	f := func(seed int64) bool {
		c := randCircuit(seed, 4, 25)
		for _, target := range targets {
			out, err := To(c, target)
			if err != nil {
				t.Logf("%v: %v", target, err)
				return false
			}
			for _, g := range out.Gates {
				if !Native(target, g.Op) {
					t.Logf("%v emitted non-native %v", target, g)
					return false
				}
			}
			if !equalUpToGlobalPhase(t, circuit.Decompose(c), out, 4) {
				t.Logf("%v output not equivalent", target)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestToLowersCZForIonTrap(t *testing.T) {
	c := circuit.New(2).CZ(0, 1)
	out, err := To(c, IonTrap)
	if err != nil {
		t.Fatal(err)
	}
	ops := out.CountOps()
	if ops[circuit.OpRXX] != 1 {
		t.Errorf("CZ should use one XX: %v", ops)
	}
	if !equalUpToGlobalPhase(t, c, out, 2) {
		t.Error("CZ lowering not equivalent")
	}
}

func TestToKeepsMeasurementsAndBarriers(t *testing.T) {
	c := circuit.New(2).H(0).Barrier(0, 1).Measure(0, 0)
	out, err := To(c, IonTrap)
	if err != nil {
		t.Fatal(err)
	}
	ops := out.CountOps()
	if ops[circuit.OpBarrier] != 1 || ops[circuit.OpMeasure] != 1 {
		t.Errorf("directives lost: %v", ops)
	}
}

// TestMappedPipelineToIonTrap is the full multi-technology flow: map with
// CODAR on a linear trap topology, transpile to the ion native set, and
// schedule under ion-trap durations.
func TestMappedPipelineToIonTrap(t *testing.T) {
	dev := arch.Linear(5)
	dev.Durations = arch.IonTrapDurations()
	c := circuit.Decompose(randCircuit(3, 5, 30))
	res, err := core.Remap(c, dev, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ion, err := To(res.Circuit, IonTrap)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range ion.Gates {
		if !Native(IonTrap, g.Op) {
			t.Fatalf("non-native %v survived", g)
		}
	}
	// Ion XX gates carry the slow two-qubit duration.
	s := schedule.ASAP(ion, dev.Durations)
	if s.Makespan <= 0 {
		t.Error("unschedulable ion circuit")
	}
	if dev.Durations.Of(circuit.OpRXX) != 12 {
		t.Errorf("XX duration = %d, want 12 (ion preset)", dev.Durations.Of(circuit.OpRXX))
	}
	if !equalUpToGlobalPhase(t, res.Circuit, ion, 5) {
		t.Error("ion transpilation changed semantics")
	}
}

func randCircuit(seed int64, qubits, gates int) *circuit.Circuit {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 777
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	c := circuit.New(qubits)
	for i := 0; i < gates; i++ {
		switch next(7) {
		case 0:
			c.H(next(qubits))
		case 1:
			c.T(next(qubits))
		case 2:
			c.U3(float64(next(11))*0.3, float64(next(11))*0.2, float64(next(11))*0.1, next(qubits))
		case 3, 4:
			a := next(qubits)
			b := (a + 1 + next(qubits-1)) % qubits
			c.CX(a, b)
		case 5:
			a := next(qubits)
			b := (a + 1 + next(qubits-1)) % qubits
			c.CZ(a, b)
		default:
			a := next(qubits)
			b := (a + 1 + next(qubits-1)) % qubits
			c.RZZ(float64(next(9))*0.25, a, b)
		}
	}
	return c
}
