// Package transpile lowers circuits to the native gate set of a target
// technology, completing the maQAM's multi-architecture story (paper
// §III-A and Table I):
//
//   - Superconducting: single-qubit unitaries + CX/CZ (the mapping base
//     set; compound gates are expanded).
//   - Ion trap: rotations R(θ,α) — realised as rx/ry/rz — plus the
//     Mølmer–Sørensen XX gate. "CNOT gate can be implemented by a one-XX
//     and four-R" (paper §III-A, citing Debnath et al.): we use the Maslov
//     form CX(c,t) = ry(π/2)c · xx(π/2) · rx(−π/2)c · rx(−π/2)t · ry(−π/2)c.
//   - Neutral atom: rotations plus a Rydberg-blockade CX/CZ.
//
// Transpilation happens after mapping: inputs must be hardware-compliant
// two-qubit-local circuits (SWAPs are lowered first). Every rewrite is
// statevector-validated in the tests.
package transpile

import (
	"fmt"
	"math"
	"math/cmplx"

	"codar/internal/circuit"
	"codar/internal/sim"
)

// Target selects a native gate set.
type Target uint8

// Targets from Table I.
const (
	Superconducting Target = iota
	IonTrap
	NeutralAtom
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case Superconducting:
		return "superconducting"
	case IonTrap:
		return "ion-trap"
	case NeutralAtom:
		return "neutral-atom"
	default:
		return fmt.Sprintf("target(%d)", uint8(t))
	}
}

// Native reports whether op is directly implementable on the target.
// Barriers and measurements are native everywhere.
func Native(t Target, op circuit.Op) bool {
	switch op {
	case circuit.OpBarrier, circuit.OpMeasure, circuit.OpReset, circuit.OpID:
		return true
	}
	switch t {
	case Superconducting:
		return op.SingleQubit() || op == circuit.OpCX || op == circuit.OpCZ
	case IonTrap:
		switch op {
		case circuit.OpRX, circuit.OpRY, circuit.OpRZ, circuit.OpRXX:
			return true
		}
		return false
	case NeutralAtom:
		switch op {
		case circuit.OpRX, circuit.OpRY, circuit.OpRZ, circuit.OpCX, circuit.OpCZ:
			return true
		}
		return false
	}
	return false
}

// To lowers c to the target's native gate set. The input must already be
// two-qubit-local (compound gates are expanded first via
// circuit.Decompose, which also lowers SWAPs to CX triples).
func To(c *circuit.Circuit, t Target) (*circuit.Circuit, error) {
	lowered := circuit.Decompose(c)
	out := &circuit.Circuit{
		Name:      lowered.Name,
		NumQubits: lowered.NumQubits,
		NumClbits: lowered.NumClbits,
	}
	for i, g := range lowered.Gates {
		if err := lowerGate(out, g, t); err != nil {
			return nil, fmt.Errorf("transpile: gate %d (%s): %w", i, g, err)
		}
	}
	return out, nil
}

// lowerGate appends the native realisation of g to out.
func lowerGate(out *circuit.Circuit, g circuit.Gate, t Target) error {
	if Native(t, g.Op) {
		out.Add(g.Clone())
		return nil
	}
	switch {
	case g.Op.SingleQubit():
		return lower1Q(out, g, t)
	case g.Op == circuit.OpCX:
		return lowerCX(out, g.Qubits[0], g.Qubits[1], t)
	case g.Op == circuit.OpCZ:
		// CZ = (I ⊗ H) CX (I ⊗ H).
		tq := g.Qubits[1]
		if err := lower1Q(out, circuit.New1Q(circuit.OpH, tq), t); err != nil {
			return err
		}
		if err := lowerCX(out, g.Qubits[0], tq, t); err != nil {
			return err
		}
		return lower1Q(out, circuit.New1Q(circuit.OpH, tq), t)
	case g.Op == circuit.OpRXX:
		// XX = (H⊗H) · ZZ · (H⊗H); ZZ = CX · rz · CX — only needed on
		// targets without native XX.
		a, b := g.Qubits[0], g.Qubits[1]
		for _, q := range []int{a, b} {
			if err := lower1Q(out, circuit.New1Q(circuit.OpH, q), t); err != nil {
				return err
			}
		}
		if err := lowerCX(out, a, b, t); err != nil {
			return err
		}
		if err := lower1Q(out, circuit.New1QP(circuit.OpRZ, b, g.Params[0]), t); err != nil {
			return err
		}
		if err := lowerCX(out, a, b, t); err != nil {
			return err
		}
		for _, q := range []int{a, b} {
			if err := lower1Q(out, circuit.New1Q(circuit.OpH, q), t); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("no native realisation on %v", t)
	}
}

// lowerCX emits a CX in the target's native set.
func lowerCX(out *circuit.Circuit, c, tq int, t Target) error {
	if Native(t, circuit.OpCX) {
		out.CX(c, tq)
		return nil
	}
	if t != IonTrap {
		return fmt.Errorf("no CX realisation on %v", t)
	}
	// Maslov form: one XX and four rotations (verified against the
	// statevector simulator in the tests).
	half := math.Pi / 2
	out.RY(half, c)
	out.Add(circuit.New2QP(circuit.OpRXX, c, tq, half))
	out.RX(-half, c)
	out.RX(-half, tq)
	out.RY(-half, c)
	return nil
}

// lower1Q emits a single-qubit gate as native rotations via ZYZ
// decomposition: U ≅ Rz(φ)·Ry(θ)·Rz(λ) up to global phase, emitted in
// circuit order rz(λ); ry(θ); rz(φ). Zero-angle rotations are dropped.
func lower1Q(out *circuit.Circuit, g circuit.Gate, t Target) error {
	if Native(t, g.Op) {
		out.Add(g.Clone())
		return nil
	}
	u, err := sim.Unitary1Q(g.Op, g.Params)
	if err != nil {
		return err
	}
	theta, phi, lam := ZYZ(u)
	q := g.Qubits[0]
	emitRZ(out, q, lam)
	if !angleNegligible(theta) {
		out.RY(theta, q)
	}
	emitRZ(out, q, phi)
	return nil
}

func emitRZ(out *circuit.Circuit, q int, angle float64) {
	if !angleNegligible(angle) {
		out.RZ(angle, q)
	}
}

// angleNegligible reports whether a rotation angle is 0 (mod 2π) within
// numerical tolerance — such rotations act as global phase only when they
// are exactly multiples of 2π... rz(2π) = -I is a pure global phase for an
// *uncontrolled* rotation, so 2π multiples are droppable here.
func angleNegligible(a float64) bool {
	m := math.Mod(a, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	const eps = 1e-12
	return m < eps || 2*math.Pi-m < eps
}

// ZYZ decomposes a 2x2 unitary into Euler angles (theta, phi, lam) with
// U ≅ Rz(phi)·Ry(theta)·Rz(lam) up to global phase.
func ZYZ(u [2][2]complex128) (theta, phi, lam float64) {
	// Project to SU(2): divide by sqrt(det).
	det := u[0][0]*u[1][1] - u[0][1]*u[1][0]
	scale := cmplx.Sqrt(det)
	if cmplx.Abs(scale) < 1e-15 {
		return 0, 0, 0 // degenerate; caller validated unitarity
	}
	a := u[0][0] / scale // cos(θ/2) e^{-i(φ+λ)/2}
	b := u[1][0] / scale // sin(θ/2) e^{+i(φ-λ)/2}
	theta = 2 * math.Atan2(cmplx.Abs(b), cmplx.Abs(a))
	const eps = 1e-12
	switch {
	case cmplx.Abs(b) < eps:
		// Diagonal: only φ+λ is defined; put it all in λ.
		phi = 0
		lam = -2 * cmplx.Phase(a)
	case cmplx.Abs(a) < eps:
		// Anti-diagonal: only φ−λ is defined.
		lam = 0
		phi = 2 * cmplx.Phase(b)
	default:
		sum := -2 * cmplx.Phase(a)
		diff := 2 * cmplx.Phase(b)
		phi = (sum + diff) / 2
		lam = (sum - diff) / 2
	}
	return theta, phi, lam
}
