package core

import (
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
)

// TestRemapAssembledReuseMatchesFresh pins the assembly-sharing contract on
// the CODAR side: one Assembly reused across several RemapAssembled calls
// produces outputs byte-identical to per-call Remap, which assembles from
// scratch each time.
func TestRemapAssembledReuseMatchesFresh(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	for seed := int64(1); seed <= 4; seed++ {
		c := randCircuit(seed, 12, 350)
		asm := circuit.Assemble(c)
		fresh, err := Remap(c, dev, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			shared, err := RemapAssembled(asm, dev, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !fresh.Circuit.Equal(shared.Circuit) {
				t.Fatalf("seed %d reuse %d: shared-assembly output differs from fresh", seed, i)
			}
			if fresh.Makespan != shared.Makespan || fresh.SwapCount != shared.SwapCount {
				t.Fatalf("seed %d reuse %d: makespan/swaps differ", seed, i)
			}
			if !fresh.FinalLayout.Equal(shared.FinalLayout) {
				t.Fatalf("seed %d reuse %d: final layout differs", seed, i)
			}
		}
	}
}
