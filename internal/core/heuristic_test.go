package core

import (
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
)

// newTestRemapper builds a remapper around a circuit/device pair without
// running it, for white-box tests of the candidate machinery.
func newTestRemapper(t *testing.T, c *circuit.Circuit, dev *arch.Device) *remapper {
	t.Helper()
	l := arch.NewTrivialLayout(c.NumQubits, dev.NumQubits)
	return newRemapper(circuit.Assemble(c), dev, l, Options{})
}

// TestFig5CandidateCollection reproduces the Fig 5 remapping cycle on a
// 3×3 grid: a CNOT between P1 and P6 must be routed at cycle 2 while P3 is
// locked until 3. The edge (P3,P6) must be excluded from the candidates,
// and after applying a SWAP the candidates touching its qubits retire.
func TestFig5CandidateCollection(t *testing.T) {
	dev := arch.Grid("g33", 3, 3)
	c := circuit.New(9)
	c.CX(1, 6)
	r := newTestRemapper(t, c, dev)
	r.locks[3] = 3 // P3 busy until cycle 3
	const now = 2

	front := r.computeFront()
	cands := r.collectCandidates(front, now)

	has := func(a, b int) bool {
		if a > b {
			a, b = b, a
		}
		for _, cd := range cands {
			if cd.a == a && cd.b == b {
				return true
			}
		}
		return false
	}
	// Free edges around P1 (neighbours 0, 2, 4) and P6 (neighbours 3, 7).
	for _, e := range [][2]int{{1, 0}, {1, 2}, {1, 4}, {6, 7}} {
		if !has(e[0], e[1]) {
			t.Errorf("candidate (%d,%d) missing", e[0], e[1])
		}
	}
	// The locked edge (P3,P6) must be excluded ("the edge between q3 and
	// q6 is not free").
	if has(3, 6) {
		t.Error("edge (3,6) should be excluded: P3 is locked")
	}
	if len(cands) != 4 {
		t.Errorf("%d candidates, want 4", len(cands))
	}

	// Applying the SWAP on (1,4) locks its qubits; retirement drops every
	// candidate touching P1 (Fig 5(b)).
	r.launchSwap(1, 4, now)
	live := 0
	for _, cd := range cands {
		if r.locks[cd.a] <= now && r.locks[cd.b] <= now {
			live++
		}
	}
	if live != 1 { // only (6,7) survives
		t.Errorf("%d live candidates after SWAP, want 1", live)
	}
}

func TestHBasicSigns(t *testing.T) {
	dev := arch.Linear(4) // 0-1-2-3
	c := circuit.New(4)
	c.CX(0, 3) // distance 3
	r := newTestRemapper(t, c, dev)
	front2q := r.frontTwoQubit(r.computeFront())

	mk := func(a, b int) swapCand {
		if a > b {
			a, b = b, a
		}
		id, ok := dev.EdgeIndex(a, b)
		if !ok {
			t.Fatalf("(%d,%d) is not an edge", a, b)
		}
		return swapCand{a: a, b: b, edge: id}
	}
	// Moving logical 0 from P0 to P1 shortens the distance: +1.
	if got := r.hBasic(mk(0, 1), front2q, r.distTab); got != 1 {
		t.Errorf("hBasic(swap 0,1) = %d, want 1", got)
	}
	// Moving logical 3 from P3 to P2: +1.
	if got := r.hBasic(mk(2, 3), front2q, r.distTab); got != 1 {
		t.Errorf("hBasic(swap 2,3) = %d, want 1", got)
	}
	// Swapping P1,P2 moves neither operand: 0.
	if got := r.hBasic(mk(1, 2), front2q, r.distTab); got != 0 {
		t.Errorf("hBasic(swap 1,2) = %d, want 0", got)
	}
}

func TestHBasicCountsAllFrontGates(t *testing.T) {
	// Two front CXs: moving a shared qubit helps one and hurts the other.
	dev := arch.Linear(5) // 0-1-2-3-4
	c := circuit.New(5)
	c.CX(0, 2) // distance 2
	c.CX(4, 2) // distance 2, commutes (shared target)
	r := newTestRemapper(t, c, dev)
	front2q := r.frontTwoQubit(r.computeFront())
	if len(front2q) != 2 {
		t.Fatalf("front2q = %v, want both CXs", front2q)
	}
	id, _ := dev.EdgeIndex(1, 2)
	// SWAP(1,2): moves logical 2 to P1. CX(0,2): 2->1 (+1). CX(4,2): 2->3 (-1).
	if got := r.hBasic(swapCand{a: 1, b: 2, edge: id}, front2q, r.distTab); got != 0 {
		t.Errorf("hBasic = %d, want 0 (benefit and harm cancel)", got)
	}
}

func TestHFineBalancesCoordinates(t *testing.T) {
	dev := arch.Grid("g33", 3, 3)
	c := circuit.New(9)
	c.CX(0, 7) // P0=(0,0) to P7=(2,1): HD 1, VD 2
	r := newTestRemapper(t, c, dev)
	front2q := r.frontTwoQubit(r.computeFront())

	cand := func(a, b int) swapCand {
		if a > b {
			a, b = b, a
		}
		id, _ := dev.EdgeIndex(a, b)
		return swapCand{a: a, b: b, edge: id}
	}
	// SWAP(0,3): logical 0 at (1,0), HD 1 VD 1 -> |VD-HD| = 0.
	if got := r.hFine(cand(0, 3), front2q); got != 0 {
		t.Errorf("hFine(0,3) = %d, want 0", got)
	}
	// SWAP(0,1): logical 0 at (0,1), HD 0 VD 2 -> -2.
	if got := r.hFine(cand(0, 1), front2q); got != -2 {
		t.Errorf("hFine(0,1) = %d, want -2", got)
	}
	// Both have Hbasic +1; pickBest must prefer the balanced one.
	cands := []swapCand{cand(0, 1), cand(0, 3)}
	best, hb, _ := r.pickBest(cands, front2q, false)
	if cands[best].b != 3 || hb != 1 {
		t.Errorf("pickBest chose %v with hb=%d, want swap(0,3) hb=1", cands[best], hb)
	}
}

func TestHFineZeroWithoutCoords(t *testing.T) {
	dev := arch.Ring(6) // no coordinates
	c := circuit.New(6)
	c.CX(0, 3)
	r := newTestRemapper(t, c, dev)
	front2q := r.frontTwoQubit(r.computeFront())
	id, _ := dev.EdgeIndex(0, 1)
	if got := r.hFine(swapCand{a: 0, b: 1, edge: id}, front2q); got != 0 {
		t.Errorf("hFine = %d, want 0 on coordinate-free device", got)
	}
}

func TestPickBestDeterministicTieBreak(t *testing.T) {
	dev := arch.Ring(4)
	c := circuit.New(4)
	c.CX(0, 2)
	r := newTestRemapper(t, c, dev)
	front2q := r.frontTwoQubit(r.computeFront())
	cands := r.collectCandidates(r.computeFront(), 0)
	if len(cands) < 2 {
		t.Fatalf("expected several candidates, got %d", len(cands))
	}
	best1, _, _ := r.pickBest(cands, front2q, false)
	// Reversing the candidate order must not change the winner.
	rev := make([]swapCand, len(cands))
	for i, c := range cands {
		rev[len(cands)-1-i] = c
	}
	best2, _, _ := r.pickBest(rev, front2q, false)
	if cands[best1].edge != rev[best2].edge {
		t.Error("pickBest is order-dependent")
	}
}

func TestCollectCandidatesSkipsAdjacentGates(t *testing.T) {
	dev := arch.Linear(4)
	c := circuit.New(4)
	c.CX(1, 2) // adjacent: contributes no candidates
	r := newTestRemapper(t, c, dev)
	cands := r.collectCandidates(r.computeFront(), 0)
	if len(cands) != 0 {
		t.Errorf("adjacent gate produced candidates: %v", cands)
	}
}

func TestCollectCandidatesLockedSide(t *testing.T) {
	dev := arch.Linear(4)
	c := circuit.New(4)
	c.CX(0, 3)
	r := newTestRemapper(t, c, dev)
	r.locks[0] = 5 // the q0 side is busy: only q3-side edges qualify
	cands := r.collectCandidates(r.computeFront(), 0)
	if len(cands) != 1 || cands[0].a != 2 || cands[0].b != 3 {
		t.Errorf("cands = %v, want only (2,3)", cands)
	}
}
