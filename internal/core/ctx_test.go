package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"codar/internal/arch"
	"codar/internal/qasm"
)

// TestCtxPreCanceled: a context that is already dead must abort before any
// mapping work, with the typed sentinel that also matches the stdlib cause.
func TestCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := randCircuit(1, 8, 60)
	_, err := Remap(c, arch.IBMQ20Tokyo(), nil, Options{Ctx: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must also match context.Canceled", err)
	}
}

// TestCtxExpiredDeadline: an expired deadline surfaces the deadline
// sentinel, not the cancel one.
func TestCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := randCircuit(2, 8, 60)
	_, err := Remap(c, arch.IBMQ20Tokyo(), nil, Options{Ctx: ctx})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, must also match context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v matches ErrCanceled; sentinels must stay distinct", err)
	}
}

// TestCtxCancelMidRunAbortsPromptly: canceling a Sycamore-sized mapping
// mid-run must abort within the amortized cadence, not run to completion.
// The circuit is large enough that a full run takes well over the abort
// budget asserted here.
func TestCtxCancelMidRunAbortsPromptly(t *testing.T) {
	c := randCircuit(3, 54, 20000)
	dev := arch.SycamoreQ54()
	ctx, cancel := context.WithCancel(context.Background())
	type res struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan res, 1)
	start := time.Now()
	go func() {
		_, err := Remap(c, dev, nil, Options{Ctx: ctx})
		done <- res{err: err, elapsed: time.Since(start)}
	}()
	time.Sleep(5 * time.Millisecond)
	canceledAt := time.Now()
	cancel()
	r := <-done
	if !errors.Is(r.err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled (run finished in %v?)", r.err, r.elapsed)
	}
	if lag := time.Since(canceledAt); lag > time.Second {
		t.Fatalf("abort lagged cancel by %v, want well under 1s", lag)
	}
}

// TestCtxBackgroundIsByteIdentical: an inert (background) context must not
// perturb the output in any way relative to a nil one — the bit-identity
// guarantee the Fig 8 pins rest on.
func TestCtxBackgroundIsByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 4, 9} {
		c := randCircuit(seed, 12, 300)
		dev := arch.IBMQ20Tokyo()
		plain, err := Remap(c, dev, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := Remap(c, dev, nil, Options{Ctx: context.Background()})
		if err != nil {
			t.Fatal(err)
		}
		if qasm.Write(plain.Circuit) != qasm.Write(withCtx.Circuit) {
			t.Fatalf("seed %d: background ctx changed the output", seed)
		}
		if plain.Makespan != withCtx.Makespan || plain.SwapCount != withCtx.SwapCount {
			t.Fatalf("seed %d: stats diverged: makespan %d/%d swaps %d/%d",
				seed, plain.Makespan, withCtx.Makespan, plain.SwapCount, withCtx.SwapCount)
		}
	}
}

// TestCtxLiveIsByteIdentical: a cancelable context that never fires must
// also leave the output untouched (the checker's polling path, not just the
// inactive fast path).
func TestCtxLiveIsByteIdentical(t *testing.T) {
	c := randCircuit(5, 12, 300)
	dev := arch.IBMQ20Tokyo()
	plain, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	live, err := Remap(c, dev, nil, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if qasm.Write(plain.Circuit) != qasm.Write(live.Circuit) {
		t.Fatal("live (unfired) ctx changed the output")
	}
}

// TestCtxComposesWithDepthBound: both abort mechanisms armed — whichever
// fires decides the error, and an unfired ctx leaves DepthBound semantics
// intact.
func TestCtxComposesWithDepthBound(t *testing.T) {
	c := randCircuit(6, 10, 200)
	dev := arch.IBMQ20Tokyo()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var bound arch.DepthBound
	bound.Tighten(1)
	_, err := Remap(c, dev, nil, Options{Ctx: ctx, DepthBound: &bound})
	if !errors.Is(err, ErrDepthBound) {
		t.Fatalf("err = %v, want ErrDepthBound with live ctx", err)
	}
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	var loose arch.DepthBound
	loose.Tighten(1 << 40)
	_, err = Remap(c, dev, nil, Options{Ctx: dead, DepthBound: &loose})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled with dead ctx and loose bound", err)
	}
}
