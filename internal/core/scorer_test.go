package core

import (
	"sort"
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
)

// scorerOptions is the option grid the scoring-equivalence properties
// sweep. Every ranking variant is included (each reads the key components
// differently), both front engines (the scorer syncs off whichever front
// buffers are live), the ablations, and the event-queue cross-check.
func scorerOptions() []Options {
	return []Options{
		{},
		{naiveFront: true},
		{DisableCommutativity: true},
		{DisableHfine: true},
		{Lookahead: -1},
		{Lookahead: 3},
		{Window: 1},
		{Window: 7},
		{RankMode: RankFineFirst},
		{RankMode: RankMixed},
		{DeadlockStreak: 1},
		{checkEvents: true},
		{naiveFront: true, RankMode: RankMixed, checkEvents: true},
	}
}

// TestRemapIdenticalToNaiveScore is the delta-scorer equivalence property:
// for randomized circuits, devices and option sets, Remap with the delta
// scorer produces byte-identical output (SwapCount, Makespan, full
// schedule, layouts, cycle counts) to Remap with the from-scratch pickBest
// scoring.
func TestRemapIdenticalToNaiveScore(t *testing.T) {
	devices := propDevices()
	optGrid := scorerOptions()
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		opts := optGrid[int(uint64(seed>>8)%uint64(len(optGrid)))]
		qubits := dev.NumQubits
		if qubits > 6 {
			qubits = 6
		}
		c := randCircuit(seed, qubits, 60)
		delta, err := Remap(c, dev, nil, opts)
		if err != nil {
			t.Logf("delta: %v", err)
			return false
		}
		naive := opts
		naive.naiveScore = true
		ref, err := Remap(c, dev, nil, naive)
		if err != nil {
			t.Logf("naive: %v", err)
			return false
		}
		if err := resultsIdentical(delta, ref); err != nil {
			t.Logf("opts %+v on %s: %v", opts, dev.Name, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRemapIdenticalToNaiveScoreGrid sweeps the full option grid
// deterministically (quick.Check samples it randomly) on both a coordinate
// device (Hfine live) and a coordinate-free ring (Hfine zero, edge-index
// tie-breaks dominate).
func TestRemapIdenticalToNaiveScoreGrid(t *testing.T) {
	devices := []*arch.Device{arch.Grid("g33", 3, 3), arch.Ring(7), arch.IBMQ20Tokyo()}
	for _, opts := range scorerOptions() {
		for seed := int64(0); seed < 6; seed++ {
			dev := devices[int(seed)%len(devices)]
			qubits := dev.NumQubits
			if qubits > 7 {
				qubits = 7
			}
			c := randCircuit(seed*131+17, qubits, 80)
			delta, err := Remap(c, dev, nil, opts)
			if err != nil {
				t.Fatalf("opts %+v seed %d: %v", opts, seed, err)
			}
			naive := opts
			naive.naiveScore = true
			ref, err := Remap(c, dev, nil, naive)
			if err != nil {
				t.Fatalf("opts %+v seed %d: %v", opts, seed, err)
			}
			if err := resultsIdentical(delta, ref); err != nil {
				t.Fatalf("opts %+v seed %d on %s: %v", opts, seed, dev.Name, err)
			}
		}
	}
}

// TestRemapIdenticalToNaiveScoreOnBenchmarks pins the scorer equivalence
// on real workload shapes: deep commuting QFT chains (large fronts, the
// shapes with the most candidate rescoring) and a deadlock-prone
// antipodal-ring circuit (forceSwap and directRoute paths).
func TestRemapIdenticalToNaiveScoreOnBenchmarks(t *testing.T) {
	type cse struct {
		dev *arch.Device
		c   *circuit.Circuit
	}
	ring := circuit.New(8)
	ring.CX(0, 4)
	ring.CX(1, 5)
	ring.CX(2, 6)
	ring.CX(3, 7)
	cases := []cse{
		{arch.IBMQ20Tokyo(), circuit.Decompose(qftLike(10))},
		{arch.Linear(10), circuit.Decompose(qftLike(10))},
		{arch.SycamoreQ54(), randCircuit(9, 16, 500)},
		{arch.Ring(8), ring},
	}
	for _, cs := range cases {
		for _, opts := range []Options{{}, {DeadlockStreak: 1, checkEvents: true}} {
			delta, err := Remap(cs.c, cs.dev, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			naive := opts
			naive.naiveScore = true
			ref, err := Remap(cs.c, cs.dev, nil, naive)
			if err != nil {
				t.Fatal(err)
			}
			if err := resultsIdentical(delta, ref); err != nil {
				t.Fatalf("%s / %s opts %+v: %v", cs.dev.Name, cs.c.Name, opts, err)
			}
		}
	}
}

// TestEmitMatchesStableSort: the ordered-insert emit path must reproduce
// exactly what the old final sort.SliceStable pass produced — sorted by
// start, equal starts in emission order — including on the out-of-order
// arrivals only directRoute generates in real runs. Each gate carries a
// unique Duration so stability violations are visible.
func TestEmitMatchesStableSort(t *testing.T) {
	r := &remapper{}
	s := uint64(0xDECAFBAD)
	var ref []schedule.ScheduledGate
	for i := 0; i < 500; i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		start := i / 3 // mostly non-decreasing...
		if s%7 == 0 {
			start += int(s % 11) // ...with occasional future emissions
		}
		sg := schedule.ScheduledGate{Start: start, Duration: i}
		r.emit(sg)
		ref = append(ref, sg)
	}
	sort.SliceStable(ref, func(i, j int) bool { return ref[i].Start < ref[j].Start })
	for i := range ref {
		if r.out[i].Start != ref[i].Start || r.out[i].Duration != ref[i].Duration {
			t.Fatalf("emit order diverges from stable sort at %d: %+v vs %+v", i, r.out[i], ref[i])
		}
	}
}

// BenchmarkDeltaScoreQFT16 isolates the swap-search cost with the delta
// scorer on the commutation-rich workload (compare against
// BenchmarkNaiveScoreQFT16 in one binary).
func BenchmarkDeltaScoreQFT16(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	c := circuit.Decompose(qftLike(16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Remap(c, dev, nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveScoreQFT16 is the retained reference scoring on the same
// workload.
func BenchmarkNaiveScoreQFT16(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	c := circuit.Decompose(qftLike(16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Remap(c, dev, nil, Options{naiveScore: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectRouteHeavyRing stresses the ordered-insert emit path:
// antipodal ring traffic with a minimal deadlock streak maximises
// out-of-order directRoute emissions.
func BenchmarkDirectRouteHeavyRing(b *testing.B) {
	dev := arch.Ring(16)
	c := circuit.New(16)
	for r := 0; r < 8; r++ {
		for a := 0; a < 16; a++ {
			c.CX(a, (a+8)%16)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Remap(c, dev, nil, Options{DeadlockStreak: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
