package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
)

// frontierOptions is the option grid the equivalence properties sweep:
// default engine, ablations, small windows and every rank mode, since each
// changes which fronts the engine is queried for.
func frontierOptions() []Options {
	return []Options{
		{},
		{DisableCommutativity: true},
		{Window: 1},
		{Window: 7},
		{Window: 64},
		{Lookahead: -1},
		{Lookahead: 3},
		{DisableHfine: true},
		{RankMode: RankFineFirst},
		{RankMode: RankMixed},
		{DeadlockStreak: 1},
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIncrementalFrontMatchesNaiveEveryCycle drives full remapping runs on
// randomized circuits and devices while cross-checking every front the
// incremental engine returns against both (a) the retained from-scratch
// scan over the live linked list and (b) the independent
// circuit.CommutativeFront implementation applied to the materialised
// remaining sequence. The look-ahead set must agree as well.
func TestIncrementalFrontMatchesNaiveEveryCycle(t *testing.T) {
	devices := propDevices()
	for oi, opts := range frontierOptions() {
		for seed := int64(0); seed < 12; seed++ {
			dev := devices[int(seed)%len(devices)]
			qubits := dev.NumQubits
			if qubits > 7 {
				qubits = 7
			}
			c := randCircuit(seed*31+int64(oi), qubits, 70)
			r := newRemapper(circuit.Assemble(c), dev, arch.NewTrivialLayout(qubits, dev.NumQubits), opts)
			var failure error
			checks := 0
			r.frontCheck = func(front []int) {
				if failure != nil {
					return
				}
				checks++
				gotFront := append([]int(nil), front...)
				gotLook := append([]int(nil), r.lookSet...)
				wantFront := append([]int(nil), r.computeFrontNaive()...)
				wantLook := append([]int(nil), r.lookSet...)
				if !intsEqual(gotFront, wantFront) {
					failure = fmt.Errorf("front mismatch: incremental %v, naive %v", gotFront, wantFront)
					return
				}
				if !intsEqual(gotLook, wantLook) {
					failure = fmt.Errorf("lookSet mismatch: incremental %v, naive %v", gotLook, wantLook)
					return
				}
				if opts.DisableCommutativity {
					return // circuit.CommutativeFront implements Definition 1 only
				}
				// Cross-package check: materialise the remaining sequence
				// and ask the reference implementation.
				var remaining []circuit.Gate
				var idx []int
				for i := r.head; i >= 0; i = r.next[i] {
					remaining = append(remaining, r.gates[i])
					idx = append(idx, i)
				}
				ref := circuit.CommutativeFront(remaining, opts.window())
				mapped := make([]int, len(ref))
				for k, pos := range ref {
					mapped[k] = idx[pos]
				}
				if !intsEqual(gotFront, mapped) {
					failure = fmt.Errorf("front mismatch vs circuit.CommutativeFront: %v vs %v", gotFront, mapped)
				}
			}
			r.run()
			if failure != nil {
				t.Fatalf("opts %+v seed %d on %s after %d checks: %v", opts, seed, dev.Name, checks, failure)
			}
			if checks == 0 {
				t.Fatalf("opts %+v seed %d: front never queried", opts, seed)
			}
		}
	}
}

// resultsIdentical compares every observable of two remapping results,
// byte-for-byte: metrics, schedules (op, qubits, start, duration, params)
// and layouts.
func resultsIdentical(a, b *Result) error {
	if a.SwapCount != b.SwapCount || a.Makespan != b.Makespan || a.Cycles != b.Cycles ||
		a.ForcedSwaps != b.ForcedSwaps || a.DirectRoutes != b.DirectRoutes {
		return fmt.Errorf("metrics differ: swaps %d/%d makespan %d/%d cycles %d/%d forced %d/%d routed %d/%d",
			a.SwapCount, b.SwapCount, a.Makespan, b.Makespan, a.Cycles, b.Cycles,
			a.ForcedSwaps, b.ForcedSwaps, a.DirectRoutes, b.DirectRoutes)
	}
	if len(a.Schedule.Gates) != len(b.Schedule.Gates) {
		return fmt.Errorf("schedule lengths differ: %d vs %d", len(a.Schedule.Gates), len(b.Schedule.Gates))
	}
	for i := range a.Schedule.Gates {
		ga, gb := a.Schedule.Gates[i], b.Schedule.Gates[i]
		if ga.Start != gb.Start || ga.Duration != gb.Duration || !ga.Gate.Equal(gb.Gate) {
			return fmt.Errorf("scheduled gate %d differs: %v@%d vs %v@%d", i, ga.Gate, ga.Start, gb.Gate, gb.Start)
		}
	}
	if !a.Circuit.Equal(b.Circuit) {
		return fmt.Errorf("output circuits differ")
	}
	for q := 0; q < a.FinalLayout.NumLogical(); q++ {
		if a.FinalLayout.Phys(q) != b.FinalLayout.Phys(q) {
			return fmt.Errorf("final layout differs at logical %d", q)
		}
	}
	return nil
}

// TestRemapIdenticalToNaiveFront is the refactor-equivalence property: for
// randomized circuits, devices and option sets, Remap with the incremental
// engine produces byte-identical output (SwapCount, Makespan, full
// schedule, layouts) to Remap with the from-scratch front scan.
func TestRemapIdenticalToNaiveFront(t *testing.T) {
	devices := propDevices()
	optGrid := frontierOptions()
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		opts := optGrid[int(uint64(seed>>8)%uint64(len(optGrid)))]
		qubits := dev.NumQubits
		if qubits > 6 {
			qubits = 6
		}
		c := randCircuit(seed, qubits, 60)
		inc, err := Remap(c, dev, nil, opts)
		if err != nil {
			t.Logf("incremental: %v", err)
			return false
		}
		naive := opts
		naive.naiveFront = true
		ref, err := Remap(c, dev, nil, naive)
		if err != nil {
			t.Logf("naive: %v", err)
			return false
		}
		if err := resultsIdentical(inc, ref); err != nil {
			t.Logf("opts %+v on %s: %v", opts, dev.Name, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRemapIdenticalOnBenchmarks pins the equivalence on a few real
// workload shapes (deep QFT chains maximise commuting CZ/CP runs, the very
// shapes the memo and blocker caches accelerate).
func TestRemapIdenticalOnBenchmarks(t *testing.T) {
	devs := []*arch.Device{arch.IBMQ20Tokyo(), arch.Linear(10)}
	circs := []*circuit.Circuit{
		randCircuit(3, 10, 400),
		circuit.Decompose(qftLike(10)),
	}
	for _, dev := range devs {
		for _, c := range circs {
			inc, err := Remap(c, dev, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Remap(c, dev, nil, Options{naiveFront: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := resultsIdentical(inc, ref); err != nil {
				t.Fatalf("%s / %s: %v", dev.Name, c.Name, err)
			}
		}
	}
}

// qftLike builds a QFT-shaped circuit: Hadamards plus long runs of
// mutually commuting controlled-phase gates. Callers lower it with
// circuit.Decompose before remapping.
func qftLike(n int) *circuit.Circuit {
	c := circuit.NewNamed("qft_like", n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			c.CP(1.0/float64(j-i+1), j, i)
		}
	}
	return c
}

// BenchmarkIncrementalFrontQFT16 isolates the engine cost on the workload
// that dominated the seed profile (deep commuting CP runs, window 256).
func BenchmarkIncrementalFrontQFT16(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	c := circuit.Decompose(qftLike(16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Remap(c, dev, nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveFrontQFT16 is the retained reference implementation on the
// same workload, for direct before/after comparison in one binary.
func BenchmarkNaiveFrontQFT16(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	c := circuit.Decompose(qftLike(16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Remap(c, dev, nil, Options{naiveFront: true}); err != nil {
			b.Fatal(err)
		}
	}
}
