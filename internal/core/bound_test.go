package core

import (
	"errors"
	"testing"

	"codar/internal/arch"
	"codar/internal/qasm"
	"codar/internal/workloads"
)

// TestDepthBoundAborts: a bound no run can beat must surface ErrDepthBound.
func TestDepthBoundAborts(t *testing.T) {
	b, err := workloads.ByName("qft_10")
	if err != nil {
		t.Fatal(err)
	}
	dev := arch.IBMQ20Tokyo()
	var bound arch.DepthBound
	bound.Tighten(1)
	_, err = Remap(b.Circuit(), dev, nil, Options{DepthBound: &bound})
	if !errors.Is(err, ErrDepthBound) {
		t.Fatalf("err = %v, want ErrDepthBound", err)
	}
}

// TestDepthBoundLooseIsIdentical: a bound the run never crosses must leave
// the output byte-identical to an unbounded run, and the tracked ASAP lower
// bound must land exactly on the output's weighted depth (the soundness
// invariant early abandon rests on).
func TestDepthBoundLooseIsIdentical(t *testing.T) {
	for _, name := range []string{"qft_10", "rand_10_g300", "adder_6"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dev := arch.IBMQ20Tokyo()
		plain, err := Remap(b.Circuit(), dev, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var bound arch.DepthBound
		bound.Tighten(1 << 40)
		bounded, err := Remap(b.Circuit(), dev, nil, Options{DepthBound: &bound})
		if err != nil {
			t.Fatalf("%s: loose bound aborted: %v", name, err)
		}
		if qasm.Write(plain.Circuit) != qasm.Write(bounded.Circuit) {
			t.Fatalf("%s: DepthBound tracking changed the output", name)
		}
		if plain.Makespan != bounded.Makespan || plain.SwapCount != bounded.SwapCount {
			t.Fatalf("%s: stats diverged: makespan %d/%d swaps %d/%d",
				name, plain.Makespan, bounded.Makespan, plain.SwapCount, bounded.SwapCount)
		}
	}
}

// TestDepthBoundExactTieCompletes: a bound equal to the run's own final
// depth must not abort it (strict comparison; ties fall to later tie-break
// keys in the portfolio selection).
func TestDepthBoundExactTieCompletes(t *testing.T) {
	b, err := workloads.ByName("qft_10")
	if err != nil {
		t.Fatal(err)
	}
	dev := arch.IBMQ20Tokyo()
	plain, err := Remap(b.Circuit(), dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The tracked lower bound is the ASAP weighted depth of the output,
	// which can undercut the lock-simulated Makespan — bound on it.
	wd := weightedDepthOf(t, plain)
	var bound arch.DepthBound
	bound.Tighten(wd)
	res, err := Remap(b.Circuit(), dev, nil, Options{DepthBound: &bound})
	if err != nil {
		t.Fatalf("tie aborted: %v", err)
	}
	if qasm.Write(res.Circuit) != qasm.Write(plain.Circuit) {
		t.Fatal("tie-bounded run changed the output")
	}
}

func weightedDepthOf(t *testing.T, res *Result) int {
	t.Helper()
	free := make([]int, res.Schedule.NumQubits)
	makespan := 0
	for _, sg := range res.Schedule.Gates {
		start := 0
		for _, q := range sg.Gate.Qubits {
			if free[q] > start {
				start = free[q]
			}
		}
		end := start + sg.Duration
		for _, q := range sg.Gate.Qubits {
			free[q] = end
		}
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}
