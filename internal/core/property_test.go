package core

import (
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
)

// randCircuit builds a deterministic pseudo-random lowered circuit.
func randCircuit(seed int64, qubits, gates int) *circuit.Circuit {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	c := circuit.New(qubits)
	for i := 0; i < gates; i++ {
		switch next(6) {
		case 0, 1:
			a := next(qubits)
			b := next(qubits)
			if a == b {
				b = (b + 1) % qubits
			}
			c.CX(a, b)
		case 2:
			c.H(next(qubits))
		case 3:
			c.T(next(qubits))
		case 4:
			c.RZ(float64(next(9))*0.125, next(qubits))
		default:
			a := next(qubits)
			b := next(qubits)
			if a == b {
				b = (b + 1) % qubits
			}
			c.CZ(a, b)
		}
	}
	return c
}

// propDevices is a mix of topologies exercising grids (with Hfine), lines,
// rings (no coords) and the real evaluation devices.
func propDevices() []*arch.Device {
	return []*arch.Device{
		arch.Linear(6),
		arch.Ring(7),
		arch.Grid("g33", 3, 3),
		arch.IBMQ5(),
		arch.IBMQ20Tokyo(),
	}
}

// TestRemapInvariants is the core correctness property: for random
// circuits on assorted devices, the CODAR output (1) is hardware
// compliant, (2) contains every input gate exactly once with qubits mapped
// through the layout in effect at its start time, (3) has a valid
// (non-overlapping) schedule, and (4) reports a makespan equal to
// re-scheduling its own output.
func TestRemapInvariants(t *testing.T) {
	devices := propDevices()
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		qubits := dev.NumQubits
		if qubits > 6 {
			qubits = 6
		}
		c := randCircuit(seed, qubits, 40)
		res, err := Remap(c, dev, nil, Options{})
		if err != nil {
			t.Logf("remap error: %v", err)
			return false
		}
		// (1) hardware compliance
		for _, sg := range res.Schedule.Gates {
			if sg.Gate.Op.TwoQubit() && !dev.Adjacent(sg.Gate.Qubits[0], sg.Gate.Qubits[1]) {
				t.Logf("non-compliant gate %v", sg.Gate)
				return false
			}
		}
		// (2) gate conservation: non-swap op histogram must match input.
		inOps := c.CountOps()
		outOps := map[circuit.Op]int{}
		for _, sg := range res.Schedule.Gates {
			if sg.Gate.Op != circuit.OpSwap {
				outOps[sg.Gate.Op]++
			}
		}
		for op, n := range inOps {
			if outOps[op] != n {
				t.Logf("op %v count %d != %d", op, outOps[op], n)
				return false
			}
		}
		swaps := 0
		for _, sg := range res.Schedule.Gates {
			if sg.Gate.Op == circuit.OpSwap {
				swaps++
			}
		}
		if swaps != res.SwapCount {
			t.Logf("swap count mismatch")
			return false
		}
		// (3) schedule validity
		if err := res.Schedule.Validate(dev.Durations); err != nil {
			t.Logf("schedule: %v", err)
			return false
		}
		// (4) self-consistent makespan: ASAP over the emitted sequence
		// cannot exceed the reported makespan (CODAR may leave gaps that
		// eager re-scheduling closes, but never the reverse).
		re := schedule.ASAP(res.Circuit, dev.Durations)
		if re.Makespan > res.Makespan {
			t.Logf("re-scheduled makespan %d > reported %d", re.Makespan, res.Makespan)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRemapTerminatesOnAdversarialShapes drives dense all-to-all traffic
// through sparse topologies where deadlock forcing is most likely.
func TestRemapTerminatesOnAdversarialShapes(t *testing.T) {
	devs := []*arch.Device{arch.Linear(5), arch.Ring(5), arch.Grid("g23", 2, 3)}
	for _, dev := range devs {
		n := dev.NumQubits
		c := circuit.New(n)
		// Every ordered pair interacts: maximal routing pressure.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					c.CX(a, b)
				}
			}
		}
		res, err := Remap(c, dev, nil, Options{})
		if err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		if err := res.Schedule.Validate(dev.Durations); err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		nCX := 0
		for _, sg := range res.Schedule.Gates {
			if sg.Gate.Op == circuit.OpCX {
				nCX++
			}
		}
		if nCX != n*(n-1) {
			t.Errorf("%s: %d CX out, want %d", dev.Name, nCX, n*(n-1))
		}
	}
}

// TestWindowDoesNotAffectCorrectness: tiny scan windows still produce
// compliant, complete outputs (just with less look-ahead).
func TestWindowDoesNotAffectCorrectness(t *testing.T) {
	dev := arch.Grid("g33", 3, 3)
	c := randCircuit(11, 6, 60)
	for _, w := range []int{1, 2, 8, 64, 1024} {
		res, err := Remap(c, dev, nil, Options{Window: w})
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		nonSwap := 0
		for _, sg := range res.Schedule.Gates {
			if sg.Gate.Op != circuit.OpSwap {
				nonSwap++
			}
		}
		if nonSwap != c.Len() {
			t.Errorf("window %d: %d gates out, want %d", w, nonSwap, c.Len())
		}
	}
}

// TestDeterminism: two runs over the same input produce identical outputs.
func TestDeterminism(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(42, 6, 80)
	r1, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Circuit.Equal(r2.Circuit) {
		t.Error("remapping is not deterministic")
	}
	if r1.Makespan != r2.Makespan || r1.SwapCount != r2.SwapCount {
		t.Error("metrics are not deterministic")
	}
}

// TestInputNotMutated: the input circuit must be untouched by remapping.
func TestInputNotMutated(t *testing.T) {
	dev := arch.Linear(4)
	c := circuit.New(4).CX(0, 3).H(1)
	snapshot := c.Clone()
	if _, err := Remap(c, dev, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(snapshot) {
		t.Error("Remap mutated its input")
	}
}

// TestSwapChainEquivalence: tracking the layout through the output swaps
// and un-mapping each non-swap gate must recover the input gate multiset
// in an order consistent with the commutation rules.
func TestSwapChainEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		dev := arch.Grid("g", 2, 3)
		c := randCircuit(seed, 5, 30)
		res, err := Remap(c, dev, nil, Options{})
		if err != nil {
			return false
		}
		// Un-map: physical -> logical via evolving inverse layout.
		l := res.InitialLayout.Clone()
		var logical []circuit.Gate
		for _, sg := range res.Schedule.Gates {
			g := sg.Gate
			if g.Op == circuit.OpSwap {
				l.SwapPhysical(g.Qubits[0], g.Qubits[1])
				continue
			}
			lg := g.Remap(func(p int) int { return l.Log(p) })
			for _, q := range lg.Qubits {
				if q < 0 {
					return false // gate on an unoccupied physical qubit
				}
			}
			logical = append(logical, lg)
		}
		if len(logical) != c.Len() {
			return false
		}
		// The recovered sequence must be a commutation-respecting
		// reordering: greedily match each recovered gate against the
		// earliest unmatched input gate it can legally move ahead of.
		used := make([]bool, c.Len())
		for _, lg := range logical {
			matched := false
			for j, in := range c.Gates {
				if used[j] {
					continue
				}
				if in.Equal(lg) {
					used[j] = true
					matched = true
					break
				}
				// lg must commute with every unmatched earlier gate it
				// skips over.
				if !circuit.Commute(in, lg) {
					return false
				}
			}
			if !matched {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
