package core

// scorer is the delta-scoring engine for the SWAP-candidate search
// (DESIGN.md §6). The reference selection (pickBest in heuristic.go,
// retained for the equivalence property tests) recomputes
// ⟨Hbasic, Hlook, Hfine⟩ for every candidate against every front and
// look-ahead gate on every insertion round — O(|cands| × (|front2q| +
// |lookSet|)) distance lookups — even though a launched SWAP only perturbs
// the scores of candidates sharing a qubit with it. The scorer exploits
// three locality facts:
//
//   - A gate contributes to a candidate's Hbasic/Hlook only when one of
//     its physical operands is the candidate's qubit, so per-physical-qubit
//     incidence lists reduce one evaluation to O(deg) incident gates.
//   - Hfine terms of non-incident gates are identical for every candidate
//     (swapping (a, b) moves nothing else), so scoring only the incident
//     terms shifts all candidates' Hfine by the same per-round constant,
//     which cancels in every comparison — including RankMixed's
//     2·Hbasic + Hlook blend. Hbasic and Hlook are exact (non-incident
//     terms are exactly zero), so the Hbasic > 0 insertion gate is
//     untouched.
//   - A score is a pure function of the layout and the front/look-ahead
//     sets — never of the clock or the locks — so a cached per-edge key
//     stays valid across insertion rounds and simulated cycles until a
//     gate incident to that edge enters or leaves a set, or a launched
//     SWAP moves one of its incident gates' operands.
//
// The remapper reports set changes through sync (diffing the freshly
// computed front2q/lookSet against the scorer's mirror) and layout changes
// through noteSwap; both dirty exactly the edges whose incident terms
// changed. Selection order and tie-breaking are byte-compatible with
// pickBest, which the scorer-equivalence property tests enforce.
type scorer struct {
	r *remapper

	// Per-physical-qubit incidence lists of the mirrored two-qubit front
	// (inc2q) and look-ahead (incLook) gates, plus the membership flags and
	// flat mirrors used by the sync diff.
	inc2q   [][]int32
	incLook [][]int32
	in2q    []bool
	inLook  []bool
	mir2q   []int32
	mirLook []int32

	// Epoch stamps for the sync diff (per gate index).
	seen      []int32
	seenEpoch int32

	// Cached per-edge candidate keys, invalidated by dirtyAround.
	keyValid []bool
	keys     [][3]int
	hbs      []int
}

func newScorer(r *remapper) *scorer {
	nq := r.dev.NumQubits
	return &scorer{
		r:        r,
		inc2q:    make([][]int32, nq),
		incLook:  make([][]int32, nq),
		in2q:     make([]bool, len(r.gates)),
		inLook:   make([]bool, len(r.gates)),
		seen:     make([]int32, len(r.gates)),
		keyValid: make([]bool, len(r.dev.Edges)),
		keys:     make([][3]int, len(r.dev.Edges)),
		hbs:      make([]int, len(r.dev.Edges)),
	}
}

// phys returns the current physical operands of two-qubit gate i.
func (s *scorer) phys(i int32) (int, int) {
	q1, q2 := s.r.soa.Pair(int(i))
	return s.r.layout.Phys(q1), s.r.layout.Phys(q2)
}

// dirtyAround invalidates the cached key of every edge incident to
// physical qubit p.
func (s *scorer) dirtyAround(p int) {
	dev := s.r.dev
	for _, nb := range dev.Neighbors(p) {
		id, _ := dev.EdgeIndex(p, nb)
		s.keyValid[id] = false
	}
}

// link adds gate i to the incidence lists at its current endpoints and
// dirties the edges whose scores now include it.
func (s *scorer) link(i int32, inc [][]int32) {
	p1, p2 := s.phys(i)
	inc[p1] = append(inc[p1], i)
	inc[p2] = append(inc[p2], i)
	s.dirtyAround(p1)
	s.dirtyAround(p2)
}

// unlink removes gate i from the incidence lists. The lists are keyed by
// current physical endpoints: every layout change flows through noteSwap,
// which keeps them consistent, so the gate is found at phys(i).
func (s *scorer) unlink(i int32, inc [][]int32) {
	p1, p2 := s.phys(i)
	for _, p := range [2]int{p1, p2} {
		l := inc[p]
		for k, gi := range l {
			if gi == i {
				l[k] = l[len(l)-1]
				inc[p] = l[:len(l)-1]
				break
			}
		}
		s.dirtyAround(p)
	}
}

// sync diffs the remapper's freshly computed front2q and lookSet buffers
// against the mirror, linking entrants, unlinking leavers and dirtying the
// affected edges. Cost is O(|front2q| + |lookSet|) per cycle — the same as
// scoring a single candidate naively.
func (s *scorer) sync() {
	s.syncSet(s.r.front2q, &s.mir2q, s.in2q, s.inc2q)
	s.syncSet(s.r.lookSet, &s.mirLook, s.inLook, s.incLook)
}

func (s *scorer) syncSet(cur []int, mirror *[]int32, in []bool, inc [][]int32) {
	s.seenEpoch++
	e := s.seenEpoch
	for _, i := range cur {
		s.seen[i] = e
		if !in[i] {
			in[i] = true
			s.link(int32(i), inc)
			*mirror = append(*mirror, int32(i))
		}
	}
	keep := (*mirror)[:0]
	for _, i := range *mirror {
		if s.seen[i] == e {
			keep = append(keep, i)
			continue
		}
		in[i] = false
		s.unlink(i, inc)
	}
	*mirror = keep
}

// noteSwap records that physical qubits a and b swapped state. All gates
// with an endpoint at a now have it at b and vice versa, so the two
// incidence lists swap wholesale. Every edge whose incident-gate terms
// changed — the edges at a, at b and at the other endpoints of the moved
// gates — is dirtied. Must be called after the layout update.
func (s *scorer) noteSwap(a, b int) {
	s.inc2q[a], s.inc2q[b] = s.inc2q[b], s.inc2q[a]
	s.incLook[a], s.incLook[b] = s.incLook[b], s.incLook[a]
	s.dirtyAround(a)
	s.dirtyAround(b)
	for _, p := range [2]int{a, b} {
		for _, i := range s.inc2q[p] {
			p1, p2 := s.phys(i)
			s.dirtyAround(p1)
			s.dirtyAround(p2)
		}
		for _, i := range s.incLook[p] {
			p1, p2 := s.phys(i)
			s.dirtyAround(p1)
			s.dirtyAround(p2)
		}
	}
}

// deltas computes a candidate's Hbasic and Hfine contributions over the
// gates incident to its qubits: hb is the exact Eq. 1 sum under the ranking
// metric (non-incident gates contribute zero), hop is the same sum under
// the hop metric — equal to hb on uncalibrated runs, computed separately
// when a weighted metric is attached because the insertion gate stays a
// hop-progress question (DESIGN.md §8) — and hf is the Eq. 2 sum shifted by
// the per-round constant −Σ|VD−HD| of the unswapped layout
// (selection-invariant). Gates touching both candidate qubits are visited
// once via the c.a-side skip.
func (s *scorer) deltas(c swapCand, inc [][]int32, wantFine bool) (hb, hop, hf int) {
	r := s.r
	dev := r.dev
	for _, i := range inc[c.a] {
		p1, p2 := s.phys(i)
		n1, n2 := swappedPhys(p1, c.a, c.b), swappedPhys(p2, c.a, c.b)
		hb += r.distance(p1, p2) - r.distance(n1, n2)
		if r.weighted {
			hop += r.hopDistance(p1, p2) - r.hopDistance(n1, n2)
		}
		if wantFine {
			hf += fineDiff(dev, p1, p2) - fineDiff(dev, n1, n2)
		}
	}
	for _, i := range inc[c.b] {
		p1, p2 := s.phys(i)
		if p1 == c.a || p2 == c.a {
			continue // already counted from the c.a side
		}
		n1, n2 := swappedPhys(p1, c.a, c.b), swappedPhys(p2, c.a, c.b)
		hb += r.distance(p1, p2) - r.distance(n1, n2)
		if r.weighted {
			hop += r.hopDistance(p1, p2) - r.hopDistance(n1, n2)
		}
		if wantFine {
			hf += fineDiff(dev, p1, p2) - fineDiff(dev, n1, n2)
		}
	}
	if !r.weighted {
		hop = hb
	}
	return hb, hop, hf
}

// score computes (or recomputes) the ranking key and hop-metric Hbasic of
// candidate c from the incidence lists.
func (s *scorer) score(c swapCand) (key [3]int, hop int) {
	r := s.r
	wantFine := !r.opts.DisableHfine && r.dev.HasCoords()
	hb, hop, hf := s.deltas(c, s.inc2q, wantFine)
	var hl int
	if len(r.lookSet) > 0 {
		hl, _, _ = s.deltas(c, s.incLook, false)
	}
	switch r.opts.RankMode {
	case RankFineFirst:
		key = [3]int{hb, hf, hl}
	case RankMixed:
		key = [3]int{2*hb + hl, hf, 0}
	default:
		key = [3]int{hb, hl, hf}
	}
	return key, hop
}

// pick returns the index into cands of the highest-priority candidate and
// its hop-metric Hbasic (the insertion-gate value), mirroring pickBest's
// ordering, lowest-edge tie-break and requireProgress filter exactly; -1
// when cands is empty (or, under requireProgress, none makes hop
// progress). Clean cached keys are reused; dirty ones are rescored in
// O(incident gates).
func (s *scorer) pick(cands []swapCand, requireProgress bool) (best, bestBasic int) {
	best = -1
	var bestKey [3]int
	for k, c := range cands {
		var key [3]int
		var hb int
		if s.keyValid[c.edge] {
			key, hb = s.keys[c.edge], s.hbs[c.edge]
		} else {
			key, hb = s.score(c)
			s.keys[c.edge], s.hbs[c.edge] = key, hb
			s.keyValid[c.edge] = true
		}
		if requireProgress && hb <= 0 {
			continue
		}
		better := best < 0
		if !better && key != bestKey {
			for i := 0; i < 3; i++ {
				if key[i] != bestKey[i] {
					better = key[i] > bestKey[i]
					break
				}
			}
		} else if !better {
			better = c.edge < cands[best].edge
		}
		if better {
			best, bestBasic, bestKey = k, hb, key
		}
	}
	return best, bestBasic
}
