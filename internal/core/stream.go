package core

import (
	"fmt"
	"sort"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/interrupt"
	"codar/internal/schedule"
)

// StreamResult summarizes a RemapStream run. The schedule itself went to
// the sink chunk by chunk; the concatenation of those chunks is exactly the
// Gates slice of the batch Remap schedule for the same input and options
// (the differential test grid pins this byte for byte).
type StreamResult struct {
	// NumQubits is the device qubit count (the schedule's qubit space).
	NumQubits int
	// NumClbits is the stream's classical-bit count.
	NumClbits int
	// Gates is the total number of scheduled gates flushed (input + SWAPs).
	Gates int
	// InitialLayout and FinalLayout are the logical→physical maps before
	// and after execution.
	InitialLayout *arch.Layout
	FinalLayout   *arch.Layout
	// SwapCount is the number of SWAPs inserted.
	SwapCount int
	// Makespan is the weighted depth of the output (quantum clock cycles).
	Makespan int
	// Cycles is the number of simulated scheduling iterations.
	Cycles int
	// ForcedSwaps counts deadlock-forced SWAP launches.
	ForcedSwaps int
	// DirectRoutes counts deadlock-escape shortest-path routings.
	DirectRoutes int
	// Chunks is the number of sink flushes.
	Chunks int
}

// streamBatch is the window refill granularity: enough gates that the
// engine runs many cycles between starvations, but still O(1) in the
// stream length. The scan window plus look-ahead is the context one front
// query needs; twice that (with a floor) keeps refills off the hot path.
func streamBatch(o Options) int {
	b := 2 * (o.window() + o.lookahead())
	if b < 1024 {
		b = 1024
	}
	return b
}

// streamCursor is the engine state that lives between starvation pauses:
// the simulated clock plus enough of the cycle-local state to resume a
// cycle that a starved front query interrupted without double-counting it.
type streamCursor struct {
	t           int
	launchedAny bool
	midCycle    bool
}

// streamRun is run (codar.go) with starvation pauses: any front query may
// abort with r.starved set when the buffered gates cannot fill the scan
// window or look-ahead set while the source is still open. The engine
// returns without mutating any further state; the driver refills the
// buffer and resumes. Because starvation strikes before any launch or SWAP
// decision is taken on the underfull context, the decision sequence is
// identical to a batch run over the whole circuit.
func (r *remapper) streamRun(cur *streamCursor) {
	t := cur.t
	for r.live > 0 {
		if r.exceeded {
			return
		}
		if err := r.check.Check(); err != nil {
			r.ctxErr = err
			return
		}
		launchedAny := false
		if cur.midCycle {
			// Resuming a cycle a starved query interrupted: keep its
			// launch flag and don't count it twice.
			launchedAny = cur.launchedAny
			cur.midCycle = false
		} else {
			r.cycles++
		}
		// Steps 1–2: launch every lock-free executable CF gate at t, to a
		// fixpoint (launching can expose new CF gates that are also free).
		for {
			launched := false
			front := r.computeFront()
			if r.starved {
				cur.t, cur.launchedAny, cur.midCycle = t, launchedAny, true
				return
			}
			for _, i := range front {
				if r.executable(i, t) {
					r.launchGate(i, t)
					launched = true
				}
			}
			if !launched {
				break
			}
			launchedAny = true
		}
		if r.live == 0 {
			if r.sourceOpen {
				// Unreachable while the starvation rule holds (the window
				// admit loop starves before the buffer can drain), but a
				// refill is always the safe answer.
				r.starved = true
				cur.t, cur.launchedAny, cur.midCycle = t, launchedAny, true
				return
			}
			break
		}

		// Step 3: greedy positive-priority SWAP insertion.
		front := r.computeFront()
		if r.starved {
			// The launch fixpoint just computed a complete front and
			// removals only shrink the window, so this query starving is
			// equally unreachable; pause defensively all the same.
			cur.t, cur.launchedAny, cur.midCycle = t, launchedAny, true
			return
		}
		inserted := r.insertSwaps(front, t)

		if launchedAny {
			r.streak = 0
		}
		free := r.allFree(t)
		if r.opts.checkEvents {
			if want := r.allFreeScan(t); free != want {
				panic(fmt.Sprintf("codar: allFree(%d) = %v, scan says %v", t, free, want))
			}
		}
		if !launchedAny && !inserted && free {
			r.streak++
			if r.streak >= r.opts.deadlockStreak() {
				r.directRoute(front, t)
				r.streak = 0
			} else {
				r.forceSwap(front, t)
			}
		}

		nt := r.nextEvent(t)
		if r.opts.checkEvents {
			if want := r.nextEventScan(t); nt != want {
				panic(fmt.Sprintf("codar: nextEvent(%d) = %d, scan says %d", t, nt, want))
			}
		}
		if nt > t {
			t = nt
		}
	}
	cur.t = t
}

// transplantFrom carries the dynamic engine state of the previous epoch's
// remapper into this one. The structures rebuilt per epoch — frontier,
// scorer, SoA, arena — are all functions of the buffered sequence and the
// carried state, so a fresh build over the compacted buffer reproduces
// them exactly (the scorer-equivalence and front-equivalence properties
// are what make "stateless-correct from current state" true).
func (r *remapper) transplantFrom(prev *remapper, carry []schedule.ScheduledGate) {
	r.initial = prev.initial
	copy(r.locks, prev.locks)
	r.lockHeap = prev.lockHeap
	r.makespan = prev.makespan
	r.swapCount = prev.swapCount
	r.cycles = prev.cycles
	r.forced = prev.forced
	r.routed = prev.routed
	r.streak = prev.streak
	r.asap = prev.asap
	r.exceeded = prev.exceeded
	r.check = prev.check
	r.ctxErr = prev.ctxErr
	r.out = append(r.out, carry...)
}

// RemapStream runs CODAR over a gate stream, holding only a bounded window
// of the circuit and the unsettled suffix of the schedule in memory, and
// flushing finalized schedule chunks to the sink as the simulated clock
// passes them. The gate stream must be lowered to the base gate set
// (circuit.NewDecomposeSource) and fit the device. Output is byte-identical
// to Remap over the materialized circuit: the engine starves — pauses for
// a refill — whenever a decision would otherwise see less context than the
// batch path, and a schedule entry is flushed only once no future launch
// can sort before it (emission start times never decrease, and equal
// starts keep emission order). Chunks are in final order: their
// concatenation is the batch schedule's Gates slice.
//
// Cancellation (Options.Ctx) and early abandon (Options.DepthBound) behave
// as in Remap, except the caller has already received flushed chunks —
// inherent to streaming; the sink owns what was flushed.
func RemapStream(src circuit.Source, dev *arch.Device, initial *arch.Layout, opts Options, sink schedule.Sink) (*StreamResult, error) {
	nl := src.NumQubits()
	if nl > dev.NumQubits {
		return nil, fmt.Errorf("codar: stream needs %d qubits but device %s has %d", nl, dev.Name, dev.NumQubits)
	}
	if !dev.Connected() {
		return nil, fmt.Errorf("codar: device %s is disconnected", dev.Name)
	}
	if initial == nil {
		initial = arch.NewTrivialLayout(nl, dev.NumQubits)
	}
	if initial.NumLogical() != nl || initial.NumPhysical() != dev.NumQubits {
		return nil, fmt.Errorf("codar: layout shape %d/%d does not match stream %d / device %d",
			initial.NumLogical(), initial.NumPhysical(), nl, dev.NumQubits)
	}
	if err := initial.Validate(); err != nil {
		return nil, fmt.Errorf("codar: %w", err)
	}
	if opts.Cost != nil {
		if err := opts.Cost.CompatibleWith(dev); err != nil {
			return nil, fmt.Errorf("codar: %w", err)
		}
	}
	if err := interrupt.Classify(opts.Ctx); err != nil {
		return nil, fmt.Errorf("codar: %w", err)
	}

	win := circuit.NewWindow(src, streamBatch(opts))
	if err := win.Fill(); err != nil {
		return nil, fmt.Errorf("codar: %w", err)
	}

	var (
		r               *remapper
		cur             streamCursor
		carry           []schedule.ScheduledGate
		keep            []int
		flushed, chunks int
	)
	for {
		// Build this epoch's engine over the buffered gates. The window
		// owns the gate slice; the assembly's SoA and the engine index into
		// it positionally, which is why eviction requires a rebuild.
		c := &circuit.Circuit{
			Name:      "stream",
			NumQubits: nl,
			NumClbits: win.NumClbits(),
			Gates:     win.Gates(),
		}
		nr := newRemapper(circuit.Assemble(c), dev, initial, opts)
		if r != nil {
			// Later epochs start from the evolved layout, not the initial.
			nr.layout = r.layout
			nr.transplantFrom(r, carry)
		}
		nr.sourceOpen = win.Open()
		r = nr

		r.streamRun(&cur)
		if r.ctxErr != nil {
			return nil, fmt.Errorf("codar: %w", r.ctxErr)
		}
		if r.exceeded {
			return nil, ErrDepthBound
		}
		if !r.starved {
			break
		}

		// Epoch boundary: flush the settled schedule prefix — every future
		// emission starts at or after cur.t, and an equal-start emission
		// sorts after entries with earlier starts and before entries with
		// later ones, so entries with Start <= cur.t are final.
		cut := sort.Search(len(r.out), func(k int) bool { return r.out[k].Start > cur.t })
		if cut > 0 {
			if err := sink.Flush(r.out[:cut:cut]); err != nil {
				return nil, fmt.Errorf("codar: sink: %w", err)
			}
			flushed += cut
			chunks++
		}
		carry = r.out[cut:]

		// Evict executed gates from the window and pull the next batch.
		keep = keep[:0]
		for i := r.head; i >= 0; i = r.next[i] {
			keep = append(keep, i)
		}
		win.Compact(keep)
		if err := win.Fill(); err != nil {
			return nil, fmt.Errorf("codar: %w", err)
		}
	}

	if len(r.out) > 0 {
		if err := sink.Flush(r.out); err != nil {
			return nil, fmt.Errorf("codar: sink: %w", err)
		}
		flushed += len(r.out)
		chunks++
	}
	return &StreamResult{
		NumQubits:     dev.NumQubits,
		NumClbits:     win.NumClbits(),
		Gates:         flushed,
		InitialLayout: r.initial,
		FinalLayout:   r.layout.Clone(),
		SwapCount:     r.swapCount,
		Makespan:      r.makespan,
		Cycles:        r.cycles,
		ForcedSwaps:   r.forced,
		DirectRoutes:  r.routed,
		Chunks:        chunks,
	}, nil
}
