package core

import (
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/sabre"
	"codar/internal/workloads"
)

// zeroCost builds a calibration-weighted metric with every weight zero —
// exactly what calib.Snapshot.CostModel produces for a perfect device (or
// lambda < 0). Remap under it must be byte-identical to Remap without a
// cost model: the metric is CostScale times the hop matrix, and a uniform
// positive scaling of Hbasic/Hlook preserves every comparison, every tie and
// the Hbasic > 0 insertion gate.
func zeroCost(t testing.TB, dev *arch.Device) *arch.CostModel {
	t.Helper()
	cm, err := arch.NewCostModel(dev, make([]float64, len(dev.Edges)))
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestRemapIdenticalWithZeroCalibrationFig8Matrix pins the zero-calibration
// guarantee on the full Fig 8 device × workload matrix: every evaluation
// device, every eligible suite benchmark, shared SABRE initial layouts —
// the exact runs behind the four pinned avg-speedups.
func TestRemapIdenticalWithZeroCalibrationFig8Matrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 8 matrix in -short mode")
	}
	for _, dev := range arch.EvaluationDevices() {
		cm := zeroCost(t, dev)
		for _, b := range workloads.Suite() {
			if b.Qubits > 16 && dev.NumQubits < 54 {
				continue // mirror the Fig 8 eligibility filter
			}
			if b.Qubits > dev.NumQubits {
				continue
			}
			c := b.Circuit()
			initial, err := sabre.InitialLayout(c, dev, 1, sabre.Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, dev.Name, err)
			}
			plain, err := Remap(c, dev, initial, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, dev.Name, err)
			}
			calibrated, err := Remap(c, dev, initial, Options{Cost: cm})
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, dev.Name, err)
			}
			if err := resultsIdentical(calibrated, plain); err != nil {
				t.Fatalf("%s on %s: zero-calibration output diverges: %v", b.Name, dev.Name, err)
			}
		}
	}
}

// TestRemapIdenticalWithZeroCalibrationProperty randomises circuits, devices
// and option variants (every rank mode reads the scaled Hbasic differently).
func TestRemapIdenticalWithZeroCalibrationProperty(t *testing.T) {
	devices := propDevices()
	optGrid := []Options{
		{},
		{naiveScore: true},
		{naiveFront: true},
		{RankMode: RankFineFirst},
		{RankMode: RankMixed},
		{Lookahead: -1},
		{DisableHfine: true},
		{DeadlockStreak: 1},
	}
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		opts := optGrid[int(uint64(seed>>8)%uint64(len(optGrid)))]
		qubits := dev.NumQubits
		if qubits > 6 {
			qubits = 6
		}
		c := randCircuit(seed, qubits, 60)
		plain, err := Remap(c, dev, nil, opts)
		if err != nil {
			t.Logf("plain: %v", err)
			return false
		}
		withCost := opts
		withCost.Cost = zeroCost(t, dev)
		calibrated, err := Remap(c, dev, nil, withCost)
		if err != nil {
			t.Logf("calibrated: %v", err)
			return false
		}
		if err := resultsIdentical(calibrated, plain); err != nil {
			t.Logf("opts %+v on %s: %v", opts, dev.Name, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCalibratedRemapIdenticalToNaiveScore extends the delta-scorer
// equivalence property to genuinely weighted metrics: with a non-uniform
// cost model attached, the scorer's cached keys, hop-gate values and
// requireProgress filter must reproduce pickBest's selection exactly.
func TestCalibratedRemapIdenticalToNaiveScore(t *testing.T) {
	devices := propDevices()
	optGrid := []Options{
		{},
		{naiveFront: true},
		{RankMode: RankFineFirst},
		{RankMode: RankMixed},
		{Lookahead: -1},
		{DeadlockStreak: 1, checkEvents: true},
	}
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		opts := optGrid[int(uint64(seed>>8)%uint64(len(optGrid)))]
		// Deterministic non-uniform weights spread over [0, 2.5] hops.
		weights := make([]float64, len(dev.Edges))
		ws := uint64(seed)*2654435761 + 12345
		for i := range weights {
			ws ^= ws << 13
			ws ^= ws >> 7
			ws ^= ws << 17
			weights[i] = float64(ws%256) / 100
		}
		cm, err := arch.NewCostModel(dev, weights)
		if err != nil {
			t.Logf("cost model: %v", err)
			return false
		}
		opts.Cost = cm
		qubits := dev.NumQubits
		if qubits > 6 {
			qubits = 6
		}
		c := randCircuit(seed, qubits, 60)
		delta, err := Remap(c, dev, nil, opts)
		if err != nil {
			t.Logf("delta: %v", err)
			return false
		}
		naive := opts
		naive.naiveScore = true
		ref, err := Remap(c, dev, nil, naive)
		if err != nil {
			t.Logf("naive: %v", err)
			return false
		}
		if err := resultsIdentical(delta, ref); err != nil {
			t.Logf("opts %+v on %s: %v", opts, dev.Name, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRemapRejectsForeignCostModel: a metric built for another device is a
// configuration error, not a silent misroute.
func TestRemapRejectsForeignCostModel(t *testing.T) {
	cm := zeroCost(t, arch.Linear(5))
	c := randCircuit(1, 4, 10)
	if _, err := Remap(c, arch.Ring(5), nil, Options{Cost: cm}); err == nil {
		t.Error("Remap accepted a cost model for a different device")
	}
}

// TestCalibratedRoutingAvoidsBadCoupler: a minimal behavioural check that a
// non-zero calibration actually changes routing. On a 6-ring with one very
// expensive edge on the short arc, the blocked CX must be routed over the
// clean long arc.
func TestCalibratedRoutingAvoidsBadCoupler(t *testing.T) {
	dev := arch.Ring(6)
	weights := make([]float64, len(dev.Edges))
	id, ok := dev.EdgeIndex(1, 2)
	if !ok {
		t.Fatal("ring(6) missing edge (1,2)")
	}
	weights[id] = 8
	cm, err := arch.NewCostModel(dev, weights)
	if err != nil {
		t.Fatal(err)
	}
	c := randCircuit(3, 6, 0)
	c.CX(0, 3)
	plain, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calibrated, err := Remap(c, dev, nil, Options{Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	usesBadEdge := func(r *Result) bool {
		for _, sg := range r.Schedule.Gates {
			q := sg.Gate.Qubits
			if len(q) == 2 {
				a, b := q[0], q[1]
				if (a == 1 && b == 2) || (a == 2 && b == 1) {
					return true
				}
			}
		}
		return false
	}
	if !usesBadEdge(plain) {
		t.Skip("uncalibrated route avoided (1,2) by tie-break; nothing to compare")
	}
	if usesBadEdge(calibrated) {
		t.Error("calibrated routing still crosses the expensive coupler")
	}
}
