package core

import "codar/internal/arch"

// Heuristic cost function ⟨Hbasic, Hfine⟩ (paper §IV-D).
//
// Hbasic (Eq. 1) measures how much a candidate SWAP reduces the summed
// coupling-graph distance of every two-qubit gate in the commutative front:
//
//	Hbasic = Σ_{g∈ICF} L(π, g) − L(π_new, g)
//
// Hfine (Eq. 2) breaks Hbasic ties on 2-D lattices by preferring layouts
// where the remaining gates have balanced horizontal/vertical distance,
// which preserves more shortest routing paths:
//
//	Hfine = −Σ_{g∈ICF} |VD(π_new, g) − HD(π_new, g)|
//
// The paper states Eq. 2 for a single gate g; we sum over the front, which
// reduces to the paper's form when one gate is blocked and generalises
// consistently otherwise (constant terms cancel when comparing candidates).

// swapCand is a candidate SWAP on a physical coupler.
type swapCand struct {
	a, b int // physical qubits, a < b
	edge int // stable edge index for deterministic tie-breaking
}

// collectCandidates gathers the lock-free coupler SWAPs adjacent to the
// operands of every blocked (distance > 1) two-qubit CF gate (§IV-C step 3,
// the Fig 5 procedure). Requiring the gate-side qubit to be free matches
// the paper: a SWAP is a candidate only if the whole edge is lock-free.
// The candidate buffer and the edge-dedup stamps are reused across cycles:
// an edge is "seen" this call when its stamp equals the current epoch, so
// clearing costs nothing and the hot loop allocates only on first growth.
func (r *remapper) collectCandidates(front []int, t int) []swapCand {
	if r.edgeStamp == nil {
		r.edgeStamp = make([]int32, len(r.dev.Edges))
		r.edgeEpoch = 0
	}
	r.edgeEpoch++
	epoch := r.edgeEpoch
	cands := r.cands[:0]
	for _, i := range front {
		if !r.soa.Is2Q[i] {
			continue
		}
		q1, q2 := r.soa.Pair(i)
		p1 := r.layout.Phys(q1)
		p2 := r.layout.Phys(q2)
		if r.dev.Distance(p1, p2) <= 1 {
			continue // already executable; only locks are in the way
		}
		for _, side := range [2]int{p1, p2} {
			if r.locks[side] > t {
				continue
			}
			for _, nb := range r.dev.Neighbors(side) {
				if r.locks[nb] > t {
					continue
				}
				a, b := side, nb
				if a > b {
					a, b = b, a
				}
				id, _ := r.dev.EdgeIndex(a, b)
				if r.edgeStamp[id] == epoch {
					continue
				}
				r.edgeStamp[id] = epoch
				cands = append(cands, swapCand{a: a, b: b, edge: id})
			}
		}
	}
	r.cands = cands
	return cands
}

// distance is the metric the SWAP heuristics rank candidates with: hop
// distance by default, the calibration-weighted metric under Options.Cost.
// Structural blocked/adjacent checks keep using dev.Distance/dev.Adjacent —
// the metric only changes which routes look cheap, never what is executable.
func (r *remapper) distance(a, b int) int { return int(r.distTab[a*r.nq+b]) }

// hopDistance is the unweighted coupling-graph distance, the metric of the
// Hbasic > 0 insertion gate (see remapper.hopTab).
func (r *remapper) hopDistance(a, b int) int { return int(r.hopTab[a*r.nq+b]) }

// swappedPhys returns where physical qubit p ends up under a SWAP of (a, b).
func swappedPhys(p, a, b int) int {
	switch p {
	case a:
		return b
	case b:
		return a
	default:
		return p
	}
}

// hBasic computes Eq. 1 for a candidate over the two-qubit front gates,
// under the ranking metric (tab = r.distTab) or the hop metric
// (tab = r.hopTab).
func (r *remapper) hBasic(c swapCand, front2q []int, tab []int32) int {
	sum := 0
	for _, i := range front2q {
		g := r.gates[i]
		p1 := r.layout.Phys(g.Qubits[0])
		p2 := r.layout.Phys(g.Qubits[1])
		if p1 != c.a && p1 != c.b && p2 != c.a && p2 != c.b {
			continue // distance unchanged
		}
		oldD := int(tab[p1*r.nq+p2])
		n1, n2 := swappedPhys(p1, c.a, c.b), swappedPhys(p2, c.a, c.b)
		sum += oldD - int(tab[n1*r.nq+n2])
	}
	return sum
}

// fineDiff is the per-gate Eq. 2 term |VD − HD| between two physical
// qubits.
func fineDiff(dev *arch.Device, p1, p2 int) int {
	diff := dev.VD(p1, p2) - dev.HD(p1, p2)
	if diff < 0 {
		diff = -diff
	}
	return diff
}

// hFine computes Eq. 2 for a candidate over the two-qubit front gates.
// Devices without lattice coordinates score 0 (ties then break by edge
// index).
func (r *remapper) hFine(c swapCand, front2q []int) int {
	if r.opts.DisableHfine || !r.dev.HasCoords() {
		return 0
	}
	sum := 0
	for _, i := range front2q {
		g := r.gates[i]
		p1 := swappedPhys(r.layout.Phys(g.Qubits[0]), c.a, c.b)
		p2 := swappedPhys(r.layout.Phys(g.Qubits[1]), c.a, c.b)
		sum -= fineDiff(r.dev, p1, p2)
	}
	return sum
}

// hLook scores a candidate against the look-ahead set (the next
// Options.Lookahead two-qubit gates beyond the front), the same
// distance-reduction sum as Hbasic. It never influences whether a SWAP is
// inserted — only which of several equal-Hbasic SWAPs wins — so the
// paper's insertion policy is preserved exactly (see DESIGN.md §4).
func (r *remapper) hLook(c swapCand) int {
	return r.hBasic(c, r.lookSet, r.distTab)
}

// pickBest returns the index into cands of the candidate with the highest
// priority under the configured RankMode (default ⟨Hbasic, Hlook, Hfine⟩),
// breaking remaining ties by the lowest edge index; -1 when cands is
// empty. The returned Hbasic is the winner's hop-metric Eq. 1 value, which
// still gates insertion (Hbasic > 0) exactly as in the paper — under a
// calibrated metric ranking and gating deliberately split (DESIGN.md §8).
// requireProgress (insertSwaps on calibrated runs only, so the uncalibrated
// selection stays byte-identical) drops candidates without positive hop
// progress before ranking: a "lateral" fidelity move outranking every real
// candidate must lose to the best progress-making one, not veto the round.
func (r *remapper) pickBest(cands []swapCand, front2q []int, requireProgress bool) (best, bestBasic, bestFine int) {
	best = -1
	var key, bestKey [3]int
	for k, c := range cands {
		hb := r.hBasic(c, front2q, r.distTab)
		hbHop := hb
		if r.weighted {
			hbHop = r.hBasic(c, front2q, r.hopTab)
		}
		if requireProgress && hbHop <= 0 {
			continue
		}
		var hl, hf int
		if len(r.lookSet) > 0 {
			hl = r.hLook(c)
		}
		if !r.opts.DisableHfine {
			hf = r.hFine(c, front2q)
		}
		switch r.opts.RankMode {
		case RankFineFirst:
			key = [3]int{hb, hf, hl}
		case RankMixed:
			key = [3]int{2*hb + hl, hf, 0}
		default:
			key = [3]int{hb, hl, hf}
		}
		better := best < 0
		if !better {
			for i := 0; i < 3; i++ {
				if key[i] != bestKey[i] {
					better = key[i] > bestKey[i]
					goto decided
				}
			}
			better = c.edge < cands[best].edge
		decided:
		}
		if better {
			best, bestBasic, bestFine, bestKey = k, hbHop, hf, key
		}
	}
	return best, bestBasic, bestFine
}

// insertSwaps implements §IV-C step 3: repeatedly select the
// highest-priority candidate SWAP and launch it at time t while a candidate
// with positive Hbasic remains. Launching a SWAP locks its qubits, which
// retires every candidate touching them; the scores of the survivors are
// re-evaluated against the updated layout each round — by the delta scorer
// (scorer.go) by default, which rescores only the candidates a launch
// actually perturbed, or from scratch by pickBest under the test-only
// naiveScore option. Reports whether any SWAP launched.
func (r *remapper) insertSwaps(front []int, t int) bool {
	front2q := r.frontTwoQubit(front)
	if len(front2q) == 0 {
		return false
	}
	cands := r.collectCandidates(front, t)
	if r.sc != nil {
		r.sc.sync()
	}
	inserted := false
	// On calibrated runs selection is restricted to hop-progress candidates
	// (requireProgress): a lateral fidelity move that outranks every real
	// candidate must lose to the best progress-making one, not veto the
	// round. Uncalibrated runs rank everything and gate on the winner — the
	// paper-exact pinned behaviour — and so does RankMixed even when
	// calibrated: its blended key 2·Hbasic+Hlook deliberately lets the
	// look-ahead outvote front progress, so pre-filtering would change its
	// zero-calibration output (the equivalence grids pin this).
	req := r.weighted && r.opts.RankMode != RankMixed
	for len(cands) > 0 {
		var best, hb int
		if r.sc != nil {
			best, hb = r.sc.pick(cands, req)
		} else {
			best, hb, _ = r.pickBest(cands, front2q, req)
		}
		if best < 0 || hb <= 0 {
			break
		}
		c := cands[best]
		r.launchSwap(c.a, c.b, t)
		inserted = true
		// Drop candidates whose qubits are now locked.
		live := cands[:0]
		for _, cc := range cands {
			if r.locks[cc.a] <= t && r.locks[cc.b] <= t {
				live = append(live, cc)
			}
		}
		cands = live
	}
	return inserted
}

// forceSwap is the paper's deadlock move: launch the single
// highest-priority candidate regardless of Hbasic sign.
func (r *remapper) forceSwap(front []int, t int) {
	front2q := r.frontTwoQubit(front)
	cands := r.collectCandidates(front, t)
	var best int
	if r.sc != nil {
		r.sc.sync()
		best, _ = r.sc.pick(cands, false)
	} else {
		best, _, _ = r.pickBest(cands, front2q, false)
	}
	if best < 0 {
		return
	}
	r.launchSwap(cands[best].a, cands[best].b, t)
	r.forced++
}
