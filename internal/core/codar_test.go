package core

import (
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
)

// ring4 is the 4-qubit coupling map of the paper's Fig 1/Fig 2 motivating
// examples: Q0 and Q3 are non-adjacent, and the four candidate SWAP pairs
// for CX q0,q3 are (Q0,Q1), (Q0,Q2), (Q3,Q1), (Q3,Q2).
func ring4(t *testing.T) *arch.Device {
	t.Helper()
	d, err := arch.NewDevice("fig-ring4", 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustRemap(t *testing.T, c *circuit.Circuit, dev *arch.Device, initial *arch.Layout, opts Options) *Result {
	t.Helper()
	res, err := Remap(c, dev, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(dev.Durations); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	checkCompliant(t, res, dev)
	return res
}

// checkCompliant asserts every two-qubit gate of the output acts on a
// coupled pair.
func checkCompliant(t *testing.T, res *Result, dev *arch.Device) {
	t.Helper()
	for _, sg := range res.Schedule.Gates {
		g := sg.Gate
		if g.Op.TwoQubit() && !dev.Adjacent(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("output gate %v on uncoupled pair", g)
		}
	}
}

// TestFig1ContextSensitivity pins the paper's first motivating example:
// program "T q2; CX q0,q3" on the 4-qubit map. The SWAP must avoid busy Q2
// (launch at cycle 0 on an edge not touching Q2), giving makespan 8 instead
// of the serialised 9.
func TestFig1ContextSensitivity(t *testing.T) {
	dev := ring4(t)
	c := circuit.New(4)
	c.T(2)
	c.CX(0, 3)
	res := mustRemap(t, c, dev, nil, Options{})

	if res.SwapCount != 1 {
		t.Fatalf("SwapCount = %d, want 1", res.SwapCount)
	}
	var swap schedule.ScheduledGate
	for _, sg := range res.Schedule.Gates {
		if sg.Gate.Op == circuit.OpSwap {
			swap = sg
		}
	}
	for _, q := range swap.Gate.Qubits {
		if q == 2 {
			t.Errorf("SWAP %v conflicts with the contextual T on Q2", swap.Gate)
		}
	}
	if swap.Start != 0 {
		t.Errorf("SWAP starts at %d, want 0 (parallel with T q2)", swap.Start)
	}
	if res.Makespan != 8 {
		t.Errorf("makespan = %d, want 8 (SWAP 6 + CX 2)", res.Makespan)
	}
}

// TestFig2DurationAwareness pins the second motivating example: with
// τ(T)=1 and τ(CX)=2, the SWAP between Q3 and Q1 can start at cycle 1 —
// right after "T q1" — while "CX q0,q2" is still running.
func TestFig2DurationAwareness(t *testing.T) {
	dev := ring4(t)
	c := circuit.New(4)
	c.T(1)
	c.CX(0, 2)
	c.CX(0, 3)
	res := mustRemap(t, c, dev, nil, Options{})

	if res.SwapCount != 1 {
		t.Fatalf("SwapCount = %d, want 1", res.SwapCount)
	}
	var swap schedule.ScheduledGate
	for _, sg := range res.Schedule.Gates {
		if sg.Gate.Op == circuit.OpSwap {
			swap = sg
		}
	}
	if !(swap.Gate.On(1) && swap.Gate.On(3)) {
		t.Errorf("SWAP on %v, want Q1,Q3 (the only lock-free edge at cycle 1)", swap.Gate.Qubits)
	}
	if swap.Start != 1 {
		t.Errorf("SWAP starts at %d, want 1 (duration-aware launch)", swap.Start)
	}
	if res.Makespan != 9 {
		t.Errorf("makespan = %d, want 9 (Fig 2(d) timeline)", res.Makespan)
	}
}

// TestFig7WorkedExample reproduces §IV-E end to end: a 6-qubit device with
// gates CX q0,q2; T q1; CX q0,q3. CODAR must keep the mapping unchanged at
// cycle 0 (the only free SWAP has negative Hbasic), then launch SWAP Q1,Q3
// at cycle 1 once Q1 frees, setting its locks to 7.
func TestFig7WorkedExample(t *testing.T) {
	// 2×3 lattice arranged so that q0-q2 couple (as in the figure):
	//   Q0 - Q2 - Q4
	//    |    |    |
	//   Q1 - Q3 - Q5
	dev, err := arch.NewDevice("fig7", 6, [][2]int{
		{0, 2}, {2, 4}, {1, 3}, {3, 5}, {0, 1}, {2, 3}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(6)
	c.CX(0, 2)
	c.T(1)
	c.CX(0, 3)
	res := mustRemap(t, c, dev, nil, Options{})

	if res.SwapCount != 1 {
		t.Fatalf("SwapCount = %d, want 1", res.SwapCount)
	}
	byOp := map[circuit.Op][]schedule.ScheduledGate{}
	for _, sg := range res.Schedule.Gates {
		byOp[sg.Gate.Op] = append(byOp[sg.Gate.Op], sg)
	}
	// Cycle 0: CX q0,q2 and T q1 launch together.
	if byOp[circuit.OpT][0].Start != 0 {
		t.Errorf("T starts at %d, want 0", byOp[circuit.OpT][0].Start)
	}
	if byOp[circuit.OpCX][0].Start != 0 {
		t.Errorf("first CX starts at %d, want 0", byOp[circuit.OpCX][0].Start)
	}
	// Cycle 1: SWAP Q1,Q3 launches (Q1 freed by T; Q2 still busy).
	swap := byOp[circuit.OpSwap][0]
	if !(swap.Gate.On(1) && swap.Gate.On(3)) {
		t.Errorf("SWAP on %v, want Q1,Q3", swap.Gate.Qubits)
	}
	if swap.Start != 1 || swap.End() != 7 {
		t.Errorf("SWAP spans [%d,%d), want [1,7)", swap.Start, swap.End())
	}
	// The blocked CX then runs on (Q0, Q1) at cycle 7.
	last := byOp[circuit.OpCX][1]
	if last.Start != 7 {
		t.Errorf("second CX starts at %d, want 7", last.Start)
	}
	if !(last.Gate.On(0) && last.Gate.On(1)) {
		t.Errorf("second CX on %v, want Q0,Q1", last.Gate.Qubits)
	}
	if res.Makespan != 9 {
		t.Errorf("makespan = %d, want 9", res.Makespan)
	}
}

// TestFig6HfinePrefersBalancedRoutes checks Eq. 2: among SWAPs with equal
// Hbasic on a lattice, CODAR picks the one balancing horizontal and
// vertical distance of the blocked gate.
func TestFig6HfinePrefersBalancedRoutes(t *testing.T) {
	dev := arch.Grid("g33", 3, 3)
	// Logical a on P0=(0,0), logical b on P7=(2,1): distance 3, HD=1, VD=2.
	// Moving a right to P1=(0,1) gives distance 2 but |VD-HD| = 2.
	// Moving a down to P3=(1,0) gives distance 2 and |VD-HD| = 0.
	c := circuit.New(8)
	c.CX(0, 7)
	layout := arch.NewTrivialLayout(8, 9)

	res := mustRemap(t, c, dev, layout, Options{})
	first := res.Schedule.Gates[0]
	if first.Gate.Op != circuit.OpSwap || !(first.Gate.On(0) && first.Gate.On(3)) {
		t.Errorf("with Hfine: first swap = %v, want SWAP Q0,Q3 (balanced)", first.Gate)
	}

	// Ablation: without Hfine the tie breaks by edge index, picking (0,1).
	res2 := mustRemap(t, c, dev, layout, Options{DisableHfine: true})
	first2 := res2.Schedule.Gates[0]
	if first2.Gate.Op != circuit.OpSwap || !(first2.Gate.On(0) && first2.Gate.On(1)) {
		t.Errorf("without Hfine: first swap = %v, want SWAP Q0,Q1 (edge order)", first2.Gate)
	}
}

// TestCommutativityExposesParallelism pins §IV-B: in "CX q1,q3; CX q2,q3"
// both gates are CF, so with both pairs coupled they launch at the...
// they share q3, so the second starts when q3 frees — but commutativity
// matters when the FIRST is blocked: here CX q1,q3 needs routing while
// CX q2,q3 is directly executable. With commutativity the second launches
// immediately; without it, it waits for the first.
func TestCommutativityExposesParallelism(t *testing.T) {
	// Line: Q1 - Q2 - Q3, plus Q0 isolated-ish via Q1.
	dev := arch.Linear(4) // 0-1-2-3
	c := circuit.New(4)
	c.CX(0, 2) // blocked: distance 2
	c.CX(1, 2) // commutes with the first (shared target q2), executable
	res := mustRemap(t, c, dev, nil, Options{})
	// The directly executable CX q1,q2 must start at cycle 0.
	foundEarly := false
	for _, sg := range res.Schedule.Gates {
		if sg.Gate.Op == circuit.OpCX && sg.Start == 0 {
			foundEarly = true
		}
	}
	if !foundEarly {
		t.Error("commutative CX should launch at cycle 0")
	}

	// Ablation: with commutativity disabled the second CX cannot start at 0.
	res2 := mustRemap(t, c, dev, nil, Options{DisableCommutativity: true})
	for _, sg := range res2.Schedule.Gates {
		if sg.Gate.Op == circuit.OpCX && sg.Start == 0 {
			t.Error("without commutativity no CX should launch at cycle 0")
		}
	}
	if res2.Makespan < res.Makespan {
		t.Errorf("commutativity should not hurt: %d vs %d", res.Makespan, res2.Makespan)
	}
}

func TestCompliantCircuitNeedsNoSwaps(t *testing.T) {
	dev := arch.Linear(4)
	c := circuit.New(4).H(0).CX(0, 1).CX(1, 2).CX(2, 3).T(3)
	res := mustRemap(t, c, dev, nil, Options{})
	if res.SwapCount != 0 {
		t.Errorf("SwapCount = %d, want 0", res.SwapCount)
	}
	// Makespan equals the plain ASAP makespan of the input.
	want := schedule.ASAP(c, dev.Durations).Makespan
	if res.Makespan != want {
		t.Errorf("makespan = %d, want %d", res.Makespan, want)
	}
	if !res.FinalLayout.Equal(res.InitialLayout) {
		t.Error("layout must be unchanged without swaps")
	}
}

func TestEmptyCircuit(t *testing.T) {
	dev := arch.Linear(3)
	res := mustRemap(t, circuit.New(3), dev, nil, Options{})
	if res.Makespan != 0 || len(res.Schedule.Gates) != 0 {
		t.Error("empty circuit should produce an empty schedule")
	}
}

func TestSingleQubitOnlyCircuit(t *testing.T) {
	dev := arch.Ring(5)
	c := circuit.New(5).H(0).T(1).X(2).RZ(0.5, 3).H(4).T(0)
	res := mustRemap(t, c, dev, nil, Options{})
	if res.SwapCount != 0 {
		t.Errorf("SwapCount = %d, want 0", res.SwapCount)
	}
	if res.Makespan != 2 { // h q0 then t q0
		t.Errorf("makespan = %d, want 2", res.Makespan)
	}
}

func TestRemapErrors(t *testing.T) {
	dev := arch.Linear(3)
	// Too many qubits.
	if _, err := Remap(circuit.New(5), dev, nil, Options{}); err == nil {
		t.Error("oversized circuit accepted")
	}
	// Non-lowered input.
	c := circuit.New(3).CCX(0, 1, 2)
	if _, err := Remap(c, dev, nil, Options{}); err == nil {
		t.Error("compound gate accepted")
	}
	// Mismatched layout.
	l := arch.NewTrivialLayout(2, 3)
	if _, err := Remap(circuit.New(3).H(0), dev, l, Options{}); err == nil {
		t.Error("mismatched layout accepted")
	}
	// Disconnected device.
	split, _ := arch.NewDevice("split", 4, [][2]int{{0, 1}, {2, 3}})
	if _, err := Remap(circuit.New(2).CX(0, 1), split, nil, Options{}); err == nil {
		t.Error("disconnected device accepted")
	}
	// Invalid circuit.
	bad := &circuit.Circuit{NumQubits: 2, Gates: []circuit.Gate{circuit.New2Q(circuit.OpCX, 0, 7)}}
	if _, err := Remap(bad, dev, nil, Options{}); err == nil {
		t.Error("invalid circuit accepted")
	}
}

func TestInitialLayoutRespected(t *testing.T) {
	dev := arch.Linear(4)
	// Map logical 0 -> physical 3, logical 1 -> physical 2: adjacent, no
	// swaps needed even though logical indices are far apart physically.
	l, err := arch.NewLayout([]int{3, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(2).CX(0, 1)
	res := mustRemap(t, c, dev, l, Options{})
	if res.SwapCount != 0 {
		t.Errorf("SwapCount = %d, want 0", res.SwapCount)
	}
	g := res.Schedule.Gates[0].Gate
	if !(g.On(3) && g.On(2)) {
		t.Errorf("CX mapped to %v, want physical (3,2)", g.Qubits)
	}
}

func TestMeasureAndBarrierFlow(t *testing.T) {
	dev := arch.Linear(3)
	c := circuit.New(3).H(0).CX(0, 1).Barrier(0, 1, 2).Measure(0, 0).Measure(1, 1)
	res := mustRemap(t, c, dev, nil, Options{})
	nMeasure, nBarrier := 0, 0
	for _, sg := range res.Schedule.Gates {
		switch sg.Gate.Op {
		case circuit.OpMeasure:
			nMeasure++
		case circuit.OpBarrier:
			nBarrier++
			if sg.Duration != 0 {
				t.Error("barrier should take zero cycles")
			}
		}
	}
	if nMeasure != 2 || nBarrier != 1 {
		t.Errorf("measure/barrier counts = %d/%d", nMeasure, nBarrier)
	}
	// Measures must come after the barrier's start (which follows CX end).
	for _, sg := range res.Schedule.Gates {
		if sg.Gate.Op == circuit.OpMeasure && sg.Start < 3 {
			t.Errorf("measure at %d precedes barrier sync at 3", sg.Start)
		}
	}
}

func TestLongDistanceRouting(t *testing.T) {
	dev := arch.Linear(8)
	c := circuit.New(8).CX(0, 7)
	res := mustRemap(t, c, dev, nil, Options{})
	if res.SwapCount < 3 {
		t.Errorf("SwapCount = %d, want >= 3 for distance 7", res.SwapCount)
	}
	// Exactly one CX in the output, on an adjacent pair.
	n := 0
	for _, sg := range res.Schedule.Gates {
		if sg.Gate.Op == circuit.OpCX {
			n++
		}
	}
	if n != 1 {
		t.Errorf("CX count = %d, want 1", n)
	}
}

func TestResultDiagnostics(t *testing.T) {
	dev := arch.Linear(5)
	c := circuit.New(5).CX(0, 4).CX(1, 3)
	res := mustRemap(t, c, dev, nil, Options{})
	if res.Cycles <= 0 {
		t.Error("Cycles should be positive")
	}
	if res.Makespan != res.Schedule.Makespan {
		t.Error("Makespan mismatch between Result and Schedule")
	}
	if res.Circuit.Len() != len(res.Schedule.Gates) {
		t.Error("Circuit/Schedule length mismatch")
	}
}

func TestFinalLayoutTracksSwaps(t *testing.T) {
	dev := arch.Linear(3)
	c := circuit.New(3).CX(0, 2)
	res := mustRemap(t, c, dev, nil, Options{})
	if res.SwapCount == 0 {
		t.Fatal("expected at least one swap")
	}
	if err := res.FinalLayout.Validate(); err != nil {
		t.Error(err)
	}
	if res.FinalLayout.Equal(res.InitialLayout) {
		t.Error("final layout should differ after swaps")
	}
	// Replaying the swaps over the initial layout must yield FinalLayout.
	replay := res.InitialLayout.Clone()
	for _, sg := range res.Schedule.Gates {
		if sg.Gate.Op == circuit.OpSwap {
			replay.SwapPhysical(sg.Gate.Qubits[0], sg.Gate.Qubits[1])
		}
	}
	if !replay.Equal(res.FinalLayout) {
		t.Error("swap replay does not reproduce FinalLayout")
	}
}
