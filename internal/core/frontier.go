package core

import "codar/internal/circuit"

// frontier is the incremental commutative-front engine. The naive approach
// (front.go, kept as the reference implementation) rescans the first
// `window` remaining gates and re-runs every pairwise Commute check on each
// query — three times per simulated cycle — which profiles at ~80% of a
// Fig 8 sweep. The frontier instead owns the per-qubit seen-chains across
// cycles and exploits two monotonicity facts:
//
//   - Gates are only ever removed from the remaining sequence, never
//     reordered or inserted, so a gate's predecessor set only shrinks and
//     CF membership can flip false→true but never true→false.
//   - Removing a gate can only change the membership of gates sharing one
//     of its qubits, so after a launch only the launched gate's qubits need
//     re-examination (dirty-qubit tracking).
//
// Each query therefore: (1) re-evaluates the cached-blocked gates on dirty
// qubit chains, (2) admits gates that slid into the scan window, computing
// their membership once, and (3) assembles the front (and look-ahead set)
// from cached membership bits with a window walk that does no commutation
// work at all. A per-gate first-blocker cache short-circuits step 1 — a
// blocked gate is re-scanned only when the specific gate blocking it
// retires — and a pair-verdict memo keyed by gate indices (gates are
// immutable, so verdicts never expire) absorbs the repeated CX/CX checks
// that survive the op-pair classification table in circuit.CommuteClass.
type frontier struct {
	r      *remapper
	window int

	// Static gate metadata, aliased from the remapper's shared SoA view.
	// Slot s is one (gate, operand) incidence; gate i owns slots
	// [slotOff[i], slotOff[i+1]).
	slotOff  []int32
	slotGate []int32
	is2q     []bool
	ops      []circuit.Op

	// Per-qubit chains over the in-window gates, in sequence order,
	// linked by slot index.
	qhead, qtail         []int32
	chainNext, chainPrev []int32

	// Window state: the window covers the first winCount live gates;
	// winTail is the last of them (-1 when empty). cfCount tracks how many
	// in-window gates are CF members, letting the assembly walk stop as
	// soon as the front (and look-ahead set) are complete instead of
	// visiting the whole window.
	inWindow []bool
	winTail  int
	winCount int
	cfCount  int

	// Cached membership. blocker[i] is a gate currently known not to
	// commute with i (-1 when i is in the CF); while it stays live, i
	// stays blocked and needs no re-scan.
	inCF    []bool
	blocker []int32
	removed []bool

	// Dirty-qubit queue between queries.
	qDirty bitset
	dirtyQ []int32

	// frontValid marks the assembled r.front/r.lookSet as current: only a
	// removal (or first use) invalidates it — SWAPs change the layout, not
	// the logical sequence the front is defined over.
	frontValid bool
}

// bitset marks qubits; paired with an explicit position list (dirtyQ) so
// clearing costs O(set bits), not O(qubits).
type bitset []bool

func newFrontier(r *remapper, numQubits int) *frontier {
	n := len(r.gates)
	f := &frontier{
		r:        r,
		window:   r.opts.window(),
		slotOff:  r.soa.QOff,
		slotGate: r.soa.SlotGate,
		is2q:     r.soa.Is2Q,
		ops:      r.soa.Ops,
		qhead:    make([]int32, numQubits),
		qtail:    make([]int32, numQubits),
		inWindow: make([]bool, n),
		winTail:  -1,
		inCF:     make([]bool, n),
		blocker:  make([]int32, n),
		removed:  make([]bool, n),
		qDirty:   make(bitset, numQubits),
		dirtyQ:   make([]int32, 0, numQubits),
	}
	for i := range f.blocker {
		f.blocker[i] = -1
	}
	total := len(r.soa.SlotGate)
	f.chainNext = make([]int32, total)
	f.chainPrev = make([]int32, total)
	for q := range f.qhead {
		f.qhead[q] = -1
		f.qtail[q] = -1
	}
	return f
}

// commute reports whether live predecessor j and gate i commute, through
// the op-pair classification and, for position-dependent pairs (CX/CX and
// friends), a per-shared-qubit comparison of the SoA slot bases — the same
// rule circuit.CommuteSharing applies, read from two precomputed bytes
// instead of walking Gate values. A matching non-trivial basis on every
// shared qubit proves commutation outright; anything else (a mismatch or a
// NoBasis operand, where CommuteSharing's identical-gate escape could still
// fire) falls through to the full check, which is allocation-free.
func (f *frontier) commute(j, i int32) bool {
	if v, ok := circuit.CommuteClass(f.ops[j], f.ops[i]); ok {
		return v
	}
	soa := f.r.soa
	for sj := f.slotOff[j]; sj < f.slotOff[j+1]; sj++ {
		q := soa.Qubits[sj]
		for si := f.slotOff[i]; si < f.slotOff[i+1]; si++ {
			if soa.Qubits[si] != q {
				continue
			}
			bj, bi := soa.Basis[sj], soa.Basis[si]
			if bj == circuit.NoBasis || bj != bi {
				return circuit.CommuteSharing(f.r.gates[j], f.r.gates[i])
			}
		}
	}
	return true
}

// membership computes gate i's CF membership from its current in-window
// predecessors, recording the first blocker found.
func (f *frontier) membership(i int) bool {
	if f.r.opts.DisableCommutativity {
		// Dependency front: any in-window predecessor on any qubit blocks.
		for s := f.slotOff[i]; s < f.slotOff[i+1]; s++ {
			if p := f.chainPrev[s]; p >= 0 {
				f.blocker[i] = f.slotGate[p]
				return false
			}
		}
		f.blocker[i] = -1
		return true
	}
	for s := f.slotOff[i]; s < f.slotOff[i+1]; s++ {
		for p := f.chainPrev[s]; p >= 0; p = f.chainPrev[p] {
			if j := f.slotGate[p]; !f.commute(j, int32(i)) {
				f.blocker[i] = j
				return false
			}
		}
	}
	f.blocker[i] = -1
	return true
}

// admit appends gate i at the window tail: links its slots onto the qubit
// chains and computes its membership once, against exactly the gates the
// naive scan would have seen before it.
func (f *frontier) admit(i int) {
	for k, q := range f.r.soa.Operands(i) {
		s := f.slotOff[i] + int32(k)
		f.chainNext[s] = -1
		f.chainPrev[s] = f.qtail[q]
		if f.qtail[q] >= 0 {
			f.chainNext[f.qtail[q]] = s
		} else {
			f.qhead[q] = s
		}
		f.qtail[q] = s
	}
	f.inWindow[i] = true
	f.inCF[i] = f.membership(i)
	if f.inCF[i] {
		f.cfCount++
	}
	f.winTail = i
	f.winCount++
}

// remove unlinks gate i from the engine. It must run before the remapper
// splices i out of the remaining-sequence list (it reads r.prev to retreat
// the window tail). Removal marks i's qubits dirty; blocked gates on those
// chains are re-examined at the next query.
func (f *frontier) remove(i int) {
	f.removed[i] = true
	f.frontValid = false
	if !f.inWindow[i] {
		return
	}
	for k, q := range f.r.soa.Operands(i) {
		s := f.slotOff[i] + int32(k)
		p, n := f.chainPrev[s], f.chainNext[s]
		if p >= 0 {
			f.chainNext[p] = n
		} else {
			f.qhead[q] = n
		}
		if n >= 0 {
			f.chainPrev[n] = p
		} else {
			f.qtail[q] = p
		}
		if !f.qDirty[q] {
			f.qDirty[q] = true
			f.dirtyQ = append(f.dirtyQ, int32(q))
		}
	}
	f.inWindow[i] = false
	f.winCount--
	if f.inCF[i] {
		f.cfCount--
	}
	if i == f.winTail {
		f.winTail = f.r.prev[i]
	}
}

// flushDirty re-evaluates the blocked gates on every dirty qubit chain.
// In-CF gates are skipped outright (membership is monotone), and a blocked
// gate whose recorded blocker is still live is skipped without any
// commutation work.
func (f *frontier) flushDirty() {
	for _, q := range f.dirtyQ {
		f.qDirty[q] = false
		for s := f.qhead[q]; s >= 0; s = f.chainNext[s] {
			i := f.slotGate[s]
			if f.inCF[i] {
				continue
			}
			if b := f.blocker[i]; b >= 0 && !f.removed[b] {
				continue
			}
			if f.membership(int(i)) {
				f.inCF[i] = true
				f.cfCount++
				f.frontValid = false
			}
		}
	}
	f.dirtyQ = f.dirtyQ[:0]
}

// computeFront returns the commutative front of the remaining sequence,
// writing the front and look-ahead buffers on the remapper (shared with the
// naive path so the heuristics and tests are implementation-agnostic).
func (f *frontier) computeFront() []int {
	f.flushDirty()
	for f.winCount < f.window {
		next := f.r.head
		if f.winTail >= 0 {
			next = f.r.next[f.winTail]
		}
		if next < 0 {
			if f.r.sourceOpen {
				// Streaming: the scan window is underfull and the source may
				// still yield gates that belong in it. Admitting fewer would
				// diverge from batch, so starve — the stream driver refills
				// the buffer and retries. Admissions so far stand (they are
				// a prefix of what the full window will hold).
				f.r.starved = true
				f.frontValid = false
				return nil
			}
			break
		}
		f.admit(next)
		f.frontValid = false
	}
	if f.frontValid {
		return f.r.front
	}
	r := f.r
	look := r.opts.lookahead()
	r.front = r.front[:0]
	r.lookSet = r.lookSet[:0]
	count := 0
	i := r.head
	for ; i >= 0 && count < f.winCount; i = r.next[i] {
		if f.inCF[i] {
			r.front = append(r.front, i)
		} else if f.is2q[i] && len(r.lookSet) < look {
			r.lookSet = append(r.lookSet, i)
		}
		count++
		if len(r.front) == f.cfCount && len(r.lookSet) >= look {
			break // front complete, look-ahead full: the rest is filler
		}
	}
	// Top up the look-ahead set past the window: everything beyond is
	// non-front by construction.
	for ; i >= 0 && len(r.lookSet) < look; i = r.next[i] {
		if f.is2q[i] {
			r.lookSet = append(r.lookSet, i)
		}
	}
	if len(r.lookSet) < look && r.sourceOpen {
		// Streaming: look-ahead unsaturated with gates still upstream.
		r.starved = true
		f.frontValid = false
		return nil
	}
	f.frontValid = true
	return r.front
}
