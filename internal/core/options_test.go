package core

import (
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
)

// TestOptionDefaults pins the default resolution logic.
func TestOptionDefaults(t *testing.T) {
	var o Options
	if o.window() != DefaultWindow {
		t.Errorf("window() = %d", o.window())
	}
	if o.deadlockStreak() != DefaultDeadlockStreak {
		t.Errorf("deadlockStreak() = %d", o.deadlockStreak())
	}
	if o.lookahead() != DefaultLookahead {
		t.Errorf("lookahead() = %d", o.lookahead())
	}
	o = Options{Window: 7, DeadlockStreak: 2, Lookahead: 11}
	if o.window() != 7 || o.deadlockStreak() != 2 || o.lookahead() != 11 {
		t.Error("explicit options ignored")
	}
	o = Options{Lookahead: -1}
	if o.lookahead() != 0 {
		t.Errorf("negative lookahead should disable: %d", o.lookahead())
	}
}

// TestAllOptionCombinationsStayCorrect sweeps the option matrix over a
// structured circuit and requires every variant to produce a complete,
// compliant, valid-schedule output.
func TestAllOptionCombinationsStayCorrect(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(99, 8, 120)
	variants := []Options{
		{},
		{DisableHfine: true},
		{DisableCommutativity: true},
		{Lookahead: -1},
		{Lookahead: 5},
		{Window: 4},
		{Window: 1024},
		{RankMode: RankFineFirst},
		{RankMode: RankMixed},
		{DeadlockStreak: 1},
		{DisableHfine: true, DisableCommutativity: true, Lookahead: -1, Window: 2},
		{RankMode: RankMixed, Lookahead: 40, Window: 512},
	}
	for i, opts := range variants {
		res, err := Remap(c, dev, nil, opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if err := res.Schedule.Validate(dev.Durations); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		nonSwap := 0
		for _, sg := range res.Schedule.Gates {
			g := sg.Gate
			if g.Op.TwoQubit() && !dev.Adjacent(g.Qubits[0], g.Qubits[1]) {
				t.Fatalf("variant %d: non-compliant %v", i, g)
			}
			if g.Op != circuit.OpSwap {
				nonSwap++
			}
		}
		if nonSwap != c.Len() {
			t.Fatalf("variant %d: %d gates out, want %d", i, nonSwap, c.Len())
		}
	}
}

// TestLookaheadReducesSwapsOnSerialChain demonstrates what the tie-breaker
// buys: on a serial GHZ chain the look-ahead variant needs no more (and
// typically fewer) swaps than the paper-exact variant.
func TestLookaheadReducesSwapsOnSerialChain(t *testing.T) {
	dev := arch.IBMQ16Melbourne()
	c := circuit.New(16)
	c.H(0)
	for i := 0; i+1 < 16; i++ {
		c.CX(i, i+1)
	}
	with, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Remap(c, dev, nil, Options{Lookahead: -1})
	if err != nil {
		t.Fatal(err)
	}
	if with.SwapCount > without.SwapCount {
		t.Errorf("lookahead increased swaps: %d vs %d", with.SwapCount, without.SwapCount)
	}
}

// TestRankModesDiffer: the ranking variants are genuinely different
// policies (at least one benchmark distinguishes them) yet all remain
// semantically complete (covered by the matrix test above).
func TestRankModesDiffer(t *testing.T) {
	dev := arch.Grid("g44", 4, 4)
	c := randCircuit(1234, 10, 200)
	out := map[RankMode]int{}
	for _, m := range []RankMode{RankLookFirst, RankFineFirst, RankMixed} {
		res, err := Remap(c, dev, nil, Options{RankMode: m})
		if err != nil {
			t.Fatal(err)
		}
		out[m] = res.Makespan
	}
	if out[RankLookFirst] == out[RankFineFirst] && out[RankFineFirst] == out[RankMixed] {
		t.Log("all rank modes coincided on this input (not an error, but unexpected)")
	}
}

// TestDisableCommutativityIsMoreConservative: without commutativity the
// front is a subset, so the mapper cannot launch reordered gates; its
// output un-maps to the exact input order.
func TestDisableCommutativityPreservesOrder(t *testing.T) {
	dev := arch.Linear(5)
	c := randCircuit(7, 5, 40)
	res, err := Remap(c, dev, nil, Options{DisableCommutativity: true})
	if err != nil {
		t.Fatal(err)
	}
	l := res.InitialLayout.Clone()
	i := 0
	for _, sg := range res.Schedule.Gates {
		g := sg.Gate
		if g.Op == circuit.OpSwap {
			l.SwapPhysical(g.Qubits[0], g.Qubits[1])
			continue
		}
		lg := g.Remap(func(p int) int { return l.Log(p) })
		// Gates on disjoint qubits may still launch in the same cycle and
		// appear reordered in the flat sequence; only same-qubit order is
		// guaranteed. Check per-qubit order instead of global order.
		_ = lg
		i++
	}
	if i != c.Len() {
		t.Fatalf("gates out = %d, want %d", i, c.Len())
	}
	// Per-qubit projection of the recovered sequence must match the
	// input's per-qubit projection exactly.
	perQubitIn := project(c.Gates, c.NumQubits)
	recovered := recoverLogical(res, c.NumQubits)
	perQubitOut := project(recovered, c.NumQubits)
	for q := range perQubitIn {
		if len(perQubitIn[q]) != len(perQubitOut[q]) {
			t.Fatalf("qubit %d: %d vs %d gates", q, len(perQubitIn[q]), len(perQubitOut[q]))
		}
		for k := range perQubitIn[q] {
			if !perQubitIn[q][k].Equal(perQubitOut[q][k]) {
				t.Fatalf("qubit %d: order broken at %d: %v vs %v", q, k, perQubitIn[q][k], perQubitOut[q][k])
			}
		}
	}
}

func project(gates []circuit.Gate, n int) [][]circuit.Gate {
	out := make([][]circuit.Gate, n)
	for _, g := range gates {
		for _, q := range g.Qubits {
			out[q] = append(out[q], g)
		}
	}
	return out
}

func recoverLogical(res *Result, n int) []circuit.Gate {
	l := res.InitialLayout.Clone()
	var out []circuit.Gate
	for _, sg := range res.Schedule.Gates {
		g := sg.Gate
		if g.Op == circuit.OpSwap {
			l.SwapPhysical(g.Qubits[0], g.Qubits[1])
			continue
		}
		out = append(out, g.Remap(func(p int) int { return l.Log(p) }))
	}
	return out
}

// TestDeadlockStreakEscape forces the direct-routing hatch by making the
// streak threshold minimal on a topology prone to negative-Hbasic fronts.
func TestDeadlockStreakEscape(t *testing.T) {
	dev := arch.Ring(8)
	c := circuit.New(8)
	// Antipodal pairs: every routing step for one gate drags another
	// gate's qubits the wrong way.
	c.CX(0, 4)
	c.CX(1, 5)
	c.CX(2, 6)
	c.CX(3, 7)
	res, err := Remap(c, dev, nil, Options{DeadlockStreak: 1})
	if err != nil {
		t.Fatal(err)
	}
	nCX := 0
	for _, sg := range res.Schedule.Gates {
		if sg.Gate.Op == circuit.OpCX {
			nCX++
		}
	}
	if nCX != 4 {
		t.Errorf("CX out = %d, want 4", nCX)
	}
}

// TestWeightedDepthNeverWorseThanSerial sanity-bounds CODAR's output: the
// makespan is at most the serial sum of all gate durations.
func TestWeightedDepthNeverWorseThanSerial(t *testing.T) {
	dev := arch.IBMQ16Melbourne()
	c := randCircuit(31, 8, 80)
	res, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial := 0
	for _, sg := range res.Schedule.Gates {
		serial += sg.Duration
	}
	if res.Makespan > serial {
		t.Errorf("makespan %d exceeds serial bound %d", res.Makespan, serial)
	}
	re := schedule.ASAP(res.Circuit, dev.Durations)
	if re.Makespan > res.Makespan {
		t.Errorf("re-schedule worsened makespan: %d > %d", re.Makespan, res.Makespan)
	}
}
