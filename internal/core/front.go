package core

import "codar/internal/circuit"

// computeFront returns the commutative front (CF) of the remaining gate
// sequence: the indices of gates that commute with every earlier remaining
// gate (Definition 1). The scan is bounded by the options window; gates on
// disjoint qubits commute trivially, so membership only involves earlier
// gates sharing one of a candidate's qubits.
//
// The work is done by the incremental engine (frontier.go); the from-scratch
// scan below is retained as the reference implementation, selected by the
// naiveFront option and cross-checked against the engine by the equivalence
// property tests.
//
// With DisableCommutativity the front degrades to the plain dependency
// front (first unexecuted gate per qubit chain), which is what SABRE uses.
func (r *remapper) computeFront() []int {
	r.starved = false
	if r.f == nil {
		return r.computeFrontNaive()
	}
	front := r.f.computeFront()
	if r.frontCheck != nil && !r.starved {
		r.frontCheck(front)
	}
	return front
}

// computeFrontNaive is the pre-incremental implementation: rescan the
// window and re-run every pairwise commutation check. O(window × avg
// per-qubit stack height) Commute calls per query.
func (r *remapper) computeFrontNaive() []int {
	window := r.opts.window()
	r.front = r.front[:0]
	// Reset per-qubit stacks touched by the previous call.
	for _, q := range r.touched {
		r.seenStack[q] = r.seenStack[q][:0]
	}
	r.touched = r.touched[:0]

	look := r.opts.lookahead()
	r.lookSet = r.lookSet[:0]
	count := 0
	i := r.head
	for ; i >= 0 && count < window; i = r.next[i] {
		g := r.gates[i]
		ok := true
	scan:
		for _, q := range g.Qubits {
			stack := r.seenStack[q]
			if r.opts.DisableCommutativity {
				if len(stack) > 0 {
					ok = false
					break scan
				}
				continue
			}
			for _, j := range stack {
				if !circuit.Commute(r.gates[j], g) {
					ok = false
					break scan
				}
			}
		}
		if ok {
			r.front = append(r.front, i)
		} else if g.Op.TwoQubit() && len(r.lookSet) < look {
			r.lookSet = append(r.lookSet, i)
		}
		for _, q := range g.Qubits {
			if len(r.seenStack[q]) == 0 {
				r.touched = append(r.touched, q)
			}
			r.seenStack[q] = append(r.seenStack[q], i)
		}
		count++
	}
	if count < window && r.sourceOpen {
		// Streaming: ran out of buffered gates with the scan window
		// underfull — same starvation rule as the incremental engine.
		r.starved = true
		return nil
	}
	// Top up the look-ahead set past the window: everything beyond is
	// non-front by construction.
	for ; i >= 0 && len(r.lookSet) < look; i = r.next[i] {
		if r.gates[i].Op.TwoQubit() {
			r.lookSet = append(r.lookSet, i)
		}
	}
	if len(r.lookSet) < look && r.sourceOpen {
		r.starved = true
		return nil
	}
	return r.front
}

// frontTwoQubit filters the front down to two-qubit unitaries, the gates
// that participate in the distance heuristics.
func (r *remapper) frontTwoQubit(front []int) []int {
	r.front2q = r.front2q[:0]
	for _, i := range front {
		if r.soa.Is2Q[i] {
			r.front2q = append(r.front2q, i)
		}
	}
	return r.front2q
}
