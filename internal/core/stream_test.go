package core

import (
	"context"
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
	"codar/internal/testutil"
)

// runStream maps c through RemapStream with a collecting sink.
func runStream(t *testing.T, c *circuit.Circuit, dev *arch.Device, initial *arch.Layout, opts Options) (*StreamResult, *schedule.Collector) {
	t.Helper()
	var col schedule.Collector
	res, err := RemapStream(circuit.NewSliceSource(c), dev, initial, opts, &col)
	if err != nil {
		t.Fatalf("RemapStream: %v", err)
	}
	return res, &col
}

// checkStreamEqualsBatch is the core differential property: the
// concatenation of the streamed chunks is byte-identical to the batch
// schedule, and the run statistics match.
func checkStreamEqualsBatch(t *testing.T, c *circuit.Circuit, dev *arch.Device, opts Options) {
	t.Helper()
	want, err := Remap(c, dev, nil, opts)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	res, col := runStream(t, c, dev, nil, opts)
	if len(col.Gates) != len(want.Schedule.Gates) {
		t.Fatalf("streamed %d scheduled gates, batch %d", len(col.Gates), len(want.Schedule.Gates))
	}
	for i := range col.Gates {
		g, w := col.Gates[i], want.Schedule.Gates[i]
		if g.Start != w.Start || g.Duration != w.Duration || !g.Gate.Equal(w.Gate) {
			t.Fatalf("scheduled gate %d: stream {%v %d %d}, batch {%v %d %d}",
				i, g.Gate, g.Start, g.Duration, w.Gate, w.Start, w.Duration)
		}
	}
	if res.Gates != len(want.Schedule.Gates) {
		t.Errorf("StreamResult.Gates = %d, want %d", res.Gates, len(want.Schedule.Gates))
	}
	if res.Makespan != want.Makespan || res.SwapCount != want.SwapCount ||
		res.Cycles != want.Cycles || res.ForcedSwaps != want.ForcedSwaps ||
		res.DirectRoutes != want.DirectRoutes {
		t.Errorf("stats: stream {mk %d sw %d cy %d f %d r %d}, batch {mk %d sw %d cy %d f %d r %d}",
			res.Makespan, res.SwapCount, res.Cycles, res.ForcedSwaps, res.DirectRoutes,
			want.Makespan, want.SwapCount, want.Cycles, want.ForcedSwaps, want.DirectRoutes)
	}
	if !res.InitialLayout.Equal(want.InitialLayout) || !res.FinalLayout.Equal(want.FinalLayout) {
		t.Errorf("layout mismatch between stream and batch")
	}
}

// TestRemapStreamEqualsRemap sweeps random circuits (large enough to force
// several window refills) across the property devices, both front
// implementations, both ranking extremes and a calibrated metric.
func TestRemapStreamEqualsRemap(t *testing.T) {
	devices := propDevices()
	for seed := int64(1); seed <= 5; seed++ {
		dev := devices[int(seed)%len(devices)]
		c := randCircuit(seed, dev.NumQubits, 3000)
		checkStreamEqualsBatch(t, c, dev, Options{})
		checkStreamEqualsBatch(t, c, dev, Options{naiveFront: true, naiveScore: true})
		checkStreamEqualsBatch(t, c, dev, Options{Window: 16, Lookahead: 4})
		checkStreamEqualsBatch(t, c, dev, Options{DisableCommutativity: true, RankMode: RankMixed})
	}
}

// TestRemapStreamMultiEpoch pins that large inputs actually stream: more
// than one chunk is flushed and the window refills several times.
func TestRemapStreamMultiEpoch(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(7, dev.NumQubits, 6000)
	res, col := runStream(t, c, dev, nil, Options{})
	if col.Chunks < 2 {
		t.Fatalf("6000-gate run flushed %d chunks, want streaming (>= 2)", col.Chunks)
	}
	if res.Chunks != col.Chunks {
		t.Fatalf("StreamResult.Chunks = %d, sink saw %d", res.Chunks, col.Chunks)
	}
	if got := len(col.Gates); got < 6000 {
		t.Fatalf("streamed %d gates, want >= input size", got)
	}
}

// TestRemapStreamSmallInput pins the degenerate paths: inputs smaller than
// one refill batch, and the empty stream.
func TestRemapStreamSmallInput(t *testing.T) {
	dev := arch.Linear(4)
	checkStreamEqualsBatch(t, randCircuit(3, 4, 40), dev, Options{})

	empty := circuit.New(3)
	res, col := runStream(t, empty, dev, nil, Options{})
	if res.Gates != 0 || col.Chunks != 0 || res.Makespan != 0 {
		t.Fatalf("empty stream: gates %d chunks %d makespan %d, want zeros", res.Gates, col.Chunks, res.Makespan)
	}
}

// TestRemapStreamValidation mirrors the batch entry checks on the stream
// entry point.
func TestRemapStreamValidation(t *testing.T) {
	dev := arch.Linear(3)
	big := circuit.New(5)
	var col schedule.Collector
	if _, err := RemapStream(circuit.NewSliceSource(big), dev, nil, Options{}, &col); err == nil {
		t.Fatal("want error for 5-qubit stream on 3-qubit device")
	}
	c := circuit.New(3)
	c.CCX(0, 1, 2) // compound: the stream path must reject unlowered gates
	if _, err := RemapStream(circuit.NewSliceSource(c), dev, nil, Options{}, &col); err == nil {
		t.Fatal("want error for unlowered stream")
	}
	wrong := arch.NewTrivialLayout(2, 3)
	if _, err := RemapStream(circuit.NewSliceSource(circuit.New(3)), dev, wrong, Options{}, &col); err == nil {
		t.Fatal("want error for mis-shaped layout")
	}
}

// TestRemapStreamCancel pins cancellation mid-stream: a context canceled
// after the first flush surfaces ErrCanceled, stops the run, and strands
// no goroutine (the pull-based pipeline has none to strand — the leak
// check keeps it that way).
func TestRemapStreamCancel(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(11, dev.NumQubits, 6000)
	ctx, cancel := context.WithCancel(context.Background())
	flushed := 0
	sink := schedule.FuncSink(func(chunk []schedule.ScheduledGate) error {
		flushed++
		cancel()
		return nil
	})
	_, err := RemapStream(circuit.NewSliceSource(c), dev, nil, Options{Ctx: ctx}, sink)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if flushed == 0 {
		t.Fatal("cancel fired before any flush; test needs a larger input")
	}
}

// Window-boundary adversaries: circuits engineered so that the commutative
// front is widest — or a dependency chain is longest — exactly when the
// window refills, the configurations where evicting a still-commutable
// gate or executing a chain tail early would diverge from batch.

// sharedControlRuns emits rounds of CX(0,t) over every target: all gates
// in a round commute pairwise, so the front holds the whole round while
// the window turns over beneath it.
func sharedControlRuns(n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for len(c.Gates) < gates {
		for t := 1; t < n && len(c.Gates) < gates; t++ {
			c.CX(0, t)
		}
	}
	return c
}

// longRangeChain emits one long CX dependency chain wrapping around the
// device: every gate depends on its predecessor, so each refill boundary
// lands on a chain tail.
func longRangeChain(n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	q := 0
	for len(c.Gates) < gates {
		c.CX(q, (q+1)%n)
		q = (q + 1) % n
	}
	return c
}

// singleQubitRuns emits long barrier-free rz runs (mutually commutable) on
// one qubit, punctuated by a CX that serialises against the whole run.
func singleQubitRuns(n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for len(c.Gates) < gates {
		for i := 0; i < 64 && len(c.Gates) < gates; i++ {
			c.RZ(float64(len(c.Gates)%7)*0.1, 0)
		}
		if len(c.Gates) < gates {
			c.CX(0, 1)
		}
	}
	return c
}

// TestRemapStreamWindowBoundaries runs the adversaries — each sized for
// several window refills — through the full differential check under the
// default, tight-window and commutativity-off configurations.
func TestRemapStreamWindowBoundaries(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	circuits := map[string]*circuit.Circuit{
		"shared-control": sharedControlRuns(dev.NumQubits, 3000),
		"long-chain":     longRangeChain(dev.NumQubits, 3000),
		"rz-runs":        singleQubitRuns(dev.NumQubits, 3000),
	}
	for name, c := range circuits {
		c := c
		t.Run(name, func(t *testing.T) {
			checkStreamEqualsBatch(t, c, dev, Options{})
			checkStreamEqualsBatch(t, c, dev, Options{Window: 16, Lookahead: 4})
			checkStreamEqualsBatch(t, c, dev, Options{DisableCommutativity: true})
		})
	}
}

// TestRemapStreamDeterministicFlush pins the chunking itself: for a fixed
// input and options, two runs flush identical chunk-size sequences — the
// flush points are a function of the stream, not of timing.
func TestRemapStreamDeterministicFlush(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(13, dev.NumQubits, 6000)
	sizes := func() []int {
		var out []int
		sink := schedule.FuncSink(func(chunk []schedule.ScheduledGate) error {
			out = append(out, len(chunk))
			return nil
		})
		if _, err := RemapStream(circuit.NewSliceSource(c), dev, nil, Options{}, sink); err != nil {
			t.Fatalf("RemapStream: %v", err)
		}
		return out
	}
	a, b := sizes(), sizes()
	if len(a) < 2 {
		t.Fatalf("6000-gate run flushed %d chunks, want streaming", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d: %d gates then %d gates", i, a[i], b[i])
		}
	}
}
