package core

import (
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
)

func TestComputeFrontMatchesCircuitPackage(t *testing.T) {
	// The remapper's linked-list front must agree with the reference
	// implementation over the full sequence.
	dev := arch.Linear(6)
	c := randCircuit(17, 6, 60)
	r := newRemapper(circuit.Assemble(c), dev, arch.NewTrivialLayout(6, 6), Options{Window: 1 << 20})
	got := append([]int(nil), r.computeFront()...)
	want := circuit.CommutativeFront(c.Gates, 0)
	if len(got) != len(want) {
		t.Fatalf("front sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("front[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestComputeFrontAfterUnlink(t *testing.T) {
	dev := arch.Linear(3)
	c := circuit.New(3).H(0).T(0).H(1)
	r := newRemapper(circuit.Assemble(c), dev, arch.NewTrivialLayout(3, 3), Options{})
	front := r.computeFront()
	// h q0 and h q1 are CF; t q0 is blocked by h q0.
	if len(front) != 2 {
		t.Fatalf("front = %v", front)
	}
	// Removing h q0 exposes t q0.
	r.unlink(0)
	front = r.computeFront()
	if len(front) != 2 || front[0] != 1 || front[1] != 2 {
		t.Fatalf("front after unlink = %v, want [1 2]", front)
	}
	r.unlink(1)
	r.unlink(2)
	if got := r.computeFront(); len(got) != 0 {
		t.Fatalf("front of empty list = %v", got)
	}
}

func TestLookaheadSetContents(t *testing.T) {
	dev := arch.Linear(4)
	// Serial chain: cx(0,1); cx(1,2); cx(2,3) — front is only the first;
	// the look-ahead set holds the next two-qubit gates.
	c := circuit.New(4).CX(0, 1).CX(1, 2).CX(2, 3)
	r := newRemapper(circuit.Assemble(c), dev, arch.NewTrivialLayout(4, 4), Options{Lookahead: 10})
	front := r.computeFront()
	if len(front) != 1 || front[0] != 0 {
		t.Fatalf("front = %v", front)
	}
	if len(r.lookSet) != 2 {
		t.Fatalf("lookSet = %v, want the two blocked CXs", r.lookSet)
	}
	// Lookahead disabled: the set stays empty.
	r2 := newRemapper(circuit.Assemble(c), dev, arch.NewTrivialLayout(4, 4), Options{Lookahead: -1})
	r2.computeFront()
	if len(r2.lookSet) != 0 {
		t.Fatalf("lookSet with lookahead off = %v", r2.lookSet)
	}
}

func TestLookaheadSetExtendsPastWindow(t *testing.T) {
	dev := arch.Linear(6)
	c := circuit.New(6)
	// One serial chain on qubit 0/1 to fill the window, then distant gates.
	for i := 0; i < 8; i++ {
		c.H(0)
		c.T(0) // blocks commutation: strictly serial
	}
	c.CX(2, 3)
	c.CX(3, 4)
	c.CX(4, 5)
	r := newRemapper(circuit.Assemble(c), dev, arch.NewTrivialLayout(6, 6), Options{Window: 4, Lookahead: 3})
	r.computeFront()
	// The window covers only the serial 1q prefix; the look-ahead set must
	// still reach the two-qubit gates beyond it.
	if len(r.lookSet) != 3 {
		t.Fatalf("lookSet = %v, want 3 gates beyond the window", r.lookSet)
	}
}

func TestFrontTwoQubitFilter(t *testing.T) {
	dev := arch.Linear(4)
	c := circuit.New(4).H(0).CX(1, 2).T(3)
	r := newRemapper(circuit.Assemble(c), dev, arch.NewTrivialLayout(4, 4), Options{})
	front := r.computeFront()
	two := r.frontTwoQubit(front)
	if len(two) != 1 || r.gates[two[0]].Op != circuit.OpCX {
		t.Fatalf("frontTwoQubit = %v", two)
	}
}

func TestDisableCommutativityFrontIsPrefix(t *testing.T) {
	dev := arch.Linear(4)
	// cx(0,1); cx(0,2): share the control and commute, but with
	// commutativity disabled the second must not be in the front.
	c := circuit.New(4).CX(0, 1).CX(0, 2)
	r := newRemapper(circuit.Assemble(c), dev, arch.NewTrivialLayout(4, 4), Options{DisableCommutativity: true})
	front := r.computeFront()
	if len(front) != 1 || front[0] != 0 {
		t.Fatalf("dependency front = %v, want [0]", front)
	}
	r2 := newRemapper(circuit.Assemble(c), dev, arch.NewTrivialLayout(4, 4), Options{})
	if got := r2.computeFront(); len(got) != 2 {
		t.Fatalf("commutative front = %v, want both gates", got)
	}
}
