// Package core implements CODAR, the COntext-sensitive and Duration-Aware
// Remapping algorithm of Deng, Zhang & Li (DAC 2020). CODAR transforms a
// logical circuit into a hardware-compliant physical circuit by inserting
// SWAP operations, simulating the execution timeline as it goes. Two
// mechanisms distinguish it from depth-oriented mappers such as SABRE:
//
//   - Qubit locks (§IV-A): each physical qubit carries a lock tend set to
//     the finish time of the last gate launched on it. Gate-duration
//     differences therefore propagate into the routing decisions — a qubit
//     running a short gate frees earlier and can route sooner.
//   - Commutativity detection (§IV-B): the set of logically executable
//     gates is the commutative front (CF), gates that commute with every
//     predecessor, exposing more context than a plain dependency front.
//
// Each simulated cycle launches every lock-free executable CF gate, then
// greedily inserts the best lock-free SWAPs ranked by the two-level
// heuristic ⟨Hbasic, Hfine⟩ (§IV-D), and finally advances time to the next
// lock expiry.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/interrupt"
	"codar/internal/schedule"
)

// ErrDepthBound is returned by Remap when Options.DepthBound is set and the
// in-progress schedule's weighted-depth lower bound exceeded it: the run was
// abandoned because it could no longer beat the portfolio incumbent.
var ErrDepthBound = errors.New("codar: depth bound exceeded")

// ErrCanceled and ErrDeadline are returned by Remap when Options.Ctx fires
// mid-run: the mapping was abandoned because the caller no longer wants it
// (client disconnect, portfolio abandon) or its deadline passed. They are
// the shared pipeline sentinels — errors.Is also matches context.Canceled /
// context.DeadlineExceeded.
var (
	ErrCanceled = interrupt.ErrCanceled
	ErrDeadline = interrupt.ErrDeadline
)

// ctxCheckEvery is the amortized cancellation cadence: the main cycle loop
// polls Options.Ctx every this many cycles (power of two). Cycles run in
// microseconds, so the poll adds no measurable overhead while bounding
// cancellation latency far below human-visible delays (DESIGN.md §11).
const ctxCheckEvery = 64

// Options tunes the CODAR remapper. The zero value selects the defaults
// used throughout the evaluation.
type Options struct {
	// Ctx, when non-nil, makes the run cancelable: the main cycle loop
	// polls it at an amortized cadence (every ctxCheckEvery cycles) and
	// Remap returns ErrCanceled / ErrDeadline once it fires, discarding all
	// partial output. nil (or a never-done context) leaves the run — and
	// its output bytes — untouched.
	Ctx context.Context
	// Window bounds the commutative-front scan over the remaining gate
	// sequence. 0 means DefaultWindow. Larger windows expose more
	// look-ahead context at higher cost.
	Window int
	// DeadlockStreak is the number of consecutive forced-SWAP cycles
	// (paper: "choose a SWAP with the highest priority ... even if its
	// Hbasic may not be positive") tolerated before the engine escapes by
	// routing the oldest blocked gate directly along a shortest path.
	// 0 means DefaultDeadlockStreak. See DESIGN.md §4.
	DeadlockStreak int
	// DisableHfine drops the fine-priority tie-breaker (ablation).
	DisableHfine bool
	// DisableCommutativity replaces the commutative front with the plain
	// dependency front (ablation: context only from qubit locks).
	DisableCommutativity bool
	// Lookahead is the number of upcoming two-qubit gates beyond the
	// commutative front scored as an Hbasic tie-breaker (an extension over
	// the paper, mirroring SABRE's extended set; see DESIGN.md §4).
	// 0 means DefaultLookahead; negative disables the tie-breaker
	// (paper-exact behaviour).
	Lookahead int
	// RankMode selects how the look-ahead term enters the priority
	// comparison (experimentation/ablation; default RankLookFirst).
	RankMode RankMode
	// Cost, when non-nil, replaces the hop-count distance matrix in the
	// SWAP-search heuristics (Hbasic, Hlook, deadlock routing) with a
	// calibration-weighted metric, steering routes around unreliable
	// couplers (DESIGN.md §8). It must be built for the target device.
	// nil — and a model with zero calibration weights — preserve the
	// duration-only objective bit-for-bit (the zero-calibration
	// equivalence properties pin this).
	Cost *arch.CostModel
	// DepthBound, when non-nil, enables the portfolio early-abandon
	// protocol (DESIGN.md §9): the run tracks the ASAP makespan of the
	// gates emitted so far — a monotone lower bound on the output's final
	// weighted depth — and returns ErrDepthBound as soon as it strictly
	// exceeds the published bound. nil leaves the run (and its output
	// bytes) untouched.
	DepthBound *arch.DepthBound

	// naiveFront selects the from-scratch reference front scan instead of
	// the incremental engine (frontier.go). Test-only: the equivalence
	// property tests run both and require byte-identical results.
	naiveFront bool
	// naiveScore selects the from-scratch reference candidate scoring
	// (pickBest) instead of the delta scorer (scorer.go). Test-only: the
	// scorer-equivalence property tests run both and require byte-identical
	// results.
	naiveScore bool
	// checkEvents cross-checks the lock-expiry event heap and the O(1)
	// allFree shortcut against the O(Q) reference scans on every cycle,
	// panicking on divergence. Test-only.
	checkEvents bool
}

// RankMode enumerates candidate-ranking variants.
type RankMode uint8

const (
	// RankLookFirst compares ⟨Hbasic, Hlook, Hfine⟩ lexicographically.
	RankLookFirst RankMode = iota
	// RankFineFirst compares ⟨Hbasic, Hfine, Hlook⟩ (paper order with the
	// look-ahead appended last).
	RankFineFirst
	// RankMixed compares ⟨2*Hbasic + Hlook, Hfine⟩ — SABRE-style blending;
	// insertion is still gated on Hbasic > 0.
	RankMixed
)

// Defaults for Options.
const (
	DefaultWindow         = 256
	DefaultDeadlockStreak = 3
	DefaultLookahead      = 20
)

func (o Options) window() int {
	if o.Window <= 0 {
		return DefaultWindow
	}
	return o.Window
}

func (o Options) deadlockStreak() int {
	if o.DeadlockStreak <= 0 {
		return DefaultDeadlockStreak
	}
	return o.DeadlockStreak
}

func (o Options) lookahead() int {
	if o.Lookahead == 0 {
		return DefaultLookahead
	}
	if o.Lookahead < 0 {
		return 0
	}
	return o.Lookahead
}

// Result is the output of a remapping run.
type Result struct {
	// Schedule is the timed physical execution (start times, durations).
	Schedule *schedule.Schedule
	// Circuit is the physical gate sequence in start order; qubit indices
	// are physical.
	Circuit *circuit.Circuit
	// InitialLayout and FinalLayout are the logical→physical maps before
	// and after execution.
	InitialLayout *arch.Layout
	FinalLayout   *arch.Layout
	// SwapCount is the number of SWAPs inserted.
	SwapCount int
	// Makespan is the weighted depth of the output (quantum clock cycles).
	Makespan int
	// Cycles is the number of simulated scheduling iterations.
	Cycles int
	// ForcedSwaps counts deadlock-forced SWAP launches.
	ForcedSwaps int
	// DirectRoutes counts deadlock-escape shortest-path routings.
	DirectRoutes int
}

// Remap runs CODAR on circuit c targeting device dev, starting from the
// given initial layout (nil means the trivial layout). The input must be
// lowered to the base gate set (circuit.Decompose) and must fit the device
// (c.NumQubits <= dev.NumQubits).
func Remap(c *circuit.Circuit, dev *arch.Device, initial *arch.Layout, opts Options) (*Result, error) {
	return RemapAssembled(circuit.Assemble(c), dev, initial, opts)
}

// RemapAssembled is Remap over a pre-built assembly. Callers running the
// same circuit several times (the portfolio, the Fig 8 CODAR/SABRE pairs)
// share one assembly so the SoA gate layout and the validity walk are paid
// once; the output is byte-identical to Remap.
func RemapAssembled(a *circuit.Assembly, dev *arch.Device, initial *arch.Layout, opts Options) (*Result, error) {
	c := a.Circ
	if err := a.Checked(); err != nil {
		return nil, fmt.Errorf("codar: %w", err)
	}
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("codar: circuit %q needs %d qubits but device %s has %d", c.Name, c.NumQubits, dev.Name, dev.NumQubits)
	}
	if !dev.Connected() {
		return nil, fmt.Errorf("codar: device %s is disconnected", dev.Name)
	}
	if initial == nil {
		initial = arch.NewTrivialLayout(c.NumQubits, dev.NumQubits)
	}
	if initial.NumLogical() != c.NumQubits || initial.NumPhysical() != dev.NumQubits {
		return nil, fmt.Errorf("codar: layout shape %d/%d does not match circuit %d / device %d",
			initial.NumLogical(), initial.NumPhysical(), c.NumQubits, dev.NumQubits)
	}
	if err := initial.Validate(); err != nil {
		return nil, fmt.Errorf("codar: %w", err)
	}
	if opts.Cost != nil {
		if err := opts.Cost.CompatibleWith(dev); err != nil {
			return nil, fmt.Errorf("codar: %w", err)
		}
	}

	if err := interrupt.Classify(opts.Ctx); err != nil {
		return nil, fmt.Errorf("codar: %w", err)
	}
	r := newRemapper(a, dev, initial, opts)
	r.run()
	if r.ctxErr != nil {
		return nil, fmt.Errorf("codar: %w", r.ctxErr)
	}
	if r.exceeded {
		return nil, ErrDepthBound
	}
	return r.result(), nil
}

// remapper holds the mutable state of one CODAR run.
type remapper struct {
	opts  Options
	dev   *arch.Device
	gates []circuit.Gate // input gates, indexed by original position
	// soa is the shared struct-of-arrays view of gates: the hot loops
	// (front walk, executability, candidate search) read ops and operands
	// from its dense parallel arrays instead of loading 64-byte Gate
	// values and chasing their Qubits slices.
	soa *circuit.SoA

	// Remaining-sequence doubly linked list over gate indices.
	next, prev []int
	head       int
	live       int

	layout *arch.Layout
	locks  []int // per-physical-qubit lock tend

	// distTab is the flat distance matrix the heuristics rank candidates
	// with: the device hop matrix, or the calibration-weighted one when
	// Options.Cost is set. hopTab is always the device hop matrix: the
	// Hbasic > 0 insertion gate stays a hop-progress question even under a
	// weighted metric — otherwise tiny error-term improvements trigger
	// "lateral" SWAPs that cost three CXs of gate error without moving any
	// gate closer (DESIGN.md §8). Structural blocked/adjacent checks also
	// stay on hop distances. weighted is true iff the two tables differ.
	distTab  []int32
	hopTab   []int32
	weighted bool
	nq       int
	// swapDur caches dev.Durations.Of(OpSwap): launchSwap runs tens of
	// thousands of times per mapping and the duration never changes.
	swapDur int

	out       []schedule.ScheduledGate
	makespan  int
	swapCount int
	cycles    int
	forced    int
	routed    int
	streak    int

	// Early-abandon state (Options.DepthBound): the shared ASAP recurrence
	// over the emitted prefix. Per-qubit emission order equals per-qubit
	// time order here, so the tracker's span lands exactly on
	// schedule.WeightedDepth of the final output — and its running value
	// is a monotone lower bound of it, which is what makes abandoning
	// sound (DESIGN.md §9).
	asap     *arch.ASAPTracker
	exceeded bool

	// Cancellation state (Options.Ctx): the amortized context checker the
	// cycle loop polls, and the sticky typed error a fired context leaves
	// behind (DESIGN.md §11).
	check  interrupt.Checker
	ctxErr error

	initial *arch.Layout

	// Streaming state (stream.go). sourceOpen marks that the buffered gates
	// are a prefix of a longer stream: the front computations starve —
	// abort and set starved — instead of acting on an underfull window or
	// look-ahead set, so every decision is made over exactly the context the
	// batch path would have. Both stay false on the batch path.
	sourceOpen bool
	starved    bool

	// f is the incremental commutative-front engine; nil selects the naive
	// reference scan (Options.naiveFront).
	f *frontier
	// sc is the delta-scoring engine for the SWAP search; nil selects the
	// naive reference scoring (Options.naiveScore).
	sc *scorer
	// lockHeap is the lock-expiry event queue: a lazy binary min-heap of
	// (end«20 | qubit) entries, one pushed per lock assignment. Entries
	// whose end no longer matches the qubit's current lock are discarded on
	// pop, so nextEvent costs O(log pending) instead of an O(Q) scan.
	lockHeap []int64
	// frontCheck, when set (equivalence property tests), observes every
	// front the engine returns before the remapper acts on it.
	frontCheck func(front []int)

	// arena backs the physical-qubit slices of emitted gates.
	arena circuit.IntArena

	// Scratch buffers for the front computation (shared by both front
	// implementations) and the SWAP-candidate search.
	seenStack [][]int
	touched   []int
	front     []int
	front2q   []int
	lookSet   []int
	cands     []swapCand
	edgeStamp []int32
	edgeEpoch int32
}

func newRemapper(a *circuit.Assembly, dev *arch.Device, initial *arch.Layout, opts Options) *remapper {
	c := a.Circ
	n := len(c.Gates)
	r := &remapper{
		opts:      opts,
		dev:       dev,
		gates:     c.Gates,
		soa:       a.SoA,
		next:      make([]int, n),
		prev:      make([]int, n),
		head:      -1,
		live:      n,
		layout:    initial.Clone(),
		initial:   initial.Clone(),
		locks:     make([]int, dev.NumQubits),
		seenStack: make([][]int, c.NumQubits),
		// Pre-size the schedule for the input plus a typical swap overhead;
		// growing a 30k-gate output mid-run showed up in the allocation
		// profile.
		out: make([]schedule.ScheduledGate, 0, n+n/4+16),
	}
	r.nq = dev.NumQubits
	r.swapDur = dev.Durations.Of(circuit.OpSwap)
	r.hopTab = dev.DistTable()
	if opts.Cost != nil {
		r.distTab = opts.Cost.Table()
		r.weighted = true
	} else {
		r.distTab = r.hopTab
	}
	for i := 0; i < n; i++ {
		r.next[i] = i + 1
		r.prev[i] = i - 1
	}
	if n > 0 {
		r.head = 0
		r.next[n-1] = -1
	}
	if !opts.naiveFront {
		r.f = newFrontier(r, c.NumQubits)
	}
	if !opts.naiveScore {
		r.sc = newScorer(r)
	}
	if opts.DepthBound != nil {
		r.asap = arch.NewASAPTracker(dev.NumQubits)
	}
	r.check = interrupt.NewChecker(opts.Ctx, ctxCheckEvery)
	return r
}

// unlink removes gate i from the remaining sequence. The frontier is
// notified first: it reads the intact list pointers to retreat its window.
func (r *remapper) unlink(i int) {
	if r.f != nil {
		r.f.remove(i)
	}
	if r.prev[i] >= 0 {
		r.next[r.prev[i]] = r.next[i]
	} else {
		r.head = r.next[i]
	}
	if r.next[i] >= 0 {
		r.prev[r.next[i]] = r.prev[i]
	}
	r.live--
}

// run executes the main CODAR loop (paper Fig 4).
func (r *remapper) run() {
	t := 0
	for r.live > 0 {
		if r.exceeded {
			return
		}
		if err := r.check.Check(); err != nil {
			r.ctxErr = err
			return
		}
		r.cycles++
		// Steps 1–2: launch every lock-free executable CF gate at t, to a
		// fixpoint (launching can expose new CF gates that are also free).
		launchedAny := false
		for {
			launched := false
			for _, i := range r.computeFront() {
				if r.executable(i, t) {
					r.launchGate(i, t)
					launched = true
				}
			}
			if !launched {
				break
			}
			launchedAny = true
		}
		if r.live == 0 {
			break
		}

		// Step 3: greedy positive-priority SWAP insertion.
		front := r.computeFront()
		inserted := r.insertSwaps(front, t)

		if launchedAny {
			r.streak = 0
		}
		free := r.allFree(t)
		if r.opts.checkEvents {
			if want := r.allFreeScan(t); free != want {
				panic(fmt.Sprintf("codar: allFree(%d) = %v, scan says %v", t, free, want))
			}
		}
		if !launchedAny && !inserted && free {
			// Deadlock (§IV-D): no executable gate, no positive SWAP, all
			// qubits free. Force the highest-priority SWAP; escape to
			// direct routing after a bounded streak (DESIGN.md §4).
			r.streak++
			if r.streak >= r.opts.deadlockStreak() {
				r.directRoute(front, t)
				r.streak = 0
			} else {
				r.forceSwap(front, t)
			}
		}

		// Advance the timeline to the next lock expiry.
		nt := r.nextEvent(t)
		if r.opts.checkEvents {
			if want := r.nextEventScan(t); nt != want {
				panic(fmt.Sprintf("codar: nextEvent(%d) = %d, scan says %d", t, nt, want))
			}
		}
		if nt > t {
			t = nt
		}
	}
}

// executable reports whether gate i can launch at time t: every operand's
// physical qubit is lock-free, and two-qubit operands are coupled
// (paper §IV-C step 2).
func (r *remapper) executable(i, t int) bool {
	for _, q := range r.soa.Operands(i) {
		if r.locks[r.layout.Phys(int(q))] > t {
			return false
		}
	}
	if r.soa.Is2Q[i] {
		q1, q2 := r.soa.Pair(i)
		return r.dev.Adjacent(r.layout.Phys(q1), r.layout.Phys(q2))
	}
	return true
}

// launchGate schedules gate i at time t on its current physical qubits,
// updates the locks and removes it from the remaining sequence.
func (r *remapper) launchGate(i, t int) {
	phys := r.gates[i]
	ops := r.soa.Operands(i)
	phys.Qubits = r.arena.Take(len(ops))
	for k, q := range ops {
		phys.Qubits[k] = r.layout.Phys(int(q))
	}
	dur := r.dev.Durations.Of(r.soa.Ops[i])
	end := t + dur
	for _, p := range phys.Qubits {
		if end > r.locks[p] {
			r.locks[p] = end
			r.pushLock(p, end)
		}
	}
	r.emit(schedule.ScheduledGate{Gate: phys, Start: t, Duration: dur})
	if end > r.makespan {
		r.makespan = end
	}
	r.unlink(i)
	r.streak = 0
}

// launchSwap schedules a SWAP on physical qubits (a, b) starting at start,
// updates the locks and applies the permutation to the layout immediately
// (gates touching a or b cannot start before the SWAP's locks expire, so
// the early layout update is safe).
func (r *remapper) launchSwap(a, b, start int) {
	dur := r.swapDur
	end := start + dur
	r.locks[a] = end
	r.locks[b] = end
	r.pushLock(a, end)
	r.pushLock(b, end)
	qs := r.arena.Take(2)
	qs[0], qs[1] = a, b
	r.emit(schedule.ScheduledGate{
		Gate:     circuit.Gate{Op: circuit.OpSwap, Qubits: qs},
		Start:    start,
		Duration: dur,
	})
	if end > r.makespan {
		r.makespan = end
	}
	r.layout.SwapPhysical(a, b)
	if r.sc != nil {
		r.sc.noteSwap(a, b)
	}
	r.swapCount++
}

// emit appends sg to the output keeping it sorted by start time, with
// equal starts in emission order — the ordering the final
// sort.SliceStable pass used to establish. Gates arrive almost sorted
// (cycles launch at non-decreasing t; only directRoute schedules into the
// future), so the common case is a plain append and the rare out-of-order
// gate is placed by binary search plus shift.
func (r *remapper) emit(sg schedule.ScheduledGate) {
	if r.asap != nil {
		if span := r.asap.Note(sg.Gate.Qubits, sg.Duration); r.opts.DepthBound.Exceeded(span) {
			r.exceeded = true
		}
	}
	out := append(r.out, sg)
	if n := len(out) - 1; n > 0 && out[n-1].Start > sg.Start {
		i := sort.Search(n, func(k int) bool { return out[k].Start > sg.Start })
		copy(out[i+1:], out[i:n])
		out[i] = sg
	}
	r.out = out
}

// lockHeap entries pack (end, qubit) into one int64 ordered by end first.
// The qubit field is wide enough for any realistic device; ends stay far
// below 2^43 (makespans are bounded by Σ gate durations).
const lockQubitBits = 20

// pushLock records a new lock expiry for qubit q in the event heap.
func (r *remapper) pushLock(q, end int) {
	h := append(r.lockHeap, int64(end)<<lockQubitBits|int64(q))
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	r.lockHeap = h
}

// allFree reports whether every physical qubit is lock-free at t. Locks
// are per-qubit non-decreasing and every assigned expiry also raises the
// makespan, so max over locks equals the makespan at all times and the
// per-qubit scan collapses to one comparison (cross-checked against
// allFreeScan by the checkEvents property tests).
func (r *remapper) allFree(t int) bool { return r.makespan <= t }

// allFreeScan is the O(Q) reference implementation of allFree.
func (r *remapper) allFreeScan(t int) bool {
	for _, l := range r.locks {
		if l > t {
			return false
		}
	}
	return true
}

// nextEvent returns the smallest lock expiry strictly after t, or t when no
// lock is pending. Heap entries that expired or were superseded by a later
// lock on the same qubit are discarded lazily.
func (r *remapper) nextEvent(t int) int {
	h := r.lockHeap
	for len(h) > 0 {
		top := h[0]
		end := int(top >> lockQubitBits)
		q := int(top & (1<<lockQubitBits - 1))
		if end > t && r.locks[q] == end {
			r.lockHeap = h
			return end
		}
		// Stale or expired: pop and sift down.
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		for i := 0; ; {
			c := 2*i + 1
			if c >= n {
				break
			}
			if rc := c + 1; rc < n && h[rc] < h[c] {
				c = rc
			}
			if h[i] <= h[c] {
				break
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	r.lockHeap = h
	return t
}

// nextEventScan is the O(Q) reference implementation of nextEvent.
func (r *remapper) nextEventScan(t int) int {
	nt := -1
	for _, l := range r.locks {
		if l > t && (nt < 0 || l < nt) {
			nt = l
		}
	}
	if nt < 0 {
		return t
	}
	return nt
}

// directRoute is the bounded deadlock escape: route the oldest blocked
// two-qubit CF gate along a shortest path, scheduling each SWAP as soon as
// its qubits free up. The gate itself is launched by subsequent cycles once
// its operands are adjacent.
func (r *remapper) directRoute(front []int, t int) {
	target := -1
	for _, i := range front {
		if !r.soa.Is2Q[i] {
			continue
		}
		q1, q2 := r.soa.Pair(i)
		if r.dev.Distance(r.layout.Phys(q1), r.layout.Phys(q2)) > 1 {
			target = i
			break
		}
	}
	if target < 0 {
		return
	}
	q1, q2 := r.soa.Pair(target)
	p1 := r.layout.Phys(q1)
	p2 := r.layout.Phys(q2)
	// Under a calibrated metric the escape route follows the minimum-weight
	// path (fewest expected errors), not the fewest hops; with zero
	// calibration the two coincide, tie-breaks included.
	var path []int
	if r.opts.Cost != nil {
		path = r.opts.Cost.ShortestPath(p1, p2)
	} else {
		path = r.dev.ShortestPath(p1, p2)
	}
	// Swap the first operand down the path until it neighbours the second.
	for k := 0; k+2 < len(path); k++ {
		a, b := path[k], path[k+1]
		start := t
		if r.locks[a] > start {
			start = r.locks[a]
		}
		if r.locks[b] > start {
			start = r.locks[b]
		}
		r.launchSwap(a, b, start)
	}
	r.routed++
}

// result packages the run outcome.
func (r *remapper) result() *Result {
	s := &schedule.Schedule{
		NumQubits: r.dev.NumQubits,
		Gates:     r.out,
		Makespan:  r.makespan,
	}
	return &Result{
		Schedule:      s,
		Circuit:       s.Circuit("codar"),
		InitialLayout: r.initial,
		FinalLayout:   r.layout.Clone(),
		SwapCount:     r.swapCount,
		Makespan:      r.makespan,
		Cycles:        r.cycles,
		ForcedSwaps:   r.forced,
		DirectRoutes:  r.routed,
	}
}
