// Package chaos is the fault-injection harness for the serving pipeline:
// an Injector threaded into the service (service.Config.Chaos, surfaced as
// codard -chaos-slow / -chaos-panic-every) that delays mapping jobs and
// panics on a deterministic cadence, so the robustness machinery —
// cancellation, deadlines, backpressure, panic recovery — is exercised by
// tests and the CI chaos-smoke job rather than trusted. A nil *Injector is
// inert, so production paths carry no chaos branches beyond one nil check.
package chaos

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"codar/internal/interrupt"
)

// Injector injects faults into mapping jobs. The zero value injects
// nothing; fields can be combined. Safe for concurrent use.
type Injector struct {
	// SlowMapper delays every mapping job by this much before it starts,
	// honoring the job's context — a canceled request does not sit out the
	// full delay. It simulates pathological circuits and starved CPUs, the
	// conditions that make queue-wait budgets and deadlines fire.
	SlowMapper time.Duration
	// PanicEvery makes every Nth mapping job panic (1-based: the Nth, 2Nth,
	// ... jobs fail). It proves panics surface as 500s with the process —
	// and the cache — intact. 0 disables.
	PanicEvery int

	calls atomic.Uint64
}

// Enabled reports whether the injector would inject anything.
func (inj *Injector) Enabled() bool {
	return inj != nil && (inj.SlowMapper > 0 || inj.PanicEvery > 0)
}

// BeforeMap runs the injected faults for one mapping job: the slow-mapper
// delay (aborted early, with the classified error, if ctx fires first),
// then the panic cadence. Call it inside the worker slot, before the real
// mapping work. A nil receiver returns nil immediately.
func (inj *Injector) BeforeMap(ctx context.Context) error {
	if inj == nil {
		return nil
	}
	if inj.SlowMapper > 0 {
		timer := time.NewTimer(inj.SlowMapper)
		defer timer.Stop()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-timer.C:
		case <-done:
			return interrupt.Classify(ctx)
		}
	}
	if inj.PanicEvery > 0 && inj.calls.Add(1)%uint64(inj.PanicEvery) == 0 {
		panic(fmt.Sprintf("chaos: injected panic (every %d jobs)", inj.PanicEvery))
	}
	return nil
}
