package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"codar/internal/interrupt"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Error("nil injector reports Enabled")
	}
	if err := inj.BeforeMap(context.Background()); err != nil {
		t.Errorf("nil injector injected error: %v", err)
	}
}

func TestZeroValueInjectsNothing(t *testing.T) {
	inj := &Injector{}
	if inj.Enabled() {
		t.Error("zero-value injector reports Enabled")
	}
	for i := 0; i < 10; i++ {
		if err := inj.BeforeMap(context.Background()); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestSlowMapperDelays(t *testing.T) {
	inj := &Injector{SlowMapper: 50 * time.Millisecond}
	if !inj.Enabled() {
		t.Error("slow injector not Enabled")
	}
	t0 := time.Now()
	if err := inj.BeforeMap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Errorf("BeforeMap returned after %v, want >= 50ms", d)
	}
}

// TestSlowMapperHonorsContext: a canceled request must not sit out the full
// injected delay, and the error must be the classified sentinel so the
// service maps it to 499/504 like any other aborted mapping.
func TestSlowMapperHonorsContext(t *testing.T) {
	inj := &Injector{SlowMapper: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	err := inj.BeforeMap(ctx)
	if !errors.Is(err, interrupt.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Errorf("BeforeMap sat out %v of a canceled delay", d)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	if err := inj.BeforeMap(dctx); !errors.Is(err, interrupt.ErrDeadline) {
		t.Errorf("deadline err = %v, want ErrDeadline", err)
	}

	// nil ctx (in-process callers that never cancel) takes the plain delay.
	fast := &Injector{SlowMapper: time.Millisecond}
	if err := fast.BeforeMap(nil); err != nil {
		t.Errorf("nil ctx: %v", err)
	}
}

// TestPanicEveryCadence: exactly every Nth call panics, 1-based, so
// PanicEvery:2 fails calls 2, 4, 6, ...
func TestPanicEveryCadence(t *testing.T) {
	inj := &Injector{PanicEvery: 2}
	if !inj.Enabled() {
		t.Error("panic injector not Enabled")
	}
	panicked := func() (p bool) {
		defer func() {
			if recover() != nil {
				p = true
			}
		}()
		if err := inj.BeforeMap(context.Background()); err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return false
	}
	want := []bool{false, true, false, true, false, true}
	for i, w := range want {
		if got := panicked(); got != w {
			t.Errorf("call %d: panicked=%v, want %v", i+1, got, w)
		}
	}
}
