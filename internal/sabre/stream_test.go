package sabre

import (
	"context"
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
	"codar/internal/testutil"
)

// checkStreamEqualsBatch is the SABRE differential property: the
// concatenated chunk gate values equal the batch result circuit, the times
// equal the ASAP recurrence over that circuit, and the run statistics and
// layouts match.
func checkStreamEqualsBatch(t *testing.T, c *circuit.Circuit, dev *arch.Device, initial *arch.Layout, opts Options) {
	t.Helper()
	want, err := Remap(c, dev, initial, opts)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	var col schedule.Collector
	res, err := RemapStream(circuit.NewSliceSource(c), dev, initial, opts, &col)
	if err != nil {
		t.Fatalf("RemapStream: %v", err)
	}
	if len(col.Gates) != len(want.Circuit.Gates) {
		t.Fatalf("streamed %d gates, batch %d", len(col.Gates), len(want.Circuit.Gates))
	}
	avail := make([]int, dev.NumQubits)
	for i := range col.Gates {
		g, w := col.Gates[i], want.Circuit.Gates[i]
		if !g.Gate.Equal(w) {
			t.Fatalf("gate %d: stream %v, batch %v", i, g.Gate, w)
		}
		start := 0
		for _, q := range w.Qubits {
			if avail[q] > start {
				start = avail[q]
			}
		}
		dur := dev.Durations.Of(w.Op)
		for _, q := range w.Qubits {
			avail[q] = start + dur
		}
		if g.Start != start || g.Duration != dur {
			t.Fatalf("gate %d times: stream (%d,%d), ASAP (%d,%d)", i, g.Start, g.Duration, start, dur)
		}
	}
	if res.SwapCount != want.SwapCount {
		t.Errorf("SwapCount: stream %d, batch %d", res.SwapCount, want.SwapCount)
	}
	if res.NumClbits != want.Circuit.NumClbits {
		t.Errorf("NumClbits: stream %d, batch %d", res.NumClbits, want.Circuit.NumClbits)
	}
	if !res.InitialLayout.Equal(want.InitialLayout) || !res.FinalLayout.Equal(want.FinalLayout) {
		t.Errorf("layout mismatch between stream and batch")
	}
}

// TestRemapStreamEqualsRemap sweeps random circuits large enough to force
// several refills, across devices, scoring paths and option extremes.
func TestRemapStreamEqualsRemap(t *testing.T) {
	devices := []*arch.Device{
		arch.Linear(6),
		arch.Ring(7),
		arch.Grid("g33", 3, 3),
		arch.IBMQ5(),
		arch.IBMQ20Tokyo(),
	}
	for seed := int64(1); seed <= 5; seed++ {
		dev := devices[int(seed)%len(devices)]
		c := randCircuit(seed, dev.NumQubits, 3000)
		checkStreamEqualsBatch(t, c, dev, nil, Options{})
		checkStreamEqualsBatch(t, c, dev, nil, Options{naiveScore: true})
		checkStreamEqualsBatch(t, c, dev, nil, Options{ExtendedSize: 4, DecayReset: 2})
	}
}

// TestRemapStreamSeededLayout pins the streaming path under a non-trivial
// initial layout — the configuration the service and CLI use.
func TestRemapStreamSeededLayout(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(9, dev.NumQubits, 2500)
	initial, err := InitialLayout(c, dev, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkStreamEqualsBatch(t, c, dev, initial, Options{})
}

// TestRemapStreamQFT pins a structured (all-to-all) workload, whose long
// dependency chains exercise the chain-tail starvation rules hard.
func TestRemapStreamQFT(t *testing.T) {
	dev := arch.Grid("g34", 3, 4)
	checkStreamEqualsBatch(t, qftLike(12), dev, nil, Options{})
}

// TestRemapStreamMultiEpoch pins that large inputs actually stream.
func TestRemapStreamMultiEpoch(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(7, dev.NumQubits, 6000)
	var col schedule.Collector
	if _, err := RemapStream(circuit.NewSliceSource(c), dev, nil, Options{}, &col); err != nil {
		t.Fatal(err)
	}
	if col.Chunks < 2 {
		t.Fatalf("6000-gate run flushed %d chunks, want streaming (>= 2)", col.Chunks)
	}
}

// TestRemapStreamLateQubit pins the untouched-qubit rule: a circuit whose
// last declared qubit first appears beyond several refill batches must
// still map byte-identically (the buffer grows to cover the gap).
func TestRemapStreamLateQubit(t *testing.T) {
	dev := arch.Grid("g33", 3, 3)
	c := circuit.New(9)
	s := uint64(99)
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	for i := 0; i < 4000; i++ { // qubit 8 untouched for four batches
		a, b := next(8), next(8)
		if a == b {
			b = (b + 1) % 8
		}
		c.CX(a, b)
	}
	c.H(8)
	c.CX(8, next(8))
	checkStreamEqualsBatch(t, c, dev, nil, Options{})
}

// TestRemapStreamSmallInput pins sub-batch inputs and the empty stream.
func TestRemapStreamSmallInput(t *testing.T) {
	dev := arch.Linear(4)
	checkStreamEqualsBatch(t, randCircuit(3, 4, 40), dev, nil, Options{})

	var col schedule.Collector
	res, err := RemapStream(circuit.NewSliceSource(circuit.New(3)), dev, nil, Options{}, &col)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gates != 0 || col.Chunks != 0 {
		t.Fatalf("empty stream: gates %d chunks %d, want zeros", res.Gates, col.Chunks)
	}
}

// TestRemapStreamMeasure pins classical-bit growth through the stream path.
func TestRemapStreamMeasure(t *testing.T) {
	dev := arch.Linear(3)
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.Measure(0, 0)
	c.Measure(1, 1)
	c.Measure(2, 2)
	checkStreamEqualsBatch(t, c, dev, nil, Options{})
}

// TestRemapStreamWindowBoundaries runs the window-eviction adversaries
// (mirroring the core suite): shared-control CX rounds keep the DAG front
// maximally wide across refills, one long dependency chain puts a chain
// tail at every refill boundary (starvation rule 2's worst case), and
// barrier-free single-qubit runs stack mutually-commutable gates on one
// qubit. Each must map byte-identically to batch.
func TestRemapStreamWindowBoundaries(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	n := dev.NumQubits
	circuits := map[string]*circuit.Circuit{}

	shared := circuit.New(n)
	for len(shared.Gates) < 3000 {
		for q := 1; q < n && len(shared.Gates) < 3000; q++ {
			shared.CX(0, q)
		}
	}
	circuits["shared-control"] = shared

	chain := circuit.New(n)
	for q := 0; len(chain.Gates) < 3000; q = (q + 1) % n {
		chain.CX(q, (q+1)%n)
	}
	circuits["long-chain"] = chain

	runs := circuit.New(n)
	for len(runs.Gates) < 3000 {
		for i := 0; i < 64 && len(runs.Gates) < 3000; i++ {
			runs.RZ(float64(len(runs.Gates)%7)*0.1, 0)
		}
		if len(runs.Gates) < 3000 {
			runs.CX(0, 1)
		}
	}
	circuits["rz-runs"] = runs

	for name, c := range circuits {
		c := c
		t.Run(name, func(t *testing.T) {
			checkStreamEqualsBatch(t, c, dev, nil, Options{})
			checkStreamEqualsBatch(t, c, dev, nil, Options{ExtendedSize: 4, DecayReset: 2})
		})
	}
}

// TestRemapStreamDeterministicFlush pins the chunking: for a fixed input
// and options, two runs flush identical chunk-size sequences.
func TestRemapStreamDeterministicFlush(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(13, dev.NumQubits, 6000)
	sizes := func() []int {
		var out []int
		sink := schedule.FuncSink(func(chunk []schedule.ScheduledGate) error {
			out = append(out, len(chunk))
			return nil
		})
		if _, err := RemapStream(circuit.NewSliceSource(c), dev, nil, Options{}, sink); err != nil {
			t.Fatalf("RemapStream: %v", err)
		}
		return out
	}
	a, b := sizes(), sizes()
	if len(a) < 2 {
		t.Fatalf("6000-gate run flushed %d chunks, want streaming", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d: %d gates then %d gates", i, a[i], b[i])
		}
	}
}

// TestRemapStreamCancel pins cancellation mid-stream on the SABRE path: a
// context canceled after the first flush surfaces an error, stops the run,
// and strands no goroutine.
func TestRemapStreamCancel(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(11, dev.NumQubits, 6000)
	ctx, cancel := context.WithCancel(context.Background())
	flushed := 0
	sink := schedule.FuncSink(func(chunk []schedule.ScheduledGate) error {
		flushed++
		cancel()
		return nil
	})
	_, err := RemapStream(circuit.NewSliceSource(c), dev, nil, Options{Ctx: ctx}, sink)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if flushed == 0 {
		t.Fatal("cancel fired before any flush; test needs a larger input")
	}
}
