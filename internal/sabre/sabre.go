// Package sabre reimplements the SWAP-based bidirectional heuristic search
// of Li, Ding & Xie, "Tackling the Qubit Mapping Problem for NISQ-Era
// Quantum Devices" (ASPLOS 2019) — the best-known algorithm the CODAR paper
// compares against, with its published hyper-parameters: front layer F,
// extended set E (|E| ≤ 20, weight W = 0.5) and the decay mechanism
// (δ = 0.001, reset every 5 rounds or on gate execution). SABRE is
// depth-oriented and duration-unaware: it never consults gate durations,
// which is precisely the gap CODAR exploits.
package sabre

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/interrupt"
)

// ErrDepthBound is returned by Remap when Options.DepthBound is set and the
// emitted prefix's ASAP makespan exceeded it: the run was abandoned because
// it could no longer beat the portfolio incumbent (DESIGN.md §9).
var ErrDepthBound = errors.New("sabre: depth bound exceeded")

// ErrCanceled and ErrDeadline are returned by Remap and InitialLayout when
// Options.Ctx fires mid-run. They are the shared pipeline sentinels —
// errors.Is also matches context.Canceled / context.DeadlineExceeded.
var (
	ErrCanceled = interrupt.ErrCanceled
	ErrDeadline = interrupt.ErrDeadline
)

// ctxCheckEvery is the amortized cancellation cadence: the main loop polls
// Options.Ctx every this many rounds (execute or swap). Rounds run in
// microseconds, so the poll is free at this granularity while bounding
// cancellation latency far below human-visible delays (DESIGN.md §11).
const ctxCheckEvery = 64

// Options tunes SABRE. The zero value selects the published defaults.
type Options struct {
	// Ctx, when non-nil, makes the run cancelable: the main loop polls it
	// at an amortized cadence (every ctxCheckEvery rounds) and Remap /
	// InitialLayout return ErrCanceled / ErrDeadline once it fires,
	// discarding all partial output. nil (or a never-done context) leaves
	// the run — and its output bytes — untouched.
	Ctx context.Context
	// ExtendedSize caps the extended set E. 0 means DefaultExtendedSize.
	ExtendedSize int
	// ExtendedWeight is W in H = H_F + W*H_E. 0 means DefaultExtendedWeight.
	ExtendedWeight float64
	// DecayDelta is added to a qubit's decay on each swap using it.
	// 0 means DefaultDecayDelta.
	DecayDelta float64
	// DecayReset is the number of swap rounds between decay resets.
	// 0 means DefaultDecayReset.
	DecayReset int
	// Cost, when non-nil, replaces the hop-count distance matrix in the
	// H = H_F + W·H_E scoring with a calibration-weighted metric
	// (DESIGN.md §8). It must be built for the target device. nil — and a
	// model with zero calibration weights — preserve the published SABRE
	// objective bit-for-bit (CostScale is a power of two, so the float
	// quotients scale exactly).
	Cost *arch.CostModel
	// DepthBound, when non-nil, enables the portfolio early-abandon
	// protocol: the mapper tracks the ASAP makespan of the gates emitted so
	// far under the device durations — a monotone lower bound on the
	// output's weighted depth — and Remap returns ErrDepthBound once it
	// strictly exceeds the published bound. nil leaves the run (and its
	// output bytes) untouched. SABRE itself stays duration-unaware: the
	// bound only decides when to give up, never which SWAP to pick.
	DepthBound *arch.DepthBound

	// naiveScore selects the from-scratch reference scoring (score) over
	// the incidence-indexed base+delta evaluation. Test-only: the
	// scoring-equivalence property tests run both and require identical
	// output circuits.
	naiveScore bool
}

// Published SABRE hyper-parameters.
const (
	DefaultExtendedSize   = 20
	DefaultExtendedWeight = 0.5
	DefaultDecayDelta     = 0.001
	DefaultDecayReset     = 5
)

func (o Options) extendedSize() int {
	if o.ExtendedSize <= 0 {
		return DefaultExtendedSize
	}
	return o.ExtendedSize
}

func (o Options) extendedWeight() float64 {
	if o.ExtendedWeight <= 0 {
		return DefaultExtendedWeight
	}
	return o.ExtendedWeight
}

func (o Options) decayDelta() float64 {
	if o.DecayDelta <= 0 {
		return DefaultDecayDelta
	}
	return o.DecayDelta
}

func (o Options) decayReset() int {
	if o.DecayReset <= 0 {
		return DefaultDecayReset
	}
	return o.DecayReset
}

// Result is the outcome of a SABRE mapping run.
type Result struct {
	// Circuit is the hardware-compliant physical gate sequence (with the
	// inserted SWAPs) in emission order.
	Circuit *circuit.Circuit
	// InitialLayout and FinalLayout bracket the run.
	InitialLayout *arch.Layout
	FinalLayout   *arch.Layout
	// SwapCount is the number of SWAPs inserted.
	SwapCount int
}

// Remap runs SABRE on circuit c targeting dev from the given initial
// layout (nil means trivial). Requirements mirror core.Remap: the circuit
// must be lowered and fit the device.
func Remap(c *circuit.Circuit, dev *arch.Device, initial *arch.Layout, opts Options) (*Result, error) {
	return RemapAssembled(circuit.Assemble(c), dev, initial, opts)
}

// RemapAssembled is Remap over a pre-built assembly. Callers running the
// same circuit several times (the initial-layout forward/backward passes,
// the portfolio candidates) share one assembly so the DAG, the SoA gate
// layout and the validity walk are paid once; the output is byte-identical
// to Remap.
func RemapAssembled(a *circuit.Assembly, dev *arch.Device, initial *arch.Layout, opts Options) (*Result, error) {
	return remapAssembled(a, dev, initial, opts, false)
}

// remapAssembled optionally runs in layout-only mode (discard): the output
// circuit is never materialised — no presized gate buffer, no arena, no
// per-gate physical images — because the caller (the InitialLayout
// forward/backward passes) only reads FinalLayout. Every routing decision
// is a function of the layout and the DAG, never of the emitted output, so
// the resulting layout is byte-identical to a full run. Discard is ignored
// when a DepthBound is attached: the bound tracks emitted gates.
func remapAssembled(a *circuit.Assembly, dev *arch.Device, initial *arch.Layout, opts Options, discard bool) (*Result, error) {
	c := a.Circ
	if err := a.Checked(); err != nil {
		return nil, fmt.Errorf("sabre: %w", err)
	}
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("sabre: circuit %q needs %d qubits but device %s has %d", c.Name, c.NumQubits, dev.Name, dev.NumQubits)
	}
	if !dev.Connected() {
		return nil, fmt.Errorf("sabre: device %s is disconnected", dev.Name)
	}
	if initial == nil {
		initial = arch.NewTrivialLayout(c.NumQubits, dev.NumQubits)
	}
	if initial.NumLogical() != c.NumQubits || initial.NumPhysical() != dev.NumQubits {
		return nil, fmt.Errorf("sabre: layout shape %d/%d does not match circuit %d / device %d",
			initial.NumLogical(), initial.NumPhysical(), c.NumQubits, dev.NumQubits)
	}
	if opts.Cost != nil {
		if err := opts.Cost.CompatibleWith(dev); err != nil {
			return nil, fmt.Errorf("sabre: %w", err)
		}
	}
	if opts.DepthBound != nil {
		discard = false
	}
	if err := interrupt.Classify(opts.Ctx); err != nil {
		return nil, fmt.Errorf("sabre: %w", err)
	}
	m := &mapper{
		opts:    opts,
		dev:     dev,
		dag:     a.DAG(),
		soa:     a.SoA,
		gates:   c.Gates,
		discard: discard,
		layout:  initial.Clone(),
		initial: initial.Clone(),
		decay:   make([]float64, dev.NumQubits),
		out: &circuit.Circuit{
			Name:      "sabre",
			NumQubits: dev.NumQubits,
		},
	}
	if !discard {
		// Pre-size for the input plus a typical swap overhead; resizing
		// a 30k-gate output mid-run showed up in the allocation profile.
		m.out.Gates = make([]circuit.Gate, 0, len(c.Gates)+len(c.Gates)/4+16)
	}
	m.nq = dev.NumQubits
	if opts.Cost != nil {
		m.distTab = opts.Cost.Table()
	} else {
		m.distTab = dev.DistTable()
	}
	if opts.DepthBound != nil {
		m.asap = arch.NewASAPTracker(dev.NumQubits)
	}
	m.check = interrupt.NewChecker(opts.Ctx, ctxCheckEvery)
	m.resetDecay()
	m.run()
	if m.ctxErr != nil {
		return nil, fmt.Errorf("sabre: %w", m.ctxErr)
	}
	if m.exceeded {
		return nil, ErrDepthBound
	}
	return &Result{
		Circuit:       m.out,
		InitialLayout: m.initial,
		FinalLayout:   m.layout,
		SwapCount:     m.swaps,
	}, nil
}

type mapper struct {
	opts Options
	dev  *arch.Device
	dag  *circuit.DAG
	// soa is the shared struct-of-arrays view of the input gates; the hot
	// loops (executability, extended-set BFS, candidate enumeration, the
	// incidence index) read ops and operands from its dense arrays instead
	// of copying 64-byte Gate values out of the DAG. gates backs the
	// emission path, which needs full Gate values (params, cbits).
	soa   *circuit.SoA
	gates []circuit.Gate
	// discard marks a layout-only pass: no gate is ever appended to out.
	// Routing never reads out, so FinalLayout is unaffected.
	discard bool
	layout  *arch.Layout
	initial *arch.Layout
	decay   []float64
	out     *circuit.Circuit
	swaps   int

	// distTab is the flat distance matrix H scores against: the device hop
	// matrix, or the calibration-weighted one when Options.Cost is set.
	// Executability stays a dev.Adjacent question regardless.
	distTab []int32
	nq      int

	// Reused hot-loop scratch: the front double-buffer, the extended-set
	// BFS state (epoch-stamped instead of per-round maps), the candidate
	// buffer with its edge-dedup stamps, and the arena backing emitted
	// gates' qubit slices. Together these keep the swap-search loop
	// allocation-free after warm-up.
	spare      []int
	extBuf     []int
	queue      []int
	visitStamp []int32
	visitEpoch int32
	edgeStamp  []int32
	edgeEpoch  int32
	candBuf    []swapCand
	arena      circuit.IntArena

	// Extended-set memo: E depends only on the DAG front and in-degrees,
	// which change only when a gate executes — consecutive swap rounds
	// reuse the previous BFS result.
	ext      []int
	extValid bool

	// Incidence index for the base+delta scoring: per-physical-qubit lists
	// of the two-qubit front (incF) and extended-set (incE) gates — each
	// entry the gate's packed logical pair (q1«16 | q2), immutable under
	// swaps, so resolving current endpoints is two layout loads —
	// epoch-stamped so clearing costs nothing, plus the integer distance
	// sums of the unswapped layout. A candidate's score is then base +
	// delta over only the gates touching its two qubits. The index is
	// rebuilt only when a gate executes (idxValid); an applied swap
	// maintains it incrementally — the endpoint lists trade places and the
	// winning candidate's own deltas roll into the bases.
	incF     [][]int32
	incE     [][]int32
	incStamp []int32
	incEpoch int32
	baseF    int
	baseE    int
	nF       int
	nE       int
	idxValid bool

	// Per-edge cache of the integer distance deltas (dF over the front,
	// dE over the extended set). A delta involves only the gates incident
	// to the edge's qubits, so it survives swap rounds until a swap moves
	// one of those gates (hStamp epoch-invalidated wholesale on rebuild,
	// locally by noteSwap); the bases, which every swap shifts, are folded
	// in at comparison time.
	dFCache []int32
	dECache []int32
	hStamp  []int32
	hEpoch  int32

	// Early-abandon state (Options.DepthBound): the shared ASAP recurrence
	// over emitted gates — a monotone lower bound on the output circuit's
	// weighted depth — and the abandon flag run polls.
	asap     *arch.ASAPTracker
	exceeded bool

	// Cancellation state (Options.Ctx): the amortized context checker the
	// round loop polls, and the sticky typed error a fired context leaves
	// behind (DESIGN.md §11).
	check  interrupt.Checker
	ctxErr error

	// Streaming state (stream.go). sourceOpen marks that the buffered gates
	// are a prefix of a longer stream; lastOn[q] is the last buffered gate
	// index touching logical qubit q (-1 when untouched), so lastOn[q] == k
	// means k is a chain tail: unseen gates may depend on it, and any
	// decision that would see those dependents in a batch run starves — sets
	// starved and aborts — instead of diverging. executedMark records which
	// buffered gates were emitted this epoch (the driver evicts them). All
	// stay zero on the batch path.
	sourceOpen   bool
	starved      bool
	lastOn       []int32
	executedMark []bool
}

// chainTail reports whether buffered gate k is the last buffered gate on
// one of its qubits — the anchor unseen stream gates would attach to.
func (m *mapper) chainTail(k int) bool {
	for _, q := range m.soa.Operands(k) {
		if m.lastOn[q] == int32(k) {
			return true
		}
	}
	return false
}

func (m *mapper) resetDecay() {
	for i := range m.decay {
		m.decay[i] = 1
	}
}

// run executes the SABRE main loop.
func (m *mapper) run() {
	indeg := m.dag.InDegrees()
	n := m.dag.Len()
	m.visitStamp = make([]int32, n)
	m.spare = make([]int, 0, 16)
	front := make([]int, 0, 16)
	for k, d := range indeg {
		if d == 0 {
			front = append(front, k)
		}
	}
	sinceReset := 0
	stuck := 0
	// Safety valve: SABRE with decay terminates in practice; bound the
	// consecutive no-progress swaps defensively (see DESIGN.md §4).
	maxStuck := 4 * m.dev.NumQubits * (m.dev.Diameter() + 1)

	for len(front) > 0 {
		if m.exceeded {
			return
		}
		if err := m.check.Check(); err != nil {
			m.ctxErr = err
			return
		}
		// Execute every executable front gate. The surviving/unlocked set
		// is built into the spare buffer, which then swaps roles with the
		// current front (no per-round allocation).
		executed := false
		next := m.spare[:0]
		for _, k := range front {
			if m.executable(k) {
				m.emit(k)
				executed = true
				for _, s := range m.dag.Succs[k] {
					indeg[s]--
					if indeg[s] == 0 {
						next = append(next, s)
					}
				}
			} else {
				next = append(next, k)
			}
		}
		m.spare = front[:0]
		front = next
		if executed {
			m.resetDecay()
			sinceReset = 0
			stuck = 0
			m.extValid = false
			m.idxValid = false
			continue
		}
		if len(front) == 0 {
			break
		}
		// No front gate is executable: insert the best-scoring SWAP.
		if stuck >= maxStuck {
			m.directRoute(front)
			stuck = 0
			continue
		}
		// Swaps change neither the DAG front nor the in-degrees, so the
		// extended set survives until the next execution.
		if !m.extValid {
			m.ext = m.extendedSet(front)
			m.extValid = true
		}
		cand := m.bestSwap(front, m.ext)
		m.applySwap(cand)
		stuck++
		sinceReset++
		if sinceReset >= m.opts.decayReset() {
			m.resetDecay()
			sinceReset = 0
		}
	}
}

// executable reports whether gate k can be emitted under the current layout.
func (m *mapper) executable(k int) bool {
	if !m.soa.Is2Q[k] {
		return true // single-qubit gates and directives always execute
	}
	q1, q2 := m.soa.Pair(k)
	return m.dev.Adjacent(m.layout.Phys(q1), m.layout.Phys(q2))
}

// emit appends the physical image of logical gate k to the output. The
// input circuit already passed Checked and the layout maps into the device
// range, so the gate is appended directly instead of through out.Add's
// re-validation; the measure classical-bit growth Add would have done is
// replicated.
func (m *mapper) emit(k int) {
	if m.discard {
		return // layout-only pass: the output circuit is thrown away
	}
	phys := m.gates[k]
	ops := m.soa.Operands(k)
	phys.Qubits = m.arena.Take(len(ops))
	for i, q := range ops {
		phys.Qubits[i] = m.layout.Phys(int(q))
	}
	if phys.Op == circuit.OpMeasure && phys.Cbit >= m.out.NumClbits {
		m.out.NumClbits = phys.Cbit + 1
	}
	m.out.Gates = append(m.out.Gates, phys)
	if m.asap != nil {
		m.note(phys.Op, phys.Qubits)
	}
}

// note advances the shared ASAP recurrence by one emitted gate on physical
// qubits qs and flags the run for abandonment when the running makespan
// strictly exceeds the shared depth bound.
func (m *mapper) note(op circuit.Op, qs []int) {
	if span := m.asap.Note(qs, m.dev.Durations.Of(op)); m.opts.DepthBound.Exceeded(span) {
		m.exceeded = true
	}
}

// extendedSet collects up to ExtendedSize two-qubit gates reachable from
// the front layer through the DAG (the look-ahead window E). The BFS
// queue, result buffer and visited stamps live on the mapper; a node is
// visited this round when its stamp matches the round's epoch.
func (m *mapper) extendedSet(front []int) []int {
	m.starved = false
	limit := m.opts.extendedSize()
	m.visitEpoch++
	ext := m.extBuf[:0]
	queue := append(m.queue[:0], front...)
	for pop := 0; pop < len(queue) && len(ext) < limit; pop++ {
		k := queue[pop]
		if m.sourceOpen && m.chainTail(k) {
			// Streaming: the BFS is about to expand a chain tail, whose
			// successor set may grow with unseen gates — a batch run would
			// see them here. Starve; the BFS touched only epoch-stamped
			// scratch, so the post-refill retry is clean.
			m.starved = true
			m.extBuf = ext[:0]
			m.queue = queue[:0]
			return nil
		}
		for _, s := range m.dag.Succs[k] {
			if m.visitStamp[s] == m.visitEpoch {
				continue
			}
			m.visitStamp[s] = m.visitEpoch
			if m.soa.Is2Q[s] {
				ext = append(ext, s)
				if len(ext) >= limit {
					break
				}
			}
			queue = append(queue, s)
		}
	}
	m.extBuf = ext
	m.queue = queue[:0]
	return ext
}

// swapCand is a candidate SWAP on a coupler.
type swapCand struct {
	a, b, edge int
}

// candidates enumerates couplers incident to the physical qubits of the
// unexecutable two-qubit front gates (obtain_swaps in the paper). The
// result buffer and edge-dedup stamps are reused across rounds.
func (m *mapper) candidates(front []int) []swapCand {
	if m.edgeStamp == nil {
		m.edgeStamp = make([]int32, len(m.dev.Edges))
	}
	m.edgeEpoch++
	out := m.candBuf[:0]
	for _, k := range front {
		if !m.soa.Is2Q[k] {
			continue
		}
		for _, q := range m.soa.Operands(k) {
			p := m.layout.Phys(int(q))
			for _, nb := range m.dev.Neighbors(p) {
				a, b := p, nb
				if a > b {
					a, b = b, a
				}
				id, _ := m.dev.EdgeIndex(a, b)
				if m.edgeStamp[id] == m.edgeEpoch {
					continue
				}
				m.edgeStamp[id] = m.edgeEpoch
				out = append(out, swapCand{a: a, b: b, edge: id})
			}
		}
	}
	m.candBuf = out
	return out
}

// indexRound (re)builds the per-physical-qubit incidence index and the
// unswapped integer distance sums, and drops every cached h.
func (m *mapper) indexRound(front, ext []int) {
	if m.incF == nil {
		nq := m.dev.NumQubits
		m.incF = make([][]int32, nq)
		m.incE = make([][]int32, nq)
		m.incStamp = make([]int32, nq)
		m.dFCache = make([]int32, len(m.dev.Edges))
		m.dECache = make([]int32, len(m.dev.Edges))
		m.hStamp = make([]int32, len(m.dev.Edges))
	}
	m.incEpoch++
	m.hEpoch++
	m.baseF, m.nF = m.index(front, m.incF)
	m.baseE, m.nE = m.index(ext, m.incE)
}

func (m *mapper) index(set []int, inc [][]int32) (base, n int) {
	for _, k := range set {
		if !m.soa.Is2Q[k] {
			continue
		}
		q1, q2 := m.soa.Pair(k)
		p1 := m.layout.Phys(q1)
		p2 := m.layout.Phys(q2)
		base += m.distance(p1, p2)
		n++
		m.bucket(p1)
		m.bucket(p2)
		ent := int32(q1)<<16 | int32(q2)
		inc[p1] = append(inc[p1], ent)
		inc[p2] = append(inc[p2], ent)
	}
	return base, n
}

// bucket lazily clears both incidence lists of qubit p on its first touch
// this round.
func (m *mapper) bucket(p int) {
	if m.incStamp[p] != m.incEpoch {
		m.incStamp[p] = m.incEpoch
		m.incF[p] = m.incF[p][:0]
		m.incE[p] = m.incE[p][:0]
	}
}

// distance is the metric H scores against: hop distance by default, the
// calibration-weighted metric under Options.Cost.
func (m *mapper) distance(a, b int) int { return int(m.distTab[a*m.nq+b]) }

// swappedPhys returns where physical qubit p ends up under a SWAP of (a, b).
func swappedPhys(p, a, b int) int {
	switch p {
	case a:
		return b
	case b:
		return a
	default:
		return p
	}
}

// deltaSum is the integer change of Σ D over one gate set under candidate
// c, evaluated only on the gates incident to c's qubits — every other
// gate's distance is untouched by the swap. Gates spanning both candidate
// qubits are visited once via the c.a-side skip.
func (m *mapper) deltaSum(c swapCand, inc [][]int32) int {
	sum := 0
	if m.incStamp[c.a] == m.incEpoch { // untouched buckets are stale, not empty
		for _, ent := range inc[c.a] {
			p1 := m.layout.Phys(int(ent >> 16))
			p2 := m.layout.Phys(int(ent & 0xffff))
			sum += m.distance(swappedPhys(p1, c.a, c.b), swappedPhys(p2, c.a, c.b)) - m.distance(p1, p2)
		}
	}
	if m.incStamp[c.b] == m.incEpoch {
		for _, ent := range inc[c.b] {
			p1 := m.layout.Phys(int(ent >> 16))
			p2 := m.layout.Phys(int(ent & 0xffff))
			if p1 == c.a || p2 == c.a {
				continue // already counted from the c.a side
			}
			sum += m.distance(swappedPhys(p1, c.a, c.b), swappedPhys(p2, c.a, c.b)) - m.distance(p1, p2)
		}
	}
	return sum
}

// scoreDelta computes the identical value to score via the incidence
// index: the distance sums are integers, so base + delta is exact and the
// float operations replicate score's order of evaluation bit-for-bit. The
// per-edge deltas are cached across swap rounds; the bases (shifted by
// every applied swap) and the decay are folded in at comparison time.
func (m *mapper) scoreDelta(c swapCand, ext []int) float64 {
	var dF, dE int
	if m.hStamp[c.edge] == m.hEpoch {
		dF, dE = int(m.dFCache[c.edge]), int(m.dECache[c.edge])
	} else {
		dF = m.deltaSum(c, m.incF)
		if m.nE > 0 {
			dE = m.deltaSum(c, m.incE)
		}
		m.dFCache[c.edge], m.dECache[c.edge] = int32(dF), int32(dE)
		m.hStamp[c.edge] = m.hEpoch
	}
	var h float64
	if m.nF > 0 {
		h = float64(m.baseF+dF) / float64(m.nF)
	}
	if len(ext) > 0 && m.nE > 0 {
		h += m.opts.extendedWeight() * float64(m.baseE+dE) / float64(m.nE)
	}
	d := m.decay[c.a]
	if m.decay[c.b] > d {
		d = m.decay[c.b]
	}
	return d * h
}

// dirtyAround drops the cached h of every edge incident to physical
// qubit p.
func (m *mapper) dirtyAround(p int) {
	for _, nb := range m.dev.Neighbors(p) {
		id, _ := m.dev.EdgeIndex(p, nb)
		m.hStamp[id] = 0
	}
}

// noteSwap maintains the incidence index across an applied swap: every
// gate with an endpoint at a now has it at b and vice versa, so the
// endpoint lists (and their round stamps) trade places; the bases absorb
// the winner's own deltas (computed against the pre-swap layout, so the
// caller runs this before layout.SwapPhysical); and every edge whose
// incident terms moved — at a, at b, or at the far endpoints of the moved
// gates — loses its cached h.
func (m *mapper) noteSwap(c swapCand) {
	m.baseF += m.deltaSum(c, m.incF)
	m.baseE += m.deltaSum(c, m.incE)
	a, b := c.a, c.b
	m.incF[a], m.incF[b] = m.incF[b], m.incF[a]
	m.incE[a], m.incE[b] = m.incE[b], m.incE[a]
	m.incStamp[a], m.incStamp[b] = m.incStamp[b], m.incStamp[a]
	m.dirtyAround(a)
	m.dirtyAround(b)
	for _, p := range [2]int{a, b} {
		if m.incStamp[p] != m.incEpoch {
			continue
		}
		for _, ent := range m.incF[p] {
			m.dirtyAround(m.layout.Phys(int(ent >> 16)))
			m.dirtyAround(m.layout.Phys(int(ent & 0xffff)))
		}
		for _, ent := range m.incE[p] {
			m.dirtyAround(m.layout.Phys(int(ent >> 16)))
			m.dirtyAround(m.layout.Phys(int(ent & 0xffff)))
		}
	}
}

// score computes the decay-weighted SABRE heuristic for a candidate:
// H = max(decay) * ( Σ_F D/|F| + W * Σ_E D/|E| ) under the post-swap layout.
// Retained as the reference implementation (Options.naiveScore) for the
// scoring-equivalence tests; the production path is scoreDelta.
func (m *mapper) score(c swapCand, front, ext []int) float64 {
	sw := func(p int) int { return swappedPhys(p, c.a, c.b) }
	sumOver := func(set []int) (float64, int) {
		sum, n := 0.0, 0
		for _, k := range set {
			g := m.dag.Gate(k)
			if !g.Op.TwoQubit() {
				continue
			}
			p1 := sw(m.layout.Phys(g.Qubits[0]))
			p2 := sw(m.layout.Phys(g.Qubits[1]))
			sum += float64(m.distance(p1, p2))
			n++
		}
		return sum, n
	}
	h, nf := sumOver(front)
	if nf > 0 {
		h /= float64(nf)
	}
	if len(ext) > 0 {
		he, ne := sumOver(ext)
		if ne > 0 {
			h += m.opts.extendedWeight() * he / float64(ne)
		}
	}
	d := m.decay[c.a]
	if m.decay[c.b] > d {
		d = m.decay[c.b]
	}
	return d * h
}

// bestSwap returns the minimum-score candidate, breaking ties by edge index.
func (m *mapper) bestSwap(front, ext []int) swapCand {
	cands := m.candidates(front)
	if m.opts.naiveScore {
		best := cands[0]
		bestScore := m.score(best, front, ext)
		for _, c := range cands[1:] {
			s := m.score(c, front, ext)
			if s < bestScore || (s == bestScore && c.edge < best.edge) {
				best, bestScore = c, s
			}
		}
		return best
	}
	if !m.idxValid {
		m.indexRound(front, ext)
		m.idxValid = true
	}
	best := cands[0]
	bestScore := m.scoreDelta(best, ext)
	for _, c := range cands[1:] {
		s := m.scoreDelta(c, ext)
		if s < bestScore || (s == bestScore && c.edge < best.edge) {
			best, bestScore = c, s
		}
	}
	return best
}

// applySwap emits a SWAP and updates layout, decay and the incidence
// index (noteSwap reads the pre-swap layout, so it runs first).
func (m *mapper) applySwap(c swapCand) {
	if m.idxValid {
		m.noteSwap(c)
	}
	if !m.discard {
		qs := m.arena.Take(2)
		qs[0], qs[1] = c.a, c.b
		m.out.Gates = append(m.out.Gates, circuit.Gate{Op: circuit.OpSwap, Qubits: qs})
		if m.asap != nil {
			m.note(circuit.OpSwap, qs)
		}
	}
	m.layout.SwapPhysical(c.a, c.b)
	m.decay[c.a] += m.opts.decayDelta()
	m.decay[c.b] += m.opts.decayDelta()
	m.swaps++
}

// directRoute is the defensive termination escape: route the first blocked
// front gate along a shortest path, mirroring core's deadlock hatch.
func (m *mapper) directRoute(front []int) {
	for _, k := range front {
		if !m.soa.Is2Q[k] {
			continue
		}
		q1, q2 := m.soa.Pair(k)
		p1 := m.layout.Phys(q1)
		p2 := m.layout.Phys(q2)
		if m.dev.Adjacent(p1, p2) {
			continue
		}
		var path []int
		if m.opts.Cost != nil {
			path = m.opts.Cost.ShortestPath(p1, p2)
		} else {
			path = m.dev.ShortestPath(p1, p2)
		}
		for i := 0; i+2 < len(path) && !m.exceeded; i++ {
			a, b := path[i], path[i+1]
			if a > b {
				a, b = b, a
			}
			id, _ := m.dev.EdgeIndex(a, b)
			m.applySwap(swapCand{a: a, b: b, edge: id})
		}
		return
	}
}

// InitialLayout computes the SABRE reverse-traversal initial mapping: start
// from a seeded random assignment, run a forward pass over the circuit,
// feed its final layout into a pass over the reversed circuit, and return
// that pass's final layout. The CODAR paper uses this same mapping for
// both algorithms ("for a fair comparison, we use the same method as SABRE
// to create the initial mapping", §V-A).
func InitialLayout(c *circuit.Circuit, dev *arch.Device, seed int64, opts Options) (*arch.Layout, error) {
	return InitialLayoutAssembled(circuit.Assemble(c), dev, seed, opts)
}

// InitialLayoutAssembled is InitialLayout over a pre-built assembly: the
// backward pass runs on the assembly's cached reversed circuit, so callers
// computing several seeded layouts of one circuit (the portfolio grid)
// reverse and re-index it once instead of once per seed.
func InitialLayoutAssembled(a *circuit.Assembly, dev *arch.Device, seed int64, opts Options) (*arch.Layout, error) {
	c := a.Circ
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("sabre: circuit %q needs %d qubits but device %s has %d", c.Name, c.NumQubits, dev.Name, dev.NumQubits)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(dev.NumQubits)[:c.NumQubits]
	start, err := arch.NewLayout(perm, dev.NumQubits)
	if err != nil {
		return nil, err
	}
	fwd, err := remapAssembled(a, dev, start, opts, true)
	if err != nil {
		return nil, err
	}
	bwd, err := remapAssembled(a.Reversed(), dev, fwd.FinalLayout, opts, true)
	if err != nil {
		return nil, err
	}
	return bwd.FinalLayout, nil
}
