// Package sabre reimplements the SWAP-based bidirectional heuristic search
// of Li, Ding & Xie, "Tackling the Qubit Mapping Problem for NISQ-Era
// Quantum Devices" (ASPLOS 2019) — the best-known algorithm the CODAR paper
// compares against, with its published hyper-parameters: front layer F,
// extended set E (|E| ≤ 20, weight W = 0.5) and the decay mechanism
// (δ = 0.001, reset every 5 rounds or on gate execution). SABRE is
// depth-oriented and duration-unaware: it never consults gate durations,
// which is precisely the gap CODAR exploits.
package sabre

import (
	"fmt"
	"math/rand"

	"codar/internal/arch"
	"codar/internal/circuit"
)

// Options tunes SABRE. The zero value selects the published defaults.
type Options struct {
	// ExtendedSize caps the extended set E. 0 means DefaultExtendedSize.
	ExtendedSize int
	// ExtendedWeight is W in H = H_F + W*H_E. 0 means DefaultExtendedWeight.
	ExtendedWeight float64
	// DecayDelta is added to a qubit's decay on each swap using it.
	// 0 means DefaultDecayDelta.
	DecayDelta float64
	// DecayReset is the number of swap rounds between decay resets.
	// 0 means DefaultDecayReset.
	DecayReset int
}

// Published SABRE hyper-parameters.
const (
	DefaultExtendedSize   = 20
	DefaultExtendedWeight = 0.5
	DefaultDecayDelta     = 0.001
	DefaultDecayReset     = 5
)

func (o Options) extendedSize() int {
	if o.ExtendedSize <= 0 {
		return DefaultExtendedSize
	}
	return o.ExtendedSize
}

func (o Options) extendedWeight() float64 {
	if o.ExtendedWeight <= 0 {
		return DefaultExtendedWeight
	}
	return o.ExtendedWeight
}

func (o Options) decayDelta() float64 {
	if o.DecayDelta <= 0 {
		return DefaultDecayDelta
	}
	return o.DecayDelta
}

func (o Options) decayReset() int {
	if o.DecayReset <= 0 {
		return DefaultDecayReset
	}
	return o.DecayReset
}

// Result is the outcome of a SABRE mapping run.
type Result struct {
	// Circuit is the hardware-compliant physical gate sequence (with the
	// inserted SWAPs) in emission order.
	Circuit *circuit.Circuit
	// InitialLayout and FinalLayout bracket the run.
	InitialLayout *arch.Layout
	FinalLayout   *arch.Layout
	// SwapCount is the number of SWAPs inserted.
	SwapCount int
}

// Remap runs SABRE on circuit c targeting dev from the given initial
// layout (nil means trivial). Requirements mirror core.Remap: the circuit
// must be lowered and fit the device.
func Remap(c *circuit.Circuit, dev *arch.Device, initial *arch.Layout, opts Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("sabre: %w", err)
	}
	if !circuit.IsLowered(c) {
		return nil, fmt.Errorf("sabre: circuit %q contains compound gates; apply circuit.Decompose first", c.Name)
	}
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("sabre: circuit %q needs %d qubits but device %s has %d", c.Name, c.NumQubits, dev.Name, dev.NumQubits)
	}
	if !dev.Connected() {
		return nil, fmt.Errorf("sabre: device %s is disconnected", dev.Name)
	}
	if initial == nil {
		initial = arch.NewTrivialLayout(c.NumQubits, dev.NumQubits)
	}
	if initial.NumLogical() != c.NumQubits || initial.NumPhysical() != dev.NumQubits {
		return nil, fmt.Errorf("sabre: layout shape %d/%d does not match circuit %d / device %d",
			initial.NumLogical(), initial.NumPhysical(), c.NumQubits, dev.NumQubits)
	}
	m := &mapper{
		opts:    opts,
		dev:     dev,
		dag:     circuit.NewDAG(c),
		layout:  initial.Clone(),
		initial: initial.Clone(),
		decay:   make([]float64, dev.NumQubits),
		out:     &circuit.Circuit{Name: "sabre", NumQubits: dev.NumQubits},
	}
	m.resetDecay()
	m.run()
	return &Result{
		Circuit:       m.out,
		InitialLayout: m.initial,
		FinalLayout:   m.layout,
		SwapCount:     m.swaps,
	}, nil
}

type mapper struct {
	opts    Options
	dev     *arch.Device
	dag     *circuit.DAG
	layout  *arch.Layout
	initial *arch.Layout
	decay   []float64
	out     *circuit.Circuit
	swaps   int

	// Reused hot-loop scratch: the front double-buffer, the extended-set
	// BFS state (epoch-stamped instead of per-round maps), the candidate
	// buffer with its edge-dedup stamps, and the arena backing emitted
	// gates' qubit slices. Together these keep the swap-search loop
	// allocation-free after warm-up.
	spare      []int
	extBuf     []int
	queue      []int
	visitStamp []int32
	visitEpoch int32
	edgeStamp  []int32
	edgeEpoch  int32
	candBuf    []swapCand
	arena      circuit.IntArena
}

func (m *mapper) resetDecay() {
	for i := range m.decay {
		m.decay[i] = 1
	}
}

// run executes the SABRE main loop.
func (m *mapper) run() {
	indeg := m.dag.InDegrees()
	n := m.dag.Len()
	m.visitStamp = make([]int32, n)
	m.spare = make([]int, 0, 16)
	front := make([]int, 0, 16)
	for k, d := range indeg {
		if d == 0 {
			front = append(front, k)
		}
	}
	sinceReset := 0
	stuck := 0
	// Safety valve: SABRE with decay terminates in practice; bound the
	// consecutive no-progress swaps defensively (see DESIGN.md §4).
	maxStuck := 4 * m.dev.NumQubits * (m.dev.Diameter() + 1)

	for len(front) > 0 {
		// Execute every executable front gate. The surviving/unlocked set
		// is built into the spare buffer, which then swaps roles with the
		// current front (no per-round allocation).
		executed := false
		next := m.spare[:0]
		for _, k := range front {
			g := m.dag.Gate(k)
			if m.executable(g) {
				m.emit(g)
				executed = true
				for _, s := range m.dag.Succs[k] {
					indeg[s]--
					if indeg[s] == 0 {
						next = append(next, s)
					}
				}
			} else {
				next = append(next, k)
			}
		}
		m.spare = front[:0]
		front = next
		if executed {
			m.resetDecay()
			sinceReset = 0
			stuck = 0
			continue
		}
		if len(front) == 0 {
			break
		}
		// No front gate is executable: insert the best-scoring SWAP.
		if stuck >= maxStuck {
			m.directRoute(front)
			stuck = 0
			continue
		}
		ext := m.extendedSet(front, indeg)
		cand := m.bestSwap(front, ext)
		m.applySwap(cand)
		stuck++
		sinceReset++
		if sinceReset >= m.opts.decayReset() {
			m.resetDecay()
			sinceReset = 0
		}
	}
}

// executable reports whether gate g can be emitted under the current layout.
func (m *mapper) executable(g circuit.Gate) bool {
	if !g.Op.TwoQubit() {
		return true // single-qubit gates and directives always execute
	}
	return m.dev.Adjacent(m.layout.Phys(g.Qubits[0]), m.layout.Phys(g.Qubits[1]))
}

// emit appends the physical image of logical gate g to the output.
func (m *mapper) emit(g circuit.Gate) {
	phys := g
	phys.Qubits = m.arena.Take(len(g.Qubits))
	for i, q := range g.Qubits {
		phys.Qubits[i] = m.layout.Phys(q)
	}
	m.out.Add(phys)
}

// extendedSet collects up to ExtendedSize two-qubit gates reachable from
// the front layer through the DAG (the look-ahead window E). The BFS
// queue, result buffer and visited stamps live on the mapper; a node is
// visited this round when its stamp matches the round's epoch.
func (m *mapper) extendedSet(front []int, indeg []int) []int {
	limit := m.opts.extendedSize()
	m.visitEpoch++
	ext := m.extBuf[:0]
	queue := append(m.queue[:0], front...)
	for pop := 0; pop < len(queue) && len(ext) < limit; pop++ {
		k := queue[pop]
		for _, s := range m.dag.Succs[k] {
			if m.visitStamp[s] == m.visitEpoch {
				continue
			}
			m.visitStamp[s] = m.visitEpoch
			if m.dag.Gate(s).Op.TwoQubit() {
				ext = append(ext, s)
				if len(ext) >= limit {
					break
				}
			}
			queue = append(queue, s)
		}
	}
	m.extBuf = ext
	m.queue = queue[:0]
	return ext
}

// swapCand is a candidate SWAP on a coupler.
type swapCand struct {
	a, b, edge int
}

// candidates enumerates couplers incident to the physical qubits of the
// unexecutable two-qubit front gates (obtain_swaps in the paper). The
// result buffer and edge-dedup stamps are reused across rounds.
func (m *mapper) candidates(front []int) []swapCand {
	if m.edgeStamp == nil {
		m.edgeStamp = make([]int32, len(m.dev.Edges))
	}
	m.edgeEpoch++
	out := m.candBuf[:0]
	for _, k := range front {
		g := m.dag.Gate(k)
		if !g.Op.TwoQubit() {
			continue
		}
		for _, q := range g.Qubits {
			p := m.layout.Phys(q)
			for _, nb := range m.dev.Neighbors(p) {
				a, b := p, nb
				if a > b {
					a, b = b, a
				}
				id, _ := m.dev.EdgeIndex(a, b)
				if m.edgeStamp[id] == m.edgeEpoch {
					continue
				}
				m.edgeStamp[id] = m.edgeEpoch
				out = append(out, swapCand{a: a, b: b, edge: id})
			}
		}
	}
	m.candBuf = out
	return out
}

// score computes the decay-weighted SABRE heuristic for a candidate:
// H = max(decay) * ( Σ_F D/|F| + W * Σ_E D/|E| ) under the post-swap layout.
func (m *mapper) score(c swapCand, front, ext []int) float64 {
	sw := func(p int) int {
		switch p {
		case c.a:
			return c.b
		case c.b:
			return c.a
		default:
			return p
		}
	}
	sumOver := func(set []int) (float64, int) {
		sum, n := 0.0, 0
		for _, k := range set {
			g := m.dag.Gate(k)
			if !g.Op.TwoQubit() {
				continue
			}
			p1 := sw(m.layout.Phys(g.Qubits[0]))
			p2 := sw(m.layout.Phys(g.Qubits[1]))
			sum += float64(m.dev.Distance(p1, p2))
			n++
		}
		return sum, n
	}
	h, nf := sumOver(front)
	if nf > 0 {
		h /= float64(nf)
	}
	if len(ext) > 0 {
		he, ne := sumOver(ext)
		if ne > 0 {
			h += m.opts.extendedWeight() * he / float64(ne)
		}
	}
	d := m.decay[c.a]
	if m.decay[c.b] > d {
		d = m.decay[c.b]
	}
	return d * h
}

// bestSwap returns the minimum-score candidate, breaking ties by edge index.
func (m *mapper) bestSwap(front, ext []int) swapCand {
	cands := m.candidates(front)
	best := cands[0]
	bestScore := m.score(best, front, ext)
	for _, c := range cands[1:] {
		s := m.score(c, front, ext)
		if s < bestScore || (s == bestScore && c.edge < best.edge) {
			best, bestScore = c, s
		}
	}
	return best
}

// applySwap emits a SWAP and updates layout and decay.
func (m *mapper) applySwap(c swapCand) {
	m.out.Swap(c.a, c.b)
	m.layout.SwapPhysical(c.a, c.b)
	m.decay[c.a] += m.opts.decayDelta()
	m.decay[c.b] += m.opts.decayDelta()
	m.swaps++
}

// directRoute is the defensive termination escape: route the first blocked
// front gate along a shortest path, mirroring core's deadlock hatch.
func (m *mapper) directRoute(front []int) {
	for _, k := range front {
		g := m.dag.Gate(k)
		if !g.Op.TwoQubit() {
			continue
		}
		p1 := m.layout.Phys(g.Qubits[0])
		p2 := m.layout.Phys(g.Qubits[1])
		if m.dev.Adjacent(p1, p2) {
			continue
		}
		path := m.dev.ShortestPath(p1, p2)
		for i := 0; i+2 < len(path); i++ {
			a, b := path[i], path[i+1]
			if a > b {
				a, b = b, a
			}
			id, _ := m.dev.EdgeIndex(a, b)
			m.applySwap(swapCand{a: a, b: b, edge: id})
		}
		return
	}
}

// InitialLayout computes the SABRE reverse-traversal initial mapping: start
// from a seeded random assignment, run a forward pass over the circuit,
// feed its final layout into a pass over the reversed circuit, and return
// that pass's final layout. The CODAR paper uses this same mapping for
// both algorithms ("for a fair comparison, we use the same method as SABRE
// to create the initial mapping", §V-A).
func InitialLayout(c *circuit.Circuit, dev *arch.Device, seed int64, opts Options) (*arch.Layout, error) {
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("sabre: circuit %q needs %d qubits but device %s has %d", c.Name, c.NumQubits, dev.Name, dev.NumQubits)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(dev.NumQubits)[:c.NumQubits]
	start, err := arch.NewLayout(perm, dev.NumQubits)
	if err != nil {
		return nil, err
	}
	fwd, err := Remap(c, dev, start, opts)
	if err != nil {
		return nil, err
	}
	bwd, err := Remap(c.Reversed(), dev, fwd.FinalLayout, opts)
	if err != nil {
		return nil, err
	}
	return bwd.FinalLayout, nil
}
