package sabre

import (
	"fmt"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/interrupt"
	"codar/internal/schedule"
)

// StreamResult summarizes a RemapStream run. The mapped gates went to the
// sink chunk by chunk; the concatenation of the chunks' Gate values is
// exactly the batch Remap result circuit's gate sequence, annotated with
// the ASAP start times schedule.ASAP would assign it under the device
// durations (the differential test grid pins both).
type StreamResult struct {
	// NumQubits is the device qubit count (the output's qubit space).
	NumQubits int
	// NumClbits is the output circuit's classical-bit count (grown by
	// emitted measures, matching the batch result circuit).
	NumClbits int
	// Gates is the total number of mapped gates flushed (input + SWAPs).
	Gates int
	// InitialLayout and FinalLayout bracket the run.
	InitialLayout *arch.Layout
	FinalLayout   *arch.Layout
	// SwapCount is the number of SWAPs inserted.
	SwapCount int
	// Makespan is the ASAP weighted depth of the flushed schedule.
	Makespan int
	// Chunks is the number of sink flushes.
	Chunks int
}

// streamBatchSize is the window refill granularity. SABRE's per-round
// context is the DAG front plus the ≤ExtendedSize look-ahead — tiny — but
// the starvation rules below also pause on chain tails, so a roomy batch
// keeps refills rare.
const streamBatchSize = 1024

// streamCursor is the engine state carried across starvation pauses: the
// front (buffered-gate indices in batch front order — the driver remaps
// them over each compaction) and the decay/termination counters that in
// the batch loop live in run's locals.
type streamCursor struct {
	started    bool
	front      []int
	sinceReset int
	stuck      int
}

// streamRun is run (sabre.go) with starvation pauses. Three rules make
// every decision identical to a batch run over the whole circuit:
//
//  1. While any declared qubit has no buffered gate, an unseen gate on it
//     could still belong to the initial DAG front — whose order round 0
//     executes in — so no round may run at all.
//  2. A front gate that is a chain tail must not execute while the source
//     is open: unseen successors would be enabled — and ordered into the
//     front — at this exact round in a batch run.
//  3. The extended-set BFS must not expand a chain tail (guarded inside
//     extendedSet), since its successor set may grow with unseen gates.
//
// Under 1–3, every newly pulled gate provably has a live buffered
// predecessor (its last predecessor per qubit can only have executed when
// a later buffered gate covered that qubit — rule 2 — and rule 1 covers
// the no-predecessor case), so refilled gates enter the front exclusively
// through enablement, exactly as in batch, and the carried front order
// needs no reconstruction.
func (m *mapper) streamRun(cur *streamCursor) {
	n := m.dag.Len()
	m.executedMark = make([]bool, n)
	if m.sourceOpen {
		for _, last := range m.lastOn {
			if last < 0 {
				m.starved = true // rule 1
				return
			}
		}
	}
	indeg := m.dag.InDegrees()
	m.visitStamp = make([]int32, n)
	m.spare = make([]int, 0, 16)
	front := cur.front
	if !cur.started {
		front = cur.front[:0]
		for k, d := range indeg {
			if d == 0 {
				front = append(front, k)
			}
		}
	}
	maxStuck := 4 * m.dev.NumQubits * (m.dev.Diameter() + 1)

	for len(front) > 0 {
		if m.exceeded {
			cur.front = front
			return
		}
		if err := m.check.Check(); err != nil {
			m.ctxErr = err
			return
		}
		if m.sourceOpen {
			// Rule 2: the layout is fixed for the whole execute pass, so
			// checking before it is equivalent to checking at each gate.
			for _, k := range front {
				if m.executable(k) && m.chainTail(k) {
					m.starved = true
					cur.started, cur.front = true, front
					return
				}
			}
		}
		executed := false
		next := m.spare[:0]
		for _, k := range front {
			if m.executable(k) {
				m.emit(k)
				m.executedMark[k] = true
				executed = true
				for _, s := range m.dag.Succs[k] {
					indeg[s]--
					if indeg[s] == 0 {
						next = append(next, s)
					}
				}
			} else {
				next = append(next, k)
			}
		}
		m.spare = front[:0]
		front = next
		cur.started = true
		if executed {
			m.resetDecay()
			cur.sinceReset = 0
			cur.stuck = 0
			m.extValid = false
			m.idxValid = false
			continue
		}
		if len(front) == 0 {
			break
		}
		if cur.stuck >= maxStuck {
			m.directRoute(front)
			cur.stuck = 0
			continue
		}
		if !m.extValid {
			m.ext = m.extendedSet(front)
			if m.starved { // rule 3
				cur.front = front
				return
			}
			m.extValid = true
		}
		cand := m.bestSwap(front, m.ext)
		m.applySwap(cand)
		cur.stuck++
		cur.sinceReset++
		if cur.sinceReset >= m.opts.decayReset() {
			m.resetDecay()
			cur.sinceReset = 0
		}
	}
	cur.front = front[:0]
}

// buildLastOn computes the per-logical-qubit last buffered gate index.
func buildLastOn(soa *circuit.SoA, numQubits int) []int32 {
	last := make([]int32, numQubits)
	for q := range last {
		last[q] = -1
	}
	for i := 0; i < soa.Len(); i++ {
		for _, q := range soa.Operands(i) {
			last[q] = int32(i)
		}
	}
	return last
}

// RemapStream runs SABRE over a gate stream, holding only a bounded buffer
// of the circuit in memory and flushing mapped gates to the sink at every
// refill boundary, each annotated with its ASAP start time under the
// device durations. The stream must be lowered (circuit.NewDecomposeSource)
// and fit the device. Emission order is final the moment a gate is
// emitted, so unlike core.RemapStream nothing is held back: every epoch
// flushes all gates mapped since the previous flush. The concatenated
// chunks are byte-identical to the batch Remap output (with ASAP times
// appended); the differential grid pins this.
//
// The resident buffer is O(refill batch + live window) for circuits that
// keep their declared qubits active; a circuit whose qubit first appears
// (or whose per-qubit gap runs) millions of gates in forces the buffer to
// grow to that gap — the price of exact batch equivalence (DESIGN.md §14).
func RemapStream(src circuit.Source, dev *arch.Device, initial *arch.Layout, opts Options, sink schedule.Sink) (*StreamResult, error) {
	nl := src.NumQubits()
	if nl > dev.NumQubits {
		return nil, fmt.Errorf("sabre: stream needs %d qubits but device %s has %d", nl, dev.Name, dev.NumQubits)
	}
	if !dev.Connected() {
		return nil, fmt.Errorf("sabre: device %s is disconnected", dev.Name)
	}
	if initial == nil {
		initial = arch.NewTrivialLayout(nl, dev.NumQubits)
	}
	if initial.NumLogical() != nl || initial.NumPhysical() != dev.NumQubits {
		return nil, fmt.Errorf("sabre: layout shape %d/%d does not match stream %d / device %d",
			initial.NumLogical(), initial.NumPhysical(), nl, dev.NumQubits)
	}
	if err := initial.Validate(); err != nil {
		return nil, fmt.Errorf("sabre: %w", err)
	}
	if opts.Cost != nil {
		if err := opts.Cost.CompatibleWith(dev); err != nil {
			return nil, fmt.Errorf("sabre: %w", err)
		}
	}
	if err := interrupt.Classify(opts.Ctx); err != nil {
		return nil, fmt.Errorf("sabre: %w", err)
	}

	win := circuit.NewWindow(src, streamBatchSize)
	if err := win.Fill(); err != nil {
		return nil, fmt.Errorf("sabre: %w", err)
	}

	var (
		m                         *mapper
		cur                       streamCursor
		avail                     = make([]int, dev.NumQubits)
		oldToNew                  []int
		keep                      []int
		makespan, flushed, chunks int
	)
	for {
		c := &circuit.Circuit{
			Name:      "stream",
			NumQubits: nl,
			NumClbits: win.NumClbits(),
			Gates:     win.Gates(),
		}
		a := circuit.Assemble(c)
		nm := &mapper{
			opts:   opts,
			dev:    dev,
			dag:    a.DAG(),
			soa:    a.SoA,
			gates:  c.Gates,
			decay:  make([]float64, dev.NumQubits),
			out:    &circuit.Circuit{Name: "sabre", NumQubits: dev.NumQubits},
			lastOn: buildLastOn(a.SoA, nl),
		}
		nm.out.Gates = make([]circuit.Gate, 0, len(c.Gates)+len(c.Gates)/4+16)
		nm.nq = dev.NumQubits
		if opts.Cost != nil {
			nm.distTab = opts.Cost.Table()
		} else {
			nm.distTab = dev.DistTable()
		}
		if m == nil {
			nm.layout = initial.Clone()
			nm.initial = initial.Clone()
			if opts.DepthBound != nil {
				nm.asap = arch.NewASAPTracker(dev.NumQubits)
			}
			nm.check = interrupt.NewChecker(opts.Ctx, ctxCheckEvery)
			nm.resetDecay()
		} else {
			// Transplant the dynamic state; everything else (DAG, SoA,
			// incidence indexes, extended-set memo, scratch) is a function
			// of the buffered sequence and this state, rebuilt on demand.
			nm.layout = m.layout
			nm.initial = m.initial
			copy(nm.decay, m.decay)
			nm.swaps = m.swaps
			nm.asap = m.asap
			nm.exceeded = m.exceeded
			nm.check = m.check
			nm.out.NumClbits = m.out.NumClbits
		}
		nm.sourceOpen = win.Open()
		m = nm

		m.streamRun(&cur)
		if m.ctxErr != nil {
			return nil, fmt.Errorf("sabre: %w", m.ctxErr)
		}
		if m.exceeded {
			return nil, ErrDepthBound
		}

		// Emission order is final: flush everything mapped this epoch,
		// annotated by the carried ASAP recurrence (identical to running
		// schedule.ASAP over the concatenated output).
		if len(m.out.Gates) > 0 {
			chunk := make([]schedule.ScheduledGate, len(m.out.Gates))
			for i, g := range m.out.Gates {
				start := 0
				for _, q := range g.Qubits {
					if avail[q] > start {
						start = avail[q]
					}
				}
				dur := dev.Durations.Of(g.Op)
				for _, q := range g.Qubits {
					avail[q] = start + dur
				}
				if start+dur > makespan {
					makespan = start + dur
				}
				chunk[i] = schedule.ScheduledGate{Gate: g, Start: start, Duration: dur}
			}
			if err := sink.Flush(chunk); err != nil {
				return nil, fmt.Errorf("sabre: sink: %w", err)
			}
			flushed += len(chunk)
			chunks++
		}

		if !m.starved && !win.Open() {
			break
		}

		// Evict executed gates and remap the carried front onto the
		// compacted buffer (compaction preserves order, so front order —
		// which is emission order — is untouched).
		n := len(m.executedMark)
		if cap(oldToNew) < n {
			oldToNew = make([]int, n)
		}
		oldToNew = oldToNew[:n]
		keep = keep[:0]
		for i := 0; i < n; i++ {
			if !m.executedMark[i] {
				oldToNew[i] = len(keep)
				keep = append(keep, i)
			} else {
				oldToNew[i] = -1
			}
		}
		for i, k := range cur.front {
			cur.front[i] = oldToNew[k]
		}
		win.Compact(keep)
		if len(keep) == 0 {
			// Unreachable while the starvation rules hold (a drained buffer
			// means chain tails executed with the source open); rebuild the
			// front from scratch for defense in depth.
			cur.started = false
		}
		if err := win.Fill(); err != nil {
			return nil, fmt.Errorf("sabre: %w", err)
		}
	}

	return &StreamResult{
		NumQubits:     dev.NumQubits,
		NumClbits:     m.out.NumClbits,
		Gates:         flushed,
		InitialLayout: m.initial,
		FinalLayout:   m.layout,
		SwapCount:     m.swaps,
		Makespan:      makespan,
		Chunks:        chunks,
	}, nil
}
