package sabre

import (
	"errors"
	"testing"

	"codar/internal/arch"
	"codar/internal/qasm"
	"codar/internal/schedule"
	"codar/internal/workloads"
)

// TestDepthBoundAborts: a bound no run can beat must surface ErrDepthBound.
func TestDepthBoundAborts(t *testing.T) {
	b, err := workloads.ByName("qft_10")
	if err != nil {
		t.Fatal(err)
	}
	dev := arch.IBMQ20Tokyo()
	var bound arch.DepthBound
	bound.Tighten(1)
	_, err = Remap(b.Circuit(), dev, nil, Options{DepthBound: &bound})
	if !errors.Is(err, ErrDepthBound) {
		t.Fatalf("err = %v, want ErrDepthBound", err)
	}
}

// TestDepthBoundLooseIsIdentical: a bound the run never crosses must leave
// the output byte-identical to an unbounded run.
func TestDepthBoundLooseIsIdentical(t *testing.T) {
	for _, name := range []string{"qft_10", "rand_10_g300", "adder_6"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dev := arch.IBMQ20Tokyo()
		plain, err := Remap(b.Circuit(), dev, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var bound arch.DepthBound
		bound.Tighten(1 << 40)
		bounded, err := Remap(b.Circuit(), dev, nil, Options{DepthBound: &bound})
		if err != nil {
			t.Fatalf("%s: loose bound aborted: %v", name, err)
		}
		if qasm.Write(plain.Circuit) != qasm.Write(bounded.Circuit) {
			t.Fatalf("%s: DepthBound tracking changed the output", name)
		}
		if plain.SwapCount != bounded.SwapCount {
			t.Fatalf("%s: swaps diverged: %d/%d", name, plain.SwapCount, bounded.SwapCount)
		}
	}
}

// TestDepthBoundExactTieCompletes: a bound equal to the output's weighted
// depth must not abort (the incremental ASAP tracker and schedule.ASAP
// agree exactly, and the comparison is strict).
func TestDepthBoundExactTieCompletes(t *testing.T) {
	b, err := workloads.ByName("qft_10")
	if err != nil {
		t.Fatal(err)
	}
	dev := arch.IBMQ20Tokyo()
	plain, err := Remap(b.Circuit(), dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wd := schedule.WeightedDepth(plain.Circuit, dev.Durations)
	var bound arch.DepthBound
	bound.Tighten(wd)
	res, err := Remap(b.Circuit(), dev, nil, Options{DepthBound: &bound})
	if err != nil {
		t.Fatalf("tie aborted: %v", err)
	}
	if qasm.Write(res.Circuit) != qasm.Write(plain.Circuit) {
		t.Fatal("tie-bounded run changed the output")
	}
	// One cycle tighter must abort — pinning that the tracker reaches
	// exactly the final weighted depth.
	var tight arch.DepthBound
	tight.Tighten(wd - 1)
	if _, err := Remap(b.Circuit(), dev, nil, Options{DepthBound: &tight}); !errors.Is(err, ErrDepthBound) {
		t.Fatalf("bound wd-1: err = %v, want ErrDepthBound", err)
	}
}
