package sabre

import (
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/workloads"
)

// zeroCost builds the all-zero-weight calibration metric: CostScale (a power
// of two) times the hop matrix, so every float quotient in H scales exactly
// and the SABRE output must stay bit-identical.
func zeroCost(t testing.TB, dev *arch.Device) *arch.CostModel {
	t.Helper()
	cm, err := arch.NewCostModel(dev, make([]float64, len(dev.Edges)))
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestRemapIdenticalWithZeroCalibration randomises circuits, devices and
// option variants; Remap with the zero-weight metric must reproduce plain
// Remap exactly, under both scoring engines.
func TestRemapIdenticalWithZeroCalibration(t *testing.T) {
	devices := []*arch.Device{
		arch.Linear(6), arch.Ring(7), arch.Grid("g33", 3, 3),
		arch.IBMQ16Melbourne(), arch.IBMQ20Tokyo(), arch.SycamoreQ54(),
	}
	variants := []Options{
		{},
		{naiveScore: true},
		{ExtendedSize: 1},
		{ExtendedSize: 50, ExtendedWeight: 0.9},
		{DecayDelta: 0.1, DecayReset: 1},
	}
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		opts := variants[int(uint64(seed>>8)%uint64(len(variants)))]
		qubits := dev.NumQubits
		if qubits > 8 {
			qubits = 8
		}
		c := randCircuit(seed, qubits, 70)
		plain, err := Remap(c, dev, nil, opts)
		if err != nil {
			t.Logf("plain: %v", err)
			return false
		}
		withCost := opts
		withCost.Cost = zeroCost(t, dev)
		calibrated, err := Remap(c, dev, nil, withCost)
		if err != nil {
			t.Logf("calibrated: %v", err)
			return false
		}
		if !sabreEquivalent(calibrated, plain) {
			t.Logf("opts %+v on %s: outputs differ (swaps %d vs %d)",
				opts, dev.Name, calibrated.SwapCount, plain.SwapCount)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestInitialLayoutIdenticalWithZeroCalibration extends the guarantee
// through the reverse-traversal initial mapping on the Fig 8 devices and a
// workload-suite slice — the exact placement runs the pinned avg-speedups
// depend on.
func TestInitialLayoutIdenticalWithZeroCalibration(t *testing.T) {
	for _, dev := range arch.EvaluationDevices() {
		cm := zeroCost(t, dev)
		count := 0
		for _, b := range workloads.Suite() {
			if b.Qubits > dev.NumQubits || b.Qubits > 12 {
				continue
			}
			if count++; count > 8 {
				break // a slice per device keeps the grid fast; the core-side test sweeps the full matrix
			}
			c := b.Circuit()
			plain, err := InitialLayout(c, dev, 1, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, dev.Name, err)
			}
			calibrated, err := InitialLayout(c, dev, 1, Options{Cost: cm})
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, dev.Name, err)
			}
			if !plain.Equal(calibrated) {
				t.Fatalf("%s on %s: initial layouts diverge under zero calibration", b.Name, dev.Name)
			}
		}
	}
}

// TestRemapRejectsForeignCostModel mirrors core's check.
func TestRemapRejectsForeignCostModel(t *testing.T) {
	cm := zeroCost(t, arch.Linear(5))
	c := randCircuit(1, 4, 10)
	if _, err := Remap(c, arch.Ring(5), nil, Options{Cost: cm}); err == nil {
		t.Error("Remap accepted a cost model for a different device")
	}
}
