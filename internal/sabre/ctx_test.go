package sabre

import (
	"context"
	"errors"
	"testing"
	"time"

	"codar/internal/arch"
	"codar/internal/qasm"
)

// TestCtxPreCanceled: a dead context aborts Remap before any routing, with
// the typed sentinel that also matches the stdlib cause.
func TestCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := randCircuit(1, 8, 60)
	_, err := Remap(c, arch.IBMQ20Tokyo(), nil, Options{Ctx: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must also match context.Canceled", err)
	}
}

// TestCtxExpiredDeadline: expired deadline → ErrDeadline, distinct from
// ErrCanceled.
func TestCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := randCircuit(2, 8, 60)
	_, err := Remap(c, arch.IBMQ20Tokyo(), nil, Options{Ctx: ctx})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v matches ErrCanceled; sentinels must stay distinct", err)
	}
}

// TestCtxCancelMidRunAbortsPromptly: canceling a large mapping mid-run
// aborts within the amortized cadence instead of finishing the run.
func TestCtxCancelMidRunAbortsPromptly(t *testing.T) {
	c := randCircuit(3, 54, 20000)
	dev := arch.SycamoreQ54()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Remap(c, dev, nil, Options{Ctx: ctx})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	canceledAt := time.Now()
	cancel()
	err := <-done
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if lag := time.Since(canceledAt); lag > time.Second {
		t.Fatalf("abort lagged cancel by %v, want well under 1s", lag)
	}
}

// TestCtxInitialLayoutCanceled: the reverse-traversal placement (two full
// SABRE passes) honors the context too.
func TestCtxInitialLayoutCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := randCircuit(4, 10, 200)
	_, err := InitialLayout(c, arch.IBMQ20Tokyo(), 1, Options{Ctx: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestCtxBackgroundIsByteIdentical: inert contexts (background or live but
// never fired) must leave output and stats bit-identical to a nil ctx.
func TestCtxBackgroundIsByteIdentical(t *testing.T) {
	c := randCircuit(5, 12, 300)
	dev := arch.IBMQ20Tokyo()
	plain, err := Remap(c, dev, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	live, cancel := context.WithCancel(context.Background())
	defer cancel()
	for name, ctx := range map[string]context.Context{"background": context.Background(), "live": live} {
		got, err := Remap(c, dev, nil, Options{Ctx: ctx})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if qasm.Write(plain.Circuit) != qasm.Write(got.Circuit) {
			t.Fatalf("%s ctx changed the output", name)
		}
		if plain.SwapCount != got.SwapCount {
			t.Fatalf("%s ctx changed SwapCount: %d vs %d", name, plain.SwapCount, got.SwapCount)
		}
	}
	layPlain, err := InitialLayout(c, dev, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	layCtx, err := InitialLayout(c, dev, 1, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < c.NumQubits; q++ {
		if layPlain.Phys(q) != layCtx.Phys(q) {
			t.Fatalf("background ctx changed the initial layout at q%d", q)
		}
	}
}
